package heavyhitters_test

// Integration tests for the command-line tools: build each binary and run
// the full distributed pipeline (generate → summarize → ship → merge →
// size) against real files, asserting on output. Skipped under -short.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	hh "repro"
	"repro/internal/registry"
)

// buildTool compiles ./cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// run executes a built binary and returns its stdout, failing the test on
// a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestToolsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhgen := buildTool(t, dir, "hhgen")
	hhcli := buildTool(t, dir, "hhcli")
	hhmerge := buildTool(t, dir, "hhmerge")
	hhstat := buildTool(t, dir, "hhstat")

	shard1 := filepath.Join(dir, "s1.bin")
	shard2 := filepath.Join(dir, "s2.bin")
	run(t, hhgen, "-kind", "zipf", "-n", "40000", "-universe", "4000", "-seed", "1", "-o", shard1)
	run(t, hhgen, "-kind", "zipf", "-n", "40000", "-universe", "4000", "-seed", "2", "-o", shard2)

	sum1 := filepath.Join(dir, "s1.sum")
	sum2 := filepath.Join(dir, "s2.sum")
	out := run(t, hhcli, "-alg", "spacesaving", "-m", "200", "-k", "3", "-dump", sum1, shard1)
	if !strings.Contains(out, "processed mass 40000") {
		t.Errorf("hhcli output unexpected:\n%s", out)
	}
	// The Zipf stream's heaviest item is id 0; it must lead the ranking.
	if !strings.Contains(out, "1     0") {
		t.Errorf("hhcli did not rank item 0 first:\n%s", out)
	}
	run(t, hhcli, "-alg", "frequent", "-m", "200", "-k", "3", shard1)
	run(t, hhcli, "-alg", "countmin", "-m", "256", "-k", "3", shard1)
	run(t, hhcli, "-alg", "spacesaving", "-shards", "4", "-eps", "0.005", "-k", "3", shard1)
	run(t, hhcli, "-alg", "spacesaving", "-m", "200", "-k", "3", "-dump", sum2, shard2)

	mergedOut := run(t, hhmerge, "-m", "200", "-k", "3", sum1, sum2)
	if !strings.Contains(mergedOut, "merged 2 summaries covering mass 80000") {
		t.Errorf("hhmerge output unexpected:\n%s", mergedOut)
	}
	if !strings.Contains(mergedOut, "Theorem 11") {
		t.Errorf("hhmerge did not report the merged bound:\n%s", mergedOut)
	}

	statOut := run(t, hhstat, "-k", "5", "-eps", "0.01", shard1)
	for _, want := range []string{"total mass F1", "40000", "fitted Zipf alpha", "Theorem 8 budget"} {
		if !strings.Contains(statOut, want) {
			t.Errorf("hhstat output missing %q:\n%s", want, statOut)
		}
	}
}

// TestToolsWindowedPipeline covers the windowed tool path end to end:
// a seeded drift trace through a windowed hhcli (rotation state and
// window-aware ranking printed), the decayed variant, and the windowed
// dump → decode chain via hhmerge.
func TestToolsWindowedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhgen := buildTool(t, dir, "hhgen")
	hhcli := buildTool(t, dir, "hhcli")
	hhmerge := buildTool(t, dir, "hhmerge")
	hhstat := buildTool(t, dir, "hhstat")

	drift := filepath.Join(dir, "drift.bin")
	run(t, hhgen, "-kind", "drift", "-n", "60000", "-universe", "2000",
		"-period", "20000", "-seed", "5", "-o", drift)
	// Identical flags must reproduce byte-identical traces (the -seed
	// contract).
	drift2 := filepath.Join(dir, "drift2.bin")
	run(t, hhgen, "-kind", "drift", "-n", "60000", "-universe", "2000",
		"-period", "20000", "-seed", "5", "-o", drift2)
	b1, err := os.ReadFile(drift)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(drift2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b1), string(b2)) || len(b1) != len(b2) {
		t.Error("hhgen -seed did not reproduce a byte-identical trace")
	}

	sum := filepath.Join(dir, "win.sum")
	out := run(t, hhcli, "-m", "128", "-window", "8000", "-epochs", "4",
		"-k", "5", "-dump", sum, drift)
	if !strings.Contains(out, "window: 4/4 epochs live, 2000 items each") {
		t.Errorf("hhcli did not report the ring state:\n%s", out)
	}
	if !strings.Contains(out, "covering the last 8000 items") {
		t.Errorf("hhcli did not report the covered suffix:\n%s", out)
	}
	// The windowed dump decodes and merges downstream, and hhmerge
	// announces that each HHWIN2 input flattens to its covered suffix.
	mergedOut := run(t, hhmerge, "-m", "128", "-k", "3", sum, sum)
	if !strings.Contains(mergedOut, "merged 2 summaries covering mass 16000") {
		t.Errorf("hhmerge on windowed dumps unexpected:\n%s", mergedOut)
	}
	if !strings.Contains(mergedOut, "windowed summary (4/4 epochs live), flattening the covered suffix of mass 8000") {
		t.Errorf("hhmerge did not report the windowed inputs:\n%s", mergedOut)
	}

	// hhstat detects the HHWIN2 frame and reports summary-derived stats
	// instead of failing to parse it as a stream.
	statOut := run(t, hhstat, "-k", "5", sum)
	for _, want := range []string{"summary blob", "4/4 epochs live", "covered mass", "8000.0", "tracked items"} {
		if !strings.Contains(statOut, want) {
			t.Errorf("hhstat on windowed blob missing %q:\n%s", want, statOut)
		}
	}
	// Same for a flat HHSUM2 blob.
	flatSum := filepath.Join(dir, "flat.sum")
	run(t, hhcli, "-m", "128", "-k", "3", "-dump", flatSum, drift)
	flatStat := run(t, hhstat, flatSum)
	for _, want := range []string{"summary blob", "processed mass N", "60000.0"} {
		if !strings.Contains(flatStat, want) {
			t.Errorf("hhstat on flat blob missing %q:\n%s", want, flatStat)
		}
	}

	decayOut := run(t, hhcli, "-m", "128", "-decay", "0.001", "-k", "5", drift)
	if !strings.Contains(decayOut, "decay: rate 0.001") {
		t.Errorf("hhcli did not report the decay mode:\n%s", decayOut)
	}

	// The concurrency tier composes with the windowed tool path and
	// produces the same report shape.
	concOut := run(t, hhcli, "-m", "128", "-window", "8000", "-epochs", "4",
		"-shards", "2", "-concurrent", "-k", "5", drift)
	if !strings.Contains(concOut, "epochs live") {
		t.Errorf("hhcli -concurrent windowed output unexpected:\n%s", concOut)
	}
}

// TestToolsStdinPipeline covers the '-' stdin path of hhmerge and
// hhstat: a dumped blob pipes into both tools exactly the way
// `curl .../encode | hhmerge -` does, mixing stdin with file args.
func TestToolsStdinPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhgen := buildTool(t, dir, "hhgen")
	hhcli := buildTool(t, dir, "hhcli")
	hhmerge := buildTool(t, dir, "hhmerge")
	hhstat := buildTool(t, dir, "hhstat")

	shard := filepath.Join(dir, "s.bin")
	run(t, hhgen, "-kind", "zipf", "-n", "40000", "-universe", "4000", "-seed", "1", "-o", shard)
	sum1 := filepath.Join(dir, "s1.sum")
	sum2 := filepath.Join(dir, "s2.sum")
	run(t, hhcli, "-alg", "spacesaving", "-m", "200", "-k", "3", "-dump", sum1, shard)
	run(t, hhcli, "-alg", "spacesaving", "-m", "200", "-k", "3", "-dump", sum2, shard)
	blob, err := os.ReadFile(sum1)
	if err != nil {
		t.Fatal(err)
	}

	// hhmerge '-' mixed with a file argument.
	merge := exec.Command(hhmerge, "-m", "200", "-k", "3", "-", sum2)
	merge.Stdin = bytes.NewReader(blob)
	out, err := merge.CombinedOutput()
	if err != nil {
		t.Fatalf("hhmerge -: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "merged 2 summaries covering mass 80000") {
		t.Errorf("hhmerge via stdin unexpected:\n%s", out)
	}

	// hhstat '-' on a piped blob.
	stat := exec.Command(hhstat, "-k", "5", "-")
	stat.Stdin = bytes.NewReader(blob)
	out, err = stat.CombinedOutput()
	if err != nil {
		t.Fatalf("hhstat -: %v\n%s", err, out)
	}
	for _, want := range []string{"summary blob", "processed mass N", "40000.0"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("hhstat via stdin missing %q:\n%s", want, out)
		}
	}

	// hhstat '-' on a piped raw stream file (not a blob).
	raw, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	stat = exec.Command(hhstat, "-")
	stat.Stdin = bytes.NewReader(raw)
	out, err = stat.CombinedOutput()
	if err != nil {
		t.Fatalf("hhstat - (raw stream): %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "total mass F1") {
		t.Errorf("hhstat via stdin on a raw stream unexpected:\n%s", out)
	}

	// stdin may only be consumed once per invocation.
	dup := exec.Command(hhmerge, "-", "-")
	dup.Stdin = bytes.NewReader(blob)
	if err := dup.Run(); err == nil {
		t.Error("hhmerge accepted '-' twice")
	}
}

func TestToolsWeightedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhgen := buildTool(t, dir, "hhgen")
	hhcli := buildTool(t, dir, "hhcli")

	flows := filepath.Join(dir, "flows.bin")
	run(t, hhgen, "-kind", "weighted-zipf", "-n", "100000", "-universe", "500", "-o", flows)
	out := run(t, hhcli, "-alg", "spacesaving", "-weighted", "-m", "64", "-k", "5", flows)
	if !strings.Contains(out, "processed mass") {
		t.Errorf("weighted hhcli output unexpected:\n%s", out)
	}
}

func TestToolsHHBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhbench := buildTool(t, dir, "hhbench")
	out := run(t, hhbench, "-small", "-experiment", "E4")
	if !strings.Contains(out, "Theorem 6") || !strings.Contains(out, "yes") {
		t.Errorf("hhbench E4 output unexpected:\n%s", out)
	}
	csvOut := run(t, hhbench, "-small", "-experiment", "E4", "-format", "csv")
	if !strings.HasPrefix(csvOut, "eps,m,") {
		t.Errorf("hhbench CSV output unexpected:\n%s", csvOut)
	}
}

func TestToolsErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhcli := buildTool(t, dir, "hhcli")
	hhbench := buildTool(t, dir, "hhbench")

	// Unknown algorithm must exit non-zero.
	bad := filepath.Join(dir, "missing.bin")
	if err := exec.Command(hhcli, "-alg", "nope", bad).Run(); err == nil {
		t.Error("hhcli accepted an unknown algorithm")
	}
	// Missing file must exit non-zero.
	if err := exec.Command(hhcli, bad).Run(); err == nil {
		t.Error("hhcli accepted a missing file")
	}
	// Unknown experiment must exit non-zero.
	if err := exec.Command(hhbench, "-experiment", "E99").Run(); err == nil {
		t.Error("hhbench accepted an unknown experiment")
	}
}

// TestToolsDurabilityInspect drives hhstat over the three hhserverd
// durability artifacts (docs/DURABILITY.md): the data directory, a
// single WAL segment file, and a snapshot manifest — built by a real
// registry lifecycle (ingest → snapshot → tail ingest → halt).
func TestToolsDurabilityInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("tool integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	hhstat := buildTool(t, dir, "hhstat")

	dataDir := filepath.Join(dir, "data")
	reg, err := registry.New(registry.Config{
		Durability: &hh.DurabilitySpec{Dir: dataDir, SnapshotInterval: "1h", Fsync: hh.FsyncAlways},
		Summaries:  map[string]hh.Spec{"queries": {Capacity: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("queries")
	if err := e.IngestBatch([]string{"a", "b", "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch([]string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Halt(); err != nil { // flush, no final snapshot: a live WAL tail remains
		t.Fatal(err)
	}

	// Data-directory report: manifest summary re-verified, WAL tallied.
	out := run(t, hhstat, dataDir)
	for _, want := range []string{"snapshot manifest", "queries", "[verified]", "covered through seq 2", "clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("hhstat on data dir missing %q:\n%s", want, out)
		}
	}

	// Single-segment report via the HHWL magic sniff.
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments found: %v", err)
	}
	out = run(t, hhstat, segs[0])
	for _, want := range []string{"WAL segment", "covered through seq 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("hhstat on WAL segment missing %q:\n%s", want, out)
		}
	}

	// Manifest report via the hhsnap/v1 format sniff, blob verified from
	// the sibling files.
	manifests, err := filepath.Glob(filepath.Join(dataDir, "snap-*", "MANIFEST.json"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("no snapshot manifest found: %v", err)
	}
	out = run(t, hhstat, manifests[0])
	for _, want := range []string{"snapshot manifest", "hhsnap/v1", "queries", "[verified]"} {
		if !strings.Contains(out, want) {
			t.Errorf("hhstat on manifest missing %q:\n%s", want, out)
		}
	}
}
