package heavyhitters_test

// Tests of the WithPipeline tier: the SPSC ring discipline under
// concurrent producers (the hammer is the -race check for the
// ring's publication protocol), the flush barrier on queries, and
// exact mass accounting across every write verb.

import (
	"sync"
	"testing"
	"unsafe"

	hh "repro"
)

// unsafeView returns a string aliasing b's bytes, valid only while b
// is unmodified — the borrowed-key hazard the tier must defuse.
func unsafeView(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// TestPipelineProducerHammer drives many producer goroutines through
// every write verb against a pipelined summary while readers flush and
// query concurrently. Under -race this is the ring-protocol check:
// producers contend on the ring mutex and backpressure waits, workers
// publish head/tail across goroutines, and readers race flush barriers
// against both. The final mass must be exact — an ack'd enqueue is
// never lost, double-applied, or overwritten by a concurrent producer.
func TestPipelineProducerHammer(t *testing.T) {
	const (
		producers = 8
		batches   = 100
		batchLen  = 64
	)
	for _, opts := range [][]hh.Option{
		{hh.WithCapacity(128), hh.WithShards(4), hh.WithPipeline()},
		{hh.WithCapacity(128), hh.WithShards(4), hh.WithPipeline(), hh.WithConcurrent()},
	} {
		sum := hh.New[uint64](opts...)
		var prod, read sync.WaitGroup
		stop := make(chan struct{})
		// Readers: flush barriers and snapshot queries racing ingest.
		for r := 0; r < 2; r++ {
			read.Add(1)
			go func() {
				defer read.Done()
				var buf []hh.WeightedEntry[uint64]
				for {
					select {
					case <-stop:
						return
					default:
					}
					sum.Flush()
					_ = sum.N()
					buf = sum.TopAppend(buf[:0], 8)
				}
			}()
		}
		for p := 0; p < producers; p++ {
			prod.Add(1)
			go func(p int) {
				defer prod.Done()
				batch := make([]uint64, batchLen)
				for b := 0; b < batches; b++ {
					for i := range batch {
						// Dup-heavy so the coalescing path is exercised.
						batch[i] = uint64((p*batches + b + i) % 37)
					}
					sum.UpdateBatch(batch)
					sum.Update(uint64(b % 37))
					sum.UpdateWeighted(uint64(b%37), 2)
				}
			}(p)
		}
		prod.Wait()
		close(stop)
		read.Wait()
		sum.Flush()
		want := float64(producers * batches * (batchLen + 3))
		if got := sum.N(); got != want {
			t.Fatalf("N = %v, want %v", got, want)
		}
	}
}

// TestPipelineFlushBarrier: every query path must drain the rings
// first, so a write that returned is visible to the very next read —
// no explicit Flush required.
func TestPipelineFlushBarrier(t *testing.T) {
	sum := hh.New[uint64](hh.WithCapacity(64), hh.WithShards(4), hh.WithPipeline())
	batch := make([]uint64, 256)
	for i := range batch {
		batch[i] = uint64(i % 13)
	}
	sum.UpdateBatch(batch)
	if got := sum.N(); got != 256 {
		t.Fatalf("N after UpdateBatch = %v, want 256 (query barrier must drain rings)", got)
	}
	sum.Update(99)
	if got := sum.Estimate(99); got < 1 {
		t.Fatalf("Estimate(99) = %v after Update, want >= 1", got)
	}
	sum.UpdateWeighted(99, 5)
	lo, _ := sum.EstimateBounds(99)
	if lo < 1 {
		t.Fatalf("EstimateBounds(99) lo = %v, want >= 1", lo)
	}
	if got := sum.N(); got != 262 {
		t.Fatalf("N = %v, want 262", got)
	}
}

// TestPipelineBorrowedStrings: with WithBorrowedKeys the producer's
// batch buffer may be reused the moment UpdateBatch returns, while the
// job is still parked in a ring — the tier must have deep-copied the
// strings at enqueue time.
func TestPipelineBorrowedStrings(t *testing.T) {
	sum := hh.New[string](hh.WithCapacity(64), hh.WithShards(2),
		hh.WithPipeline(), hh.WithBorrowedKeys())
	buf := []byte("hot-key")
	batch := make([]string, 32)
	for i := range batch {
		batch[i] = string(buf[:]) // one shared backing in spirit; keys equal
	}
	// Alias the same byte buffer for every batch and clobber it between
	// enqueue and flush.
	for r := 0; r < 50; r++ {
		key := unsafeView(buf)
		for i := range batch {
			batch[i] = key
		}
		sum.UpdateBatch(batch)
		copy(buf, "CLOBBER")
		copy(buf, "hot-key")
	}
	sum.Flush()
	if got := sum.Estimate("hot-key"); got != 50*32 {
		t.Fatalf("Estimate(hot-key) = %v, want %v", got, 50*32)
	}
}

// TestPipelineReset: Reset must drain the rings before clearing, so a
// reset summary starts empty and stays usable.
func TestPipelineReset(t *testing.T) {
	sum := hh.New[uint64](hh.WithCapacity(64), hh.WithShards(4), hh.WithPipeline())
	for i := 0; i < 1000; i++ {
		sum.Update(uint64(i % 7))
	}
	sum.Reset()
	if got := sum.N(); got != 0 {
		t.Fatalf("N after Reset = %v, want 0", got)
	}
	sum.Update(3)
	if got := sum.N(); got != 1 {
		t.Fatalf("N after post-Reset Update = %v, want 1", got)
	}
}

// TestPipelineRequiresShards: the option contract is validated at New.
func TestPipelineRequiresShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithPipeline()) without WithShards must panic")
		}
	}()
	hh.New[uint64](hh.WithCapacity(64), hh.WithPipeline())
}
