package heavyhitters

import (
	"repro/internal/core"
	"repro/internal/merge"
)

// This file exposes Section 6.2 on the public API: merging summaries of
// separate streams into a summary of their union.

// Deprecated: prefer MergeSummaries (or Summary.Merge), which carries
// per-item error metadata into the result; Merge remains for code
// holding concrete Counter values and for the literal k-sparse
// construction.
//
// Merge combines summaries of ℓ separate streams into one summary of the
// union (Theorem 11): the k-sparse recovery of each input is fed, as
// weighted updates, into a fresh SPACESAVINGR with m counters. If every
// input provides a k-tail guarantee with constants (A, B), the result
// provides (3A, A+B) — so for SPACESAVING/FREQUENT inputs, picking m a
// small constant factor larger recovers the single-stream bound.
func Merge[K comparable](m, k int, summaries ...Counter[K]) *SpaceSavingR[K] {
	entries := make([][]core.Entry[K], len(summaries))
	for i, s := range summaries {
		entries[i] = s.Entries()
	}
	return merge.KSparse(m, k, entries...)
}

// MergeWeighted merges real-valued summaries the same way.
func MergeWeighted[K comparable](m, k int, summaries ...WeightedCounter[K]) *SpaceSavingR[K] {
	entries := make([][]core.WeightedEntry[K], len(summaries))
	for i, s := range summaries {
		entries[i] = s.WeightedEntries()
	}
	return merge.KSparseWeighted(m, k, entries...)
}

// Deprecated: prefer MergeSummaries (or Summary.Merge), the same
// construction on the unified surface with error metadata carried
// through.
//
// MergeAll merges summaries by refeeding every stored counter instead of
// only the top k. It is the recommended merge in practice: with
// homogeneous shards the union's (k+1)-th item can be dropped from every
// k-sparse recovery, making Merge's error at least f_{k+1}, which for
// m ≫ k marginally exceeds the Theorem 11 bound (a boundary finding of
// this reproduction; see EXPERIMENTS.md E9). MergeAll keeps the bound for
// every item because an item a shard's summary dropped entirely has
// frequency at most that shard's own error bound.
func MergeAll[K comparable](m int, summaries ...Counter[K]) *SpaceSavingR[K] {
	entries := make([][]core.Entry[K], len(summaries))
	for i, s := range summaries {
		entries[i] = s.Entries()
	}
	return merge.MSparse(m, entries...)
}

// MergeAllWeighted is MergeAll for real-valued summaries.
func MergeAllWeighted[K comparable](m int, summaries ...WeightedCounter[K]) *SpaceSavingR[K] {
	entries := make([][]core.WeightedEntry[K], len(summaries))
	for i, s := range summaries {
		entries[i] = s.WeightedEntries()
	}
	return merge.MSparseWeighted(m, entries...)
}

// MergedGuarantee maps per-summary tail constants (A, B) to the merged
// summary's (3A, A+B) of Theorem 11.
func MergedGuarantee(g TailGuarantee) TailGuarantee {
	return merge.MergedGuarantee(g)
}
