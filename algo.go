package heavyhitters

import "fmt"

// Algo selects the algorithm backing a Summary built by New. The zero
// value is AlgoSpaceSaving, the paper's recommended default: O(1)
// updates, never underestimates, per-item certain error bounds, and the
// space-optimal k-tail guarantee of Theorem 2 / Appendix C.
type Algo uint8

const (
	// AlgoSpaceSaving is SPACESAVING (Metwally et al.) backed by the
	// Stream-Summary bucket list: m counters, O(1) per update, never
	// underestimates, (1, 1) k-tail guarantee, per-item bounds
	// [c − ε_i, c].
	AlgoSpaceSaving Algo = iota
	// AlgoFrequent is FREQUENT (Misra–Gries): m counters, O(1) amortised
	// per update, never overestimates, (1, 1) k-tail guarantee, per-item
	// bounds [c, c + d] where d counts the decrement-all operations.
	AlgoFrequent
	// AlgoLossyCounting is the Manku–Motwani baseline: window width m
	// (ε = 1/m), no hard counter cap and no k-tail guarantee; exported
	// for comparison studies.
	AlgoLossyCounting
	// AlgoCountMin is the Count-Min sketch baseline (Table 1): random-
	// ized, Ω(k log(n/k)) space for comparable accuracy, supports
	// deletions in principle; estimates never undercount.
	AlgoCountMin
	// AlgoCountSketch is the Count-Sketch baseline (Table 1): random-
	// ized, unbiased median-of-signs estimates with F2-type error.
	AlgoCountSketch
)

// String returns the canonical lower-case name, as accepted by ParseAlgo.
func (a Algo) String() string {
	switch a {
	case AlgoSpaceSaving:
		return "spacesaving"
	case AlgoFrequent:
		return "frequent"
	case AlgoLossyCounting:
		return "lossycounting"
	case AlgoCountMin:
		return "countmin"
	case AlgoCountSketch:
		return "countsketch"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// ParseAlgo maps a name (as printed by Algo.String) to its Algo. It is
// the CLI-flag companion of WithAlgorithm.
func ParseAlgo(name string) (Algo, error) {
	switch name {
	case "spacesaving":
		return AlgoSpaceSaving, nil
	case "frequent":
		return AlgoFrequent, nil
	case "lossycounting":
		return AlgoLossyCounting, nil
	case "countmin":
		return AlgoCountMin, nil
	case "countsketch":
		return AlgoCountSketch, nil
	default:
		return 0, fmt.Errorf("heavyhitters: unknown algorithm %q (want spacesaving | frequent | lossycounting | countmin | countsketch)", name)
	}
}

// deterministic reports whether the algorithm is a deterministic counter
// algorithm (the paper's HTC class plus LOSSYCOUNTING) as opposed to a
// randomized sketch.
func (a Algo) deterministic() bool {
	return a == AlgoSpaceSaving || a == AlgoFrequent || a == AlgoLossyCounting
}
