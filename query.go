package heavyhitters

// This file implements the classical φ-heavy-hitters query on top of the
// summaries: report every item whose frequency may exceed φ·N. The
// per-item interval bounds (EstimateBounds) make the answer exact in the
// following sense:
//
//   - no false negatives: every stored item with f_i ≥ φN is reported
//     (and with m > 1/φ counters every item with f_i ≥ φN is stored —
//     its frequency exceeds both algorithms' maximum possible error);
//   - labelled positives: a reported item is Guaranteed when even its
//     lower bound clears the threshold, i.e. it is certainly a heavy
//     hitter; remaining reports are possible heavy hitters whose true
//     frequency lies within [Lo, Hi].

// HeavyHitter is one φ-heavy-hitter candidate: the item, certain bounds
// on its frequency, and whether the lower bound already clears the
// threshold.
type HeavyHitter[K comparable] struct {
	Item K
	// Lo and Hi bound the true frequency: Lo ≤ f ≤ Hi.
	Lo, Hi uint64
	// Guaranteed reports Lo ≥ ⌈φN⌉: the item is certainly above the
	// threshold.
	Guaranteed bool
}

// HeavyHitters returns the items whose frequency may reach phi·N, in
// decreasing order of upper bound. phi must lie in (0, 1]. For exactness
// guarantees choose m > 1/phi (the classical sizing; the paper's results
// say m = k + F1_res(k)/(phi·N) already suffices on skewed data).
//
// Deprecated: prefer Summary.HeavyHitters on a summary built by New,
// which also covers weighted, sharded and sketch backends; this free
// function remains for code holding a concrete Counter.
func HeavyHitters[K comparable](s Counter[K], phi float64) []HeavyHitter[K] {
	if phi <= 0 || phi > 1 {
		panic("heavyhitters: phi must be in (0, 1]")
	}
	threshold := phi * float64(s.N())
	var out []HeavyHitter[K]
	for _, e := range s.Entries() {
		lo, hi := EstimateBounds(s, e.Item)
		if float64(hi) >= threshold {
			out = append(out, HeavyHitter[K]{
				Item:       e.Item,
				Lo:         lo,
				Hi:         hi,
				Guaranteed: float64(lo) >= threshold,
			})
		}
	}
	// Entries() is sorted by decreasing count; for SPACESAVING the count
	// is the upper bound, and for FREQUENT upper bounds share the +d
	// offset, so the order is already by decreasing Hi.
	return out
}

// CountersForHeavyHitters returns the classical counter budget ⌈1/φ⌉ + 1
// that guarantees every φ-heavy hitter is stored (its frequency exceeds
// the maximum possible estimation error F1/m).
func CountersForHeavyHitters(phi float64) int {
	if phi <= 0 || phi > 1 {
		panic("heavyhitters: phi must be in (0, 1]")
	}
	return int(1/phi) + 1
}
