package heavyhitters_test

// Tests of the window layer: epoch-ring rotation against an exact
// sliding-window oracle (Zipf and adversarial rotation-boundary
// streams), tick windows under an injected clock, the exponential-decay
// variant, sharded windows, merging, and the windowed codec frame.

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"
	"time"

	hh "repro"
	"repro/internal/stream"
)

// windowedAlgos are the backends the epoch ring is tested over: the
// overestimating and the underestimating counter family.
var windowedAlgos = []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent, hh.AlgoLossyCounting}

// coveredAfter returns the item count the epoch ring covers after t
// unit items: the current (partial) epoch plus the E−1 most recent full
// epochs. Rotation is lazy — it happens before the write that would
// overfill — so at an exact boundary the ring still holds E full
// epochs.
func coveredAfter(t, epochLen uint64, epochs int) uint64 {
	if t <= epochLen*uint64(epochs) {
		return t
	}
	return (t-1)%epochLen + 1 + uint64(epochs-1)*epochLen
}

// exactWindowFreqs counts occurrences over the last covered items of s.
func exactWindowFreqs(s []uint64, covered int) map[uint64]float64 {
	freq := make(map[uint64]float64)
	for _, x := range s[len(s)-covered:] {
		freq[x]++
	}
	return freq
}

// TestWindowCoveredMass pins the rotation timing: N() must equal the
// closed-form covered count at every stream position, including exact
// epoch boundaries and their neighbors.
func TestWindowCoveredMass(t *testing.T) {
	const (
		window   = 100
		epochs   = 4
		epochLen = 25
	)
	s := hh.New[uint64](hh.WithCapacity(16), hh.WithWindow(window), hh.WithEpochs(epochs))
	for i := uint64(1); i <= 1000; i++ {
		s.Update(i % 7)
		if got, want := s.N(), float64(coveredAfter(i, epochLen, epochs)); got != want {
			t.Fatalf("after %d items: N() = %v, want %v", i, got, want)
		}
	}
	ws, ok := s.Window()
	if !ok {
		t.Fatal("Window() reported unwindowed")
	}
	if ws.Epochs != epochs || ws.EpochLen != epochLen || ws.Live != epochs {
		t.Errorf("Window() = %+v", ws)
	}
	if ws.Covered != s.N() {
		t.Errorf("Covered = %v, N = %v", ws.Covered, s.N())
	}
	if _, ok := hh.New[uint64]().Window(); ok {
		t.Error("unwindowed summary reported a window state")
	}
}

// TestWindowExpiresOldMass asserts the sliding behavior users actually
// rely on: an item that stops arriving disappears entirely once the
// ring has rotated past it.
func TestWindowExpiresOldMass(t *testing.T) {
	for _, algo := range windowedAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			const window = 1000
			s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(8),
				hh.WithWindow(window), hh.WithEpochs(4))
			for i := 0; i < 5*window; i++ {
				s.Update(1)
			}
			if s.Estimate(1) == 0 {
				t.Fatal("hot item invisible while arriving")
			}
			// One full window of other traffic rotates item 1 out of
			// every epoch.
			for i := 0; i < window+window/4; i++ {
				s.Update(2)
			}
			if got := s.Estimate(1); got != 0 {
				t.Errorf("Estimate(1) = %v after a full window without arrivals, want 0", got)
			}
			if _, hi := s.EstimateBounds(2); hi < float64(window-window/4) {
				t.Errorf("upper bound on the live item = %v, below its certain window mass", hi)
			}
			if s.N() > float64(window) {
				t.Errorf("N() = %v exceeds the window %d", s.N(), window)
			}
		})
	}
}

// assertWindowInvariants checks, at one stream position, the acceptance
// property of the windowed HeavyHitters: against the exact frequencies
// of the covered suffix, (1) every reported interval contains the true
// windowed frequency, (2) every item with windowed frequency above
// (phi+eps)·N_w is reported, with eps = 1/m the per-epoch counter
// budget's classical error rate, and (3) no item is reported twice.
func assertWindowInvariants(t *testing.T, s hh.Summary[uint64], str []uint64, m int, phi float64) {
	t.Helper()
	covered := int(s.N())
	if covered <= 0 || covered > len(str) {
		t.Fatalf("covered %d outside stream of %d", covered, len(str))
	}
	freqs := exactWindowFreqs(str, covered)
	for e := range s.All() {
		lo, hi := s.EstimateBounds(e.Item)
		if f := freqs[e.Item]; lo > f+1e-6 || hi < f-1e-6 {
			t.Fatalf("item %d: bounds [%v, %v] exclude windowed frequency %v (covered %d)",
				e.Item, lo, hi, f, covered)
		}
	}
	hits := s.HeavyHitters(phi)
	reported := make(map[uint64]bool, len(hits))
	for _, h := range hits {
		if reported[h.Item] {
			t.Fatalf("item %d reported twice", h.Item)
		}
		reported[h.Item] = true
		if f := freqs[h.Item]; h.Lo > f+1e-6 || h.Hi < f-1e-6 {
			t.Fatalf("hit %d: bounds [%v, %v] exclude windowed frequency %v", h.Item, h.Lo, h.Hi, f)
		}
	}
	eps := 1 / float64(m)
	threshold := (phi + eps) * float64(covered)
	for item, f := range freqs {
		if f > threshold && !reported[item] {
			t.Fatalf("item %d has windowed frequency %v > (phi+eps)·N_w = %v but was not reported (covered %d)",
				item, f, threshold, covered)
		}
	}
}

// TestWindowHeavyHittersOracle is the acceptance test: windowed
// HeavyHitters checked against the exact sliding-window oracle on a
// Zipf stream and on the adversarial arrival orders, probing exact
// rotation boundaries and their neighbors.
func TestWindowHeavyHittersOracle(t *testing.T) {
	const (
		m        = 64
		window   = 8192
		epochs   = 8
		epochLen = window / epochs
		phi      = 0.05
	)
	streams := map[string][]uint64{
		"zipf-random": stream.Zipf(1000, 1.1, 30000, stream.OrderRandom, 11),
		"round-robin": stream.Zipf(200, 1.0, 30000, stream.OrderRoundRobin, 12),
		"blocks":      stream.Zipf(200, 1.2, 30000, stream.OrderBlocks, 13),
	}
	// An adversarial rotation-boundary stream: bursts of one item sized
	// exactly to straddle epoch boundaries, alternating with filler, so
	// burst mass is always split across two epochs.
	var boundary []uint64
	for len(boundary) < 30000 {
		for i := 0; i < epochLen/2; i++ {
			boundary = append(boundary, uint64(len(boundary)%97)+100)
		}
		for i := 0; i < epochLen; i++ {
			boundary = append(boundary, 7)
		}
	}
	streams["boundary-burst"] = boundary[:30000]

	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent} {
		for name, str := range streams {
			t.Run(algo.String()+"/"+name, func(t *testing.T) {
				s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(m),
					hh.WithWindow(window), hh.WithEpochs(epochs))
				checkpoints := map[int]bool{
					epochLen: true, epochLen + 1: true, // first rotation
					window: true, window + 1: true, // ring full, first eviction
					2*window + epochLen/2: true, // mid-epoch, steady state
					3*window - 1:          true, // one before a boundary
					len(str):              true,
				}
				next := 0
				for i, x := range str {
					s.Update(x)
					if checkpoints[i+1] {
						assertWindowInvariants(t, s, str[:i+1], m, phi)
						next++
					}
				}
				if next < 5 {
					t.Fatalf("only %d checkpoints exercised", next)
				}
			})
		}
	}
}

// TestWindowBatchMatchesUnit is the batch-kernel equivalence matrix:
// across algo × window × shard × pipeline × arena compositions, batch
// ingestion must be bit-identical to per-item ingestion — including
// rotation splits landing in identical epoch layouts. Where the
// sharded tier coalesces (counter algorithms other than LOSSYCOUNTING),
// the per-item reference replays each batch in first-occurrence-grouped
// order, which is the documented batch semantics (UpdateBatch); for
// the rest, arrival order is the reference.
func TestWindowBatchMatchesUnit(t *testing.T) {
	str := stream.Zipf(500, 1.1, 20000, stream.OrderRandom, 5)
	// A batch size coprime to the epoch length forces rotation splits
	// at every possible offset.
	const stride = 333
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent, hh.AlgoLossyCounting} {
		for _, window := range []uint64{0, 4096} {
			for _, shards := range []int{0, 4} {
				for _, pipeline := range []bool{false, true} {
					if pipeline && shards == 0 {
						continue // WithPipeline requires WithShards
					}
					for _, arena := range []bool{false, true} {
						name := fmt.Sprintf("%v/window=%d/shards=%d/pipeline=%v/arena=%v",
							algo, window, shards, pipeline, arena)
						t.Run(name, func(t *testing.T) {
							opts := []hh.Option{hh.WithAlgorithm(algo), hh.WithCapacity(64)}
							if window != 0 {
								opts = append(opts, hh.WithWindow(window), hh.WithEpochs(4))
							}
							if shards != 0 {
								opts = append(opts, hh.WithShards(shards))
							}
							if pipeline {
								opts = append(opts, hh.WithPipeline())
							}
							if arena {
								opts = append(opts, hh.WithArena())
							}
							coalesced := shards > 0 && algo != hh.AlgoLossyCounting
							if arena {
								runBatchUnitEquiv(t, opts, strKeys(str), stride, coalesced, 500)
							} else {
								runBatchUnitEquiv(t, opts, str, stride, coalesced, 500)
							}
						})
					}
				}
			}
		}
	}
}

// runBatchUnitEquiv feeds the same stream through UpdateBatch and
// through per-item updates (in grouped order where the batch path
// coalesces) and requires identical N, Len, estimates, and bounds.
func runBatchUnitEquiv[K comparable](t *testing.T, opts []hh.Option, str []K, stride int, coalesced bool, universe int) {
	t.Helper()
	unit, batch := hh.New[K](opts...), hh.New[K](opts...)
	for lo := 0; lo < len(str); lo += stride {
		chunk := str[lo:min(lo+stride, len(str))]
		ref := chunk
		if coalesced {
			ref = coalesceBatch(chunk)
		}
		for _, x := range ref {
			unit.Update(x)
		}
		batch.UpdateBatch(chunk)
	}
	batch.Flush()
	if u, b := unit.N(), batch.N(); u != b {
		t.Fatalf("N: unit %v, batch %v", u, b)
	}
	if u, b := unit.Len(), batch.Len(); u != b {
		t.Fatalf("Len: unit %v, batch %v", u, b)
	}
	seen := map[K]struct{}{}
	for _, x := range str {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if u, b := unit.Estimate(x), batch.Estimate(x); u != b {
			t.Fatalf("Estimate(%v): unit %v, batch %v", x, u, b)
		}
		ulo, uhi := unit.EstimateBounds(x)
		blo, bhi := batch.EstimateBounds(x)
		if ulo != blo || uhi != bhi {
			t.Fatalf("EstimateBounds(%v): unit [%v,%v], batch [%v,%v]", x, ulo, uhi, blo, bhi)
		}
	}
	if len(seen) > universe {
		t.Fatalf("stream touched %d items, universe %d", len(seen), universe)
	}
}

// strKeys maps a uint64 stream to string keys for the arena matrix.
func strKeys(str []uint64) []string {
	out := make([]string, len(str))
	for i, x := range str {
		out[i] = "k" + strconv.FormatUint(x, 10)
	}
	return out
}

// TestWindowWeightedArrivals covers the weighted backends under the
// ring: a count window over weighted arrivals windows the arrival
// count, and expired mass disappears.
func TestWindowWeightedArrivals(t *testing.T) {
	s := hh.New[uint64](hh.WithWeighted(), hh.WithCapacity(16),
		hh.WithWindow(100), hh.WithEpochs(4))
	for i := 0; i < 500; i++ {
		s.UpdateWeighted(1, 2.5)
	}
	if got := s.N(); got != 250 { // 100 covered arrivals × 2.5
		t.Errorf("N() = %v, want 250", got)
	}
	for i := 0; i < 125; i++ {
		s.UpdateWeighted(2, 0.5)
	}
	if got := s.Estimate(1); got != 0 {
		t.Errorf("expired weighted item still estimates %v", got)
	}
}

// TestTickWindowExpiry drives a tick window with an injected clock:
// epochs must expire on time advance alone — including on pure queries
// with no interleaved updates.
func TestTickWindowExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := hh.New[uint64](hh.WithCapacity(16),
		hh.WithTickWindow(8*time.Second, clock), hh.WithEpochs(4)) // 2s per epoch
	for i := 0; i < 100; i++ {
		s.Update(1)
	}
	if s.Estimate(1) != 100 {
		t.Fatalf("Estimate(1) = %v", s.Estimate(1))
	}
	// 5s later the item's epoch is still inside the 8s window.
	now = now.Add(5 * time.Second)
	if got := s.Estimate(1); got != 100 {
		t.Errorf("Estimate(1) = %v after 5s, want 100 (still in window)", got)
	}
	// Rotate partway: two fresh epochs of other traffic.
	for i := 0; i < 50; i++ {
		s.Update(2)
	}
	// 9s after the first burst, its epoch has aged out — with no update
	// in between, only queries.
	now = now.Add(4 * time.Second)
	if got := s.Estimate(1); got != 0 {
		t.Errorf("Estimate(1) = %v after aging out, want 0", got)
	}
	if got := s.Estimate(2); got != 50 {
		t.Errorf("Estimate(2) = %v, want 50 (still in window)", got)
	}
	ws, ok := s.Window()
	if !ok || ws.Tick != 8*time.Second {
		t.Errorf("Window() = %+v, %v", ws, ok)
	}
	// A gap longer than the whole window clears everything.
	now = now.Add(time.Minute)
	if got := s.N(); got != 0 {
		t.Errorf("N() = %v after a full-window gap, want 0", got)
	}
	s.Update(9)
	if got := s.Estimate(9); got != 1 {
		t.Errorf("unusable after full expiry: Estimate(9) = %v", got)
	}
}

// TestWindowSharded covers the shard-of-windows composition: thread
// safety under concurrent batches, expiry of stale items, and a drift
// workload where the windowed sharded summary must surface the current
// hot set.
func TestWindowSharded(t *testing.T) {
	const window = 8000
	s := hh.New[uint64](hh.WithCapacity(64), hh.WithShards(8), hh.WithWindow(window))
	var wg sync.WaitGroup
	str := stream.Zipf(300, 1.2, 40000, stream.OrderRandom, 9)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += 512 {
				s.UpdateBatch(part[lo:min(lo+512, len(part))])
			}
		}(str[g*10000 : (g+1)*10000])
	}
	wg.Wait()
	if n := s.N(); n <= 0 || n > window+8*1000 { // per-shard rings: ≤ window + p·epochLen slop
		t.Fatalf("N() = %v, want within (0, window+slop]", n)
	}
	if s.Estimate(0) == 0 {
		t.Error("hottest Zipf item invisible")
	}
	ws, ok := s.Window()
	if !ok || ws.Covered != s.N() {
		t.Errorf("Window() = %+v, %v", ws, ok)
	}
	// Drift: a brand-new hot set must dominate within one window.
	fresh := make([]uint64, window)
	for i := range fresh {
		fresh[i] = 1_000_000 + uint64(i%3)
	}
	s.UpdateBatch(fresh)
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d", len(top))
	}
	for _, e := range top {
		if e.Item < 1_000_000 {
			t.Errorf("stale item %d still in the top after a full window of drift", e.Item)
		}
	}
}

// TestWindowGuarantee pins the advertised degraded constants: E epochs
// of (1, 1) structures must report (E, E) against the ring's E·m
// capacity, which reproduces the per-epoch bound exactly.
func TestWindowGuarantee(t *testing.T) {
	const m, epochs = 128, 4
	s := hh.New[uint64](hh.WithCapacity(m), hh.WithWindow(1000), hh.WithEpochs(epochs))
	g, ok := s.Guarantee()
	if !ok {
		t.Fatal("windowed SPACESAVING lost its guarantee")
	}
	if g.A != epochs || g.B != epochs {
		t.Errorf("Guarantee = (%v, %v), want (%v, %v)", g.A, g.B, epochs, epochs)
	}
	if got := s.Capacity(); got != m*epochs {
		t.Errorf("Capacity = %d, want %d", got, m*epochs)
	}
	const k, res = 10, 500.0
	want := hh.ErrorBound(hh.TailGuarantee{A: 1, B: 1}, m, k, res)
	if got := hh.ErrorBound(g, s.Capacity(), k, res); math.Abs(got-want) > 1e-9 {
		t.Errorf("window ErrorBound = %v, per-epoch bound = %v", got, want)
	}
}

// TestWindowMerge merges two windowed summaries: the result must carry
// the union of the covered masses and certain bounds.
func TestWindowMerge(t *testing.T) {
	mk := func(seed uint64) (hh.Summary[uint64], []uint64) {
		str := stream.Zipf(200, 1.1, 12000, stream.OrderRandom, seed)
		s := hh.New[uint64](hh.WithCapacity(64), hh.WithWindow(4096), hh.WithEpochs(4))
		s.UpdateBatch(str)
		return s, str
	}
	a, sa := mk(3)
	b, sb := mk(4)
	merged, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.N(), a.N()+b.N(); math.Abs(got-want) > 1e-6 {
		t.Errorf("merged N = %v, want %v", got, want)
	}
	fa := exactWindowFreqs(sa, int(a.N()))
	fb := exactWindowFreqs(sb, int(b.N()))
	for _, e := range merged.Top(20) {
		lo, hi := merged.EstimateBounds(e.Item)
		f := fa[e.Item] + fb[e.Item]
		if lo > f+1e-6 || hi < f-1e-6 {
			t.Errorf("merged bounds [%v, %v] exclude combined windowed frequency %v of %d", lo, hi, f, e.Item)
		}
	}
	if _, ok := merged.Guarantee(); !ok {
		t.Error("merged windowed summaries lost the guarantee")
	}
}

// --- exponential decay ---

// TestDecayGeometric checks the decay arithmetic exactly: after n
// further arrivals, an item's estimate must have decayed by e^(−λn).
func TestDecayGeometric(t *testing.T) {
	const lambda = 0.01
	s := hh.New[uint64](hh.WithCapacity(16), hh.WithDecay(lambda))
	for i := 0; i < 100; i++ {
		s.UpdateWeighted(1, 1)
	}
	base := s.Estimate(1)
	const n = 500
	for i := 0; i < n; i++ {
		s.UpdateWeighted(2, 1)
	}
	want := base * math.Exp(-lambda*n)
	if got := s.Estimate(1); math.Abs(got-want) > 1e-6*want {
		t.Errorf("Estimate(1) = %v after %d arrivals, want %v", got, n, want)
	}
	// N() is the decayed total mass; with rate λ it converges to
	// 1/(1 − e^−λ) under unit arrivals, never grows unboundedly.
	if n := s.N(); n > 1/(1-math.Exp(-lambda))+1 {
		t.Errorf("decayed N() = %v did not saturate", n)
	}
}

// TestDecayRenormalization forces many renormalization cycles (λ·t far
// beyond the 256 exponent budget) and checks the estimates stay finite,
// accurate and properly ordered.
func TestDecayRenormalization(t *testing.T) {
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent} {
		t.Run(algo.String(), func(t *testing.T) {
			const lambda = 0.5 // 20000 arrivals → λt = 10000 ≈ 39 renormalizations
			s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(8), hh.WithDecay(lambda))
			for i := 0; i < 20000; i++ {
				s.UpdateWeighted(uint64(i%3), 1)
			}
			for i := uint64(0); i < 3; i++ {
				got := s.Estimate(i)
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
					t.Fatalf("Estimate(%d) = %v after renormalizations", i, got)
				}
			}
			// The most recent arrival (i = 19999, item 0 when i%3 == 1...)
			// dominates: with λ = 0.5 the last item carries weight 1 and
			// everything two steps back ≤ e^−1. Top(1) must be the item of
			// the final arrival.
			last := uint64((20000 - 1) % 3)
			top := s.Top(1)
			if len(top) != 1 || top[0].Item != last {
				t.Errorf("Top(1) = %v, want item %d (the most recent arrival)", top, last)
			}
			if n := s.N(); math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
				t.Errorf("N() = %v", n)
			}
			s.Reset()
			if s.N() != 0 {
				t.Error("Reset did not clear decayed state")
			}
			s.UpdateWeighted(7, 2)
			if got := s.Estimate(7); got != 2 {
				t.Errorf("post-Reset Estimate = %v, want 2", got)
			}
		})
	}
}

// TestDecayHeavyHitters: with decay, "heavy" means heavy recently — an
// old giant must drop out of HeavyHitters once enough fresh mass
// arrives, without any hard window.
func TestDecayHeavyHitters(t *testing.T) {
	const lambda = 0.005
	s := hh.New[uint64](hh.WithCapacity(32), hh.WithDecay(lambda))
	for i := 0; i < 2000; i++ {
		s.UpdateWeighted(1, 1)
	}
	hits := s.HeavyHitters(0.5)
	if len(hits) == 0 || hits[0].Item != 1 {
		t.Fatalf("fresh giant not reported: %v", hits)
	}
	// 2000 arrivals of other items: item 1's mass decays by e^−10.
	for i := 0; i < 2000; i++ {
		s.UpdateWeighted(uint64(2+i%16), 1)
	}
	for _, h := range s.HeavyHitters(0.5) {
		if h.Item == 1 {
			t.Errorf("decayed giant still reported as a 50%% hitter with estimate %v", h.Count)
		}
	}
	if _, ok := s.Guarantee(); !ok {
		t.Error("decayed SPACESAVING lost its guarantee")
	}
	if _, ok := s.Window(); ok {
		t.Error("decayed summary reported an epoch-ring window state")
	}
}

// TestDecayShardedHorizon pins the decay × sharding composition: the
// per-shard rate is scaled by p, so the decay horizon is measured in
// global arrivals — a sharded summary's saturated mass must match the
// unsharded one's (≈ 1/(1−e^−λ)), not be p× larger.
func TestDecayShardedHorizon(t *testing.T) {
	const lambda = 0.01
	str := stream.Uniform(1000, 200_000, 51)
	flat := hh.New[uint64](hh.WithCapacity(64), hh.WithDecay(lambda))
	sharded := hh.New[uint64](hh.WithCapacity(64), hh.WithDecay(lambda), hh.WithShards(8))
	for _, x := range str {
		flat.Update(x)
		sharded.Update(x)
	}
	want := 1 / (1 - math.Exp(-lambda)) // ≈ 100.5 saturated arrivals
	if got := flat.N(); math.Abs(got-want) > 0.2*want {
		t.Errorf("unsharded decayed N = %v, want ≈ %v", got, want)
	}
	// Shard occupancy fluctuates, so allow generous slack — the bug this
	// guards against is an 8× discrepancy.
	if got := sharded.N(); math.Abs(got-want) > 0.5*want {
		t.Errorf("sharded decayed N = %v, want ≈ %v (p-scaled per-shard rate)", got, want)
	}
}

// TestDecayUnitAndBatch drives Update/UpdateBatch through the decay
// tier (each arrival is one decay tick).
func TestDecayUnitAndBatch(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(16), hh.WithDecay(0.001))
	s.Update(1)
	s.UpdateBatch([]uint64{2, 2, 3})
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if e2, e3 := s.Estimate(2), s.Estimate(3); e2 <= e3 {
		t.Errorf("Estimate(2) = %v not above Estimate(3) = %v", e2, e3)
	}
}

// --- option validation ---

func TestWindowOptionValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("window+tick", func() {
		hh.New[uint64](hh.WithWindow(10), hh.WithTickWindow(time.Second, nil))
	})
	expectPanic("zero window", func() { hh.New[uint64](hh.WithWindow(0)) })
	expectPanic("zero tick", func() { hh.New[uint64](hh.WithTickWindow(0, nil)) })
	expectPanic("epochs without window", func() { hh.New[uint64](hh.WithEpochs(4)) })
	expectPanic("bad epochs", func() { hh.New[uint64](hh.WithWindow(10), hh.WithEpochs(0)) })
	expectPanic("windowed sketch", func() {
		hh.New[uint64](hh.WithAlgorithm(hh.AlgoCountMin), hh.WithWindow(10))
	})
	expectPanic("decay+window", func() { hh.New[uint64](hh.WithDecay(0.1), hh.WithWindow(10)) })
	expectPanic("negative decay", func() { hh.New[uint64](hh.WithDecay(-1)) })
	// "decay disabled" must be an error, not a silent switch to the
	// weighted backend with no decay.
	expectPanic("zero decay", func() { hh.New[uint64](hh.WithDecay(0)) })
	expectPanic("NaN decay", func() { hh.New[uint64](hh.WithDecay(math.NaN())) })
	expectPanic("decayed lossycounting", func() {
		hh.New[uint64](hh.WithAlgorithm(hh.AlgoLossyCounting), hh.WithDecay(0.1))
	})
	// Epoch count clamps to the window length rather than erroring.
	s := hh.New[uint64](hh.WithWindow(3), hh.WithEpochs(64))
	if ws, _ := s.Window(); ws.Epochs != 3 {
		t.Errorf("Epochs = %d, want clamped to 3", ws.Epochs)
	}
}

// --- windowed codec ---

// TestWindowCodecRoundTrip encodes a rotated epoch ring and checks the
// decoded summary answers identically — and keeps rotating.
func TestWindowCodecRoundTrip(t *testing.T) {
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent} {
		t.Run(algo.String(), func(t *testing.T) {
			const window, epochs, epochLen = 4096, 4, 1024
			str := stream.Zipf(300, 1.1, 10000, stream.OrderRandom, 17)
			src := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(64),
				hh.WithWindow(window), hh.WithEpochs(epochs))
			src.UpdateBatch(str)

			var buf bytes.Buffer
			if err := src.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := hh.Decode[uint64](&buf)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Algorithm() != algo {
				t.Errorf("Algorithm = %v", dec.Algorithm())
			}
			if dec.N() != src.N() {
				t.Errorf("N: decoded %v, source %v", dec.N(), src.N())
			}
			ws, ok := dec.Window()
			if !ok {
				t.Fatal("decoded summary lost its window state")
			}
			if ws.Epochs != epochs || ws.EpochLen != epochLen {
				t.Errorf("decoded window state %+v", ws)
			}
			for i := uint64(0); i < 300; i++ {
				if ds, ss := dec.Estimate(i), src.Estimate(i); ds != ss {
					t.Fatalf("Estimate(%d): decoded %v, source %v", i, ds, ss)
				}
				dl, dh := dec.EstimateBounds(i)
				sl, sh := src.EstimateBounds(i)
				if dl > sl+1e-9 || dh < sh-1e-9 {
					t.Fatalf("bounds(%d): decoded [%v, %v] tighter than source [%v, %v]", i, dl, dh, sl, sh)
				}
			}
			// The decoded ring keeps rotating: a full window of fresh
			// traffic must expel the transferred mass.
			for i := 0; i < window+epochLen; i++ {
				dec.Update(999_999)
			}
			if got := dec.Estimate(0); got != 0 {
				t.Errorf("transferred mass survived a full post-decode window: %v", got)
			}
			// And the advanced ring re-encodes.
			var buf2 bytes.Buffer
			if err := dec.Encode(&buf2); err != nil {
				t.Fatal(err)
			}
			if _, err := hh.Decode[uint64](&buf2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWindowCodecStringKeys exercises the windowed frame's other key
// kind and the tick mode.
func TestWindowCodecStringKeys(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	src := hh.New[string](hh.WithCapacity(8),
		hh.WithTickWindow(4*time.Second, clock), hh.WithEpochs(4))
	for i := 0; i < 100; i++ {
		src.Update("alpha")
		src.Update("beta")
	}
	now = now.Add(time.Second)
	src.Update("gamma")

	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[string](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Estimate("alpha"); got != 100 {
		t.Errorf("Estimate(alpha) = %v", got)
	}
	ws, ok := dec.Window()
	if !ok || ws.Tick != 4*time.Second {
		t.Errorf("decoded tick window state %+v, %v", ws, ok)
	}
	// Key-kind mismatch must fail loudly.
	buf.Reset()
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := hh.Decode[uint64](&buf); err == nil {
		t.Error("decoding string-keyed window as uint64 succeeded")
	}
}

// TestFlatWindowBoundsStayCertain is the regression test for the
// flattened windowed encode: an item whose mass is split across epochs
// — present in some, evicted from others — has an aggregate Count that
// omits the evicted epochs' contribution, so the flat frame's global
// slack must cover the epochs' eviction floors or decoded upper bounds
// exclude the true windowed frequency (review repro: live [10, 25],
// decoded [10, 13], truth 15).
func TestFlatWindowBoundsStayCertain(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(4), hh.WithShards(2), hh.WithWindow(400), hh.WithEpochs(4))
	for i := 0; i < 5; i++ { // old epoch: item 0 gets 5...
		s.Update(0)
	}
	for i := uint64(1); i <= 40; i++ { // ...then is evicted by filler
		for j := 0; j < 3; j++ {
			s.Update(i)
		}
	}
	for i := 0; i < 10; i++ { // fresh epoch: 10 more of item 0
		s.Update(0)
	}
	lo, hi := s.EstimateBounds(0)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := hh.Decode[uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	dlo, dhi := d.EstimateBounds(0)
	if dlo > lo+1e-9 || dhi < hi-1e-9 {
		t.Errorf("decoded bounds [%v, %v] tighter than the live certain bounds [%v, %v]", dlo, dhi, lo, hi)
	}
	if dlo > 15 || dhi < 15 {
		t.Errorf("decoded bounds [%v, %v] exclude the true windowed count 15", dlo, dhi)
	}
}

// TestWindowShardedAndDecayedEncodeFlat: configurations without a
// single epoch ring (sharded windows, decay) flatten to a snapshot that
// round-trips through the flat frame.
func TestWindowShardedAndDecayedEncodeFlat(t *testing.T) {
	sharded := hh.New[uint64](hh.WithCapacity(32), hh.WithShards(4), hh.WithWindow(1000))
	str := stream.Zipf(100, 1.2, 5000, stream.OrderRandom, 23)
	sharded.UpdateBatch(str)
	var buf bytes.Buffer
	if err := sharded.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != sharded.N() {
		t.Errorf("N: decoded %v, source %v", dec.N(), sharded.N())
	}
	if _, ok := dec.Window(); ok {
		t.Error("flattened sharded window decoded with a ring state")
	}

	decayed := hh.New[uint64](hh.WithCapacity(32), hh.WithDecay(0.01))
	for _, x := range str {
		decayed.Update(x)
	}
	buf.Reset()
	if err := decayed.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec2, err := hh.Decode[uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := dec2.Estimate(0), decayed.Estimate(0); math.Abs(a-b) > 1e-9*(a+b+1) {
		t.Errorf("decayed snapshot Estimate(0): decoded %v, source %v", a, b)
	}
}
