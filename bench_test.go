package heavyhitters_test

// One benchmark per experiment table (E1–E11, see DESIGN.md §4): running
// `go test -bench=E -benchmem` regenerates every table of the
// reproduction at benchmark scale. Micro-benchmarks of the individual
// algorithms' update paths follow.
//
// cmd/hhbench prints the same tables with full-size workloads and is the
// intended way to read the results; the benchmarks exist to track the
// cost of regenerating them and to integrate with standard Go tooling.

import (
	"bytes"
	"io"
	"testing"

	hh "repro"
	"repro/internal/experiments"
	"repro/internal/stream"
)

// benchCfg keeps the per-iteration cost of experiment benchmarks modest;
// hhbench uses experiments.Default() for the full-size run.
func benchCfg() experiments.Config {
	return experiments.Config{N: 50_000, Universe: 5_000, Alpha: 1.1, Seed: 20090629}
}

func runExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := run(cfg)
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Table1(b *testing.B)             { runExperiment(b, experiments.E1Table1) }
func BenchmarkE2TailGuarantee(b *testing.B)      { runExperiment(b, experiments.E2TailGuarantee) }
func BenchmarkE3SparseRecovery(b *testing.B)     { runExperiment(b, experiments.E3SparseRecovery) }
func BenchmarkE4ResidualEstimation(b *testing.B) { runExperiment(b, experiments.E4ResidualEstimation) }
func BenchmarkE5MSparse(b *testing.B)            { runExperiment(b, experiments.E5MSparse) }
func BenchmarkE6Zipf(b *testing.B)               { runExperiment(b, experiments.E6Zipf) }
func BenchmarkE7TopK(b *testing.B)               { runExperiment(b, experiments.E7TopK) }
func BenchmarkE8Weighted(b *testing.B)           { runExperiment(b, experiments.E8Weighted) }
func BenchmarkE9Merge(b *testing.B)              { runExperiment(b, experiments.E9Merge) }
func BenchmarkE10LowerBound(b *testing.B)        { runExperiment(b, experiments.E10LowerBound) }
func BenchmarkE11Ablations(b *testing.B)         { runExperiment(b, experiments.E11Ablations) }
func BenchmarkE12Retrieval(b *testing.B)         { runExperiment(b, experiments.E12Retrieval) }

// --- per-update micro-benchmarks ---

// benchStream is shared by the micro-benchmarks: Zipf-distributed updates
// so eviction paths are exercised realistically.
func benchStream(n int) []uint64 {
	return stream.Zipf(10_000, 1.1, uint64(n), stream.OrderRandom, 1)
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSaving[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkSpaceSavingHeapUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSavingHeap[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkFrequentUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewFrequent[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkLossyCountingUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewLossyCounting[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	cm := hh.NewCountMin(4, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	s := benchStream(1 << 16)
	cs := hh.NewCountSketch(5, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(s[i&(1<<16-1)])
	}
}

func BenchmarkSpaceSavingRUpdateWeighted(b *testing.B) {
	ups := stream.WeightedZipf(10_000, 1.1, 1e6, 4, 1)
	alg := hh.NewSpaceSavingR[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		alg.UpdateWeighted(u.Item, u.Weight)
	}
}

func BenchmarkFrequentRUpdateWeighted(b *testing.B) {
	ups := stream.WeightedZipf(10_000, 1.1, 1e6, 4, 1)
	alg := hh.NewFrequentR[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		alg.UpdateWeighted(u.Item, u.Weight)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSaving[uint64](1024)
	for _, x := range s {
		alg.Update(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += alg.Estimate(uint64(i % 10_000))
	}
	_ = sink
}

func BenchmarkTopK(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSaving[uint64](1024)
	for _, x := range s {
		alg.Update(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(hh.Top[uint64](alg, 10)) == 0 {
			b.Fatal("empty top-k")
		}
	}
}

func BenchmarkConcurrentUpdateParallel(b *testing.B) {
	s := benchStream(1 << 16)
	c := hh.NewConcurrentUint64(16, 256)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Update(s[i&(1<<16-1)])
			i++
		}
	})
}

func BenchmarkEncodeSummary(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSaving[uint64](1024)
	for _, x := range s {
		alg.Update(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hh.EncodeSummary(io.Discard, alg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSummary(b *testing.B) {
	s := benchStream(1 << 16)
	alg := hh.NewSpaceSaving[uint64](1024)
	for _, x := range s {
		alg.Update(x)
	}
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, alg); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hh.DecodeSummary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- unified-API ingestion: per-item Update vs UpdateBatch ---

// benchBatch is the batch size of the UpdateBatch benchmarks; one
// iteration processes this many items in both variants so ns/op is
// directly comparable.
const benchBatch = 4096

func summaryOpts(shards int) []hh.Option {
	opts := []hh.Option{hh.WithCapacity(1024)}
	if shards > 0 {
		opts = append(opts, hh.WithShards(shards))
	}
	return opts
}

func benchSummaryUpdate(b *testing.B, shards int) {
	s := benchStream(1 << 16)
	sum := hh.New[uint64](summaryOpts(shards)...)
	b.ReportAllocs()
	b.SetBytes(benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i % (1 << 16 / benchBatch)) * benchBatch
		for j := 0; j < benchBatch; j++ {
			sum.Update(s[base+j])
		}
	}
}

func benchSummaryUpdateBatch(b *testing.B, shards int) {
	s := benchStream(1 << 16)
	sum := hh.New[uint64](summaryOpts(shards)...)
	b.ReportAllocs()
	b.SetBytes(benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i % (1 << 16 / benchBatch)) * benchBatch
		sum.UpdateBatch(s[base : base+benchBatch])
	}
}

func BenchmarkSummaryUpdate(b *testing.B)             { benchSummaryUpdate(b, 0) }
func BenchmarkSummaryUpdateBatch(b *testing.B)        { benchSummaryUpdateBatch(b, 0) }
func BenchmarkSummaryShardedUpdate(b *testing.B)      { benchSummaryUpdate(b, 8) }
func BenchmarkSummaryShardedUpdateBatch(b *testing.B) { benchSummaryUpdateBatch(b, 8) }

func BenchmarkSummaryShardedUpdateParallel(b *testing.B) {
	s := benchStream(1 << 16)
	sum := hh.New[uint64](hh.WithShards(16), hh.WithCapacity(256))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sum.Update(s[i&(1<<16-1)])
			i++
		}
	})
}

func BenchmarkSummaryShardedUpdateBatchParallel(b *testing.B) {
	s := benchStream(1 << 16)
	sum := hh.New[uint64](hh.WithShards(16), hh.WithCapacity(256))
	b.ReportAllocs()
	b.SetBytes(benchBatch)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			base := (i % (1 << 16 / benchBatch)) * benchBatch
			sum.UpdateBatch(s[base : base+benchBatch])
			i++
		}
	})
}

func BenchmarkMerge(b *testing.B) {
	s := benchStream(1 << 16)
	a1 := hh.NewSpaceSaving[uint64](256)
	a2 := hh.NewSpaceSaving[uint64](256)
	for i, x := range s {
		if i%2 == 0 {
			a1.Update(x)
		} else {
			a2.Update(x)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Merge[uint64](256, 16, a1, a2)
	}
}
