package heavyhitters_test

import (
	"testing"
	"testing/quick"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

func TestHeavyHittersBasic(t *testing.T) {
	ss := hh.NewSpaceSaving[string](8)
	for i := 0; i < 60; i++ {
		ss.Update("hot")
	}
	for i := 0; i < 25; i++ {
		ss.Update("warm")
	}
	for i := 0; i < 15; i++ {
		ss.Update("cool")
	}
	// N = 100; phi = 0.2 → threshold 20.
	hits := hh.HeavyHitters[string](ss, 0.2)
	if len(hits) != 2 {
		t.Fatalf("got %d heavy hitters, want 2: %v", len(hits), hits)
	}
	if hits[0].Item != "hot" || !hits[0].Guaranteed {
		t.Errorf("first hit = %+v, want guaranteed 'hot'", hits[0])
	}
	if hits[1].Item != "warm" || !hits[1].Guaranteed {
		t.Errorf("second hit = %+v, want guaranteed 'warm'", hits[1])
	}
}

func TestHeavyHittersNoFalseNegativesProperty(t *testing.T) {
	// With m = 1/phi + 1 counters, every item with f >= phi*N must be
	// reported — for both algorithms, on arbitrary streams.
	const phi = 0.125
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		m := hh.CountersForHeavyHitters(phi)
		ss := hh.NewSpaceSaving[uint64](m)
		fr := hh.NewFrequent[uint64](m)
		truth := exact.New()
		for _, b := range raw {
			x := uint64(b) % 20
			ss.Update(x)
			fr.Update(x)
			truth.Update(x)
		}
		threshold := phi * truth.F1()
		for _, s := range []hh.Counter[uint64]{ss, fr} {
			reported := map[uint64]bool{}
			for _, h := range hh.HeavyHitters[uint64](s, phi) {
				reported[h.Item] = true
			}
			for i := uint64(0); i < 20; i++ {
				if truth.Freq(i) >= threshold && !reported[i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeavyHittersGuaranteedAreTrue(t *testing.T) {
	// Guaranteed hits must truly be above the threshold.
	const phi = 0.01
	s := stream.Zipf(1000, 1.2, 100000, stream.OrderRandom, 7)
	truth := exact.FromStream(s)
	ss := hh.NewSpaceSaving[uint64](hh.CountersForHeavyHitters(phi))
	for _, x := range s {
		ss.Update(x)
	}
	threshold := phi * truth.F1()
	for _, h := range hh.HeavyHitters[uint64](ss, phi) {
		if h.Guaranteed && truth.Freq(h.Item) < threshold {
			t.Errorf("item %d guaranteed but true frequency %v < %v", h.Item, truth.Freq(h.Item), threshold)
		}
		if float64(h.Lo) > truth.Freq(h.Item) || truth.Freq(h.Item) > float64(h.Hi) {
			t.Errorf("item %d: true %v outside [%d, %d]", h.Item, truth.Freq(h.Item), h.Lo, h.Hi)
		}
	}
}

func TestHeavyHittersSortedByUpperBound(t *testing.T) {
	s := stream.Zipf(200, 1.3, 20000, stream.OrderRandom, 3)
	ss := hh.NewSpaceSaving[uint64](50)
	for _, x := range s {
		ss.Update(x)
	}
	hits := hh.HeavyHitters[uint64](ss, 0.01)
	for i := 1; i < len(hits); i++ {
		if hits[i].Hi > hits[i-1].Hi {
			t.Fatalf("hits not sorted by upper bound: %v", hits)
		}
	}
}

func TestHeavyHittersPanics(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](4)
	for _, phi := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("phi=%v did not panic", phi)
				}
			}()
			hh.HeavyHitters[uint64](ss, phi)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CountersForHeavyHitters(0) did not panic")
			}
		}()
		hh.CountersForHeavyHitters(0)
	}()
}

func TestCountersForHeavyHitters(t *testing.T) {
	if got := hh.CountersForHeavyHitters(0.1); got != 11 {
		t.Errorf("CountersForHeavyHitters(0.1) = %d, want 11", got)
	}
	if got := hh.CountersForHeavyHitters(1); got != 2 {
		t.Errorf("CountersForHeavyHitters(1) = %d, want 2", got)
	}
}
