package heavyhitters_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

func TestSummaryCodecRoundTripUint64(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](8)
	for _, x := range []uint64{1, 1, 1, 2, 2, 3, 1 << 50} {
		ss.Update(x)
	}
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, ss); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.DecodeSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if blob.Capacity != 8 || blob.N != 7 {
		t.Errorf("blob meta = m:%d N:%d, want 8/7", blob.Capacity, blob.N)
	}
	want := ss.Entries()
	if len(blob.Entries) != len(want) {
		t.Fatalf("entries = %d, want %d", len(blob.Entries), len(want))
	}
	for i := range want {
		if blob.Entries[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, blob.Entries[i], want[i])
		}
	}
}

func TestSummaryCodecRoundTripString(t *testing.T) {
	ss := hh.NewSpaceSaving[string](4)
	for _, w := range []string{"alpha", "beta", "alpha", "", "gamma-with-long-name"} {
		ss.Update(w)
	}
	var buf bytes.Buffer
	if err := hh.EncodeStringSummary(&buf, ss); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.DecodeStringSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, e := range blob.Entries {
		got[e.Item] = e.Count
	}
	if got["alpha"] != 2 {
		t.Errorf("alpha count = %d, want 2", got["alpha"])
	}
	if _, ok := got[""]; !ok {
		t.Error("empty-string key lost in round trip")
	}
}

func TestSummaryCodecEmptySummary(t *testing.T) {
	f := hh.NewFrequent[uint64](4)
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, f); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.DecodeSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob.Entries) != 0 || blob.N != 0 {
		t.Errorf("blob = %+v, want empty", blob)
	}
}

func TestSummaryCodecRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("XXXXXXXXXXXX"),
		"truncated":  {'H', 'H', 'S', 'U', 'M', '1', 1},
		"wrong kind": append([]byte{'H', 'H', 'S', 'U', 'M', '1', 9}, 0, 0, 0),
	}
	for name, raw := range cases {
		if _, err := hh.DecodeSummary(bytes.NewReader(raw)); !errors.Is(err, hh.ErrBadSummary) {
			t.Errorf("%s: err = %v, want ErrBadSummary", name, err)
		}
	}
}

func TestSummaryCodecKindMismatch(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](4)
	ss.Update(1)
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, ss); err != nil {
		t.Fatal(err)
	}
	if _, err := hh.DecodeStringSummary(&buf); !errors.Is(err, hh.ErrBadSummary) {
		t.Errorf("string decoder accepted uint64 blob: %v", err)
	}
}

func TestSummaryCodecTruncatedEntries(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](4)
	for _, x := range []uint64{1, 2, 3} {
		ss.Update(x)
	}
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, ss); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := hh.DecodeSummary(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated blob decoded without error")
	}
}

func TestMergeBlobsMatchesDirectMerge(t *testing.T) {
	// Ship-and-merge must agree with merging in-process.
	const n, total, m, k = 300, 60000, 100, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 17)
	truth := exact.FromStream(s)
	a := hh.NewSpaceSaving[uint64](m)
	b := hh.NewSpaceSaving[uint64](m)
	for i, x := range s {
		if i%2 == 0 {
			a.Update(x)
		} else {
			b.Update(x)
		}
	}
	var bufA, bufB bytes.Buffer
	if err := hh.EncodeSummary(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := hh.EncodeSummary(&bufB, b); err != nil {
		t.Fatal(err)
	}
	blobA, err := hh.DecodeSummary(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := hh.DecodeSummary(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	viaWire := hh.MergeBlobs(m, blobA, blobB)
	direct := hh.MergeAll[uint64](m, a, b)
	for i := uint64(0); i < n; i++ {
		if viaWire.EstimateWeighted(i) != direct.EstimateWeighted(i) {
			t.Fatalf("item %d: wire merge %v != direct merge %v",
				i, viaWire.EstimateWeighted(i), direct.EstimateWeighted(i))
		}
	}
	// And the merged result still honours the (3,2) bound.
	bound := hh.MergedGuarantee(hh.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
	for i := uint64(0); i < n; i++ {
		if d := math.Abs(truth.Freq(i) - viaWire.EstimateWeighted(i)); d > bound {
			t.Errorf("item %d: error %v exceeds bound %v", i, d, bound)
		}
	}
}
