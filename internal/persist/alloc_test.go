package persist

import (
	"fmt"
	"testing"

	"repro/internal/testutil"
)

// TestAppendBatchZeroAllocs pins the WAL half of the durable-ingest
// zero-alloc contract: AppendBatch builds the record in the writer's
// reused scratch and encodes the uvarint batch body in place, so at
// steady state a durable ingest adds no allocations over the in-memory
// path. (The registry-level test covers the full IngestBatch path; this
// one isolates the store so a regression points at the right layer.)
func TestAppendBatchZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; allocation accounting is meaningless under -race")
	}
	s, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	var seq Seq
	// Warm: grow the scratch buffer to the steady-state record size.
	if err := s.AppendBatch("queries", &seq, keys); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := s.AppendBatch("queries", &seq, keys); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("AppendBatch: %.4f allocs per run at steady state, want 0", avg)
	}
}
