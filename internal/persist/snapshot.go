package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Snapshot layout names (normative in docs/DURABILITY.md §2).
const (
	// ManifestFormat is the value of the manifest's "format" field —
	// and, because it is the manifest's first field, the sniffable
	// prefix tools use to recognize one.
	ManifestFormat = "hhsnap/v1"
	// ManifestName is the manifest file inside a snapshot directory.
	ManifestName = "MANIFEST.json"
	// CurrentName is the committed-snapshot pointer file in the data
	// directory root: one line naming the committed snapshot directory.
	CurrentName = "CURRENT"
	// BlobSuffix is appended to a summary's name to form its blob file.
	BlobSuffix = ".hhsum"
	// WALDirName is the WAL subdirectory of the data directory.
	WALDirName = "wal"

	snapPrefix = "snap-"
)

// Manifest is the snapshot manifest: the JSON document that makes a
// snapshot directory self-describing and pins, per summary, the last
// WAL sequence the snapshot covers. Field order matters only for
// "format", which is declared first so the serialized document starts
// with a recognizable prefix.
type Manifest struct {
	Format string `json:"format"`
	// WrittenAt is informational (recovery never consults the clock).
	WrittenAt time.Time `json:"written_at"`
	// WALSegment is the lowest WAL segment index NOT covered by this
	// snapshot: replay starts there, and every lower-numbered segment
	// is prunable once the snapshot commits.
	WALSegment uint64 `json:"wal_segment"`
	// Summaries lists one entry per persisted summary, sorted by name.
	Summaries []ManifestSummary `json:"summaries"`
}

// ManifestGuarantee records the summary's (A, B) tail-guarantee
// constants at snapshot time — informational for tools; recovery
// re-derives guarantees from the spec.
type ManifestGuarantee struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

// ManifestSummary describes one summary's blob within the snapshot.
type ManifestSummary struct {
	Name string `json:"name"`
	// Blob is the blob's file name inside the snapshot directory;
	// Size and CRC32C (Castagnoli) authenticate its content.
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
	Blob   string `json:"blob"`
	// Seq is the last WAL sequence number this blob covers: replay
	// skips records for this summary with sequence <= Seq.
	Seq uint64 `json:"seq"`
	// N, Len, Algorithm and Guarantee mirror the encoded state —
	// informational cross-checks for tools and recovery sanity tests.
	N         float64            `json:"n"`
	Len       int                `json:"len"`
	Algorithm string             `json:"algorithm,omitempty"`
	Guarantee *ManifestGuarantee `json:"guarantee,omitempty"`
	// Spec is the summary's full (hardened) construction spec; recovery
	// rebuilds the summary from it, so a recovered Guarantee() equals
	// the pre-crash one.
	Spec json.RawMessage `json:"spec"`
}

// SummarySnapshot is the write-side input: one summary's state as
// captured under the registry's quiesce.
type SummarySnapshot struct {
	Name      string
	Spec      json.RawMessage
	Seq       uint64
	N         float64
	Len       int
	Algorithm string
	Guarantee *ManifestGuarantee
	Blob      []byte
}

func snapDirName(epoch uint64) string {
	return fmt.Sprintf("%s%016x", snapPrefix, epoch)
}

// snapEpoch parses a snapshot directory name; ok is false for foreign
// directories.
func snapEpoch(name string) (uint64, bool) {
	hex, found := strings.CutPrefix(name, snapPrefix)
	if !found || len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ReadManifest reads a data directory's committed snapshot manifest:
// the CURRENT pointer, then MANIFEST.json of the directory it names.
// It returns the manifest and the snapshot directory's path, or
// (nil, "", nil) when the store has no committed snapshot yet. It is
// read-only — hhstat inspects live data directories with it.
func ReadManifest(dir string) (*Manifest, string, error) {
	cur, err := os.ReadFile(filepath.Join(dir, CurrentName))
	if os.IsNotExist(err) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", err
	}
	name := strings.TrimSpace(string(cur))
	if _, ok := snapEpoch(name); !ok {
		return nil, "", fmt.Errorf("persist: CURRENT names %q, not a snapshot directory", name)
	}
	snapDir := filepath.Join(dir, name)
	man, err := readManifestFile(filepath.Join(snapDir, ManifestName))
	if err != nil {
		return nil, "", err
	}
	return man, snapDir, nil
}

// readManifestFile parses and validates one manifest document.
func readManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	if man.Format != ManifestFormat {
		return nil, fmt.Errorf("persist: %s: format %q, want %q", path, man.Format, ManifestFormat)
	}
	for _, ms := range man.Summaries {
		if ms.Name == "" || ms.Blob != filepath.Base(ms.Blob) {
			return nil, fmt.Errorf("persist: %s: summary %q references blob %q outside the snapshot directory", path, ms.Name, ms.Blob)
		}
	}
	return &man, nil
}

// LoadSnapshot reads the committed snapshot: the manifest plus every
// referenced blob, each verified against its manifest size and CRC32C.
// A store without a committed snapshot returns (nil, "", nil, nil).
// Any mismatch is an error: the manifest was fsynced before CURRENT
// flipped, so a bad blob is corruption, never an in-progress write.
func (s *Store) LoadSnapshot() (*Manifest, string, map[string][]byte, error) {
	man, snapDir, err := ReadManifest(s.dir)
	if man == nil || err != nil {
		return nil, "", nil, err
	}
	blobs := make(map[string][]byte, len(man.Summaries))
	for _, ms := range man.Summaries {
		data, err := os.ReadFile(filepath.Join(snapDir, ms.Blob))
		if err != nil {
			return nil, "", nil, fmt.Errorf("persist: snapshot blob for %q: %w", ms.Name, err)
		}
		if int64(len(data)) != ms.Size {
			return nil, "", nil, fmt.Errorf("persist: snapshot blob for %q: %d bytes, manifest says %d", ms.Name, len(data), ms.Size)
		}
		if got := Checksum(data); got != ms.CRC32C {
			return nil, "", nil, fmt.Errorf("persist: snapshot blob for %q: CRC32C %08x, manifest says %08x", ms.Name, got, ms.CRC32C)
		}
		blobs[ms.Name] = data
	}
	return man, snapDir, blobs, nil
}

// WriteSnapshot commits a new snapshot epoch atomically and prunes
// what it supersedes. The protocol (normative in docs/DURABILITY.md
// §4): write every blob and the manifest into a fresh snap-<epoch>
// directory, fsyncing each file and then the directory; fsync-rename
// CURRENT to point at it — the commit point; then garbage-collect
// older snapshot directories and WAL segments below walSegment. A
// crash before the rename leaves CURRENT untouched and the orphan
// directory ignored; a crash after it re-runs only the idempotent
// cleanup on the next snapshot.
func (s *Store) WriteSnapshot(walSegment uint64, snaps []SummarySnapshot) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	epoch := s.epoch + 1
	dirName := snapDirName(epoch)
	path := filepath.Join(s.dir, dirName)
	if err := os.RemoveAll(path); err != nil {
		return err
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		return err
	}
	man := &Manifest{
		Format:     ManifestFormat,
		WrittenAt:  time.Now().UTC(),
		WALSegment: walSegment,
	}
	for _, sn := range snaps {
		blobName := sn.Name + BlobSuffix
		if err := writeFileSync(filepath.Join(path, blobName), sn.Blob); err != nil {
			return err
		}
		man.Summaries = append(man.Summaries, ManifestSummary{
			Name:      sn.Name,
			Size:      int64(len(sn.Blob)),
			CRC32C:    Checksum(sn.Blob),
			Blob:      blobName,
			Seq:       sn.Seq,
			N:         sn.N,
			Len:       sn.Len,
			Algorithm: sn.Algorithm,
			Guarantee: sn.Guarantee,
			Spec:      sn.Spec,
		})
	}
	doc, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := writeFileSync(filepath.Join(path, ManifestName), doc); err != nil {
		return err
	}
	if err := syncDir(path); err != nil {
		return err
	}
	// The commit point: CURRENT flips atomically to the new epoch.
	if err := replaceFileSync(s.dir, CurrentName, []byte(dirName+"\n")); err != nil {
		return err
	}
	s.epoch = epoch
	// Cleanup below is best-effort bookkeeping after the commit.
	if err := s.removeStaleSnapshots(dirName); err != nil {
		return err
	}
	if _, err := s.wal.pruneBefore(walSegment); err != nil {
		return err
	}
	return nil
}

// removeStaleSnapshots deletes every snapshot directory except keep —
// superseded committed epochs and orphans of crashed snapshot writes
// alike.
func (s *Store) removeStaleSnapshots(keep string) error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, de := range ents {
		if _, ok := snapEpoch(de.Name()); !ok || de.Name() == keep {
			continue
		}
		if err := os.RemoveAll(filepath.Join(s.dir, de.Name())); err != nil {
			return err
		}
	}
	return nil
}

// writeFileSync writes data to path and fsyncs the file before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replaceFileSync atomically replaces dir/name: write a temp file,
// fsync it, rename over the target, fsync the directory. Readers see
// either the old content or the new, never a prefix.
func replaceFileSync(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}
