package persist

import (
	"bytes"
	"testing"
)

// FuzzWALRecord drives the replay decoders with arbitrary bytes. Two
// contracts are under test: ScanSegment is total over any stream (it
// returns a report or an error, never panics, and never allocates
// beyond its maxRecord bound), and any payload ParseRecordPayload
// accepts re-encodes byte-identically through EncodeRecord — so the
// writer and the replayer agree on one canonical frame per record.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	seed := buildSegment(
		EncodeRecord(nil, KindCreate, 0, "queries", []byte(`{"capacity":8}`)),
		EncodeRecord(nil, KindBatch, 1, "queries", []byte("\x01a\x02bb")),
		EncodeRecord(nil, KindBlob, 2, "queries", []byte("HHSUM2..")),
	)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(EncodeRecord(nil, KindBatch, 99, "s", bytes.Repeat([]byte{'k'}, 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecord = 1 << 16
		for _, tolerate := range []bool{true, false} {
			rep, err := ScanSegment(bytes.NewReader(data), maxRecord, tolerate, func(rec Record) error {
				// Every delivered record round-trips through the encoder
				// to the exact payload bytes the CRC covered.
				enc := EncodeRecord(nil, rec.Kind, rec.Seq, string(rec.Name), rec.Body)
				payload := enc[recHeaderLen:]
				if len(payload) > len(data) {
					t.Fatalf("re-encoded payload %d bytes from %d input bytes", len(payload), len(data))
				}
				if _, perr := ParseRecordPayload(payload); perr != nil {
					t.Fatalf("re-encoded payload fails to parse: %v", perr)
				}
				return nil
			})
			if err == nil && rep.Records < 0 {
				t.Fatal("negative record count")
			}
		}
		// ParseRecordPayload is total over raw payloads too.
		if rec, err := ParseRecordPayload(data); err == nil {
			enc := EncodeRecord(nil, rec.Kind, rec.Seq, string(rec.Name), rec.Body)
			if !bytes.Equal(enc[recHeaderLen:], data) {
				t.Fatalf("payload did not round-trip: %x != %x", enc[recHeaderLen:], data)
			}
		}
	})
}
