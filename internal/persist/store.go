package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Defaults applied by Open when Options fields are zero.
const (
	DefaultSegmentBytes   = 64 << 20
	DefaultMaxRecordBytes = 32<<20 + 4<<10 // a max-size ingest body + frame overhead
	DefaultFsyncInterval  = 100 * time.Millisecond
)

// FsyncMode selects when appended WAL records reach stable storage.
type FsyncMode int

const (
	// FsyncInterval syncs from a background ticker — the default; the
	// loss window after a power cut is bounded by Options.FsyncInterval.
	// (A plain process kill loses at most the unflushed buffer tail,
	// which replay drops as a torn record.)
	FsyncInterval FsyncMode = iota
	// FsyncAlways syncs every append before it returns: a record is on
	// stable storage before the caller applies it anywhere.
	FsyncAlways
	// FsyncRotate syncs only on segment rotation, snapshots and close.
	FsyncRotate
)

// Options configures a Store.
type Options struct {
	// Dir is the data directory; created (with its wal/ subdirectory)
	// if missing. Required.
	Dir string
	// SegmentBytes rotates the WAL past this size; 0 = 64 MiB.
	SegmentBytes int64
	// MaxRecordBytes bounds one record payload on both the write and
	// replay side; 0 = a 32 MiB ingest body plus frame overhead.
	MaxRecordBytes int
	// Fsync and FsyncInterval set the WAL sync policy.
	Fsync         FsyncMode
	FsyncInterval time.Duration
}

// Store owns one durability directory: the WAL writer, the committed
// snapshot, and the background fsync loop. Append methods are safe for
// concurrent use; WriteSnapshot serializes with itself.
type Store struct {
	dir       string
	opts      Options
	wal       *walWriter
	walDir    string
	firstSeg  uint64 // the boot-time writer segment: replay covers [0, firstSeg)
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// snapMu serializes snapshot writes; epoch is the committed
	// snapshot epoch (0 = none), advancing by one per commit.
	snapMu sync.Mutex
	epoch  uint64 //hh:guardedby snapMu
}

// Open opens (creating if needed) the data directory and starts a
// fresh WAL segment. It does not read the snapshot or replay the log —
// recovery order (LoadSnapshot, then ReplayWAL, then serving) is the
// caller's, per docs/DURABILITY.md §5.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	walDir := filepath.Join(opts.Dir, WALDirName)
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    opts.Dir,
		opts:   opts,
		walDir: walDir,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Seed the epoch from the committed snapshot so the next write
	// advances past it.
	man, snapDir, err := ReadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	if man != nil {
		if e, ok := snapEpoch(filepath.Base(snapDir)); ok {
			s.epoch = e
		}
	}
	wal, err := openWAL(walDir, opts.SegmentBytes, opts.MaxRecordBytes, opts.Fsync == FsyncAlways)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.firstSeg = wal.seg //hh:unguarded construction time: the writer is not shared yet
	if opts.Fsync == FsyncInterval {
		go s.fsyncLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

func (s *Store) fsyncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A poisoned or closed writer keeps returning its sticky
			// error; the loop stays quiet and the appenders report it.
			_ = s.wal.sync()
		case <-s.stop:
			return
		}
	}
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// AppendBatch logs one ingested batch for name, allocating the next
// sequence number from seq on success. The body is built in place from
// keys in the uvarint batch format — no per-call allocation, which is
// what keeps the durable ingest hot path at 0 allocs/op. Call it
// before applying the batch to in-memory state: an error means the
// record is not durable and the batch must not be applied.
func (s *Store) AppendBatch(name string, seq *Seq, keys []string) error {
	return s.wal.append(KindBatch, seq, name, keys, nil)
}

// AppendBlob logs one accepted merge blob for name (the encoded
// HHSUM2/HHWIN2 bytes, verbatim), allocating the next sequence number
// from seq on success.
func (s *Store) AppendBlob(name string, seq *Seq, blob []byte) error {
	return s.wal.append(KindBlob, seq, name, nil, blob)
}

// AppendCreate logs a summary creation (spec is the JSON-encoded
// construction spec). Create records carry sequence 0 and replay as
// no-ops for names that already exist, so logging one per boot and per
// runtime creation is idempotent.
func (s *Store) AppendCreate(name string, spec []byte) error {
	return s.wal.append(KindCreate, nil, name, nil, spec)
}

// Sync forces buffered WAL records to stable storage.
func (s *Store) Sync() error { return s.wal.sync() }

// BeginSnapshot opens a WAL segment boundary for a snapshot and
// returns the new current segment's index: every record appended
// before the call lives below it. The caller then quiesces and
// captures each summary (so captured sequence numbers cover everything
// below the boundary) and hands the result to WriteSnapshot with this
// index.
func (s *Store) BeginSnapshot() (uint64, error) {
	return s.wal.rotate()
}

// ReplayWAL delivers every valid record in segments below the writer's
// boot segment to fn, in order. See ScanWAL for the torn-tail
// contract. Safe to call repeatedly — replay is read-only, and the
// consumer's sequence dedup makes re-delivery a no-op.
func (s *Store) ReplayWAL(fn func(Record) error) (ReplayReport, error) {
	return ScanWAL(s.walDir, s.firstSeg, s.opts.MaxRecordBytes, fn)
}

// Close stops the fsync loop and flushes, syncs and closes the WAL.
// It does not write a snapshot — the registry decides whether a final
// snapshot precedes it.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		err = s.wal.close()
	})
	return err
}
