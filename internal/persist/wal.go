package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// WAL segment framing (normative in docs/DURABILITY.md §3).
const (
	segMagic     = "HHWL" // segment file magic
	segVersion   = 0x01
	segHeaderLen = 8 // magic(4) + version(1) + reserved(3 zero bytes)
	recHeaderLen = 8 // payload length u32 LE + CRC32C u32 LE

	// MaxNameLen bounds the summary-name field of a record, matching
	// the registry's name grammar (docs/WIRE.md shares the bound).
	MaxNameLen = 128

	// minPayloadLen is kind(1) + seq(8) + nameLen(2) + 1-byte name.
	minPayloadLen = 12
)

// Record kinds (payload byte 0).
const (
	// KindBatch logs one ingested batch: the body is the uvarint
	// binary batch format of docs/WIRE.md §4 (the /update and hhwire
	// body), verbatim.
	KindBatch byte = 1
	// KindCreate logs a summary creation: the body is the JSON
	// heavyhitters.Spec; the sequence field is zero.
	KindCreate byte = 2
	// KindBlob logs an accepted /merge push: the body is the encoded
	// HHSUM2/HHWIN2 blob, verbatim.
	KindBlob byte = 3
)

// castagnoli is the CRC32C table every WAL and snapshot checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C (Castagnoli) checksum over data — the one
// checksum function of the durability formats, exposed so tools
// (hhstat) and tests verify blobs without re-deriving the table.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Seq is a per-summary monotonic sequence counter. The WAL advances it
// under its append lock exactly when a record is durably buffered, so
// a sequence number is allocated to one record only. The value is
// atomically readable anywhere (metrics), but a read is only a
// consistent cut of the summary's state while the owner's quiesce
// lock excludes appenders — the invariant snapshot capture relies on.
type Seq struct{ n atomic.Uint64 }

// Load returns the last allocated sequence number (0 = none yet).
func (s *Seq) Load() uint64 { return s.n.Load() }

// Store resets the counter — recovery seeds it from the snapshot
// manifest and advances it per replayed record.
func (s *Seq) Store(v uint64) { s.n.Store(v) }

// Record is one decoded WAL record. Name and Body alias the scanner's
// read buffer and are valid only for the duration of the callback;
// consumers copy what they retain (the registry's summaries are built
// with borrowed-key ingest for exactly this shape).
type Record struct {
	Kind byte
	Seq  uint64
	Name []byte
	Body []byte
}

// EncodeRecord appends the framed wire form of one record to dst and
// returns the extended slice: the 8-byte header (payload length,
// CRC32C) followed by the payload (kind, seq, name length, name,
// body). It is the write-side counterpart of ParseRecordPayload and
// exactly what the Store's appenders emit.
func EncodeRecord(dst []byte, kind byte, seq uint64, name string, body []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = append(dst, body...)
	payload := dst[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], Checksum(payload))
	return dst
}

// ParseRecordPayload decodes one record payload (the bytes the frame
// header's CRC covers). It is total: any input either decodes or
// returns an error, never panics — a CRC-valid payload that fails here
// indicates corruption (or a foreign writer), not a torn write.
func ParseRecordPayload(payload []byte) (Record, error) {
	if len(payload) < minPayloadLen {
		return Record{}, fmt.Errorf("record payload %d bytes, want >= %d", len(payload), minPayloadLen)
	}
	kind := payload[0]
	if kind != KindBatch && kind != KindCreate && kind != KindBlob {
		return Record{}, fmt.Errorf("unknown record kind %d", kind)
	}
	seq := binary.LittleEndian.Uint64(payload[1:9])
	if kind == KindCreate && seq != 0 {
		return Record{}, fmt.Errorf("create record carries sequence %d, want 0", seq)
	}
	nameLen := int(binary.LittleEndian.Uint16(payload[9:11]))
	if nameLen < 1 || nameLen > MaxNameLen {
		return Record{}, fmt.Errorf("record name length %d, want 1..%d", nameLen, MaxNameLen)
	}
	if len(payload) < 11+nameLen {
		return Record{}, fmt.Errorf("record payload %d bytes truncates %d-byte name", len(payload), nameLen)
	}
	return Record{
		Kind: kind,
		Seq:  seq,
		Name: payload[11 : 11+nameLen],
		Body: payload[11+nameLen:],
	}, nil
}

// walWriter is the single append point of a Store's WAL. A fresh
// segment is opened per process lifetime (the writer never appends to
// a pre-existing file), so replay order is segment index, then file
// offset.
type walWriter struct {
	dir        string
	segBytes   int64
	maxRecord  int
	alwaysSync bool

	mu         sync.Mutex
	f          *os.File      //hh:guardedby mu
	bw         *bufio.Writer //hh:guardedby mu
	seg        uint64        //hh:guardedby mu
	segWritten int64         //hh:guardedby mu
	scratch    []byte        //hh:guardedby mu
	dirty      bool          //hh:guardedby mu
	err        error         //hh:guardedby mu
}

func segmentName(index uint64) string {
	return fmt.Sprintf("wal-%016x.log", index)
}

// segmentIndex parses a segment file name; ok is false for foreign
// files (temp files, editor droppings), which the WAL ignores.
func segmentIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

type segmentFile struct {
	index uint64
	path  string
}

func listSegments(dir string) ([]segmentFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, de := range ents {
		if idx, ok := segmentIndex(de.Name()); ok {
			segs = append(segs, segmentFile{index: idx, path: filepath.Join(dir, de.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// openWAL scans dir for existing segments and opens a fresh one after
// the highest index found.
func openWAL(dir string, segBytes int64, maxRecord int, alwaysSync bool) (*walWriter, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1].index + 1
	}
	w := &walWriter{
		dir:        dir,
		segBytes:   segBytes,
		maxRecord:  maxRecord,
		alwaysSync: alwaysSync,
		seg:        next,
	}
	if err := w.createSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// createSegmentLocked opens segment w.seg and writes its header. The
// header goes through an unbuffered write so the file is well-formed
// (if present at all) from the first moment; the directory entry is
// fsynced so the segment survives a power cut.
//
//hh:locked mu
func (w *walWriter) createSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 64<<10)
	} else {
		w.bw.Reset(f)
	}
	w.segWritten = segHeaderLen
	return nil
}

// append frames and writes one record, advancing seq on success. When
// keys is non-nil the body is built in place as the uvarint batch
// format (no intermediate buffer — the ingest hot path's zero-alloc
// contract); otherwise body is copied verbatim. Any I/O failure
// poisons the writer: a partial buffered write has no resync point, so
// later appends would corrupt the stream mid-segment.
func (w *walWriter) append(kind byte, seq *Seq, name string, keys []string, body []byte) error {
	if len(name) < 1 || len(name) > MaxNameLen {
		return fmt.Errorf("persist: record name %q: length %d, want 1..%d", name, len(name), MaxNameLen)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	var s uint64
	if seq != nil {
		s = seq.Load() + 1
	}
	b := append(w.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, s)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	if keys != nil {
		for _, k := range keys {
			b = binary.AppendUvarint(b, uint64(len(k)))
			b = append(b, k...)
		}
	} else {
		b = append(b, body...)
	}
	w.scratch = b
	payload := b[recHeaderLen:]
	if len(payload) > w.maxRecord {
		return fmt.Errorf("persist: record %d bytes exceeds the %d-byte bound", len(payload), w.maxRecord)
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], Checksum(payload))
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return err
	}
	w.segWritten += int64(len(b))
	w.dirty = true
	if w.alwaysSync {
		if err := w.syncLocked(); err != nil {
			w.err = err
			return err
		}
	}
	if seq != nil {
		seq.Store(s)
	}
	if w.segWritten >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

//hh:locked mu
func (w *walWriter) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// rotateLocked finishes the current segment (flush + fsync + close —
// a finished segment is complete on disk before its successor exists,
// which is what lets replay treat mid-segment corruption as fatal) and
// opens the next.
//
//hh:locked mu
func (w *walWriter) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.dirty = false
	w.f = nil
	w.seg++
	return w.createSegmentLocked()
}

// rotate forces a segment boundary and returns the new current
// segment's index: every record appended before the call lives in a
// segment with a strictly smaller index.
func (w *walWriter) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.f == nil {
		return 0, fmt.Errorf("persist: WAL is closed")
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return 0, err
	}
	return w.seg, nil
}

func (w *walWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// pruneBefore removes every segment with index < before (never the
// writer's current segment). Called after a snapshot commits: the
// removed records are covered by the manifest's sequence numbers.
func (w *walWriter) pruneBefore(before uint64) (int, error) {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	cur := w.seg
	w.mu.Unlock()
	removed := 0
	for _, sg := range segs {
		if sg.index >= before || sg.index == cur {
			continue
		}
		if err := os.Remove(sg.path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if w.err == nil {
		w.err = fmt.Errorf("persist: WAL is closed")
		return err
	}
	return err
}

// SegmentReport is the outcome of scanning one WAL segment.
type SegmentReport struct {
	// Records counts the valid records delivered to the callback.
	Records int
	// Torn reports that the segment ended in a partially written
	// record (or header); TornOffset is the byte offset of the torn
	// frame. Everything before it was delivered.
	Torn       bool
	TornOffset int64
}

// ScanSegment reads one WAL segment stream, delivering each valid
// record to fn; Record fields alias an internal buffer reused between
// callbacks. maxRecord bounds a record payload (use the writer's
// bound; an over-long length field is treated as invalid, which keeps
// a torn length word from forcing a giant allocation).
//
// tolerateTorn selects the final-segment contract: an invalid frame
// (short header, bad length, short payload, CRC mismatch) stops the
// scan and is reported as a torn tail. With tolerateTorn false the
// same condition is an error — a non-final segment was fsynced
// complete by rotation, so damage there is corruption, not a crash
// artifact. A payload whose CRC verifies but fails ParseRecordPayload
// is always an error.
func ScanSegment(r io.Reader, maxRecord int, tolerateTorn bool, fn func(Record) error) (SegmentReport, error) {
	var rep SegmentReport
	torn := func(at int64, what string) (SegmentReport, error) {
		if !tolerateTorn {
			return rep, fmt.Errorf("%s at offset %d", what, at)
		}
		rep.Torn = true
		rep.TornOffset = at
		return rep, nil
	}
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return torn(0, "truncated segment header")
		}
		return rep, err
	}
	if string(hdr[:4]) != segMagic {
		return rep, fmt.Errorf("bad segment magic %q", hdr[:4])
	}
	if hdr[4] != segVersion {
		return rep, fmt.Errorf("unsupported segment version %d", hdr[4])
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return rep, fmt.Errorf("nonzero reserved segment-header bytes")
	}
	off := int64(segHeaderLen)
	var rh [recHeaderLen]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return rep, nil // clean end between records
			}
			if err == io.ErrUnexpectedEOF {
				return torn(off, "truncated record header")
			}
			return rep, err
		}
		length := binary.LittleEndian.Uint32(rh[0:4])
		want := binary.LittleEndian.Uint32(rh[4:8])
		if length < minPayloadLen || int64(length) > int64(maxRecord) {
			return torn(off, fmt.Sprintf("record length %d out of range", length))
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return torn(off, "truncated record payload")
			}
			return rep, err
		}
		if Checksum(buf) != want {
			return torn(off, "record CRC mismatch")
		}
		rec, err := ParseRecordPayload(buf)
		if err != nil {
			// CRC-valid but structurally invalid: not a torn write.
			return rep, fmt.Errorf("invalid record at offset %d: %w", off, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return rep, err
			}
		}
		rep.Records++
		off += recHeaderLen + int64(length)
	}
}

// ReplayReport summarizes a WAL directory scan.
type ReplayReport struct {
	// Segments and Records count what was scanned and delivered.
	Segments int
	Records  int
	// Torn reports a torn tail in the final segment; TornSegment is
	// its file name and TornOffset the offset of the torn frame.
	Torn        bool
	TornSegment string
	TornOffset  int64
}

// ScanWAL replays a WAL directory in segment order, delivering every
// valid record to fn. Segments with index >= before are skipped
// (before == 0 scans everything) — the Store passes its writer's
// segment index so a replay never observes records the recovering
// process itself is appending. Only the final scanned segment may end
// in a torn record; an invalid frame anywhere else fails the scan.
func ScanWAL(dir string, before uint64, maxRecord int, fn func(Record) error) (ReplayReport, error) {
	var rep ReplayReport
	segs, err := listSegments(dir)
	if err != nil {
		return rep, err
	}
	if before > 0 {
		n := 0
		for _, sg := range segs {
			if sg.index < before {
				segs[n] = sg
				n++
			}
		}
		segs = segs[:n]
	}
	for i, sg := range segs {
		final := i == len(segs)-1
		f, err := os.Open(sg.path)
		if err != nil {
			return rep, err
		}
		srep, err := ScanSegment(f, maxRecord, final, fn)
		f.Close()
		rep.Segments++
		rep.Records += srep.Records
		if err != nil {
			return rep, fmt.Errorf("persist: %s: %w", filepath.Base(sg.path), err)
		}
		if srep.Torn {
			rep.Torn = true
			rep.TornSegment = filepath.Base(sg.path)
			rep.TornOffset = srep.TornOffset
		}
	}
	return rep, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (the POSIX contract behind the snapshot commit protocol).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
