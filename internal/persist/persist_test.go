package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment assembles a well-formed segment image in memory:
// header plus the given framed records.
func buildSegment(records ...[]byte) []byte {
	seg := []byte(segMagic)
	seg = append(seg, segVersion, 0, 0, 0)
	for _, r := range records {
		seg = append(seg, r...)
	}
	return seg
}

type gotRecord struct {
	Kind byte
	Seq  uint64
	Name string
	Body string
}

func collect(t *testing.T, dir string, before uint64) ([]gotRecord, ReplayReport) {
	t.Helper()
	var got []gotRecord
	rep, err := ScanWAL(dir, before, DefaultMaxRecordBytes, func(rec Record) error {
		got = append(got, gotRecord{rec.Kind, rec.Seq, string(rec.Name), string(rec.Body)})
		return nil
	})
	if err != nil {
		t.Fatalf("ScanWAL: %v", err)
	}
	return got, rep
}

func TestRecordRoundtrip(t *testing.T) {
	recs := [][]byte{
		EncodeRecord(nil, KindCreate, 0, "queries", []byte(`{"capacity":64}`)),
		EncodeRecord(nil, KindBatch, 1, "queries", []byte("\x03abc\x01x")),
		EncodeRecord(nil, KindBlob, 2, "queries", bytes.Repeat([]byte{0xAA}, 300)),
		EncodeRecord(nil, KindBatch, 1, "a", nil),
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buildSegment(recs...), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep := collect(t, dir, 0)
	if rep.Torn || rep.Segments != 1 || rep.Records != 4 {
		t.Fatalf("report = %+v, want 1 segment, 4 records, clean", rep)
	}
	want := []gotRecord{
		{KindCreate, 0, "queries", `{"capacity":64}`},
		{KindBatch, 1, "queries", "\x03abc\x01x"},
		{KindBlob, 2, "queries", string(bytes.Repeat([]byte{0xAA}, 300))},
		{KindBatch, 1, "a", ""},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseRecordPayloadRejects(t *testing.T) {
	valid := EncodeRecord(nil, KindBatch, 7, "s", []byte("body"))[recHeaderLen:]
	if _, err := ParseRecordPayload(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	cases := map[string][]byte{
		"short":         valid[:minPayloadLen-1],
		"bad kind":      EncodeRecord(nil, 9, 7, "s", []byte("body"))[recHeaderLen:],
		"create w/ seq": EncodeRecord(nil, KindCreate, 3, "s", nil)[recHeaderLen:],
		// nameLen beyond the payload: kind + seq + nameLen=200 + 1 byte.
		"name overruns payload": {KindBatch, 0, 0, 0, 0, 0, 0, 0, 0, 200, 0, 'x'},
	}
	zero := EncodeRecord(nil, KindBatch, 7, "s", []byte("body"))[recHeaderLen:]
	zero[9], zero[10] = 0, 0 // nameLen = 0
	cases["zero name length"] = zero
	for name, payload := range cases {
		if _, err := ParseRecordPayload(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTornTailEveryByte is the crash-matrix core: a segment truncated
// at EVERY byte boundary of its image must replay the fully written
// prefix records and report (not fail on) the torn remainder.
func TestTornTailEveryByte(t *testing.T) {
	recs := [][]byte{
		EncodeRecord(nil, KindCreate, 0, "s", []byte(`{}`)),
		EncodeRecord(nil, KindBatch, 1, "s", []byte("\x01a\x02bb")),
		EncodeRecord(nil, KindBatch, 2, "s", []byte("\x03ccc")),
	}
	full := buildSegment(recs...)
	// Record start offsets (after the 8-byte segment header).
	boundaries := map[int]int{segHeaderLen: 0}
	off := segHeaderLen
	for i, r := range recs {
		off += len(r)
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, rep := collect(t, dir, 0)
		wantRecords, atBoundary := boundaries[cut]
		if !atBoundary {
			// Find the last boundary before the cut.
			for b, n := range boundaries {
				if b <= cut && n > wantRecords {
					wantRecords = n
				}
			}
			if cut < segHeaderLen {
				wantRecords = 0
			}
			if !rep.Torn {
				t.Fatalf("cut=%d: torn tail not reported", cut)
			}
		} else if rep.Torn {
			t.Fatalf("cut=%d: clean boundary reported torn at offset %d", cut, rep.TornOffset)
		}
		if len(got) != wantRecords {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantRecords)
		}
		for i, g := range got {
			want := gotRecord{recs[i][recHeaderLen], 0, "s", ""}
			if g.Kind != want.Kind || g.Name != "s" {
				t.Fatalf("cut=%d: record %d = %+v", cut, i, g)
			}
		}
	}
}

// TestCorruptionIsNotTorn: damage that cannot be a torn write fails
// the scan even where torn tails are tolerated.
func TestCorruptionIsNotTorn(t *testing.T) {
	t.Run("crc valid, payload invalid", func(t *testing.T) {
		// EncodeRecord frames any kind; kind 9 passes CRC, fails parse.
		dir := t.TempDir()
		seg := buildSegment(EncodeRecord(nil, 9, 1, "s", nil))
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ScanWAL(dir, 0, DefaultMaxRecordBytes, nil); err == nil {
			t.Fatal("CRC-valid invalid payload replayed without error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		dir := t.TempDir()
		seg := buildSegment(EncodeRecord(nil, KindBatch, 1, "s", nil))
		copy(seg, "NOPE")
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ScanWAL(dir, 0, DefaultMaxRecordBytes, nil); err == nil {
			t.Fatal("bad segment magic replayed without error")
		}
	})
	t.Run("torn non-final segment", func(t *testing.T) {
		dir := t.TempDir()
		rec := EncodeRecord(nil, KindBatch, 1, "s", []byte("\x01a"))
		seg := buildSegment(rec, rec)
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg[:len(seg)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(2)), buildSegment(rec), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ScanWAL(dir, 0, DefaultMaxRecordBytes, nil); err == nil {
			t.Fatal("torn record in a non-final segment replayed without error")
		}
		// The same bytes as the final segment are a tolerated tail.
		if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
			t.Fatal(err)
		}
		_, rep := collect(t, dir, 0)
		if !rep.Torn || rep.TornSegment != segmentName(1) {
			t.Fatalf("report = %+v, want torn tail in %s", rep, segmentName(1))
		}
	})
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	var seq Seq
	if err := s.AppendCreate("queries", []byte(`{"capacity":8}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch("queries", &seq, []string{"a", "bb", "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBlob("queries", &seq, []byte("HHSUM2-not-really")); err != nil {
		t.Fatal(err)
	}
	if got := seq.Load(); got != 2 {
		t.Fatalf("seq = %d, want 2", got)
	}
	// The writer's own segment is not replayed by the same process.
	if _, rep := collect(t, filepath.Join(dir, WALDirName), s.firstSeg); rep.Records != 0 {
		t.Fatalf("replay below own boot segment saw %d records", rep.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	var got []gotRecord
	rep, err := s2.ReplayWAL(func(rec Record) error {
		got = append(got, gotRecord{rec.Kind, rec.Seq, string(rec.Name), string(rec.Body)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []gotRecord{
		{KindCreate, 0, "queries", `{"capacity":8}`},
		{KindBatch, 1, "queries", "\x01a\x02bb\x01a"},
		{KindBlob, 2, "queries", "HHSUM2-not-really"},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (report %+v)", len(got), len(want), rep)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Replay is read-only and repeatable: a second pass delivers the
	// identical sequence.
	var again []gotRecord
	if _, err := s2.ReplayWAL(func(rec Record) error {
		again = append(again, gotRecord{rec.Kind, rec.Seq, string(rec.Name), string(rec.Body)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got) {
		t.Fatalf("second replay delivered %d records, want %d", len(again), len(got))
	}
	for i := range got {
		if again[i] != got[i] {
			t.Errorf("second replay record %d = %+v, want %+v", i, again[i], got[i])
		}
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seq Seq
	keys := []string{"kkkkkkkkkkkkkkkk", "jjjjjjjjjjjjjjjj"}
	for i := 0; i < 50; i++ {
		if err := s.AppendBatch("s", &seq, keys); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(s.walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	boundary, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(boundary, nil); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(s.walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range segs {
		if sg.index < boundary {
			t.Errorf("segment %d survived pruning below boundary %d", sg.index, boundary)
		}
	}
}

func TestSnapshotCommitProtocol(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("pretend-encoded-summary")
	snap := SummarySnapshot{
		Name: "queries", Spec: json.RawMessage(`{"capacity":8}`),
		Seq: 42, N: 100.5, Len: 7, Algorithm: "SPACESAVING",
		Guarantee: &ManifestGuarantee{A: 1, B: 1},
		Blob:      blob,
	}
	// An orphan directory from a "crashed" earlier snapshot attempt:
	// ignored by loads, collected by the next commit.
	if err := os.MkdirAll(filepath.Join(dir, snapDirName(9)), 0o755); err != nil {
		t.Fatal(err)
	}
	if man, _, _, err := s.LoadSnapshot(); err != nil || man != nil {
		t.Fatalf("LoadSnapshot before any commit = %v, %v; want nil, nil", man, err)
	}
	boundary, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(boundary, []SummarySnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapDirName(9))); !os.IsNotExist(err) {
		t.Error("orphan snapshot directory survived the commit")
	}
	man, snapDir, blobs, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if man.Format != ManifestFormat || man.WALSegment != boundary {
		t.Fatalf("manifest = %+v", man)
	}
	ms := man.Summaries[0]
	if ms.Name != "queries" || ms.Seq != 42 || ms.N != 100.5 || ms.Len != 7 ||
		ms.Size != int64(len(blob)) || ms.CRC32C != Checksum(blob) || ms.Guarantee == nil {
		t.Fatalf("manifest summary = %+v", ms)
	}
	if !bytes.Equal(blobs["queries"], blob) {
		t.Fatal("blob did not round-trip")
	}
	// Second commit supersedes the first and collects its directory.
	if err := s.WriteSnapshot(boundary, []SummarySnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	man2, snapDir2, _, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapDir2 == snapDir {
		t.Fatal("second commit reused the snapshot directory")
	}
	if _, err := os.Stat(snapDir); !os.IsNotExist(err) {
		t.Error("superseded snapshot directory survived")
	}
	if man2.WALSegment != boundary {
		t.Fatalf("manifest2 = %+v", man2)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the epoch chain.
	s2, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.epoch < 2 {
		t.Fatalf("reopened epoch = %d, want >= 2", s2.epoch)
	}

	t.Run("corrupt blob fails load", func(t *testing.T) {
		_, snapDir, _, err := s2.LoadSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(snapDir, "queries"+BlobSuffix)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := s2.LoadSnapshot(); err == nil {
			t.Fatal("corrupt blob loaded without error")
		}
		data[0] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dangling CURRENT fails load", func(t *testing.T) {
		orig, err := os.ReadFile(filepath.Join(dir, CurrentName))
		if err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(filepath.Join(dir, CurrentName), orig, 0o644)
		if err := os.WriteFile(filepath.Join(dir, CurrentName), []byte(snapDirName(77)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadManifest(dir); err == nil {
			t.Fatal("CURRENT naming a missing directory read without error")
		}
	})
	t.Run("manifest escapes snapshot dir", func(t *testing.T) {
		doc := fmt.Sprintf(`{"format":%q,"summaries":[{"name":"x","blob":"../evil"}]}`, ManifestFormat)
		path := filepath.Join(t.TempDir(), ManifestName)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readManifestFile(path); err == nil {
			t.Fatal("path-escaping blob reference accepted")
		}
	})
}

// TestAppendRejectsBadNames pins the record-level name bounds.
func TestAppendRejectsBadNames(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seq Seq
	if err := s.AppendBatch("", &seq, []string{"a"}); err == nil {
		t.Error("empty name accepted")
	}
	long := string(bytes.Repeat([]byte{'n'}, MaxNameLen+1))
	if err := s.AppendBatch(long, &seq, []string{"a"}); err == nil {
		t.Error("over-long name accepted")
	}
	if seq.Load() != 0 {
		t.Errorf("rejected appends advanced seq to %d", seq.Load())
	}
}
