// Package persist gives the serving daemon durable, restartable state:
// periodic atomic snapshots of encoded summary blobs layered over a
// lightweight batch write-ahead log, so a crashed process replays
// snapshot + WAL tail and recovers its registry with the paper's
// (A, B) bounds intact. The on-disk formats are normative in
// docs/DURABILITY.md; this package is the reference implementation.
// (The name avoids clashing with the paper's frequency-"Recover".)
//
// # Data directory
//
// A Store owns one directory:
//
//	<dir>/CURRENT              committed-snapshot pointer (one line)
//	<dir>/snap-<16hex>/        one snapshot epoch: MANIFEST.json + blobs
//	<dir>/wal/wal-<16hex>.log  WAL segments, monotonically numbered
//
// A snapshot becomes the recovery base only when CURRENT — written to
// a temp file, fsynced, and atomically renamed into place — names its
// directory; a crash mid-snapshot leaves an orphan directory that
// recovery ignores and the next snapshot garbage-collects. The WAL is
// CRC-framed and segment-rotated; a torn tail (a partially written
// final record, the expected artifact of kill -9) truncates cleanly,
// while corruption behind the tail fails recovery loudly.
//
// # Replay model: at least once, then deduplicated
//
// The WAL is appended before the in-memory state is updated, so after
// a crash every applied batch is either in the committed snapshot or
// in the log — possibly both, and possibly alongside logged batches
// that were never applied. Replay is therefore at-least-once delivery:
// the same record can be observed again across snapshot+tail, or when
// a tail is replayed twice. Idempotence is restored by sequencing, not
// by the log: every record carries a per-summary monotonic sequence
// number, the snapshot manifest pins the last sequence it covers, and
// the consumer skips any record whose sequence is not strictly greater
// than the state it already holds. Replaying a tail twice is a no-op
// by construction.
//
// The Store does not interpret summary state; it moves bytes. The
// registry (internal/registry) owns the mapping between records and
// live summaries and drives recovery.
package persist
