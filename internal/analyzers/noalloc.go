package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// NoAlloc verifies the //hh:noalloc contract: the steady-state ingest
// and query paths (Update, AddN, updateBatch, TopAppend, rotation,
// gather) must not allocate. The analyzer rejects allocating
// constructs syntactically and enforces closure over the call graph:
// an annotated function may only call other annotated functions, an
// explicit allowlist of non-allocating stdlib helpers, builtins, or
// annotated interface methods / func-valued fields.
//
// Documented trust boundaries (backstopped by the -benchmem alloc
// tests and scripts/escapecheck.sh):
//
//   - Self-append (x = append(x, ...)), return-position append, and
//     append into a reslice of an existing buffer (append(buf[:0], ...))
//     are allowed: the contract is amortized-zero on pre-sized or
//     pooled slices.
//   - Map assignment and delete are allowed: the slabs pre-size their
//     maps and the steady state only rewrites existing buckets.
//   - Func literals are allowed only in call position (directly
//     invoked, or passed as a callback argument where the compiler can
//     stack-allocate them); their bodies are checked.
//   - defer/panic/recover are allowed: failure paths may allocate.
var NoAlloc = &analysis.Analyzer{
	Name:      "noalloc",
	Doc:       "check that //hh:noalloc functions avoid allocating constructs and only call noalloc-safe code",
	Run:       runNoAlloc,
	FactTypes: []analysis.Fact{new(noAllocFact)},
}

// noAllocFact marks a function, interface method or func-typed struct
// field as carrying the //hh:noalloc contract, so call sites in other
// packages can trust it.
type noAllocFact struct{}

func (*noAllocFact) AFact()         {}
func (*noAllocFact) String() string { return "noalloc" }

// noAllocPackages are stdlib packages whose exported functions are
// trusted not to allocate in the ways the hot paths use them.
var noAllocPackages = map[string]bool{
	"sync":         true,
	"sync/atomic":  true,
	"math":         true,
	"math/bits":    true,
	"cmp":          true,
	"hash/maphash": true,
	"time":         true, // Time arithmetic (Sub, Add, Before) is pure value math
	"unsafe":       true,
}

// noAllocFuncs are individually trusted stdlib functions from packages
// that are otherwise not allowlisted. The slices in-place sorts work
// without allocating.
var noAllocFuncs = map[string]bool{
	"slices.Sort":             true,
	"slices.SortFunc":         true,
	"slices.SortStableFunc":   true,
	"slices.BinarySearch":     true,
	"slices.BinarySearchFunc": true,
}

func runNoAlloc(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	na := &noAllocPass{pass: pass, local: map[types.Object]bool{}}
	na.collect()
	na.check()
	return nil, nil
}

type noAllocPass struct {
	pass  *analysis.Pass
	local map[types.Object]bool // annotated objects declared in this package
}

// collect finds every //hh:noalloc annotation in the package, records
// the annotated object, and exports a fact for it.
func (na *noAllocPass) collect() {
	for _, f := range na.pass.Files {
		if isTestFile(na.pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if _, ok := marker(n.Doc, "hh:noalloc"); ok {
					na.mark(n.Name)
				}
				return false // fields of local types are rare; keep decl scan shallow
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if !annotatedField(m) {
						continue
					}
					for _, name := range m.Names {
						na.mark(name)
					}
				}
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if !annotatedField(fld) {
						continue
					}
					for _, name := range fld.Names {
						obj := na.pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
							na.pass.Reportf(name.Pos(), "//hh:noalloc on non-func field %s", name.Name)
							continue
						}
						na.mark(name)
					}
				}
			}
			return true
		})
	}
}

// annotatedField reports whether a struct or interface field carries
// the //hh:noalloc marker in its doc or trailing comment.
func annotatedField(f *ast.Field) bool {
	if _, ok := marker(f.Doc, "hh:noalloc"); ok {
		return true
	}
	_, ok := marker(f.Comment, "hh:noalloc")
	return ok
}

func (na *noAllocPass) mark(name *ast.Ident) {
	obj := na.pass.TypesInfo.Defs[name]
	if obj == nil {
		return
	}
	na.local[obj] = true
	na.pass.ExportObjectFact(obj, new(noAllocFact))
}

// isNoAlloc reports whether obj carries the noalloc contract, via the
// local annotation set, an imported fact, or the stdlib allowlist.
func (na *noAllocPass) isNoAlloc(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); ok {
		obj = fn.Origin()
	}
	if v, ok := obj.(*types.Var); ok {
		obj = v.Origin()
	}
	if na.local[obj] {
		return true
	}
	if na.pass.ImportObjectFact(obj, new(noAllocFact)) {
		return true
	}
	if pkg := obj.Pkg(); pkg != nil {
		if noAllocPackages[pkg.Path()] {
			return true
		}
		if noAllocFuncs[pkg.Path()+"."+obj.Name()] {
			return true
		}
	}
	return false
}

// check walks the package a second time: annotated function bodies are
// checked for allocating constructs, and every assignment into an
// annotated func-valued field is checked to reference noalloc code.
func (na *noAllocPass) check() {
	for _, f := range na.pass.Files {
		if isTestFile(na.pass.Fset, f.Pos()) {
			continue
		}
		w := fileWaivers(na.pass, f, "hh:allocok")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj := na.pass.TypesInfo.Defs[n.Name]
				if n.Body != nil && obj != nil && na.local[obj] {
					na.checkBody(n.Body, w)
				}
				// Fall through into the body regardless: it may contain
				// assignments into annotated fields.
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					break // multi-value unpacking never stores a checkable func expr
				}
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fld := na.fieldOf(sel)
					if fld == nil || !na.isAnnotatedField(fld) {
						continue
					}
					na.checkFuncValue(n.Rhs[i], w)
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fld := na.pass.TypesInfo.Uses[key]
					if fld == nil || !na.isAnnotatedField(fld) {
						continue
					}
					na.checkFuncValue(kv.Value, w)
				}
			}
			return true
		})
	}
}

// isAnnotatedField reports whether obj is a func-typed field carrying
// the noalloc contract (locally or via an imported fact). Unlike
// isNoAlloc it does not consult the stdlib allowlist.
func (na *noAllocPass) isAnnotatedField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	return na.local[v.Origin()] || na.pass.ImportObjectFact(v.Origin(), new(noAllocFact))
}

func (na *noAllocPass) fieldOf(sel *ast.SelectorExpr) types.Object {
	if s, ok := na.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// checkFuncValue verifies that a value stored into an //hh:noalloc
// func field honours the contract: nil, a noalloc named function or
// method value, or a func literal (whose body is then checked).
func (na *noAllocPass) checkFuncValue(e ast.Expr, w waivers) {
	if w.waived(na.pass.Fset, e.Pos()) {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		na.checkBody(e.Body, w)
		return
	case *ast.Ident:
		if e.Name == "nil" || na.isNoAlloc(na.pass.TypesInfo.Uses[e]) {
			return
		}
	case *ast.SelectorExpr:
		if s, ok := na.pass.TypesInfo.Selections[e]; ok {
			if na.isNoAlloc(s.Obj()) {
				return
			}
		} else if na.isNoAlloc(na.pass.TypesInfo.Uses[e.Sel]) {
			return
		}
	case *ast.CallExpr:
		// e.g. wrapping constructors; conservative: reject.
	}
	na.pass.Reportf(e.Pos(), "assignment of non-noalloc value into //hh:noalloc field")
}

// checkBody flags allocating constructs inside an annotated body.
func (na *noAllocPass) checkBody(body *ast.BlockStmt, w waivers) {
	info := na.pass.TypesInfo

	// Pre-pass: appends in self-assign or return position, and func
	// literals in call position, are allowed.
	allowed := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltin(info, call, "append") && len(call.Args) > 0 {
					if exprString(n.Lhs[0]) == exprString(call.Args[0]) {
						allowed[call] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if call, ok := r.(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					allowed[call] = true
				}
			}
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				allowed[fl] = true
			}
			for _, a := range n.Args {
				if fl, ok := a.(*ast.FuncLit); ok {
					allowed[fl] = true
				}
			}
			// append into a reslice of an existing buffer reuses (and
			// amortizes growth of) that buffer's storage, wherever the
			// result lands: bounds = append(sc.bounds[:0], 0).
			if isBuiltin(info, n, "append") && len(n.Args) > 0 {
				if _, ok := n.Args[0].(*ast.SliceExpr); ok {
					allowed[n] = true
				}
			}
		case *ast.GoStmt, *ast.DeferStmt:
			var call *ast.CallExpr
			if g, ok := n.(*ast.GoStmt); ok {
				call = g.Call
			} else {
				call = n.(*ast.DeferStmt).Call
			}
			if fl, ok := call.Fun.(*ast.FuncLit); ok {
				allowed[fl] = true
			}
		}
		return true
	})

	report := func(pos token.Pos, format string, args ...interface{}) {
		if !w.waived(na.pass.Fset, pos) {
			na.pass.Reportf(pos, "noalloc: "+format, args...)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			if !allowed[n] {
				report(n.Pos(), "closure literal outside call position may allocate")
			}
			// body is still traversed and checked
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal && !callFun(body, n) {
				report(n.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.CallExpr:
			na.checkCall(n, report)
			return true
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					na.checkBox(info.TypeOf(lhs), n.Rhs[i], report)
				}
			}
		}
		return true
	})

	// Allowed-append calls were collected above; re-walk to flag the rest.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "append") && !allowed[call] {
			report(call.Pos(), "append outside self-assignment or return position may allocate and lose the result's backing array")
		}
		return true
	})
}

// Local func values called inside a noalloc body are trusted: either
// they are checked callback parameters, or the statement that produced
// them was itself flagged (a closure literal outside call position).
// Struct-field func values are NOT trusted unless the field is
// annotated — that is the contract unitBackend's addN/appendRaw rely
// on.

// checkCall classifies one call inside a noalloc body.
func (na *noAllocPass) checkCall(call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	info := na.pass.TypesInfo

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		na.checkConversion(tv.Type, call, report)
		return
	}

	callee := typeutil.Callee(info, call)
	switch callee := callee.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			// handled by the self-append pre-pass
		case "len", "cap", "copy", "delete", "clear", "min", "max",
			"panic", "recover", "print", "println", "real", "imag", "complex":
			// non-allocating (or failure-path-only) builtins
		case "Sizeof", "Alignof", "Offsetof", "Add",
			"String", "StringData", "Slice", "SliceData":
			// the unsafe builtins: compile-time constants, pointer
			// arithmetic, and header construction over existing memory —
			// none allocate (unsafe.String/Slice alias, never copy)
		default:
			report(call.Pos(), "builtin %s not allowed in noalloc code", callee.Name())
		}
		return
	case *types.Func:
		if !na.isNoAlloc(callee) {
			report(call.Pos(), "call to %s, which is not //hh:noalloc", callee.FullName())
		}
		na.checkCallArgs(callee.Type().(*types.Signature), call, report)
		return
	case nil:
		// Dynamic call: through a func literal (allowed, body checked),
		// an annotated func field, or an untracked func value.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			return
		case *ast.SelectorExpr:
			if fld := na.fieldOf(fun); fld != nil {
				if na.isAnnotatedField(fld) {
					return
				}
				report(call.Pos(), "call through func field %s, which is not //hh:noalloc", fld.Name())
				return
			}
		case *ast.Ident:
			// Local func value: trusted only if it is a parameter of the
			// annotated function (the caller passed a checked callback).
			if v, ok := info.Uses[fun].(*types.Var); ok && !v.IsField() {
				return
			}
		}
		report(call.Pos(), "call through untracked function value")
	}
}

// checkConversion flags conversions that allocate: string<->byte/rune
// slices, non-string->string, and boxing into an interface.
func (na *noAllocPass) checkConversion(dst types.Type, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	info := na.pass.TypesInfo
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	switch {
	case isString(du) && !isString(su):
		report(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(du) && isString(su):
		report(call.Pos(), "string to slice conversion allocates")
	case types.IsInterface(du) && !types.IsInterface(su):
		report(call.Pos(), "conversion to interface boxes the value")
	}
}

// checkCallArgs flags interface boxing at argument positions of a
// statically-known call.
func (na *noAllocPass) checkCallArgs(sig *types.Signature, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		na.checkBox(pt, arg, report)
	}
}

// checkBox reports if assigning expr to a destination of type dst
// boxes a concrete value into an interface.
func (na *noAllocPass) checkBox(dst types.Type, expr ast.Expr, report func(token.Pos, string, ...interface{})) {
	if dst == nil {
		return
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return // a type parameter's underlying is an interface, but no boxing occurs
	}
	if !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := na.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return // instantiation-dependent; the concrete instantiations are what run hot
	}
	if pointerShaped(tv.Type) {
		return // the value IS a pointer word; storing it in an interface copies it, no allocation
	}
	report(expr.Pos(), "interface boxing of %s", tv.Type)
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pointerShaped reports whether values of t fit in an interface's data
// word without an indirection allocation: pointers, maps, channels,
// func values and unsafe.Pointer. (pool.Put(ptr) does not allocate.)
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// callFun reports whether sel appears as the Fun of some call in body.
func callFun(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			found = true
		}
		return !found
	})
	return found
}
