package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// This file holds the extended (beyond default go vet) analyzers the
// CI lint job runs alongside the contract checkers: nilness,
// unusedwrite and shadow. They are deliberately conservative,
// AST-level reimplementations of the upstream passes' highest-signal
// cases — tuned so that a diagnostic is near-certainly a bug, at the
// cost of catching fewer borderline ones.

// Nilness flags the classic inverted-nil-check bug: dereferencing,
// indexing or calling a variable inside the very `if x == nil` block
// that just proved it nil.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "check for uses of a variable inside the if-block that proved it nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.EQL {
				return true
			}
			id := nilComparedIdent(info, cond)
			if id == nil {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			reportNilUse(pass, ifs.Body, obj, id.Name)
			return true
		})
	}
	return nil, nil
}

// nilComparedIdent returns the identifier compared against nil in
// cond, if the identifier has a nilable type.
func nilComparedIdent(info *types.Info, cond *ast.BinaryExpr) *ast.Ident {
	for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		if nl, ok := ast.Unparen(pair[1]).(*ast.Ident); !ok || nl.Name != "nil" {
			continue
		}
		t := info.TypeOf(id)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Slice, *types.Signature, *types.Chan:
			return id
		}
	}
	return nil
}

// reportNilUse reports dereference-like uses of obj within block,
// stopping at any reassignment of obj.
func reportNilUse(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object, name string) {
	var reassignedAt token.Pos = token.Pos(-1)
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(block, func(n ast.Node) bool {
		if reassignedAt >= 0 && n != nil && n.Pos() > reassignedAt {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
					reassignedAt = n.End()
				}
			}
		case *ast.StarExpr:
			if usesObj(n.X) {
				pass.Reportf(n.Pos(), "nil dereference of %s (proved nil by the enclosing if)", name)
			}
		case *ast.SelectorExpr:
			if usesObj(n.X) && !isPkgName(pass.TypesInfo, n.X) {
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
						pass.Reportf(n.Pos(), "nil dereference of %s (proved nil by the enclosing if)", name)
					}
				}
			}
		case *ast.IndexExpr:
			if usesObj(n.X) {
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						pass.Reportf(n.Pos(), "index of %s (proved nil by the enclosing if)", name)
					}
				}
			}
		case *ast.CallExpr:
			if usesObj(n.Fun) {
				pass.Reportf(n.Pos(), "call of %s (proved nil by the enclosing if)", name)
			}
		}
		return true
	})
}

func isPkgName(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.PkgName)
	return ok
}

// UnusedWrite flags writes to a field of a non-pointer local or
// value-receiver copy that is never read afterwards — almost always a
// lost update through a struct copy.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "check for field writes to struct copies that are never read again",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnusedWrites(pass, fd)
		}
	}
	return nil, nil
}

func checkUnusedWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Disqualify variables whose writes we cannot reason about
	// lexically: address-taken, captured by a closure, or written
	// inside a loop (a lexically earlier read may run later).
	escaped := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			ast.Inspect(n, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
								if obj := info.Uses[id]; obj != nil {
									escaped[obj] = true
								}
							}
						}
					}
				}
				return true
			})
		}
		return true
	})

	type write struct {
		sel *ast.SelectorExpr
		obj types.Object
		end token.Pos
	}
	var writes []write
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() || escaped[obj] {
				continue
			}
			// Only non-pointer struct-typed locals/receivers: writing
			// through a pointer mutates the shared value and is fine.
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				continue
			}
			if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			writes = append(writes, write{sel: sel, obj: obj, end: as.End()})
		}
		return true
	})

	for _, wr := range writes {
		read := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || n.Pos() <= wr.end || info.Uses[id] != wr.obj {
				return true
			}
			// An identifier that is itself the base of a later field
			// write is not a read; anything else is.
			if !isWriteBase(fd.Body, id) {
				read = true
			}
			return !read
		})
		if !read {
			pass.Reportf(wr.sel.Pos(), "unusedwrite: field write to %s is never read (writing to a struct copy?)", exprString(wr.sel))
		}
	}
}

// isWriteBase reports whether id appears as the base of a plain
// field-write LHS somewhere in body.
func isWriteBase(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && base == id {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// Shadow flags the risky form of variable shadowing: an inner
// declaration reuses the name of a function-local variable that is
// still used after the inner scope ends (the pattern behind lost
// `err :=` assignments).
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "check for shadowed variables that are still used after the shadowing scope",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	info := pass.TypesInfo
	// Reads and writes of each object, for the used-after check
	// (function-local variables never cross files, so package-wide
	// maps suffice). A use on the left of any assignment — including
	// the reuse in a partial := — is a write, not a read.
	reads := map[types.Object][]token.Pos{}
	writes := map[types.Object][]token.Pos{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		writeIdents := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						writeIdents[id] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if writeIdents[id] {
						writes[obj] = append(writes[obj], id.Pos())
					} else {
						reads[obj] = append(reads[obj], id.Pos())
					}
				}
			}
			return true
		})
	}
	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		if isTestFile(pass.Fset, v.Pos()) {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			continue
		}
		outerScope := inner.Parent()
		if outerScope == nil {
			continue
		}
		_, outerObj := outerScope.LookupParent(id.Name, v.Pos())
		outer, ok := outerObj.(*types.Var)
		if !ok || outer == v || outer.IsField() {
			continue
		}
		// Only function-local shadowing: package-level and universe
		// shadowing is idiomatic (err, min, max...).
		if outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
			continue
		}
		// Risky only if the outer variable is read after the inner
		// scope closes with no intervening write: a read behind a fresh
		// assignment cannot observe a value the shadow made stale.
		usedAfter := false
		for _, r := range reads[outer] {
			if r <= inner.End() {
				continue
			}
			rewritten := false
			for _, wpos := range writes[outer] {
				if wpos > inner.End() && wpos < r {
					rewritten = true
					break
				}
			}
			if !rewritten {
				usedAfter = true
				break
			}
		}
		if !usedAfter {
			continue
		}
		pass.Reportf(id.Pos(), "shadow: declaration of %q shadows declaration at line %d, and the outer variable is used after this scope",
			id.Name, pass.Fset.Position(outer.Pos()).Line)
	}
	return nil, nil
}
