package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// GuardedBy verifies the //hh:guardedby contract: a struct field
// annotated `//hh:guardedby mu` may only be accessed
//
//   - after a lexically preceding <base>.mu.Lock / RLock / TryLock in
//     the same function, where <base> is the same expression the field
//     is accessed through (sl.mu.Lock() guards sl.be, not other[i].be);
//   - inside a function annotated `//hh:locked mu` (the caller holds
//     the lock for the whole call, e.g. capture() under rebuildMu);
//   - inside the function that constructs the declaring struct (no
//     other goroutine can see it yet); or
//   - on a line waived with `//hh:unguarded <why>`, or anywhere in a
//     function whose doc comment carries that waiver.
//
// The lexical-order heuristic accepts an access after Unlock and
// cannot see aliasing, so it under-reports rather than over-reports;
// -race remains the dynamic backstop. What it reliably catches is the
// dangerous default: a new code path touching a guarded field with no
// locking at all.
var GuardedBy = &analysis.Analyzer{
	Name:      "guardedby",
	Doc:       "check that //hh:guardedby struct fields are only accessed with their lock held",
	Run:       runGuardedBy,
	FactTypes: []analysis.Fact{new(guardFact)},
}

// guardFact records the name of the sibling field that guards an
// annotated field, so access sites in other packages can be checked.
type guardFact struct{ Guard string }

func (*guardFact) AFact()           {}
func (f *guardFact) String() string { return "guardedby " + f.Guard }

func runGuardedBy(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	g := &guardPass{pass: pass, local: map[types.Object]string{}}
	g.collect()
	g.check()
	return nil, nil
}

type guardPass struct {
	pass  *analysis.Pass
	local map[types.Object]string
}

func (g *guardPass) collect() {
	for _, f := range g.pass.Files {
		if isTestFile(g.pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			names := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					names[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				guard, ok := marker(fld.Doc, "hh:guardedby")
				if !ok {
					guard, ok = marker(fld.Comment, "hh:guardedby")
				}
				if !ok {
					continue
				}
				if guard == "" || !names[guard] {
					g.pass.Reportf(fld.Pos(), "//hh:guardedby names %q, which is not a sibling field", guard)
					continue
				}
				for _, name := range fld.Names {
					obj := g.pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					g.local[obj] = guard
					g.pass.ExportObjectFact(obj, &guardFact{Guard: guard})
				}
			}
			return true
		})
	}
}

// guardOf returns the guard field name for obj, or "" if unguarded.
func (g *guardPass) guardOf(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return ""
	}
	obj = v.Origin()
	if guard, ok := g.local[obj]; ok {
		return guard
	}
	var fact guardFact
	if g.pass.ImportObjectFact(obj, &fact) {
		return fact.Guard
	}
	return ""
}

func (g *guardPass) check() {
	for _, f := range g.pass.Files {
		if isTestFile(g.pass.Fset, f.Pos()) {
			continue
		}
		w := fileWaivers(g.pass, f, "hh:unguarded")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.checkFunc(fd, w)
		}
	}
}

func (g *guardPass) checkFunc(fd *ast.FuncDecl, w waivers) {
	if _, ok := marker(funcDoc(fd), "hh:unguarded"); ok {
		return // whole function waived
	}
	lockedGuards := map[string]bool{}
	if guard, ok := marker(funcDoc(fd), "hh:locked"); ok && guard != "" {
		lockedGuards[guard] = true
	}

	// Lock acquisitions, keyed by the textual form "<base>.<guard>",
	// with the position of each acquisition.
	locks := map[string][]token.Pos{}
	// Struct types constructed in this function: any access to their
	// guarded fields is pre-publication initialization.
	constructed := map[*types.TypeName]bool{}

	info := g.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					locks[exprString(sel.X)] = append(locks[exprString(sel.X)], n.Pos())
				case "LoadOrStore", "CompareAndSwap":
					// not lock acquisitions; ignore
				}
			}
			if isBuiltin(info, n, "make") && len(n.Args) > 0 {
				if tn := namedOf(info.TypeOf(n)); tn != nil {
					constructed[tn] = true
				}
				if s, ok := info.TypeOf(n).Underlying().(*types.Slice); ok {
					if tn := namedOf(s.Elem()); tn != nil {
						constructed[tn] = true
					}
				}
			}
		case *ast.CompositeLit:
			if tn := namedOf(info.TypeOf(n)); tn != nil {
				constructed[tn] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		guard := g.guardOf(s.Obj())
		if guard == "" {
			return true
		}
		if w.waived(g.pass.Fset, sel.Pos()) || lockedGuards[guard] {
			return true
		}
		if tn := namedOf(info.TypeOf(sel.X)); tn != nil && constructed[tn] {
			return true
		}
		want := exprString(sel.X) + "." + guard
		for _, pos := range locks[want] {
			if pos < sel.Pos() {
				return true
			}
		}
		g.pass.Reportf(sel.Pos(), "guardedby: access to %s.%s without %s held (no preceding %s.Lock in this function; annotate //hh:locked %s or waive //hh:unguarded)",
			exprString(sel.X), s.Obj().Name(), want, want, guard)
		return true
	})
}

// namedOf unwraps pointers and returns the *types.TypeName of t's
// named (or generic-instantiated) type, if any.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok && p.Elem() != t {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	if a, ok := t.(*types.Alias); ok {
		if n, ok := a.Rhs().(*types.Named); ok {
			return n.Obj()
		}
	}
	return nil
}
