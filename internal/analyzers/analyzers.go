// Package analyzers implements hhlint, the repo-specific static
// analysis suite: golang.org/x/tools/go/analysis passes that
// machine-check the contracts the hot paths and wire decoders rely on
// but that the compiler cannot see.
//
// The contracts are declared as comment annotations:
//
//	//hh:noalloc        on a function, interface method, named func
//	                    type or func-typed struct field: the zero-
//	                    allocation ingest/query contract. The body (or
//	                    every value assigned to the field) must avoid
//	                    allocating constructs and may call only other
//	                    noalloc functions (see noalloc.go for the exact
//	                    construct list and the documented trust
//	                    boundaries).
//	//hh:guardedby mu   on a struct field: every access must happen
//	                    with the named sibling lock held (a lexically
//	                    preceding <base>.mu.Lock/RLock/TryLock in the
//	                    same function), inside a function annotated
//	                    //hh:locked mu, or inside the function that
//	                    constructs the struct.
//	//hh:locked mu      on a function: the caller holds mu for the
//	                    whole call (capture() under rebuildMu).
//	//hh:immutable      on a struct type: no field may be written after
//	                    the constructor returns — the property an
//	                    atomic-pointer publish relies on.
//	//hh:nopanic        on a function that parses bytes of foreign
//	                    provenance: it must not panic on any input.
//	                    Explicit panics and calls to module functions
//	                    that can panic are flagged transitively;
//	                    unchecked indexing, slicing and single-value
//	                    type assertions are flagged in annotated
//	                    bodies.
//
// Site-level waivers, each requiring a reason and greppable in review:
//
//	//hh:allocok <why>   waive noalloc findings on this line
//	//hh:unguarded <why> waive guardedby findings on this line (or, in
//	                     a function's doc comment, for the whole body)
//	//hh:checked <why>   waive nopanic findings on this line (the
//	                     callee's panic precondition is locally
//	                     validated)
//
// The analyzers only ever report on this module's packages and skip
// _test.go files (tests deliberately poke internals); fact computation
// likewise skips the standard library, whose calls are covered by the
// explicit allowlist in noalloc.go and the stdlib trust note in
// nopanic.go.
package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// All returns every analyzer hhlint runs: the four contract checkers
// plus the extended (non-default-vet) checks nilness, unusedwrite and
// shadow in their repo-local simplified forms.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoAlloc,
		GuardedBy,
		Immutable,
		NoPanic,
		Nilness,
		UnusedWrite,
		Shadow,
	}
}

// analyzable reports whether pass's package belongs to code this suite
// should analyze. The go vet driver feeds fact-exporting analyzers
// every dependency, standard library included (with no module recorded
// for it) — the contracts only apply to module code, and stdlib calls
// are handled by noalloc's allowlist and nopanic's trust boundary.
func analyzable(pass *analysis.Pass) bool {
	m := pass.Module
	return m != nil && m.Path != "" && m.Path != "std" && m.Path != "cmd"
}

// marker scans a comment group for a "//hh:<name>" annotation and
// returns the rest of that comment line (trimmed).
func marker(cg *ast.CommentGroup, name string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, found := strings.CutPrefix(text, name)
		if !found {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. hh:noallocX
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// waivers indexes one file's "//hh:<waiver> <reason>" comments by line.
type waivers map[int][]string

// fileWaivers collects the waiver comments of f. A waiver with no
// reason text is ignored (and reported), so every suppression carries
// its justification.
func fileWaivers(pass *analysis.Pass, f *ast.File, name string) waivers {
	w := waivers{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, found := strings.CutPrefix(text, name)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			reason := strings.TrimSpace(rest)
			if reason == "" {
				pass.Reportf(c.Pos(), "%s waiver without a reason", name)
				continue
			}
			line := pass.Fset.Position(c.Slash).Line
			w[line] = append(w[line], reason)
		}
	}
	return w
}

// waived reports whether pos's line (or the standalone comment line
// directly above it) carries a waiver.
func (w waivers) waived(fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	return len(w[line]) > 0 || len(w[line-1]) > 0
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// funcDoc returns the doc comment of the function declaration.
func funcDoc(fd *ast.FuncDecl) *ast.CommentGroup { return fd.Doc }

// exprString renders an expression for textual base matching (lock
// bases, self-append targets). It is deliberately positional-free:
// two occurrences of "sl.mu" compare equal.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.SliceExpr:
		writeExpr(b, e.X)
		b.WriteString("[…]")
	case *ast.ParenExpr:
		writeExpr(b, e.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.UnaryExpr:
		b.WriteString(e.Op.String())
		writeExpr(b, e.X)
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteString("(…)")
	default:
		// Unrenderable shapes compare unequal to everything, which only
		// ever makes the analyzers stricter.
		b.WriteString("‹expr›")
	}
}
