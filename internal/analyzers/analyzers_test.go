// Fixture tests for the hhlint analyzer suite. Each directory under
// testdata/src is a self-contained module annotated with
// `// want:<analyzer> "substr"` comments; the test builds the real
// hhlint binary, runs it through the real go vet driver (so facts,
// waivers and cross-package imports behave exactly as in CI), and
// compares the diagnostics against the want comments in both
// directions: every want must fire, and nothing else may.
package analyzers_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var hhlintBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hhlint")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	hhlintBin = filepath.Join(dir, "hhlint")
	build := exec.Command("go", "build", "-o", hhlintBin, "repro/cmd/hhlint")
	build.Dir = repoRoot()
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building hhlint: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func repoRoot() string {
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		panic(err)
	}
	return abs
}

// expectation is one `// want:<analyzer> "substr"` comment.
type expectation struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
	matched  bool
}

// diagnostic is one reported finding, flattened from vet's JSON.
type diagnostic struct {
	file     string // base name
	line     int
	analyzer string
	message  string
	matched  bool
}

var wantRE = regexp.MustCompile(`// want:([a-z]+) "([^"]*)"`)

func collectWants(t *testing.T, fixture string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(fixture, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{
					file:     filepath.Base(path),
					line:     i + 1,
					analyzer: m[1],
					substr:   m[2],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runVet runs hhlint over the fixture module via the go vet driver and
// returns the parsed diagnostics.
func runVet(t *testing.T, fixture string) []diagnostic {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+hhlintBin, "-json", "./...")
	cmd.Dir = fixture
	// The fixture is its own module: detach it from the repo's
	// workspace and vendor settings.
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	_ = cmd.Run() // vet exits nonzero when it reports findings

	// Stderr interleaves `# package` comment lines with JSON objects of
	// the form {"pkg": {"analyzer": [{posn, message}, ...]}}.
	var jsonText strings.Builder
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	type posnMessage struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var diags []diagnostic
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var chunk map[string]map[string][]posnMessage
		if err := dec.Decode(&chunk); err != nil {
			t.Fatalf("parsing go vet -json output: %v\nstderr:\n%s", err, stderr.String())
		}
		for _, byAnalyzer := range chunk {
			for analyzer, findings := range byAnalyzer {
				for _, f := range findings {
					file, line := splitPosn(t, f.Posn)
					diags = append(diags, diagnostic{
						file:     file,
						line:     line,
						analyzer: analyzer,
						message:  f.Message,
					})
				}
			}
		}
	}
	return diags
}

func splitPosn(t *testing.T, posn string) (string, int) {
	t.Helper()
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed position %q", posn)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed position %q: %v", posn, err)
	}
	return filepath.Base(strings.Join(parts[:len(parts)-2], ":")), line
}

func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			fixture := filepath.Join("testdata", "src", e.Name())
			wants := collectWants(t, fixture)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", e.Name())
			}
			diags := runVet(t, fixture)
			for i := range wants {
				w := &wants[i]
				for j := range diags {
					d := &diags[j]
					if d.matched || d.analyzer != w.analyzer || d.file != w.file || d.line != w.line {
						continue
					}
					if !strings.Contains(d.message, w.substr) {
						continue
					}
					w.matched, d.matched = true, true
					break
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic: %s:%d expected %s finding containing %q",
						w.file, w.line, w.analyzer, w.substr)
				}
			}
			for _, d := range diags {
				if !d.matched {
					t.Errorf("unexpected diagnostic: %s:%d %s: %s", d.file, d.line, d.analyzer, d.message)
				}
			}
		})
	}
}

// TestRepoIsClean is the acceptance gate the CI lint job re-runs: the
// annotated repository must produce zero findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-vets the whole repository; skipped in -short mode")
	}
	cmd := exec.Command(hhlintBin, "./...")
	cmd.Dir = repoRoot()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("hhlint ./... reported findings:\n%s", out)
	}
}
