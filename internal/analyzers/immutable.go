package analyzers

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Immutable verifies the //hh:immutable contract: a struct type
// annotated `//hh:immutable` (concurrentSnapshot, the registry's
// published view types) is frozen once its constructor returns — the
// exact property that makes an atomic.Pointer publish safe without a
// read lock. Any write through a field of the annotated type (direct
// assignment, compound assignment, ++/--, or assignment into an
// element of a field) is flagged unless it occurs in a function that
// itself constructs the type, where the value is provably unpublished.
var Immutable = &analysis.Analyzer{
	Name:      "immutable",
	Doc:       "check that //hh:immutable struct types are never written after construction",
	Run:       runImmutable,
	FactTypes: []analysis.Fact{new(immutableFact)},
}

// immutableFact marks a named struct type as frozen-after-construction.
type immutableFact struct{}

func (*immutableFact) AFact()         {}
func (*immutableFact) String() string { return "immutable" }

func runImmutable(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	im := &immutablePass{pass: pass, local: map[types.Object]bool{}}
	im.collect()
	im.check()
	return nil, nil
}

type immutablePass struct {
	pass  *analysis.Pass
	local map[types.Object]bool
}

func (im *immutablePass) collect() {
	for _, f := range im.pass.Files {
		if isTestFile(im.pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := marker(ts.Doc, "hh:immutable")
				_, onDecl := marker(gd.Doc, "hh:immutable")
				if !onSpec && !(onDecl && len(gd.Specs) == 1) {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					im.pass.Reportf(ts.Pos(), "//hh:immutable on non-struct type %s", ts.Name.Name)
					continue
				}
				obj := im.pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				im.local[obj] = true
				im.pass.ExportObjectFact(obj, new(immutableFact))
			}
		}
	}
}

func (im *immutablePass) isImmutable(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	return im.local[tn] || im.pass.ImportObjectFact(tn, new(immutableFact))
}

func (im *immutablePass) check() {
	for _, f := range im.pass.Files {
		if isTestFile(im.pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			im.checkFunc(fd)
		}
	}
}

func (im *immutablePass) checkFunc(fd *ast.FuncDecl) {
	info := im.pass.TypesInfo

	// Types constructed in this function: writes to them are
	// initialization, not mutation.
	constructed := map[*types.TypeName]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tn := namedOf(info.TypeOf(n)); tn != nil {
				constructed[tn] = true
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "new") && len(n.Args) == 1 {
				if tn := namedOf(info.TypeOf(n.Args[0])); tn != nil {
					constructed[tn] = true
				}
			}
		}
		return true
	})

	checkLHS := func(lhs ast.Expr) {
		// Unwrap element writes (snap.entries[i] = ...) down to the
		// field selector they go through.
		for {
			switch l := lhs.(type) {
			case *ast.IndexExpr:
				lhs = l.X
				continue
			case *ast.ParenExpr:
				lhs = l.X
				continue
			case *ast.StarExpr:
				lhs = l.X
				continue
			}
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		tn := namedOf(info.TypeOf(sel.X))
		if !im.isImmutable(tn) {
			return
		}
		if constructed[tn] {
			return
		}
		im.pass.Reportf(sel.Pos(), "immutable: write to field %s of //hh:immutable type %s after construction", s.Obj().Name(), tn.Name())
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLHS(lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(n.X)
		}
		return true
	})
}
