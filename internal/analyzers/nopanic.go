package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// NoPanic verifies the //hh:nopanic contract: functions that parse
// bytes of foreign provenance (Decode, SniffBlob, the /update wire
// parsers) must return errors, never panic, no matter the input.
//
// Two mechanisms compose:
//
//   - May-panic propagation. A function that contains a reachable
//     panic call — or that statically calls a module function that
//     does, transitively — is recorded with a panicFact. Calls to such
//     functions from a //hh:nopanic body are flagged. Validation
//     panics remain legal in constructors (and options.go is exempt
//     from fact export entirely): the decoder must validate its inputs
//     and waive the call with `//hh:checked <why>`.
//
//   - Local input-safety checks, applied only inside annotated bodies
//     (slab internals index by invariant everywhere; flagging them
//     transitively would drown the signal): indexing or slicing a
//     slice/string is flagged unless a len(<same base>) call appears
//     somewhere in the function, and single-value type assertions are
//     flagged (use the comma-ok form).
//
// Trust boundary, on purpose: stdlib calls, interface-method calls and
// func-value calls are assumed non-panicking — the wire fuzz tests are
// the backstop for those. A function with a top-level
// `defer func(){ recover() }()` barrier is accepted as non-panicking.
var NoPanic = &analysis.Analyzer{
	Name:      "nopanic",
	Doc:       "check that //hh:nopanic wire-facing functions cannot panic on any input",
	Run:       runNoPanic,
	FactTypes: []analysis.Fact{new(panicFact)},
}

// panicFact marks an exported-or-not function as able to panic, so
// nopanic zones in other packages refuse to call it unchecked.
type panicFact struct{}

func (*panicFact) AFact()         {}
func (*panicFact) String() string { return "may panic" }

func runNoPanic(pass *analysis.Pass) (interface{}, error) {
	if !analyzable(pass) {
		return nil, nil
	}
	np := &noPanicPass{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		annotated: map[*types.Func]bool{},
		exempt:    map[*types.Func]bool{},
		mayPanic:  map[*types.Func]string{},
		calls:     map[*types.Func][]edge{},
		fileOf:    map[*ast.FuncDecl]*ast.File{},
	}
	np.collect()
	np.propagate()
	np.export()
	np.checkAnnotated()
	return nil, nil
}

type edge struct {
	callee *types.Func
	pos    ast.Node
}

type noPanicPass struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	annotated map[*types.Func]bool // //hh:nopanic
	exempt    map[*types.Func]bool // options.go, or recover barrier
	mayPanic  map[*types.Func]string
	calls     map[*types.Func][]edge
	fileOf    map[*ast.FuncDecl]*ast.File
	checked   map[*ast.File]waivers
}

func (np *noPanicPass) collect() {
	np.checked = map[*ast.File]waivers{}
	for _, f := range np.pass.Files {
		if isTestFile(np.pass.Fset, f.Pos()) {
			continue
		}
		np.checked[f] = fileWaivers(np.pass, f, "hh:checked")
		optionsFile := np.pass.Fset.Position(f.Pos()).Filename
		isOptions := len(optionsFile) >= len("options.go") && optionsFile[len(optionsFile)-len("options.go"):] == "options.go"
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := np.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			np.decls[fn] = fd
			np.fileOf[fd] = f
			if _, ok := marker(funcDoc(fd), "hh:nopanic"); ok {
				np.annotated[fn] = true
			}
			if isOptions || hasRecoverBarrier(fd.Body) {
				np.exempt[fn] = true
				continue
			}
			np.scanBody(fn, fd, np.checked[f])
		}
	}
}

// scanBody records fn's direct panic sites and static call edges,
// skipping sites waived with //hh:checked.
func (np *noPanicPass) scanBody(fn *types.Func, fd *ast.FuncDecl, w waivers) {
	info := np.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.waived(np.pass.Fset, call.Pos()) {
			return true
		}
		if isBuiltin(info, call, "panic") {
			if _, has := np.mayPanic[fn]; !has {
				np.mayPanic[fn] = fmt.Sprintf("panics at %s", np.pass.Fset.Position(call.Pos()))
			}
			return true
		}
		callee, _ := typeutil.Callee(info, call).(*types.Func)
		if callee == nil {
			return true // dynamic or builtin: trust boundary
		}
		callee = callee.Origin()
		np.calls[fn] = append(np.calls[fn], edge{callee: callee, pos: call})
		return true
	})
}

// propagate runs the may-panic fixpoint over module-local edges.
// Annotated (//hh:nopanic) functions are pinned non-panicking: their
// violations are reported in their own bodies, not at every caller.
func (np *noPanicPass) propagate() {
	for changed := true; changed; {
		changed = false
		for fn, edges := range np.calls {
			if _, has := np.mayPanic[fn]; has {
				continue
			}
			if np.annotated[fn] || np.exempt[fn] {
				continue
			}
			for _, e := range edges {
				if reason, bad := np.calleePanics(e.callee); bad {
					np.mayPanic[fn] = fmt.Sprintf("calls %s, which %s", e.callee.FullName(), reason)
					changed = true
					break
				}
			}
		}
	}
}

// calleePanics reports whether a call to fn can panic, with a reason.
func (np *noPanicPass) calleePanics(fn *types.Func) (string, bool) {
	if np.annotated[fn] || np.exempt[fn] {
		return "", false
	}
	if reason, has := np.mayPanic[fn]; has {
		return reason, true
	}
	if _, local := np.decls[fn]; local {
		return "", false
	}
	if np.pass.ImportObjectFact(fn, new(panicFact)) {
		return "may panic", true
	}
	return "", false
}

func (np *noPanicPass) export() {
	for fn := range np.mayPanic {
		if np.annotated[fn] || np.exempt[fn] {
			continue
		}
		np.pass.ExportObjectFact(fn, new(panicFact))
	}
}

func (np *noPanicPass) checkAnnotated() {
	info := np.pass.TypesInfo
	for fn := range np.annotated {
		fd, ok := np.decls[fn]
		if !ok || np.exempt[fn] {
			continue
		}
		w := np.checked[np.fileOf[fd]]

		// Direct panics and calls to may-panic functions.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if w.waived(np.pass.Fset, call.Pos()) {
				return true
			}
			if isBuiltin(info, call, "panic") {
				np.pass.Reportf(call.Pos(), "nopanic: explicit panic in //hh:nopanic function %s", fn.Name())
				return true
			}
			callee, _ := typeutil.Callee(info, call).(*types.Func)
			if callee == nil {
				return true
			}
			if reason, bad := np.calleePanics(callee.Origin()); bad {
				np.pass.Reportf(call.Pos(), "nopanic: %s calls %s, which %s (validate and waive with //hh:checked)", fn.Name(), callee.FullName(), reason)
			}
			return true
		})

		np.checkInputSafety(fn, fd, w)
	}
}

// checkInputSafety flags unchecked indexing/slicing and single-value
// type assertions inside one annotated body.
func (np *noPanicPass) checkInputSafety(fn *types.Func, fd *ast.FuncDecl, w waivers) {
	info := np.pass.TypesInfo

	// Any len(x) call anywhere in the function blesses indexing of the
	// textually identical x: the decoders' whole-or-nothing prologues
	// ("if len(b) < need { return ErrTruncated }") satisfy this.
	lenChecked := map[string]bool{}
	commaOK := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n, "len") && len(n.Args) == 1 {
				lenChecked[exprString(n.Args[0])] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ta, ok := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); ok {
					commaOK[ta] = true
				}
			}
		}
		return true
	})

	report := func(n ast.Node, format string, args ...interface{}) {
		if !w.waived(np.pass.Fset, n.Pos()) {
			np.pass.Reportf(n.Pos(), "nopanic: "+format, args...)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			t := info.TypeOf(n.X)
			if t == nil || !indexable(t) {
				return true // map index or generic instantiation: safe here
			}
			if isArrayLike(t) && info.Types[n.Index].Value != nil {
				return true // constant index into array: compile-time checked
			}
			if lenChecked[exprString(n.X)] {
				return true
			}
			report(n, "index of %s without a len(%s) check in %s", exprString(n.X), exprString(n.X), fn.Name())
		case *ast.SliceExpr:
			if n.Low == nil && n.High == nil && n.Max == nil {
				return true // x[:] cannot panic
			}
			t := info.TypeOf(n.X)
			if t == nil || !indexable(t) {
				return true
			}
			if lenChecked[exprString(n.X)] {
				return true
			}
			report(n, "slice of %s without a len(%s) check in %s", exprString(n.X), exprString(n.X), fn.Name())
		case *ast.TypeAssertExpr:
			if n.Type == nil || commaOK[n] {
				return true // type switch, or comma-ok form
			}
			report(n, "single-value type assertion can panic; use the comma-ok form")
		}
		return true
	})
}

// indexable reports whether t is a slice, string or array — the types
// whose indexing can panic on attacker-controlled lengths. Maps are
// excluded (indexing never panics) and so are type parameters.
func indexable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		if p, ok := t.Underlying().(*types.Pointer); ok {
			_, isArr := p.Elem().Underlying().(*types.Array)
			return isArr
		}
		return true
	case *types.Basic:
		return isString(t)
	}
	return false
}

// isArrayLike reports whether t is an array or pointer-to-array.
func isArrayLike(t types.Type) bool {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	_, ok := u.(*types.Array)
	return ok
}

// hasRecoverBarrier reports whether body opens with a deferred closure
// that calls recover, converting any panic into an error return.
func hasRecoverBarrier(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		fl, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
