// Package inner provides callees for the cross-package fact test: the
// root fixture package may call Checked (its noalloc fact is exported
// and imported across the package boundary) but not Plain.
package inner

// Plain carries no contract.
func Plain() {}

// Checked carries the noalloc contract.
//
//hh:noalloc
func Checked() {}
