// Package noallocfix exercises the noalloc analyzer: annotated
// functions must avoid allocating constructs and may only call other
// noalloc code; //hh:allocok waives a finding with a reason.
//
// Lines carrying a want comment must produce a matching diagnostic;
// all other lines must be clean.
package noallocfix

import "noallocfix/inner"

//hh:noalloc
func makes(n int) []int {
	s := make([]int, n) // want:noalloc "make allocates"
	return s
}

//hh:noalloc
func selfAppend(dst []int, v int) []int {
	dst = append(dst, v)
	return append(dst, v)
}

//hh:noalloc
func resliceAppend(buf []int) []int {
	out := append(buf[:0], 1)
	return out
}

//hh:noalloc
func strayAppend(dst, src []int) []int {
	tmp := append(src, 1) // want:noalloc "append outside self-assignment"
	return dst[:copy(dst, tmp)]
}

//hh:noalloc
func callsPlain() { inner.Plain() } // want:noalloc "not //hh:noalloc"

//hh:noalloc
func callsChecked() { inner.Checked() }

//hh:noalloc
func boxes(v int) {
	var sink any
	sink = v // want:noalloc "interface boxing"
	_ = sink
}

//hh:noalloc
func waivedMake(n int) []int {
	s := make([]int, n) //hh:allocok fixture demonstrates a reasoned waiver
	return s
}

// scratch mirrors the batch-coalescing buffers (summary.go's
// coalesceScratch) and the two-pass kernels' probe scratch: pooled
// per-shard slice-of-slices grown through indexed self-append, and a
// flat hint buffer recycled by reslice. Both must stay admissible —
// the contract is amortized-zero growth of storage the scratch owns.
type scratch struct {
	keys  [][]int
	probe []int
}

//hh:noalloc
func (sc *scratch) indexedSelfAppend(si, v int) {
	sc.keys[si] = append(sc.keys[si], v)
}

//hh:noalloc
func (sc *scratch) indexedStrayAppend(si, sj, v int) {
	sc.keys[si] = append(sc.keys[sj], v) // want:noalloc "append outside self-assignment"
}

//hh:noalloc
func (sc *scratch) probePass(items []int) int {
	sc.probe = sc.probe[:0]
	for _, it := range items {
		sc.probe = append(sc.probe, it)
	}
	return len(sc.probe)
}

// keyIndex exercises the annotated-interface-method idiom (the
// arena.Index pattern): a marker on the interface method admits calls
// through the interface from noalloc code, binding every
// implementation to the contract; unannotated methods stay barred.
type keyIndex interface {
	// Get is part of the zero-alloc contract.
	//
	//hh:noalloc
	Get(k string) (int32, bool)
	// Materialize is the export-boundary copy; deliberately unannotated.
	Materialize(k string) string
}

//hh:noalloc
func viaAnnotatedMethod(ix keyIndex) (int32, bool) {
	return ix.Get("k")
}

//hh:noalloc
func viaUnannotatedMethod(ix keyIndex) string {
	return ix.Materialize("k") // want:noalloc "not //hh:noalloc"
}
