// Package guardedbyfix exercises the guardedby analyzer: fields
// annotated //hh:guardedby must only be touched with the named sibling
// lock held, inside an //hh:locked function, in the constructing
// function, or under an //hh:unguarded waiver.
package guardedbyfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //hh:guardedby mu
}

func newCounter() *counter { return &counter{n: 1} }

func locked(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// calledWithLockHeld documents that every caller already holds mu.
//
//hh:locked mu
func calledWithLockHeld(c *counter) int { return c.n }

func racy(c *counter) int {
	return c.n // want:guardedby "without c.mu held"
}

//hh:unguarded fixture demonstrates a whole-function waiver
func waived(c *counter) int { return c.n }
