module guardedbyfix

go 1.24
