// Package extendedfix exercises the simplified nilness, unusedwrite
// and shadow analyzers.
package extendedfix

type point struct{ x, y int }

func deref(p *point) int {
	if p == nil {
		return p.x // want:nilness "proved nil"
	}
	return p.x
}

func copyWrite(p point) {
	p.x = 1 // want:unusedwrite "never read"
}

func shadowed(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total := i // want:shadow "shadows declaration"
		_ = total
	}
	return total
}
