module extendedfix

go 1.24
