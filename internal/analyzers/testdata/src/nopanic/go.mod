module nopanicfix

go 1.24
