// Package nopanicfix exercises the nopanic analyzer: annotated parsers
// must not panic on any input — explicit panics, calls into panicking
// module code, unchecked indexing and single-value type assertions are
// all flagged.
package nopanicfix

import "errors"

var errShort = errors.New("short input")

//hh:nopanic
func parse(b []byte) (byte, error) {
	if len(b) < 2 {
		return 0, errShort
	}
	return b[1], nil
}

//hh:nopanic
func unchecked(b []byte) byte {
	return b[0] // want:nopanic "index of b"
}

//hh:nopanic
func explodes() {
	panic("boom") // want:nopanic "explicit panic"
}

//hh:nopanic
func callsMust() {
	must(false) // want:nopanic "callsMust calls"
}

// must panics when ok is false; the panic fact reaches callers through
// the local call graph.
func must(ok bool) {
	if !ok {
		panic("must")
	}
}

//hh:nopanic
func assertsChecked(v any) int {
	n, ok := v.(int)
	if !ok {
		return 0
	}
	return n
}

//hh:nopanic
func asserts(v any) int {
	return v.(int) // want:nopanic "type assertion"
}
