module immutablefix

go 1.24
