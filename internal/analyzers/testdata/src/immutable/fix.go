// Package immutablefix exercises the immutable analyzer: fields of an
// //hh:immutable type may only be written in functions that construct
// the type.
package immutablefix

// view is published through an atomic pointer and frozen once built.
//
//hh:immutable
type view struct {
	n int
}

func build(n int) *view {
	v := &view{}
	v.n = n
	return v
}

func mutate(v *view) {
	v.n++ // want:immutable "write to field n"
}
