// Package lossycounting implements the LOSSYCOUNTING algorithm of Manku
// and Motwani (Table 1, row 3): the stream is split into windows of width
// w = ⌈1/ε⌉; stored entries carry the maximum undercount Δ of their
// insertion window, and at every window boundary entries whose count plus
// Δ no longer exceed the window index are pruned.
//
// LOSSYCOUNTING guarantees f_i − ε·N ≤ c_i ≤ f_i (an F1-type bound). The
// paper (Section 1.1) notes its space is O(1/ε · log εN) on adversarial
// orderings — unlike FREQUENT/SPACESAVING its footprint is not fixed at
// m — and it does not enjoy the residual tail guarantee. It is included
// as the baseline that separates "counter algorithm" from "heavy-tolerant
// counter algorithm" in experiments.
package lossycounting

import "repro/internal/core"

type entry struct {
	count uint64
	delta uint64
}

// presizeCap bounds the construction-time size hint (see New).
const presizeCap = 256

// LossyCounting estimates frequencies with error at most N/w. The zero
// value is not usable; construct with New.
type LossyCounting[K comparable] struct {
	w       uint64 // window width = ⌈1/ε⌉
	entries map[K]entry
	n       uint64
	bucket  uint64 // current window index b = ⌈N/w⌉
	maxLen  int    // high-water mark of stored entries
	// clone, when set, copies a key at the moment it is retained
	// (SetKeyClone) so callers may pass keys aliasing reused memory.
	clone func(K) K
	// pruneScratch is reused across prune calls: the doomed keys are
	// collected first and deleted after, so a window-boundary prune on a
	// warmed structure performs no allocations.
	pruneScratch []K
}

// SetKeyClone installs fn as the borrowed-key clone hook, so callers
// may hand Update/AddN keys whose backing memory is reused after the
// call. Every arrival is cloned — LOSSYCOUNTING writes its map on hits
// as well as inserts, and a string-keyed map assignment replaces the
// stored key — so the hook's dedup cache carries the cost. Must be
// called before the first update.
func (l *LossyCounting[K]) SetKeyClone(fn func(K) K) { l.clone = fn }

// New returns a LOSSYCOUNTING instance with window width w (error
// parameter ε = 1/w). It panics if w < 1.
func New[K comparable](w int) *LossyCounting[K] {
	if w < 1 {
		panic("lossycounting: window width must be >= 1")
	}
	// Pre-size the table from the nominal budget w, capped: the hint
	// removes the incremental-growth allocations from the first windows
	// of ingest, but prune and Reset scan the whole bucket array, so an
	// instance that stays sparse (a shard of a skewed stream holds far
	// fewer than w entries) must not be born with w buckets — windowed
	// sharded deployments run dozens of instances, and full-w tables
	// cost ~30% ingest throughput in cache traffic alone. Beyond the
	// cap, growth is amortized doubling as usual.
	hint := w
	if hint > presizeCap {
		hint = presizeCap
	}
	return &LossyCounting[K]{w: uint64(w), entries: make(map[K]entry, hint), bucket: 1}
}

// Update processes one occurrence of item.
//
//hh:noalloc
func (l *LossyCounting[K]) Update(item K) {
	l.n++
	if l.clone != nil {
		// Unlike the slab structures, every arrival writes the map —
		// and a map assignment to an existing string key replaces the
		// stored key (the runtime's needkeyupdate behavior), so even
		// the hit path would retain a borrowed key. Clone up front.
		item = l.clone(item) //hh:allocok borrowed-key updates copy the key by contract
	}
	if e, ok := l.entries[item]; ok {
		e.count++
		l.entries[item] = e
	} else {
		l.entries[item] = entry{count: 1, delta: l.bucket - 1}
		if len(l.entries) > l.maxLen {
			l.maxLen = len(l.entries)
		}
	}
	if l.n%l.w == 0 {
		l.prune()
		l.bucket++
	}
}

// AddN processes n occurrences of item at once. The window-boundary
// prunes the n arrivals would have triggered are batched into a single
// prune at the last boundary crossed; untouched entries end in the
// identical state, while item itself keeps its full count (one-at-a-time
// processing could prune and re-insert it mid-batch, losing mass), so
// batched estimates are never lower — and the undercount guarantee
// c_i ≥ f_i − εN is preserved.
//
//hh:noalloc
func (l *LossyCounting[K]) AddN(item K, n uint64) {
	if n == 0 {
		return
	}
	before := l.n
	l.n += n
	if l.clone != nil {
		// See Update: every arrival writes the map, and string-keyed
		// map assignment replaces the stored key even on hits.
		item = l.clone(item) //hh:allocok borrowed-key updates copy the key by contract
	}
	if e, ok := l.entries[item]; ok {
		e.count += n
		l.entries[item] = e
	} else {
		l.entries[item] = entry{count: n, delta: l.bucket - 1}
		if len(l.entries) > l.maxLen {
			l.maxLen = len(l.entries)
		}
	}
	if crossings := l.n/l.w - before/l.w; crossings > 0 {
		// Update prunes with the pre-increment bucket at each boundary;
		// the last boundary uses bucket + crossings − 1.
		l.bucket += crossings - 1
		l.prune()
		l.bucket++
	}
}

// prune removes entries that can no longer be frequent: count + Δ ≤ b.
// Doomed keys are staged in the reused scratch slice and deleted in a
// second pass: deleting inside the range would be legal, but the map
// iterator may then visit a shrinking table's buckets in an order that
// depends on the deletions — staging keeps the scan cost exactly one
// full iteration and the scratch capacity converges to the largest
// prune, after which the boundary path allocates nothing.
//
//hh:noalloc
func (l *LossyCounting[K]) prune() {
	doomed := l.pruneScratch[:0]
	for k, e := range l.entries {
		if e.count+e.delta <= l.bucket {
			doomed = append(doomed, k) //hh:allocok scratch growth converges to the largest prune
		}
	}
	for _, k := range doomed {
		delete(l.entries, k)
	}
	clear(doomed) // drop retained key references (string keys would pin their backing)
	l.pruneScratch = doomed[:0]
}

// Estimate returns the stored count of item, zero if absent.
// LOSSYCOUNTING underestimates: c_i ≤ f_i ≤ c_i + Δ_i ≤ c_i + εN.
//
//hh:noalloc
func (l *LossyCounting[K]) Estimate(item K) uint64 {
	return l.entries[item].count
}

// DeltaOf returns the Δ recorded at item's insertion (its maximum
// undercount), zero if absent.
//
//hh:noalloc
func (l *LossyCounting[K]) DeltaOf(item K) uint64 {
	return l.entries[item].delta
}

// AppendEntries appends the stored counters in decreasing count order to
// dst, keeping at most max entries when max >= 0, and returns the
// extended slice. The entries live in a hash map, so unlike the
// bucket-list algorithms all of them are materialized and sorted before
// truncation; with a reused buffer of sufficient capacity the call still
// allocates nothing.
//
//hh:noalloc
func (l *LossyCounting[K]) AppendEntries(dst []core.Entry[K], max int) []core.Entry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	for k, e := range l.entries {
		dst = append(dst, core.Entry[K]{Item: k, Count: e.count, Err: e.delta})
	}
	core.SortEntries(dst[start:])
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

// Entries returns the stored counters sorted by decreasing count; Err
// carries each entry's Δ.
func (l *LossyCounting[K]) Entries() []core.Entry[K] {
	return l.AppendEntries(make([]core.Entry[K], 0, len(l.entries)), -1)
}

// Capacity returns the window width w — the nominal space parameter.
// Unlike the HTC algorithms, the actual number of stored entries may
// exceed w; see MaxStored.
//
//hh:noalloc
func (l *LossyCounting[K]) Capacity() int { return int(l.w) }

// Len returns the number of currently stored entries.
func (l *LossyCounting[K]) Len() int { return len(l.entries) }

// MaxStored returns the high-water mark of stored entries — the actual
// space the algorithm needed, measured for Table 1's space column.
func (l *LossyCounting[K]) MaxStored() int { return l.maxLen }

// N returns the number of processed stream elements.
//
//hh:noalloc
func (l *LossyCounting[K]) N() uint64 { return l.n }

// Reset restores the empty state, retaining the map storage so a reset
// structure keeps updating allocation-free (the window layer's epoch
// rotation relies on this).
//
//hh:noalloc
func (l *LossyCounting[K]) Reset() {
	clear(l.entries)
	l.n, l.bucket, l.maxLen = 0, 1, 0
}
