package lossycounting

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestExactWithinWindow(t *testing.T) {
	l := New[uint64](100)
	for _, x := range []uint64{1, 2, 1, 3, 1} {
		l.Update(x)
	}
	if got := l.Estimate(1); got != 3 {
		t.Errorf("Estimate(1) = %d, want 3", got)
	}
	if got := l.Estimate(9); got != 0 {
		t.Errorf("Estimate(9) = %d, want 0", got)
	}
}

func TestPruneAtWindowBoundary(t *testing.T) {
	// w=4: items 1,2,3,4 each once fill the first window; at the boundary
	// every entry has count 1, delta 0, so count+delta ≤ b=1 prunes all.
	l := New[uint64](4)
	for _, x := range []uint64{1, 2, 3, 4} {
		l.Update(x)
	}
	if l.Len() != 0 {
		t.Errorf("Len after boundary = %d, want 0", l.Len())
	}
}

func TestSurvivorsKeepCounts(t *testing.T) {
	// w=4: 1,1,1,2 → at the boundary item 1 (count 3) survives, item 2
	// (count 1, delta 0) is pruned.
	l := New[uint64](4)
	for _, x := range []uint64{1, 1, 1, 2} {
		l.Update(x)
	}
	if got := l.Estimate(1); got != 3 {
		t.Errorf("Estimate(1) = %d, want 3", got)
	}
	if got := l.Estimate(2); got != 0 {
		t.Errorf("Estimate(2) = %d, want 0", got)
	}
}

func TestUnderestimateProperty(t *testing.T) {
	err := quick.Check(func(raw []uint8, wRaw uint8) bool {
		w := int(wRaw)%16 + 1
		l := New[uint64](w)
		truth := exact.New()
		for _, x := range raw {
			item := uint64(x) % 16
			l.Update(item)
			truth.Update(item)
		}
		for i := uint64(0); i < 16; i++ {
			if float64(l.Estimate(i)) > truth.Freq(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestF1ErrorBound(t *testing.T) {
	// f_i − c_i ≤ N/w for every item.
	err := quick.Check(func(raw []uint8, wRaw uint8) bool {
		w := int(wRaw)%16 + 1
		l := New[uint64](w)
		truth := exact.New()
		for _, x := range raw {
			item := uint64(x) % 16
			l.Update(item)
			truth.Update(item)
		}
		bound := float64(l.N()) / float64(w)
		for i := uint64(0); i < 16; i++ {
			if truth.Freq(i)-float64(l.Estimate(i)) > bound {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeltaPlusCountBoundsTrueFrequency(t *testing.T) {
	s := stream.Zipf(100, 1.1, 10000, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	l := New[uint64](50)
	for _, x := range s {
		l.Update(x)
	}
	for _, e := range l.Entries() {
		f := truth.Freq(e.Item)
		if float64(e.Count) > f {
			t.Errorf("item %d overestimated: %d > %v", e.Item, e.Count, f)
		}
		if f > float64(e.Count+e.Err) {
			t.Errorf("item %d: true %v exceeds count+Δ = %d", e.Item, f, e.Count+e.Err)
		}
	}
}

func TestSpaceHighWaterMark(t *testing.T) {
	// Unlike the HTC algorithms, LOSSYCOUNTING has no hard m-counter cap:
	// its footprint is only pruned at window boundaries. The high-water
	// mark must reach the window width on a distinct-heavy stream, and
	// stay within the O(w·log(N/w)) analysis bound.
	const n, w = 400, 40
	s := stream.Zipf(n, 0.6, 40000, stream.OrderRoundRobin, 3)
	l := New[uint64](w)
	for _, x := range s {
		l.Update(x)
	}
	if l.MaxStored() < w {
		t.Errorf("MaxStored = %d, expected >= w = %d", l.MaxStored(), w)
	}
	if l.MaxStored() > 4*w {
		t.Errorf("MaxStored = %d, implausibly above the analysis bound", l.MaxStored())
	}
	if l.MaxStored() < l.Len() {
		t.Errorf("high-water mark %d below final length %d", l.MaxStored(), l.Len())
	}
}

func TestPanicsOnBadW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestReset(t *testing.T) {
	l := New[uint64](4)
	for _, x := range []uint64{1, 1, 2, 3, 4, 5} {
		l.Update(x)
	}
	l.Reset()
	if l.Len() != 0 || l.N() != 0 || l.MaxStored() != 0 {
		t.Error("Reset did not clear state")
	}
	l.Update(7)
	if l.Estimate(7) != 1 {
		t.Error("unusable after Reset")
	}
}

func TestCapacityReportsW(t *testing.T) {
	if got := New[int](17).Capacity(); got != 17 {
		t.Errorf("Capacity = %d, want 17", got)
	}
}
