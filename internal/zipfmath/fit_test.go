package zipfmath

import (
	"math"
	"testing"
)

func TestFitAlphaOnExactZipf(t *testing.T) {
	for _, alpha := range []float64{1.0, 1.3, 2.0} {
		f := Frequencies(2000, alpha, 1e7)
		sorted := make([]float64, len(f))
		for i, v := range f {
			sorted[i] = float64(v)
		}
		got, r2 := FitAlpha(sorted, 500)
		if math.Abs(got-alpha) > 0.05 {
			t.Errorf("alpha=%v: fitted %v", alpha, got)
		}
		if r2 < 0.99 {
			t.Errorf("alpha=%v: r2 = %v, want ~1", alpha, r2)
		}
	}
}

func TestFitAlphaUniformData(t *testing.T) {
	sorted := []float64{10, 10, 10, 10}
	alpha, r2 := FitAlpha(sorted, 0)
	if alpha != 0 {
		t.Errorf("alpha = %v, want 0 for uniform data", alpha)
	}
	if r2 != 1 {
		t.Errorf("r2 = %v, want 1 for perfectly flat data", r2)
	}
}

func TestFitAlphaDegenerateInputs(t *testing.T) {
	if a, r2 := FitAlpha(nil, 0); a != 0 || r2 != 0 {
		t.Errorf("nil input: %v, %v", a, r2)
	}
	if a, r2 := FitAlpha([]float64{5}, 0); a != 0 || r2 != 0 {
		t.Errorf("single point: %v, %v", a, r2)
	}
	if a, r2 := FitAlpha([]float64{0, 0}, 0); a != 0 || r2 != 0 {
		t.Errorf("all zero: %v, %v", a, r2)
	}
}

func TestFitAlphaStopsAtZeros(t *testing.T) {
	sorted := []float64{100, 10, 1, 0, 0, 0}
	alpha, _ := FitAlpha(sorted, 0)
	// log-log slope of (1,100),(2,10),(3,1): roughly -4.2.
	if alpha < 3.5 || alpha > 5 {
		t.Errorf("alpha = %v, want ~4.2", alpha)
	}
}

func TestFitAlphaMaxRankRestricts(t *testing.T) {
	// A distribution that is Zipf(2) on the head with a flat tail: fitting
	// only the head must recover 2.
	f := Frequencies(100, 2.0, 1e6)
	sorted := make([]float64, 0, 200)
	for _, v := range f {
		sorted = append(sorted, float64(v))
	}
	for i := 0; i < 100; i++ {
		sorted = append(sorted, 1)
	}
	alpha, _ := FitAlpha(sorted, 50)
	if math.Abs(alpha-2) > 0.1 {
		t.Errorf("head-restricted fit = %v, want ~2", alpha)
	}
}

func TestSuggestCounters(t *testing.T) {
	// alpha 2, eps 0.01 -> 2*sqrt(100) = 20.
	if got := SuggestCounters(2, 0.01, 1, 1); got != 20 {
		t.Errorf("SuggestCounters = %d, want 20", got)
	}
	// Sub-Zipfian clamps to alpha=1: 2/eps.
	if got := SuggestCounters(0.4, 0.1, 1, 1); got != 20 {
		t.Errorf("SuggestCounters(clamped) = %d, want 20", got)
	}
}
