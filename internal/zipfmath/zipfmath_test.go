package zipfmath

import (
	"math"
	"testing"
)

func TestZetaSmall(t *testing.T) {
	if got := Zeta(1, 2); got != 1 {
		t.Errorf("Zeta(1, 2) = %v, want 1", got)
	}
	// ζ_3(1) = 1 + 1/2 + 1/3
	if got, want := Zeta(3, 1), 1+0.5+1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("Zeta(3, 1) = %v, want %v", got, want)
	}
	// ζ_n(2) converges to π²/6 from below.
	if got := Zeta(100000, 2); got >= math.Pi*math.Pi/6 || got < 1.6448 {
		t.Errorf("Zeta(1e5, 2) = %v, want just under π²/6 ≈ 1.644934", got)
	}
}

func TestZetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zeta(0) did not panic")
		}
	}()
	Zeta(0, 1)
}

func TestFrequenciesMassConservation(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0, 1.1, 2.0, 3.0} {
		for _, n := range []int{1, 2, 10, 1000} {
			const mass = 100000
			f := Frequencies(n, alpha, mass)
			var sum uint64
			for _, v := range f {
				sum += v
			}
			if sum != mass {
				t.Errorf("alpha=%v n=%d: mass %d, want %d", alpha, n, sum, mass)
			}
		}
	}
}

func TestFrequenciesNonIncreasing(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.0, 1.5, 2.5} {
		f := Frequencies(500, alpha, 1e6)
		for i := 1; i < len(f); i++ {
			if f[i] > f[i-1] {
				t.Fatalf("alpha=%v: f[%d]=%d > f[%d]=%d", alpha, i, f[i], i-1, f[i-1])
			}
		}
	}
}

func TestFrequenciesMatchFormula(t *testing.T) {
	const n, mass = 100, 1000000
	const alpha = 1.5
	f := Frequencies(n, alpha, mass)
	zeta := Zeta(n, alpha)
	for i := 0; i < n; i++ {
		want := mass / (math.Pow(float64(i+1), alpha) * zeta)
		if math.Abs(float64(f[i])-want) > 1.5 {
			t.Errorf("f[%d] = %d, formula gives %v", i, f[i], want)
		}
	}
}

func TestFrequenciesSingleItem(t *testing.T) {
	f := Frequencies(1, 2.0, 42)
	if len(f) != 1 || f[0] != 42 {
		t.Errorf("Frequencies(1) = %v, want [42]", f)
	}
}

func TestFrequenciesZeroMass(t *testing.T) {
	f := Frequencies(5, 1.0, 0)
	for i, v := range f {
		if v != 0 {
			t.Errorf("f[%d] = %d, want 0", i, v)
		}
	}
}

func TestFrequenciesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":           func() { Frequencies(0, 1, 10) },
		"negative mass": func() { Frequencies(3, 1, -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTheorem8Counters(t *testing.T) {
	// A = B = 1, ε = 0.01, α = 2 → m = 2 * 10 = 20.
	if got := Theorem8Counters(1, 1, 0.01, 2); got != 20 {
		t.Errorf("Theorem8Counters = %d, want 20", got)
	}
	// α = 1 → m = 2/ε.
	if got := Theorem8Counters(1, 1, 0.1, 1); got != 20 {
		t.Errorf("Theorem8Counters(alpha=1) = %d, want 20", got)
	}
}

func TestTheorem8CountersPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"eps=0":    func() { Theorem8Counters(1, 1, 0, 2) },
		"eps=1":    func() { Theorem8Counters(1, 1, 1, 2) },
		"alpha<1":  func() { Theorem8Counters(1, 1, 0.1, 0.5) },
		"eps=-0.1": func() { Theorem8Counters(1, 1, -0.1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTheorem9EpsilonFormula(t *testing.T) {
	const n, k = 1000, 5
	const alpha = 2.0
	got := Theorem9Epsilon(n, k, alpha)
	want := alpha / (2 * Zeta(n, alpha) * math.Pow(k+1, alpha) * k)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Theorem9Epsilon = %v, want %v", got, want)
	}
	if got <= 0 || got >= 1 {
		t.Errorf("epsilon %v outside (0,1)", got)
	}
}

func TestTheorem9CountersGrowsWithK(t *testing.T) {
	prev := 0
	for _, k := range []int{1, 2, 5, 10, 20} {
		m := Theorem9Counters(100000, k, 1, 1, 1.5)
		if m <= prev {
			t.Fatalf("counter budget not increasing: k=%d gives m=%d, previous %d", k, m, prev)
		}
		prev = m
	}
}

func TestTheorem9AlphaOneBudgetIsKSquaredLogN(t *testing.T) {
	// Theorem 9 for α = 1: the budget must scale as Θ(k² ln n). With
	// eps = 1/(2 ζ_n(1) (k+1) k) and m = (A+B)/eps, the formula gives
	// m = 4 ζ_n(1) (k+1) k; check both the formula and the asymptotic
	// shape in n and k.
	const n = 100000
	for _, k := range []int{2, 5, 10} {
		m := Theorem9Counters(n, k, 1, 1, 1)
		want := 4 * Zeta(n, 1) * float64(k+1) * float64(k)
		if math.Abs(float64(m)-want) > want*0.01+1 {
			t.Errorf("k=%d: m = %d, formula gives %v", k, m, want)
		}
	}
	// Doubling ln n (squaring n) roughly doubles the budget.
	m1 := Theorem9Counters(1000, 5, 1, 1, 1)
	m2 := Theorem9Counters(1000000, 5, 1, 1, 1)
	ratio := float64(m2) / float64(m1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("budget ratio for n 1e3 -> 1e6 is %v, want ~2 (ln n doubling)", ratio)
	}
}

func TestTheorem9EpsilonPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Theorem9Epsilon(k=0) did not panic")
		}
	}()
	Theorem9Epsilon(10, 0, 2)
}
