// Package zipfmath implements the Zipfian-distribution arithmetic of
// Section 5: the generalised harmonic number ζ_n(α), exact Zipfian
// frequency vectors f_i = N / (i^α ζ_n(α)), and the counter-budget
// thresholds of Theorems 8 and 9.
package zipfmath

import (
	"math"
	"sort"
)

// Zeta returns the generalised harmonic number ζ_n(α) = Σ_{i=1..n} i^{−α}.
// It panics if n < 1.
func Zeta(n int, alpha float64) float64 {
	if n < 1 {
		panic("zipfmath: Zeta requires n >= 1")
	}
	s := 0.0
	for i := 1; i <= n; i++ {
		s += math.Pow(float64(i), -alpha)
	}
	return s
}

// Frequencies returns the exact Zipfian frequency vector over n items for a
// stream of total mass N: f_i = N / (i^α ζ_n(α)), rounded to integers while
// preserving Σ f_i = N exactly (largest-remainder apportionment). The
// result is sorted in decreasing order; item identifiers are the indices.
func Frequencies(n int, alpha, totalMass float64) []uint64 {
	if n < 1 {
		panic("zipfmath: Frequencies requires n >= 1")
	}
	if totalMass < 0 {
		panic("zipfmath: negative total mass")
	}
	zeta := Zeta(n, alpha)
	exact := make([]float64, n)
	floors := make([]uint64, n)
	var assigned uint64
	for i := 0; i < n; i++ {
		exact[i] = totalMass / (math.Pow(float64(i+1), alpha) * zeta)
		floors[i] = uint64(math.Floor(exact[i]))
		assigned += floors[i]
	}
	// Distribute the remaining mass to the largest fractional parts; on
	// ties prefer smaller index so the vector stays non-increasing.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa := exact[order[a]] - math.Floor(exact[order[a]])
		fb := exact[order[b]] - math.Floor(exact[order[b]])
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	remaining := uint64(math.Round(totalMass)) - assigned
	for i := uint64(0); i < remaining && int(i) < n; i++ {
		floors[order[i]]++
	}
	// Repair any non-monotonicity introduced by rounding. Adjacent entries
	// can differ by at most one increment, so bubbling larger values left
	// restores the non-increasing order.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && floors[j] > floors[j-1]; j-- {
			floors[j-1], floors[j] = floors[j], floors[j-1]
		}
	}
	return floors
}

// Theorem8Counters returns the counter budget m = (A+B)·(1/ε)^{1/α}
// prescribed by Theorem 8 to achieve per-item error ≤ εF1 on Zipfian data
// with parameter α ≥ 1, for an algorithm with tail constants (A, B).
func Theorem8Counters(a, b, epsilon, alpha float64) int {
	if epsilon <= 0 || epsilon >= 1 {
		panic("zipfmath: epsilon must be in (0,1)")
	}
	if alpha < 1 {
		panic("zipfmath: Theorem 8 requires alpha >= 1")
	}
	k := math.Pow(1/epsilon, 1/alpha)
	return int(math.Ceil((a + b) * k))
}

// Theorem9Epsilon returns the error rate ε = α / (2 ζ_n(α) (k+1)^α k)
// sufficient (per the Theorem 9 proof) to recover the top-k elements of an
// α-Zipfian stream in exact order.
func Theorem9Epsilon(n, k int, alpha float64) float64 {
	if k < 1 {
		panic("zipfmath: Theorem 9 requires k >= 1")
	}
	return alpha / (2 * Zeta(n, alpha) * math.Pow(float64(k+1), alpha) * float64(k))
}

// Theorem9Counters combines Theorems 8 and 9: the counter budget sufficient
// to retrieve the ordered top-k of an α-Zipfian stream (α ≥ 1), for an
// algorithm with tail constants (A, B).
func Theorem9Counters(n, k int, a, b, alpha float64) int {
	eps := Theorem9Epsilon(n, k, alpha)
	return Theorem8Counters(a, b, eps, alpha)
}
