package zipfmath

import "math"

// FitAlpha estimates the Zipf parameter α of a frequency distribution by
// least-squares regression of log(frequency) on log(rank) over the
// non-zero entries of a frequency vector sorted in decreasing order. The
// returned alpha is the negated slope; r2 is the coefficient of
// determination of the fit (1 means perfectly Zipfian).
//
// Practitioners use the estimate to size counter budgets via Theorem 8:
// m = (A+B)·(1/ε)^(1/α̂) counters suffice for error εF1 when the data is
// (approximately) α̂-Zipfian. Ranks beyond maxRank are ignored (the tail
// of empirical distributions is dominated by sampling noise); pass 0 to
// use every non-zero rank.
func FitAlpha(sortedDesc []float64, maxRank int) (alpha, r2 float64) {
	n := len(sortedDesc)
	if maxRank > 0 && maxRank < n {
		n = maxRank
	}
	// Collect (log rank, log freq) points over strictly positive
	// frequencies.
	var xs, ys []float64
	for i := 0; i < n; i++ {
		f := sortedDesc[i]
		if f <= 0 {
			break // sorted: all later entries are zero too
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(f))
	}
	if len(xs) < 2 {
		return 0, 0
	}
	meanX, meanY := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0
	}
	slope := sxy / sxx
	alpha = -slope
	if syy == 0 {
		// All frequencies equal: a perfect fit with alpha 0.
		return alpha, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return alpha, r2
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SuggestCounters turns a fitted α̂ into a Theorem 8 counter budget for
// target error rate ε, clamping α̂ to 1 from below (Theorem 8 requires
// α ≥ 1; sub-Zipfian data falls back to the generic m = (A+B)/ε budget).
func SuggestCounters(alphaHat, epsilon float64, a, b float64) int {
	if alphaHat < 1 {
		alphaHat = 1
	}
	return Theorem8Counters(a, b, epsilon, alphaHat)
}
