package registry_test

// FuzzIngestWire pins the ingest wire contract of POST /update for
// both batch formats: an arbitrary body either ingests fully (200,
// mass advances by exactly the acknowledged key count) or is rejected
// whole (non-200, mass unchanged) — and the server never panics. This
// is the nightly CI fuzz target for the server wire formats; the
// push/PR jobs replay its seed corpus.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	hh "repro"
	"repro/internal/registry"
)

func FuzzIngestWire(f *testing.F) {
	f.Add([]byte("alpha\nbeta\nalpha\n"), false)
	f.Add([]byte("no-trailing-newline"), false)
	f.Add([]byte("crlf\r\nline\r\n"), false)
	f.Add([]byte("\n\n\n"), false)
	f.Add(registry.AppendBinaryRecord(registry.AppendBinaryRecord(nil, "a"), "longer-key"), true)
	f.Add(registry.AppendBinaryRecord(nil, ""), true)
	f.Add([]byte{0xff}, true)                                                             // truncated uvarint
	f.Add([]byte{0x10, 'a'}, true)                                                        // length past body end
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}, true) // overlong uvarint
	f.Add(append(registry.AppendBinaryRecord(nil, "good"), 0xff), true)

	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"fuzz": {Capacity: 32}},
	})
	if err != nil {
		f.Fatal(err)
	}
	srv := registry.NewServer(reg, 1<<20)
	entry, _ := reg.Get("fuzz")

	f.Fuzz(func(t *testing.T, body []byte, binaryCT bool) {
		ct := registry.ContentTypeText
		if binaryCT {
			ct = registry.ContentTypeBinary
		}
		before := entry.Live().N()
		req := httptest.NewRequest(http.MethodPost, "/v1/fuzz/update", bytes.NewReader(body))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		after := entry.Live().N()
		if rec.Code != http.StatusOK {
			if after != before {
				t.Fatalf("rejected batch (status %d) changed mass %v -> %v", rec.Code, before, after)
			}
			return
		}
		var resp struct {
			Ingested float64 `json:"ingested"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("200 response not valid JSON: %v\n%s", err, rec.Body.Bytes())
		}
		if after != before+resp.Ingested {
			t.Fatalf("acknowledged %v keys but mass moved %v -> %v", resp.Ingested, before, after)
		}
	})
}
