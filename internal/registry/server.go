package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"

	hh "repro"
)

// Server is the HTTP surface over a Registry — the handler hhserverd
// mounts. Endpoints (all summary routes 404 on unknown names):
//
//	PUT  /v1/{name}                    create a summary from a Spec JSON body
//	POST /v1/{name}/update             ingest a batch (text or binary body)
//	POST /v1/{name}/merge              absorb an encoded blob (HHSUM2/HHWIN2)
//	GET  /v1/{name}/top?k=             top-k with certain bounds
//	GET  /v1/{name}/heavyhitters?phi=  phi-heavy hitters with bounds + guarantees
//	GET  /v1/{name}/estimate?key=      one item's estimate and bounds
//	GET  /v1/{name}/encode             stream the v2 codec snapshot of the view
//	GET  /healthz                      liveness + summary count
//	GET  /metricsz                     per-summary serving metrics
//
// Errors are JSON bodies {"error": "..."} with conventional status
// codes: 400 malformed input, 404 unknown summary, 409 duplicate
// create, 413 oversized body, 422 unsupported operation for the
// summary's algorithm.
type Server struct {
	reg     *Registry
	maxBody int64
	mux     *http.ServeMux
	// pool recycles per-request ingest scratch (body bytes + parsed key
	// slice), so the steady-state /update path allocates only the key
	// strings themselves — the PR 2 zero-alloc batch contract holds from
	// the parsed batch down.
	pool sync.Pool
}

// ingestScratch is one pooled /update workspace.
type ingestScratch struct {
	body []byte
	keys []string
}

// NewServer builds the HTTP surface over reg. maxBody bounds /update
// and /merge request bodies; <= 0 means DefaultMaxBodyBytes.
func NewServer(reg *Registry, maxBody int64) *Server {
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{reg: reg, maxBody: maxBody, mux: http.NewServeMux()}
	s.pool.New = func() any { return &ingestScratch{} }
	s.mux.HandleFunc("PUT /v1/{name}", s.handleCreate)
	s.mux.HandleFunc("POST /v1/{name}/update", s.handleUpdate)
	s.mux.HandleFunc("POST /v1/{name}/merge", s.handleMerge)
	s.mux.HandleFunc("GET /v1/{name}/top", s.handleTop)
	s.mux.HandleFunc("GET /v1/{name}/heavyhitters", s.handleHeavyHitters)
	s.mux.HandleFunc("GET /v1/{name}/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/{name}/encode", s.handleEncode)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s
}

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// entry resolves the {name} path segment, writing the 404 itself.
func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown summary %q", name)
	}
	return e, ok
}

// readBody drains a size-capped request body into dst (reused across
// requests via the scratch pool), distinguishing the over-limit error.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, dst []byte) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := body.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec hh.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "spec: %v", err)
		return
	}
	e, err := s.reg.Create(r.PathValue("name"), spec)
	if err != nil {
		code := http.StatusBadRequest
		if _, exists := s.reg.Get(r.PathValue("name")); exists {
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"created": e.Name(), "spec": e.Spec()})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	sc := s.pool.Get().(*ingestScratch)
	defer func() {
		// Drop key references before pooling so parked scratch cannot pin
		// a request's strings in memory.
		clear(sc.keys)
		sc.keys = sc.keys[:0]
		sc.body = sc.body[:0]
		s.pool.Put(sc)
	}()
	var err error
	if sc.body, err = s.readBody(w, r, sc.body[:0]); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.maxBody)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	// Zero-copy parse: the keys alias sc.body, which stays untouched
	// until IngestBatch returns; registry summaries are built with
	// borrowed-key ingest and clone anything they retain.
	switch ct {
	case ContentTypeBinary:
		sc.keys, err = AppendBinaryKeysBorrowed(sc.keys[:0], sc.body)
	default:
		sc.keys, err = AppendTextKeysBorrowed(sc.keys[:0], sc.body)
	}
	if err != nil {
		// Nothing was ingested: the batch parses fully before any update.
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := e.IngestBatch(sc.keys); err != nil {
		// WAL append failed: the batch was not applied and must not be
		// acknowledged — durability errors are server-side state.
		writeErr(w, http.StatusInternalServerError, "durability: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": len(sc.keys)})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	if !e.mergeable {
		writeErr(w, http.StatusUnprocessableEntity,
			"summary %q is sketch-backed (%v) and cannot absorb merges", e.Name(), e.algo)
		return
	}
	mass, err := e.AbsorbBlob(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"merged_mass": mass,
		"blobs":       e.blobs.Load(),
	})
}

// Result is one bound-carrying query answer, the JSON twin of
// heavyhitters.Result.
type Result struct {
	Item       string  `json:"item"`
	Count      float64 `json:"count"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Guaranteed bool    `json:"guaranteed,omitempty"`
}

// QueryResponse is the body of /top and /heavyhitters: the answered-
// against mass (the view's N — live ingest plus pushed blobs) and the
// ranked results.
type QueryResponse struct {
	N       float64  `json:"n"`
	Results []Result `json:"results"`
}

func (s *Server) view(w http.ResponseWriter, e *Entry) (View, bool) {
	v, err := e.View()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "building view: %v", err)
		return View{}, false
	}
	return v, true
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		if k, err = strconv.Atoi(kq); err != nil || k < 1 {
			writeErr(w, http.StatusBadRequest, "k must be a positive integer, got %q", kq)
			return
		}
	}
	view, ok := s.view(w, e)
	if !ok {
		return
	}
	top := view.Top(k)
	resp := QueryResponse{N: view.N(), Results: make([]Result, 0, len(top))}
	for _, entry := range top {
		lo, hi := view.EstimateBounds(entry.Item)
		resp.Results = append(resp.Results, Result{Item: entry.Item, Count: entry.Count, Lo: lo, Hi: hi})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeavyHitters(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil || !(phi > 0 && phi <= 1) {
		writeErr(w, http.StatusBadRequest, "phi must be in (0, 1], got %q", r.URL.Query().Get("phi"))
		return
	}
	view, ok := s.view(w, e)
	if !ok {
		return
	}
	hits := view.HeavyHitters(phi)
	resp := QueryResponse{N: view.N(), Results: make([]Result, 0, len(hits))}
	for _, h := range hits {
		resp.Results = append(resp.Results, Result{
			Item: h.Item, Count: h.Count, Lo: h.Lo, Hi: h.Hi, Guaranteed: h.Guaranteed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// EstimateResponse is the body of /estimate: the point estimate and
// the certain interval lo <= f <= hi on the item's true weight in the
// served union. Guaranteed reports a zero-width interval — the
// estimate is exact.
type EstimateResponse struct {
	Key        string  `json:"key"`
	Estimate   float64 `json:"estimate"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Guaranteed bool    `json:"guaranteed"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if !q.Has("key") {
		writeErr(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	key := q.Get("key")
	view, ok := s.view(w, e)
	if !ok {
		return
	}
	lo, hi := view.EstimateBounds(key)
	writeJSON(w, http.StatusOK, EstimateResponse{
		Key:        key,
		Estimate:   view.Estimate(key),
		Lo:         lo,
		Hi:         hi,
		Guaranteed: lo == hi,
	})
}

func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	if !e.mergeable {
		writeErr(w, http.StatusUnprocessableEntity,
			"summary %q is sketch-backed (%v) and has no portable snapshot", e.Name(), e.algo)
		return
	}
	view, ok := s.view(w, e)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// The codec streams straight onto the response writer; with the
	// sketch case rejected above, a mid-stream error is a connection
	// failure the client already sees as a truncated body.
	_ = view.Encode(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"summaries":      s.reg.Len(),
		"uptime_seconds": s.reg.Uptime().Seconds(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	stats := make(map[string]Stats)
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Get(name); ok {
			stats[name] = e.ReadStats()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": s.reg.Uptime().Seconds(),
		"summaries":      stats,
	})
}
