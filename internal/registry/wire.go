package registry

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Ingest batch wire formats of POST /v1/{name}/update. Two encodings
// carry the same payload — a flat batch of string keys, each occurring
// once (the unit-weight UpdateBatch contract):
//
//   - Text (Content-Type text/plain, the default): newline-delimited
//     UTF-8 keys. A trailing newline is optional; CRLF line endings are
//     tolerated; empty lines are skipped (an empty key therefore needs
//     the binary format). The format a shell one-liner can produce.
//   - Binary (Content-Type application/x-hh-batch): repeated records of
//     uvarint key length followed by that many key bytes, until the end
//     of the body. Zero-length keys are valid. The format an agent uses
//     when keys may contain newlines, and the one that parses fastest.
//
// Parsing is strict and total: any malformed body — a truncated or
// overlong uvarint, a length past the end of the body, a key beyond
// MaxKeyLen — yields an error and the server ingests nothing from the
// request (parse first, UpdateBatch only on success), so a corrupt
// frame can never partially poison a summary. FuzzIngestWire pins the
// no-panic/no-corruption contract.

const (
	// ContentTypeText is the newline-delimited ingest format.
	ContentTypeText = "text/plain"
	// ContentTypeBinary is the length-prefixed ingest format.
	ContentTypeBinary = "application/x-hh-batch"
)

// MaxKeyLen bounds a single key's byte length in either format,
// matching the library codec's key sanity bound.
const MaxKeyLen = 1 << 20

// AppendTextKeys parses a newline-delimited batch body, appending the
// keys to dst. On error the appended prefix is meaningless and dst
// must be discarded by the caller.
//
//hh:nopanic
func AppendTextKeys(dst []string, body []byte) ([]string, error) {
	for start := 0; start < len(body); {
		end := start
		for end < len(body) && body[end] != '\n' {
			end++
		}
		line := body[start:end]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > MaxKeyLen {
			return dst, fmt.Errorf("registry: key of %d bytes exceeds the %d-byte limit", len(line), MaxKeyLen)
		}
		if len(line) > 0 {
			dst = append(dst, string(line))
		}
		start = end + 1
	}
	return dst, nil
}

// AppendBinaryKeys parses a length-prefixed batch body, appending the
// keys to dst. On error the appended prefix is meaningless and dst
// must be discarded by the caller.
//
//hh:nopanic
func AppendBinaryKeys(dst []string, body []byte) ([]string, error) {
	for off := 0; off < len(body); {
		n, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return dst, fmt.Errorf("registry: record at byte %d: truncated or overlong key length", off)
		}
		off += w
		if n > MaxKeyLen {
			return dst, fmt.Errorf("registry: record at byte %d: key of %d bytes exceeds the %d-byte limit", off-w, n, MaxKeyLen)
		}
		if uint64(len(body)-off) < n {
			return dst, fmt.Errorf("registry: record at byte %d: key length %d runs past the body", off-w, n)
		}
		dst = append(dst, string(body[off:off+int(n)]))
		off += int(n)
	}
	return dst, nil
}

// AppendBinaryKeysBorrowed parses a length-prefixed batch body like
// AppendBinaryKeys, but the appended keys are zero-copy views aliasing
// body's memory instead of fresh strings. The caller must (a) keep body
// unmodified until the keys have been consumed and (b) feed the keys
// only to summaries built with borrowed-key ingest (hh.WithBorrowedKeys
// — every registry-created summary), which clone any key they retain.
// This is the serving hot path: parsing costs no allocations at all,
// and only the insertion tail of the stream is ever copied.
//
//hh:nopanic
func AppendBinaryKeysBorrowed(dst []string, body []byte) ([]string, error) {
	for off := 0; off < len(body); {
		n, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return dst, fmt.Errorf("registry: record at byte %d: truncated or overlong key length", off)
		}
		off += w
		if n > MaxKeyLen {
			return dst, fmt.Errorf("registry: record at byte %d: key of %d bytes exceeds the %d-byte limit", off-w, n, MaxKeyLen)
		}
		if uint64(len(body)-off) < n {
			return dst, fmt.Errorf("registry: record at byte %d: key length %d runs past the body", off-w, n)
		}
		dst = append(dst, unsafeString(body[off:off+int(n)]))
		off += int(n)
	}
	return dst, nil
}

// AppendTextKeysBorrowed parses a newline-delimited batch body like
// AppendTextKeys, with the same zero-copy contract as
// AppendBinaryKeysBorrowed: the appended keys alias body.
//
//hh:nopanic
func AppendTextKeysBorrowed(dst []string, body []byte) ([]string, error) {
	for start := 0; start < len(body); {
		end := start
		for end < len(body) && body[end] != '\n' {
			end++
		}
		line := body[start:end]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > MaxKeyLen {
			return dst, fmt.Errorf("registry: key of %d bytes exceeds the %d-byte limit", len(line), MaxKeyLen)
		}
		if len(line) > 0 {
			dst = append(dst, unsafeString(line))
		}
		start = end + 1
	}
	return dst, nil
}

// unsafeString returns a string view over b without copying. The view
// is only valid while b's memory is neither reused nor mutated.
//
//hh:nopanic
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// AppendBinaryRecord appends one length-prefixed record for key to buf —
// the encoder matching AppendBinaryKeys, shared by the client package
// and tests so both ends of the wire agree by construction.
func AppendBinaryRecord(buf []byte, key string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	return append(buf, key...)
}
