package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	hh "repro"
	"repro/internal/persist"
)

// This file is the registry side of durability: recovery on boot
// (committed snapshot, then WAL tail, with per-summary sequence
// dedup), the WAL hooks the ingest paths call through Entry, and the
// periodic/final snapshot writer. The on-disk formats live in
// internal/persist and are normative in docs/DURABILITY.md.

// RecoveryReport is what New's recovery pass found — hhserverd prints
// it at boot so an operator can see exactly what state survived.
type RecoveryReport struct {
	// Enabled is false without a durability stanza (the zero report).
	Enabled bool
	// DataDir is the resolved data directory.
	DataDir string
	// Snapshot is the committed snapshot directory name ("" when the
	// store had none).
	Snapshot string
	// WAL summarizes the tail replay: segments and records scanned,
	// and whether the final segment ended in a torn record (the normal
	// artifact of kill -9 — reported, tolerated, truncated).
	WAL persist.ReplayReport
	// Summaries describes each recovered summary.
	Summaries []RecoveredSummary
	// ReplayedBatches/ReplayedItems/ReplayedBlobs count applied tail
	// records; Deduped counts records skipped because the snapshot (or
	// an earlier replay) already covered their sequence numbers;
	// SkippedCreates counts create records for names that already
	// existed; Unroutable counts records for names with no durable
	// summary (a stanza removed or flipped ephemeral between lives).
	ReplayedBatches int
	ReplayedItems   int
	ReplayedBlobs   int
	Deduped         int
	SkippedCreates  int
	Unroutable      int
}

// RecoveredSummary is one summary's recovery outcome.
type RecoveredSummary struct {
	Name string
	// Seq is the summary's WAL sequence after recovery (snapshot pin
	// plus replayed tail); Mass its recovered stream mass.
	Seq  uint64
	Mass float64
	// FromSnapshot reports whether a snapshot blob seeded the state
	// (false = rebuilt from the WAL alone).
	FromSnapshot bool
}

// SnapshotReport describes one committed snapshot.
type SnapshotReport struct {
	// Summaries is the number of summaries captured; Skipped reports an
	// unchanged registry short-circuiting the write.
	Summaries int
	Skipped   bool
	When      time.Time
}

// Recovery returns the boot recovery report (zero when durability is
// off).
func (r *Registry) Recovery() RecoveryReport { return r.recovery }

// Durable reports whether the registry persists state.
func (r *Registry) Durable() bool { return r.store != nil }

// openDurability opens the persist store and runs recovery: load the
// committed snapshot, recreate its summaries with their pinned
// sequence numbers and decoded blobs as merge bases, then replay the
// WAL tail with sequence dedup. Called from New before the config
// stanzas are reconciled.
func (r *Registry) openDurability(spec hh.DurabilitySpec, maxBody int64) error {
	res, err := spec.Resolve()
	if err != nil {
		return err
	}
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	mode := persist.FsyncInterval
	switch res.Fsync {
	case hh.FsyncAlways:
		mode = persist.FsyncAlways
	case hh.FsyncRotate:
		mode = persist.FsyncRotate
	}
	store, err := persist.Open(persist.Options{
		Dir:            res.Dir,
		SegmentBytes:   res.SegmentBytes,
		MaxRecordBytes: int(maxBody) + persist.MaxNameLen + 128,
		Fsync:          mode,
		FsyncInterval:  res.FsyncInterval,
	})
	if err != nil {
		return err
	}
	r.store = store
	r.snapEvery = res.SnapshotInterval
	r.recovery = RecoveryReport{Enabled: true, DataDir: res.Dir}

	man, snapDir, blobs, err := store.LoadSnapshot()
	if err != nil {
		return err
	}
	if man != nil {
		r.recovery.Snapshot = snapDir
		for _, ms := range man.Summaries {
			var sp hh.Spec
			if err := json.Unmarshal(ms.Spec, &sp); err != nil {
				return fmt.Errorf("manifest spec for %q: %w", ms.Name, err)
			}
			e, err := r.Create(ms.Name, sp)
			if err != nil {
				return fmt.Errorf("recreating %q: %w", ms.Name, err)
			}
			blob := blobs[ms.Name]
			// Cross-check the blob against the manifest before the full
			// decode: the sniffable header names the algorithm and key
			// kind, so a swapped file fails here with a precise message
			// rather than a decoder error.
			info, ok := hh.SniffBlob(blob)
			if !ok {
				return fmt.Errorf("snapshot blob for %q: unrecognized blob header", ms.Name)
			}
			if !info.StringKeys {
				return fmt.Errorf("snapshot blob for %q: uint64-keyed blob in a string-keyed registry", ms.Name)
			}
			if ms.Algorithm != "" && info.Algo.String() != ms.Algorithm {
				return fmt.Errorf("snapshot blob for %q: %v blob, manifest says %s", ms.Name, info.Algo, ms.Algorithm)
			}
			dec, err := hh.Decode[string](bytes.NewReader(blob))
			if err != nil {
				return fmt.Errorf("decoding snapshot blob for %q: %w", ms.Name, err)
			}
			if _, err := e.absorbDecoded(dec, false); err != nil {
				return fmt.Errorf("restoring %q: %w", ms.Name, err)
			}
			e.walSeq.Store(ms.Seq)
		}
	}
	rep, err := store.ReplayWAL(r.applyRecord)
	r.recovery.WAL = rep
	if err != nil {
		return err
	}
	for _, name := range r.Names() {
		e, _ := r.Get(name)
		if !e.durable {
			continue
		}
		_, fromSnap := blobs[name]
		r.recovery.Summaries = append(r.recovery.Summaries, RecoveredSummary{
			Name:         name,
			Seq:          e.walSeq.Load(),
			Mass:         e.recoveredMass(),
			FromSnapshot: fromSnap,
		})
	}
	return nil
}

// recoveredMass is the entry's total mass (live + merge bases) —
// recovery-time bookkeeping, not a hot path.
func (e *Entry) recoveredMass() float64 {
	e.mergeMu.Lock()
	remote := e.remoteMass
	e.mergeMu.Unlock()
	return e.live.N() + remote
}

// applyRecord consumes one replayed WAL record. Replay is at least
// once: a record may be covered by the snapshot, or delivered again if
// a tail is replayed twice, so every apply is gated on the record's
// sequence exceeding the summary's — which makes double replay a
// structural no-op (the replay-idempotence property the e2e crash test
// pins end to end).
func (r *Registry) applyRecord(rec persist.Record) error {
	name := string(rec.Name)
	switch rec.Kind {
	case persist.KindCreate:
		if _, ok := r.Get(name); ok {
			r.recovery.SkippedCreates++
			return nil
		}
		var sp hh.Spec
		if err := json.Unmarshal(rec.Body, &sp); err != nil {
			return fmt.Errorf("create record for %q: %w", name, err)
		}
		if _, err := r.Create(name, sp); err != nil {
			return fmt.Errorf("replaying creation of %q: %w", name, err)
		}
		return nil
	case persist.KindBatch:
		e, ok := r.Get(name)
		if !ok || !e.durable {
			r.recovery.Unroutable++
			return nil
		}
		if rec.Seq <= e.walSeq.Load() {
			r.recovery.Deduped++
			return nil
		}
		// Borrowed-key parse straight off the record buffer: the live
		// summary clones what it retains, exactly like the wire paths.
		keys, err := AppendBinaryKeysBorrowed(nil, rec.Body)
		if err != nil {
			return fmt.Errorf("batch record for %q (seq %d): %w", name, rec.Seq, err)
		}
		e.live.UpdateBatch(keys)
		e.walSeq.Store(rec.Seq)
		r.recovery.ReplayedBatches++
		r.recovery.ReplayedItems += len(keys)
		return nil
	case persist.KindBlob:
		e, ok := r.Get(name)
		if !ok || !e.durable {
			r.recovery.Unroutable++
			return nil
		}
		if rec.Seq <= e.walSeq.Load() {
			r.recovery.Deduped++
			return nil
		}
		dec, err := hh.Decode[string](bytes.NewReader(rec.Body))
		if err != nil {
			return fmt.Errorf("blob record for %q (seq %d): %w", name, rec.Seq, err)
		}
		if _, err := e.absorbDecoded(dec, false); err != nil {
			return fmt.Errorf("blob record for %q (seq %d): %w", name, rec.Seq, err)
		}
		e.walSeq.Store(rec.Seq)
		r.recovery.ReplayedBlobs++
		return nil
	}
	return fmt.Errorf("unknown record kind %d", rec.Kind)
}

// snapshotLoop drives periodic snapshots until Close or Halt.
func (r *Registry) snapshotLoop() {
	defer close(r.snapDone)
	t := time.NewTicker(r.snapEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := r.Snapshot(); err != nil {
				fmt.Fprintf(os.Stderr, "registry: snapshot: %v\n", err)
			}
		case <-r.snapStop:
			return
		}
	}
}

// changeSig is a cheap signature of persisted state: the sum of every
// durable summary's WAL sequence and merge generation. Equal signature
// ⇒ no durable record was appended since the last snapshot, so the
// periodic loop skips the disk write (an idle daemon does not churn
// snapshot epochs).
func (r *Registry) changeSig() uint64 {
	var sig uint64
	for _, name := range r.Names() {
		if e, ok := r.Get(name); ok && e.durable {
			sig += e.walSeq.Load() + e.mergeGen.Load() + 1
		}
	}
	return sig
}

// Snapshot writes one atomic snapshot of every durable summary and
// prunes the WAL behind it. Capture order per summary: take the
// quiesce lock (no {WAL append, apply} pair is in flight), drain the
// pipeline rings, read the sequence pin, encode the union view — so
// the blob is exactly the state of sequences 1..pin, the invariant
// replay dedup rests on. Serialized with itself; a no-op (Skipped)
// when nothing durable changed since the last commit.
func (r *Registry) Snapshot() (SnapshotReport, error) {
	if r.store == nil {
		return SnapshotReport{}, fmt.Errorf("registry: durability is not enabled")
	}
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	sig := r.changeSig()
	if sig == r.lastSig {
		return SnapshotReport{Skipped: true, When: time.Now()}, nil
	}
	boundary, err := r.store.BeginSnapshot()
	if err != nil {
		return SnapshotReport{}, err
	}
	var snaps []persist.SummarySnapshot
	for _, name := range r.Names() {
		e, ok := r.Get(name)
		if !ok || !e.durable {
			continue
		}
		sn, err := e.capture()
		if err != nil {
			return SnapshotReport{}, fmt.Errorf("capturing %q: %w", name, err)
		}
		snaps = append(snaps, sn)
	}
	if err := r.store.WriteSnapshot(boundary, snaps); err != nil {
		return SnapshotReport{}, err
	}
	r.lastSig = sig
	rep := SnapshotReport{Summaries: len(snaps), When: time.Now()}
	r.lastSnap = rep
	return rep, nil
}

// capture encodes one summary's state under the quiesce lock. It
// builds the persisted summary directly rather than through the cached
// View: the cache may serve a bounded-stale snapshot during a
// concurrent rebuild, and a stale blob under an exact sequence pin
// would silently drop the difference on replay.
func (e *Entry) capture() (persist.SummarySnapshot, error) {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	// Drain pipeline rings so parked batches are in the counters (their
	// WAL records are already appended; the blob must cover them too).
	e.live.Flush()
	seq := e.walSeq.Load()
	e.mergeMu.Lock()
	src := e.live
	if len(e.remotes) > 0 {
		inputs := make([]hh.Summary[string], 0, len(e.remotes)+1)
		if e.live.N() > 0 {
			inputs = append(inputs, e.live)
		}
		inputs = append(inputs, e.remotes...)
		merged, err := hh.MergeSummaries(e.capacity, inputs...)
		if err != nil {
			e.mergeMu.Unlock()
			return persist.SummarySnapshot{}, err
		}
		src = merged
	}
	e.mergeMu.Unlock()
	// src is either the live summary (concurrent tier: reads are safe
	// against nothing — ingest is quiesced anyway) or a private merge
	// result; no further locking needed.
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		return persist.SummarySnapshot{}, err
	}
	specJSON, err := json.Marshal(e.spec)
	if err != nil {
		return persist.SummarySnapshot{}, err
	}
	sn := persist.SummarySnapshot{
		Name:      e.name,
		Spec:      specJSON,
		Seq:       seq,
		N:         src.N(),
		Len:       src.Len(),
		Algorithm: e.algo.String(),
		Blob:      buf.Bytes(),
	}
	if g, ok := src.Guarantee(); ok {
		sn.Guarantee = &persist.ManifestGuarantee{A: g.A, B: g.B}
	}
	return sn, nil
}

// Close stops the snapshot loop, writes a final snapshot (the drain
// path: a graceful shutdown restarts from the snapshot alone, with an
// empty WAL tail), and closes the store. No-op without durability.
func (r *Registry) Close() error {
	if r.store == nil {
		return nil
	}
	var err error
	r.closeOnce.Do(func() {
		close(r.snapStop)
		<-r.snapDone
		if _, serr := r.Snapshot(); serr != nil {
			err = serr
		}
		if cerr := r.store.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// Halt stops the snapshot loop and closes the store WITHOUT a final
// snapshot: buffered WAL records are flushed and synced, nothing else
// is written. The next boot recovers from the last committed snapshot
// plus the WAL tail — the same path a crash exercises, minus the torn
// tail — which is what makes Halt useful for failover drills and
// in-process recovery tests. No-op without durability.
func (r *Registry) Halt() error {
	if r.store == nil {
		return nil
	}
	var err error
	r.closeOnce.Do(func() {
		close(r.snapStop)
		<-r.snapDone
		err = r.store.Close()
	})
	return err
}

// LastSnapshot returns the most recent snapshot report (zero until the
// first periodic snapshot commits).
func (r *Registry) LastSnapshot() SnapshotReport {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	return r.lastSnap
}
