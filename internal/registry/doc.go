// Package registry implements the multi-tenant heavy-hitter serving
// tier behind cmd/hhserverd: a named registry of Summary[string]
// instances built from declarative JSON Specs, plus the HTTP surface
// that ingests batches, absorbs encoded summary blobs pushed by remote
// agents (wire-level Theorem 11 merging), and answers bound-carrying
// queries — all against a live, concurrently written summary.
//
// The split from cmd/hhserverd keeps every behavior testable in
// process: the daemon binary is a thin flag-parsing shell around
// New + NewServer + net/http, and the hhwire binary ingest listener
// (internal/wire) routes frames into the same Entry ingest path the
// HTTP handlers use.
//
// Queries answer over the union view — MergeSummaries of the live
// summary and every pushed blob — cached per Entry and rebuilt
// single-flight only when ingest advanced or a blob arrived; see
// Entry.View for the exact consistency contract.
package registry
