package registry_test

// Durability tests: recovery round-trips through snapshot + WAL tail,
// replay idempotence at the daemon level, the ephemeral/sketch
// exclusions, and the config-vs-recovered-state conflict check. The
// byte-level format tests live in internal/persist; these drive the
// registry's recovery semantics over real data directories.

import (
	"bytes"
	"testing"

	hh "repro"
	"repro/internal/registry"
	"repro/internal/testutil"
)

func durableConfig(dir string, summaries map[string]hh.Spec) registry.Config {
	return registry.Config{
		// A long snapshot interval keeps the periodic loop out of the
		// tests' way: every snapshot below is explicit.
		Durability: &hh.DurabilitySpec{Dir: dir, SnapshotInterval: "1h", Fsync: hh.FsyncRotate},
		Summaries:  summaries,
	}
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, map[string]hh.Spec{"words": {Capacity: 256, Shards: 4}})
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e, _ := reg.Get("words")
	keys := zipfKeys(2000, 30_000, 11)
	exact := make(map[string]float64, 2000)
	for _, k := range keys {
		exact[k]++
	}
	const batch = 512
	half := (len(keys) / (2 * batch)) * batch
	tailBatches, tailItems := 0, 0
	for lo := 0; lo < len(keys); lo += batch {
		part := keys[lo:min(lo+batch, len(keys))]
		if err := e.IngestBatch(part); err != nil {
			t.Fatalf("IngestBatch: %v", err)
		}
		if lo >= half {
			tailBatches++
			tailItems += len(part)
		}
		if lo+batch == half {
			// Snapshot mid-stream: recovery must stitch the blob and the
			// replayed tail back into exactly the full stream's state.
			if rep, err := reg.Snapshot(); err != nil || rep.Skipped {
				t.Fatalf("Snapshot: %+v, %v", rep, err)
			}
		}
	}
	preStats := e.ReadStats()
	if !preStats.Durable || preStats.WALSeq == 0 {
		t.Fatalf("pre-crash stats = %+v, want durable with advancing wal_seq", preStats)
	}
	// Halt: flush + close with NO final snapshot — the controlled stand-in
	// for a crash (minus the torn tail, which the persist tests cover).
	if err := reg.Halt(); err != nil {
		t.Fatalf("Halt: %v", err)
	}

	check := func(reg *registry.Registry, wantFromSnapshot bool, wantReplayedBatches int) {
		t.Helper()
		rep := reg.Recovery()
		if !rep.Enabled || rep.Snapshot == "" {
			t.Fatalf("recovery = %+v, want enabled with a committed snapshot", rep)
		}
		if len(rep.Summaries) != 1 {
			t.Fatalf("recovered %d summaries, want 1", len(rep.Summaries))
		}
		s := rep.Summaries[0]
		if s.Name != "words" || s.FromSnapshot != wantFromSnapshot || s.Mass != float64(len(keys)) {
			t.Fatalf("recovered summary = %+v, want words, fromSnapshot=%v, mass %d", s, wantFromSnapshot, len(keys))
		}
		if wantReplayedBatches >= 0 && rep.ReplayedBatches != wantReplayedBatches {
			t.Fatalf("replayed %d batches, want %d (report %+v)", rep.ReplayedBatches, wantReplayedBatches, rep)
		}
		e, ok := reg.Get("words")
		if !ok {
			t.Fatal("words missing after recovery")
		}
		v, err := e.View()
		if err != nil {
			t.Fatalf("View: %v", err)
		}
		if v.N() != float64(len(keys)) {
			t.Fatalf("recovered N = %.0f, want %d", v.N(), len(keys))
		}
		if _, ok := v.Guarantee(); !ok {
			t.Fatal("recovered view carries no tail guarantee")
		}
		// Bound soundness against the exact oracle: every certain bound
		// the recovered summary serves must still bracket the true count.
		top := v.Top(20)
		if len(top) == 0 {
			t.Fatal("recovered view serves no counters")
		}
		for _, we := range top {
			lo, hi := v.EstimateBounds(we.Item)
			if ex := exact[we.Item]; lo > ex || ex > hi {
				t.Errorf("recovered bounds for %q: [%.0f, %.0f] exclude exact %.0f", we.Item, lo, hi, ex)
			}
		}
		// HH completeness: every phi-heavy item of the exact stream must
		// appear in the recovered heavy-hitter set.
		const phi = 0.02
		hhSet := make(map[string]bool)
		for _, res := range v.HeavyHitters(phi) {
			hhSet[res.Item] = true
		}
		for k, ex := range exact {
			if ex > phi*float64(len(keys)) && !hhSet[k] {
				t.Errorf("exact heavy hitter %q (count %.0f) missing from the recovered set", k, ex)
			}
		}
		st := e.ReadStats()
		if !st.Durable || st.WALSeq != rep.Summaries[0].Seq || st.RestoredInputs == 0 {
			t.Errorf("recovered stats = %+v, want durable, wal_seq %d, restored inputs", st, rep.Summaries[0].Seq)
		}
	}

	// Boot 2: snapshot + WAL tail.
	reg2, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	check(reg2, true, tailBatches)
	if got := reg2.Recovery().ReplayedItems; got != tailItems {
		t.Fatalf("replayed %d items, want %d", got, tailItems)
	}
	seq2 := reg2.Recovery().Summaries[0].Seq
	if err := reg2.Halt(); err != nil {
		t.Fatalf("Halt: %v", err)
	}

	// Boot 3 replays the SAME tail again (boot 2 wrote no snapshot):
	// daemon-level double replay must change nothing.
	reg3, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("second recovery New: %v", err)
	}
	check(reg3, true, tailBatches)
	if got := reg3.Recovery().Summaries[0].Seq; got != seq2 {
		t.Fatalf("double replay moved seq %d -> %d", seq2, got)
	}
	// Boot 2 and 3 each logged a create record for the recovered name;
	// replay must have skipped it, not grown the registry.
	if reg3.Recovery().SkippedCreates == 0 {
		t.Error("expected replayed create records to be skipped as duplicates")
	}
	// Graceful close: final snapshot, so the next boot needs no tail.
	if err := reg3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg4, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("post-drain New: %v", err)
	}
	defer reg4.Halt()
	check(reg4, true, 0)
	if rep := reg4.Recovery(); rep.ReplayedItems != 0 || rep.ReplayedBlobs != 0 {
		t.Fatalf("post-drain recovery replayed work: %+v", rep)
	}
}

func TestDurableBlobRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, map[string]hh.Spec{"words": {Capacity: 128}})
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("words")
	if err := e.IngestBatch([]string{"x", "y", "x"}); err != nil {
		t.Fatal(err)
	}
	// A remote agent's pushed blob must be WAL-logged verbatim and
	// survive the restart with its Theorem 11 metadata.
	remote := hh.New[string](hh.WithCapacity(128))
	remote.UpdateBatch([]string{"a", "b", "a", "a"})
	var blob bytes.Buffer
	if err := remote.Encode(&blob); err != nil {
		t.Fatal(err)
	}
	mass, err := e.AbsorbBlob(&blob)
	if err != nil || mass != 4 {
		t.Fatalf("AbsorbBlob = %v, %v; want mass 4", mass, err)
	}
	if err := reg.Halt(); err != nil {
		t.Fatal(err)
	}

	reg2, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	defer reg2.Halt()
	rep := reg2.Recovery()
	if rep.ReplayedBlobs != 1 || rep.ReplayedBatches != 1 {
		t.Fatalf("recovery = %+v, want 1 replayed blob + 1 batch", rep)
	}
	e2, _ := reg2.Get("words")
	v, err := e2.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 7 {
		t.Fatalf("recovered N = %.0f, want 7", v.N())
	}
	if est := v.Estimate("a"); est < 3 {
		t.Fatalf("recovered estimate for pushed key 'a' = %.0f, want >= 3", est)
	}
}

// TestDurableExclusions: ephemeral stanzas and sketch-backed summaries
// are served but never persisted — they restart empty, by contract.
func TestDurableExclusions(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, map[string]hh.Spec{
		"kept":   {Capacity: 64},
		"eph":    {Capacity: 64, Ephemeral: true},
		"sketch": {Algorithm: "countmin", Capacity: 64},
	})
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kept", "eph", "sketch"} {
		e, _ := reg.Get(name)
		if err := e.IngestBatch([]string{"k1", "k2", "k1"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if s, _ := reg.Get("eph"); s.ReadStats().Durable {
		t.Error("ephemeral summary reports durable")
	}
	if s, _ := reg.Get("sketch"); s.ReadStats().Durable {
		t.Error("sketch summary reports durable")
	}
	if err := reg.Halt(); err != nil {
		t.Fatal(err)
	}

	reg2, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Halt()
	if rep := reg2.Recovery(); len(rep.Summaries) != 1 || rep.Summaries[0].Name != "kept" {
		t.Fatalf("recovery = %+v, want exactly 'kept' recovered", rep)
	}
	for name, want := range map[string]float64{"kept": 3, "eph": 0, "sketch": 0} {
		e, ok := reg2.Get(name)
		if !ok {
			t.Fatalf("%s missing after restart", name)
		}
		v, err := e.View()
		if err != nil {
			t.Fatal(err)
		}
		if v.N() != want {
			t.Errorf("%s: restarted N = %.0f, want %.0f", name, v.N(), want)
		}
	}
}

// TestDurableRuntimeCreateRecovered: a summary created at runtime (the
// PUT path) is re-creatable from its WAL create record alone — no
// config stanza, no snapshot needed.
func TestDurableRuntimeCreateRecovered(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.New(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Create("runtime", hh.Spec{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch([]string{"a", "b", "a"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Halt(); err != nil {
		t.Fatal(err)
	}

	reg2, err := registry.New(durableConfig(dir, nil))
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	defer reg2.Halt()
	e2, ok := reg2.Get("runtime")
	if !ok {
		t.Fatal("runtime-created summary missing after restart")
	}
	v, err := e2.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 3 {
		t.Fatalf("recovered N = %.0f, want 3", v.N())
	}
	if reg2.Recovery().Summaries[0].FromSnapshot {
		t.Error("summary reported as snapshot-seeded; it was rebuilt from the WAL alone")
	}
}

// TestDurableSpecConflict: a config stanza that disagrees with the
// recovered state must fail the boot loudly, never silently re-bound.
func TestDurableSpecConflict(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.New(durableConfig(dir, map[string]hh.Spec{"words": {Capacity: 128}}))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("words")
	if err := e.IngestBatch([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Halt(); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.New(durableConfig(dir, map[string]hh.Spec{"words": {Capacity: 256}})); err == nil {
		t.Fatal("capacity change over recovered state accepted")
	}
	// The unchanged stanza still boots.
	reg2, err := registry.New(durableConfig(dir, map[string]hh.Spec{"words": {Capacity: 128}}))
	if err != nil {
		t.Fatalf("unchanged stanza rejected: %v", err)
	}
	reg2.Halt()
}

// TestDurableIngestZeroAllocs pins the full durable ingest path —
// quiesce RLock, WAL append, concurrent-tier batch apply — at zero
// allocations per op at steady state, the acceptance bar for running
// durability on the hot path at all.
func TestDurableIngestZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; allocation accounting is meaningless under -race")
	}
	reg, err := registry.New(durableConfig(t.TempDir(), map[string]hh.Spec{
		"words": {Capacity: 1024},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Halt()
	e, _ := reg.Get("words")
	keys := zipfKeys(400, 4096, 5)
	// Warm: track the working set and grow the WAL scratch.
	if err := e.IngestBatch(keys); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := e.IngestBatch(keys); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("durable IngestBatch: %.4f allocs per run at steady state, want 0", avg)
	}
}
