package registry

// White-box replay-idempotence property: applying any WAL record twice
// (or any already-covered record) through applyRecord leaves the
// registry structurally unchanged. The black-box tests cover the same
// property at the daemon level; this one pins the mechanism — the
// per-summary sequence gate — directly.

import (
	"bytes"
	"encoding/binary"
	"testing"

	hh "repro"
	"repro/internal/persist"
)

func batchBody(keys ...string) []byte {
	var b []byte
	for _, k := range keys {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
	}
	return b
}

func newDurableRegistry(t *testing.T, summaries map[string]hh.Spec) *Registry {
	t.Helper()
	r, err := New(Config{
		Durability: &hh.DurabilitySpec{Dir: t.TempDir(), SnapshotInterval: "1h", Fsync: hh.FsyncRotate},
		Summaries:  summaries,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Halt() })
	return r
}

func TestApplyRecordIdempotent(t *testing.T) {
	r := newDurableRegistry(t, map[string]hh.Spec{"s": {Capacity: 64}})
	e, _ := r.Get("s")

	rec := persist.Record{Kind: persist.KindBatch, Seq: 1, Name: []byte("s"), Body: batchBody("a", "b", "a")}
	for i := 0; i < 3; i++ {
		if err := r.applyRecord(rec); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if n := e.live.N(); n != 3 {
		t.Fatalf("after triple apply of seq 1: N = %.0f, want 3", n)
	}
	if r.recovery.Deduped != 2 || r.recovery.ReplayedBatches != 1 {
		t.Fatalf("recovery counters = %+v, want 1 applied, 2 deduped", r.recovery)
	}
	if e.walSeq.Load() != 1 {
		t.Fatalf("walSeq = %d, want 1", e.walSeq.Load())
	}

	// A record at or below the pin (a snapshot already covering it) is
	// skipped even when it was never replayed in this process.
	e.walSeq.Store(10)
	if err := r.applyRecord(persist.Record{Kind: persist.KindBatch, Seq: 5, Name: []byte("s"), Body: batchBody("z")}); err != nil {
		t.Fatal(err)
	}
	if n := e.live.N(); n != 3 {
		t.Fatalf("covered record applied: N = %.0f, want 3", n)
	}
	// A record past the pin applies and advances it.
	if err := r.applyRecord(persist.Record{Kind: persist.KindBatch, Seq: 11, Name: []byte("s"), Body: batchBody("z")}); err != nil {
		t.Fatal(err)
	}
	if n, seq := e.live.N(), e.walSeq.Load(); n != 4 || seq != 11 {
		t.Fatalf("after seq-11 apply: N = %.0f, seq = %d; want 4, 11", n, seq)
	}
}

func TestApplyRecordBlobIdempotent(t *testing.T) {
	r := newDurableRegistry(t, map[string]hh.Spec{"s": {Capacity: 64}})
	e, _ := r.Get("s")
	remote := hh.New[string](hh.WithCapacity(64))
	remote.UpdateBatch([]string{"x", "x", "y"})
	var buf bytes.Buffer
	if err := remote.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rec := persist.Record{Kind: persist.KindBlob, Seq: 1, Name: []byte("s"), Body: buf.Bytes()}
	for i := 0; i < 2; i++ {
		if err := r.applyRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if mass := e.recoveredMass(); mass != 3 {
		t.Fatalf("after double blob apply: mass = %.0f, want 3", mass)
	}
	if r.recovery.ReplayedBlobs != 1 || r.recovery.Deduped != 1 {
		t.Fatalf("recovery counters = %+v, want 1 blob, 1 deduped", r.recovery)
	}
}

func TestApplyRecordRouting(t *testing.T) {
	r := newDurableRegistry(t, map[string]hh.Spec{
		"s":   {Capacity: 64},
		"eph": {Capacity: 64, Ephemeral: true},
	})
	// A record for a name with no durable summary (removed stanza, or one
	// flipped ephemeral between lives) is counted and dropped, not fatal:
	// recovery must finish with whatever state is still routable.
	for _, name := range []string{"gone", "eph"} {
		if err := r.applyRecord(persist.Record{Kind: persist.KindBatch, Seq: 1, Name: []byte(name), Body: batchBody("a")}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if r.recovery.Unroutable != 2 {
		t.Fatalf("Unroutable = %d, want 2", r.recovery.Unroutable)
	}
	// A create record for a new name builds the summary; a duplicate is
	// skipped.
	spec := []byte(`{"capacity":32}`)
	for i := 0; i < 2; i++ {
		if err := r.applyRecord(persist.Record{Kind: persist.KindCreate, Name: []byte("put-at-runtime"), Body: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := r.Get("put-at-runtime"); !ok {
		t.Fatal("create record did not build the summary")
	}
	if r.recovery.SkippedCreates != 1 {
		t.Fatalf("SkippedCreates = %d, want 1", r.recovery.SkippedCreates)
	}
	// Corrupt bodies are errors (CRC passed, so this is real damage).
	if err := r.applyRecord(persist.Record{Kind: persist.KindCreate, Name: []byte("bad"), Body: []byte("{")}); err == nil {
		t.Fatal("malformed create body accepted")
	}
	if err := r.applyRecord(persist.Record{Kind: persist.KindBatch, Seq: 1, Name: []byte("s"), Body: []byte{0xFF}}); err == nil {
		t.Fatal("malformed batch body accepted")
	}
}
