package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hh "repro"
	"repro/internal/persist"
)

// Config is the daemon configuration hhserverd loads from its JSON
// config file: the listen address, global limits, and the summaries to
// create at boot. Further summaries can be created at runtime with
// PUT /v1/{name}.
type Config struct {
	// Listen is the address to serve on (overridden by the -addr flag);
	// empty means the daemon default.
	Listen string `json:"listen,omitempty"`
	// WireAddr, when set, additionally serves the hhwire binary ingest
	// protocol (docs/WIRE.md) on this TCP address. HTTP stays the
	// control plane; hhwire handles only batch ingest.
	WireAddr string `json:"wire_addr,omitempty"`
	// UDPAddr, when set, additionally accepts hhwire frames as UDP
	// datagrams on this address — the lossy telemetry path (malformed
	// or unroutable datagrams are dropped, never answered).
	UDPAddr string `json:"udp_addr,omitempty"`
	// MaxBodyBytes bounds the body of a single /update or /merge
	// request; 0 means the 32 MiB default.
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
	// MaxBlobs bounds how many pushed blobs a summary keeps un-merged
	// (see Entry's staleness/compaction notes); 0 means the default 64.
	MaxBlobs int `json:"max_blobs,omitempty"`
	// Durability, when set, arms crash recovery: ingest is written to a
	// batch WAL before it is applied, periodic atomic snapshots bound
	// replay time, and New recovers the registry from the data
	// directory before serving (docs/DURABILITY.md). Summaries with
	// Spec.Ephemeral, and sketch-backed summaries (whose state has no
	// wire encoding), stay memory-only and restart empty.
	Durability *hh.DurabilitySpec `json:"durability,omitempty"`
	// Summaries maps each summary name to its construction Spec.
	Summaries map[string]hh.Spec `json:"summaries,omitempty"`
}

// DefaultMaxBodyBytes bounds request bodies when the config does not.
const DefaultMaxBodyBytes = 32 << 20

// DefaultMaxBlobs is the un-compacted pushed-blob bound per summary.
const DefaultMaxBlobs = 64

// LoadConfig reads and parses a JSON config file, rejecting unknown
// fields so a typo in a stanza fails loudly at boot instead of being
// silently ignored.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	var cfg Config
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("registry: config %s: %w", path, err)
	}
	return cfg, nil
}

// nameRE restricts summary names to one clean URL path segment.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Registry owns the named summaries a server instance serves.
type Registry struct {
	maxBlobs int
	start    time.Time

	mu      sync.RWMutex
	entries map[string]*Entry //hh:guardedby mu

	// Durability state (nil/zero without a Config.Durability stanza):
	// the persist store, the recovery outcome, and the periodic
	// snapshot loop. See durable.go.
	store     *persist.Store
	snapEvery time.Duration
	recovery  RecoveryReport
	snapMu    sync.Mutex
	lastSig   uint64 //hh:guardedby snapMu
	lastSnap  SnapshotReport
	snapStop  chan struct{}
	snapDone  chan struct{}
	closeOnce sync.Once
}

// New builds a registry and creates an entry per config stanza. With a
// durability stanza it first recovers from the data directory —
// committed snapshot, then WAL tail — and only then reconciles the
// config: a stanza whose name was recovered must carry the same
// (hardened) spec, a new stanza is created fresh, and a recovered
// summary absent from the config (a runtime PUT from a previous life)
// stays.
func New(cfg Config) (*Registry, error) {
	r := &Registry{
		maxBlobs: cfg.MaxBlobs,
		start:    time.Now(),
		entries:  make(map[string]*Entry),
	}
	if r.maxBlobs <= 0 {
		r.maxBlobs = DefaultMaxBlobs
	}
	if cfg.Durability != nil {
		if err := r.openDurability(*cfg.Durability, cfg.MaxBodyBytes); err != nil {
			return nil, fmt.Errorf("registry: durability: %w", err)
		}
	}
	// Deterministic creation order, so a config error always names the
	// same stanza.
	names := make([]string, 0, len(cfg.Summaries))
	for name := range cfg.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := cfg.Summaries[name]
		if e, ok := r.Get(name); ok {
			// Recovered before the config loop ran. The stanza must
			// agree with the recovered spec — silently preferring either
			// side would change bounds behind the operator's back.
			hardened, _, err := hardenSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("registry: summary %q: %w", name, err)
			}
			if hardened != e.spec {
				return nil, fmt.Errorf("registry: summary %q: config spec conflicts with the recovered state (remove the stanza, restore it, or move the data dir)", name)
			}
			continue
		}
		if _, err := r.Create(name, spec); err != nil {
			return nil, fmt.Errorf("registry: summary %q: %w", name, err)
		}
	}
	if r.store != nil {
		r.snapStop = make(chan struct{})
		r.snapDone = make(chan struct{})
		go r.snapshotLoop()
	}
	return r, nil
}

// Create builds the summary for spec and registers it under name. The
// registry hardens every spec for concurrent serving: deterministic
// counter algorithms get WithConcurrent (queries must be lock-free
// against the ingest handlers), sketch algorithms — which the
// concurrency tier rejects — get at least one locked shard so handler
// goroutines never race on an unsynchronized structure, and every
// summary gets WithBorrowedKeys so the ingest decoders may alias keys
// into reused buffers.
func (r *Registry) Create(name string, spec hh.Spec) (*Entry, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid summary name %q (want 1-128 of [A-Za-z0-9._-], starting alphanumeric)", name)
	}
	spec, algo, err := hardenSpec(spec)
	if err != nil {
		return nil, err
	}
	deterministic := algo != hh.AlgoCountMin && algo != hh.AlgoCountSketch
	live, err := hh.NewFromSpec[string](spec)
	if err != nil {
		return nil, err
	}
	e := &Entry{
		name:       name,
		spec:       spec,
		algo:       algo,
		mergeable:  deterministic,
		live:       live,
		capacity:   live.Capacity(),
		maxBlobs:   r.maxBlobs,
		lastScrape: time.Now(),
	}
	if r.store != nil && deterministic && !spec.Ephemeral {
		e.durable = true
		e.store = r.store
		// Every durable creation is WAL-logged before the entry is
		// visible — uniformly, on recovery boots too. Replay treats a
		// create for an existing name as a no-op, so the duplicates
		// this writes are harmless, and a summary PUT at runtime is
		// re-creatable from the log alone even before its first
		// snapshot.
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		if err := r.store.AppendCreate(name, specJSON); err != nil {
			return nil, fmt.Errorf("logging creation of %q: %w", name, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return nil, fmt.Errorf("summary %q already exists", name)
	}
	r.entries[name] = e
	return e, nil
}

// hardenSpec applies the registry's serving hardening to a stanza:
// deterministic counter algorithms get WithConcurrent (queries must be
// lock-free against the ingest handlers) and WithArena (pointer-free
// key storage — O(1) GC objects per live summary), sketch algorithms —
// which the concurrency tier rejects — get at least one locked shard
// so handler goroutines never race on an unsynchronized structure, and
// every summary gets WithBorrowedKeys so the ingest decoders may alias
// keys into reused buffers. Hardening is idempotent, which is what
// lets recovery compare a config stanza against an already-hardened
// spec from a snapshot manifest.
func hardenSpec(spec hh.Spec) (hh.Spec, hh.Algo, error) {
	algo := hh.AlgoSpaceSaving
	if spec.Algorithm != "" {
		a, err := hh.ParseAlgo(spec.Algorithm)
		if err != nil {
			return spec, algo, err
		}
		algo = a
	}
	if algo != hh.AlgoCountMin && algo != hh.AlgoCountSketch {
		spec.Concurrent = true
		spec.Arena = true
	} else if spec.Shards < 1 {
		spec.Shards = 1
	}
	spec.BorrowedKeys = true
	return spec, algo, nil
}

// Get returns the named entry.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the registered summary names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered summaries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Uptime reports how long the registry has been serving.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Entry is one named summary: the live concurrently written structure
// fed by /update, plus the blobs remote agents pushed via /merge.
//
// Queries answer over the union view — MergeSummaries of the live
// summary and every pushed blob, exactly the in-process Section 6.2
// merge, so Theorem 11 error metadata pushed over the wire survives
// into query bounds unchanged. The view is cached and rebuilt only
// when ingest advanced or a new blob arrived; while no blob has been
// pushed, queries go straight to the live summary's lock-free
// concurrent-tier reads. Pushed blobs are kept as decoded (so the view
// always equals a single flat MergeSummaries over the original
// inputs — never a nested re-merge, which would widen bounds by the
// intermediate Δ-floors); past maxBlobs the oldest blobs are compacted
// into one merged summary, trading exactly that widening for bounded
// memory.
type Entry struct {
	name      string
	spec      hh.Spec
	algo      hh.Algo
	mergeable bool
	live      hh.Summary[string]
	capacity  int
	maxBlobs  int

	// mergeMu guards remotes and remoteMass; mergeGen bumps per
	// accepted blob (and compaction), versioning the cached view.
	mergeMu    sync.Mutex
	remotes    []hh.Summary[string] //hh:guardedby mergeMu
	remoteMass float64              //hh:guardedby mergeMu
	mergeGen   atomic.Uint64

	// view caches the merged union; viewMu single-flights rebuilds.
	viewMu  sync.Mutex
	view    atomic.Pointer[viewState]
	snapGen atomic.Uint64

	items   atomic.Uint64
	batches atomic.Uint64
	blobs   atomic.Uint64

	// Durability plumbing (zero unless the registry has a store and the
	// spec is neither sketch-backed nor ephemeral). durMu makes the
	// {WAL append, live apply} pair atomic against snapshot capture:
	// ingest holds it shared across the pair, the snapshot writer holds
	// it exclusive while reading walSeq and encoding the state, so a
	// captured blob covers exactly the batches of sequences 1..walSeq —
	// the invariant the manifest's per-summary "seq" pin rests on.
	// walSeq is advanced under the WAL's append lock (while durMu is
	// held shared) and read only under durMu exclusive.
	durable bool
	store   *persist.Store
	durMu   sync.RWMutex
	walSeq  persist.Seq
	// restored counts recovery inputs (snapshot base + replayed blobs),
	// distinct from blobs, which counts live /merge traffic.
	restored atomic.Uint64

	// rateMu guards the scrape-to-scrape ingest-rate bookkeeping.
	rateMu     sync.Mutex
	lastItems  uint64    //hh:guardedby rateMu
	lastScrape time.Time //hh:guardedby rateMu
}

// viewState is published through an atomic.Pointer: frozen once built.
//
//hh:immutable
type viewState struct {
	sum   hh.Summary[string]
	liveN float64
	gen   uint64
	// mu serializes queries against sum: a MergeSummaries result is a
	// plain summary with the library's single-threaded contract (its
	// scratch-reusing queries mutate backend state), while any number
	// of HTTP handler goroutines may hold the same cached view.
	mu sync.Mutex
}

// View is the handle queries run against: either the live summary
// (lock-free concurrent-tier reads; mu nil) or a cached merged union,
// whose plain summary is serialized through the view's mutex. The
// underlying counters never change once a view is built, so per-call
// locking still yields internally consistent responses.
//
//hh:immutable
type View struct {
	sum hh.Summary[string]
	mu  *sync.Mutex
}

func (v View) lock() {
	if v.mu != nil {
		v.mu.Lock()
	}
}

func (v View) unlock() {
	if v.mu != nil {
		v.mu.Unlock()
	}
}

// N returns the mass the view answers against.
func (v View) N() float64 {
	v.lock()
	defer v.unlock()
	return v.sum.N()
}

// Len returns the view's tracked-counter count.
func (v View) Len() int {
	v.lock()
	defer v.unlock()
	return v.sum.Len()
}

// Guarantee returns the view's (A, B) tail-guarantee constants.
func (v View) Guarantee() (hh.TailGuarantee, bool) {
	v.lock()
	defer v.unlock()
	return v.sum.Guarantee()
}

// Top returns the view's k largest counters.
func (v View) Top(k int) []hh.WeightedEntry[string] {
	v.lock()
	defer v.unlock()
	return v.sum.TopAppend(nil, k)
}

// Estimate returns the view's point estimate for item.
func (v View) Estimate(item string) float64 {
	v.lock()
	defer v.unlock()
	return v.sum.Estimate(item)
}

// EstimateBounds returns the view's certain bounds for item.
func (v View) EstimateBounds(item string) (lo, hi float64) {
	v.lock()
	defer v.unlock()
	return v.sum.EstimateBounds(item)
}

// HeavyHitters returns the view's phi-heavy hitters.
func (v View) HeavyHitters(phi float64) []hh.Result[string] {
	v.lock()
	defer v.unlock()
	return v.sum.HeavyHitters(phi)
}

// Encode streams the view's v2 wire form.
func (v View) Encode(w io.Writer) error {
	v.lock()
	defer v.unlock()
	return v.sum.Encode(w)
}

// Name returns the entry's registry name.
func (e *Entry) Name() string { return e.name }

// Spec returns the (hardened) construction spec.
func (e *Entry) Spec() hh.Spec { return e.spec }

// Live returns the live ingest summary.
func (e *Entry) Live() hh.Summary[string] { return e.live }

// IngestBatch records one occurrence of every key — the /update fast
// path, feeding the concurrent tier's batch ingestion (one hash per
// key, pooled partition scratch, zero allocations past the keys
// themselves, WAL append from the log's own scratch when durable).
//
// On a durable entry the batch is WAL-logged before it is applied; an
// error means the record is not durable and nothing was applied — the
// caller must refuse the batch (500 the request, kill the connection),
// because acknowledging it would promise durability the log cannot
// deliver.
func (e *Entry) IngestBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	if e.durable {
		e.durMu.RLock()
		err := e.store.AppendBatch(e.name, &e.walSeq, keys)
		if err == nil {
			e.live.UpdateBatch(keys)
		}
		e.durMu.RUnlock()
		if err != nil {
			return err
		}
	} else {
		e.live.UpdateBatch(keys)
	}
	e.items.Add(uint64(len(keys)))
	e.batches.Add(1)
	return nil
}

// Flush drains any ingest still queued in the live summary's pipeline
// rings (a no-op unless the spec armed Pipeline). Ingest paths that
// acknowledge durability — the hhwire listener's FlagAck reply — call
// this so an ack only ever covers batches that have actually been
// applied, not ones parked in a ring the process could still lose.
func (e *Entry) Flush() { e.live.Flush() }

// AbsorbBlob decodes one encoded summary blob (flat "HHSUM2" or
// windowed "HHWIN2" — Decode detects the magic) and adds it to the
// entry's merge set, returning the blob's stream mass. The blob must
// be string-keyed; a uint64-keyed blob is rejected by the decoder's
// key-kind check. Rejected blobs leave the entry untouched.
func (e *Entry) AbsorbBlob(r io.Reader) (float64, error) {
	if !e.mergeable {
		return 0, fmt.Errorf("summary %q is sketch-backed (%v) and cannot absorb merges", e.name, e.algo)
	}
	if !e.durable {
		s, err := hh.Decode[string](r)
		if err != nil {
			return 0, err
		}
		return e.absorbDecoded(s, true)
	}
	// Durable path: the raw bytes are the WAL record, so buffer them
	// before decoding (merge is the control plane — the copy is fine).
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	s, err := hh.Decode[string](bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	e.durMu.RLock()
	defer e.durMu.RUnlock()
	if err := e.store.AppendBlob(e.name, &e.walSeq, data); err != nil {
		return 0, err
	}
	return e.absorbDecoded(s, true)
}

// absorbDecoded adds one decoded summary to the merge set, compacting
// past maxBlobs. Shared by the /merge path and recovery's blob-record
// replay. counted selects whether the blobs metric advances (recovery
// inputs count as restored instead).
func (e *Entry) absorbDecoded(s hh.Summary[string], counted bool) (float64, error) {
	mass := s.N()
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	e.remotes = append(e.remotes, s)
	e.remoteMass += mass
	if len(e.remotes) > e.maxBlobs {
		// Compact: one nested merge over the accumulated blobs. Bounds
		// widen by the compacted inputs' Δ-floors — the honest price of
		// bounded memory; mass and estimates are unaffected.
		compacted, err := hh.MergeSummaries(e.capacity, e.remotes...)
		if err != nil {
			return 0, err
		}
		clear(e.remotes)
		e.remotes = append(e.remotes[:0], compacted)
	}
	e.mergeGen.Add(1)
	if counted {
		e.blobs.Add(1)
	} else {
		e.restored.Add(1)
	}
	return mass, nil
}

// View returns the handle queries answer against: the live summary
// itself while nothing has been pushed via /merge (lock-free
// concurrent-tier reads), otherwise a cached MergeSummaries of the
// live summary and every pushed blob. The cache is keyed by the merge
// generation and the live mass at build time, so a view is rebuilt
// only when something actually changed; rebuilds are single-flighted
// (a query arriving during another's rebuild serves the previous view
// — bounded staleness, exactly the concurrency tier's trade — and
// only blocks when there is no previous view yet), pin consistent
// snapshots of the live summary, and never block ingest. The merge
// runs under mergeMu so it cannot race a compaction's merge over the
// same decoded blobs (plain summaries' queries mutate scratch state).
func (e *Entry) View() (View, error) {
	gen := e.mergeGen.Load()
	if gen == 0 {
		return View{sum: e.live}, nil
	}
	liveN := e.live.N()
	if v := e.view.Load(); v != nil && v.gen == gen && v.liveN == liveN {
		return View{sum: v.sum, mu: &v.mu}, nil
	}
	if !e.viewMu.TryLock() {
		// Another query is rebuilding: serve the bounded-stale cached
		// view rather than queueing behind the merge.
		if v := e.view.Load(); v != nil {
			return View{sum: v.sum, mu: &v.mu}, nil
		}
		e.viewMu.Lock() // nothing to serve yet; wait for the first build
	}
	defer e.viewMu.Unlock()
	gen = e.mergeGen.Load()
	liveN = e.live.N()
	if v := e.view.Load(); v != nil && v.gen == gen && v.liveN == liveN {
		return View{sum: v.sum, mu: &v.mu}, nil
	}
	e.mergeMu.Lock()
	inputs := make([]hh.Summary[string], 0, len(e.remotes)+1)
	if liveN > 0 {
		inputs = append(inputs, e.live)
	}
	inputs = append(inputs, e.remotes...)
	merged, err := hh.MergeSummaries(e.capacity, inputs...)
	e.mergeMu.Unlock()
	if err != nil {
		return View{}, err
	}
	v := &viewState{sum: merged, liveN: liveN, gen: gen}
	e.view.Store(v)
	e.snapGen.Add(1)
	return View{sum: merged, mu: &v.mu}, nil
}

// Stats is the per-summary block of /metricsz.
type Stats struct {
	Algorithm string `json:"algorithm"`
	// N is the total served mass: live ingest plus every pushed blob.
	N float64 `json:"n"`
	// Len is the tracked-counter count of the current query view.
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
	// IngestedItems and IngestedBatches count the /update traffic;
	// MergedBlobs the accepted /merge pushes.
	IngestedItems   uint64 `json:"ingested_items"`
	IngestedBatches uint64 `json:"ingested_batches"`
	MergedBlobs     uint64 `json:"merged_blobs"`
	// SnapshotGeneration counts union-view rebuilds (0 until a blob is
	// pushed: pure-ingest queries serve the concurrent tier directly).
	SnapshotGeneration uint64 `json:"snapshot_generation"`
	// IngestRate is the /update item rate (items/s) averaged since the
	// previous /metricsz scrape.
	IngestRate float64 `json:"ingest_rate"`
	// Durable reports whether the summary is WAL-logged and
	// snapshotted; WALSeq is its last allocated WAL sequence number and
	// RestoredInputs how many recovery inputs (snapshot base + replayed
	// merge blobs) back the current state. All zero without durability.
	Durable        bool   `json:"durable,omitempty"`
	WALSeq         uint64 `json:"wal_seq,omitempty"`
	RestoredInputs uint64 `json:"restored_inputs,omitempty"`
	// Memory is the live summary's arena footprint — present only when
	// the summary stores its keys in arena slabs (the registry arms
	// WithArena on every deterministic stanza).
	Memory *MemStats `json:"memory,omitempty"`
}

// MemStats is the /metricsz memory block of one arena-backed summary.
type MemStats struct {
	// ArenaBytes is the total slab backing holding the tracked keys;
	// Slabs its slab count.
	ArenaBytes uint64 `json:"arena_bytes"`
	Slabs      int    `json:"slabs"`
	// LiveBytes/FreeBytes split the slab regions into live keys and
	// free-list parking; LiveRatio = live/(live+free) is the slab
	// occupancy (1.0 = no churn slack).
	LiveBytes uint64  `json:"live_bytes"`
	FreeBytes uint64  `json:"free_bytes"`
	LiveRatio float64 `json:"live_ratio"`
	LiveKeys  int     `json:"live_keys"`
	// IndexSlots/IndexBytes size the open-addressing index arrays.
	IndexSlots int    `json:"index_slots"`
	IndexBytes uint64 `json:"index_bytes"`
	// BytesPerTrackedKey is (ArenaBytes+IndexBytes)/LiveKeys — the
	// capacity-planning number (see docs/OPERATIONS.md).
	BytesPerTrackedKey float64 `json:"bytes_per_tracked_key"`
}

// readMemory assembles the memory block from the live summary's arena
// walk; nil when the summary is map-backed.
func readMemory(s hh.Summary[string]) *MemStats {
	m, ok := s.Memory()
	if !ok {
		return nil
	}
	ms := &MemStats{
		ArenaBytes:         m.ArenaBytes,
		Slabs:              m.ArenaSlabs,
		LiveBytes:          m.LiveBytes,
		FreeBytes:          m.FreeBytes,
		LiveKeys:           m.LiveKeys,
		IndexSlots:         m.IndexSlots,
		IndexBytes:         m.IndexBytes,
		BytesPerTrackedKey: m.BytesPerTrackedKey(),
	}
	if t := m.LiveBytes + m.FreeBytes; t > 0 {
		ms.LiveRatio = float64(m.LiveBytes) / float64(t)
	}
	return ms
}

// ReadStats assembles the metrics block, advancing the scrape-window
// rate bookkeeping.
func (e *Entry) ReadStats() Stats {
	items := e.items.Load()
	e.rateMu.Lock()
	now := time.Now()
	elapsed := now.Sub(e.lastScrape).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = float64(items-e.lastItems) / elapsed
	}
	e.lastItems = items
	e.lastScrape = now
	e.rateMu.Unlock()

	// Report against the cached view when one exists; never force a
	// merge from the metrics path.
	length := e.live.Len()
	if v := e.view.Load(); v != nil {
		length = v.sum.Len()
	}
	e.mergeMu.Lock()
	remoteMass := e.remoteMass
	e.mergeMu.Unlock()
	return Stats{
		Algorithm:          e.algo.String(),
		N:                  e.live.N() + remoteMass,
		Len:                length,
		Capacity:           e.capacity,
		IngestedItems:      items,
		IngestedBatches:    e.batches.Load(),
		MergedBlobs:        e.blobs.Load(),
		SnapshotGeneration: e.snapGen.Load(),
		IngestRate:         rate,
		Durable:            e.durable,
		WALSeq:             e.walSeq.Load(),
		RestoredInputs:     e.restored.Load(),
		Memory:             readMemory(e.live),
	}
}
