package registry_test

import (
	"fmt"
	"os"

	hh "repro"
	"repro/internal/registry"
)

// Example_durableRecovery walks the full durability lifecycle in
// process: ingest, an explicit atomic snapshot, more ingest that lives
// only in the WAL tail, a crash-equivalent halt, and a recovering boot
// that stitches the snapshot and the tail back together. The same
// sequence over a real daemon — with kill -9 in place of Halt — is the
// e2e crash test in cmd/hhserverd.
func Example_durableRecovery() {
	dir, err := os.MkdirTemp("", "hh-durable")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	cfg := registry.Config{
		Durability: &hh.DurabilitySpec{Dir: dir, SnapshotInterval: "1h", Fsync: hh.FsyncAlways},
		Summaries:  map[string]hh.Spec{"queries": {Capacity: 8}},
	}

	reg, err := registry.New(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	e, _ := reg.Get("queries")
	e.IngestBatch([]string{"a", "b", "a"})    // seq 1: WAL-logged, then applied
	if _, err := reg.Snapshot(); err != nil { // blob + manifest, CURRENT flips
		fmt.Println(err)
		return
	}
	e.IngestBatch([]string{"c"}) // seq 2: in the WAL tail only
	reg.Halt()                   // close WITHOUT a final snapshot — a controlled crash

	reg2, err := registry.New(cfg) // recovery: snapshot, then WAL tail
	if err != nil {
		fmt.Println(err)
		return
	}
	defer reg2.Close()
	s := reg2.Recovery().Summaries[0]
	fmt.Printf("recovered %q: mass %.0f, seq %d, from snapshot: %v\n", s.Name, s.Mass, s.Seq, s.FromSnapshot)
	e2, _ := reg2.Get("queries")
	v, _ := e2.View()
	fmt.Printf("n=%.0f estimate(a)=%.0f\n", v.N(), v.Estimate("a"))
	// Output:
	// recovered "queries": mass 4, seq 2, from snapshot: true
	// n=4 estimate(a)=2
}
