package registry_test

// Tests drive the registry through its real HTTP surface (httptest on
// top of registry.NewServer) using the typed client package — the same
// two layers the hhserverd binary mounts — so every assertion here
// covers the wire formats, the handler plumbing and the client
// round-trip at once.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	hh "repro"
	"repro/client"
	"repro/internal/registry"
	"repro/internal/stream"
)

func newTestServer(t *testing.T, cfg registry.Config) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatalf("registry.New: %v", err)
	}
	ts := httptest.NewServer(registry.NewServer(reg, cfg.MaxBodyBytes))
	t.Cleanup(ts.Close)
	return ts, reg
}

// zipfKeys renders a seeded Zipf stream as decimal string keys.
func zipfKeys(universe int, n uint64, seed uint64) []string {
	raw := stream.Zipf(universe, 1.1, n, stream.OrderRandom, seed)
	keys := make([]string, len(raw))
	for i, x := range raw {
		keys[i] = fmt.Sprintf("item-%d", x)
	}
	return keys
}

func TestIngestAndQuery(t *testing.T) {
	ts, _ := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{
			"words": {Capacity: 256, Shards: 4},
		},
	})
	ctx := context.Background()
	c := client.New(ts.URL, "words")
	keys := zipfKeys(2000, 40_000, 7)

	// Reference: the same stream through an in-process summary with the
	// same per-shard budget (deterministic algorithms: the HTTP hop must
	// not change a single counter).
	ref := hh.New[string](hh.WithCapacity(256), hh.WithShards(4))
	for lo := 0; lo < len(keys); lo += 4096 {
		part := keys[lo:min(lo+4096, len(keys))]
		n, err := c.Push(ctx, part)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		if n != len(part) {
			t.Fatalf("Push acknowledged %d of %d keys", n, len(part))
		}
		ref.UpdateBatch(part)
	}

	top, err := c.Top(ctx, 10)
	if err != nil {
		t.Fatalf("Top: %v", err)
	}
	if top.N != float64(len(keys)) {
		t.Errorf("served N = %.0f, want %d", top.N, len(keys))
	}
	refTop := ref.Top(10)
	if len(top.Results) != len(refTop) {
		t.Fatalf("Top returned %d results, want %d", len(top.Results), len(refTop))
	}
	for i, r := range top.Results {
		lo, hi := ref.EstimateBounds(r.Item)
		if r.Count != refTop[i].Count || r.Lo != lo || r.Hi != hi {
			t.Errorf("top[%d] = %+v, want count %.1f bounds [%.1f, %.1f]",
				i, r, refTop[i].Count, lo, hi)
		}
	}

	est, err := c.Estimate(ctx, top.Results[0].Item)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.Estimate != ref.Estimate(est.Key) {
		t.Errorf("estimate %.1f, want %.1f", est.Estimate, ref.Estimate(est.Key))
	}
	if est.Guaranteed != (est.Lo == est.Hi) {
		t.Errorf("guaranteed flag inconsistent with bounds: %+v", est)
	}

	hits, err := c.HeavyHitters(ctx, 0.02)
	if err != nil {
		t.Fatalf("HeavyHitters: %v", err)
	}
	refHits := ref.HeavyHitters(0.02)
	if len(hits.Results) != len(refHits) {
		t.Fatalf("HeavyHitters returned %d results, want %d", len(hits.Results), len(refHits))
	}
	for i, h := range hits.Results {
		want := refHits[i]
		if h.Item != want.Item || h.Lo != want.Lo || h.Hi != want.Hi || h.Guaranteed != want.Guaranteed {
			t.Errorf("hh[%d] = %+v, want %+v", i, h, want)
		}
	}
}

// TestMergeMatchesInProcess pins the acceptance criterion: a blob
// pushed via /merge then queried via /heavyhitters returns byte-equal
// certain bounds to an in-process MergeSummaries of the same inputs.
func TestMergeMatchesInProcess(t *testing.T) {
	const m = 200
	ts, _ := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"agg": {Capacity: m}},
	})
	ctx := context.Background()
	c := client.New(ts.URL, "agg")

	// Two agents summarize disjoint streams and encode their state.
	var blobs [][]byte
	var decoded []hh.Summary[string]
	for seed := uint64(1); seed <= 2; seed++ {
		agent := hh.New[string](hh.WithCapacity(m), hh.WithAlgorithm(hh.AlgoFrequent))
		agent.UpdateBatch(zipfKeys(3000, 30_000, seed))
		var buf bytes.Buffer
		if err := agent.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
		d, err := hh.Decode[string](bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, d)
	}
	for _, b := range blobs {
		if _, err := c.MergeBlob(ctx, bytes.NewReader(b)); err != nil {
			t.Fatalf("MergeBlob: %v", err)
		}
	}

	ref, err := hh.MergeSummaries(m, decoded...)
	if err != nil {
		t.Fatal(err)
	}

	const phi = 0.01
	got, err := c.HeavyHitters(ctx, phi)
	if err != nil {
		t.Fatalf("HeavyHitters: %v", err)
	}
	if got.N != ref.N() {
		t.Errorf("served N = %v, want in-process merged N %v", got.N, ref.N())
	}
	want := ref.HeavyHitters(phi)
	if len(got.Results) != len(want) {
		t.Fatalf("server returned %d heavy hitters, in-process merge %d", len(got.Results), len(want))
	}
	for i, h := range got.Results {
		w := want[i]
		if h.Item != w.Item || h.Count != w.Count || h.Lo != w.Lo || h.Hi != w.Hi || h.Guaranteed != w.Guaranteed {
			t.Errorf("heavyhitters[%d]: server %+v != in-process %+v", i, h, w)
		}
	}

	// The snapshot endpoint must round-trip the same view: decoding
	// /encode yields the in-process merge's mass and per-item bounds.
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.N() != ref.N() {
		t.Errorf("snapshot N = %v, want %v", snap.N(), ref.N())
	}
	for _, e := range ref.Top(20) {
		rlo, rhi := ref.EstimateBounds(e.Item)
		slo, shi := snap.EstimateBounds(e.Item)
		if slo != rlo || shi != rhi {
			t.Errorf("snapshot bounds of %q = [%v, %v], want [%v, %v]", e.Item, slo, shi, rlo, rhi)
		}
	}
}

// TestMergePlusLiveIngest checks the union view: live /update traffic
// and a pushed blob answer as one merged stream with certain bounds.
func TestMergePlusLiveIngest(t *testing.T) {
	const m = 128
	ts, _ := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"union": {Capacity: m}},
	})
	ctx := context.Background()
	c := client.New(ts.URL, "union")

	truth := make(map[string]float64)
	liveKeys := zipfKeys(500, 20_000, 3)
	for _, k := range liveKeys {
		truth[k]++
	}
	if _, err := c.Push(ctx, liveKeys); err != nil {
		t.Fatal(err)
	}

	agent := hh.New[string](hh.WithCapacity(m))
	agentKeys := zipfKeys(500, 15_000, 4)
	for _, k := range agentKeys {
		truth[k]++
	}
	agent.UpdateBatch(agentKeys)
	if _, err := c.MergeSummary(ctx, agent); err != nil {
		t.Fatal(err)
	}

	top, err := c.Top(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantN := float64(len(liveKeys) + len(agentKeys))
	if top.N != wantN {
		t.Errorf("union N = %.0f, want %.0f", top.N, wantN)
	}
	for _, r := range top.Results {
		if f := truth[r.Item]; f < r.Lo || f > r.Hi {
			t.Errorf("true count %v of %q escapes served bounds [%v, %v]", f, r.Item, r.Lo, r.Hi)
		}
	}
}

func TestBinaryIngest(t *testing.T) {
	ts, reg := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"raw": {Capacity: 64}},
	})
	ctx := context.Background()
	c := client.New(ts.URL, "raw")
	keys := []string{"plain", "with\nnewline", "", "with\nnewline", "plain", "plain"}
	n, err := c.PushBinary(ctx, keys)
	if err != nil {
		t.Fatalf("PushBinary: %v", err)
	}
	if n != len(keys) {
		t.Fatalf("acknowledged %d keys, want %d", n, len(keys))
	}
	e, _ := reg.Get("raw")
	if got := e.Live().Estimate("with\nnewline"); got != 2 {
		t.Errorf("newline key estimate = %v, want 2", got)
	}
	if got := e.Live().Estimate(""); got != 1 {
		t.Errorf("empty key estimate = %v, want 1", got)
	}
	if got := e.Live().N(); got != float64(len(keys)) {
		t.Errorf("N = %v, want %d", got, len(keys))
	}
	// Push falls back to the binary format for keys the text format
	// cannot carry faithfully, so these round-trip byte-exact too.
	if _, err := c.Push(ctx, []string{"cr-suffix\r", "also\nhere", ""}); err != nil {
		t.Fatalf("Push with text-unsafe keys: %v", err)
	}
	if got := e.Live().Estimate("cr-suffix\r"); got != 1 {
		t.Errorf(`estimate("cr-suffix\r") = %v, want 1`, got)
	}
	if got := e.Live().Estimate("also\nhere"); got != 1 {
		t.Errorf("newline key via Push = %v, want 1", got)
	}
}

// TestMalformedBatchRejected: a bad frame errors without ingesting
// anything — the no-corruption half of the ingest wire contract.
func TestMalformedBatchRejected(t *testing.T) {
	ts, reg := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"s": {Capacity: 64}},
	})
	e, _ := reg.Get("s")
	post := func(body []byte, ct string) int {
		resp, err := http.Post(ts.URL+"/v1/s/update", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Truncated uvarint: a length prefix that never completes.
	if code := post([]byte{0xff}, registry.ContentTypeBinary); code != http.StatusBadRequest {
		t.Errorf("truncated uvarint: status %d, want 400", code)
	}
	// Length past the end of the body.
	if code := post([]byte{0x10, 'a', 'b'}, registry.ContentTypeBinary); code != http.StatusBadRequest {
		t.Errorf("overlong record: status %d, want 400", code)
	}
	// A valid prefix followed by garbage must not ingest the prefix.
	frame := registry.AppendBinaryRecord(nil, "good-key")
	frame = append(frame, 0xff)
	if code := post(frame, registry.ContentTypeBinary); code != http.StatusBadRequest {
		t.Errorf("valid prefix + garbage: status %d, want 400", code)
	}
	if n := e.Live().N(); n != 0 {
		t.Errorf("rejected batches ingested mass %v, want 0", n)
	}
	if got := e.Live().Estimate("good-key"); got != 0 {
		t.Errorf("partial batch leaked into the summary: estimate %v", got)
	}
}

func TestMergeRejectsBadBlobs(t *testing.T) {
	ts, reg := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{
			"det":    {Capacity: 64},
			"sketch": {Algorithm: "countmin", Capacity: 64},
		},
	})
	post := func(name string, body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/"+name+"/merge", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("det", []byte("not a blob")); code != http.StatusBadRequest {
		t.Errorf("garbage blob: status %d, want 400", code)
	}
	// A uint64-keyed blob fails the string-keyed decoder's kind check.
	u := hh.New[uint64](hh.WithCapacity(32))
	u.Update(7)
	var buf bytes.Buffer
	if err := u.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if code := post("det", buf.Bytes()); code != http.StatusBadRequest {
		t.Errorf("uint64-keyed blob: status %d, want 400", code)
	}
	// Sketch-backed summaries cannot absorb merges at all.
	s := hh.New[string](hh.WithCapacity(32))
	s.Update("x")
	buf.Reset()
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if code := post("sketch", buf.Bytes()); code != http.StatusUnprocessableEntity {
		t.Errorf("merge into sketch: status %d, want 422", code)
	}
	e, _ := reg.Get("det")
	if n := e.Live().N(); n != 0 {
		t.Errorf("rejected blobs left mass %v", n)
	}
}

func TestDynamicCreateAndErrors(t *testing.T) {
	ts, _ := newTestServer(t, registry.Config{})
	ctx := context.Background()
	c := client.New(ts.URL, "fresh")
	if _, err := c.Push(ctx, []string{"a"}); err == nil {
		t.Error("push to a nonexistent summary succeeded")
	}
	if err := c.Create(ctx, hh.Spec{Capacity: 64, Shards: 2}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Create(ctx, hh.Spec{Capacity: 64}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate create: err = %v, want 409", err)
	}
	bad := client.New(ts.URL, "bad")
	if err := bad.Create(ctx, hh.Spec{Algorithm: "nope"}); err == nil {
		t.Error("create with unknown algorithm succeeded")
	}
	if err := bad.Create(ctx, hh.Spec{Capacity: -3}); err == nil {
		t.Error("create with negative capacity succeeded")
	}
	if _, err := c.Push(ctx, []string{"a", "b", "a"}); err != nil {
		t.Fatalf("push after create: %v", err)
	}
	est, err := c.Estimate(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate != 2 {
		t.Errorf("estimate = %v, want 2", est.Estimate)
	}

	// Query-parameter validation.
	for _, path := range []string{"/v1/fresh/top?k=0", "/v1/fresh/top?k=x",
		"/v1/fresh/heavyhitters?phi=0", "/v1/fresh/heavyhitters?phi=1.5",
		"/v1/fresh/heavyhitters", "/v1/fresh/estimate"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestBodyLimit(t *testing.T) {
	ts, reg := newTestServer(t, registry.Config{
		MaxBodyBytes: 1 << 10,
		Summaries:    map[string]hh.Spec{"s": {Capacity: 64}},
	})
	big := strings.Repeat("k\n", 1<<10)
	resp, err := http.Post(ts.URL+"/v1/s/update", registry.ContentTypeText, strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	e, _ := reg.Get("s")
	if n := e.Live().N(); n != 0 {
		t.Errorf("oversized body ingested mass %v", n)
	}
}

// TestCompaction: past max_blobs the pushed blobs compact into one
// nested merge — mass is preserved exactly and bounds stay certain
// (they may widen; they must still contain the truth).
func TestCompaction(t *testing.T) {
	const m = 128
	ts, reg := newTestServer(t, registry.Config{
		MaxBlobs:  2,
		Summaries: map[string]hh.Spec{"agg": {Capacity: m}},
	})
	ctx := context.Background()
	c := client.New(ts.URL, "agg")
	truth := make(map[string]float64)
	var total float64
	for seed := uint64(1); seed <= 4; seed++ {
		agent := hh.New[string](hh.WithCapacity(m))
		keys := zipfKeys(300, 10_000, seed)
		for _, k := range keys {
			truth[k]++
		}
		total += float64(len(keys))
		agent.UpdateBatch(keys)
		if _, err := c.MergeSummary(ctx, agent); err != nil {
			t.Fatal(err)
		}
	}
	top, err := c.Top(ctx, 15)
	if err != nil {
		t.Fatal(err)
	}
	if top.N != total {
		t.Errorf("compacted N = %v, want %v", top.N, total)
	}
	for _, r := range top.Results {
		if f := truth[r.Item]; f < r.Lo || f > r.Hi {
			t.Errorf("true count %v of %q escapes compacted bounds [%v, %v]", f, r.Item, r.Lo, r.Hi)
		}
	}
	e, _ := reg.Get("agg")
	if stats := e.ReadStats(); stats.MergedBlobs != 4 {
		t.Errorf("merged_blobs = %d, want 4", stats.MergedBlobs)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"a": {Capacity: 64}, "b": {Capacity: 64}},
	})
	ctx := context.Background()
	if err := client.New(ts.URL, "a").Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
	c := client.New(ts.URL, "a")
	if _, err := c.Push(ctx, []string{"x", "y", "x"}); err != nil {
		t.Fatal(err)
	}
	agent := hh.New[string](hh.WithCapacity(64))
	agent.Update("z")
	if _, err := c.MergeSummary(ctx, agent); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Top(ctx, 5); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		UptimeSeconds float64                   `json:"uptime_seconds"`
		Summaries     map[string]registry.Stats `json:"summaries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	a, ok := m.Summaries["a"]
	if !ok {
		t.Fatalf("metricsz missing summary a: %+v", m)
	}
	if a.IngestedItems != 3 || a.IngestedBatches != 1 || a.MergedBlobs != 1 {
		t.Errorf("metrics = %+v, want 3 items / 1 batch / 1 blob", a)
	}
	if a.N != 4 {
		t.Errorf("metrics N = %v, want 4 (3 live + 1 pushed)", a.N)
	}
	if a.SnapshotGeneration == 0 {
		t.Error("snapshot_generation still 0 after a post-merge query")
	}
	if b := m.Summaries["b"]; b.IngestedItems != 0 || b.N != 0 {
		t.Errorf("idle summary metrics = %+v, want zeros", b)
	}
}

// TestViewCaching: the union view rebuilds only when ingest advanced
// or a blob arrived, not per query.
func TestViewCaching(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"v": {Capacity: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("v")
	agent := hh.New[string](hh.WithCapacity(64))
	agent.UpdateBatch([]string{"a", "b", "a"})
	var buf bytes.Buffer
	if err := agent.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AbsorbBlob(&buf); err != nil {
		t.Fatal(err)
	}
	v1, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("idle views differ: cache not reused")
	}
	if gen := e.ReadStats().SnapshotGeneration; gen != 1 {
		t.Errorf("snapshot generation = %d after two idle queries, want 1", gen)
	}
	e.IngestBatch([]string{"c"})
	v3, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v2 {
		t.Error("view not rebuilt after ingest advanced")
	}
	if v3.N() != 4 {
		t.Errorf("rebuilt view N = %v, want 4", v3.N())
	}
}

// TestViewQueryRace hammers one cached merged view with concurrent
// scratch-mutating queries (HeavyHitters iterates via each(), which
// reuses backend scratch): the View handle must serialize them. Under
// -race this fails deterministically if the view's mutex is removed.
func TestViewQueryRace(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"v": {Capacity: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("v")
	agent := hh.New[string](hh.WithCapacity(64))
	agent.UpdateBatch(zipfKeys(200, 5_000, 13))
	var buf bytes.Buffer
	if err := agent.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AbsorbBlob(&buf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				v, err := e.View()
				if err != nil {
					t.Error(err)
					return
				}
				if hits := v.HeavyHitters(0.01); len(hits) == 0 {
					t.Error("no heavy hitters from the cached view")
					return
				}
				if top := v.Top(5); len(top) == 0 {
					t.Error("empty top from the cached view")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentTraffic hammers one summary with parallel pushers, a
// blob pusher and query traffic — the -race half of the e2e job runs
// this with the race detector on.
func TestConcurrentTraffic(t *testing.T) {
	ts, _ := newTestServer(t, registry.Config{
		Summaries: map[string]hh.Spec{"hot": {Capacity: 256, Shards: 4}},
	})
	ctx := context.Background()
	keys := zipfKeys(1000, 8_000, 9)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(part []string) {
			defer wg.Done()
			c := client.New(ts.URL, "hot")
			for lo := 0; lo < len(part); lo += 512 {
				if _, err := c.Push(ctx, part[lo:min(lo+512, len(part))]); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(keys[w*2000 : (w+1)*2000])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := client.New(ts.URL, "hot")
		for i := 0; i < 4; i++ {
			agent := hh.New[string](hh.WithCapacity(64))
			agent.UpdateBatch(zipfKeys(200, 1_000, uint64(20+i)))
			if _, err := c.MergeSummary(ctx, agent); err != nil {
				t.Errorf("MergeSummary: %v", err)
				return
			}
		}
	}()
	// Several concurrent query goroutines, deliberately including
	// HeavyHitters and Encode: once a blob lands, those run against the
	// shared cached merged view, whose scratch-reusing queries must be
	// serialized by the View handle (a single reader or Top/Estimate
	// alone would never catch two queries racing on one view).
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(ts.URL, "hot")
			var sink bytes.Buffer
			for i := 0; i < 40; i++ {
				if _, err := c.Top(ctx, 5); err != nil {
					t.Errorf("Top: %v", err)
					return
				}
				if _, err := c.HeavyHitters(ctx, 0.01); err != nil {
					t.Errorf("HeavyHitters: %v", err)
					return
				}
				if _, err := c.Estimate(ctx, "item-0"); err != nil {
					t.Errorf("Estimate: %v", err)
					return
				}
				sink.Reset()
				if err := c.Encode(ctx, &sink); err != nil {
					t.Errorf("Encode: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	c := client.New(ts.URL, "hot")
	top, err := c.Top(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantN := float64(len(keys) + 4*1000)
	if math.Abs(top.N-wantN) > 1e-9 {
		t.Errorf("final N = %v, want %v", top.N, wantN)
	}
}
