package wire_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	hh "repro"
	"repro/internal/registry"
	"repro/internal/wire"
)

// frame builds a valid v1 frame for tests.
func frame(name string, flags byte, keys ...string) []byte {
	var body []byte
	for _, k := range keys {
		body = registry.AppendBinaryRecord(body, k)
	}
	return wire.AppendFrame(nil, name, flags, body)
}

func TestFrameRoundTrip(t *testing.T) {
	buf := frame("queries", wire.FlagAck, "alpha", "beta", "", "alpha")
	f, err := wire.ParseFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Name) != "queries" || !f.Ack() {
		t.Fatalf("parsed frame = %+v", f)
	}
	keys, err := registry.AppendBinaryKeys(nil, f.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "", "alpha"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %q, want %q", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %q, want %q", keys, want)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	good := frame("s", 0, "k")
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:11],
		"bad magic":      mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":    mutate(func(b []byte) []byte { b[4] = 2; return b }),
		"reserved flags": mutate(func(b []byte) []byte { b[5] = 0x80; return b }),
		"zero name":      mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[6:8], 0); return b }),
		"long name":      mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[6:8], 129); return b }),
		"body too long":  mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], 1<<31); return b }),
		"truncated":      good[:len(good)-1],
		"trailing":       append(append([]byte(nil), good...), 0),
	}
	for name, buf := range cases {
		if _, err := wire.ParseFrame(buf, 0); err == nil {
			t.Errorf("%s: ParseFrame accepted %q", name, buf)
		}
	}
	if _, err := wire.ParseFrame(good, 0); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	ack := wire.AppendAck(nil, wire.AckStatusOK)
	if len(ack) != wire.AckLen {
		t.Fatalf("ack length %d, want %d", len(ack), wire.AckLen)
	}
	st, err := wire.ParseAck(ack)
	if err != nil || st != wire.AckStatusOK {
		t.Fatalf("ParseAck = %d, %v", st, err)
	}
	for _, bad := range [][]byte{{}, ack[:7], append([]byte("HHWX"), ack[4:]...)} {
		if _, err := wire.ParseAck(bad); err == nil {
			t.Errorf("ParseAck accepted %q", bad)
		}
	}
}

// newTestListener boots a registry with one summary and a TCP wire
// listener on loopback, returning the dial address and the entry.
func newTestListener(t *testing.T) (*wire.Listener, string, *registry.Entry) {
	t.Helper()
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"s": {Capacity: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := wire.NewListener(reg, 1<<20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go l.ServeTCP(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		l.Shutdown(ctx)
	})
	e, _ := reg.Get("s")
	return l, ln.Addr().String(), e
}

func TestListenerTCPIngestAndAck(t *testing.T) {
	l, addr, e := newTestListener(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf []byte
	buf = append(buf, frame("s", 0, "a", "b", "a")...)
	buf = append(buf, frame("s", wire.FlagAck, "c")...)
	if _, err := c.Write(buf); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, wire.AckLen)
	if _, err := io.ReadFull(c, ack); err != nil {
		t.Fatal(err)
	}
	if st, err := wire.ParseAck(ack); err != nil || st != wire.AckStatusOK {
		t.Fatalf("ack = %d, %v", st, err)
	}
	// The ack is written after ingest, so both frames are visible now.
	if n := e.Live().N(); n != 4 {
		t.Fatalf("N = %v, want 4", n)
	}
	if got := e.Live().Estimate("a"); got != 2 {
		t.Fatalf("Estimate(a) = %v, want 2", got)
	}
	if st := l.Stats(); st.Frames != 2 || st.Items != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// With a pipelined summary the batch is parked in shard rings when
// IngestBatch returns; the listener must drain them before answering
// FlagAck so an ack always means "applied", and queries after the ack
// must see the full mass.
func TestListenerTCPAckFlushesPipeline(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"p": {Capacity: 64, Shards: 4, Pipeline: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := wire.NewListener(reg, 1<<20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go l.ServeTCP(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		l.Shutdown(ctx)
	})
	e, _ := reg.Get("p")
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf []byte
	for i := 0; i < 9; i++ {
		buf = append(buf, frame("p", 0, "a", "b", "c", "a")...)
	}
	buf = append(buf, frame("p", wire.FlagAck, "a", "d")...)
	if _, err := c.Write(buf); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, wire.AckLen)
	if _, err := io.ReadFull(c, ack); err != nil {
		t.Fatal(err)
	}
	if st, err := wire.ParseAck(ack); err != nil || st != wire.AckStatusOK {
		t.Fatalf("ack = %d, %v", st, err)
	}
	if n := e.Live().N(); n != 38 {
		t.Fatalf("N after ack = %v, want 38", n)
	}
	if got := e.Live().Estimate("a"); got != 19 {
		t.Fatalf("Estimate(a) = %v, want 19", got)
	}
}

// A malformed frame must kill the connection without moving any
// summary's mass — the whole-or-nothing contract.
func TestListenerTCPMalformedKillsConn(t *testing.T) {
	l, addr, e := newTestListener(t)
	cases := [][]byte{
		[]byte("XXXXXXXXXXXXXXXX"), // bad magic
		frame("nosuch", 0, "k"),    // unknown summary
		append(frame("s", 0), bytes.Repeat([]byte{0xff}, wire.HeaderLen)...), // second frame's header corrupt
		wire.AppendFrame(nil, "s", 0, []byte{0xff}),                          // malformed batch body
	}
	for i, bad := range cases {
		before := e.Live().N()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(bad)
		// The server must close on us; a read unblocks with EOF/reset.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("case %d: connection survived a malformed frame", i)
		}
		c.Close()
		if after := e.Live().N(); after != before {
			t.Fatalf("case %d: malformed frame moved mass %v -> %v", i, before, after)
		}
	}
	if st := l.Stats(); st.Kills != uint64(len(cases)) {
		t.Fatalf("kills = %d, want %d", l.Stats().Kills, len(cases))
	}
}

func TestListenerUDPIngestAndDrops(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"s": {Capacity: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := wire.NewListener(reg, 1<<20)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go l.ServeUDP(pc)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		l.Shutdown(ctx)
	}()
	c, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e, _ := reg.Get("s")
	c.Write(frame("s", 0, "x", "y"))
	c.Write([]byte("garbage"))             // malformed: dropped
	c.Write(frame("nosuch", 0, "k"))       // unknown name: dropped
	c.Write(frame("s", wire.FlagAck, "z")) // ack flag invalid on UDP: dropped
	c.Write(frame("s", 0, "x"))
	deadline := time.Now().Add(5 * time.Second)
	for e.Live().N() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := e.Live().N(); n != 3 {
		t.Fatalf("N = %v, want 3", n)
	}
	st := l.Stats()
	if st.Datagrams != 2 || st.Drops != 3 {
		t.Fatalf("stats = %+v, want 2 datagrams, 3 drops", st)
	}
}

func TestShutdownDrains(t *testing.T) {
	l, addr, e := newTestListener(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(frame("s", wire.FlagAck, "k")); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, wire.AckLen)
	if _, err := io.ReadFull(c, ack); err != nil {
		t.Fatal(err)
	}
	// A graceful drain completes once clients hang up; with the
	// connection still open Shutdown would wait for the deadline and
	// force-close (frames are atomic either way).
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := l.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := e.Live().N(); n != 1 {
		t.Fatalf("N = %v, want 1", n)
	}
	// The drained listener refuses new serving loops.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ServeTCP(ln); err == nil {
		t.Fatal("ServeTCP after Shutdown did not error")
	}
}

// FuzzWireFrame pins the decoder's totality: arbitrary bytes must
// produce an error or a well-formed Frame, never a panic — the
// machine-checked //hh:nopanic contract of docs/WIRE.md's "error
// behavior" section. Valid frames must round-trip byte-exactly.
func FuzzWireFrame(f *testing.F) {
	f.Add(frame("queries", 0, "alpha", "beta"))
	f.Add(frame("s", wire.FlagAck))
	f.Add(frame("a.very-long_name.0", 0, "", "k"))
	f.Add([]byte(wire.Magic))
	f.Add([]byte("HHWB\x01\x00\x01\x00\x00\x00\x00\x00s"))
	f.Add([]byte("HHWA\x01\x00\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := wire.ParseFrame(data, 1<<20)
		if err != nil {
			return
		}
		if len(fr.Name) < 1 || len(fr.Name) > wire.MaxNameLen {
			t.Fatalf("accepted frame with name length %d", len(fr.Name))
		}
		// Re-encoding an accepted frame reproduces the input exactly —
		// parser and encoder agree on every byte.
		out := wire.AppendFrame(nil, string(fr.Name), fr.Flags, fr.Body)
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip mismatch:\n in  %q\n out %q", data, out)
		}
		// The batch body parses or errors, never panics (the listener
		// would kill/drop on error without ingesting).
		if keys, err := registry.AppendBinaryKeys(nil, fr.Body); err == nil {
			_ = keys
		}
	})
}
