// Package wire implements hhwire, the persistent binary ingest
// protocol of hhserverd: length-prefixed frames over raw TCP for
// reliable wire-speed ingest, and the same frame as a self-contained
// UDP datagram for lossy telemetry. The HTTP/JSON surface stays the
// control plane (create, query, merge, metrics); hhwire exists only
// for the one verb that dominates serving traffic — pushing batches of
// keys into a named summary — and strips it to the minimum: no
// per-request headers, no response unless asked, one persistent
// connection reused for millions of frames.
//
// docs/WIRE.md is the normative byte-level specification; this package
// and that document must agree exactly. The v1 frame:
//
//	offset  size  field
//	0       4     magic "HHWB"
//	4       1     version (0x01)
//	5       1     flags (bit 0 ACK; bits 1-7 reserved, must be zero)
//	6       2     name length N, uint16 little-endian, 1..128
//	8       4     body length B, uint32 little-endian, 0..max body
//	12      N     summary name (the registry name, UTF-8)
//	12+N    B     body: uvarint-length-prefixed key records — exactly
//	              the application/x-hh-batch format of POST /update
//
// Error handling is whole-or-nothing at frame granularity: a frame
// either parses completely and is ingested as one batch, or it is
// rejected and nothing of it reaches any summary. On TCP a rejected
// frame kills the connection (stream framing is unrecoverable once
// corrupt); on UDP a rejected datagram is silently dropped. The
// decoder is total — arbitrary bytes produce an error, never a panic
// (FuzzWireFrame pins this).
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/registry"
)

// Frame geometry and protocol constants. See docs/WIRE.md.
const (
	// Magic opens every ingest frame.
	Magic = "HHWB"
	// AckMagic opens every acknowledgement the server writes back.
	AckMagic = "HHWA"
	// Version is the only frame version this implementation speaks.
	// Compatibility policy: the version byte bumps on any change to the
	// frame layout; a server rejects versions it does not implement
	// (killing the TCP connection or dropping the datagram), so a
	// mixed-version fleet fails loudly rather than misparsing.
	Version = 1
	// HeaderLen is the fixed-size frame prefix before name and body.
	HeaderLen = 12
	// AckLen is the size of the acknowledgement message.
	AckLen = 8
	// FlagAck asks the server to acknowledge this frame after its batch
	// is ingested — the client's sync barrier. Valid on TCP only: a UDP
	// frame carrying it is malformed (datagrams promise no delivery, so
	// an ack would promise what the transport cannot).
	FlagAck = 1 << 0
	// MaxNameLen bounds the summary-name field, matching the registry's
	// name grammar (1-128 of [A-Za-z0-9._-]).
	MaxNameLen = 128
	// AckStatusOK is the only ack status v1 defines: the frame's batch
	// was ingested. Errors never produce an ack — the connection dies.
	AckStatusOK = 0
)

// Frame is one parsed ingest frame. Name and Body alias the buffer
// handed to the parser: they are valid only until the caller reuses it,
// the zero-copy contract the registry's borrowed-key summaries expect.
type Frame struct {
	Flags byte
	Name  []byte
	Body  []byte
}

// Ack reports whether the frame requests an acknowledgement.
func (f Frame) Ack() bool { return f.Flags&FlagAck != 0 }

// ParseHeader validates the fixed 12-byte frame prefix and returns the
// name and body lengths still to be read, plus the flags byte. maxBody
// bounds the body length (<= 0 means the registry default). h must be
// exactly HeaderLen bytes.
//
//hh:nopanic
func ParseHeader(h []byte, maxBody int) (nameLen, bodyLen int, flags byte, err error) {
	if len(h) != HeaderLen {
		return 0, 0, 0, fmt.Errorf("wire: header is %d bytes, want %d", len(h), HeaderLen)
	}
	if string(h[0:4]) != Magic {
		return 0, 0, 0, fmt.Errorf("wire: bad magic %q", h[0:4])
	}
	if h[4] != Version {
		return 0, 0, 0, fmt.Errorf("wire: unsupported version %d (this side speaks %d)", h[4], Version)
	}
	flags = h[5]
	if flags&^FlagAck != 0 {
		return 0, 0, 0, fmt.Errorf("wire: reserved flag bits set: %#02x", flags)
	}
	nameLen = int(binary.LittleEndian.Uint16(h[6:8]))
	if nameLen < 1 || nameLen > MaxNameLen {
		return 0, 0, 0, fmt.Errorf("wire: name length %d outside [1, %d]", nameLen, MaxNameLen)
	}
	if maxBody <= 0 {
		maxBody = registry.DefaultMaxBodyBytes
	}
	b := binary.LittleEndian.Uint32(h[8:12])
	if uint64(b) > uint64(maxBody) {
		return 0, 0, 0, fmt.Errorf("wire: body length %d exceeds the %d-byte limit", b, maxBody)
	}
	bodyLen = int(b)
	return nameLen, bodyLen, flags, nil
}

// ParseFrame parses one self-contained frame — the shape of a UDP
// datagram, where buf is exactly one frame with no trailing bytes.
// The returned Frame aliases buf.
//
//hh:nopanic
func ParseFrame(buf []byte, maxBody int) (Frame, error) {
	if len(buf) < HeaderLen {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes is shorter than the %d-byte header", len(buf), HeaderLen)
	}
	nameLen, bodyLen, flags, err := ParseHeader(buf[:HeaderLen], maxBody)
	if err != nil {
		return Frame{}, err
	}
	if len(buf) != HeaderLen+nameLen+bodyLen {
		return Frame{}, fmt.Errorf("wire: frame length %d does not match header (want %d)", len(buf), HeaderLen+nameLen+bodyLen)
	}
	return Frame{
		Flags: flags,
		Name:  buf[HeaderLen : HeaderLen+nameLen],
		Body:  buf[HeaderLen+nameLen:],
	}, nil
}

// AppendFrame appends one complete frame to dst: header, name, body.
// body must already be in the uvarint record format (see
// registry.AppendBinaryRecord). It panics if name or body exceed the
// frame's field limits — both are caller bugs, not wire conditions.
func AppendFrame(dst []byte, name string, flags byte, body []byte) []byte {
	if len(name) < 1 || len(name) > MaxNameLen {
		panic(fmt.Sprintf("wire: name length %d outside [1, %d]", len(name), MaxNameLen))
	}
	if uint64(len(body)) > uint64(^uint32(0)) {
		panic("wire: body exceeds the uint32 length field")
	}
	dst = append(dst, Magic...)
	dst = append(dst, Version, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, name...)
	return append(dst, body...)
}

// AppendAck appends one acknowledgement message to dst: AckMagic,
// version, status, and two reserved zero bytes.
func AppendAck(dst []byte, status byte) []byte {
	dst = append(dst, AckMagic...)
	return append(dst, Version, status, 0, 0)
}

// ParseAck validates an acknowledgement message and returns its status.
//
//hh:nopanic
func ParseAck(buf []byte) (status byte, err error) {
	if len(buf) != AckLen {
		return 0, fmt.Errorf("wire: ack is %d bytes, want %d", len(buf), AckLen)
	}
	if string(buf[0:4]) != AckMagic {
		return 0, fmt.Errorf("wire: bad ack magic %q", buf[0:4])
	}
	if buf[4] != Version {
		return 0, fmt.Errorf("wire: unsupported ack version %d", buf[4])
	}
	if buf[6] != 0 || buf[7] != 0 {
		return 0, fmt.Errorf("wire: reserved ack bytes set")
	}
	return buf[5], nil
}
