package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/registry"
)

// Listener serves the hhwire ingest protocol over a registry: TCP
// connections via ServeTCP, UDP datagrams via ServeUDP, both feeding
// Entry.IngestBatch. One Listener can serve both transports at once;
// Shutdown drains them together.
//
// Concurrency model: one goroutine per TCP connection owns that
// connection's read buffer, frame scratch, and key slice — frames are
// parsed zero-copy into connection-local memory and handed to the
// summary's borrowed-key batch path, so steady-state ingest performs
// no per-frame allocations and shares nothing across connections
// until the summary's own synchronization takes over.
type Listener struct {
	reg     *registry.Registry
	maxBody int

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
	pcs    []net.PacketConn
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	frames atomic.Uint64 // TCP frames ingested
	items  atomic.Uint64 // keys ingested across both transports
	kills  atomic.Uint64 // TCP connections killed on protocol errors
	drops  atomic.Uint64 // UDP datagrams dropped (malformed or unknown name)
	grams  atomic.Uint64 // UDP datagrams ingested
}

// Stats is a point-in-time snapshot of a Listener's counters.
type Stats struct {
	Frames    uint64 // TCP frames ingested
	Items     uint64 // keys ingested across both transports
	Kills     uint64 // TCP connections killed on protocol errors
	Datagrams uint64 // UDP datagrams ingested
	Drops     uint64 // UDP datagrams dropped
}

// NewListener builds a Listener over reg. maxBody bounds a single
// frame's body; <= 0 means registry.DefaultMaxBodyBytes.
func NewListener(reg *registry.Registry, maxBody int64) *Listener {
	if maxBody <= 0 {
		maxBody = registry.DefaultMaxBodyBytes
	}
	return &Listener{reg: reg, maxBody: int(maxBody), conns: make(map[net.Conn]struct{})}
}

// Stats returns a snapshot of the listener's counters.
func (l *Listener) Stats() Stats {
	return Stats{
		Frames:    l.frames.Load(),
		Items:     l.items.Load(),
		Kills:     l.kills.Load(),
		Datagrams: l.grams.Load(),
		Drops:     l.drops.Load(),
	}
}

// ServeTCP accepts connections from ln and serves frames from each
// until it closes or Shutdown runs. It blocks; the caller owns the
// goroutine. After Shutdown it returns nil.
func (l *Listener) ServeTCP(ln net.Listener) error {
	if !l.track(ln, nil) {
		ln.Close()
		return errors.New("wire: listener is shut down")
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			if l.isClosed() {
				return nil
			}
			return err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return nil
		}
		l.conns[c] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serveConn(c)
	}
}

// ServeUDP reads datagrams from pc — each one self-contained frame —
// until it closes or Shutdown runs. Malformed or unroutable datagrams
// are dropped and counted, never answered: UDP mode is the lossy
// telemetry path, and a reply could amplify a spoofed source. It
// blocks; the caller owns the goroutine. After Shutdown it returns nil.
func (l *Listener) ServeUDP(pc net.PacketConn) error {
	if !l.track(nil, pc) {
		pc.Close()
		return errors.New("wire: listener is shut down")
	}
	// track counted this loop in wg (under the same lock Shutdown takes
	// to set closed), so Shutdown always waits for a mid-ingest
	// datagram to finish.
	defer l.wg.Done()
	// 64 KiB covers the largest UDP payload; a frame bigger than the
	// datagram that carried it cannot exist.
	buf := make([]byte, 64<<10)
	var keys []string
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			if l.isClosed() {
				return nil
			}
			return err
		}
		f, err := ParseFrame(buf[:n], l.maxBody)
		if err != nil || f.Ack() {
			l.drops.Add(1)
			continue
		}
		e, ok := l.reg.Get(bstr(f.Name))
		if !ok {
			l.drops.Add(1)
			continue
		}
		keys, err = registry.AppendBinaryKeysBorrowed(keys[:0], f.Body)
		if err != nil {
			l.drops.Add(1)
			continue
		}
		if err := e.IngestBatch(keys); err != nil {
			// WAL append failed: the datagram was not applied. UDP is
			// the lossy plane — count the drop and keep serving.
			l.drops.Add(1)
			continue
		}
		l.grams.Add(1)
		l.items.Add(uint64(len(keys)))
	}
}

// serveConn runs one TCP connection's frame loop. Any protocol error —
// bad magic or version, reserved flags, oversized fields, an unknown
// summary name, a malformed batch body — kills the connection: once a
// length-prefixed stream is corrupt there is no resynchronization
// point, and killing loudly beats ingesting garbage. A batch is parsed
// completely before any of it is ingested, so a killed connection
// never leaves a summary partially updated from the bad frame.
func (l *Listener) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
		l.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [HeaderLen]byte
	var frame []byte // name+body scratch, reused across frames
	var keys []string
	var ack []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// EOF between frames is the clean client close; anything
			// else (mid-header cut, read error) is just a dead peer.
			return
		}
		nameLen, bodyLen, flags, err := ParseHeader(hdr[:], l.maxBody)
		if err != nil {
			l.kills.Add(1)
			return
		}
		need := nameLen + bodyLen
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		if _, err := io.ReadFull(br, frame); err != nil {
			l.kills.Add(1)
			return
		}
		e, ok := l.reg.Get(bstr(frame[:nameLen]))
		if !ok {
			l.kills.Add(1)
			return
		}
		// Zero-copy parse: keys alias frame, which stays untouched
		// until IngestBatch returns; registry summaries clone any key
		// they retain (borrowed-key ingest).
		keys, err = registry.AppendBinaryKeysBorrowed(keys[:0], frame[nameLen:])
		if err != nil {
			l.kills.Add(1)
			return
		}
		if err := e.IngestBatch(keys); err != nil {
			// WAL append failed: nothing was applied, and acking later
			// frames while this one silently vanished would break the
			// protocol's in-order promise — kill the connection so the
			// client knows exactly which suffix to retry.
			l.kills.Add(1)
			return
		}
		l.frames.Add(1)
		l.items.Add(uint64(len(keys)))
		if flags&FlagAck != 0 {
			// An ack promises the batch is applied, not merely queued:
			// with a pipelined summary (Spec.Pipeline) the batch may
			// still be parked in a shard ring, so drain first. No-op for
			// unpipelined summaries, so the common path stays free.
			e.Flush()
			ack = AppendAck(ack[:0], AckStatusOK)
			if _, err := c.Write(ack); err != nil {
				return
			}
		}
	}
}

// Shutdown stops accepting, closes the UDP sockets, and waits for the
// in-flight TCP connections to finish their current frames and close.
// When ctx expires first, the remaining connections are force-closed
// (their in-flight frame is either fully ingested or not at all — the
// whole-or-nothing parse holds under force-close too) and ctx's error
// is returned.
func (l *Listener) Shutdown(ctx context.Context) error {
	l.mu.Lock()
	l.closed = true
	lns, pcs := l.lns, l.pcs
	l.lns, l.pcs = nil, nil
	l.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, pc := range pcs {
		pc.Close()
	}
	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		for c := range l.conns {
			c.Close()
		}
		l.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// track registers a listener or packet conn for Shutdown, refusing
// after shutdown has begun.
func (l *Listener) track(ln net.Listener, pc net.PacketConn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	if ln != nil {
		l.lns = append(l.lns, ln)
	}
	if pc != nil {
		l.pcs = append(l.pcs, pc)
		l.wg.Add(1) // the ServeUDP loop; released by its deferred Done
	}
	return true
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// bstr views b as a string without copying — valid only for the
// duration of a lookup that does not retain it.
//
//hh:nopanic
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
