package experiments

import (
	"repro/internal/core"
	"repro/internal/frequent"
	"repro/internal/harness"
	"repro/internal/recovery"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

// E5MSparse verifies Theorem 7: an *underestimating* counter algorithm
// with m = k(1/ε + 1) counters yields an m-sparse recovery (keep every
// counter) with Lp error at most (1+ε)(ε/k)^{1−1/p}·F1^res(k). Both
// naturally-underestimating FREQUENT and SPACESAVING with the Section 4.2
// global transform (c′_i = max(0, c_i − Δ)) are measured, next to the
// k-sparse recovery of the same summary for comparison — showing when the
// extra counters help.
func E5MSparse(cfg Config) *harness.Table {
	const k = 10
	g := core.TailGuarantee{A: 1, B: 1}
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	truth, _ := groundTruth(s, cfg.Universe)
	fExact := map[uint64]float64(truth.Sparse())

	t := harness.NewTable(
		"E5 / Theorem 7: m-sparse recovery from underestimating algorithms",
		"algorithm", "eps", "m", "p", "m-sparse err", "bound", "k-sparse err",
	)
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		m := recovery.CountersForTheorem7(k, eps, g)

		fr := frequent.New[uint64](m)
		ss := spacesaving.New[uint64](m)
		for _, x := range s {
			fr.Update(x)
			ss.Update(x)
		}
		under := map[string][]core.Entry[uint64]{
			"frequent":       fr.Entries(),
			"spacesaving-ue": recovery.UnderestimateGlobal(ss.Entries(), ss.MinCount()),
		}
		for _, name := range []string{"frequent", "spacesaving-ue"} {
			entries := under[name]
			fM := recovery.MSparse(entries)
			fK := recovery.KSparse(entries, k)
			for _, p := range []float64{1, 2} {
				got := recovery.LpError(fExact, fM, p)
				bound := recovery.Theorem7Bound(eps, k, truth.Res1(k), p)
				kerr := recovery.LpError(fExact, fK, p)
				t.Addf(name, eps, m, harness.F(p), got, bound, kerr)
			}
		}
	}
	t.Note("k=%d; spacesaving-ue applies the global underestimate transform of Section 4.2", k)
	return t
}
