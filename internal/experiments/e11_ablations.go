package experiments

import (
	"time"

	"repro/internal/harness"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// E11Ablations quantifies the design choices DESIGN.md calls out:
//
//   - SPACESAVING backing structure: Stream-Summary bucket list (O(1) per
//     update) vs (count, id) min-heap (O(log m), deterministic tie-break);
//   - FREQUENT bucket-list implementation vs the naive O(m)-decrement
//     transcription;
//   - Count-Min plain vs conservative update (error, same speed class).
//
// Throughput is wall-clock over the whole stream — indicative, not a
// statistically rigorous benchmark (bench_test.go holds the testing.B
// versions).
func E11Ablations(cfg Config) *harness.Table {
	const m = 1000
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	_, freq := groundTruth(s, cfg.Universe)

	t := harness.NewTable(
		"E11: ablations — backing structures and update rules",
		"variant", "ns/update", "max err", "mean err",
	)

	timeAlg := func(update func(uint64)) float64 {
		start := time.Now()
		for _, x := range s {
			update(x)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(s))
	}

	for _, name := range []string{"spacesaving", "spacesaving-heap", "frequent", "lossycounting"} {
		alg := counterAlg(name, m)
		ns := timeAlg(alg.Update)
		met := harness.Evaluate(estimator(alg), freq)
		t.Addf(name, ns, met.MaxErr, met.MeanErr)
	}

	cmPlain := sketch.NewCountMin(4, m/4, cfg.Seed)
	ns := timeAlg(cmPlain.Update)
	met := harness.Evaluate(func(i uint64) float64 { return float64(cmPlain.Estimate(i)) }, freq)
	t.Addf("count-min", ns, met.MaxErr, met.MeanErr)

	cmCons := sketch.NewCountMinConservative(4, m/4, cfg.Seed)
	ns = timeAlg(cmCons.Update)
	met = harness.Evaluate(func(i uint64) float64 { return float64(cmCons.Estimate(i)) }, freq)
	t.Addf("count-min-conservative", ns, met.MaxErr, met.MeanErr)

	cs := sketch.NewCountSketch(5, m/5, cfg.Seed)
	ns = timeAlg(cs.Update)
	met = harness.Evaluate(func(i uint64) float64 { return float64(cs.EstimateNonNegative(i)) }, freq)
	t.Addf("count-sketch", ns, met.MaxErr, met.MeanErr)

	t.Note("m=%d counters (sketches sized to the same word budget); stream N=%d", m, cfg.N)
	return t
}
