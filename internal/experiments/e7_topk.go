package experiments

import (
	"repro/internal/harness"
	"repro/internal/stream"
	"repro/internal/zipfmath"
)

// E7TopK verifies Theorem 9: on α-Zipfian data with α > 1, a counter
// algorithm with a k′-tail guarantee for k′ = Θ(k(k/α)^{1/α}) retrieves
// the top k elements in the correct order. For each (α, k) the table
// reports the theorem's counter budget m*, whether the ordered top-k is
// exact at m*, and the smallest budget that empirically achieves exact
// ordering (showing how conservative the theorem is).
func E7TopK(cfg Config) *harness.Table {
	t := harness.NewTable(
		"E7 / Theorem 9: ordered top-k on Zipfian data",
		"algorithm", "alpha", "k", "m* (theorem)", "exact@m*", "min m (measured)",
	)
	for _, alpha := range []float64{1.5, 2, 3} {
		s := stream.Zipf(cfg.Universe, alpha, cfg.N, stream.OrderRandom, cfg.Seed)
		truth, _ := groundTruth(s, cfg.Universe)
		for _, k := range []int{5, 10, 20} {
			want := truth.TopK(k)
			mStar := zipfmath.Theorem9Counters(cfg.Universe, k, 1, 1, alpha)
			// Guard against degenerate tiny budgets.
			if mStar <= k {
				mStar = k + 1
			}
			freq := truth.Dense(cfg.Universe)
			for _, name := range htcNames() {
				exactAt := orderedTopKExact(name, mStar, k, s, want, freq)
				minM := searchMinM(name, k, s, want, freq, mStar)
				ok := "yes"
				if !exactAt {
					ok = "NO"
				}
				t.Addf(name, harness.F(alpha), k, mStar, ok, minM)
			}
		}
	}
	t.Note("exact@m* must be yes; min m shows the theorem budget's slack")
	return t
}

// orderedTopKExact reports whether the algorithm's k largest counters, in
// order, match the true ordered top-k. Positions whose true frequencies
// tie (possible after integer rounding of the Zipf vector; the theorem's
// f_k > f_{k+1} gap assumption is vacuous there) accept any of the tied
// items.
func orderedTopKExact(name string, m, k int, s []uint64, want []uint64, freq []float64) bool {
	alg := counterAlg(name, m)
	for _, x := range s {
		alg.Update(x)
	}
	got := topKItems(alg.Entries(), k)
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if freq[got[i]] != freq[want[i]] {
			return false
		}
	}
	return true
}

// searchMinM finds the smallest counter budget in [k+1, cap] achieving an
// exact ordered top-k, by binary search (correctness of ordering is
// monotone in m in practice; the search is a measurement aid, not a
// proof).
func searchMinM(name string, k int, s []uint64, want []uint64, freq []float64, capM int) int {
	lo, hi := k+1, capM
	if !orderedTopKExact(name, hi, k, s, want, freq) {
		// Theorem budget insufficient (should not happen); report failure
		// sentinel.
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if orderedTopKExact(name, mid, k, s, want, freq) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
