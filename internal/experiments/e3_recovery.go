package experiments

import (
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/recovery"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

// E3SparseRecovery verifies Theorem 5: running SPACESAVING with
// m = k(2/ε + 1) counters (the one-sided budget) and keeping the top k
// counters yields a k-sparse vector f′ with
//
//	‖f − f′‖p ≤ ε·F1^res(k)/k^{1−1/p} + (F_p^res(k))^{1/p}
//
// for p = 1 and p = 2, across an ε sweep. (F_p^res(k))^{1/p} is the error
// of the best possible k-sparse representation, so the "headroom" column
// shows how close the recovery is to optimal.
func E3SparseRecovery(cfg Config) *harness.Table {
	const k = 10
	g := core.TailGuarantee{A: 1, B: 1}
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	truth, _ := groundTruth(s, cfg.Universe)
	fExact := map[uint64]float64(truth.Sparse())

	t := harness.NewTable(
		"E3 / Theorem 5: k-sparse recovery error vs bound (SPACESAVING, one-sided budget)",
		"eps", "m", "p", "Lp err", "bound", "optimal", "err/bound",
	)
	for _, eps := range []float64{0.5, 0.2, 0.1, 0.05} {
		m := recovery.CountersForTheorem5(k, eps, g, true)
		alg := spacesaving.New[uint64](m)
		for _, x := range s {
			alg.Update(x)
		}
		fPrime := recovery.KSparse(alg.Entries(), k)
		for _, p := range []float64{1, 2} {
			got := recovery.LpError(fExact, fPrime, p)
			resP := truth.ResP(k, p)
			bound := recovery.Theorem5Bound(eps, k, truth.Res1(k), resP, p)
			optimal := recovery.Theorem5Bound(0, k, 0, resP, p) // (F_p^res)^{1/p}
			t.Addf(eps, m, harness.F(p), got, bound, optimal, got/bound)
		}
	}
	t.Note("k=%d; workload Zipf alpha=%.2f N=%d n=%d", k, cfg.Alpha, cfg.N, cfg.Universe)
	t.Note("paper claim: O(k) counters suffice where sketches need Omega(k log(n/k)) (Section 4.1)")
	return t
}
