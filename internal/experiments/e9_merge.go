package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/merge"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

// E9Merge verifies Theorem 11: summarising ℓ stream shards independently
// with SPACESAVING (tail constants (1,1)) and merging the k-sparse
// recoveries yields a summary of the union with tail constants (3, 2).
// The table sweeps ℓ and reports the merged summary's worst error against
// the (3,2) bound, next to a single-summary baseline over the whole
// stream and the direct counter-merge ablation.
func E9Merge(cfg Config) *harness.Table {
	const m, k = 120, 10
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	truth, freq := groundTruth(s, cfg.Universe)
	res := truth.Res1(k)
	singleBound := core.TailGuarantee{A: 1, B: 1}.Bound(m, k, res)
	mergedBound := merge.MergedGuarantee(core.TailGuarantee{A: 1, B: 1}).Bound(m, k, res)

	t := harness.NewTable(
		"E9 / Theorem 11: merging summaries of stream shards",
		"method", "shards", "max err", "bound", "ratio",
	)

	// Baseline: one summary over the entire stream.
	base := spacesaving.New[uint64](m)
	for _, x := range s {
		base.Update(x)
	}
	baseMet := harness.Evaluate(estimator(base), freq)
	t.Addf("single-summary", 1, baseMet.MaxErr, singleBound, baseMet.MaxErr/singleBound)

	for _, l := range []int{2, 4, 8, 16} {
		summaries := make([][]core.Entry[uint64], l)
		mins := make([]uint64, l)
		per := len(s) / l
		for i := 0; i < l; i++ {
			lo, hi := i*per, (i+1)*per
			if i == l-1 {
				hi = len(s)
			}
			alg := spacesaving.New[uint64](m)
			for _, x := range s[lo:hi] {
				alg.Update(x)
			}
			summaries[i] = alg.Entries()
			mins[i] = alg.MinCount()
		}
		merged := merge.KSparse(m, k, summaries...)
		worst := 0.0
		for i, f := range freq {
			if d := math.Abs(f - merged.EstimateWeighted(uint64(i))); d > worst {
				worst = d
			}
		}
		t.Addf("ksparse-merge", l, worst, mergedBound, worst/mergedBound)

		mergedAll := merge.MSparse(m, summaries...)
		worstAll := 0.0
		for i, f := range freq {
			if d := math.Abs(f - mergedAll.EstimateWeighted(uint64(i))); d > worstAll {
				worstAll = d
			}
		}
		t.Addf("msparse-merge", l, worstAll, mergedBound, worstAll/mergedBound)

		// Ablation: direct pairwise counter merge (fold left).
		acc := summaries[0]
		accMin := mins[0]
		for i := 1; i < l; i++ {
			acc = merge.Direct(m, acc, summaries[i], accMin, mins[i])
			// The folded summary's "min count" for subsequent merges is
			// its smallest kept counter.
			if len(acc) > 0 {
				accMin = acc[len(acc)-1].Count
			}
		}
		est := make(map[uint64]float64, len(acc))
		for _, e := range acc {
			est[e.Item] = float64(e.Count)
		}
		worstD := 0.0
		for i, f := range freq {
			if d := math.Abs(f - est[uint64(i)]); d > worstD {
				worstD = d
			}
		}
		t.Addf("direct-merge", l, worstD, mergedBound, worstD/mergedBound)
	}
	// Boundary finding: with homogeneous shards the k-sparse merge's
	// error is at least f_{k+1} (the union's (k+1)-th item is dropped
	// from every shard's top-k), which exceeds the stated bound once
	// m ≳ 2k + 3·F1res(k)/f_{k+1}. Demonstrate at a large budget.
	bigM := 2*k + int(3*res/sortedCopyDesc(freq)[k]) + 40
	summaries := make([][]core.Entry[uint64], 4)
	per := len(s) / 4
	for i := 0; i < 4; i++ {
		lo, hi := i*per, (i+1)*per
		if i == 3 {
			hi = len(s)
		}
		alg := spacesaving.New[uint64](bigM)
		for _, x := range s[lo:hi] {
			alg.Update(x)
		}
		summaries[i] = alg.Entries()
	}
	bigBound := merge.MergedGuarantee(core.TailGuarantee{A: 1, B: 1}).Bound(bigM, k, res)
	kBig := merge.KSparse(bigM, k, summaries...)
	mBig := merge.MSparse(bigM, summaries...)
	worstK, worstM := 0.0, 0.0
	for i, f := range freq {
		if d := math.Abs(f - kBig.EstimateWeighted(uint64(i))); d > worstK {
			worstK = d
		}
		if d := math.Abs(f - mBig.EstimateWeighted(uint64(i))); d > worstM {
			worstM = d
		}
	}
	t.Addf("ksparse-merge@m="+harness.F(float64(bigM)), 4, worstK, bigBound, worstK/bigBound)
	t.Addf("msparse-merge@m="+harness.F(float64(bigM)), 4, worstM, bigBound, worstM/bigBound)

	t.Note("m=%d, k=%d; ksparse-merge ratio must be <= 1 (Theorem 11)", m, k)
	t.Note("boundary rows (m=%d): the literal k-sparse construction loses f_{k+1} with homogeneous shards", bigM)
	t.Note("and can exceed the stated bound; refeeding all counters (msparse) stays within it — see EXPERIMENTS.md")
	return t
}
