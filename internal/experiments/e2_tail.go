package experiments

import (
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stream"
	"repro/internal/vector"
)

// E2TailGuarantee verifies the paper's main result (Theorem 2 with the
// sharpened Appendix B/C constants A = B = 1): for FREQUENT and
// SPACESAVING, every item's error is at most F1^res(k)/(m−k), on every
// arrival order and for every k < m. The table reports the worst measured
// error, the bound, their ratio, and the number of violating items
// (which must be zero).
//
// LOSSYCOUNTING rows are a *negative control*: it is a counter algorithm
// but not heavy-tolerant, and it does violate the residual bound on
// several order/skew combinations — showing the theorem genuinely
// depends on the HTC structure, not on being counter-based.
func E2TailGuarantee(cfg Config) *harness.Table {
	const m = 100
	t := harness.NewTable(
		"E2 / Theorem 2 + Appendices B,C: k-tail guarantee, all arrival orders",
		"algorithm", "alpha", "order", "k", "max err", "bound", "ratio", "violations",
	)
	for _, alpha := range []float64{0.8, cfg.Alpha, 1.5} {
		for _, order := range stream.Orders() {
			s := stream.Zipf(cfg.Universe, alpha, cfg.N, order, cfg.Seed)
			_, freq := groundTruth(s, cfg.Universe)
			sorted := sortedCopyDesc(freq)
			for _, name := range []string{"frequent", "spacesaving", "lossycounting"} {
				alg := counterAlg(name, m)
				for _, x := range s {
					alg.Update(x)
				}
				met := harness.Evaluate(estimator(alg), freq)
				label := name
				if name == "lossycounting" {
					label = "lossycounting*"
				}
				for _, k := range []int{1, 10, 50} {
					bound := core.TailGuarantee{A: 1, B: 1}.Bound(m, k, vector.ResP(sorted, k, 1))
					ratio := 0.0
					if bound > 0 {
						ratio = met.MaxErr / bound
					}
					viol := harness.Violations(estimator(alg), freq, bound)
					t.Addf(label, harness.F(alpha), order.String(), k, met.MaxErr, bound, ratio, viol)
				}
			}
		}
	}
	t.Note("m=%d counters; ratio must be <= 1 and violations 0 for the theorem to hold", m)
	t.Note("lossycounting* rows are a negative control: not heavy-tolerant, expected to violate on some orders")
	return t
}
