package experiments

import (
	"repro/internal/harness"
	"repro/internal/stream"
	"repro/internal/zipfmath"
)

// E6Zipf verifies Theorem 8: on Zipfian data with parameter α ≥ 1, a
// counter algorithm with tail constants (1, 1) run with
// m = 2·(1/ε)^{1/α} counters has every per-item error at most εF1 —
// sublinear in 1/ε for α > 1. The table sweeps α and ε and reports the
// measured worst error against εN.
func E6Zipf(cfg Config) *harness.Table {
	t := harness.NewTable(
		"E6 / Theorem 8: Zipfian error bound with m = 2·(1/eps)^(1/alpha)",
		"algorithm", "alpha", "eps", "m", "max err", "eps*F1", "ratio",
	)
	for _, alpha := range []float64{1.2, 1.5, 2, 3} {
		for _, eps := range []float64{0.01, 0.005, 0.001} {
			m := zipfmath.Theorem8Counters(1, 1, eps, alpha)
			s := stream.Zipf(cfg.Universe, alpha, cfg.N, stream.OrderRandom, cfg.Seed)
			_, freq := groundTruth(s, cfg.Universe)
			for _, name := range htcNames() {
				alg := counterAlg(name, m)
				for _, x := range s {
					alg.Update(x)
				}
				met := harness.Evaluate(estimator(alg), freq)
				bound := eps * float64(cfg.N)
				t.Addf(name, harness.F(alpha), eps, m, met.MaxErr, bound, met.MaxErr/bound)
			}
		}
	}
	t.Note("paper claim: error <= eps*F1 with only O(eps^(-1/alpha)) counters (Theorem 8)")
	return t
}
