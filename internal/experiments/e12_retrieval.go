package experiments

import (
	"repro/internal/harness"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// E12Retrieval measures end-to-end heavy-hitter *retrieval* (not just
// point estimation) at equal space: the counter algorithms' summaries
// directly contain their candidates, while the Count-Min baseline needs a
// bolted-on top-k tracker that can miss items whose estimates rise while
// untracked. The table reports top-k recall and the rank-weighted
// ordering agreement against exact ground truth.
//
// This experiment substantiates the paper's practical framing (Section
// 1): "counter algorithms are strictly preferable to sketches when both
// are applicable".
func E12Retrieval(cfg Config) *harness.Table {
	const k = 20
	t := harness.NewTable(
		"E12: top-k retrieval recall at equal space",
		"algorithm", "alpha", "words", "recall@k", "ordered-prefix",
	)
	for _, alpha := range []float64{1.05, cfg.Alpha, 1.5} {
		s := stream.Zipf(cfg.Universe, alpha, cfg.N, stream.OrderRandom, cfg.Seed)
		truth, _ := groundTruth(s, cfg.Universe)
		want := truth.TopK(k)
		wantSet := make(map[uint64]bool, k)
		for _, id := range want {
			wantSet[id] = true
		}
		for _, words := range []int{240, 960} {
			m := counterBudgetToM(words)
			for _, name := range htcNames() {
				alg := counterAlg(name, m)
				for _, x := range s {
					alg.Update(x)
				}
				got := topKItems(alg.Entries(), k)
				t.Addf(name, harness.F(alpha), m*entryWords, recallOf(got, wantSet), orderedPrefix(got, want))
			}
			// Count-Min + tracker at the same word budget.
			depth := 4
			width := (words - 2*depth - 2*k) / depth
			if width < 1 {
				width = 1
			}
			sys := sketch.NewCountMinTopK(depth, width, k, cfg.Seed)
			for _, x := range s {
				sys.Update(x)
			}
			var got []uint64
			for _, ti := range sys.Top() {
				got = append(got, ti.Item)
			}
			t.Addf("count-min+topk", harness.F(alpha), sys.Words(), recallOf(got, wantSet), orderedPrefix(got, want))
		}
	}
	t.Note("recall@k = fraction of the true top-%d present in the answer", k)
	t.Note("ordered-prefix = length of the answer's prefix matching the true ranking exactly")
	return t
}

// recallOf returns |got ∩ want| / |want|.
func recallOf(got []uint64, want map[uint64]bool) float64 {
	if len(want) == 0 {
		return 1
	}
	hits := 0
	for _, id := range got {
		if want[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

// orderedPrefix returns the number of leading positions where got matches
// want exactly.
func orderedPrefix(got, want []uint64) int {
	n := 0
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			break
		}
		n++
	}
	return n
}
