package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/recovery"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

// E4ResidualEstimation verifies Theorem 6: with m = k(1/ε + 1) counters,
// the statistic F1 − ‖f′‖1 (stream length minus the top-k counter mass)
// estimates F1^res(k) within a (1 ± ε) factor. The table reports the
// relative error of the estimator against the prescribed ε.
func E4ResidualEstimation(cfg Config) *harness.Table {
	const k = 10
	g := core.TailGuarantee{A: 1, B: 1}
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	truth, _ := groundTruth(s, cfg.Universe)
	res := truth.Res1(k)

	t := harness.NewTable(
		"E4 / Theorem 6: estimating F1^res(k) from the summary",
		"eps", "m", "true res", "estimate", "rel err", "within (1±eps)",
	)
	for _, eps := range []float64{0.5, 0.2, 0.1, 0.05} {
		m := recovery.CountersForTheorem6(k, eps, g)
		alg := spacesaving.New[uint64](m)
		for _, x := range s {
			alg.Update(x)
		}
		got := recovery.ResidualEstimate(alg.Entries(), k, truth.F1())
		rel := math.Abs(got-res) / res
		ok := "yes"
		if rel > eps {
			ok = "NO"
		}
		t.Addf(eps, m, res, got, rel, ok)
	}
	t.Note("k=%d; estimator is F1 − ||f'||_1 with f' the top-k counters", k)
	return t
}
