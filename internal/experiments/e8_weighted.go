package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/frequent"
	"repro/internal/harness"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

// E8Weighted verifies Theorem 10: FREQUENTR and SPACESAVINGR keep the
// k-tail guarantee with A = B = 1 on real-valued non-negative update
// streams. The workload gives each item a Zipfian total weight delivered
// in randomly sized bursts; the table reports worst error against the
// bound for several k.
func E8Weighted(cfg Config) *harness.Table {
	const m = 100
	t := harness.NewTable(
		"E8 / Theorem 10: weighted streams (FREQUENTR, SPACESAVINGR)",
		"algorithm", "k", "max err", "bound", "ratio", "violations",
	)
	ups := stream.WeightedZipf(cfg.Universe, cfg.Alpha, float64(cfg.N), 4, cfg.Seed)
	truth := exact.New()
	algs := map[string]core.WeightedAlgorithm[uint64]{
		"frequentR":    frequent.NewR[uint64](m),
		"spacesavingR": spacesaving.NewR[uint64](m),
	}
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		for _, alg := range algs {
			alg.UpdateWeighted(u.Item, u.Weight)
		}
	}
	freq := truth.Dense(cfg.Universe)
	for _, name := range []string{"frequentR", "spacesavingR"} {
		alg := algs[name]
		est := func(i uint64) float64 { return alg.EstimateWeighted(i) }
		met := harness.Evaluate(est, freq)
		for _, k := range []int{1, 10, 50} {
			bound := core.TailGuarantee{A: 1, B: 1}.Bound(m, k, truth.Res1(k))
			viol := 0
			for i, f := range freq {
				// Tolerate float accumulation noise relative to the mass.
				if math.Abs(f-est(uint64(i))) > bound+1e-9*truth.F1() {
					viol++
				}
			}
			t.Addf(name, k, met.MaxErr, bound, met.MaxErr/bound, viol)
		}
	}
	t.Note("m=%d counters; weighted Zipf alpha=%.2f, total weight %.0f", m, cfg.Alpha, float64(cfg.N))
	return t
}
