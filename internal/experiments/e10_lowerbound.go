package experiments

import (
	"math"

	"repro/internal/harness"
	"repro/internal/stream"
)

// E10LowerBound plays out the Theorem 13 adversary against the concrete
// algorithms: both streams share a prefix of m+k items occurring X times
// each; the adversary then inspects the summary, finds k items with no
// counter, and continues stream A with those items and stream B with k
// fresh items. The worst estimation error over the two continuations must
// be at least F1^res(k)/(2m + 2k/X) — and, since FREQUENT and SPACESAVING
// meet the upper bound F1^res(k)/(m−k), the measured value is sandwiched
// within a factor ≈ 2 of optimal.
func E10LowerBound(cfg Config) *harness.Table {
	const m, k = 50, 10
	t := harness.NewTable(
		"E10 / Theorem 13: adversarial lower bound (error sandwiched by bounds)",
		"algorithm", "X", "adv err", "lower bound", "upper bound", "err>=lower", "err<=upper",
	)
	for _, x := range []int{10, 100, 1000} {
		prefix := stream.LowerBoundPrefix(m, k, x)
		for _, name := range htcNames() {
			advErr, res := adversaryError(name, m, k, x, prefix)
			lower := res / (2*float64(m) + 2*float64(k)/float64(x))
			upper := res / float64(m-k)
			okLo, okHi := "yes", "yes"
			if advErr < lower {
				okLo = "NO"
			}
			if advErr > upper+0.5 { // +1/2 absorbs the ±1 of the discrete argument
				okHi = "NO"
			}
			t.Addf(name, x, advErr, lower, upper, okLo, okHi)
		}
	}
	t.Note("m=%d, k=%d; F1res(k) measured on stream A (= Xm per the proof)", m, k)
	t.Note("paper claim: any counter algorithm errs by >= F1res(k)/2m, so m counters are optimal up to ~2x")
	return t
}

// adversaryError runs the Theorem 13 game and returns the worst error the
// adversary forces on either continuation, together with F1^res(k) of
// stream A.
func adversaryError(name string, m, k, x int, prefix []uint64) (advErr, res float64) {
	// Inspect the summary after the prefix to find k zero-counter items.
	probe := counterAlg(name, m)
	for _, it := range prefix {
		probe.Update(it)
	}
	var zeros []uint64
	for i := 0; i < m+k && len(zeros) < k; i++ {
		if probe.Estimate(uint64(i)) == 0 {
			zeros = append(zeros, uint64(i))
		}
	}
	// FREQUENT can have fewer than m stored counters; the adversary only
	// needs k unstored prefix items, which always exist since the summary
	// holds at most m of the m+k.
	contA, contB := stream.LowerBoundContinuations(m, k, zeros)

	worst := 0.0
	// Stream A: zero items occur once more; their true frequency is X+1.
	algA := counterAlg(name, m)
	for _, it := range prefix {
		algA.Update(it)
	}
	for _, it := range contA {
		algA.Update(it)
	}
	for _, it := range contA {
		d := math.Abs(float64(x+1) - float64(algA.Estimate(it)))
		if d > worst {
			worst = d
		}
	}
	// Stream B: fresh items with true frequency 1.
	algB := counterAlg(name, m)
	for _, it := range prefix {
		algB.Update(it)
	}
	for _, it := range contB {
		algB.Update(it)
	}
	for _, it := range contB {
		d := math.Abs(1 - float64(algB.Estimate(it)))
		if d > worst {
			worst = d
		}
	}
	// F1^res(k) of stream A: total mass X(m+k)+k minus the top-k
	// frequencies (k items at X+1): X·m per the proof.
	return worst, float64(x * m)
}
