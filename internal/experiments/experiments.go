// Package experiments implements the reproduction experiments E1–E11
// catalogued in DESIGN.md: Table 1 measured empirically, and one
// experiment per theorem of the paper. Each experiment builds its
// workload, runs the algorithms, and returns a rendered table; cmd/hhbench
// prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/frequent"
	"repro/internal/harness"
	"repro/internal/lossycounting"
	"repro/internal/spacesaving"
)

// Config scales every experiment's workload. Tests use Small for speed;
// cmd/hhbench defaults to Default.
type Config struct {
	// N is the stream length of the main workloads.
	N uint64
	// Universe is the number of distinct items n.
	Universe int
	// Alpha is the Zipf parameter of the main workloads.
	Alpha float64
	// Seed drives all deterministic randomness.
	Seed uint64
}

// Default is the full-size configuration used by cmd/hhbench: a
// million-element stream over a 100k universe, the scale of the Table 1
// discussion.
func Default() Config {
	return Config{N: 1_000_000, Universe: 100_000, Alpha: 1.1, Seed: 20090629}
}

// Small is a reduced configuration for unit tests and -short runs.
func Small() Config {
	return Config{N: 100_000, Universe: 10_000, Alpha: 1.1, Seed: 20090629}
}

// Runner is an experiment entry point.
type Runner func(Config) *harness.Table

// All returns the experiment registry in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1Table1},
		{"E2", E2TailGuarantee},
		{"E3", E3SparseRecovery},
		{"E4", E4ResidualEstimation},
		{"E5", E5MSparse},
		{"E6", E6Zipf},
		{"E7", E7TopK},
		{"E8", E8Weighted},
		{"E9", E9Merge},
		{"E10", E10LowerBound},
		{"E11", E11Ablations},
		{"E12", E12Retrieval},
	}
}

// Lookup returns the runner for an experiment id, or nil.
func Lookup(id string) Runner {
	for _, e := range All() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

// --- shared helpers ---

// counterAlg instantiates a unit-weight counter algorithm by name.
func counterAlg(name string, m int) core.Algorithm[uint64] {
	switch name {
	case "frequent":
		return frequent.New[uint64](m)
	case "spacesaving":
		return spacesaving.New[uint64](m)
	case "spacesaving-heap":
		return spacesaving.NewHeap[uint64](m)
	case "lossycounting":
		return lossycounting.New[uint64](m)
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %q", name))
	}
}

// htcNames are the heavy-tolerant counter algorithms the paper's new
// bounds apply to.
func htcNames() []string { return []string{"frequent", "spacesaving"} }

// estimator adapts a counter algorithm to the harness metric signature.
func estimator(alg core.Algorithm[uint64]) func(uint64) float64 {
	return func(i uint64) float64 { return float64(alg.Estimate(i)) }
}

// groundTruth runs the exact counter and returns it with the dense
// frequency vector over the universe.
func groundTruth(s []uint64, universe int) (*exact.Counter, []float64) {
	truth := exact.FromStream(s)
	return truth, truth.Dense(universe)
}

// entryWords is the per-counter memory cost, in machine words, charged to
// counter algorithms in equal-space comparisons: item, count, and error
// metadata. Hash-map overhead is implementation detail and charged
// equally to all counter algorithms.
const entryWords = 3

// counterBudgetToM converts a word budget into a counter count.
func counterBudgetToM(words int) int {
	m := words / entryWords
	if m < 1 {
		m = 1
	}
	return m
}

// topKItems returns the identifiers of the k largest entries.
func topKItems[K comparable](entries []core.Entry[K], k int) []K {
	if k > len(entries) {
		k = len(entries)
	}
	out := make([]K, k)
	for i := 0; i < k; i++ {
		out[i] = entries[i].Item
	}
	return out
}

// sortedCopyDesc returns freq sorted decreasingly.
func sortedCopyDesc(freq []float64) []float64 {
	s := make([]float64, len(freq))
	copy(s, freq)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}
