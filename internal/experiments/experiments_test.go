package experiments

import (
	"strings"
	"testing"
)

// cfg is a deliberately small configuration so the whole experiment suite
// runs in seconds under `go test`.
func cfg() Config {
	return Config{N: 20_000, Universe: 2_000, Alpha: 1.1, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil {
			t.Errorf("%s has nil runner", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if Lookup(e.ID) == nil {
			t.Errorf("Lookup(%s) = nil", e.ID)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown id should be nil")
	}
}

func TestCounterAlgPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	counterAlg("nope", 3)
}

// requireNoFailureMarkers asserts the table carries no "NO" verdicts and
// every ratio column value parses below the given threshold when present.
func requireNoFailureMarkers(t *testing.T, rendered string) {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		fields := strings.Fields(line)
		for _, f := range fields {
			if f == "NO" {
				t.Errorf("experiment row failed its bound check: %s", line)
			}
		}
	}
}

func TestE1Table1(t *testing.T) {
	tbl := E1Table1(cfg())
	out := tbl.String()
	for _, want := range []string{"frequent", "spacesaving", "count-min", "count-sketch", "lossycounting"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
	if len(tbl.Rows) != 15 { // 5 algorithms × 3 budgets
		t.Errorf("E1 has %d rows, want 15", len(tbl.Rows))
	}
}

func TestE2TailGuaranteeNoViolations(t *testing.T) {
	tbl := E2TailGuarantee(cfg())
	controlViolations := 0
	for _, r := range tbl.Rows {
		if r[0] == "lossycounting*" {
			// Negative control: count its violations but do not require
			// them per-row.
			if r[len(r)-1] != "0" {
				controlViolations++
			}
			continue
		}
		// HTC rows must report zero violating items.
		if r[len(r)-1] != "0" {
			t.Errorf("tail guarantee violated: %v", r)
		}
	}
	if len(tbl.Rows) != 3*5*3*3 { // alphas × orders × algorithms × k values
		t.Errorf("E2 has %d rows, want 135", len(tbl.Rows))
	}
	if controlViolations == 0 {
		t.Error("negative control never violated the residual bound; the control is not exercising anything")
	}
}

func TestE3RecoveryWithinBound(t *testing.T) {
	tbl := E3SparseRecovery(cfg())
	for _, r := range tbl.Rows {
		ratio := r[len(r)-1]
		if strings.HasPrefix(ratio, "1.") || strings.HasPrefix(ratio, "2") {
			t.Errorf("recovery error exceeded bound: %v", r)
		}
	}
}

func TestE4ResidualWithinEpsilon(t *testing.T) {
	requireNoFailureMarkers(t, E4ResidualEstimation(cfg()).String())
}

func TestE5MSparseRuns(t *testing.T) {
	tbl := E5MSparse(cfg())
	if len(tbl.Rows) != 3*2*2 { // eps × algorithms × p
		t.Errorf("E5 has %d rows, want 12", len(tbl.Rows))
	}
}

func TestE6ZipfRatiosBelowOne(t *testing.T) {
	tbl := E6Zipf(cfg())
	for _, r := range tbl.Rows {
		ratio := r[len(r)-1]
		if !strings.HasPrefix(ratio, "0") && ratio != "0" {
			t.Errorf("Zipf error exceeded eps*F1: %v", r)
		}
	}
}

func TestE7TopKExactAtTheoremBudget(t *testing.T) {
	requireNoFailureMarkers(t, E7TopK(cfg()).String())
}

func TestE8WeightedNoViolations(t *testing.T) {
	tbl := E8Weighted(cfg())
	for _, r := range tbl.Rows {
		if r[len(r)-1] != "0" {
			t.Errorf("weighted tail guarantee violated: %v", r)
		}
	}
}

func TestE9MergeWithinBound(t *testing.T) {
	tbl := E9Merge(cfg())
	for _, r := range tbl.Rows {
		// The literal construction must hold in the theorem's intended
		// m = O(k/eps) regime; the robust m-sparse variant must hold in
		// every row, including the boundary demonstration.
		if r[0] == "ksparse-merge" || strings.HasPrefix(r[0], "msparse-merge") {
			ratio := r[len(r)-1]
			if !strings.HasPrefix(ratio, "0") {
				t.Errorf("merged error exceeded (3,2) bound: %v", r)
			}
		}
	}
}

func TestE10LowerBoundSandwich(t *testing.T) {
	requireNoFailureMarkers(t, E10LowerBound(cfg()).String())
}

func TestE11AblationsRuns(t *testing.T) {
	tbl := E11Ablations(cfg())
	if len(tbl.Rows) != 7 {
		t.Errorf("E11 has %d rows, want 7", len(tbl.Rows))
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Every experiment must be fully reproducible: same config, same
	// table (the repository's determinism claim). E11 reports wall-clock
	// timings and is exempt.
	for _, e := range All() {
		if e.ID == "E11" {
			continue
		}
		a := e.Run(cfg()).String()
		b := e.Run(cfg()).String()
		if a != b {
			t.Errorf("%s is not deterministic", e.ID)
		}
	}
}

func TestE12RetrievalCountersBeatSketchTracker(t *testing.T) {
	tbl := E12Retrieval(cfg())
	if len(tbl.Rows) != 3*2*3 { // alphas × budgets × 3 systems
		t.Fatalf("E12 has %d rows, want 18", len(tbl.Rows))
	}
	// At the larger budget the counter algorithms must achieve full
	// recall on the skewed workloads.
	for _, r := range tbl.Rows {
		if (r[0] == "frequent" || r[0] == "spacesaving") && r[2] == "960" && r[1] != "1.05" {
			if r[3] != "1" {
				t.Errorf("counter recall below 1 at 960 words: %v", r)
			}
		}
	}
}
