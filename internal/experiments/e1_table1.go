package experiments

import (
	"repro/internal/harness"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// E1Table1 reproduces Table 1 empirically: every algorithm runs on the
// same Zipfian stream at (approximately) equal memory budgets, and the
// table reports the measured maximum per-item error next to each
// algorithm's theoretical bound — the F1-type bound the older analyses
// give, and the residual F1^res(k) bound this paper proves for the
// counter algorithms.
//
// Expected shape: at equal space, the counter algorithms' measured error
// sits far below the sketches', and far below their own F1-type bound —
// the gap the residual bound explains.
func E1Table1(cfg Config) *harness.Table {
	const k = 10
	s := stream.Zipf(cfg.Universe, cfg.Alpha, cfg.N, stream.OrderRandom, cfg.Seed)
	truth, freq := groundTruth(s, cfg.Universe)
	f1 := truth.F1()
	res := truth.Res1(k)

	t := harness.NewTable(
		"E1 / Table 1: measured error vs theoretical bounds at equal space",
		"algorithm", "words", "max err", "mean err", "F1 bound", "res(k) bound",
	)

	for _, words := range []int{300, 1200, 4800} {
		m := counterBudgetToM(words)
		for _, name := range []string{"frequent", "spacesaving", "lossycounting"} {
			alg := counterAlg(name, m)
			for _, x := range s {
				alg.Update(x)
			}
			met := harness.Evaluate(estimator(alg), freq)
			f1Bound := f1 / float64(m)
			resBound := "n/a"
			if name != "lossycounting" {
				// The k-tail guarantee with A=B=1 (Appendices B, C).
				resBound = harness.F(res / float64(m-k))
			}
			t.Addf(name, m*entryWords, met.MaxErr, met.MeanErr, f1Bound, resBound)
		}
		// Count-Min: 4 rows; width fills the same word budget.
		depth := 4
		width := (words - 2*depth) / depth
		if width < 1 {
			width = 1
		}
		cm := sketch.NewCountMin(depth, width, cfg.Seed)
		for _, x := range s {
			cm.Update(x)
		}
		met := harness.Evaluate(func(i uint64) float64 { return float64(cm.Estimate(i)) }, freq)
		// Count-Min's residual-form bound: ε/k·F1res(k) with ε = e·k/width
		// (k heavy items removed by the analysis).
		t.Addf("count-min", cm.Words(), met.MaxErr, met.MeanErr, 2.718*f1/float64(width), 2.718*res/float64(width))

		// Count-Sketch: 5 rows for a well-defined median.
		depth = 5
		width = (words - 6*depth) / depth
		if width < 1 {
			width = 1
		}
		cs := sketch.NewCountSketch(depth, width, cfg.Seed)
		for _, x := range s {
			cs.Update(x)
		}
		met = harness.Evaluate(func(i uint64) float64 { return float64(cs.EstimateNonNegative(i)) }, freq)
		t.Addf("count-sketch", cs.Words(), met.MaxErr, met.MeanErr, "two-sided", "res(k) on F2")
	}
	t.Note("workload: Zipf alpha=%.2f, N=%d, n=%d; residual bounds use k=%d", cfg.Alpha, cfg.N, cfg.Universe, k)
	t.Note("paper claim: counter algorithms dominate sketches at equal space (Section 1)")
	return t
}
