package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestTopKItems(t *testing.T) {
	entries := []core.Entry[uint64]{{Item: 9, Count: 5}, {Item: 3, Count: 2}}
	got := topKItems(entries, 1)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("topKItems = %v", got)
	}
	if all := topKItems(entries, 10); len(all) != 2 {
		t.Errorf("topKItems(k>len) = %v", all)
	}
}

func TestRecallOf(t *testing.T) {
	want := map[uint64]bool{1: true, 2: true}
	if got := recallOf([]uint64{1, 3}, want); got != 0.5 {
		t.Errorf("recallOf = %v, want 0.5", got)
	}
	if got := recallOf(nil, want); got != 0 {
		t.Errorf("recallOf(empty answer) = %v, want 0", got)
	}
	if got := recallOf([]uint64{1}, map[uint64]bool{}); got != 1 {
		t.Errorf("recallOf(empty want) = %v, want 1", got)
	}
}

func TestOrderedPrefix(t *testing.T) {
	cases := []struct {
		got, want []uint64
		n         int
	}{
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 3},
		{[]uint64{1, 2, 9}, []uint64{1, 2, 3}, 2},
		{[]uint64{9}, []uint64{1, 2}, 0},
		{nil, []uint64{1}, 0},
		{[]uint64{1, 2}, []uint64{1}, 1},
	}
	for _, c := range cases {
		if got := orderedPrefix(c.got, c.want); got != c.n {
			t.Errorf("orderedPrefix(%v, %v) = %d, want %d", c.got, c.want, got, c.n)
		}
	}
}

func TestCounterBudgetToM(t *testing.T) {
	if got := counterBudgetToM(300); got != 100 {
		t.Errorf("counterBudgetToM(300) = %d, want 100", got)
	}
	if got := counterBudgetToM(1); got != 1 {
		t.Errorf("counterBudgetToM(1) = %d, want 1 (floor)", got)
	}
}

func TestSortedCopyDescDoesNotMutate(t *testing.T) {
	in := []float64{1, 3, 2}
	out := sortedCopyDesc(in)
	if out[0] != 3 || out[2] != 1 {
		t.Errorf("sortedCopyDesc = %v", out)
	}
	if in[0] != 1 {
		t.Error("input mutated")
	}
}
