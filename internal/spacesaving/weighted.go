package spacesaving

import (
	"math"

	"repro/internal/core"
)

// R is SPACESAVINGR, the real-valued update extension of Section 6.1: an
// arrival (a_i, b_i) increments a_i's counter by b_i; when a_i is not
// stored and all m counters are taken, a_i replaces the item with the
// minimum counter c_min and starts at c_min + b_i, recording ε = c_min.
// When every b_i is 1 it behaves identically to SPACESAVING, and
// Theorem 10 gives it the k-tail guarantee with A = B = 1.
//
// It is backed by a binary min-heap on counts; ties are broken by heap
// position (deterministic for a fixed update sequence). The zero value is
// not usable; construct with NewR.
type R[K comparable] struct {
	m     int
	pos   map[K]int
	elems []rElem[K]
	total float64
	// clone, when set, copies a key at the moment it is retained
	// (SetKeyClone) so callers may pass keys aliasing reused memory.
	clone func(K) K
}

// SetKeyClone installs fn as the borrowed-key clone hook: every key the
// structure decides to retain is first passed through fn, so callers
// may hand updates keys whose backing memory is reused after the call.
// Keys that only hit an existing counter are never cloned. Must be
// called before the first update.
func (r *R[K]) SetKeyClone(fn func(K) K) { r.clone = fn }

type rElem[K comparable] struct {
	item  K
	count float64
	err   float64
}

// NewR returns a SPACESAVINGR instance with m counters. It panics if
// m < 1.
func NewR[K comparable](m int) *R[K] {
	if m < 1 {
		panic("spacesaving: m must be >= 1")
	}
	return &R[K]{m: m, pos: make(map[K]int, m), elems: make([]rElem[K], 0, m)}
}

// NewRSized returns an R with capacity m whose initial storage is sized
// for hint counters and grown on demand. Decoders use it so an
// untrusted capacity field cannot force a large up-front allocation.
func NewRSized[K comparable](m, hint int) *R[K] {
	if m < 1 {
		panic("spacesaving: m must be >= 1")
	}
	if hint < 0 {
		hint = 0
	}
	if hint > m {
		hint = m
	}
	return &R[K]{m: m, pos: make(map[K]int, hint), elems: make([]rElem[K], 0, hint)}
}

// UpdateWeighted processes b occurrences' worth of item. It panics on
// non-positive or non-finite b.
//
//hh:noalloc
func (r *R[K]) UpdateWeighted(item K, b float64) {
	if math.IsNaN(b) || math.IsInf(b, 0) {
		// A non-finite weight would silently poison the running total
		// and every bound derived from it.
		panic("spacesaving: non-finite weight")
	}
	if b <= 0 {
		panic("spacesaving: non-positive weight")
	}
	r.total += b
	if i, ok := r.pos[item]; ok {
		r.elems[i].count += b
		r.siftDown(i)
		return
	}
	if r.clone != nil {
		item = r.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	if len(r.elems) < r.m {
		r.elems = append(r.elems, rElem[K]{item: item, count: b})
		r.pos[item] = len(r.elems) - 1
		r.siftUp(len(r.elems) - 1)
		return
	}
	victim := r.elems[0]
	delete(r.pos, victim.item)
	r.elems[0] = rElem[K]{item: item, count: victim.count + b, err: victim.count}
	r.pos[item] = 0
	r.siftDown(0)
}

// Update processes a unit-weight occurrence.
//
//hh:noalloc
func (r *R[K]) Update(item K) { r.UpdateWeighted(item, 1) }

// Absorb ingests one counter from another summary: count arrives as
// weighted occurrences and err widens the per-item error interval (the
// producing summary's own overestimation bound for the item). It is the
// merge primitive of Section 6.2 with error metadata carried through, so
// that a merged summary's [c − ε, c] intervals remain certain bounds when
// every input is an overestimating (SPACESAVING-family) summary. A
// non-positive count is ignored.
//
//hh:noalloc
func (r *R[K]) Absorb(item K, count, err float64) {
	if count <= 0 {
		return
	}
	r.total += count
	if i, ok := r.pos[item]; ok {
		r.elems[i].count += count
		r.elems[i].err += err
		r.siftDown(i)
		return
	}
	if r.clone != nil {
		item = r.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	if len(r.elems) < r.m {
		r.elems = append(r.elems, rElem[K]{item: item, count: count, err: err})
		r.pos[item] = len(r.elems) - 1
		r.siftUp(len(r.elems) - 1)
		return
	}
	victim := r.elems[0]
	delete(r.pos, victim.item)
	r.elems[0] = rElem[K]{item: item, count: victim.count + count, err: victim.count + err}
	r.pos[item] = 0
	r.siftDown(0)
}

// EstimateWeighted returns the stored counter for item, zero if absent.
// Stored estimates never undercount.
//
//hh:noalloc
func (r *R[K]) EstimateWeighted(item K) float64 {
	i, ok := r.pos[item]
	if !ok {
		return 0
	}
	return r.elems[i].count
}

// ErrorOf returns the recorded ε for item (zero if absent).
//
//hh:noalloc
func (r *R[K]) ErrorOf(item K) float64 {
	i, ok := r.pos[item]
	if !ok {
		return 0
	}
	return r.elems[i].err
}

// MinCount returns the smallest stored counter Δ (zero when not full).
//
//hh:noalloc
func (r *R[K]) MinCount() float64 {
	if len(r.elems) < r.m || len(r.elems) == 0 {
		return 0
	}
	return r.elems[0].count
}

// AppendWeightedEntries appends the stored counters in decreasing count
// order to dst, keeping at most max entries when max >= 0, and returns
// the extended slice. The counters live in a heap, so all of them are
// materialized and sorted before truncation; with a reused buffer of
// sufficient capacity the call still allocates nothing.
//
//hh:noalloc
func (r *R[K]) AppendWeightedEntries(dst []core.WeightedEntry[K], max int) []core.WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	for _, e := range r.elems {
		dst = append(dst, core.WeightedEntry[K]{Item: e.item, Count: e.count, Err: e.err})
	}
	core.SortWeightedEntries(dst[start:])
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

// WeightedEntries returns the stored counters sorted by decreasing count.
func (r *R[K]) WeightedEntries() []core.WeightedEntry[K] {
	return r.AppendWeightedEntries(make([]core.WeightedEntry[K], 0, len(r.elems)), -1)
}

// Capacity returns m.
func (r *R[K]) Capacity() int { return r.m }

// Len returns the number of stored counters.
func (r *R[K]) Len() int { return len(r.elems) }

// TotalWeight returns Σ b_i processed so far; the stored counters always
// sum to exactly this value once the structure is full or all items fit.
func (r *R[K]) TotalWeight() float64 { return r.total }

// Reset restores the empty state, retaining the map and element storage
// so a reset structure keeps updating allocation-free (the window
// layer's epoch rotation relies on this).
//
//hh:noalloc
func (r *R[K]) Reset() {
	clear(r.pos)
	// Zero the elements so slab slots do not pin evicted keys for GC.
	clear(r.elems)
	r.elems = r.elems[:0]
	r.total = 0
}

// Scale multiplies every stored counter, error term and the running
// total by f > 0 — the renormalization primitive of the exponential-
// decay layer. All of R's state is linear in the update weights, so
// scaling is exact up to float rounding and preserves the heap order
// and every guarantee.
//
//hh:noalloc
func (r *R[K]) Scale(f float64) {
	for i := range r.elems {
		r.elems[i].count *= f
		r.elems[i].err *= f
	}
	r.total *= f
}

// Guarantee returns the Theorem 10 tail constants A = B = 1.
func (r *R[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

//hh:noalloc
func (r *R[K]) swap(i, j int) {
	r.elems[i], r.elems[j] = r.elems[j], r.elems[i]
	r.pos[r.elems[i].item] = i
	r.pos[r.elems[j].item] = j
}

//hh:noalloc
func (r *R[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if r.elems[parent].count <= r.elems[i].count {
			return
		}
		r.swap(i, parent)
		i = parent
	}
}

//hh:noalloc
func (r *R[K]) siftDown(i int) {
	n := len(r.elems)
	for {
		l, rt := 2*i+1, 2*i+2
		small := i
		if l < n && r.elems[l].count < r.elems[small].count {
			small = l
		}
		if rt < n && r.elems[rt].count < r.elems[small].count {
			small = rt
		}
		if small == i {
			return
		}
		r.swap(i, small)
		i = small
	}
}
