package spacesaving

import (
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// naiveSS is a literal transcription of Algorithm 2 with the smallest-
// identifier tie-break the Theorem 1 proof specifies: on eviction, scan
// all counters for the minimum value, preferring the smallest item id.
// It is a test-only oracle for the heap implementation, which uses the
// same deterministic rule.
type naiveSS struct {
	m      int
	counts map[uint64]uint64
	errs   map[uint64]uint64
}

func newNaiveSS(m int) *naiveSS {
	return &naiveSS{m: m, counts: make(map[uint64]uint64), errs: make(map[uint64]uint64)}
}

func (n *naiveSS) update(x uint64) {
	if _, ok := n.counts[x]; ok {
		n.counts[x]++
		return
	}
	if len(n.counts) < n.m {
		n.counts[x] = 1
		return
	}
	var victim uint64
	first := true
	for it, c := range n.counts {
		if first {
			victim, first = it, false
			continue
		}
		vc := n.counts[victim]
		if c < vc || (c == vc && it < victim) {
			victim = it
		}
	}
	vc := n.counts[victim]
	delete(n.counts, victim)
	delete(n.errs, victim)
	n.counts[x] = vc + 1
	n.errs[x] = vc
}

func TestHeapMatchesNaiveOracle(t *testing.T) {
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		h := NewHeap[uint64](m)
		n := newNaiveSS(m)
		for _, b := range raw {
			x := uint64(b) % 16
			h.Update(x)
			n.update(x)
		}
		if h.Len() != len(n.counts) {
			return false
		}
		for it, c := range n.counts {
			if h.Estimate(it) != c {
				return false
			}
			if h.ErrorOf(it) != n.errs[it] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeapMatchesNaiveOracleOnZipf(t *testing.T) {
	s := stream.Zipf(100, 1.1, 20000, stream.OrderRandom, 13)
	for _, m := range []int{1, 3, 17, 64} {
		h := NewHeap[uint64](m)
		n := newNaiveSS(m)
		for _, x := range s {
			h.Update(x)
			n.update(x)
		}
		for it, c := range n.counts {
			if h.Estimate(it) != c {
				t.Fatalf("m=%d: item %d heap=%d oracle=%d", m, it, h.Estimate(it), c)
			}
		}
		if h.Len() != len(n.counts) {
			t.Fatalf("m=%d: stored sets differ in size", m)
		}
	}
}

func TestStreamSummarySameCounterValueMultiset(t *testing.T) {
	// The bucket-list variant may evict different items than the heap,
	// but the multiset of counter *values* evolves identically (both
	// evict some minimum-count item and insert at min+1).
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		ss := New[uint64](m)
		h := NewHeap[uint64](m)
		for _, b := range raw {
			x := uint64(b) % 16
			ss.Update(x)
			h.Update(x)
		}
		// Compare sorted count multisets.
		a := ss.Entries()
		bb := h.Entries()
		if len(a) != len(bb) {
			return false
		}
		for i := range a {
			if a[i].Count != bb[i].Count {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
