package spacesaving

import (
	"cmp"

	"repro/internal/core"
)

// Heap is a SPACESAVING implementation backed by a binary min-heap ordered
// by (count, identifier). Updates cost O(log m), but the eviction
// tie-break — the smallest identifier among minimum-count items — is
// exactly the deterministic rule the proof of Theorem 1 fixes for
// SPACESAVING, making this variant the reference for heavy-tolerance
// experiments. The zero value is not usable; construct with NewHeap.
type Heap[K cmp.Ordered] struct {
	m     int
	pos   map[K]int // item -> index in entries
	elems []heapElem[K]
	n     uint64
}

type heapElem[K cmp.Ordered] struct {
	item  K
	count uint64
	err   uint64
}

// NewHeap returns a heap-backed SPACESAVING instance with m counters. It
// panics if m < 1.
func NewHeap[K cmp.Ordered](m int) *Heap[K] {
	if m < 1 {
		panic("spacesaving: m must be >= 1")
	}
	return &Heap[K]{m: m, pos: make(map[K]int, m), elems: make([]heapElem[K], 0, m)}
}

// less orders by count, then identifier: the root is the smallest
// identifier among minimum counts.
//
//hh:noalloc
func (h *Heap[K]) less(a, b heapElem[K]) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.item < b.item
}

// Update processes one occurrence of item.
//
//hh:noalloc
func (h *Heap[K]) Update(item K) {
	h.n++
	if i, ok := h.pos[item]; ok {
		h.elems[i].count++
		h.siftDown(i)
		return
	}
	if len(h.elems) < h.m {
		h.elems = append(h.elems, heapElem[K]{item: item, count: 1})
		h.pos[item] = len(h.elems) - 1
		h.siftUp(len(h.elems) - 1)
		return
	}
	// Replace the root (minimum count, smallest identifier).
	victim := h.elems[0]
	delete(h.pos, victim.item)
	h.elems[0] = heapElem[K]{item: item, count: victim.count + 1, err: victim.count}
	h.pos[item] = 0
	h.siftDown(0)
}

// Estimate returns the stored count of item, zero if absent.
//
//hh:noalloc
func (h *Heap[K]) Estimate(item K) uint64 {
	i, ok := h.pos[item]
	if !ok {
		return 0
	}
	return h.elems[i].count
}

// ErrorOf returns ε_item (zero if absent or never evicted anyone).
//
//hh:noalloc
func (h *Heap[K]) ErrorOf(item K) uint64 {
	i, ok := h.pos[item]
	if !ok {
		return 0
	}
	return h.elems[i].err
}

// MinCount returns the smallest stored counter Δ (zero when the structure
// is not yet full).
//
//hh:noalloc
func (h *Heap[K]) MinCount() uint64 {
	if len(h.elems) < h.m || len(h.elems) == 0 {
		return 0
	}
	return h.elems[0].count
}

// Entries returns the stored counters sorted by decreasing count.
func (h *Heap[K]) Entries() []core.Entry[K] {
	out := make([]core.Entry[K], 0, len(h.elems))
	for _, e := range h.elems {
		out = append(out, core.Entry[K]{Item: e.item, Count: e.count, Err: e.err})
	}
	core.SortEntries(out)
	return out
}

// Capacity returns m.
func (h *Heap[K]) Capacity() int { return h.m }

// Len returns the number of stored counters.
func (h *Heap[K]) Len() int { return len(h.elems) }

// N returns the number of processed stream elements.
func (h *Heap[K]) N() uint64 { return h.n }

// Reset restores the empty state, retaining the map and heap storage
// so a reset structure keeps updating allocation-free.
//
//hh:noalloc
func (h *Heap[K]) Reset() {
	clear(h.pos)
	h.elems = h.elems[:0]
	h.n = 0
}

// Guarantee returns the Appendix C tail constants A = B = 1.
func (h *Heap[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

//hh:noalloc
func (h *Heap[K]) swap(i, j int) {
	h.elems[i], h.elems[j] = h.elems[j], h.elems[i]
	h.pos[h.elems[i].item] = i
	h.pos[h.elems[j].item] = j
}

//hh:noalloc
func (h *Heap[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.elems[i], h.elems[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

//hh:noalloc
func (h *Heap[K]) siftDown(i int) {
	n := len(h.elems)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.elems[l], h.elems[small]) {
			small = l
		}
		if r < n && h.less(h.elems[r], h.elems[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
