package spacesaving

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestRMatchesUnitSpaceSavingOnUnitStreams(t *testing.T) {
	// Section 6.1: with all b_i = 1, SPACESAVINGR behaves identically to
	// SPACESAVING. Counter-value multisets must match the heap variant's
	// (both heaps break ties arbitrarily, so compare value multisets and
	// the total).
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%6 + 1
		r := NewR[uint64](m)
		for _, x := range raw {
			r.Update(uint64(x) % 16)
		}
		var sum float64
		for _, e := range r.WeightedEntries() {
			sum += e.Count
		}
		return sum == r.TotalWeight() && r.TotalWeight() == float64(len(raw))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRCounterSumEqualsTotalWeight(t *testing.T) {
	ups := stream.WeightedZipf(100, 1.1, 10000, 3, 7)
	r := NewR[uint64](16)
	for _, u := range ups {
		r.UpdateWeighted(u.Item, u.Weight)
	}
	var sum float64
	for _, e := range r.WeightedEntries() {
		sum += e.Count
	}
	if math.Abs(sum-r.TotalWeight()) > 1e-6*r.TotalWeight() {
		t.Errorf("counter sum %v != total weight %v", sum, r.TotalWeight())
	}
}

func TestROverestimateSidedness(t *testing.T) {
	ups := stream.WeightedZipf(100, 1.2, 10000, 3, 11)
	truth := exact.New()
	r := NewR[uint64](20)
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		r.UpdateWeighted(u.Item, u.Weight)
	}
	for _, e := range r.WeightedEntries() {
		f := truth.Freq(e.Item)
		if e.Count < f-1e-6 {
			t.Errorf("item %d: stored count %v under true %v", e.Item, e.Count, f)
		}
		if e.Count-e.Err > f+1e-6 {
			t.Errorf("item %d: count−ε = %v exceeds true %v", e.Item, e.Count-e.Err, f)
		}
	}
}

func TestRTailGuaranteeTheorem10(t *testing.T) {
	ups := stream.WeightedZipf(200, 1.3, 50000, 4, 13)
	const m = 30
	truth := exact.New()
	r := NewR[uint64](m)
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		r.UpdateWeighted(u.Item, u.Weight)
	}
	for _, k := range []int{1, 5, 10, 20} {
		bound := r.Guarantee().Bound(m, k, truth.Res1(k))
		for i := uint64(0); i < 200; i++ {
			if d := math.Abs(truth.Freq(i) - r.EstimateWeighted(i)); d > bound+1e-6 {
				t.Errorf("k=%d item %d: error %v exceeds bound %v", k, i, d, bound)
			}
		}
	}
}

func TestRNonPositiveWeightPanics(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v did not panic", w)
				}
			}()
			NewR[uint64](2).UpdateWeighted(1, w)
		}()
	}
}

func TestRMinCountAndErrorOf(t *testing.T) {
	r := NewR[uint64](2)
	r.UpdateWeighted(1, 3)
	if got := r.MinCount(); got != 0 {
		t.Errorf("MinCount (not full) = %v, want 0", got)
	}
	r.UpdateWeighted(2, 1)
	if got := r.MinCount(); got != 1 {
		t.Errorf("MinCount = %v, want 1", got)
	}
	r.UpdateWeighted(3, 0.5) // evicts 2, starts at 1.5 with ε = 1
	if got := r.EstimateWeighted(3); got != 1.5 {
		t.Errorf("EstimateWeighted(3) = %v, want 1.5", got)
	}
	if got := r.ErrorOf(3); got != 1 {
		t.Errorf("ErrorOf(3) = %v, want 1", got)
	}
	if got := r.ErrorOf(42); got != 0 {
		t.Errorf("ErrorOf(absent) = %v, want 0", got)
	}
}

func TestRReset(t *testing.T) {
	r := NewR[uint64](3)
	r.UpdateWeighted(1, 5)
	r.Reset()
	if r.Len() != 0 || r.TotalWeight() != 0 {
		t.Error("Reset did not clear state")
	}
	r.UpdateWeighted(2, 1)
	if r.EstimateWeighted(2) != 1 {
		t.Error("unusable after Reset")
	}
}
