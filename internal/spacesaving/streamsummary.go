// Package spacesaving implements the SPACESAVING algorithm of Metwally,
// Agrawal and El Abbadi (Algorithm 2 in the paper): maintain at most m
// counters; when a new item arrives with all counters taken, it replaces
// the item with the smallest counter c_min and starts at c_min + 1,
// recording ε_i = c_min as its possible overestimation.
//
// SPACESAVING overestimates: f_i ≤ c_i ≤ f_i + ε_i, the counters always
// sum to the stream length, and Appendix C proves the k-tail guarantee
// with constants A = B = 1: c_i − f_i ≤ F1^res(k) / (m − k).
//
// Two backing structures are provided:
//
//   - StreamSummary: the original bucket-list structure, O(1) per update;
//     among minimum-count items it evicts the least recently bucketed one
//     (deterministic FIFO).
//   - Heap (heap.go): a binary min-heap ordered by (count, identifier),
//     O(log m) per update; it evicts the smallest identifier among
//     minimum counts, the exact tie-break the Theorem 1 proof specifies.
//
// Both satisfy identical guarantees; E11 measures the constant-factor
// trade.
package spacesaving

import (
	"math"

	"repro/internal/arena"
	"repro/internal/core"
)

// nilIdx is the null link of the slab-allocated bucket lists.
const nilIdx = int32(-1)

// ssGroup is one count bucket. Groups form a doubly linked list in
// strictly ascending count order, threaded through slab indices rather
// than pointers so the whole structure lives in two contiguous arrays.
type ssGroup struct {
	count      uint64
	prev, next int32
	head, tail int32 // node list of this bucket
	size       int32
}

type ssNode[K comparable] struct {
	item       K
	err        uint64
	grp        int32
	prev, next int32
}

// StreamSummary is the O(1) bucket-list SPACESAVING implementation,
// slab-allocated: nodes and groups are indices into two fixed arrays
// (int32 links, free-listed through the next field), so the update hot
// path touches contiguous memory and performs zero heap allocations
// once constructed. The zero value is not usable; construct with New.
type StreamSummary[K comparable] struct {
	m int
	// items maps a stored key to its node index. The default is a map;
	// EnableArena swaps in the pointer-free open-addressing index for
	// string keys, after which every stored node.item aliases the
	// arena's slabs and exported entries pass through Materialize.
	items arena.Index[K]
	// fast aliases items as the concrete map while the default index is
	// in place, nil after EnableArena; the hot path branches on it so
	// map-backed ingest keeps direct (inlineable) map operations instead
	// of an interface call per Get/Put/Delete.
	fast arena.Map[K]
	// arenaOn records the swap so SetKeyClone stays a no-op (the arena
	// interns every retained key itself).
	arenaOn bool
	nodes   []ssNode[K]
	// Groups can momentarily number one more than the live nodes while a
	// node is detached during a move, hence the m+1 slab.
	groups    []ssGroup
	freeNode  int32
	freeGroup int32
	// head/tail of the group list, ascending by count.
	head, tail int32
	n          uint64
	// clone, when set, copies a key at the moment it is retained so
	// callers may pass keys aliasing reused memory (SetKeyClone).
	clone func(K) K
	// probe is the hit-hint scratch of AddNBatch (one node index per
	// batch key), reused across batches so steady-state batch ingest
	// allocates nothing.
	probe []int32
}

// SetKeyClone installs fn as the borrowed-key clone hook: every key the
// structure decides to retain (fresh insertion or eviction replacement)
// is first passed through fn, so callers may hand Update/AddN keys
// whose backing memory is reused after the call. Keys that only hit an
// existing counter are never cloned. A nil fn restores the default
// aliasing behavior. Must be called before the first update. On an
// arena-backed structure (EnableArena) the hook is ignored: the arena
// copies every retained key into its slabs already.
func (s *StreamSummary[K]) SetKeyClone(fn func(K) K) {
	if s.arenaOn {
		return
	}
	s.clone = fn
}

// EnableArena swaps the key index for the arena-backed open-addressing
// index of internal/arena: stored keys live in byte slabs as
// (offset, len) references, so the steady-state heap holds no per-key
// objects. Valid only for string-kind K (returns false otherwise — the
// map path stays) and only before the first update. seed salts the
// index hash (the keyHasher FNV-1a family). Borrowed keys need no
// separate clone hook afterwards: insertion interns the key bytes
// straight into the slabs, one copy, no intermediate string.
func (s *StreamSummary[K]) EnableArena(seed uint64) bool {
	if s.n != 0 || s.items.Len() != 0 {
		panic("spacesaving: EnableArena after updates")
	}
	ix, ok := arena.NewForString[K](s.m, seed)
	if !ok {
		return false
	}
	s.items = ix
	s.fast = nil
	s.arenaOn = true
	s.clone = nil
	return true
}

// lookup, store, unstore, and size are the hot-path face of the key
// index: direct map operations while fast is non-nil (the default),
// one interface call otherwise (arena). Eviction-heavy streams pay
// these per item, so the default path must not fund the arena's
// abstraction. Update and AddN spell the lookup branch out inline
// instead of calling lookup: the comma-ok map access plus the
// interface fallback push the shape instantiation of a lookup helper
// over the inline budget, which costs ~15% on uniform streams.
//
//hh:noalloc
func (s *StreamSummary[K]) lookup(item K) (int32, bool) {
	if s.fast != nil {
		nd, ok := s.fast[item]
		return nd, ok
	}
	return s.items.Get(item)
}

// store retains item → nd and returns the retained key (a slab view on
// the arena path; item itself otherwise).
//
//hh:noalloc
func (s *StreamSummary[K]) store(item K, nd int32) K {
	if s.fast != nil {
		s.fast[item] = nd
		return item
	}
	return s.items.Put(item, nd)
}

//hh:noalloc
func (s *StreamSummary[K]) unstore(item K) {
	if s.fast != nil {
		delete(s.fast, item)
		return
	}
	s.items.Delete(item)
}

//hh:noalloc
func (s *StreamSummary[K]) size() int {
	if s.fast != nil {
		return len(s.fast)
	}
	return s.items.Len()
}

// MemoryFootprint reports the arena + index footprint; ok is false on
// the map path, whose footprint the runtime owns.
func (s *StreamSummary[K]) MemoryFootprint() (arena.MemStats, bool) { return s.items.Mem() }

// New returns a SPACESAVING instance with m counters backed by a
// Stream-Summary. It panics if m < 1.
func New[K comparable](m int) *StreamSummary[K] {
	if m < 1 {
		panic("spacesaving: m must be >= 1")
	}
	if m > math.MaxInt32-1 {
		// The slab links are int32 indices (m nodes, m+1 groups); a larger
		// m would wrap them. Fail loudly instead of corrupting.
		panic("spacesaving: m exceeds the int32 slab index range")
	}
	mp := arena.NewMap[K](m)
	s := &StreamSummary[K]{
		m:      m,
		items:  mp,
		fast:   mp,
		nodes:  make([]ssNode[K], m),
		groups: make([]ssGroup, m+1),
	}
	s.initFreeLists()
	return s
}

//hh:noalloc
func (s *StreamSummary[K]) initFreeLists() {
	for i := range s.nodes {
		s.nodes[i].next = int32(i) + 1
	}
	s.nodes[len(s.nodes)-1].next = nilIdx
	for i := range s.groups {
		s.groups[i].next = int32(i) + 1
	}
	s.groups[len(s.groups)-1].next = nilIdx
	s.freeNode, s.freeGroup = 0, 0
	s.head, s.tail = nilIdx, nilIdx
}

//hh:noalloc
func (s *StreamSummary[K]) allocNode(item K, err uint64) int32 {
	i := s.freeNode
	s.freeNode = s.nodes[i].next
	s.nodes[i] = ssNode[K]{item: item, err: err, grp: nilIdx, prev: nilIdx, next: nilIdx}
	return i
}

//hh:noalloc
func (s *StreamSummary[K]) freeNodeIdx(i int32) {
	var zero K
	s.nodes[i].item = zero // drop any reference held by the slab slot
	// grp = nilIdx marks the node dead: AddNBatch validates its probe
	// hints against it, so a hint to a freed-but-unreused node (whose
	// zeroed item could equal a legitimate zero-value key) is rejected.
	s.nodes[i].grp = nilIdx
	s.nodes[i].next = s.freeNode
	s.freeNode = i
}

//hh:noalloc
func (s *StreamSummary[K]) allocGroup(count uint64) int32 {
	i := s.freeGroup
	s.freeGroup = s.groups[i].next
	s.groups[i] = ssGroup{count: count, prev: nilIdx, next: nilIdx, head: nilIdx, tail: nilIdx}
	return i
}

//hh:noalloc
func (s *StreamSummary[K]) freeGroupIdx(i int32) {
	s.groups[i].size = 0
	s.groups[i].next = s.freeGroup
	s.freeGroup = i
}

// Update processes one occurrence of item.
//
//hh:noalloc
func (s *StreamSummary[K]) Update(item K) {
	s.n++
	var nd int32
	var ok bool
	if s.fast != nil {
		nd, ok = s.fast[item]
	} else {
		nd, ok = s.items.Get(item)
	}
	if ok {
		s.bump(nd, s.groups[s.nodes[nd].grp].count+1)
		return
	}
	if s.clone != nil {
		item = s.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	if s.size() < s.m {
		fresh := s.allocNode(item, 0)
		s.nodes[fresh].item = s.store(item, fresh)
		target := s.head
		if target == nilIdx || s.groups[target].count != 1 {
			target = s.insertGroupBefore(s.head, 1)
		}
		s.appendNode(target, fresh)
		return
	}
	// Evict the oldest member of the minimum bucket; the newcomer
	// inherits its count plus one and records the eviction error.
	minG := s.head
	minCount := s.groups[minG].count
	victim := s.groups[minG].head
	s.unstore(s.nodes[victim].item)
	s.unlinkNode(victim)
	s.freeNodeIdx(victim)
	nd = s.allocNode(item, minCount)
	s.nodes[nd].item = s.store(item, nd)
	// minG may have been removed if the victim was its only member; the
	// newcomer belongs to the bucket with count minCount+1 which, if it
	// must be created, sits exactly where minG was (or after it).
	s.placeWithCount(nd, minCount+1)
}

// AddN processes n occurrences of item at once, with the semantics of
// SPACESAVINGR restricted to integer weights (Section 6.1): a stored item
// gains n; a newcomer on a full structure replaces the minimum counter,
// starts at c_min + n, and records ε = c_min. AddN(item, 1) is exactly
// Update(item). Repositioning scans the group list forward, so a single
// call costs O(groups crossed) rather than O(1); amortized over a batch
// the cost matches feeding the occurrences one at a time.
//
//hh:noalloc
func (s *StreamSummary[K]) AddN(item K, n uint64) {
	if n == 0 {
		return
	}
	s.n += n
	var nd int32
	var ok bool
	if s.fast != nil {
		nd, ok = s.fast[item]
	} else {
		nd, ok = s.items.Get(item)
	}
	if ok {
		s.bumpN(nd, s.groups[s.nodes[nd].grp].count+n)
		return
	}
	if s.clone != nil {
		item = s.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	if s.size() < s.m {
		fresh := s.allocNode(item, 0)
		s.nodes[fresh].item = s.store(item, fresh)
		s.placeWithCount(fresh, n)
		return
	}
	minG := s.head
	minCount := s.groups[minG].count
	victim := s.groups[minG].head
	s.unstore(s.nodes[victim].item)
	s.unlinkNode(victim)
	s.freeNodeIdx(victim)
	nd = s.allocNode(item, minCount)
	s.nodes[nd].item = s.store(item, nd)
	s.placeWithCount(nd, minCount+n)
}

// AddNBatch processes a coalesced batch: counts[i] occurrences of
// items[i], equivalent to calling AddN(items[i], counts[i]) in order.
// Batch keys must be pairwise distinct (the coalescing partitioner
// guarantees it); a nil counts means every key occurs once. hashes,
// when non-nil on an arena-backed structure, must carry each key's
// keyHasher hash with the structure's seed (the partition hash) and is
// used to probe the index without rehashing.
//
// On the arena index the kernel is two-pass: the first pass only
// probes the key index, recording each key's node as a hit hint — a
// tight loop of independent lookups the CPU can overlap, instead of
// interleaving each dependent probe with the bucket-list mutation that
// follows it. The second pass applies the counts. A hint can go stale
// when an earlier miss in the same batch evicts its node, so every
// hint is validated against the live node (grp lifetime mark + key
// equality) before use; a stale hit is by construction a miss — batch
// keys are distinct, so nothing re-inserts an evicted batch key — and
// takes the miss path directly. The map-backed fast path stays
// single-pass: a Go map probe cannot be overlapped the same way, so
// the hint scratch would be pure overhead there.
//
//hh:noalloc
func (s *StreamSummary[K]) AddNBatch(items []K, counts []uint32, hashes []uint64) {
	if s.fast != nil {
		for i, it := range items {
			n := uint64(1)
			if counts != nil {
				n = uint64(counts[i])
			}
			if n == 0 {
				continue
			}
			if nd, ok := s.fast[it]; ok {
				s.n += n
				s.bumpN(nd, s.groups[s.nodes[nd].grp].count+n)
				continue
			}
			s.addNMiss(it, n)
		}
		return
	}
	s.probe = s.probe[:0]
	if hashes != nil {
		for i, it := range items {
			nd, ok := s.items.GetHashed(it, hashes[i])
			if !ok {
				nd = nilIdx
			}
			s.probe = append(s.probe, nd)
		}
	} else {
		for _, it := range items {
			nd, ok := s.items.Get(it)
			if !ok {
				nd = nilIdx
			}
			s.probe = append(s.probe, nd)
		}
	}
	for i, it := range items {
		n := uint64(1)
		if counts != nil {
			n = uint64(counts[i])
		}
		if n == 0 {
			continue
		}
		if nd := s.probe[i]; nd != nilIdx && s.nodes[nd].grp != nilIdx && s.nodes[nd].item == it {
			s.n += n
			s.bumpN(nd, s.groups[s.nodes[nd].grp].count+n)
			continue
		}
		s.addNMiss(it, n)
	}
}

// addNMiss is AddN's insert/evict tail for a key known to be absent —
// the batch kernel's miss path, which needs no index probe (a miss
// verdict cannot go stale inside a batch of distinct keys: no later
// group re-inserts the key).
//
//hh:noalloc
func (s *StreamSummary[K]) addNMiss(item K, n uint64) {
	s.n += n
	if s.clone != nil {
		item = s.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	if s.size() < s.m {
		fresh := s.allocNode(item, 0)
		s.nodes[fresh].item = s.store(item, fresh)
		s.placeWithCount(fresh, n)
		return
	}
	minG := s.head
	minCount := s.groups[minG].count
	victim := s.groups[minG].head
	s.unstore(s.nodes[victim].item)
	s.unlinkNode(victim)
	s.freeNodeIdx(victim)
	nd := s.allocNode(item, minCount)
	s.nodes[nd].item = s.store(item, nd)
	s.placeWithCount(nd, minCount+n)
}

// bumpN moves nd to the bucket holding newCount (which must exceed its
// current count), scanning forward from its current position.
//
//hh:noalloc
func (s *StreamSummary[K]) bumpN(nd int32, newCount uint64) {
	start := s.groups[s.nodes[nd].grp].next
	s.unlinkNode(nd) // may remove nd's old group; start stays valid either way
	t := start
	for t != nilIdx && s.groups[t].count < newCount {
		t = s.groups[t].next
	}
	if t != nilIdx && s.groups[t].count == newCount {
		s.appendNode(t, nd)
		return
	}
	s.appendNode(s.insertGroupBefore(t, newCount), nd)
}

// bump moves nd to the bucket holding newCount, creating it if needed.
//
//hh:noalloc
func (s *StreamSummary[K]) bump(nd int32, newCount uint64) {
	g := s.nodes[nd].grp
	target := s.groups[g].next
	s.unlinkNode(nd) // may remove g
	if target != nilIdx && s.groups[target].count == newCount {
		s.appendNode(target, nd)
		return
	}
	// Either g survived (target group missing: insert right after g) or g
	// was removed (insert before target, i.e. at target's old position).
	if s.groups[g].size > 0 {
		s.appendNode(s.insertGroupAfter(g, newCount), nd)
	} else {
		s.appendNode(s.insertGroupBefore(target, newCount), nd)
	}
}

// placeWithCount inserts a fresh node into the bucket with the given
// count, scanning from the head (the count is within one of the minimum,
// so this is O(1)).
//
//hh:noalloc
func (s *StreamSummary[K]) placeWithCount(nd int32, count uint64) {
	g := s.head
	for g != nilIdx && s.groups[g].count < count {
		g = s.groups[g].next
	}
	if g != nilIdx && s.groups[g].count == count {
		s.appendNode(g, nd)
		return
	}
	s.appendNode(s.insertGroupBefore(g, count), nd)
}

// Estimate returns the stored count of item, zero if absent. Stored
// estimates never undercount: f_i ≤ c_i.
//
//hh:noalloc
func (s *StreamSummary[K]) Estimate(item K) uint64 {
	nd, ok := s.lookup(item)
	if !ok {
		return 0
	}
	return s.groups[s.nodes[nd].grp].count
}

// ErrorOf returns ε_item, the overestimation recorded when item last
// entered the frequent set (zero if item is absent or entered on a free
// counter). The guarantee c_i − ε_i ≤ f_i ≤ c_i holds per Lemma 3 of the
// SpaceSaving paper.
//
//hh:noalloc
func (s *StreamSummary[K]) ErrorOf(item K) uint64 {
	nd, ok := s.lookup(item)
	if !ok {
		return 0
	}
	return s.nodes[nd].err
}

// MinCount returns the smallest stored counter value Δ (zero when fewer
// than m counters are in use). Section 4.2 uses Δ for the global
// underestimate transform.
//
//hh:noalloc
func (s *StreamSummary[K]) MinCount() uint64 {
	if s.size() < s.m || s.head == nilIdx {
		return 0
	}
	return s.groups[s.head].count
}

// Each calls yield for every stored counter in decreasing count order
// (ties in FIFO bucket order), stopping early if yield returns false. It
// performs no allocations; the structure must not be mutated during the
// iteration.
//
//hh:noalloc
func (s *StreamSummary[K]) Each(yield func(core.Entry[K]) bool) {
	for g := s.tail; g != nilIdx; g = s.groups[g].prev {
		count := s.groups[g].count
		for nd := s.groups[g].head; nd != nilIdx; nd = s.nodes[nd].next {
			if !yield(core.Entry[K]{Item: s.items.Materialize(s.nodes[nd].item), Count: count, Err: s.nodes[nd].err}) {
				return
			}
		}
	}
}

// AppendEntries appends the stored counters in decreasing count order to
// dst, stopping after max entries when max >= 0, and returns the extended
// slice. With a reused buffer of sufficient capacity it allocates
// nothing.
//
//hh:noalloc
func (s *StreamSummary[K]) AppendEntries(dst []core.Entry[K], max int) []core.Entry[K] {
	if max == 0 {
		return dst
	}
	taken := 0
	for g := s.tail; g != nilIdx; g = s.groups[g].prev {
		count := s.groups[g].count
		for nd := s.groups[g].head; nd != nilIdx; nd = s.nodes[nd].next {
			dst = append(dst, core.Entry[K]{Item: s.items.Materialize(s.nodes[nd].item), Count: count, Err: s.nodes[nd].err})
			taken++
			if max > 0 && taken >= max {
				return dst
			}
		}
	}
	return dst
}

// Entries returns the stored counters sorted by decreasing count; each
// entry carries its ε_i in Err.
func (s *StreamSummary[K]) Entries() []core.Entry[K] {
	return s.AppendEntries(make([]core.Entry[K], 0, s.items.Len()), -1)
}

// Capacity returns m.
func (s *StreamSummary[K]) Capacity() int { return s.m }

// Len returns the number of stored counters.
func (s *StreamSummary[K]) Len() int { return s.items.Len() }

// N returns the number of processed stream elements. For SPACESAVING the
// stored counters always sum to exactly this value.
func (s *StreamSummary[K]) N() uint64 { return s.n }

// Reset restores the empty state, retaining the slabs and map storage so
// a reset structure keeps updating allocation-free.
//
//hh:noalloc
func (s *StreamSummary[K]) Reset() {
	s.items.Reset()
	var zero K
	for i := range s.nodes {
		s.nodes[i].item = zero
	}
	s.initFreeLists()
	s.n = 0
}

// Guarantee returns the Appendix C tail constants A = B = 1.
func (s *StreamSummary[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

// --- group-list plumbing (ascending by count) ---

//hh:noalloc
func (s *StreamSummary[K]) insertGroupAfter(g int32, count uint64) int32 {
	ng := s.allocGroup(count)
	next := s.groups[g].next
	s.groups[ng].prev, s.groups[ng].next = g, next
	if next != nilIdx {
		s.groups[next].prev = ng
	} else {
		s.tail = ng
	}
	s.groups[g].next = ng
	return ng
}

// insertGroupBefore inserts a new group before g; a nil g appends at the
// tail (covers the empty-list case too).
//
//hh:noalloc
func (s *StreamSummary[K]) insertGroupBefore(g int32, count uint64) int32 {
	ng := s.allocGroup(count)
	if g == nilIdx {
		s.groups[ng].prev = s.tail
		if s.tail != nilIdx {
			s.groups[s.tail].next = ng
		} else {
			s.head = ng
		}
		s.tail = ng
		return ng
	}
	prev := s.groups[g].prev
	s.groups[ng].prev, s.groups[ng].next = prev, g
	if prev != nilIdx {
		s.groups[prev].next = ng
	} else {
		s.head = ng
	}
	s.groups[g].prev = ng
	return ng
}

//hh:noalloc
func (s *StreamSummary[K]) removeGroup(g int32) {
	prev, next := s.groups[g].prev, s.groups[g].next
	if prev != nilIdx {
		s.groups[prev].next = next
	} else {
		s.head = next
	}
	if next != nilIdx {
		s.groups[next].prev = prev
	} else {
		s.tail = prev
	}
	s.freeGroupIdx(g)
}

//hh:noalloc
func (s *StreamSummary[K]) appendNode(g int32, nd int32) {
	tail := s.groups[g].tail
	s.nodes[nd].grp = g
	s.nodes[nd].prev, s.nodes[nd].next = tail, nilIdx
	if tail != nilIdx {
		s.nodes[tail].next = nd
	} else {
		s.groups[g].head = nd
	}
	s.groups[g].tail = nd
	s.groups[g].size++
}

//hh:noalloc
func (s *StreamSummary[K]) unlinkNode(nd int32) {
	g := s.nodes[nd].grp
	prev, next := s.nodes[nd].prev, s.nodes[nd].next
	if prev != nilIdx {
		s.nodes[prev].next = next
	} else {
		s.groups[g].head = next
	}
	if next != nilIdx {
		s.nodes[next].prev = prev
	} else {
		s.groups[g].tail = prev
	}
	s.groups[g].size--
	if s.groups[g].size == 0 {
		s.removeGroup(g)
	}
	s.nodes[nd].prev, s.nodes[nd].next, s.nodes[nd].grp = nilIdx, nilIdx, nilIdx
}
