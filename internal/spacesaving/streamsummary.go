// Package spacesaving implements the SPACESAVING algorithm of Metwally,
// Agrawal and El Abbadi (Algorithm 2 in the paper): maintain at most m
// counters; when a new item arrives with all counters taken, it replaces
// the item with the smallest counter c_min and starts at c_min + 1,
// recording ε_i = c_min as its possible overestimation.
//
// SPACESAVING overestimates: f_i ≤ c_i ≤ f_i + ε_i, the counters always
// sum to the stream length, and Appendix C proves the k-tail guarantee
// with constants A = B = 1: c_i − f_i ≤ F1^res(k) / (m − k).
//
// Two backing structures are provided:
//
//   - StreamSummary: the original bucket-list structure, O(1) per update;
//     among minimum-count items it evicts the least recently bucketed one
//     (deterministic FIFO).
//   - Heap (heap.go): a binary min-heap ordered by (count, identifier),
//     O(log m) per update; it evicts the smallest identifier among
//     minimum counts, the exact tie-break the Theorem 1 proof specifies.
//
// Both satisfy identical guarantees; E11 measures the constant-factor
// trade.
package spacesaving

import "repro/internal/core"

type ssGroup[K comparable] struct {
	count      uint64
	prev, next *ssGroup[K]
	head, tail *ssNode[K]
	size       int
}

type ssNode[K comparable] struct {
	item       K
	err        uint64
	grp        *ssGroup[K]
	prev, next *ssNode[K]
}

// StreamSummary is the O(1) bucket-list SPACESAVING implementation. The
// zero value is not usable; construct with New.
type StreamSummary[K comparable] struct {
	m     int
	items map[K]*ssNode[K]
	// head/tail of the group list, ascending by count.
	head, tail *ssGroup[K]
	n          uint64
}

// New returns a SPACESAVING instance with m counters backed by a
// Stream-Summary. It panics if m < 1.
func New[K comparable](m int) *StreamSummary[K] {
	if m < 1 {
		panic("spacesaving: m must be >= 1")
	}
	return &StreamSummary[K]{m: m, items: make(map[K]*ssNode[K], m)}
}

// Update processes one occurrence of item.
func (s *StreamSummary[K]) Update(item K) {
	s.n++
	if nd, ok := s.items[item]; ok {
		s.bump(nd, nd.grp.count+1)
		return
	}
	if len(s.items) < s.m {
		nd := &ssNode[K]{item: item}
		s.items[item] = nd
		target := s.head
		if target == nil || target.count != 1 {
			target = s.insertGroupBefore(s.head, 1)
		}
		s.appendNode(target, nd)
		return
	}
	// Evict the oldest member of the minimum bucket; the newcomer
	// inherits its count plus one and records the eviction error.
	minG := s.head
	victim := minG.head
	delete(s.items, victim.item)
	s.unlinkNode(victim)
	nd := &ssNode[K]{item: item, err: minG.count}
	s.items[item] = nd
	// minG may have been removed if the victim was its only member; the
	// newcomer belongs to the bucket with count minG.count+1 which, if it
	// must be created, sits exactly where minG was (or after it).
	s.placeWithCount(nd, minG.count+1)
}

// AddN processes n occurrences of item at once, with the semantics of
// SPACESAVINGR restricted to integer weights (Section 6.1): a stored item
// gains n; a newcomer on a full structure replaces the minimum counter,
// starts at c_min + n, and records ε = c_min. AddN(item, 1) is exactly
// Update(item). Repositioning scans the group list forward, so a single
// call costs O(groups crossed) rather than O(1); amortized over a batch
// the cost matches feeding the occurrences one at a time.
func (s *StreamSummary[K]) AddN(item K, n uint64) {
	if n == 0 {
		return
	}
	s.n += n
	if nd, ok := s.items[item]; ok {
		s.bumpN(nd, nd.grp.count+n)
		return
	}
	if len(s.items) < s.m {
		nd := &ssNode[K]{item: item}
		s.items[item] = nd
		s.placeWithCount(nd, n)
		return
	}
	minG := s.head
	victim := minG.head
	delete(s.items, victim.item)
	s.unlinkNode(victim)
	nd := &ssNode[K]{item: item, err: minG.count}
	s.items[item] = nd
	s.placeWithCount(nd, minG.count+n)
}

// bumpN moves nd to the bucket holding newCount (which must exceed its
// current count), scanning forward from its current position.
func (s *StreamSummary[K]) bumpN(nd *ssNode[K], newCount uint64) {
	start := nd.grp.next
	s.unlinkNode(nd) // may remove nd's old group; start stays valid either way
	t := start
	for t != nil && t.count < newCount {
		t = t.next
	}
	if t != nil && t.count == newCount {
		s.appendNode(t, nd)
		return
	}
	s.appendNode(s.insertGroupBefore(t, newCount), nd)
}

// bump moves nd to the bucket holding newCount, creating it if needed.
func (s *StreamSummary[K]) bump(nd *ssNode[K], newCount uint64) {
	g := nd.grp
	target := g.next
	s.unlinkNode(nd) // may remove g
	if target != nil && target.count == newCount {
		s.appendNode(target, nd)
		return
	}
	// Either g survived (target group missing: insert right after g) or g
	// was removed (insert before target, i.e. at target's old position).
	if g.size > 0 {
		s.appendNode(s.insertGroupAfter(g, newCount), nd)
	} else {
		s.appendNode(s.insertGroupBefore(target, newCount), nd)
	}
}

// placeWithCount inserts a fresh node into the bucket with the given
// count, scanning from the head (the count is within one of the minimum,
// so this is O(1)).
func (s *StreamSummary[K]) placeWithCount(nd *ssNode[K], count uint64) {
	g := s.head
	for g != nil && g.count < count {
		g = g.next
	}
	if g != nil && g.count == count {
		s.appendNode(g, nd)
		return
	}
	s.appendNode(s.insertGroupBefore(g, count), nd)
}

// Estimate returns the stored count of item, zero if absent. Stored
// estimates never undercount: f_i ≤ c_i.
func (s *StreamSummary[K]) Estimate(item K) uint64 {
	nd, ok := s.items[item]
	if !ok {
		return 0
	}
	return nd.grp.count
}

// ErrorOf returns ε_item, the overestimation recorded when item last
// entered the frequent set (zero if item is absent or entered on a free
// counter). The guarantee c_i − ε_i ≤ f_i ≤ c_i holds per Lemma 3 of the
// SpaceSaving paper.
func (s *StreamSummary[K]) ErrorOf(item K) uint64 {
	nd, ok := s.items[item]
	if !ok {
		return 0
	}
	return nd.err
}

// MinCount returns the smallest stored counter value Δ (zero when fewer
// than m counters are in use). Section 4.2 uses Δ for the global
// underestimate transform.
func (s *StreamSummary[K]) MinCount() uint64 {
	if len(s.items) < s.m || s.head == nil {
		return 0
	}
	return s.head.count
}

// Entries returns the stored counters sorted by decreasing count; each
// entry carries its ε_i in Err.
func (s *StreamSummary[K]) Entries() []core.Entry[K] {
	out := make([]core.Entry[K], 0, len(s.items))
	for g := s.tail; g != nil; g = g.prev {
		for nd := g.head; nd != nil; nd = nd.next {
			out = append(out, core.Entry[K]{Item: nd.item, Count: g.count, Err: nd.err})
		}
	}
	return out
}

// Capacity returns m.
func (s *StreamSummary[K]) Capacity() int { return s.m }

// Len returns the number of stored counters.
func (s *StreamSummary[K]) Len() int { return len(s.items) }

// N returns the number of processed stream elements. For SPACESAVING the
// stored counters always sum to exactly this value.
func (s *StreamSummary[K]) N() uint64 { return s.n }

// Reset restores the empty state.
func (s *StreamSummary[K]) Reset() {
	s.items = make(map[K]*ssNode[K], s.m)
	s.head, s.tail = nil, nil
	s.n = 0
}

// Guarantee returns the Appendix C tail constants A = B = 1.
func (s *StreamSummary[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

// --- group-list plumbing (ascending by count) ---

func (s *StreamSummary[K]) insertGroupAfter(g *ssGroup[K], count uint64) *ssGroup[K] {
	ng := &ssGroup[K]{count: count, prev: g, next: g.next}
	if g.next != nil {
		g.next.prev = ng
	} else {
		s.tail = ng
	}
	g.next = ng
	return ng
}

// insertGroupBefore inserts a new group before g; a nil g appends at the
// tail (covers the empty-list case too).
func (s *StreamSummary[K]) insertGroupBefore(g *ssGroup[K], count uint64) *ssGroup[K] {
	if g == nil {
		ng := &ssGroup[K]{count: count, prev: s.tail}
		if s.tail != nil {
			s.tail.next = ng
		} else {
			s.head = ng
		}
		s.tail = ng
		return ng
	}
	ng := &ssGroup[K]{count: count, prev: g.prev, next: g}
	if g.prev != nil {
		g.prev.next = ng
	} else {
		s.head = ng
	}
	g.prev = ng
	return ng
}

func (s *StreamSummary[K]) removeGroup(g *ssGroup[K]) {
	if g.prev != nil {
		g.prev.next = g.next
	} else {
		s.head = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else {
		s.tail = g.prev
	}
}

func (s *StreamSummary[K]) appendNode(g *ssGroup[K], nd *ssNode[K]) {
	nd.grp = g
	nd.prev, nd.next = g.tail, nil
	if g.tail != nil {
		g.tail.next = nd
	} else {
		g.head = nd
	}
	g.tail = nd
	g.size++
}

func (s *StreamSummary[K]) unlinkNode(nd *ssNode[K]) {
	g := nd.grp
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		g.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		g.tail = nd.prev
	}
	g.size--
	if g.size == 0 {
		s.removeGroup(g)
	}
	nd.prev, nd.next, nd.grp = nil, nil, nil
}
