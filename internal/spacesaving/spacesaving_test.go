package spacesaving

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/stream"
)

// both constructs the two unit-weight variants for shared tests.
func both(m int) map[string]core.Algorithm[uint64] {
	return map[string]core.Algorithm[uint64]{
		"stream-summary": New[uint64](m),
		"heap":           NewHeap[uint64](m),
	}
}

func TestExactUnderCapacity(t *testing.T) {
	for name, alg := range both(10) {
		core.Feed(alg, []uint64{1, 2, 1, 3, 1, 2})
		if got := alg.Estimate(1); got != 3 {
			t.Errorf("%s: Estimate(1) = %d, want 3", name, got)
		}
		if got := alg.Estimate(3); got != 1 {
			t.Errorf("%s: Estimate(3) = %d, want 1", name, got)
		}
		if got := alg.Estimate(9); got != 0 {
			t.Errorf("%s: Estimate(9) = %d, want 0", name, got)
		}
	}
}

func TestEvictionTakesOverMinCounter(t *testing.T) {
	// m=2: 1,1,2 gives {1:2, 2:1}. Arrival of 3 replaces 2 (the min) and
	// starts at 1+1 = 2 with ε = 1.
	for name, alg := range both(2) {
		core.Feed(alg, []uint64{1, 1, 2, 3})
		if got := alg.Estimate(3); got != 2 {
			t.Errorf("%s: Estimate(3) = %d, want 2", name, got)
		}
		if got := alg.Estimate(2); got != 0 {
			t.Errorf("%s: Estimate(2) = %d, want 0 (evicted)", name, got)
		}
		if alg.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", name, alg.Len())
		}
	}
}

func TestErrorOf(t *testing.T) {
	ss := New[uint64](2)
	core.Feed[uint64](ss, []uint64{1, 1, 2, 3})
	if got := ss.ErrorOf(3); got != 1 {
		t.Errorf("ErrorOf(3) = %d, want 1", got)
	}
	if got := ss.ErrorOf(1); got != 0 {
		t.Errorf("ErrorOf(1) = %d, want 0", got)
	}
	h := NewHeap[uint64](2)
	core.Feed[uint64](h, []uint64{1, 1, 2, 3})
	if got := h.ErrorOf(3); got != 1 {
		t.Errorf("heap ErrorOf(3) = %d, want 1", got)
	}
}

func TestHeapEvictsSmallestIdentifier(t *testing.T) {
	// Items 1,2,3 all at count 1 with m=3; newcomer must replace the
	// smallest identifier among the minimum counters (item 1), per the
	// Theorem 1 proof convention.
	h := NewHeap[uint64](3)
	core.Feed[uint64](h, []uint64{3, 1, 2, 9})
	if got := h.Estimate(1); got != 0 {
		t.Errorf("Estimate(1) = %d, want 0 (should have been evicted)", got)
	}
	if got := h.Estimate(9); got != 2 {
		t.Errorf("Estimate(9) = %d, want 2", got)
	}
	if h.Estimate(2) != 1 || h.Estimate(3) != 1 {
		t.Error("non-minimum identifiers must survive")
	}
}

func TestStreamSummaryEvictsOldest(t *testing.T) {
	// FIFO tie-break: with items arriving 3,1,2 all at count 1, the
	// oldest bucket member (3) is evicted first.
	ss := New[uint64](3)
	core.Feed[uint64](ss, []uint64{3, 1, 2, 9})
	if got := ss.Estimate(3); got != 0 {
		t.Errorf("Estimate(3) = %d, want 0 (oldest should be evicted)", got)
	}
	if got := ss.Estimate(9); got != 2 {
		t.Errorf("Estimate(9) = %d, want 2", got)
	}
}

func TestCounterSumEqualsN(t *testing.T) {
	// Appendix C: the counters always sum to the stream length.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		for _, alg := range both(m) {
			for _, x := range raw {
				alg.Update(uint64(x) % 16)
			}
			var sum uint64
			for _, e := range alg.Entries() {
				sum += e.Count
			}
			if sum != alg.N() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverestimateSidedness(t *testing.T) {
	// For stored items: f_i ≤ c_i ≤ f_i + ε_i.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		ss := New[uint64](m)
		truth := exact.New()
		for _, x := range raw {
			item := uint64(x) % 16
			ss.Update(item)
			truth.Update(item)
		}
		for _, e := range ss.Entries() {
			f := truth.Freq(e.Item)
			if float64(e.Count) < f {
				return false
			}
			if float64(e.Count)-float64(e.Err) > f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinCountBoundsAllErrors(t *testing.T) {
	// Lemma 3 of [25]: every estimation error (including unstored items)
	// is at most the minimum counter Δ.
	s := stream.Zipf(200, 1.1, 20000, stream.OrderRandom, 5)
	truth := exact.FromStream(s)
	ss := New[uint64](30)
	for _, x := range s {
		ss.Update(x)
	}
	delta := float64(ss.MinCount())
	for i := uint64(0); i < 200; i++ {
		est := float64(ss.Estimate(i))
		diff := est - truth.Freq(i)
		if diff < 0 {
			diff = -diff
		}
		if diff > delta {
			t.Errorf("item %d: error %v exceeds Δ=%v", i, diff, delta)
		}
	}
}

func TestIthCounterDominatesIthFrequency(t *testing.T) {
	// Theorem 2 of [25]: the i-th largest counter is at least the i-th
	// largest frequency.
	s := stream.Zipf(300, 1.2, 30000, stream.OrderRandom, 9)
	truth := exact.FromStream(s)
	sortedFreq := truth.Dense(300).SortedDesc()
	for name, alg := range both(25) {
		for _, x := range s {
			alg.Update(x)
		}
		es := alg.Entries()
		for i, e := range es {
			if float64(e.Count) < sortedFreq[i] {
				t.Errorf("%s: counter %d = %d below f_%d = %v", name, i, e.Count, i+1, sortedFreq[i])
			}
		}
	}
}

func TestTailGuaranteeAllOrders(t *testing.T) {
	// Appendix C: δ_i ≤ F1^res(k)/(m−k) in every arrival order, for both
	// backing structures.
	const n, total, m = 300, 30000, 40
	for _, order := range stream.Orders() {
		s := stream.Zipf(n, 1.2, total, order, 3)
		truth := exact.FromStream(s)
		freq := truth.Dense(n)
		for name, alg := range both(m) {
			for _, x := range s {
				alg.Update(x)
			}
			maxErr := core.MaxError(alg, freq)
			for _, k := range []int{1, 5, 10, 20, m - 1} {
				bound := core.TailGuarantee{A: 1, B: 1}.Bound(m, k, truth.Res1(k))
				if maxErr > bound {
					t.Errorf("%s order=%v k=%d: error %v exceeds bound %v", name, order, k, maxErr, bound)
				}
			}
		}
	}
}

func TestMinCountNotFull(t *testing.T) {
	ss := New[uint64](5)
	ss.Update(1)
	if got := ss.MinCount(); got != 0 {
		t.Errorf("MinCount (not full) = %d, want 0", got)
	}
	h := NewHeap[uint64](5)
	h.Update(1)
	if got := h.MinCount(); got != 0 {
		t.Errorf("heap MinCount (not full) = %d, want 0", got)
	}
}

func TestPanicsOnBadM(t *testing.T) {
	for name, fn := range map[string]func(){
		"New(0)":     func() { New[int](0) },
		"NewHeap(0)": func() { NewHeap[int](0) },
		"NewR(0)":    func() { NewR[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReset(t *testing.T) {
	for name, alg := range both(3) {
		core.Feed(alg, []uint64{1, 2, 3, 4, 5})
		alg.Reset()
		if alg.Len() != 0 || alg.N() != 0 {
			t.Errorf("%s: Reset did not clear state", name)
		}
		alg.Update(9)
		if alg.Estimate(9) != 1 {
			t.Errorf("%s: unusable after Reset", name)
		}
	}
}

func TestEntriesSortedDescWithErrs(t *testing.T) {
	ss := New[uint64](3)
	core.Feed[uint64](ss, []uint64{1, 1, 1, 2, 2, 3, 4})
	es := ss.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Count > es[i-1].Count {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
	if len(es) != 3 {
		t.Errorf("len = %d, want 3", len(es))
	}
}

func TestSingleCounter(t *testing.T) {
	for name, alg := range both(1) {
		core.Feed(alg, []uint64{1, 2, 3})
		// Counter follows the last item with count = N.
		if got := alg.Estimate(3); got != 3 {
			t.Errorf("%s: Estimate(3) = %d, want 3", name, got)
		}
		if alg.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, alg.Len())
		}
	}
}

func TestLongAlternatingStream(t *testing.T) {
	// Stress the bucket-list structure with items ping-ponging between
	// adjacent counts.
	ss := New[uint64](4)
	for i := 0; i < 10000; i++ {
		ss.Update(uint64(i % 8))
	}
	var sum uint64
	for _, e := range ss.Entries() {
		sum += e.Count
	}
	if sum != ss.N() {
		t.Errorf("counter sum %d != N %d", sum, ss.N())
	}
}
