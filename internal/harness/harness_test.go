package harness

import (
	"math"
	"strings"
	"testing"
)

func TestEvaluate(t *testing.T) {
	freq := []float64{10, 5, 0}
	est := func(i uint64) float64 { return []float64{8, 5, 1}[i] }
	m := Evaluate(est, freq)
	if m.MaxErr != 2 {
		t.Errorf("MaxErr = %v, want 2", m.MaxErr)
	}
	if m.L1 != 3 {
		t.Errorf("L1 = %v, want 3", m.L1)
	}
	if want := math.Sqrt(5); math.Abs(m.L2-want) > 1e-12 {
		t.Errorf("L2 = %v, want %v", m.L2, want)
	}
	if math.Abs(m.MeanErr-1) > 1e-12 {
		t.Errorf("MeanErr = %v, want 1", m.MeanErr)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(func(uint64) float64 { return 0 }, nil)
	if m.MaxErr != 0 || m.MeanErr != 0 || m.L1 != 0 || m.L2 != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestViolations(t *testing.T) {
	freq := []float64{10, 5, 0}
	est := func(i uint64) float64 { return []float64{8, 5, 1}[i] }
	if got := Violations(est, freq, 1.5); got != 1 {
		t.Errorf("Violations = %d, want 1", got)
	}
	if got := Violations(est, freq, 0.5); got != 2 {
		t.Errorf("Violations = %d, want 2", got)
	}
	if got := Violations(est, freq, 10); got != 0 {
		t.Errorf("Violations = %d, want 0", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "col1", "col2")
	tb.Add("a", "b")
	tb.Addf("x", 1.5)
	tb.Note("footnote %d", 7)
	out := tb.String()
	for _, want := range []string{"My Table", "col1", "----", "a", "1.5", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAddfTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Addf(42, 3.14159, "s")
	row := tb.Rows[0]
	if row[0] != "42" || row[2] != "s" {
		t.Errorf("row = %v", row)
	}
	if !strings.HasPrefix(row[1], "3.14") {
		t.Errorf("float cell = %q", row[1])
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("1", "x,y") // comma forces quoting
	tb.Add("2", "z")
	tb.Note("notes are omitted from CSV")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if strings.Contains(got, "note") {
		t.Error("CSV output must omit notes")
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "nan"},
		{1234567.5, "1.235e+06"},
		{0.0001, "1.000e-04"},
		{3.14159, "3.142"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
