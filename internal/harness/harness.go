// Package harness provides the shared machinery of the experiment suite:
// error metrics of an estimator against ground truth, and plain-text table
// rendering in the style of the paper's Table 1.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Metrics summarises the estimation quality of an algorithm over a
// universe, against exact frequencies.
type Metrics struct {
	// MaxErr is max_i |f_i − f̂_i| (the paper's δ bound subject).
	MaxErr float64
	// MeanErr is the mean absolute per-item error over the universe.
	MeanErr float64
	// L1 and L2 are ‖f − f̂‖_1 and ‖f − f̂‖_2.
	L1, L2 float64
}

// Evaluate computes Metrics for an estimator over the universe [0, n)
// with exact frequencies freq (indexed by item identifier).
func Evaluate(estimate func(uint64) float64, freq []float64) Metrics {
	var m Metrics
	var sumSq float64
	for i, f := range freq {
		d := math.Abs(f - estimate(uint64(i)))
		if d > m.MaxErr {
			m.MaxErr = d
		}
		m.L1 += d
		sumSq += d * d
	}
	if len(freq) > 0 {
		m.MeanErr = m.L1 / float64(len(freq))
	}
	m.L2 = math.Sqrt(sumSq)
	return m
}

// Violations counts universe items whose absolute error exceeds bound.
func Violations(estimate func(uint64) float64, freq []float64, bound float64) int {
	v := 0
	for i, f := range freq {
		if math.Abs(f-estimate(uint64(i))) > bound {
			v++
		}
	}
	return v
}

// Table is a plain-text experiment table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable returns an empty table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; the cell count should match the header.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values: each argument is rendered
// with %v for strings/ints and compact scientific notation for floats.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = F(x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(cells...)
}

// Note appends a free-text footnote rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w using aligned columns.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		seps := make([]string, len(t.Header))
		for i, h := range t.Header {
			seps[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(seps, "\t"))
	}
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as RFC-4180-style CSV (header row first,
// notes omitted), for feeding plotting scripts.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		return err.Error()
	}
	return sb.String()
}

// F formats a float compactly: integers without decimals, small values
// with 4 significant digits, large/small magnitudes in scientific
// notation.
func F(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
