package arena

import (
	"reflect"
	"strings"
	"unsafe"
)

// Index is the key → counter-slot mapping behind the counter
// structures (the keyIndex of internal/spacesaving and
// internal/frequent). The map implementation aliases whatever keys it
// is handed (the structures run their clone hook first); the arena
// implementation interns every retained key into its slabs and hands
// back slab-aliased views, which is why exported entries must pass
// through Materialize.
type Index[K comparable] interface {
	// Get returns the slot stored for k.
	//
	//hh:noalloc
	Get(k K) (int32, bool)
	// GetHashed is Get with the key hash precomputed by the caller. The
	// hash must come from the same seeded FNV-1a family this index was
	// built with (the root package's keyHasher) — the sharded batch
	// partitioner computes exactly that hash once per key, so batch
	// kernels probe without rehashing. The map implementation ignores
	// the hash (Go maps hash internally).
	//
	//hh:noalloc
	GetHashed(k K, h uint64) (int32, bool)
	// Put stores k → v and returns the retained key: k itself on the
	// map path, a slab-aliased view on the arena path. The structure
	// must store the returned key, not k.
	//
	//hh:noalloc
	Put(k K, v int32) K
	// Delete removes k, recycling its arena region; every alias of the
	// retained key becomes invalid.
	//
	//hh:noalloc
	Delete(k K)
	// Len returns the number of stored keys.
	//
	//hh:noalloc
	Len() int
	// Reset empties the index, retaining storage for reuse.
	//
	//hh:noalloc
	Reset()
	// Materialize copies a retained key for export across the query or
	// wire boundary (identity on the map path — those keys are owned).
	// It is the one annotated path allowed to allocate: detached keys
	// must outlive the region they alias.
	//
	//hh:noalloc
	Materialize(k K) K
	// Mem reports the index footprint; ok is false on the map path.
	Mem() (MemStats, bool)
}

// NewMap returns the map-backed Index — the default for every key
// type, and the only path for non-string keys. The concrete Map is
// returned (not the interface) so structures can also keep a
// devirtualized handle for their ingest hot path.
func NewMap[K comparable](m int) Map[K] {
	return make(Map[K], m)
}

// NewForString returns the arena-backed Index when K is a string kind,
// pre-sized so m live keys never trigger a rehash; ok is false for any
// other key type (callers keep the map path).
func NewForString[K comparable](m int, seed uint64) (ix Index[K], ok bool) {
	var zero K
	if reflect.TypeOf(zero).Kind() != reflect.String {
		return nil, false
	}
	return strIndex[K]{ix: NewStringIndex(m, seed)}, true
}

// asString reinterprets a string-kind K as string without boxing; asK
// is the inverse. Callers guarantee K's kind (NewForString checked).
//
//hh:noalloc
func asString[K comparable](k K) string { return *(*string)(unsafe.Pointer(&k)) }

//hh:noalloc
func asK[K comparable](s string) K { return *(*K)(unsafe.Pointer(&s)) }

// Map is the default Index: a plain Go map, aliasing its keys. It is
// a named map type so a structure holding the concrete Map can index
// it directly on its hot path — an interface call per Get/Put/Delete
// costs real throughput on eviction-heavy streams, and the default
// path must not pay for the arena's abstraction.
type Map[K comparable] map[K]int32

//hh:noalloc
func (ix Map[K]) Get(k K) (int32, bool) { v, ok := ix[k]; return v, ok }

//hh:noalloc
func (ix Map[K]) GetHashed(k K, _ uint64) (int32, bool) { v, ok := ix[k]; return v, ok }

//hh:noalloc
func (ix Map[K]) Put(k K, v int32) K { ix[k] = v; return k }

//hh:noalloc
func (ix Map[K]) Delete(k K) { delete(ix, k) }

//hh:noalloc
func (ix Map[K]) Len() int { return len(ix) }

//hh:noalloc
func (ix Map[K]) Reset() { clear(ix) }

//hh:noalloc
func (ix Map[K]) Materialize(k K) K { return k }

func (ix Map[K]) Mem() (MemStats, bool) { return MemStats{}, false }

// strIndex adapts StringIndex to Index[K] for string-kind K via no-op
// view conversions (the same reinterpretation borrow.go's cloner uses).
type strIndex[K comparable] struct {
	ix *StringIndex
}

//hh:noalloc
func (w strIndex[K]) Get(k K) (int32, bool) { return w.ix.Get(asString(k)) }

//hh:noalloc
func (w strIndex[K]) GetHashed(k K, h uint64) (int32, bool) { return w.ix.GetHashed(asString(k), h) }

//hh:noalloc
func (w strIndex[K]) Put(k K, v int32) K { return asK[K](w.ix.Put(asString(k), v)) }

//hh:noalloc
func (w strIndex[K]) Delete(k K) { w.ix.Delete(asString(k)) }

//hh:noalloc
func (w strIndex[K]) Len() int { return w.ix.Len() }

//hh:noalloc
func (w strIndex[K]) Reset() { w.ix.Reset() }

//hh:noalloc
func (w strIndex[K]) Materialize(k K) K {
	return asK[K](strings.Clone(asString(k))) //hh:allocok keys materialize at the query/wire boundary by contract
}

func (w strIndex[K]) Mem() (MemStats, bool) { return w.ix.Mem(), true }

// slot is one open-addressing table entry: the full 64-bit hash (so
// probes compare 8 bytes before touching key memory), the packed arena
// reference and key length, and the stored counter-slab index.
type slot struct {
	hash uint64
	off  uint32 // refNil marks the slot empty
	klen uint32
	val  int32
}

// StringIndex is the arena-backed open-addressing index: linear
// probing over a flat power-of-two slot array, tombstone-free deletion
// via backward shift, stop-the-world doubling (see the package comment
// for why not incremental). Keys are hashed with the same seeded
// FNV-1a family the root package's keyHasher uses for strings.
type StringIndex struct {
	ar     Arena
	slots  []slot
	mask   uint64
	seed   uint64
	live   int
	growAt int // live threshold (3/4 load) that triggers doubling
}

// NewStringIndex builds an index pre-sized so m live keys stay under
// the 3/4 load factor — growth never fires for a structure that holds
// at most m keys.
func NewStringIndex(m int, seed uint64) *StringIndex {
	n, _ := IndexFootprint(m)
	x := &StringIndex{
		slots:  make([]slot, n),
		mask:   uint64(n - 1),
		seed:   seed,
		growAt: n * 3 / 4,
	}
	x.ar.init()
	for i := range x.slots {
		x.slots[i].off = refNil
	}
	return x
}

// hashString is the seeded FNV-1a of the keyHasher family (summary.go
// fnv1a): the same mixing, so index distribution matches shard
// placement quality.
//
//hh:noalloc
func hashString(s string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	seed ^= seed >> 33
	seed *= 0x9e3779b97f4a7c15
	h := uint64(offset) ^ (seed ^ seed>>29)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Get returns the slot stored for k.
//
//hh:noalloc
func (x *StringIndex) Get(k string) (int32, bool) {
	if x.live == 0 {
		return 0, false
	}
	h := hashString(k, x.seed)
	i := h & x.mask
	for {
		s := &x.slots[i]
		if s.off == refNil {
			return 0, false
		}
		if s.hash == h && int(s.klen) == len(k) && x.ar.view(s.off, int(s.klen)) == k {
			return s.val, true
		}
		i = (i + 1) & x.mask
	}
}

// GetHashed is Get with h = hashString(k, x.seed) precomputed by the
// caller — the two-pass batch kernels hand down the partition hash
// (the identical keyHasher FNV-1a family with the identical seed), so
// a batch probe pass touches only the slot array and key bytes.
//
//hh:noalloc
func (x *StringIndex) GetHashed(k string, h uint64) (int32, bool) {
	if x.live == 0 {
		return 0, false
	}
	i := h & x.mask
	for {
		s := &x.slots[i]
		if s.off == refNil {
			return 0, false
		}
		if s.hash == h && int(s.klen) == len(k) && x.ar.view(s.off, int(s.klen)) == k {
			return s.val, true
		}
		i = (i + 1) & x.mask
	}
}

// Put interns k into the arena, stores k → v, and returns the
// slab-aliased view of the retained key. Re-putting a stored key
// overwrites its value and returns the existing view (no second copy).
//
//hh:noalloc
func (x *StringIndex) Put(k string, v int32) string {
	if x.live >= x.growAt {
		x.grow()
	}
	h := hashString(k, x.seed)
	i := h & x.mask
	for {
		s := &x.slots[i]
		if s.off == refNil {
			r := x.ar.alloc(len(k))
			copy(x.ar.bytes(r, len(k)), k)
			*s = slot{hash: h, off: r, klen: uint32(len(k)), val: v}
			x.live++
			return x.ar.view(r, len(k))
		}
		if s.hash == h && int(s.klen) == len(k) && x.ar.view(s.off, int(s.klen)) == k {
			s.val = v
			return x.ar.view(s.off, int(s.klen))
		}
		i = (i + 1) & x.mask
	}
}

// Delete removes k and recycles its region. Backward shift keeps every
// surviving key's probe chain unbroken without tombstones, so the
// table never degrades under eviction churn.
//
//hh:noalloc
func (x *StringIndex) Delete(k string) {
	if x.live == 0 {
		return
	}
	h := hashString(k, x.seed)
	i := h & x.mask
	for {
		s := &x.slots[i]
		if s.off == refNil {
			return
		}
		if s.hash == h && int(s.klen) == len(k) && x.ar.view(s.off, int(s.klen)) == k {
			break
		}
		i = (i + 1) & x.mask
	}
	// The probe above finished with the key bytes; release may now
	// overwrite them with the freelist link.
	x.ar.release(x.slots[i].off, int(x.slots[i].klen))
	x.live--
	j := i
	for {
		j = (j + 1) & x.mask
		s := x.slots[j]
		if s.off == refNil {
			break
		}
		// Slot j may move back to i only if its probe chain reaches back
		// that far: distance(home→j) >= distance(i→j).
		if (j-(s.hash&x.mask))&x.mask >= (j-i)&x.mask {
			x.slots[i] = s
			i = j
		}
	}
	x.slots[i] = slot{off: refNil}
}

// grow doubles the slot array and rehashes every live slot —
// stop-the-world, cold by construction (see NewStringIndex).
//
//hh:noalloc
func (x *StringIndex) grow() {
	old := x.slots
	n := 2 * len(old)
	x.slots = make([]slot, n) //hh:allocok power-of-two growth; pre-sizing keeps this off the steady-state path
	x.mask = uint64(n - 1)
	x.growAt = n * 3 / 4
	for i := range x.slots {
		x.slots[i].off = refNil
	}
	for _, s := range old {
		if s.off == refNil {
			continue
		}
		i := s.hash & x.mask
		for x.slots[i].off != refNil {
			i = (i + 1) & x.mask
		}
		x.slots[i] = s
	}
}

// Len returns the number of stored keys.
//
//hh:noalloc
func (x *StringIndex) Len() int { return x.live }

// Reset empties the index and arena, retaining both the slot array and
// the slabs for allocation-free reuse.
//
//hh:noalloc
func (x *StringIndex) Reset() {
	for i := range x.slots {
		x.slots[i] = slot{off: refNil}
	}
	x.live = 0
	x.ar.Reset()
}

// Mem reports the combined arena + slot-array footprint.
func (x *StringIndex) Mem() MemStats {
	ms := x.ar.Mem()
	ms.IndexSlots = len(x.slots)
	ms.IndexBytes = uint64(len(x.slots)) * uint64(unsafe.Sizeof(slot{}))
	return ms
}

// RegionSize returns the class-rounded slab bytes a key of n bytes
// occupies (a dedicated slab of exactly n bytes when the key outsizes
// a slab). Exported so sizing tools (hhstat) can estimate a decoded
// blob's would-be serving footprint without building an index.
func RegionSize(n int) int {
	if n > SlabSize {
		return n
	}
	return 1 << classFor(n)
}

// IndexFootprint returns the slot count and backing bytes of an index
// pre-sized for m keys — NewStringIndex's sizing rule, exported for
// the same estimators.
func IndexFootprint(m int) (slots int, bytes uint64) {
	n := 8
	for n*3/4 <= m {
		n <<= 1
	}
	return n, uint64(n) * uint64(unsafe.Sizeof(slot{}))
}
