package arena

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestClassFor pins the size-class geometry: power-of-two rounding with
// an 8-byte floor (the freelist link needs 4 bytes).
func TestClassFor(t *testing.T) {
	cases := map[int]uint{0: 3, 1: 3, 8: 3, 9: 4, 16: 4, 17: 5, 255: 8, 256: 8, 257: 9, SlabSize: 16}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Errorf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestStringIndexBasic drives the fundamental operations, including
// empty-string keys and value overwrites.
func TestStringIndexBasic(t *testing.T) {
	x := NewStringIndex(16, 1)
	if _, ok := x.Get("a"); ok {
		t.Fatal("Get on empty index reported a hit")
	}
	ka := x.Put("a", 1)
	if ka != "a" {
		t.Fatalf("Put returned %q, want \"a\"", ka)
	}
	if v, ok := x.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	x.Put("a", 2)
	if v, _ := x.Get("a"); v != 2 {
		t.Fatalf("overwrite: Get(a) = %d, want 2", v)
	}
	if k := x.Put("", 3); k != "" {
		t.Fatalf("Put(\"\") returned %q", k)
	}
	if v, ok := x.Get(""); !ok || v != 3 {
		t.Fatalf("Get(\"\") = %d, %v", v, ok)
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Delete("a")
	if _, ok := x.Get("a"); ok {
		t.Fatal("Get after Delete reported a hit")
	}
	x.Delete("never-inserted") // must be a no-op
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1", x.Len())
	}
	x.Reset()
	if x.Len() != 0 {
		t.Fatalf("Len after Reset = %d", x.Len())
	}
	if _, ok := x.Get(""); ok {
		t.Fatal("Get after Reset reported a hit")
	}
}

// TestStringIndexAliasStability pins the retained-key contract: the
// view Put returns stays equal to the key while the key is live, even
// as unrelated churn recycles other regions.
func TestStringIndexAliasStability(t *testing.T) {
	x := NewStringIndex(8, 7)
	keep := x.Put("long-lived-key", 42)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("churn-%d", i)
		x.Put(k, int32(i))
		x.Delete(k)
	}
	if keep != "long-lived-key" {
		t.Fatalf("retained view corrupted by churn: %q", keep)
	}
	if v, ok := x.Get("long-lived-key"); !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
}

// TestStringIndexBigKeys covers keys longer than a slab: dedicated
// slabs, first-fit recycling.
func TestStringIndexBigKeys(t *testing.T) {
	x := NewStringIndex(8, 3)
	big := strings.Repeat("x", SlabSize+100)
	bigger := strings.Repeat("y", 2*SlabSize)
	x.Put(big, 1)
	if v, ok := x.Get(big); !ok || v != 1 {
		t.Fatalf("Get(big) = %d, %v", v, ok)
	}
	x.Delete(big)
	slabs := x.Mem().Slabs
	// A same-size big key must reuse the freed dedicated slab.
	x.Put(big, 2)
	if got := x.Mem().Slabs; got != slabs {
		t.Fatalf("same-size big key did not recycle: %d slabs, had %d", got, slabs)
	}
	x.Put(bigger, 3)
	for _, k := range []string{big, bigger} {
		if _, ok := x.Get(k); !ok {
			t.Fatalf("big key %d bytes lost", len(k))
		}
	}
}

// applyOps drives an index and a map oracle through a randomized
// op sequence and fails on the first divergence. Returned strings from
// Put are checked for equality (they may alias the arena).
func applyOps(t *testing.T, x *StringIndex, ops []byte) {
	t.Helper()
	oracle := map[string]int32{}
	keyFor := func(b byte) string {
		// 64 distinct keys of wildly varying length exercise several size
		// classes and probe collisions.
		n := int(b % 64)
		return strings.Repeat("k", n%7) + fmt.Sprintf("key-%d-%s", n, strings.Repeat("pad", n%5))
	}
	for i, op := range ops {
		k := keyFor(op)
		switch op % 4 {
		case 0, 1: // insert/overwrite twice as likely as delete
			v := int32(i)
			ret := x.Put(k, v)
			if ret != k {
				t.Fatalf("op %d: Put(%q) returned %q", i, k, ret)
			}
			oracle[k] = v
		case 2:
			x.Delete(k)
			delete(oracle, k)
		case 3:
			if op%8 == 3 {
				x.Reset()
				clear(oracle)
			}
		}
		if x.Len() != len(oracle) {
			t.Fatalf("op %d: Len = %d, oracle %d", i, x.Len(), len(oracle))
		}
	}
	for k, want := range oracle {
		if got, ok := x.Get(k); !ok || got != want {
			t.Fatalf("final: Get(%q) = %d, %v; oracle %d", k, got, ok, want)
		}
	}
	// Probe a few known-absent keys.
	for _, k := range []string{"absent", "", "zzz"} {
		if _, inOracle := oracle[k]; !inOracle {
			if _, ok := x.Get(k); ok {
				t.Fatalf("phantom key %q", k)
			}
		}
	}
}

// TestStringIndexOracle is the property test: randomized
// insert/overwrite/delete/Reset sequences against a map[string]int32
// oracle, at a deliberately tiny initial size so growth rehashes fire.
func TestStringIndexOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 50; round++ {
		ops := make([]byte, 2000)
		rng.Read(ops)
		x := NewStringIndex(1, uint64(round)) // min-size: forces doubling
		applyOps(t, x, ops)
	}
}

// FuzzStringIndexOps lets the fuzzer drive the same oracle harness.
func FuzzStringIndexOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 7, 0, 0, 2})
	f.Add([]byte("insert-delete-insert"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		applyOps(t, NewStringIndex(1, 99), ops)
	})
}

// TestArenaBoundedGrowth is the eviction-churn invariant: an
// eviction-heavy workload (every insert followed by a delete, Zipf-ish
// mix of key lengths, vastly more distinct keys than live slots) must
// recycle regions through the free lists instead of growing the slabs.
func TestArenaBoundedGrowth(t *testing.T) {
	const live = 1024
	x := NewStringIndex(live, 5)
	rng := rand.New(rand.NewSource(2))
	key := func(i int) string {
		return fmt.Sprintf("%s-%d", strings.Repeat("p", rng.Intn(48)), i)
	}
	// Fill to the live bound, tracking the live set in a ring so every
	// delete names a key that is actually stored.
	ring := make([]string, live)
	for i := range ring {
		ring[i] = key(i)
		x.Put(ring[i], int32(i))
	}
	churn := func(n int) {
		for i := 0; i < n; i++ {
			old := ring[i%live]
			ring[i%live] = key(rng.Int())
			x.Put(ring[i%live], int32(i))
			x.Delete(old)
		}
	}
	churn(20 * live)
	after := x.Mem()
	churn(200 * live)
	final := x.Mem()
	if final.SlabBytes > after.SlabBytes*2 {
		t.Fatalf("arena grew unboundedly under eviction churn: %d -> %d slab bytes", after.SlabBytes, final.SlabBytes)
	}
	if final.LiveKeys != live {
		t.Fatalf("LiveKeys = %d, want %d", final.LiveKeys, live)
	}
	if final.LiveBytes+final.FreeBytes > final.SlabBytes {
		t.Fatalf("accounting: live %d + free %d > slabs %d", final.LiveBytes, final.FreeBytes, final.SlabBytes)
	}
}

// TestArenaResetReuse pins the slab-retaining Reset: a reset index
// refills without growing its backing.
func TestArenaResetReuse(t *testing.T) {
	x := NewStringIndex(512, 11)
	fill := func() {
		for i := 0; i < 512; i++ {
			x.Put(fmt.Sprintf("key-%d-%s", i, strings.Repeat("f", i%33)), int32(i))
		}
	}
	fill()
	x.Reset()
	before := x.Mem().SlabBytes
	for round := 0; round < 5; round++ {
		fill()
		x.Reset()
	}
	if got := x.Mem().SlabBytes; got != before {
		t.Fatalf("Reset did not retain/reuse slabs: %d -> %d bytes", before, got)
	}
}

func TestMapIndex(t *testing.T) {
	ix := NewMap[uint64](8)
	ix.Put(7, 1)
	if v, ok := ix.Get(7); !ok || v != 1 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if k := ix.Materialize(7); k != 7 {
		t.Fatalf("Materialize = %d", k)
	}
	if _, ok := ix.Mem(); ok {
		t.Fatal("map index claimed arena stats")
	}
	ix.Delete(7)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

// TestNewForString covers the kind gate: string kinds get the arena,
// everything else declines.
func TestNewForString(t *testing.T) {
	if _, ok := NewForString[uint64](8, 1); ok {
		t.Fatal("uint64 got an arena index")
	}
	type tenant string
	ix, ok := NewForString[tenant](8, 1)
	if !ok {
		t.Fatal("named string kind declined")
	}
	ret := ix.Put(tenant("t0"), 5)
	if ret != "t0" {
		t.Fatalf("Put returned %q", ret)
	}
	if v, ok := ix.Get(tenant("t0")); !ok || v != 5 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	m := ix.Materialize(ret)
	if m != "t0" {
		t.Fatalf("Materialize = %q", m)
	}
}
