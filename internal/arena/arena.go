// Package arena provides the pointer-free key storage behind the
// string-keyed counter structures: an append-only byte-slab allocator
// (Arena) addressing keys as packed (slab, offset) references, and an
// open-addressing hash index (StringIndex) that replaces map[string]int32
// on the hot path. Together they make a summary's steady-state heap
// O(1) objects in the counter budget m: the slabs, the slot array and
// the node slabs are a handful of large allocations, against the
// per-key string object plus map bucket of the map path — which is
// what dominates GC scan time at registry scale.
//
// Design choices, and why:
//
//   - Regions are size-classed to the next power of two (8 B .. 64 KiB)
//     and recycled through intrusive per-class free lists: a freed
//     region stores the next free reference in its own first four
//     bytes, so eviction-heavy workloads recycle slab space with no
//     auxiliary structures and no allocation. Epoch compaction was the
//     alternative; free lists were chosen because eviction churn is
//     continuous (every SPACESAVING eviction on a full structure) while
//     Reset is rare, so the recycler must ride the update path.
//   - References pack as slab<<16 | offset with 64 KiB slabs: 4 GiB of
//     addressable key bytes per structure, far beyond the int32 node
//     indices the counter slabs already impose. Keys longer than a slab
//     get a dedicated slab (offset 0) and are recycled first-fit.
//   - The index uses linear probing with the full 64-bit hash cached per
//     slot (probes compare hashes before touching key bytes) and
//     tombstone-free backward-shift deletion, so lookup cost does not
//     degrade as evictions churn the table. Growth doubles the slot
//     array with a stop-the-world rehash: the counter structures hold
//     at most m live keys and the index is pre-sized for m at
//     construction, so rehash never fires on the steady-state path —
//     incremental rehash would put its bookkeeping branch on every
//     probe of a zero-alloc hot path to optimize an event that does
//     not occur.
package arena

import (
	"math/bits"
	"unsafe"
)

const (
	slabShift = 16
	// SlabSize is the byte size of one normal slab (oversized keys get a
	// dedicated slab of exactly their length).
	SlabSize = 1 << slabShift
	posMask  = SlabSize - 1

	// refNil marks an empty freelist head or index slot.
	refNil = ^uint32(0)

	// minClass keeps every region at least 8 bytes: room for the 4-byte
	// intrusive freelist link plus alignment slack.
	minClass = 3
	maxClass = slabShift
)

// MemStats is the memory footprint of an arena-backed index, reported
// through Summary.Memory, /metricsz and the capacity bench tier.
type MemStats struct {
	// SlabBytes is the total backing bytes of all slabs (live, free and
	// carve slack).
	SlabBytes uint64
	// Slabs is the slab count.
	Slabs int
	// LiveBytes is the class-rounded bytes of regions holding live keys.
	LiveBytes uint64
	// FreeBytes is the class-rounded bytes of regions on the free lists.
	FreeBytes uint64
	// LiveKeys is the number of live key regions.
	LiveKeys int
	// IndexSlots is the open-addressing slot count (zero on the map
	// path).
	IndexSlots int
	// IndexBytes is the slot array's backing bytes.
	IndexBytes uint64
}

// Arena is the append-only slab allocator. The zero value is not
// usable (the freelist heads must read refNil, not zero); init must run
// before the first alloc — NewStringIndex does.
type Arena struct {
	slabs [][]byte
	// freeSlabs holds indices of fully recyclable slabs (refilled by
	// Reset); advance consumes it before appending new slabs.
	freeSlabs []int32
	cur       int32 // slab being carved; -1 before the first slab
	curOff    uint32
	// free holds per-class intrusive freelist heads (packed refs).
	free [maxClass + 1]uint32
	// bigFree holds slab indices of freed oversized regions.
	bigFree []int32

	liveKeys  int
	liveBytes uint64 // class-rounded live region bytes
	freeBytes uint64 // class-rounded freelisted region bytes
}

// classFor returns the size class (log2 of the region size) for an
// n-byte key.
//
//hh:noalloc
func classFor(n int) uint {
	if n <= 1<<minClass {
		return minClass
	}
	return uint(bits.Len(uint(n - 1)))
}

// init makes the zero value's freelist heads valid (refNil, not 0).
//
//hh:noalloc
func (a *Arena) init() {
	for c := range a.free {
		a.free[c] = refNil
	}
	a.cur = -1
}

// alloc reserves a region for an n-byte key and returns its packed
// reference. It allocates from the heap only when every recycling path
// is exhausted and a new slab is needed.
//
//hh:noalloc
func (a *Arena) alloc(n int) uint32 {
	if n > SlabSize {
		return a.allocBig(n)
	}
	c := classFor(n)
	size := uint64(1) << c
	if h := a.free[c]; h != refNil {
		a.free[c] = a.loadLink(h)
		a.freeBytes -= size
		a.liveBytes += size
		a.liveKeys++
		return h
	}
	if a.cur < 0 || a.curOff+uint32(size) > SlabSize {
		a.advance()
	}
	r := uint32(a.cur)<<slabShift | a.curOff
	a.curOff += uint32(size)
	a.liveBytes += size
	a.liveKeys++
	return r
}

// release returns an n-byte key's region to its class freelist (or the
// oversized pool). The region's bytes are reused for the freelist link,
// so callers must drop every alias into it first.
//
//hh:noalloc
func (a *Arena) release(r uint32, n int) {
	a.liveKeys--
	if n > SlabSize {
		a.bigFree = append(a.bigFree, int32(r>>slabShift)) //hh:allocok oversized-key bookkeeping; amortized by slice reuse
		size := uint64(len(a.slabs[r>>slabShift]))
		a.liveBytes -= size
		a.freeBytes += size
		return
	}
	c := classFor(n)
	size := uint64(1) << c
	a.liveBytes -= size
	a.freeBytes += size
	a.storeLink(r, a.free[c])
	a.free[c] = r
}

// advance moves carving to a recycled slab, or appends a fresh one —
// the only heap allocation of the steady-state update path.
//
//hh:noalloc
func (a *Arena) advance() {
	if len(a.freeSlabs) > 0 {
		a.cur = a.freeSlabs[len(a.freeSlabs)-1]
		a.freeSlabs = a.freeSlabs[:len(a.freeSlabs)-1]
		a.curOff = 0
		return
	}
	a.slabs = append(a.slabs, make([]byte, SlabSize)) //hh:allocok slab growth is the one permitted allocation
	a.cur = int32(len(a.slabs) - 1)
	a.curOff = 0
}

// allocBig reserves a dedicated slab for a key longer than SlabSize,
// reusing a freed oversized slab first-fit when one is large enough.
//
//hh:noalloc
func (a *Arena) allocBig(n int) uint32 {
	for i, idx := range a.bigFree {
		if len(a.slabs[idx]) >= n {
			a.bigFree[i] = a.bigFree[len(a.bigFree)-1]
			a.bigFree = a.bigFree[:len(a.bigFree)-1]
			size := uint64(len(a.slabs[idx]))
			a.freeBytes -= size
			a.liveBytes += size
			a.liveKeys++
			return uint32(idx) << slabShift
		}
	}
	a.slabs = append(a.slabs, make([]byte, n)) //hh:allocok oversized keys get a dedicated slab by contract
	a.liveBytes += uint64(n)
	a.liveKeys++
	return uint32(len(a.slabs)-1) << slabShift
}

// loadLink reads the intrusive freelist link stored in a freed region.
//
//hh:noalloc
func (a *Arena) loadLink(r uint32) uint32 {
	b := a.slabs[r>>slabShift][r&posMask:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// storeLink writes the intrusive freelist link into a freed region.
//
//hh:noalloc
func (a *Arena) storeLink(r, next uint32) {
	b := a.slabs[r>>slabShift][r&posMask:]
	b[0], b[1], b[2], b[3] = byte(next), byte(next>>8), byte(next>>16), byte(next>>24)
}

// bytes returns the writable region behind a reference.
//
//hh:noalloc
func (a *Arena) bytes(r uint32, n int) []byte {
	pos := int(r & posMask)
	return a.slabs[r>>slabShift][pos : pos+n]
}

// view returns a string aliasing the region — valid until the region
// is released or the arena reset.
//
//hh:noalloc
func (a *Arena) view(r uint32, n int) string {
	if n == 0 {
		return ""
	}
	return unsafe.String(&a.slabs[r>>slabShift][r&posMask], n)
}

// Reset drops every region while retaining the slabs for reuse, so a
// reset structure keeps updating allocation-free (epoch rotation relies
// on this, exactly like the counter slabs' own Reset).
//
//hh:noalloc
func (a *Arena) Reset() {
	for c := range a.free {
		a.free[c] = refNil
	}
	a.bigFree = a.bigFree[:0]
	a.freeSlabs = a.freeSlabs[:0]
	for i := range a.slabs {
		a.freeSlabs = append(a.freeSlabs, int32(i)) //hh:allocok grows once per slab high-water mark, then reuses
	}
	a.cur = -1
	a.curOff = 0
	a.liveKeys = 0
	a.liveBytes = 0
	a.freeBytes = 0
}

// Mem reports the arena's slab footprint (index fields are zero; the
// owning index fills them).
func (a *Arena) Mem() MemStats {
	var total uint64
	for _, s := range a.slabs {
		total += uint64(len(s))
	}
	return MemStats{
		SlabBytes: total,
		Slabs:     len(a.slabs),
		LiveBytes: a.liveBytes,
		FreeBytes: a.freeBytes,
		LiveKeys:  a.liveKeys,
	}
}
