package recovery

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/frequent"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

func TestKSparseBasics(t *testing.T) {
	entries := []core.Entry[uint64]{{Item: 1, Count: 10}, {Item: 2, Count: 5}, {Item: 3, Count: 2}}
	f := KSparse(entries, 2)
	if len(f) != 2 || f[1] != 10 || f[2] != 5 {
		t.Errorf("KSparse = %v", f)
	}
	if got := KSparse(entries, 99); len(got) != 3 {
		t.Errorf("KSparse(k>len) kept %d entries", len(got))
	}
	if got := KSparse(entries, 0); len(got) != 0 {
		t.Errorf("KSparse(0) = %v", got)
	}
}

func TestKSparseWeighted(t *testing.T) {
	entries := []core.WeightedEntry[uint64]{{Item: 4, Count: 2.5}, {Item: 5, Count: 1.5}}
	f := KSparseWeighted(entries, 1)
	if len(f) != 1 || f[4] != 2.5 {
		t.Errorf("KSparseWeighted = %v", f)
	}
}

func TestKSparsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KSparse(-1) did not panic")
		}
	}()
	KSparse[uint64](nil, -1)
}

func TestCountersForTheorem5(t *testing.T) {
	g := core.TailGuarantee{A: 1, B: 1}
	// two-sided: k(3/ε + 1) = 10(30 + 1) = 310 at ε=0.1, k=10.
	if got := CountersForTheorem5(10, 0.1, g, false); got != 310 {
		t.Errorf("two-sided budget = %d, want 310", got)
	}
	// one-sided: k(2/ε + 1) = 210.
	if got := CountersForTheorem5(10, 0.1, g, true); got != 210 {
		t.Errorf("one-sided budget = %d, want 210", got)
	}
}

func TestEpsilonForTheorem5RoundTrip(t *testing.T) {
	g := core.TailGuarantee{A: 1, B: 1}
	for _, k := range []int{1, 5, 20} {
		for _, eps := range []float64{0.5, 0.1, 0.02} {
			m := CountersForTheorem5(k, eps, g, true)
			got := EpsilonForTheorem5(m, k, g, true)
			if got > eps*1.001 {
				t.Errorf("k=%d eps=%v: round-trip epsilon %v exceeds target", k, eps, got)
			}
		}
	}
	if !math.IsInf(EpsilonForTheorem5(5, 5, g, false), 1) {
		t.Error("vacuous epsilon should be +Inf")
	}
}

func TestTheorem5KSparseRecoveryBound(t *testing.T) {
	// End-to-end Theorem 5: for SPACESAVING with m = k(2/ε+1) counters
	// (one-sided), the k-sparse recovery Lp error must respect the bound
	// for p = 1 and p = 2.
	const n, total, k = 500, 100000, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	g := core.TailGuarantee{A: 1, B: 1}
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		m := CountersForTheorem5(k, eps, g, true)
		alg := spacesaving.New[uint64](m)
		for _, x := range s {
			alg.Update(x)
		}
		fPrime := KSparse(alg.Entries(), k)
		fExact := map[uint64]float64(truth.Sparse())
		for _, p := range []float64{1, 2} {
			got := LpError(fExact, fPrime, p)
			bound := Theorem5Bound(eps, k, truth.Res1(k), truth.ResP(k, p), p)
			if got > bound {
				t.Errorf("eps=%v p=%v: recovery error %v exceeds bound %v", eps, p, got, bound)
			}
		}
	}
}

func TestTheorem6ResidualEstimate(t *testing.T) {
	const n, total, k = 500, 100000, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 5)
	truth := exact.FromStream(s)
	g := core.TailGuarantee{A: 1, B: 1}
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		m := CountersForTheorem6(k, eps, g)
		alg := spacesaving.New[uint64](m)
		for _, x := range s {
			alg.Update(x)
		}
		got := ResidualEstimate(alg.Entries(), k, truth.F1())
		res := truth.Res1(k)
		if got < res*(1-eps) || got > res*(1+eps) {
			t.Errorf("eps=%v: estimate %v outside (1±ε)·%v", eps, got, res)
		}
	}
}

func TestUnderestimateTransforms(t *testing.T) {
	const n, total, m = 300, 30000, 50
	s := stream.Zipf(n, 1.2, total, stream.OrderRandom, 7)
	truth := exact.FromStream(s)
	alg := spacesaving.New[uint64](m)
	for _, x := range s {
		alg.Update(x)
	}
	perItem := UnderestimatePerItem(alg.Entries())
	global := UnderestimateGlobal(alg.Entries(), alg.MinCount())
	for _, e := range perItem {
		if float64(e.Count) > truth.Freq(e.Item) {
			t.Errorf("per-item transform overestimates item %d: %d > %v", e.Item, e.Count, truth.Freq(e.Item))
		}
	}
	for _, e := range global {
		if float64(e.Count) > truth.Freq(e.Item) {
			t.Errorf("global transform overestimates item %d: %d > %v", e.Item, e.Count, truth.Freq(e.Item))
		}
	}
	// The global transform still satisfies (1,1) tail bounds on errors:
	// f_i − c'_i ≤ 2·F1res(k)/(m−k)... per §4.2 it keeps A=B=1; verify
	// against the k-tail bound for several k.
	est := make(map[uint64]float64, len(global))
	for _, e := range global {
		est[e.Item] = float64(e.Count)
	}
	for _, k := range []int{1, 5, 10} {
		bound := core.TailGuarantee{A: 1, B: 1}.Bound(m, k, truth.Res1(k))
		for i := uint64(0); i < n; i++ {
			if d := truth.Freq(i) - est[i]; d > 2*bound {
				t.Errorf("k=%d item %d: undercount %v far exceeds bound %v", k, i, d, bound)
			}
		}
	}
}

func TestTheorem7MSparseBound(t *testing.T) {
	// Theorem 7 with FREQUENT (naturally underestimating): m-sparse
	// recovery with m = k(1/ε + 1) counters has Lp error at most
	// (1+ε)(ε/k)^{1−1/p}·F1^res(k).
	const n, total, k = 500, 100000, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 11)
	truth := exact.FromStream(s)
	g := core.TailGuarantee{A: 1, B: 1}
	fExact := map[uint64]float64(truth.Sparse())
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		m := CountersForTheorem7(k, eps, g)
		alg := frequent.New[uint64](m)
		for _, x := range s {
			alg.Update(x)
		}
		fPrime := MSparse(alg.Entries())
		for _, p := range []float64{1, 2} {
			got := LpError(fExact, fPrime, p)
			bound := Theorem7Bound(eps, k, truth.Res1(k), p)
			if got > bound {
				t.Errorf("eps=%v p=%v: m-sparse error %v exceeds bound %v", eps, p, got, bound)
			}
		}
	}
}

func TestTheorem7WithUnderestimatedSpaceSaving(t *testing.T) {
	// Same bound via the SPACESAVING global underestimate transform.
	const n, total, k = 500, 100000, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 13)
	truth := exact.FromStream(s)
	fExact := map[uint64]float64(truth.Sparse())
	g := core.TailGuarantee{A: 1, B: 1}
	const eps = 0.2
	m := CountersForTheorem7(k, eps, g)
	alg := spacesaving.New[uint64](m)
	for _, x := range s {
		alg.Update(x)
	}
	fPrime := MSparse(UnderestimateGlobal(alg.Entries(), alg.MinCount()))
	for _, p := range []float64{1, 2} {
		got := LpError(fExact, fPrime, p)
		bound := Theorem7Bound(eps, k, truth.Res1(k), p)
		if got > bound {
			t.Errorf("p=%v: error %v exceeds bound %v", p, got, bound)
		}
	}
}

func TestLpErrorBothDirections(t *testing.T) {
	f := map[uint64]float64{1: 5, 2: 3}
	fp := map[uint64]float64{1: 4, 3: 2}
	// diffs: |5-4| + |3-0| + |0-2| = 6.
	if got := LpError(f, fp, 1); got != 6 {
		t.Errorf("L1 = %v, want 6", got)
	}
	want := math.Sqrt(1 + 9 + 4)
	if got := LpError(f, fp, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 = %v, want %v", got, want)
	}
}

func TestBoundFormulaPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Theorem5Bound p<1":  func() { Theorem5Bound(0.1, 1, 1, 1, 0.5) },
		"Theorem7Bound p<1":  func() { Theorem7Bound(0.1, 1, 1, 0.5) },
		"LpError p<1":        func() { LpError(map[int]float64{}, map[int]float64{}, 0.9) },
		"CountersT5 k=0":     func() { CountersForTheorem5(0, 0.1, core.TailGuarantee{A: 1, B: 1}, false) },
		"CountersT6 eps=0":   func() { CountersForTheorem6(1, 0, core.TailGuarantee{A: 1, B: 1}) },
		"KSparseWeighted -1": func() { KSparseWeighted[uint64](nil, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
