// Package recovery implements Section 4 of the paper: k-sparse recovery
// from the top-k counters (Theorem 5), estimation of the residual
// F1^res(k) (Theorem 6), and m-sparse recovery from underestimating
// counter algorithms (Theorem 7), together with the closed-form error
// bounds those theorems prove.
package recovery

import (
	"math"

	"repro/internal/core"
)

// KSparse builds the k-sparse recovery f′ of Theorem 5: the k largest
// counters of a summary, everything else zero. Entries must be sorted by
// decreasing count (as returned by Algorithm.Entries).
func KSparse[K comparable](entries []core.Entry[K], k int) map[K]float64 {
	if k < 0 {
		panic("recovery: negative k")
	}
	if k > len(entries) {
		k = len(entries)
	}
	out := make(map[K]float64, k)
	for _, e := range entries[:k] {
		out[e.Item] = float64(e.Count)
	}
	return out
}

// KSparseWeighted is KSparse for real-valued summaries.
func KSparseWeighted[K comparable](entries []core.WeightedEntry[K], k int) map[K]float64 {
	if k < 0 {
		panic("recovery: negative k")
	}
	if k > len(entries) {
		k = len(entries)
	}
	out := make(map[K]float64, k)
	for _, e := range entries[:k] {
		out[e.Item] = e.Count
	}
	return out
}

// CountersForTheorem5 returns the counter budget m = k(3A/ε + B) that
// Theorem 5 prescribes for the Lp recovery bound, or k(2A/ε + B) when the
// algorithm has one-sided error (as FREQUENT and SPACESAVING do).
func CountersForTheorem5(k int, eps float64, g core.TailGuarantee, oneSided bool) int {
	if k < 1 || eps <= 0 {
		panic("recovery: need k >= 1 and eps > 0")
	}
	c := 3.0
	if oneSided {
		c = 2.0
	}
	return int(math.Ceil(float64(k) * (c*g.A/eps + g.B)))
}

// EpsilonForTheorem5 inverts CountersForTheorem5: the ε achieved by budget
// m at sparsity k, i.e. ε = cAk/(m − Bk) with c = 3 (or 2 one-sided). It
// returns +Inf when m ≤ Bk.
func EpsilonForTheorem5(m, k int, g core.TailGuarantee, oneSided bool) float64 {
	den := float64(m) - g.B*float64(k)
	if den <= 0 {
		return math.Inf(1)
	}
	c := 3.0
	if oneSided {
		c = 2.0
	}
	return c * g.A * float64(k) / den
}

// Theorem5Bound evaluates the Lp recovery bound
// ε·F1^res(k)/k^{1−1/p} + (F_p^res(k))^{1/p}.
func Theorem5Bound(eps float64, k int, res1, resP, p float64) float64 {
	if p < 1 {
		panic("recovery: p must be >= 1")
	}
	return eps*res1/math.Pow(float64(k), 1-1/p) + math.Pow(resP, 1/p)
}

// ResidualEstimate implements Theorem 6's estimator of F1^res(k):
// F1 − ‖f′‖1, where f′ is the k-sparse recovery. With m = k(A/ε + B)
// counters the result is within (1 ± ε)·F1^res(k).
func ResidualEstimate[K comparable](entries []core.Entry[K], k int, f1 float64) float64 {
	sum := 0.0
	for _, v := range KSparse(entries, k) {
		sum += v
	}
	return f1 - sum
}

// CountersForTheorem6 returns the Theorem 6 budget m = Bk + Ak/ε.
func CountersForTheorem6(k int, eps float64, g core.TailGuarantee) int {
	if k < 1 || eps <= 0 {
		panic("recovery: need k >= 1 and eps > 0")
	}
	return int(math.Ceil(g.B*float64(k) + g.A*float64(k)/eps))
}

// UnderestimatePerItem transforms SPACESAVING entries into underestimates
// using the per-item error ε_i recorded at insertion: c′_i = c_i − ε_i.
// The paper notes (Section 4.2) this gives slightly better per-item
// guarantees than the global transform.
func UnderestimatePerItem[K comparable](entries []core.Entry[K]) []core.Entry[K] {
	out := make([]core.Entry[K], len(entries))
	for i, e := range entries {
		out[i] = core.Entry[K]{Item: e.Item, Count: e.Count - e.Err}
	}
	core.SortEntries(out)
	return out
}

// UnderestimateGlobal transforms SPACESAVING entries into underestimates
// using the global minimum counter Δ: c′_i = max(0, c_i − Δ). Per Section
// 4.2 the transformed counters satisfy the same (1,1) tail bounds, which
// is what Theorem 7 requires.
func UnderestimateGlobal[K comparable](entries []core.Entry[K], minCount uint64) []core.Entry[K] {
	out := make([]core.Entry[K], 0, len(entries))
	for _, e := range entries {
		c := uint64(0)
		if e.Count > minCount {
			c = e.Count - minCount
		}
		out = append(out, core.Entry[K]{Item: e.Item, Count: c})
	}
	core.SortEntries(out)
	return out
}

// MSparse builds the m-sparse recovery of Theorem 7 from (already
// underestimating) entries: every stored counter is kept.
func MSparse[K comparable](entries []core.Entry[K]) map[K]float64 {
	out := make(map[K]float64, len(entries))
	for _, e := range entries {
		if e.Count > 0 {
			out[e.Item] = float64(e.Count)
		}
	}
	return out
}

// Theorem7Bound evaluates the m-sparse Lp recovery bound
// (1+ε)·(ε/k)^{1−1/p}·F1^res(k).
func Theorem7Bound(eps float64, k int, res1, p float64) float64 {
	if p < 1 {
		panic("recovery: p must be >= 1")
	}
	return (1 + eps) * math.Pow(eps/float64(k), 1-1/p) * res1
}

// CountersForTheorem7 returns the Theorem 7 budget m = Bk + Ak/ε (the
// same form as Theorem 6).
func CountersForTheorem7(k int, eps float64, g core.TailGuarantee) int {
	return CountersForTheorem6(k, eps, g)
}

// LpError computes ‖f − f′‖p between an exact sparse frequency vector and
// a recovery, both keyed by item; items present in either side contribute.
func LpError[K comparable](f map[K]float64, fPrime map[K]float64, p float64) float64 {
	if p < 1 {
		panic("recovery: p must be >= 1")
	}
	s := 0.0
	for k, v := range f {
		d := math.Abs(v - fPrime[k])
		if d != 0 {
			s += math.Pow(d, p)
		}
	}
	for k, v := range fPrime {
		if _, ok := f[k]; !ok && v != 0 {
			s += math.Pow(v, p)
		}
	}
	return math.Pow(s, 1/p)
}
