// Package vector implements the frequency-vector arithmetic the paper's
// bounds are stated in: stream norms F_p, residual tails F_p^res(k)
// (Section 2), and the Lp recovery errors of Section 4.
//
// Two representations are provided: Dense for experiments over a bounded
// universe [0, n), and Sparse (a map) for algorithm outputs that carry only
// the stored counters.
package vector

import (
	"math"
	"sort"
)

// Dense is a frequency vector indexed by item identifier. Dense[i] is the
// (exact or estimated) frequency of item i.
type Dense []float64

// F1 returns the L1 mass of the vector: the stream length for an exact
// unit-weight frequency vector.
func (d Dense) F1() float64 {
	s := 0.0
	for _, v := range d {
		s += v
	}
	return s
}

// Fp returns F_p = Σ f_i^p.
func (d Dense) Fp(p float64) float64 {
	s := 0.0
	for _, v := range d {
		if v != 0 {
			s += math.Pow(v, p)
		}
	}
	return s
}

// SortedDesc returns a copy of the entries sorted in decreasing order,
// matching the paper's convention f_1 ≥ f_2 ≥ … ≥ f_n.
func (d Dense) SortedDesc() []float64 {
	s := make([]float64, len(d))
	copy(s, d)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}

// Res1 returns F_1^res(k): the total mass excluding the k largest entries.
// If k ≥ len(d), the residual is zero. It panics on negative k.
func (d Dense) Res1(k int) float64 {
	return ResP(d.SortedDesc(), k, 1)
}

// ResP returns F_p^res(k) = Σ_{i>k} f_i^p given entries already sorted in
// decreasing order. It panics on negative k.
func ResP(sortedDesc []float64, k int, p float64) float64 {
	if k < 0 {
		panic("vector: negative k")
	}
	if k >= len(sortedDesc) {
		return 0
	}
	s := 0.0
	if p == 1 {
		for _, v := range sortedDesc[k:] {
			s += v
		}
		return s
	}
	for _, v := range sortedDesc[k:] {
		if v != 0 {
			s += math.Pow(v, p)
		}
	}
	return s
}

// LpErr returns ‖d − other‖_p for p ≥ 1. The vectors must have equal
// length.
func (d Dense) LpErr(other Dense, p float64) float64 {
	if len(d) != len(other) {
		panic("vector: LpErr length mismatch")
	}
	if p < 1 {
		panic("vector: LpErr requires p >= 1")
	}
	s := 0.0
	for i, v := range d {
		diff := math.Abs(v - other[i])
		if diff != 0 {
			s += math.Pow(diff, p)
		}
	}
	return math.Pow(s, 1/p)
}

// LinfErr returns max_i |d_i − other_i|.
func (d Dense) LinfErr(other Dense) float64 {
	if len(d) != len(other) {
		panic("vector: LinfErr length mismatch")
	}
	m := 0.0
	for i, v := range d {
		if diff := math.Abs(v - other[i]); diff > m {
			m = diff
		}
	}
	return m
}

// TopK returns the identifiers of the k largest entries, ties broken by
// smaller identifier first (the paper's deterministic convention). If
// k exceeds the number of non-zero entries the result includes zero-valued
// items to make up the count only when k ≤ len(d); k larger than len(d) is
// truncated.
func (d Dense) TopK(k int) []uint64 {
	if k > len(d) {
		k = len(d)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]uint64, len(d))
	for i := range idx {
		idx[i] = uint64(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if d[ia] != d[ib] {
			return d[ia] > d[ib]
		}
		return ia < ib
	})
	return idx[:k]
}

// Sparse is a frequency vector carrying only non-zero entries, keyed by
// item identifier.
type Sparse map[uint64]float64

// F1 returns the L1 mass of the sparse vector.
func (s Sparse) F1() float64 {
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum
}

// Dense expands the sparse vector over the universe [0, n). Entries with
// identifiers ≥ n panic, since silently dropping mass would corrupt error
// measurements.
func (s Sparse) Dense(n int) Dense {
	d := make(Dense, n)
	for id, v := range s {
		if id >= uint64(n) {
			panic("vector: sparse entry outside universe")
		}
		d[id] = v
	}
	return d
}

// TopK returns the identifiers of the k largest sparse entries, ties broken
// by smaller identifier. If fewer than k entries exist, all are returned.
func (s Sparse) TopK(k int) []uint64 {
	ids := make([]uint64, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ia, ib := ids[a], ids[b]
		if s[ia] != s[ib] {
			return s[ia] > s[ib]
		}
		return ia < ib
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// Restrict returns a copy of s keeping only the given identifiers.
func (s Sparse) Restrict(ids []uint64) Sparse {
	out := make(Sparse, len(ids))
	for _, id := range ids {
		if v, ok := s[id]; ok {
			out[id] = v
		}
	}
	return out
}

// Add accumulates other into s (s += other) and returns s.
func (s Sparse) Add(other Sparse) Sparse {
	for id, v := range other {
		s[id] += v
	}
	return s
}
