package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestF1(t *testing.T) {
	cases := []struct {
		d    Dense
		want float64
	}{
		{Dense{}, 0},
		{Dense{5}, 5},
		{Dense{1, 2, 3}, 6},
		{Dense{0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := c.d.F1(); got != c.want {
			t.Errorf("F1(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestFp(t *testing.T) {
	d := Dense{3, 4}
	if got := d.Fp(2); got != 25 {
		t.Errorf("Fp(2) = %v, want 25", got)
	}
	if got := d.Fp(1); got != 7 {
		t.Errorf("Fp(1) = %v, want 7", got)
	}
}

func TestSortedDesc(t *testing.T) {
	d := Dense{1, 5, 3, 5, 0}
	got := d.SortedDesc()
	want := []float64{5, 5, 3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedDesc = %v, want %v", got, want)
		}
	}
	// Original must be untouched.
	if d[0] != 1 {
		t.Error("SortedDesc mutated receiver")
	}
}

func TestRes1(t *testing.T) {
	d := Dense{10, 7, 3, 2, 1}
	cases := []struct {
		k    int
		want float64
	}{
		{0, 23}, // F1^res(0) = F1
		{1, 13},
		{2, 6},
		{4, 1},
		{5, 0},
		{100, 0},
	}
	for _, c := range cases {
		if got := d.Res1(c.k); got != c.want {
			t.Errorf("Res1(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestResPPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ResP(-1) did not panic")
		}
	}()
	ResP([]float64{1}, -1, 1)
}

func TestResP2(t *testing.T) {
	sorted := []float64{4, 3, 2}
	if got := ResP(sorted, 1, 2); got != 13 { // 9 + 4
		t.Errorf("ResP(k=1, p=2) = %v, want 13", got)
	}
}

func TestLpErr(t *testing.T) {
	a := Dense{1, 2, 3}
	b := Dense{1, 0, 7}
	if got := a.LpErr(b, 1); got != 6 {
		t.Errorf("L1 error = %v, want 6", got)
	}
	if got := a.LpErr(b, 2); !almostEqual(got, math.Sqrt(4+16)) {
		t.Errorf("L2 error = %v, want %v", got, math.Sqrt(20))
	}
	if got := a.LinfErr(b); got != 4 {
		t.Errorf("Linf error = %v, want 4", got)
	}
}

func TestLpErrPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { Dense{1}.LpErr(Dense{1, 2}, 1) },
		"p < 1":           func() { Dense{1}.LpErr(Dense{2}, 0.5) },
		"linf mismatch":   func() { Dense{1}.LinfErr(Dense{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTopKDense(t *testing.T) {
	d := Dense{3, 9, 9, 1}
	got := d.TopK(3)
	want := []uint64{1, 2, 0} // tie between items 1 and 2 broken by id
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if res := d.TopK(0); res != nil {
		t.Errorf("TopK(0) = %v, want nil", res)
	}
	if res := d.TopK(100); len(res) != len(d) {
		t.Errorf("TopK(100) returned %d ids, want %d", len(res), len(d))
	}
}

func TestSparseBasics(t *testing.T) {
	s := Sparse{4: 10, 7: 5}
	if got := s.F1(); got != 15 {
		t.Errorf("F1 = %v, want 15", got)
	}
	d := s.Dense(10)
	if d[4] != 10 || d[7] != 5 || d.F1() != 15 {
		t.Errorf("Dense expansion wrong: %v", d)
	}
}

func TestSparseDensePanicsOutOfUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dense with out-of-universe entry did not panic")
		}
	}()
	Sparse{20: 1}.Dense(10)
}

func TestSparseTopK(t *testing.T) {
	s := Sparse{1: 5, 2: 5, 3: 9}
	got := s.TopK(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("TopK = %v, want [3 1]", got)
	}
	if all := s.TopK(10); len(all) != 3 {
		t.Errorf("TopK(10) returned %d ids, want 3", len(all))
	}
}

func TestSparseRestrictAndAdd(t *testing.T) {
	s := Sparse{1: 5, 2: 6, 3: 7}
	r := s.Restrict([]uint64{1, 3, 9})
	if len(r) != 2 || r[1] != 5 || r[3] != 7 {
		t.Errorf("Restrict = %v", r)
	}
	sum := Sparse{1: 1}.Add(Sparse{1: 2, 5: 3})
	if sum[1] != 3 || sum[5] != 3 {
		t.Errorf("Add = %v", sum)
	}
}

func TestResidualMonotoneProperty(t *testing.T) {
	// F1^res(k) is non-increasing in k, and Res1(0) == F1.
	err := quick.Check(func(raw []uint16) bool {
		d := make(Dense, len(raw))
		for i, v := range raw {
			d[i] = float64(v)
		}
		if !almostEqual(d.Res1(0), d.F1()) {
			return false
		}
		prev := math.Inf(1)
		for k := 0; k <= len(d)+1; k++ {
			r := d.Res1(k)
			if r > prev+1e-9 || r < 0 {
				return false
			}
			prev = r
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// ‖a−c‖p ≤ ‖a−b‖p + ‖b−c‖p for p = 1, 2.
	err := quick.Check(func(raw [3][8]int16) bool {
		mk := func(r [8]int16) Dense {
			d := make(Dense, 8)
			for i, v := range r {
				d[i] = float64(v)
			}
			return d
		}
		a, b, c := mk(raw[0]), mk(raw[1]), mk(raw[2])
		for _, p := range []float64{1, 2} {
			if a.LpErr(c, p) > a.LpErr(b, p)+b.LpErr(c, p)+1e-6 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
