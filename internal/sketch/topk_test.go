package sketch

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestTrackerBasics(t *testing.T) {
	counts := map[uint64]uint64{}
	tr := NewTopKTracker(2, func(i uint64) uint64 { return counts[i] })
	counts[1] = 10
	tr.Observe(1)
	counts[2] = 5
	tr.Observe(2)
	counts[3] = 7
	tr.Observe(3) // evicts 2
	top := tr.Top()
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 3 {
		t.Errorf("Top = %v", top)
	}
	if tr.Len() != 2 || tr.K() != 2 {
		t.Errorf("Len/K = %d/%d", tr.Len(), tr.K())
	}
}

func TestTrackerReobservationRefreshes(t *testing.T) {
	counts := map[uint64]uint64{}
	tr := NewTopKTracker(2, func(i uint64) uint64 { return counts[i] })
	counts[1] = 1
	tr.Observe(1)
	counts[2] = 2
	tr.Observe(2)
	counts[1] = 10
	tr.Observe(1)
	counts[3] = 3
	tr.Observe(3) // must evict 2, not the refreshed 1
	top := tr.Top()
	if top[0].Item != 1 || top[1].Item != 3 {
		t.Errorf("Top = %v", top)
	}
}

func TestTrackerEvictionTieBreak(t *testing.T) {
	counts := map[uint64]uint64{1: 5, 2: 5, 3: 5}
	tr := NewTopKTracker(2, func(i uint64) uint64 { return counts[i] })
	tr.Observe(1)
	tr.Observe(2)
	tr.Observe(3) // all tied at 5: larger id (3) evicted
	top := tr.Top()
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 2 {
		t.Errorf("Top = %v", top)
	}
}

func TestTrackerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k=0":      func() { NewTopKTracker(0, func(uint64) uint64 { return 0 }) },
		"nil est":  func() { NewTopKTracker(1, nil) },
		"cmtk k=0": func() { NewCountMinTopK(2, 8, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTopKTracker(2, func(uint64) uint64 { return 1 })
	tr.Observe(1)
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset did not clear candidates")
	}
}

func TestCountMinTopKRecall(t *testing.T) {
	// On a skewed stream the sketch+tracker should recover most true
	// heavy hitters.
	const n, total, k = 1000, 100000, 10
	s := stream.Zipf(n, 1.3, total, stream.OrderRandom, 9)
	truth := exact.FromStream(s)
	sys := NewCountMinTopK(4, 512, k, 7)
	for _, x := range s {
		sys.Update(x)
	}
	want := map[uint64]bool{}
	for _, id := range truth.TopK(k) {
		want[id] = true
	}
	got := sys.Top()
	if len(got) != k {
		t.Fatalf("Top returned %d items, want %d", len(got), k)
	}
	hits := 0
	for _, ti := range got {
		if want[ti.Item] {
			hits++
		}
	}
	if hits < k-2 {
		t.Errorf("recall %d/%d, want >= %d", hits, k, k-2)
	}
	if sys.Words() != sys.Sketch.Words()+2*k {
		t.Errorf("Words = %d", sys.Words())
	}
}
