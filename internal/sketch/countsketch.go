package sketch

import (
	"slices"

	"repro/internal/hashing"
	"repro/internal/rng"
)

// CountSketch is a d×w Count-Sketch (Charikar, Chen, Farach-Colton):
// each row adds ±1 (times the update weight) to one cell, and the
// estimate is the median across rows of the sign-corrected cells. Errors
// are two-sided with variance F2/w per row; Table 1 states the residual
// form (f_i − f̂_i)² ≤ ε/k · F2^res(k). The zero value is not usable;
// construct with NewCountSketch.
type CountSketch struct {
	depth, width int
	buckets      []hashing.Poly
	signs        []hashing.Poly
	cells        [][]int64
	n            uint64
	scratch      []int64
}

// NewCountSketch returns a Count-Sketch with the given dimensions, seeded
// deterministically. It panics if either dimension is < 1.
func NewCountSketch(depth, width int, seed uint64) *CountSketch {
	if depth < 1 || width < 1 {
		panic("sketch: CountSketch dimensions must be >= 1")
	}
	src := rng.New(seed)
	cs := &CountSketch{depth: depth, width: width}
	cs.buckets = make([]hashing.Poly, depth)
	cs.signs = make([]hashing.Poly, depth)
	cs.cells = make([][]int64, depth)
	for r := 0; r < depth; r++ {
		cs.buckets[r] = hashing.NewPoly(src, 2)
		cs.signs[r] = hashing.NewPoly(src, 4)
		cs.cells[r] = make([]int64, width)
	}
	cs.scratch = make([]int64, depth)
	return cs
}

// Update adds one occurrence of item.
//
//hh:noalloc
func (cs *CountSketch) Update(item uint64) { cs.Add(item, 1) }

// Add adds c occurrences of item (c may model deletions when negative).
//
//hh:noalloc
func (cs *CountSketch) Add(item uint64, c int64) {
	if c > 0 {
		cs.n += uint64(c)
	}
	for r := 0; r < cs.depth; r++ {
		cs.cells[r][cs.buckets[r].Bucket(item, uint64(cs.width))] += cs.signs[r].Sign(item) * c
	}
}

// Estimate returns the median across rows of the sign-corrected cell
// values. Estimates are two-sided and may be negative; callers needing a
// frequency should clamp at zero.
//
//hh:noalloc
func (cs *CountSketch) Estimate(item uint64) int64 {
	for r := 0; r < cs.depth; r++ {
		cs.scratch[r] = cs.signs[r].Sign(item) * cs.cells[r][cs.buckets[r].Bucket(item, uint64(cs.width))]
	}
	slices.Sort(cs.scratch)
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return cs.scratch[mid]
	}
	return (cs.scratch[mid-1] + cs.scratch[mid]) / 2
}

// EstimateNonNegative clamps Estimate at zero.
//
//hh:noalloc
func (cs *CountSketch) EstimateNonNegative(item uint64) uint64 {
	e := cs.Estimate(item)
	if e < 0 {
		return 0
	}
	return uint64(e)
}

// N returns the total positive weight added.
//
//hh:noalloc
func (cs *CountSketch) N() uint64 { return cs.n }

// Words returns the memory footprint in machine words: cells plus the
// 2+4 hash coefficients per row.
func (cs *CountSketch) Words() int { return cs.depth*cs.width + 6*cs.depth }

// Depth reports the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Width reports the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

// Reset zeroes all cells, keeping the hash functions.
//
//hh:noalloc
func (cs *CountSketch) Reset() {
	for r := range cs.cells {
		for i := range cs.cells[r] {
			cs.cells[r][i] = 0
		}
	}
	cs.n = 0
}
