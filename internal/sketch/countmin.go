// Package sketch implements the randomized baselines of Table 1: the
// Count-Min sketch (absolute error ε/k·F1^res(k) with O(k/ε·log n)
// counters) and the Count-Sketch (squared error ε/k·F2^res(k)). Both are
// linear projections of the frequency vector; unlike the counter
// algorithms they support deletions, but per the paper's headline result
// they need asymptotically more space for the same residual guarantee.
//
// Items are uint64 identifiers; hashing uses the pairwise / 4-wise
// independent polynomial families of internal/hashing.
package sketch

import (
	"math"

	"repro/internal/hashing"
	"repro/internal/rng"
)

// CountMin is a d×w Count-Min sketch. Estimates are upper bounds:
// f_i ≤ Estimate(i), and with w = ⌈e/ε⌉, d = ⌈ln(1/δ)⌉ the overestimate
// is at most εF1 with probability 1−δ. The zero value is not usable;
// construct with NewCountMin.
type CountMin struct {
	depth, width int
	rows         []hashing.Poly
	cells        [][]uint64
	n            uint64
	conservative bool
}

// NewCountMin returns a Count-Min sketch with the given depth (number of
// rows) and width (counters per row), seeded deterministically. It panics
// if either dimension is < 1.
func NewCountMin(depth, width int, seed uint64) *CountMin {
	return newCountMin(depth, width, seed, false)
}

// NewCountMinConservative returns a Count-Min sketch using conservative
// update (increment only the minimal cells), an ablation that tightens
// overestimates at the cost of losing linearity.
func NewCountMinConservative(depth, width int, seed uint64) *CountMin {
	return newCountMin(depth, width, seed, true)
}

func newCountMin(depth, width int, seed uint64, conservative bool) *CountMin {
	if depth < 1 || width < 1 {
		panic("sketch: CountMin dimensions must be >= 1")
	}
	src := rng.New(seed)
	cm := &CountMin{depth: depth, width: width, conservative: conservative}
	cm.rows = make([]hashing.Poly, depth)
	cm.cells = make([][]uint64, depth)
	for r := range cm.rows {
		cm.rows[r] = hashing.NewPoly(src, 2)
		cm.cells[r] = make([]uint64, width)
	}
	return cm
}

// Update adds one occurrence of item.
//
//hh:noalloc
func (cm *CountMin) Update(item uint64) { cm.Add(item, 1) }

// Add adds c occurrences of item.
//
//hh:noalloc
func (cm *CountMin) Add(item uint64, c uint64) {
	cm.n += c
	if !cm.conservative {
		for r, p := range cm.rows {
			cm.cells[r][p.Bucket(item, uint64(cm.width))] += c
		}
		return
	}
	// Conservative update: raise each cell only as far as the new lower
	// bound max(cell, estimate+c) requires.
	est := cm.Estimate(item) + c
	for r, p := range cm.rows {
		cell := &cm.cells[r][p.Bucket(item, uint64(cm.width))]
		if *cell < est {
			*cell = est
		}
	}
}

// Estimate returns the minimum cell across rows — an upper bound on
// item's frequency.
//
//hh:noalloc
func (cm *CountMin) Estimate(item uint64) uint64 {
	est := uint64(math.MaxUint64)
	for r, p := range cm.rows {
		if c := cm.cells[r][p.Bucket(item, uint64(cm.width))]; c < est {
			est = c
		}
	}
	return est
}

// N returns the total weight added.
//
//hh:noalloc
func (cm *CountMin) N() uint64 { return cm.n }

// Words returns the memory footprint in machine words: cells plus two
// hash coefficients per row. Used for Table 1's equal-space comparisons.
func (cm *CountMin) Words() int { return cm.depth*cm.width + 2*cm.depth }

// Depth and Width report the sketch dimensions.
func (cm *CountMin) Depth() int { return cm.depth }

// Width reports the number of counters per row.
func (cm *CountMin) Width() int { return cm.width }

// Reset zeroes all cells, keeping the hash functions.
//
//hh:noalloc
func (cm *CountMin) Reset() {
	for r := range cm.cells {
		for i := range cm.cells[r] {
			cm.cells[r][i] = 0
		}
	}
	cm.n = 0
}
