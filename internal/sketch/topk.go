package sketch

import (
	"sort"
)

// TopKTracker pairs a sketch with a candidate set so the sketch can
// *retrieve* heavy hitters, not only answer point queries — the standard
// construction for sketch-based heavy hitters (and what a deployment of
// the Table 1 sketch baselines actually requires). After each update the
// item's current estimate is compared against the k-th tracked candidate;
// the candidate set is capped at k items.
//
// This is exactly where counter algorithms hold a structural advantage
// the paper emphasises: their summary *is* the candidate set, while a
// sketch must bolt one on and can miss items whose estimates rise only
// while they are outside the tracked set.
type TopKTracker struct {
	k        int
	estimate func(uint64) uint64
	members  map[uint64]uint64 // item -> last observed estimate
}

// NewTopKTracker returns a tracker retaining the k items with the largest
// observed estimates. estimate is consulted on every Observe. It panics
// if k < 1 or estimate is nil.
func NewTopKTracker(k int, estimate func(uint64) uint64) *TopKTracker {
	if k < 1 {
		panic("sketch: tracker k must be >= 1")
	}
	if estimate == nil {
		panic("sketch: tracker needs an estimate function")
	}
	return &TopKTracker{k: k, estimate: estimate, members: make(map[uint64]uint64, k+1)}
}

// Observe refreshes item's estimate in the candidate set, inserting it
// and evicting the smallest candidate when the set overflows k. Call it
// after updating the underlying sketch with the same item.
//
//hh:noalloc
func (t *TopKTracker) Observe(item uint64) {
	est := t.estimate(item)
	if _, ok := t.members[item]; ok {
		t.members[item] = est
		return
	}
	t.members[item] = est
	if len(t.members) <= t.k {
		return
	}
	// Evict the current minimum (ties: larger identifier goes, keeping
	// behaviour deterministic).
	var evict uint64
	first := true
	for it, e := range t.members {
		if first {
			evict, first = it, false
			continue
		}
		ee := t.members[evict]
		if e < ee || (e == ee && it > evict) {
			evict = it
		}
	}
	delete(t.members, evict)
}

// Top returns the tracked candidates sorted by decreasing estimate (ties
// by smaller identifier), re-reading current sketch estimates.
func (t *TopKTracker) Top() []TrackedItem {
	out := make([]TrackedItem, 0, len(t.members))
	for it := range t.members {
		out = append(out, TrackedItem{Item: it, Estimate: t.estimate(it)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Len returns the current candidate count (at most k).
func (t *TopKTracker) Len() int { return len(t.members) }

// K returns the tracker's capacity.
func (t *TopKTracker) K() int { return t.k }

// Reset clears the candidate set.
func (t *TopKTracker) Reset() { t.members = make(map[uint64]uint64, t.k+1) }

// TrackedItem is one heavy-hitter candidate with its current estimate.
type TrackedItem struct {
	Item     uint64
	Estimate uint64
}

// CountMinTopK bundles a Count-Min sketch with a TopKTracker into a
// complete heavy-hitters system: Update feeds both.
type CountMinTopK struct {
	Sketch  *CountMin
	Tracker *TopKTracker
}

// NewCountMinTopK returns a Count-Min-based top-k system.
func NewCountMinTopK(depth, width, k int, seed uint64) *CountMinTopK {
	cm := NewCountMin(depth, width, seed)
	return &CountMinTopK{Sketch: cm, Tracker: NewTopKTracker(k, cm.Estimate)}
}

// Update adds one occurrence and refreshes the candidate set.
//
//hh:noalloc
func (c *CountMinTopK) Update(item uint64) {
	c.Sketch.Update(item)
	c.Tracker.Observe(item)
}

// Top returns the current top-k candidates.
func (c *CountMinTopK) Top() []TrackedItem { return c.Tracker.Top() }

// Words returns the memory footprint: sketch words plus two words per
// tracked candidate.
func (c *CountMinTopK) Words() int { return c.Sketch.Words() + 2*c.Tracker.K() }
