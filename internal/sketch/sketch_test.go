package sketch

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestCountMinOverestimates(t *testing.T) {
	s := stream.Zipf(500, 1.1, 50000, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	cm := NewCountMin(4, 256, 7)
	for _, x := range s {
		cm.Update(x)
	}
	for i := uint64(0); i < 500; i++ {
		if float64(cm.Estimate(i)) < truth.Freq(i) {
			t.Errorf("item %d: estimate %d under true %v", i, cm.Estimate(i), truth.Freq(i))
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With width w the expected overestimate per row is N/w; the min over
	// 4 rows should stay well under 3·e·N/w for every item.
	const n, total, width = 500, 50000, 256
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	cm := NewCountMin(4, width, 7)
	for _, x := range s {
		cm.Update(x)
	}
	bound := 3 * math.E * float64(total) / width
	for i := uint64(0); i < n; i++ {
		over := float64(cm.Estimate(i)) - truth.Freq(i)
		if over > bound {
			t.Errorf("item %d: overestimate %v exceeds %v", i, over, bound)
		}
	}
}

func TestCountMinConservativeDominated(t *testing.T) {
	// Conservative update never yields larger estimates than plain
	// Count-Min with the same hash functions and stream.
	s := stream.Zipf(300, 1.0, 30000, stream.OrderRandom, 5)
	plain := NewCountMin(4, 128, 11)
	cons := NewCountMinConservative(4, 128, 11)
	for _, x := range s {
		plain.Update(x)
		cons.Update(x)
	}
	truth := exact.FromStream(s)
	for i := uint64(0); i < 300; i++ {
		if cons.Estimate(i) > plain.Estimate(i) {
			t.Errorf("item %d: conservative %d > plain %d", i, cons.Estimate(i), plain.Estimate(i))
		}
		if float64(cons.Estimate(i)) < truth.Freq(i) {
			t.Errorf("item %d: conservative underestimates", i)
		}
	}
}

func TestCountMinAddWeighted(t *testing.T) {
	cm := NewCountMin(3, 64, 1)
	cm.Add(5, 10)
	cm.Add(5, 7)
	if got := cm.Estimate(5); got < 17 {
		t.Errorf("Estimate(5) = %d, want >= 17", got)
	}
	if cm.N() != 17 {
		t.Errorf("N = %d, want 17", cm.N())
	}
}

func TestCountMinDeterministicSeed(t *testing.T) {
	a := NewCountMin(3, 64, 42)
	b := NewCountMin(3, 64, 42)
	for i := uint64(0); i < 100; i++ {
		a.Update(i % 10)
		b.Update(i % 10)
	}
	for i := uint64(0); i < 10; i++ {
		if a.Estimate(i) != b.Estimate(i) {
			t.Fatal("same seed produced different sketches")
		}
	}
}

func TestCountMinWordsAndDims(t *testing.T) {
	cm := NewCountMin(4, 100, 1)
	if cm.Words() != 408 {
		t.Errorf("Words = %d, want 408", cm.Words())
	}
	if cm.Depth() != 4 || cm.Width() != 100 {
		t.Errorf("dims = %d×%d", cm.Depth(), cm.Width())
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(2, 32, 3)
	cm.Update(1)
	cm.Reset()
	if cm.Estimate(1) != 0 || cm.N() != 0 {
		t.Error("Reset did not clear cells")
	}
}

func TestCountMinPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"depth 0": func() { NewCountMin(0, 10, 1) },
		"width 0": func() { NewCountMin(3, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCountSketchAccuracy(t *testing.T) {
	const n, total = 500, 50000
	s := stream.Zipf(n, 1.2, total, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	cs := NewCountSketch(5, 256, 9)
	for _, x := range s {
		cs.Update(x)
	}
	// Count-Sketch error per estimate is O(sqrt(F2/w)); allow a generous
	// constant. F2 ≤ N·f_max.
	f2 := truth.ResP(0, 2)
	bound := 6 * math.Sqrt(f2/256)
	bad := 0
	for i := uint64(0); i < n; i++ {
		if math.Abs(float64(cs.Estimate(i))-truth.Freq(i)) > bound {
			bad++
		}
	}
	// The guarantee is probabilistic per item; with the median over 5
	// rows, failures should be rare.
	if bad > n/50 {
		t.Errorf("%d/%d items exceed error bound %v", bad, n, bound)
	}
}

func TestCountSketchDeletions(t *testing.T) {
	cs := NewCountSketch(5, 64, 3)
	cs.Add(7, 10)
	cs.Add(7, -10)
	if got := cs.Estimate(7); got != 0 {
		t.Errorf("Estimate after add/remove = %d, want 0", got)
	}
}

func TestCountSketchNonNegativeClamp(t *testing.T) {
	cs := NewCountSketch(3, 16, 3)
	cs.Add(1, -5)
	if got := cs.EstimateNonNegative(1); got != 0 {
		t.Errorf("EstimateNonNegative = %d, want 0", got)
	}
}

func TestCountSketchEvenDepthMedian(t *testing.T) {
	cs := NewCountSketch(4, 64, 5)
	cs.Add(3, 100)
	est := cs.Estimate(3)
	if est < 90 || est > 110 {
		t.Errorf("Estimate = %d, want ~100", est)
	}
}

func TestCountSketchWordsResetPanics(t *testing.T) {
	cs := NewCountSketch(3, 32, 1)
	if cs.Words() != 3*32+18 {
		t.Errorf("Words = %d, want %d", cs.Words(), 3*32+18)
	}
	cs.Update(1)
	if cs.N() != 1 {
		t.Errorf("N = %d, want 1", cs.N())
	}
	cs.Reset()
	if cs.Estimate(1) != 0 || cs.N() != 0 {
		t.Error("Reset did not clear cells")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewCountSketch(0, 1) did not panic")
			}
		}()
		NewCountSketch(0, 1, 1)
	}()
	if cs.Depth() != 3 || cs.Width() != 32 {
		t.Errorf("dims = %d×%d", cs.Depth(), cs.Width())
	}
}
