package stream

import (
	"bytes"
	"testing"
)

// The readers must never panic on arbitrary input — they are the tools'
// attack surface for malformed files.

func FuzzReadUnit(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteUnit(&seed, []uint64{1, 2, 3, 1 << 40}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHSTRMU1"))
	f.Add([]byte("garbage-garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		items, err := ReadUnit(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A successful parse must round-trip value-identically (byte
		// identity is too strict: varints admit non-canonical encodings
		// like 0x80 0x00 for zero, which re-encode canonically).
		var out bytes.Buffer
		if werr := WriteUnit(&out, items); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		again, err := ReadUnit(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip changed length: %d -> %d", len(items), len(again))
		}
		for i := range items {
			if again[i] != items[i] {
				t.Fatalf("round trip changed item %d: %d -> %d", i, items[i], again[i])
			}
		}
	})
}

func FuzzReadWeighted(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteWeighted(&seed, []Update{{1, 2.5}, {9, 0.25}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHSTRMW1"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ups, err := ReadWeighted(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := WriteWeighted(&out, ups); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		again, err := ReadWeighted(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ups) {
			t.Fatalf("round trip changed length")
		}
		for i := range ups {
			// NaN weights decode as NaN; compare bit patterns via !=
			// only for comparable values.
			if again[i].Item != ups[i].Item {
				t.Fatalf("round trip changed item %d", i)
			}
			if again[i].Weight != ups[i].Weight && !(ups[i].Weight != ups[i].Weight) {
				t.Fatalf("round trip changed weight %d", i)
			}
		}
	})
}
