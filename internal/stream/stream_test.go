package stream

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestFromFrequenciesPreservesCounts(t *testing.T) {
	freq := []uint64{5, 3, 0, 2}
	for _, order := range Orders() {
		s := FromFrequencies(freq, order, rng.New(1))
		c := exact.FromStream(s)
		if c.F1() != 10 {
			t.Errorf("%v: stream length %v, want 10", order, c.F1())
		}
		for i, f := range freq {
			if got := c.Freq(uint64(i)); got != float64(f) {
				t.Errorf("%v: item %d count %v, want %d", order, i, got, f)
			}
		}
	}
}

func TestOrderShapes(t *testing.T) {
	freq := []uint64{3, 2, 1}
	asc := FromFrequencies(freq, OrderSortedAsc, nil)
	wantAsc := []uint64{2, 1, 1, 0, 0, 0}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] {
			t.Fatalf("asc = %v, want %v", asc, wantAsc)
		}
	}
	desc := FromFrequencies(freq, OrderSortedDesc, nil)
	wantDesc := []uint64{0, 0, 0, 1, 1, 2}
	for i := range wantDesc {
		if desc[i] != wantDesc[i] {
			t.Fatalf("desc = %v, want %v", desc, wantDesc)
		}
	}
	rr := FromFrequencies(freq, OrderRoundRobin, nil)
	wantRR := []uint64{0, 1, 2, 0, 1, 0}
	for i := range wantRR {
		if rr[i] != wantRR[i] {
			t.Fatalf("round-robin = %v, want %v", rr, wantRR)
		}
	}
}

func TestRandomOrderIsDeterministicPerSeed(t *testing.T) {
	freq := []uint64{10, 5, 5}
	a := FromFrequencies(freq, OrderRandom, rng.New(42))
	b := FromFrequencies(freq, OrderRandom, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
}

func TestRandomOrderRequiresSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrderRandom with nil source did not panic")
		}
	}()
	FromFrequencies([]uint64{1, 1}, OrderRandom, nil)
}

func TestOrderString(t *testing.T) {
	for _, o := range Orders() {
		if o.String() == "" {
			t.Errorf("order %d has empty name", int(o))
		}
	}
	if got := Order(99).String(); got != "Order(99)" {
		t.Errorf("unknown order = %q", got)
	}
}

func TestZipfStreamLengthAndSkew(t *testing.T) {
	const n, total = 100, 10000
	s := Zipf(n, 1.2, total, OrderRandom, 7)
	if len(s) != total {
		t.Fatalf("len = %d, want %d", len(s), total)
	}
	c := exact.FromStream(s)
	if c.Freq(0) <= c.Freq(50) {
		t.Errorf("Zipf not skewed: f(0)=%v <= f(50)=%v", c.Freq(0), c.Freq(50))
	}
}

func TestZipfSampledDistribution(t *testing.T) {
	const n, total = 50, 200000
	s := ZipfSampled(n, 1.0, total, 3)
	if len(s) != total {
		t.Fatalf("len = %d, want %d", len(s), total)
	}
	c := exact.FromStream(s)
	// f(0)/f(9) should be roughly 10 for alpha = 1.
	ratio := c.Freq(0) / c.Freq(9)
	if ratio < 6 || ratio > 16 {
		t.Errorf("f(0)/f(9) = %v, want ~10", ratio)
	}
	for _, x := range s {
		if x >= n {
			t.Fatalf("sample %d outside universe", x)
		}
	}
}

func TestUniformStream(t *testing.T) {
	const n, total = 10, 100000
	s := Uniform(n, total, 11)
	c := exact.FromStream(s)
	for i := uint64(0); i < n; i++ {
		f := c.Freq(i)
		if f < total/n*0.9 || f > total/n*1.1 {
			t.Errorf("item %d frequency %v, want ~%v", i, f, total/n)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ZipfSampled n=0": func() { ZipfSampled(0, 1, 10, 1) },
		"Uniform n=0":     func() { Uniform(0, 10, 1) },
		"unknown order":   func() { FromFrequencies([]uint64{1}, Order(99), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDriftRotatesHotSet(t *testing.T) {
	const (
		n      = 1000
		total  = 40000
		period = 10000
	)
	s := Drift(n, 1.2, total, period, 7)
	if len(s) != total {
		t.Fatalf("length %d, want %d", len(s), total)
	}
	// Reproducible for a fixed seed, different for another.
	s2 := Drift(n, 1.2, total, period, 7)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	s3 := Drift(n, 1.2, total, period, 8)
	same := 0
	for i := range s {
		if s[i] == s3[i] {
			same++
		}
	}
	if same == total {
		t.Error("different seeds produced identical streams")
	}
	// The modal item of each block must differ between blocks (the hot
	// set drifts), and items stay inside the universe.
	modal := func(block []uint64) uint64 {
		counts := map[uint64]int{}
		best, bestC := uint64(0), -1
		for _, x := range block {
			if int(x) >= n {
				t.Fatalf("item %d outside universe %d", x, n)
			}
			counts[x]++
			if counts[x] > bestC {
				best, bestC = x, counts[x]
			}
		}
		return best
	}
	m0 := modal(s[:period])
	m1 := modal(s[period : 2*period])
	m2 := modal(s[2*period : 3*period])
	if m0 == m1 && m1 == m2 {
		t.Errorf("hot set did not drift: modal items %d, %d, %d", m0, m1, m2)
	}
}

// TestDriftStepNeverDegenerates: the rank shift must never be ≡ 0
// mod n, which would freeze the hot set (seed 10 with n = 15 hits
// exactly that with a naive step derivation).
func TestDriftStepNeverDegenerates(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for seed := uint64(1); seed <= 30; seed++ {
			s := Drift(n, 1.3, 4000, 1000, seed)
			first, second := s[:1000], s[1000:2000]
			modal := func(block []uint64) uint64 {
				counts := map[uint64]int{}
				best, bestC := uint64(0), -1
				for _, x := range block {
					counts[x]++
					if counts[x] > bestC {
						best, bestC = x, counts[x]
					}
				}
				return best
			}
			if m0, m1 := modal(first), modal(second); m0 == m1 {
				t.Fatalf("n=%d seed=%d: hot set frozen across blocks (modal %d)", n, seed, m0)
			}
		}
	}
}

func TestBurstDuplicationProfile(t *testing.T) {
	const (
		n     = 20000
		total = 65536
		batch = 4096
		dup   = 0.9
	)
	s := Burst(n, 1.3, total, batch, dup, 7)
	if len(s) != total {
		t.Fatalf("length %d, want %d", len(s), total)
	}
	// Reproducible for a fixed seed, different for another.
	s2 := Burst(n, 1.3, total, batch, dup, 7)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	s3 := Burst(n, 1.3, total, batch, dup, 8)
	same := 0
	for i := range s {
		if s[i] == s3[i] {
			same++
		}
	}
	if same == total {
		t.Error("different seeds produced identical streams")
	}
	// Each batch must carry at most ceil(batch·(1−dup)) distinct items
	// (Zipf draw collisions can only shrink the set), and items stay
	// inside the universe.
	maxDistinct := int(math.Ceil(batch * (1 - dup)))
	for lo := 0; lo < total; lo += batch {
		seen := map[uint64]struct{}{}
		for _, x := range s[lo : lo+batch] {
			if int(x) >= n {
				t.Fatalf("item %d outside universe %d", x, n)
			}
			seen[x] = struct{}{}
		}
		if len(seen) > maxDistinct {
			t.Fatalf("batch at %d has %d distinct items, want <= %d", lo, len(seen), maxDistinct)
		}
		if len(seen) < 2 {
			t.Fatalf("batch at %d degenerated to %d distinct items", lo, len(seen))
		}
	}
	// Duplicates must be interleaved, not run-length grouped: in a
	// shuffled batch of 4096 with ~410 distinct items, long runs of one
	// item are vanishingly unlikely.
	maxRun, run := 1, 1
	for i := 1; i < batch; i++ {
		if s[i] == s[i-1] {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 1
		}
	}
	if maxRun > 10 {
		t.Errorf("first batch has a run of %d identical items; duplicates should be interleaved", maxRun)
	}
}

// dup=0 degenerates to one draw per slot — every batch may be fully
// distinct — and the parameter contract panics on out-of-range knobs.
func TestBurstParamContract(t *testing.T) {
	s := Burst(1000, 1.1, 1000, 256, 0, 3)
	if len(s) != 1000 {
		t.Fatalf("length %d, want 1000", len(s))
	}
	for _, bad := range []func(){
		func() { Burst(0, 1.1, 10, 4, 0.5, 1) },
		func() { Burst(10, 1.1, 10, 0, 0.5, 1) },
		func() { Burst(10, 1.1, 10, 4, -0.1, 1) },
		func() { Burst(10, 1.1, 10, 4, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
