package stream

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestFromFrequenciesPreservesCounts(t *testing.T) {
	freq := []uint64{5, 3, 0, 2}
	for _, order := range Orders() {
		s := FromFrequencies(freq, order, rng.New(1))
		c := exact.FromStream(s)
		if c.F1() != 10 {
			t.Errorf("%v: stream length %v, want 10", order, c.F1())
		}
		for i, f := range freq {
			if got := c.Freq(uint64(i)); got != float64(f) {
				t.Errorf("%v: item %d count %v, want %d", order, i, got, f)
			}
		}
	}
}

func TestOrderShapes(t *testing.T) {
	freq := []uint64{3, 2, 1}
	asc := FromFrequencies(freq, OrderSortedAsc, nil)
	wantAsc := []uint64{2, 1, 1, 0, 0, 0}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] {
			t.Fatalf("asc = %v, want %v", asc, wantAsc)
		}
	}
	desc := FromFrequencies(freq, OrderSortedDesc, nil)
	wantDesc := []uint64{0, 0, 0, 1, 1, 2}
	for i := range wantDesc {
		if desc[i] != wantDesc[i] {
			t.Fatalf("desc = %v, want %v", desc, wantDesc)
		}
	}
	rr := FromFrequencies(freq, OrderRoundRobin, nil)
	wantRR := []uint64{0, 1, 2, 0, 1, 0}
	for i := range wantRR {
		if rr[i] != wantRR[i] {
			t.Fatalf("round-robin = %v, want %v", rr, wantRR)
		}
	}
}

func TestRandomOrderIsDeterministicPerSeed(t *testing.T) {
	freq := []uint64{10, 5, 5}
	a := FromFrequencies(freq, OrderRandom, rng.New(42))
	b := FromFrequencies(freq, OrderRandom, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
}

func TestRandomOrderRequiresSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrderRandom with nil source did not panic")
		}
	}()
	FromFrequencies([]uint64{1, 1}, OrderRandom, nil)
}

func TestOrderString(t *testing.T) {
	for _, o := range Orders() {
		if o.String() == "" {
			t.Errorf("order %d has empty name", int(o))
		}
	}
	if got := Order(99).String(); got != "Order(99)" {
		t.Errorf("unknown order = %q", got)
	}
}

func TestZipfStreamLengthAndSkew(t *testing.T) {
	const n, total = 100, 10000
	s := Zipf(n, 1.2, total, OrderRandom, 7)
	if len(s) != total {
		t.Fatalf("len = %d, want %d", len(s), total)
	}
	c := exact.FromStream(s)
	if c.Freq(0) <= c.Freq(50) {
		t.Errorf("Zipf not skewed: f(0)=%v <= f(50)=%v", c.Freq(0), c.Freq(50))
	}
}

func TestZipfSampledDistribution(t *testing.T) {
	const n, total = 50, 200000
	s := ZipfSampled(n, 1.0, total, 3)
	if len(s) != total {
		t.Fatalf("len = %d, want %d", len(s), total)
	}
	c := exact.FromStream(s)
	// f(0)/f(9) should be roughly 10 for alpha = 1.
	ratio := c.Freq(0) / c.Freq(9)
	if ratio < 6 || ratio > 16 {
		t.Errorf("f(0)/f(9) = %v, want ~10", ratio)
	}
	for _, x := range s {
		if x >= n {
			t.Fatalf("sample %d outside universe", x)
		}
	}
}

func TestUniformStream(t *testing.T) {
	const n, total = 10, 100000
	s := Uniform(n, total, 11)
	c := exact.FromStream(s)
	for i := uint64(0); i < n; i++ {
		f := c.Freq(i)
		if f < total/n*0.9 || f > total/n*1.1 {
			t.Errorf("item %d frequency %v, want ~%v", i, f, total/n)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ZipfSampled n=0": func() { ZipfSampled(0, 1, 10, 1) },
		"Uniform n=0":     func() { Uniform(0, 10, 1) },
		"unknown order":   func() { FromFrequencies([]uint64{1}, Order(99), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDriftRotatesHotSet(t *testing.T) {
	const (
		n      = 1000
		total  = 40000
		period = 10000
	)
	s := Drift(n, 1.2, total, period, 7)
	if len(s) != total {
		t.Fatalf("length %d, want %d", len(s), total)
	}
	// Reproducible for a fixed seed, different for another.
	s2 := Drift(n, 1.2, total, period, 7)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	s3 := Drift(n, 1.2, total, period, 8)
	same := 0
	for i := range s {
		if s[i] == s3[i] {
			same++
		}
	}
	if same == total {
		t.Error("different seeds produced identical streams")
	}
	// The modal item of each block must differ between blocks (the hot
	// set drifts), and items stay inside the universe.
	modal := func(block []uint64) uint64 {
		counts := map[uint64]int{}
		best, bestC := uint64(0), -1
		for _, x := range block {
			if int(x) >= n {
				t.Fatalf("item %d outside universe %d", x, n)
			}
			counts[x]++
			if counts[x] > bestC {
				best, bestC = x, counts[x]
			}
		}
		return best
	}
	m0 := modal(s[:period])
	m1 := modal(s[period : 2*period])
	m2 := modal(s[2*period : 3*period])
	if m0 == m1 && m1 == m2 {
		t.Errorf("hot set did not drift: modal items %d, %d, %d", m0, m1, m2)
	}
}

// TestDriftStepNeverDegenerates: the rank shift must never be ≡ 0
// mod n, which would freeze the hot set (seed 10 with n = 15 hits
// exactly that with a naive step derivation).
func TestDriftStepNeverDegenerates(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for seed := uint64(1); seed <= 30; seed++ {
			s := Drift(n, 1.3, 4000, 1000, seed)
			first, second := s[:1000], s[1000:2000]
			modal := func(block []uint64) uint64 {
				counts := map[uint64]int{}
				best, bestC := uint64(0), -1
				for _, x := range block {
					counts[x]++
					if counts[x] > bestC {
						best, bestC = x, counts[x]
					}
				}
				return best
			}
			if m0, m1 := modal(first), modal(second); m0 == m1 {
				t.Fatalf("n=%d seed=%d: hot set frozen across blocks (modal %d)", n, seed, m0)
			}
		}
	}
}
