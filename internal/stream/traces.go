package stream

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/zipfmath"
)

// This file generates the synthetic application traces used by the example
// programs: a packet-flow trace (network monitoring, the paper's §1
// "network measurements" motivation) and a search-query log (the "search
// engine queries" motivation). Both substitute for proprietary traces with
// the skewed distributions the paper assumes; see DESIGN.md §3.

// Flow is one packet arrival in a synthetic network trace.
type Flow struct {
	SrcIP, DstIP uint32
	Bytes        uint32
}

// FlowKey packs the (src, dst) pair into the uint64 item identifier the
// heavy-hitter algorithms consume.
func (f Flow) FlowKey() uint64 { return uint64(f.SrcIP)<<32 | uint64(f.DstIP) }

// NetFlow generates a synthetic packet trace with nFlows distinct
// (src, dst) flows whose total byte counts follow a Zipfian distribution
// with parameter alpha, split into packets of 64–1500 bytes. Packets are
// shuffled uniformly.
func NetFlow(nFlows int, alpha float64, totalBytes float64, seed uint64) []Flow {
	if nFlows < 1 {
		panic("stream: NetFlow requires nFlows >= 1")
	}
	src := rng.New(seed)
	zeta := zipfmath.Zeta(nFlows, alpha)
	var out []Flow
	for i := 0; i < nFlows; i++ {
		sip := uint32(src.Uint64())
		dip := uint32(src.Uint64())
		remaining := totalBytes / (math.Pow(float64(i+1), alpha) * zeta)
		for remaining >= 64 {
			pkt := float64(64 + src.Intn(1437)) // 64..1500
			if pkt > remaining {
				pkt = remaining
			}
			out = append(out, Flow{SrcIP: sip, DstIP: dip, Bytes: uint32(pkt)})
			remaining -= pkt
		}
	}
	src.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// QueryLog generates a synthetic search-query log: total queries drawn
// i.i.d. from a Zipfian popularity distribution over nQueries distinct
// query strings ("query-0000" is the most popular).
func QueryLog(nQueries int, alpha float64, total uint64, seed uint64) []string {
	ids := ZipfSampled(nQueries, alpha, total, seed)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("query-%04d", id)
	}
	return out
}
