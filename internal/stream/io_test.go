package stream

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestUnitRoundTrip(t *testing.T) {
	err := quick.Check(func(items []uint64) bool {
		var buf bytes.Buffer
		if err := WriteUnit(&buf, items); err != nil {
			return false
		}
		got, err := ReadUnit(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range items {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRoundTrip(t *testing.T) {
	in := []Update{{1, 0.5}, {2, 1e9}, {1, 0.0001}, {1 << 60, 42}}
	var buf bytes.Buffer
	if err := WriteWeighted(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("len = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("update %d = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestEmptyStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUnit(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUnit(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty unit round trip: %v, %v", got, err)
	}
	buf.Reset()
	if err := WriteWeighted(&buf, nil); err != nil {
		t.Fatal(err)
	}
	ws, err := ReadWeighted(&buf)
	if err != nil || len(ws) != 0 {
		t.Errorf("empty weighted round trip: %v, %v", ws, err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadUnit(bytes.NewReader([]byte("NOTMAGIC123"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("ReadUnit bad magic err = %v, want ErrBadMagic", err)
	}
	if _, err := ReadWeighted(bytes.NewReader([]byte("NOTMAGIC123"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("ReadWeighted bad magic err = %v, want ErrBadMagic", err)
	}
}

func TestCrossFormatRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUnit(&buf, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWeighted(&buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("weighted reader accepted unit file: %v", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWeighted(&buf, []Update{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadWeighted(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated weighted file read without error")
	}
	if _, err := ReadUnit(bytes.NewReader(raw[:4])); err == nil {
		t.Error("truncated header read without error")
	}
}
