package stream

// This file implements the Appendix A lower-bound construction (Theorem
// 13): two streams that share a prefix after which the algorithm's state
// cannot distinguish them, forcing an estimation error of at least
// F1^res(k) / (2m + 2k/X) on one of them.

// LowerBoundPrefix returns the shared prefix of the Theorem 13 streams:
// items 0 … m+k−1, each occurring X times, emitted in round-robin order
// (the order is immaterial to the argument; round-robin keeps all counters
// balanced, which is the adversary's best case).
func LowerBoundPrefix(m, k, x int) []uint64 {
	if m < 1 || k < 1 || k > m || x < 1 {
		panic("stream: LowerBoundPrefix requires 1 <= k <= m and X >= 1")
	}
	freq := make([]uint64, m+k)
	for i := range freq {
		freq[i] = uint64(x)
	}
	return FromFrequencies(freq, OrderRoundRobin, nil)
}

// LowerBoundContinuations returns the two continuation suffixes of Theorem
// 13 given the k prefix items the algorithm currently stores *no* counter
// for (zeroItems; the adversary inspects the state after the prefix).
// Stream A continues with those k forgotten prefix items once each; stream
// B continues with k fresh items (identifiers m+k … m+2k−1) once each.
// Both continuations look identical to the algorithm, so it must answer
// identically, yet the true frequencies differ by X.
func LowerBoundContinuations(m, k int, zeroItems []uint64) (contA, contB []uint64) {
	if len(zeroItems) != k {
		panic("stream: need exactly k zero-counter items")
	}
	contA = make([]uint64, k)
	copy(contA, zeroItems)
	contB = make([]uint64, k)
	for i := 0; i < k; i++ {
		contB[i] = uint64(m + k + i)
	}
	return contA, contB
}
