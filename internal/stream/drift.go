package stream

// Drift generates the workload sliding windows exist for: a Zipfian
// stream whose hot set rotates. The stream is cut into blocks of period
// items; within a block, popularity ranks follow the usual Zipf
// distribution, but each block maps rank r to item (r + b·step) mod n,
// so every block's heavy hitters are a fresh slice of the universe. A
// whole-stream summary smears its counters across all the hot sets it
// has ever seen; a windowed or decayed summary must surface the current
// block's — which is exactly what the windowed invariants tests and
// benchmarks probe.
//
// The rank→item shift step is derived from the seed, so two runs with
// the same (n, alpha, total, period, seed) produce identical streams —
// the reproducibility contract of the bench pipeline (hhgen -seed).
func Drift(n int, alpha float64, total, period, seed uint64) []uint64 {
	if n < 1 {
		panic("stream: Drift requires n >= 1")
	}
	if period < 1 {
		panic("stream: Drift requires period >= 1")
	}
	out := ZipfSampled(n, alpha, total, seed)
	// The seed-derived step is forced into [1, n−1], so consecutive
	// blocks' hot sets always differ (a step ≡ 0 mod n would silently
	// degenerate the workload to a static Zipf stream).
	step := uint64(n) / 3
	if n > 1 {
		step = 1 + (step+seed%uint64(n))%(uint64(n)-1)
	}
	for t, rank := range out {
		shift := (uint64(t) / period) * step
		out[t] = (rank + shift) % uint64(n)
	}
	return out
}
