package stream

import (
	"math"

	"repro/internal/rng"
	"repro/internal/zipfmath"
)

// Update is one arrival in a real-valued update stream (Section 6.1): the
// tuple (a_i, b_i) representing b_i occurrences of element a_i, with
// b_i ∈ R+.
type Update struct {
	Item   uint64
	Weight float64
}

// UnitUpdates lifts a unit-weight stream into the weighted representation.
func UnitUpdates(items []uint64) []Update {
	out := make([]Update, len(items))
	for i, x := range items {
		out[i] = Update{Item: x, Weight: 1}
	}
	return out
}

// TotalWeight returns Σ b_i over the stream.
func TotalWeight(updates []Update) float64 {
	s := 0.0
	for _, u := range updates {
		s += u.Weight
	}
	return s
}

// WeightedZipf generates a real-valued update stream in which item i's
// *total weight* is Zipfian with parameter alpha, but that weight arrives
// split across a random number of bursts with exponentially distributed
// sizes — the shape of byte-counted packet streams. The arrival order is
// a uniform shuffle.
//
// n is the number of distinct items, totalWeight the target Σ b_i (realised
// approximately; exact apportionment is irrelevant for real weights), and
// meanBursts the average number of arrivals carrying each item's weight.
func WeightedZipf(n int, alpha, totalWeight float64, meanBursts int, seed uint64) []Update {
	if n < 1 {
		panic("stream: WeightedZipf requires n >= 1")
	}
	if meanBursts < 1 {
		panic("stream: WeightedZipf requires meanBursts >= 1")
	}
	src := rng.New(seed)
	zeta := zipfmath.Zeta(n, alpha)
	var out []Update
	for i := 0; i < n; i++ {
		w := totalWeight / (math.Pow(float64(i+1), alpha) * zeta)
		if w <= 0 {
			continue
		}
		// Split w into 1..2*meanBursts-1 bursts with random proportions.
		bursts := 1 + src.Intn(2*meanBursts-1)
		props := make([]float64, bursts)
		sum := 0.0
		for j := range props {
			props[j] = src.ExpFloat64()
			sum += props[j]
		}
		for j := range props {
			bw := w * props[j] / sum
			if bw > 0 {
				out = append(out, Update{Item: uint64(i), Weight: bw})
			}
		}
	}
	src.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}
