package stream

import (
	"math"

	"repro/internal/rng"
)

// Burst generates the workload in-batch coalescing exists for: a
// Zipfian stream delivered in fixed-size ingest batches where most of
// each batch repeats a small set of distinct keys — the duplication
// profile of fan-in collectors, where one flush window sees the same
// hot keys over and over. The stream is cut into blocks of batch
// items; each block draws its distinct set i.i.d. from the Zipfian
// distribution over n items and then fills the block by cycling
// through that set in random order.
//
// dup in [0, 1) is the per-batch duplication knob: the fraction of
// each batch that repeats an earlier item of the same batch. A batch
// of B items carries ceil(B·(1−dup)) distinct draws — dup=0
// degenerates to plain ZipfSampled (every slot its own draw), while
// dup=0.9 gives a coalescing kernel ten-fold fewer probes than
// arrivals. Duplicates are spread across the batch (the distinct set
// is cycled, not run-length grouped), so a kernel cannot exploit
// adjacency — only true in-batch grouping collapses them.
//
// Like Drift, the generator is fully seeded: two runs with the same
// (n, alpha, total, batch, dup, seed) produce identical streams — the
// reproducibility contract of the bench pipeline (hhgen -seed).
func Burst(n int, alpha float64, total, batch uint64, dup float64, seed uint64) []uint64 {
	if n < 1 {
		panic("stream: Burst requires n >= 1")
	}
	if batch < 1 {
		panic("stream: Burst requires batch >= 1")
	}
	if dup < 0 || dup >= 1 {
		panic("stream: Burst requires 0 <= dup < 1")
	}
	// Cumulative weights of the (unnormalised) Zipf pmf, shared by
	// every block's draws (same sampler as ZipfSampled).
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	src := rng.New(seed)
	out := make([]uint64, total)
	distinct := make([]uint64, 0, batch)
	for lo := uint64(0); lo < total; lo += batch {
		b := batch
		if rem := total - lo; rem < b {
			b = rem
		}
		// ceil(b·(1−dup)) distinct draws, at least one.
		d := uint64(math.Ceil(float64(b) * (1 - dup)))
		if d < 1 {
			d = 1
		}
		if d > b {
			d = b
		}
		distinct = distinct[:0]
		for i := uint64(0); i < d; i++ {
			u := src.Float64() * sum
			klo, khi := 0, n-1
			for klo < khi {
				mid := (klo + khi) / 2
				if cdf[mid] < u {
					klo = mid + 1
				} else {
					khi = mid
				}
			}
			distinct = append(distinct, uint64(klo))
		}
		blk := out[lo : lo+b]
		for i := range blk {
			blk[i] = distinct[uint64(i)%d]
		}
		// Shuffle within the block so duplicates are interleaved, not
		// adjacent runs.
		for i := len(blk) - 1; i > 0; i-- {
			j := src.Uint64n(uint64(i + 1))
			blk[i], blk[j] = blk[j], blk[i]
		}
	}
	return out
}
