package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file implements a compact binary stream-file format used by the
// cmd/hhgen and cmd/hhcli tools, so generated workloads can be stored and
// replayed.
//
// Layout: 8-byte magic, then one record per arrival. Unit streams store
// each item as a uvarint. Weighted streams store a uvarint item followed
// by the weight's IEEE-754 bits as a fixed 8-byte little-endian word.

var (
	unitMagic     = [8]byte{'H', 'H', 'S', 'T', 'R', 'M', 'U', '1'}
	weightedMagic = [8]byte{'H', 'H', 'S', 'T', 'R', 'M', 'W', '1'}
)

// ErrBadMagic reports that a stream file does not start with a recognised
// header.
var ErrBadMagic = errors.New("stream: unrecognised stream file magic")

// WriteUnit writes a unit-weight stream to w in the binary format.
func WriteUnit(w io.Writer, items []uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(unitMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, x := range items {
		n := binary.PutUvarint(buf[:], x)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUnit reads a unit-weight stream written by WriteUnit.
func ReadUnit(r io.Reader) ([]uint64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", err)
	}
	if magic != unitMagic {
		return nil, ErrBadMagic
	}
	var out []uint64
	for {
		x, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("stream: reading item %d: %w", len(out), err)
		}
		out = append(out, x)
	}
}

// WriteWeighted writes a weighted update stream to w.
func WriteWeighted(w io.Writer, updates []Update) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(weightedMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64 + 8]byte
	for _, u := range updates {
		n := binary.PutUvarint(buf[:], u.Item)
		binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(u.Weight))
		if _, err := bw.Write(buf[:n+8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeighted reads a weighted update stream written by WriteWeighted.
func ReadWeighted(r io.Reader) ([]Update, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", err)
	}
	if magic != weightedMagic {
		return nil, ErrBadMagic
	}
	var out []Update
	var wbuf [8]byte
	for {
		item, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("stream: reading update %d: %w", len(out), err)
		}
		if _, err := io.ReadFull(br, wbuf[:]); err != nil {
			return nil, fmt.Errorf("stream: reading weight %d: %w", len(out), err)
		}
		out = append(out, Update{Item: item, Weight: math.Float64frombits(binary.LittleEndian.Uint64(wbuf[:]))})
	}
}
