package stream

import (
	"math"
	"testing"
)

func TestUnitUpdates(t *testing.T) {
	u := UnitUpdates([]uint64{3, 7})
	if len(u) != 2 || u[0] != (Update{3, 1}) || u[1] != (Update{7, 1}) {
		t.Errorf("UnitUpdates = %v", u)
	}
	if got := TotalWeight(u); got != 2 {
		t.Errorf("TotalWeight = %v, want 2", got)
	}
}

func TestWeightedZipfMassAndSkew(t *testing.T) {
	const n = 100
	const total = 1e6
	ups := WeightedZipf(n, 1.1, total, 4, 5)
	mass := TotalWeight(ups)
	if math.Abs(mass-total) > total*0.01 {
		t.Errorf("total weight %v, want ~%v", mass, total)
	}
	perItem := make(map[uint64]float64)
	for _, u := range ups {
		if u.Weight <= 0 {
			t.Fatalf("non-positive weight %v", u.Weight)
		}
		perItem[u.Item] += u.Weight
	}
	if perItem[0] <= perItem[50] {
		t.Errorf("weighted Zipf not skewed: w(0)=%v <= w(50)=%v", perItem[0], perItem[50])
	}
}

func TestWeightedZipfDeterministic(t *testing.T) {
	a := WeightedZipf(20, 1.5, 1000, 3, 9)
	b := WeightedZipf(20, 1.5, 1000, 3, 9)
	if len(a) != len(b) {
		t.Fatal("different lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different weighted streams")
		}
	}
}

func TestWeightedZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":      func() { WeightedZipf(0, 1, 10, 2, 1) },
		"bursts=0": func() { WeightedZipf(5, 1, 10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLowerBoundPrefix(t *testing.T) {
	const m, k, x = 10, 3, 5
	prefix := LowerBoundPrefix(m, k, x)
	if len(prefix) != x*(m+k) {
		t.Fatalf("prefix length %d, want %d", len(prefix), x*(m+k))
	}
	counts := make(map[uint64]int)
	for _, it := range prefix {
		counts[it]++
	}
	if len(counts) != m+k {
		t.Fatalf("prefix has %d distinct items, want %d", len(counts), m+k)
	}
	for it, c := range counts {
		if c != x {
			t.Errorf("item %d occurs %d times, want %d", it, c, x)
		}
	}
}

func TestLowerBoundContinuations(t *testing.T) {
	const m, k = 10, 3
	zero := []uint64{2, 5, 7}
	a, b := LowerBoundContinuations(m, k, zero)
	for i := range zero {
		if a[i] != zero[i] {
			t.Errorf("contA[%d] = %d, want %d", i, a[i], zero[i])
		}
		if b[i] != uint64(m+k+i) {
			t.Errorf("contB[%d] = %d, want %d", i, b[i], m+k+i)
		}
	}
}

func TestLowerBoundPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k>m":        func() { LowerBoundPrefix(3, 4, 1) },
		"x=0":        func() { LowerBoundPrefix(3, 1, 0) },
		"wrong zero": func() { LowerBoundContinuations(3, 2, []uint64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNetFlowTrace(t *testing.T) {
	flows := NetFlow(50, 1.2, 1e6, 7)
	if len(flows) == 0 {
		t.Fatal("empty trace")
	}
	var total float64
	keys := make(map[uint64]bool)
	for _, f := range flows {
		if f.Bytes < 1 || f.Bytes > 1500 {
			t.Fatalf("packet size %d out of range", f.Bytes)
		}
		total += float64(f.Bytes)
		keys[f.FlowKey()] = true
	}
	if total < 0.9e6 || total > 1.1e6 {
		t.Errorf("total bytes %v, want ~1e6", total)
	}
	if len(keys) > 50 {
		t.Errorf("%d distinct flows, want <= 50", len(keys))
	}
}

func TestQueryLog(t *testing.T) {
	qs := QueryLog(100, 1.0, 5000, 3)
	if len(qs) != 5000 {
		t.Fatalf("len = %d, want 5000", len(qs))
	}
	counts := make(map[string]int)
	for _, q := range qs {
		counts[q]++
	}
	if counts["query-0000"] <= counts["query-0050"] {
		t.Error("query log not skewed toward query-0000")
	}
}
