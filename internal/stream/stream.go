// Package stream generates the synthetic workloads the experiments run on:
// exact-Zipfian streams in several adversarial arrival orders, sampled
// Zipfian and uniform streams, weighted (real-valued) streams for the
// Section 6.1 extensions, and the Appendix A lower-bound construction.
//
// Real search-query logs and packet traces (the paper's motivating inputs)
// are proprietary; these generators produce the same statistical shape —
// skewed frequency distributions under arbitrary arrival order — which is
// exactly the regime the paper's guarantees quantify over.
package stream

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/zipfmath"
)

// Order selects the arrival order used when a frequency vector is expanded
// into a concrete stream. The paper's guarantees are order-adversarial
// (Section 1.1 notes LOSSYCOUNTING degrades on adversarial orders), so
// experiments exercise several.
type Order int

const (
	// OrderRandom shuffles all occurrences uniformly.
	OrderRandom Order = iota
	// OrderSortedAsc emits the rarest items' occurrences first; heavy
	// hitters arrive only at the end, stressing eviction behaviour.
	OrderSortedAsc
	// OrderSortedDesc emits the most frequent items first.
	OrderSortedDesc
	// OrderRoundRobin interleaves items cyclically (1,2,3,…,1,2,3,…),
	// the classic adversarial order for window-based algorithms.
	OrderRoundRobin
	// OrderBlocks emits each item's occurrences as one contiguous run,
	// ordered by item identifier.
	OrderBlocks
)

// String returns the experiment-table label for the order.
func (o Order) String() string {
	switch o {
	case OrderRandom:
		return "random"
	case OrderSortedAsc:
		return "sorted-asc"
	case OrderSortedDesc:
		return "sorted-desc"
	case OrderRoundRobin:
		return "round-robin"
	case OrderBlocks:
		return "blocks"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Orders lists every arrival order, for sweeps.
func Orders() []Order {
	return []Order{OrderRandom, OrderSortedAsc, OrderSortedDesc, OrderRoundRobin, OrderBlocks}
}

// FromFrequencies expands a frequency vector (freq[i] occurrences of item
// i) into a concrete stream in the given order. src is required only for
// OrderRandom and may be nil otherwise.
func FromFrequencies(freq []uint64, order Order, src *rng.Source) []uint64 {
	var total uint64
	for _, f := range freq {
		total += f
	}
	out := make([]uint64, 0, total)
	switch order {
	case OrderBlocks, OrderRandom:
		for i, f := range freq {
			for j := uint64(0); j < f; j++ {
				out = append(out, uint64(i))
			}
		}
		if order == OrderRandom {
			if src == nil {
				panic("stream: OrderRandom requires a rng source")
			}
			src.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		}
	case OrderSortedAsc:
		for i := len(freq) - 1; i >= 0; i-- {
			for j := uint64(0); j < freq[i]; j++ {
				out = append(out, uint64(i))
			}
		}
	case OrderSortedDesc:
		for i, f := range freq {
			for j := uint64(0); j < f; j++ {
				out = append(out, uint64(i))
			}
		}
	case OrderRoundRobin:
		remaining := make([]uint64, len(freq))
		copy(remaining, freq)
		left := total
		for left > 0 {
			for i := range remaining {
				if remaining[i] > 0 {
					out = append(out, uint64(i))
					remaining[i]--
					left--
				}
			}
		}
	default:
		panic(fmt.Sprintf("stream: unknown order %d", int(order)))
	}
	return out
}

// Zipf returns a stream whose frequency vector is exactly Zipfian with
// parameter alpha over n items and total length total, in the given
// arrival order. Item 0 is the most frequent.
func Zipf(n int, alpha float64, total uint64, order Order, seed uint64) []uint64 {
	freq := zipfmath.Frequencies(n, alpha, float64(total))
	return FromFrequencies(freq, order, rng.New(seed))
}

// ZipfSampled returns a stream of total i.i.d. draws from the Zipfian
// distribution over n items (inversion sampling against the exact CDF).
// Unlike Zipf, the realised frequency vector fluctuates around the
// expectation, which exercises estimation under sampling noise.
func ZipfSampled(n int, alpha float64, total uint64, seed uint64) []uint64 {
	if n < 1 {
		panic("stream: ZipfSampled requires n >= 1")
	}
	// Cumulative weights of the (unnormalised) Zipf pmf.
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	src := rng.New(seed)
	out := make([]uint64, total)
	for t := range out {
		u := src.Float64() * sum
		// Binary search for the first index with cdf >= u.
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[t] = uint64(lo)
	}
	return out
}

// Uniform returns a stream of total i.i.d. uniform draws over [0, n).
func Uniform(n int, total uint64, seed uint64) []uint64 {
	if n < 1 {
		panic("stream: Uniform requires n >= 1")
	}
	src := rng.New(seed)
	out := make([]uint64, total)
	for t := range out {
		out[t] = src.Uint64n(uint64(n))
	}
	return out
}
