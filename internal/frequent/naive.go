package frequent

import "repro/internal/core"

// Naive is the literal transcription of Algorithm 1: the decrement-all
// step walks every stored counter. It exists as a differential-testing
// oracle for Frequent and for readers comparing against the paper's
// pseudocode; production use should prefer Frequent.
type Naive[K comparable] struct {
	m          int
	counts     map[K]uint64
	n          uint64
	decrements uint64
}

// NewNaive returns a naive FREQUENT instance with m counters. It panics
// if m < 1.
func NewNaive[K comparable](m int) *Naive[K] {
	if m < 1 {
		panic("frequent: m must be >= 1")
	}
	return &Naive[K]{m: m, counts: make(map[K]uint64, m)}
}

// Update processes one occurrence of item.
func (f *Naive[K]) Update(item K) {
	f.n++
	if _, ok := f.counts[item]; ok {
		f.counts[item]++
		return
	}
	if len(f.counts) < f.m {
		f.counts[item] = 1
		return
	}
	f.decrements++
	for k, v := range f.counts {
		if v == 1 {
			delete(f.counts, k)
		} else {
			f.counts[k] = v - 1
		}
	}
}

// Estimate returns the stored count of item, zero if absent.
func (f *Naive[K]) Estimate(item K) uint64 { return f.counts[item] }

// Entries returns the stored counters sorted by decreasing count.
func (f *Naive[K]) Entries() []core.Entry[K] {
	out := make([]core.Entry[K], 0, len(f.counts))
	for k, v := range f.counts {
		out = append(out, core.Entry[K]{Item: k, Count: v})
	}
	core.SortEntries(out)
	return out
}

// Capacity returns m.
func (f *Naive[K]) Capacity() int { return f.m }

// Len returns the number of stored counters.
func (f *Naive[K]) Len() int { return len(f.counts) }

// N returns the number of processed stream elements.
func (f *Naive[K]) N() uint64 { return f.n }

// Decrements returns the number of decrement-all operations performed.
func (f *Naive[K]) Decrements() uint64 { return f.decrements }

// Reset restores the empty state.
func (f *Naive[K]) Reset() {
	f.counts = make(map[K]uint64, f.m)
	f.n, f.decrements = 0, 0
}
