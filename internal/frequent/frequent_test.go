package frequent

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/stream"
	"repro/internal/vector"
)

func TestExactUnderCapacity(t *testing.T) {
	f := New[uint64](10)
	in := []uint64{1, 2, 1, 3, 1, 2}
	core.Feed[uint64](f, in)
	if got := f.Estimate(1); got != 3 {
		t.Errorf("Estimate(1) = %d, want 3", got)
	}
	if got := f.Estimate(2); got != 2 {
		t.Errorf("Estimate(2) = %d, want 2", got)
	}
	if got := f.Estimate(9); got != 0 {
		t.Errorf("Estimate(9) = %d, want 0", got)
	}
	if f.Len() != 3 || f.N() != 6 || f.Capacity() != 10 {
		t.Errorf("Len/N/Capacity = %d/%d/%d", f.Len(), f.N(), f.Capacity())
	}
}

func TestDecrementDiscardsAndSkipsNewItem(t *testing.T) {
	// m = 2: after 1,1,2 the table is {1:2, 2:1}. Arrival of 3 decrements
	// both; 2 reaches zero and is discarded; 3 is NOT stored (Algorithm 1).
	f := New[uint64](2)
	core.Feed[uint64](f, []uint64{1, 1, 2, 3})
	if got := f.Estimate(1); got != 1 {
		t.Errorf("Estimate(1) = %d, want 1", got)
	}
	if got := f.Estimate(2); got != 0 {
		t.Errorf("Estimate(2) = %d, want 0", got)
	}
	if got := f.Estimate(3); got != 0 {
		t.Errorf("Estimate(3) = %d, want 0", got)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
	if f.Decrements() != 1 {
		t.Errorf("Decrements = %d, want 1", f.Decrements())
	}
}

func TestPanicsOnBadM(t *testing.T) {
	for name, fn := range map[string]func(){
		"New(0)":      func() { New[int](0) },
		"NewNaive(0)": func() { NewNaive[int](0) },
		"NewR(0)":     func() { NewR[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReset(t *testing.T) {
	f := New[uint64](3)
	core.Feed[uint64](f, []uint64{1, 2, 3, 4, 5})
	f.Reset()
	if f.Len() != 0 || f.N() != 0 || f.Decrements() != 0 {
		t.Error("Reset did not clear state")
	}
	f.Update(9)
	if f.Estimate(9) != 1 {
		t.Error("algorithm unusable after Reset")
	}
}

func TestEntriesSortedDesc(t *testing.T) {
	f := New[uint64](10)
	core.Feed[uint64](f, []uint64{5, 5, 5, 6, 6, 7})
	es := f.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries len = %d, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Count > es[i-1].Count {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
	if es[0].Item != 5 || es[0].Count != 3 {
		t.Errorf("top entry = %+v, want item 5 count 3", es[0])
	}
}

// equalStates compares the visible counter maps of two implementations.
func equalStates(t *testing.T, a, b core.Algorithm[uint64]) bool {
	t.Helper()
	sa, sb := core.StateOf(a), core.StateOf(b)
	if len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		if sb[k] != v {
			return false
		}
	}
	return true
}

func TestDifferentialAgainstNaive(t *testing.T) {
	// The bucket-list implementation must be state-identical to the
	// literal pseudocode on every stream (FREQUENT is deterministic).
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		fast := New[uint64](m)
		naive := NewNaive[uint64](m)
		for _, x := range raw {
			item := uint64(x) % 16
			fast.Update(item)
			naive.Update(item)
		}
		return equalStates(t, fast, naive) && fast.Decrements() == naive.Decrements()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialOnZipfStream(t *testing.T) {
	s := stream.Zipf(200, 1.1, 20000, stream.OrderRandom, 42)
	for _, m := range []int{1, 2, 7, 31, 64} {
		fast := New[uint64](m)
		naive := NewNaive[uint64](m)
		for _, x := range s {
			fast.Update(x)
			naive.Update(x)
		}
		if !equalStates(t, fast, naive) {
			t.Errorf("m=%d: states diverged from naive implementation", m)
		}
	}
}

func TestUnderestimateProperty(t *testing.T) {
	// FREQUENT never overestimates: c_i ≤ f_i for every item.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%10 + 1
		f := New[uint64](m)
		truth := exact.New()
		for _, x := range raw {
			item := uint64(x) % 32
			f.Update(item)
			truth.Update(item)
		}
		for i := uint64(0); i < 32; i++ {
			if float64(f.Estimate(i)) > truth.Freq(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounterSumInvariant(t *testing.T) {
	// Appendix B: ‖c‖1 = ‖f‖1 − d(m+1) holds at all times.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%6 + 1
		f := New[uint64](m)
		for _, x := range raw {
			f.Update(uint64(x) % 16)
		}
		var sum uint64
		for _, e := range f.Entries() {
			sum += e.Count
		}
		return sum == f.N()-f.Decrements()*uint64(m+1)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecrementBoundAppendixB(t *testing.T) {
	// d ≤ F1^res(k) / (m + 1 − k) for every k < m.
	s := stream.Zipf(500, 1.1, 50000, stream.OrderRandom, 7)
	truth := exact.FromStream(s)
	for _, m := range []int{10, 50, 100} {
		f := New[uint64](m)
		for _, x := range s {
			f.Update(x)
		}
		for _, k := range []int{0, 1, m / 2, m - 1} {
			bound := truth.Res1(k) / float64(m+1-k)
			if float64(f.Decrements()) > bound {
				t.Errorf("m=%d k=%d: d=%d exceeds bound %v", m, k, f.Decrements(), bound)
			}
		}
	}
}

func TestTailGuaranteeAllOrders(t *testing.T) {
	// The Appendix B k-tail guarantee with A=B=1 must hold in every
	// arrival order: max_i |f_i − c_i| ≤ F1^res(k)/(m−k).
	const n, total, m = 300, 30000, 40
	for _, order := range stream.Orders() {
		s := stream.Zipf(n, 1.2, total, order, 3)
		truth := exact.FromStream(s)
		f := New[uint64](m)
		for _, x := range s {
			f.Update(x)
		}
		freq := truth.Dense(n)
		maxErr := core.MaxError(f, freq)
		for _, k := range []int{1, 5, 10, 20, m - 1} {
			bound := f.Guarantee().Bound(m, k, truth.Res1(k))
			if maxErr > bound {
				t.Errorf("order=%v k=%d: error %v exceeds bound %v", order, k, maxErr, bound)
			}
		}
	}
}

func TestSingleCounter(t *testing.T) {
	// m=1 is the majority algorithm (Boyer-Moore flavour).
	f := New[uint64](1)
	core.Feed[uint64](f, []uint64{7, 7, 7, 8, 9, 7})
	// 7,7,7 -> {7:3}; 8 decrements -> {7:2}; 9 decrements -> {7:1}; 7 -> {7:2}.
	if got := f.Estimate(7); got != 2 {
		t.Errorf("Estimate(7) = %d, want 2", got)
	}
}

func TestAllDistinctStream(t *testing.T) {
	f := New[uint64](4)
	for i := uint64(0); i < 100; i++ {
		f.Update(i)
	}
	if f.Len() > 4 {
		t.Errorf("Len = %d exceeds capacity", f.Len())
	}
	var sum uint64
	for _, e := range f.Entries() {
		sum += e.Count
	}
	if sum > 100 {
		t.Errorf("counter sum %d exceeds stream length", sum)
	}
}

func TestGuaranteeConstants(t *testing.T) {
	g := New[uint64](5).Guarantee()
	if g.A != 1 || g.B != 1 {
		t.Errorf("Guarantee = %+v, want A=B=1", g)
	}
}

func TestKSparseRecoveryErrorShrinksWithM(t *testing.T) {
	// Sanity: more counters means (weakly) less error on the same stream.
	s := stream.Zipf(400, 1.1, 40000, stream.OrderRandom, 11)
	truth := exact.FromStream(s)
	freq := truth.Dense(400)
	prev := -1.0
	for _, m := range []int{5, 20, 80, 320} {
		f := New[uint64](m)
		for _, x := range s {
			f.Update(x)
		}
		est := make(vector.Dense, 400)
		for i := range est {
			est[i] = float64(f.Estimate(uint64(i)))
		}
		errNow := freq.LpErr(est, 1)
		if prev >= 0 && errNow > prev*1.05 {
			t.Errorf("m=%d: L1 error %v worse than smaller budget's %v", m, errNow, prev)
		}
		prev = errNow
	}
}
