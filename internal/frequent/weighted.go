package frequent

import (
	"math"

	"repro/internal/core"
)

// FrequentR is the real-valued update extension of Section 6.1. Each
// arrival (a_i, b_i) carries a positive real weight b_i:
//
//   - if a_i is stored, its counter grows by b_i;
//   - else if a counter is free, a_i claims it with value b_i;
//   - else, with c_min the smallest stored counter: if b_i < c_min every
//     counter shrinks by b_i; otherwise every counter shrinks by c_min,
//     zeros are discarded, and a_i is stored with b_i − c_min.
//
// Theorem 10 gives FREQUENTR the k-tail guarantee with A = B = 1.
//
// The uniform subtraction is implemented with a global offset (stored
// value = counter + offset), and the minimum is tracked with a lazy
// min-heap, so updates cost O(log m) amortised instead of O(m).
//
// Counters are float64; after an "all shrink by c_min" step, items whose
// counters are mathematically equal to c_min but were accumulated through
// different additions may retain a sub-ULP positive residue rather than
// being discarded. This affects estimates by at most a few ULPs.
type FrequentR[K comparable] struct {
	m     int
	off   float64 // cumulative uniform subtraction
	vals  map[K]float64
	heap  []heapEntry[K]
	total float64
	// clone, when set, copies a key at the moment it is retained
	// (SetKeyClone) so callers may pass keys aliasing reused memory.
	clone func(K) K
}

// SetKeyClone installs fn as the borrowed-key clone hook so callers may
// hand updates keys whose backing memory is reused after the call.
// Unlike the slab structures, FREQUENTR's lazy min-heap records a fresh
// entry (retaining the key) on every update including hits, so every
// arrival is cloned — the hook's dedup cache is what keeps that
// affordable. Must be called before the first update.
func (f *FrequentR[K]) SetKeyClone(fn func(K) K) { f.clone = fn }

type heapEntry[K comparable] struct {
	val  float64
	item K
}

// NewR returns a FREQUENTR instance with m counters. It panics if m < 1.
func NewR[K comparable](m int) *FrequentR[K] {
	if m < 1 {
		panic("frequent: m must be >= 1")
	}
	return &FrequentR[K]{m: m, vals: make(map[K]float64, m)}
}

// UpdateWeighted processes b occurrences' worth of item. It panics on
// non-positive or non-finite b, matching the paper's stream model.
//
//hh:noalloc
func (f *FrequentR[K]) UpdateWeighted(item K, b float64) {
	if math.IsNaN(b) || math.IsInf(b, 0) {
		// A non-finite weight would silently poison the running total
		// and every bound derived from it.
		panic("frequent: non-finite weight")
	}
	if b <= 0 {
		panic("frequent: non-positive weight")
	}
	if f.clone != nil {
		item = f.clone(item) //hh:allocok borrowed-key updates copy the key by contract
	}
	f.total += b
	if v, ok := f.vals[item]; ok {
		f.vals[item] = v + b
		f.push(heapEntry[K]{val: v + b, item: item})
		return
	}
	if len(f.vals) < f.m {
		f.vals[item] = f.off + b
		f.push(heapEntry[K]{val: f.off + b, item: item})
		return
	}
	minVal := f.cleanTop()
	cmin := minVal - f.off
	if b < cmin {
		f.off += b
		return
	}
	// Subtract cmin from everyone (offset jumps exactly to minVal, so the
	// minimum item's value compares equal and is discarded), then store
	// the remainder if any.
	f.off = minVal
	f.removeZeros()
	if rem := b - cmin; rem > 0 {
		f.vals[item] = f.off + rem
		f.push(heapEntry[K]{val: f.off + rem, item: item})
	}
}

// Update processes a unit-weight occurrence.
//
//hh:noalloc
func (f *FrequentR[K]) Update(item K) { f.UpdateWeighted(item, 1) }

// EstimateWeighted returns the stored counter for item, zero if absent.
// FREQUENTR underestimates true total weights.
//
//hh:noalloc
func (f *FrequentR[K]) EstimateWeighted(item K) float64 {
	v, ok := f.vals[item]
	if !ok {
		return 0
	}
	if c := v - f.off; c > 0 {
		return c
	}
	return 0
}

// AppendWeightedEntries appends the stored counters in decreasing count
// order to dst, keeping at most max entries when max >= 0, and returns
// the extended slice. The counters live in a hash map, so all of them
// are materialized and sorted before truncation; with a reused buffer of
// sufficient capacity the call still allocates nothing.
//
//hh:noalloc
func (f *FrequentR[K]) AppendWeightedEntries(dst []core.WeightedEntry[K], max int) []core.WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	for k, v := range f.vals {
		c := v - f.off
		if c <= 0 {
			continue
		}
		dst = append(dst, core.WeightedEntry[K]{Item: k, Count: c})
	}
	core.SortWeightedEntries(dst[start:])
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

// WeightedEntries returns the stored counters sorted by decreasing count.
func (f *FrequentR[K]) WeightedEntries() []core.WeightedEntry[K] {
	return f.AppendWeightedEntries(make([]core.WeightedEntry[K], 0, len(f.vals)), -1)
}

// Capacity returns m.
func (f *FrequentR[K]) Capacity() int { return f.m }

// Len returns the number of stored counters.
func (f *FrequentR[K]) Len() int { return len(f.vals) }

// TotalWeight returns Σ b_i processed so far.
//
//hh:noalloc
func (f *FrequentR[K]) TotalWeight() float64 { return f.total }

// StoredWeight returns the sum of the stored counter values — the mass
// the structure can still account for. TotalWeight minus StoredWeight
// is the uniform-subtraction deficit every estimate may undercount by.
//
//hh:noalloc
func (f *FrequentR[K]) StoredWeight() float64 {
	var s float64
	for _, v := range f.vals {
		if c := v - f.off; c > 0 {
			s += c
		}
	}
	return s
}

// Reset restores the empty state, retaining the map and heap storage so
// a reset structure keeps updating allocation-free (the window layer's
// epoch rotation relies on this).
//
//hh:noalloc
func (f *FrequentR[K]) Reset() {
	f.off, f.total = 0, 0
	clear(f.vals)
	// Zero the parked heap entries so they do not pin evicted keys.
	clear(f.heap)
	f.heap = f.heap[:0]
}

// Scale multiplies every stored counter, the offset and the running
// total by s > 0 — the renormalization primitive of the exponential-
// decay layer. Stored values are counter + offset, so scaling values
// and offset together scales every counter; heap entries mirror the
// stored values and scale with them, preserving both the heap order and
// the staleness comparisons (cur == top.val stays an exact equality
// because both sides are scaled by the same factor).
//
//hh:noalloc
func (f *FrequentR[K]) Scale(s float64) {
	f.off *= s
	f.total *= s
	for k, v := range f.vals {
		f.vals[k] = v * s
	}
	for i := range f.heap {
		f.heap[i].val *= s
	}
}

// Guarantee returns the Theorem 10 tail constants A = B = 1.
func (f *FrequentR[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

// --- lazy min-heap plumbing ---

// push adds an entry, compacting first if stale entries dominate.
//
//hh:noalloc
func (f *FrequentR[K]) push(e heapEntry[K]) {
	if len(f.heap) > 4*f.m+16 {
		f.compact()
	}
	f.heap = append(f.heap, e)
	f.siftUp(len(f.heap) - 1)
}

// cleanTop pops stale and zero entries until the top reflects a live
// counter, and returns its stored value. The caller guarantees the map is
// non-empty.
//
//hh:noalloc
func (f *FrequentR[K]) cleanTop() float64 {
	for {
		top := f.heap[0]
		cur, ok := f.vals[top.item]
		if ok && cur == top.val {
			return top.val
		}
		f.pop()
	}
}

// removeZeros discards items whose stored value no longer exceeds the
// offset (counter ≤ 0).
//
//hh:noalloc
func (f *FrequentR[K]) removeZeros() {
	for len(f.heap) > 0 {
		top := f.heap[0]
		cur, ok := f.vals[top.item]
		if !ok || cur != top.val {
			f.pop() // stale
			continue
		}
		if top.val <= f.off {
			delete(f.vals, top.item)
			f.pop()
			continue
		}
		return
	}
}

//hh:noalloc
func (f *FrequentR[K]) compact() {
	f.heap = f.heap[:0]
	for k, v := range f.vals {
		f.heap = append(f.heap, heapEntry[K]{val: v, item: k})
	}
	for i := len(f.heap)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
}

//hh:noalloc
func (f *FrequentR[K]) pop() {
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	if last > 0 {
		f.siftDown(0)
	}
}

//hh:noalloc
func (f *FrequentR[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if f.heap[parent].val <= f.heap[i].val {
			return
		}
		f.heap[parent], f.heap[i] = f.heap[i], f.heap[parent]
		i = parent
	}
}

//hh:noalloc
func (f *FrequentR[K]) siftDown(i int) {
	n := len(f.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && f.heap[l].val < f.heap[small].val {
			small = l
		}
		if r < n && f.heap[r].val < f.heap[small].val {
			small = r
		}
		if small == i {
			return
		}
		f.heap[i], f.heap[small] = f.heap[small], f.heap[i]
		i = small
	}
}
