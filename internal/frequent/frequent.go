// Package frequent implements the FREQUENT algorithm of Misra and Gries
// (Algorithm 1 in the paper): maintain at most m counters; an arrival of a
// stored item increments its counter, an arrival of a new item either
// claims a free counter or decrements every stored counter, discarding
// zeros.
//
// FREQUENT underestimates: c_i ≤ f_i, and Appendix B proves the k-tail
// guarantee with constants A = B = 1: f_i − c_i ≤ F1^res(k) / (m + 1 − k).
//
// Two implementations are provided. Frequent uses a value-grouped bucket
// list with a global decrement offset, making every update O(1) amortised
// (the decrement-all touches only the group that reaches zero). Naive is
// the literal O(m)-per-decrement transcription of the pseudocode, kept as
// a differential-testing oracle.
package frequent

import (
	"repro/internal/core"
)

// group collects all stored items sharing one stored value sv. True count
// of a member is sv − base. Groups form a doubly linked list in strictly
// increasing sv order.
type group[K comparable] struct {
	sv         uint64
	prev, next *group[K]
	head, tail *node[K]
	size       int
}

type node[K comparable] struct {
	item       K
	grp        *group[K]
	prev, next *node[K]
}

// Frequent is the O(1)-amortised FREQUENT implementation. The zero value
// is not usable; construct with New.
type Frequent[K comparable] struct {
	m     int
	base  uint64 // number of decrement-all operations so far
	items map[K]*node[K]
	// head/tail of the group list, ascending by sv.
	head, tail *group[K]
	n          uint64
	decrements uint64 // d in the Appendix B analysis
}

// New returns a FREQUENT instance with m counters. It panics if m < 1.
func New[K comparable](m int) *Frequent[K] {
	if m < 1 {
		panic("frequent: m must be >= 1")
	}
	return &Frequent[K]{m: m, items: make(map[K]*node[K], m)}
}

// Update processes one occurrence of item.
func (f *Frequent[K]) Update(item K) {
	f.n++
	if nd, ok := f.items[item]; ok {
		f.increment(nd)
		return
	}
	if len(f.items) < f.m {
		f.insert(item)
		return
	}
	f.decrementAll()
}

// AddN processes n occurrences of item at once, with the semantics of
// FREQUENTR restricted to integer weights (Section 6.1): a stored item
// gains n; a newcomer on a full table triggers one weighted decrement by
// δ = min(n, c_min) — all counters drop by δ, zeroed counters are
// evicted, and the newcomer enters with the remaining n − δ. Feeding n
// unit updates one at a time reaches the identical state; AddN reaches
// it in O(groups crossed) instead of O(n).
func (f *Frequent[K]) AddN(item K, n uint64) {
	if n == 0 {
		return
	}
	f.n += n
	if nd, ok := f.items[item]; ok {
		f.incrementN(nd, n)
		return
	}
	if len(f.items) < f.m {
		f.insertN(item, n)
		return
	}
	minCount := f.head.sv - f.base
	if n < minCount {
		// The newcomer is the minimum: it zeroes out before any stored
		// counter does, so only the global decrement remains.
		f.base += n
		f.decrements += n
		return
	}
	// δ = c_min: the minimum group zeroes out and the newcomer keeps
	// the rest.
	f.base += minCount
	f.decrements += minCount
	g := f.head // sv == f.base now
	for nd := g.head; nd != nil; nd = nd.next {
		delete(f.items, nd.item)
	}
	f.removeGroup(g)
	if rem := n - minCount; rem > 0 {
		f.insertN(item, rem)
	}
}

// incrementN moves nd from its group to the group with sv+n, scanning
// forward from its current position.
func (f *Frequent[K]) incrementN(nd *node[K], n uint64) {
	newSv := nd.grp.sv + n
	start := nd.grp.next
	f.unlinkNode(nd) // may remove nd's old group; start stays valid
	t := start
	for t != nil && t.sv < newSv {
		t = t.next
	}
	switch {
	case t != nil && t.sv == newSv:
		f.appendNode(t, nd)
	case t != nil:
		f.appendNode(f.insertGroupBefore(t, newSv), nd)
	case f.tail != nil:
		f.appendNode(f.insertGroupAfter(f.tail, newSv), nd)
	default:
		f.appendNode(f.insertGroupBefore(nil, newSv), nd)
	}
}

// insertN stores a brand-new item with count n (stored value base+n),
// scanning from the head.
func (f *Frequent[K]) insertN(item K, n uint64) {
	nd := &node[K]{item: item}
	f.items[item] = nd
	sv := f.base + n
	t := f.head
	for t != nil && t.sv < sv {
		t = t.next
	}
	switch {
	case t != nil && t.sv == sv:
		f.appendNode(t, nd)
	case t != nil:
		f.appendNode(f.insertGroupBefore(t, sv), nd)
	case f.tail != nil:
		f.appendNode(f.insertGroupAfter(f.tail, sv), nd)
	default:
		f.appendNode(f.insertGroupBefore(nil, sv), nd)
	}
}

// increment moves nd from its group to the group with sv+1.
func (f *Frequent[K]) increment(nd *node[K]) {
	g := nd.grp
	target := g.next
	if target == nil || target.sv != g.sv+1 {
		target = f.insertGroupAfter(g, g.sv+1)
	}
	f.unlinkNode(nd)
	f.appendNode(target, nd)
}

// insert stores a brand-new item with count 1 (stored value base+1).
func (f *Frequent[K]) insert(item K) {
	nd := &node[K]{item: item}
	f.items[item] = nd
	target := f.head
	if target == nil || target.sv != f.base+1 {
		target = f.insertGroupBefore(f.head, f.base+1)
	}
	f.appendNode(target, nd)
}

// decrementAll implements "forall j ∈ T: c_j ← c_j − 1" in O(1) amortised
// time: the global base advances, and only the group whose count reaches
// zero is dismantled.
func (f *Frequent[K]) decrementAll() {
	f.base++
	f.decrements++
	if f.head != nil && f.head.sv == f.base {
		g := f.head
		for nd := g.head; nd != nil; nd = nd.next {
			delete(f.items, nd.item)
		}
		f.removeGroup(g)
	}
}

// Estimate returns the stored count of item, zero if absent. FREQUENT's
// estimates never exceed the true frequency.
func (f *Frequent[K]) Estimate(item K) uint64 {
	nd, ok := f.items[item]
	if !ok {
		return 0
	}
	return nd.grp.sv - f.base
}

// Entries returns the stored counters sorted by decreasing count.
func (f *Frequent[K]) Entries() []core.Entry[K] {
	out := make([]core.Entry[K], 0, len(f.items))
	for g := f.tail; g != nil; g = g.prev {
		for nd := g.head; nd != nil; nd = nd.next {
			out = append(out, core.Entry[K]{Item: nd.item, Count: g.sv - f.base})
		}
	}
	return out
}

// Capacity returns m.
func (f *Frequent[K]) Capacity() int { return f.m }

// Len returns the number of stored counters.
func (f *Frequent[K]) Len() int { return len(f.items) }

// N returns the number of processed stream elements.
func (f *Frequent[K]) N() uint64 { return f.n }

// Decrements returns d, the number of decrement-all operations performed —
// the quantity bounded by F1^res(k)/(m+1−k) in Appendix B.
func (f *Frequent[K]) Decrements() uint64 { return f.decrements }

// Reset restores the empty state.
func (f *Frequent[K]) Reset() {
	f.base, f.n, f.decrements = 0, 0, 0
	f.items = make(map[K]*node[K], f.m)
	f.head, f.tail = nil, nil
}

// Guarantee returns the Appendix B tail constants A = B = 1.
func (f *Frequent[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

// --- group-list plumbing ---

func (f *Frequent[K]) insertGroupAfter(g *group[K], sv uint64) *group[K] {
	ng := &group[K]{sv: sv, prev: g, next: g.next}
	if g.next != nil {
		g.next.prev = ng
	} else {
		f.tail = ng
	}
	g.next = ng
	return ng
}

func (f *Frequent[K]) insertGroupBefore(g *group[K], sv uint64) *group[K] {
	ng := &group[K]{sv: sv, next: g}
	if g != nil {
		ng.prev = g.prev
		if g.prev != nil {
			g.prev.next = ng
		} else {
			f.head = ng
		}
		g.prev = ng
	} else {
		// Empty list.
		f.head, f.tail = ng, ng
	}
	return ng
}

func (f *Frequent[K]) removeGroup(g *group[K]) {
	if g.prev != nil {
		g.prev.next = g.next
	} else {
		f.head = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else {
		f.tail = g.prev
	}
}

func (f *Frequent[K]) appendNode(g *group[K], nd *node[K]) {
	nd.grp = g
	nd.prev, nd.next = g.tail, nil
	if g.tail != nil {
		g.tail.next = nd
	} else {
		g.head = nd
	}
	g.tail = nd
	g.size++
}

func (f *Frequent[K]) unlinkNode(nd *node[K]) {
	g := nd.grp
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		g.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		g.tail = nd.prev
	}
	g.size--
	if g.size == 0 {
		f.removeGroup(g)
	}
	nd.prev, nd.next, nd.grp = nil, nil, nil
}
