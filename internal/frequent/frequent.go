// Package frequent implements the FREQUENT algorithm of Misra and Gries
// (Algorithm 1 in the paper): maintain at most m counters; an arrival of a
// stored item increments its counter, an arrival of a new item either
// claims a free counter or decrements every stored counter, discarding
// zeros.
//
// FREQUENT underestimates: c_i ≤ f_i, and Appendix B proves the k-tail
// guarantee with constants A = B = 1: f_i − c_i ≤ F1^res(k) / (m + 1 − k).
//
// Two implementations are provided. Frequent uses a value-grouped bucket
// list with a global decrement offset, making every update O(1) amortised
// (the decrement-all touches only the group that reaches zero). Naive is
// the literal O(m)-per-decrement transcription of the pseudocode, kept as
// a differential-testing oracle.
package frequent

import (
	"math"

	"repro/internal/arena"
	"repro/internal/core"
)

// nilIdx is the null link of the slab-allocated bucket lists.
const nilIdx = int32(-1)

// group collects all stored items sharing one stored value sv. True count
// of a member is sv − base. Groups form a doubly linked list in strictly
// increasing sv order, threaded through slab indices rather than
// pointers so the whole structure lives in two contiguous arrays.
type group struct {
	sv         uint64
	prev, next int32
	head, tail int32
	size       int32
}

type node[K comparable] struct {
	item       K
	grp        int32
	prev, next int32
}

// Frequent is the O(1)-amortised FREQUENT implementation, slab-allocated:
// nodes and groups are indices into two fixed arrays (int32 links,
// free-listed through the next field), so the update hot path touches
// contiguous memory and performs zero heap allocations once constructed.
// The zero value is not usable; construct with New.
type Frequent[K comparable] struct {
	m    int
	base uint64 // number of decrement-all operations so far
	// items maps a stored key to its node index. The default is a map;
	// EnableArena swaps in the pointer-free open-addressing index for
	// string keys, after which every stored node.item aliases the
	// arena's slabs and exported entries pass through Materialize.
	items arena.Index[K]
	// fast aliases items as the concrete map while the default index is
	// in place, nil after EnableArena; the hot path branches on it so
	// map-backed ingest keeps direct (inlineable) map operations instead
	// of an interface call per Get/Put/Delete.
	fast arena.Map[K]
	// arenaOn records the swap so SetKeyClone stays a no-op (the arena
	// interns every retained key itself).
	arenaOn bool
	nodes   []node[K]
	// Groups can momentarily number one more than the live nodes while a
	// node is detached during a move, hence the m+1 slab.
	groups    []group
	freeNode  int32
	freeGroup int32
	// head/tail of the group list, ascending by sv.
	head, tail int32
	n          uint64
	decrements uint64 // d in the Appendix B analysis
	// clone, when set, copies a key at the moment it is retained
	// (SetKeyClone) so callers may pass keys aliasing reused memory.
	clone func(K) K
	// probe is the hit-hint scratch of AddNBatch (one node index per
	// batch key), reused across batches so steady-state batch ingest
	// allocates nothing.
	probe []int32
}

// SetKeyClone installs fn as the borrowed-key clone hook: every key the
// structure decides to store is first passed through fn, so callers may
// hand Update/AddN keys whose backing memory is reused after the call.
// Keys that hit an existing counter — or bounce off a full table as a
// decrement — are never cloned. Must be called before the first update.
// On an arena-backed structure (EnableArena) the hook is ignored: the
// arena copies every retained key into its slabs already.
func (f *Frequent[K]) SetKeyClone(fn func(K) K) {
	if f.arenaOn {
		return
	}
	f.clone = fn
}

// EnableArena swaps the key index for the arena-backed open-addressing
// index of internal/arena: stored keys live in byte slabs as
// (offset, len) references, so the steady-state heap holds no per-key
// objects. Valid only for string-kind K (returns false otherwise — the
// map path stays) and only before the first update. seed salts the
// index hash (the keyHasher FNV-1a family). Borrowed keys need no
// separate clone hook afterwards: insertion interns the key bytes
// straight into the slabs, one copy, no intermediate string.
func (f *Frequent[K]) EnableArena(seed uint64) bool {
	if f.n != 0 || f.items.Len() != 0 {
		panic("frequent: EnableArena after updates")
	}
	ix, ok := arena.NewForString[K](f.m, seed)
	if !ok {
		return false
	}
	f.items = ix
	f.fast = nil
	f.arenaOn = true
	f.clone = nil
	return true
}

// lookup, store, unstore, and size are the hot-path face of the key
// index: direct map operations while fast is non-nil (the default),
// one interface call otherwise (arena). Decrement-heavy streams pay
// these per item, so the default path must not fund the arena's
// abstraction. Update and AddN spell the lookup branch out inline
// instead of calling lookup: the comma-ok map access plus the
// interface fallback push the shape instantiation of a lookup helper
// over the inline budget, which costs ~15% on uniform streams.
//
//hh:noalloc
func (f *Frequent[K]) lookup(item K) (int32, bool) {
	if f.fast != nil {
		nd, ok := f.fast[item]
		return nd, ok
	}
	return f.items.Get(item)
}

// store retains item → nd and returns the retained key (a slab view on
// the arena path; item itself otherwise).
//
//hh:noalloc
func (f *Frequent[K]) store(item K, nd int32) K {
	if f.fast != nil {
		f.fast[item] = nd
		return item
	}
	return f.items.Put(item, nd)
}

//hh:noalloc
func (f *Frequent[K]) unstore(item K) {
	if f.fast != nil {
		delete(f.fast, item)
		return
	}
	f.items.Delete(item)
}

//hh:noalloc
func (f *Frequent[K]) size() int {
	if f.fast != nil {
		return len(f.fast)
	}
	return f.items.Len()
}

// MemoryFootprint reports the arena + index footprint; ok is false on
// the map path, whose footprint the runtime owns.
func (f *Frequent[K]) MemoryFootprint() (arena.MemStats, bool) { return f.items.Mem() }

// New returns a FREQUENT instance with m counters. It panics if m < 1.
func New[K comparable](m int) *Frequent[K] {
	if m < 1 {
		panic("frequent: m must be >= 1")
	}
	if m > math.MaxInt32-1 {
		// The slab links are int32 indices (m nodes, m+1 groups); a larger
		// m would wrap them. Fail loudly instead of corrupting.
		panic("frequent: m exceeds the int32 slab index range")
	}
	mp := arena.NewMap[K](m)
	f := &Frequent[K]{
		m:      m,
		items:  mp,
		fast:   mp,
		nodes:  make([]node[K], m),
		groups: make([]group, m+1),
	}
	f.initFreeLists()
	return f
}

//hh:noalloc
func (f *Frequent[K]) initFreeLists() {
	for i := range f.nodes {
		f.nodes[i].next = int32(i) + 1
	}
	f.nodes[len(f.nodes)-1].next = nilIdx
	for i := range f.groups {
		f.groups[i].next = int32(i) + 1
	}
	f.groups[len(f.groups)-1].next = nilIdx
	f.freeNode, f.freeGroup = 0, 0
	f.head, f.tail = nilIdx, nilIdx
}

//hh:noalloc
func (f *Frequent[K]) allocNode(item K) int32 {
	i := f.freeNode
	f.freeNode = f.nodes[i].next
	f.nodes[i] = node[K]{item: item, grp: nilIdx, prev: nilIdx, next: nilIdx}
	return i
}

//hh:noalloc
func (f *Frequent[K]) freeNodeIdx(i int32) {
	var zero K
	f.nodes[i].item = zero // drop any reference held by the slab slot
	// grp = nilIdx marks the node dead: AddNBatch validates its probe
	// hints against it, so a hint to a freed-but-unreused node (whose
	// zeroed item could equal a legitimate zero-value key — dismantled
	// groups free many nodes without reusing them) is rejected.
	f.nodes[i].grp = nilIdx
	f.nodes[i].next = f.freeNode
	f.freeNode = i
}

//hh:noalloc
func (f *Frequent[K]) allocGroup(sv uint64) int32 {
	i := f.freeGroup
	f.freeGroup = f.groups[i].next
	f.groups[i] = group{sv: sv, prev: nilIdx, next: nilIdx, head: nilIdx, tail: nilIdx}
	return i
}

//hh:noalloc
func (f *Frequent[K]) freeGroupIdx(i int32) {
	f.groups[i].size = 0
	f.groups[i].next = f.freeGroup
	f.freeGroup = i
}

// Update processes one occurrence of item.
//
//hh:noalloc
func (f *Frequent[K]) Update(item K) {
	f.n++
	var nd int32
	var ok bool
	if f.fast != nil {
		nd, ok = f.fast[item]
	} else {
		nd, ok = f.items.Get(item)
	}
	if ok {
		f.increment(nd)
		return
	}
	if f.size() < f.m {
		f.insert(item)
		return
	}
	f.decrementAll()
}

// AddN processes n occurrences of item at once, with the semantics of
// FREQUENTR restricted to integer weights (Section 6.1): a stored item
// gains n; a newcomer on a full table triggers one weighted decrement by
// δ = min(n, c_min) — all counters drop by δ, zeroed counters are
// evicted, and the newcomer enters with the remaining n − δ. Feeding n
// unit updates one at a time reaches the identical state; AddN reaches
// it in O(groups crossed) instead of O(n).
//
//hh:noalloc
func (f *Frequent[K]) AddN(item K, n uint64) {
	if n == 0 {
		return
	}
	f.n += n
	var nd int32
	var ok bool
	if f.fast != nil {
		nd, ok = f.fast[item]
	} else {
		nd, ok = f.items.Get(item)
	}
	if ok {
		f.incrementN(nd, n)
		return
	}
	if f.size() < f.m {
		f.insertN(item, n)
		return
	}
	minCount := f.groups[f.head].sv - f.base
	if n < minCount {
		// The newcomer is the minimum: it zeroes out before any stored
		// counter does, so only the global decrement remains.
		f.base += n
		f.decrements += n
		return
	}
	// δ = c_min: the minimum group zeroes out and the newcomer keeps
	// the rest.
	f.base += minCount
	f.decrements += minCount
	f.dismantleGroup(f.head) // sv == f.base now
	if rem := n - minCount; rem > 0 {
		f.insertN(item, rem)
	}
}

// AddNBatch processes a coalesced batch: counts[i] occurrences of
// items[i], equivalent to calling AddN(items[i], counts[i]) in order.
// Batch keys must be pairwise distinct; a nil counts means every key
// occurs once. hashes, when non-nil on an arena-backed structure, must
// carry each key's keyHasher hash with the structure's seed (the
// partition hash). On the arena index the kernel is two-pass,
// mirroring spacesaving.AddNBatch: an index probe pass records hit
// hints, an apply pass validates each hint against the live node (a
// decrement in the same batch can dismantle the whole minimum group,
// freeing many nodes) and falls to the miss path on any staleness —
// sound because batch keys are distinct, so an evicted batch key stays
// absent. The map-backed fast path stays single-pass.
//
//hh:noalloc
func (f *Frequent[K]) AddNBatch(items []K, counts []uint32, hashes []uint64) {
	// Map-backed fast path: single-pass — a Go map probe gains nothing
	// from the hint scratch (see the spacesaving kernel's note).
	if f.fast != nil {
		for i, it := range items {
			n := uint64(1)
			if counts != nil {
				n = uint64(counts[i])
			}
			if n == 0 {
				continue
			}
			if nd, ok := f.fast[it]; ok {
				f.n += n
				f.incrementN(nd, n)
				continue
			}
			f.addNMiss(it, n)
		}
		return
	}
	f.probe = f.probe[:0]
	if hashes != nil {
		for i, it := range items {
			nd, ok := f.items.GetHashed(it, hashes[i])
			if !ok {
				nd = nilIdx
			}
			f.probe = append(f.probe, nd)
		}
	} else {
		for _, it := range items {
			nd, ok := f.items.Get(it)
			if !ok {
				nd = nilIdx
			}
			f.probe = append(f.probe, nd)
		}
	}
	for i, it := range items {
		n := uint64(1)
		if counts != nil {
			n = uint64(counts[i])
		}
		if n == 0 {
			continue
		}
		if nd := f.probe[i]; nd != nilIdx && f.nodes[nd].grp != nilIdx && f.nodes[nd].item == it {
			f.n += n
			f.incrementN(nd, n)
			continue
		}
		f.addNMiss(it, n)
	}
}

// addNMiss is AddN's insert/decrement tail for a key known to be
// absent — the batch kernel's miss path, which needs no index probe.
//
//hh:noalloc
func (f *Frequent[K]) addNMiss(item K, n uint64) {
	f.n += n
	if f.size() < f.m {
		f.insertN(item, n)
		return
	}
	minCount := f.groups[f.head].sv - f.base
	if n < minCount {
		f.base += n
		f.decrements += n
		return
	}
	f.base += minCount
	f.decrements += minCount
	f.dismantleGroup(f.head) // sv == f.base now
	if rem := n - minCount; rem > 0 {
		f.insertN(item, rem)
	}
}

// incrementN moves nd from its group to the group with sv+n, scanning
// forward from its current position.
//
//hh:noalloc
func (f *Frequent[K]) incrementN(nd int32, n uint64) {
	newSv := f.groups[f.nodes[nd].grp].sv + n
	start := f.groups[f.nodes[nd].grp].next
	f.unlinkNode(nd) // may remove nd's old group; start stays valid
	t := start
	for t != nilIdx && f.groups[t].sv < newSv {
		t = f.groups[t].next
	}
	if t != nilIdx && f.groups[t].sv == newSv {
		f.appendNode(t, nd)
		return
	}
	f.appendNode(f.insertGroupBefore(t, newSv), nd)
}

// insertN stores a brand-new item with count n (stored value base+n),
// scanning from the head.
//
//hh:noalloc
func (f *Frequent[K]) insertN(item K, n uint64) {
	if f.clone != nil {
		item = f.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	nd := f.allocNode(item)
	f.nodes[nd].item = f.store(item, nd)
	sv := f.base + n
	t := f.head
	for t != nilIdx && f.groups[t].sv < sv {
		t = f.groups[t].next
	}
	if t != nilIdx && f.groups[t].sv == sv {
		f.appendNode(t, nd)
		return
	}
	f.appendNode(f.insertGroupBefore(t, sv), nd)
}

// increment moves nd from its group to the group with sv+1.
//
//hh:noalloc
func (f *Frequent[K]) increment(nd int32) {
	g := f.nodes[nd].grp
	newSv := f.groups[g].sv + 1
	target := f.groups[g].next
	f.unlinkNode(nd) // may remove g
	if target != nilIdx && f.groups[target].sv == newSv {
		f.appendNode(target, nd)
		return
	}
	// Either g survived (insert right after it) or g was removed (insert
	// before target, i.e. at g's old position).
	if f.groups[g].size > 0 {
		f.appendNode(f.insertGroupAfter(g, newSv), nd)
	} else {
		f.appendNode(f.insertGroupBefore(target, newSv), nd)
	}
}

// insert stores a brand-new item with count 1 (stored value base+1).
//
//hh:noalloc
func (f *Frequent[K]) insert(item K) {
	if f.clone != nil {
		item = f.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	nd := f.allocNode(item)
	f.nodes[nd].item = f.store(item, nd)
	target := f.head
	if target == nilIdx || f.groups[target].sv != f.base+1 {
		target = f.insertGroupBefore(f.head, f.base+1)
	}
	f.appendNode(target, nd)
}

// decrementAll implements "forall j ∈ T: c_j ← c_j − 1" in O(1) amortised
// time: the global base advances, and only the group whose count reaches
// zero is dismantled.
//
//hh:noalloc
func (f *Frequent[K]) decrementAll() {
	f.base++
	f.decrements++
	if f.head != nilIdx && f.groups[f.head].sv == f.base {
		f.dismantleGroup(f.head)
	}
}

// dismantleGroup evicts every member of group g and removes it.
//
//hh:noalloc
func (f *Frequent[K]) dismantleGroup(g int32) {
	for nd := f.groups[g].head; nd != nilIdx; {
		next := f.nodes[nd].next
		f.unstore(f.nodes[nd].item)
		f.freeNodeIdx(nd)
		nd = next
	}
	f.removeGroup(g)
}

// Estimate returns the stored count of item, zero if absent. FREQUENT's
// estimates never exceed the true frequency.
//
//hh:noalloc
func (f *Frequent[K]) Estimate(item K) uint64 {
	nd, ok := f.lookup(item)
	if !ok {
		return 0
	}
	return f.groups[f.nodes[nd].grp].sv - f.base
}

// Each calls yield for every stored counter in decreasing count order
// (ties in FIFO bucket order), stopping early if yield returns false. It
// performs no allocations; the structure must not be mutated during the
// iteration.
//
//hh:noalloc
func (f *Frequent[K]) Each(yield func(core.Entry[K]) bool) {
	for g := f.tail; g != nilIdx; g = f.groups[g].prev {
		count := f.groups[g].sv - f.base
		for nd := f.groups[g].head; nd != nilIdx; nd = f.nodes[nd].next {
			if !yield(core.Entry[K]{Item: f.items.Materialize(f.nodes[nd].item), Count: count}) {
				return
			}
		}
	}
}

// AppendEntries appends the stored counters in decreasing count order to
// dst, stopping after max entries when max >= 0, and returns the extended
// slice. With a reused buffer of sufficient capacity it allocates
// nothing.
//
//hh:noalloc
func (f *Frequent[K]) AppendEntries(dst []core.Entry[K], max int) []core.Entry[K] {
	if max == 0 {
		return dst
	}
	taken := 0
	for g := f.tail; g != nilIdx; g = f.groups[g].prev {
		count := f.groups[g].sv - f.base
		for nd := f.groups[g].head; nd != nilIdx; nd = f.nodes[nd].next {
			dst = append(dst, core.Entry[K]{Item: f.items.Materialize(f.nodes[nd].item), Count: count})
			taken++
			if max > 0 && taken >= max {
				return dst
			}
		}
	}
	return dst
}

// Entries returns the stored counters sorted by decreasing count.
func (f *Frequent[K]) Entries() []core.Entry[K] {
	return f.AppendEntries(make([]core.Entry[K], 0, f.items.Len()), -1)
}

// Capacity returns m.
func (f *Frequent[K]) Capacity() int { return f.m }

// Len returns the number of stored counters.
func (f *Frequent[K]) Len() int { return f.items.Len() }

// N returns the number of processed stream elements.
func (f *Frequent[K]) N() uint64 { return f.n }

// Decrements returns d, the number of decrement-all operations performed —
// the quantity bounded by F1^res(k)/(m+1−k) in Appendix B.
//
//hh:noalloc
func (f *Frequent[K]) Decrements() uint64 { return f.decrements }

// Reset restores the empty state, retaining the slabs and map storage so
// a reset structure keeps updating allocation-free.
//
//hh:noalloc
func (f *Frequent[K]) Reset() {
	f.base, f.n, f.decrements = 0, 0, 0
	f.items.Reset()
	var zero K
	for i := range f.nodes {
		f.nodes[i].item = zero
	}
	f.initFreeLists()
}

// Guarantee returns the Appendix B tail constants A = B = 1.
func (f *Frequent[K]) Guarantee() core.TailGuarantee { return core.TailGuarantee{A: 1, B: 1} }

// --- group-list plumbing ---

//hh:noalloc
func (f *Frequent[K]) insertGroupAfter(g int32, sv uint64) int32 {
	ng := f.allocGroup(sv)
	next := f.groups[g].next
	f.groups[ng].prev, f.groups[ng].next = g, next
	if next != nilIdx {
		f.groups[next].prev = ng
	} else {
		f.tail = ng
	}
	f.groups[g].next = ng
	return ng
}

// insertGroupBefore inserts a new group before g; a nil g appends at the
// tail (covers the empty-list case too).
//
//hh:noalloc
func (f *Frequent[K]) insertGroupBefore(g int32, sv uint64) int32 {
	ng := f.allocGroup(sv)
	if g == nilIdx {
		f.groups[ng].prev = f.tail
		if f.tail != nilIdx {
			f.groups[f.tail].next = ng
		} else {
			f.head = ng
		}
		f.tail = ng
		return ng
	}
	prev := f.groups[g].prev
	f.groups[ng].prev, f.groups[ng].next = prev, g
	if prev != nilIdx {
		f.groups[prev].next = ng
	} else {
		f.head = ng
	}
	f.groups[g].prev = ng
	return ng
}

//hh:noalloc
func (f *Frequent[K]) removeGroup(g int32) {
	prev, next := f.groups[g].prev, f.groups[g].next
	if prev != nilIdx {
		f.groups[prev].next = next
	} else {
		f.head = next
	}
	if next != nilIdx {
		f.groups[next].prev = prev
	} else {
		f.tail = prev
	}
	f.freeGroupIdx(g)
}

//hh:noalloc
func (f *Frequent[K]) appendNode(g int32, nd int32) {
	tail := f.groups[g].tail
	f.nodes[nd].grp = g
	f.nodes[nd].prev, f.nodes[nd].next = tail, nilIdx
	if tail != nilIdx {
		f.nodes[tail].next = nd
	} else {
		f.groups[g].head = nd
	}
	f.groups[g].tail = nd
	f.groups[g].size++
}

//hh:noalloc
func (f *Frequent[K]) unlinkNode(nd int32) {
	g := f.nodes[nd].grp
	prev, next := f.nodes[nd].prev, f.nodes[nd].next
	if prev != nilIdx {
		f.nodes[prev].next = next
	} else {
		f.groups[g].head = next
	}
	if next != nilIdx {
		f.nodes[next].prev = prev
	} else {
		f.groups[g].tail = prev
	}
	f.groups[g].size--
	if f.groups[g].size == 0 {
		f.removeGroup(g)
	}
	f.nodes[nd].prev, f.nodes[nd].next, f.nodes[nd].grp = nilIdx, nilIdx, nilIdx
}
