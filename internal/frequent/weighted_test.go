package frequent

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestRExactUnderCapacity(t *testing.T) {
	f := NewR[uint64](4)
	f.UpdateWeighted(1, 2.5)
	f.UpdateWeighted(2, 1.0)
	f.UpdateWeighted(1, 0.5)
	if got := f.EstimateWeighted(1); got != 3 {
		t.Errorf("EstimateWeighted(1) = %v, want 3", got)
	}
	if got := f.EstimateWeighted(2); got != 1 {
		t.Errorf("EstimateWeighted(2) = %v, want 1", got)
	}
	if got := f.TotalWeight(); got != 4 {
		t.Errorf("TotalWeight = %v, want 4", got)
	}
}

func TestRNonPositiveWeightPanics(t *testing.T) {
	for _, w := range []float64{0, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v did not panic", w)
				}
			}()
			NewR[uint64](2).UpdateWeighted(1, w)
		}()
	}
}

func TestRSmallWeightDecrement(t *testing.T) {
	// m=2, counters {1:3, 2:1}. Arrival (3, 0.5): b < cmin → both shrink
	// by 0.5, 3 not stored.
	f := NewR[uint64](2)
	f.UpdateWeighted(1, 3)
	f.UpdateWeighted(2, 1)
	f.UpdateWeighted(3, 0.5)
	if got := f.EstimateWeighted(1); got != 2.5 {
		t.Errorf("EstimateWeighted(1) = %v, want 2.5", got)
	}
	if got := f.EstimateWeighted(2); got != 0.5 {
		t.Errorf("EstimateWeighted(2) = %v, want 0.5", got)
	}
	if got := f.EstimateWeighted(3); got != 0 {
		t.Errorf("EstimateWeighted(3) = %v, want 0", got)
	}
}

func TestRLargeWeightEvicts(t *testing.T) {
	// m=2, counters {1:3, 2:1}. Arrival (3, 2.0): b > cmin=1 → all shrink
	// by 1, item 2 discarded, 3 stored with 2-1 = 1.
	f := NewR[uint64](2)
	f.UpdateWeighted(1, 3)
	f.UpdateWeighted(2, 1)
	f.UpdateWeighted(3, 2)
	if got := f.EstimateWeighted(1); got != 2 {
		t.Errorf("EstimateWeighted(1) = %v, want 2", got)
	}
	if got := f.EstimateWeighted(2); got != 0 {
		t.Errorf("EstimateWeighted(2) = %v, want 0", got)
	}
	if got := f.EstimateWeighted(3); got != 1 {
		t.Errorf("EstimateWeighted(3) = %v, want 1", got)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

func TestRWeightEqualToMin(t *testing.T) {
	// b == cmin: everyone shrinks by cmin; the newcomer's remainder is
	// zero, so it is not stored.
	f := NewR[uint64](2)
	f.UpdateWeighted(1, 3)
	f.UpdateWeighted(2, 1)
	f.UpdateWeighted(3, 1)
	if got := f.EstimateWeighted(3); got != 0 {
		t.Errorf("EstimateWeighted(3) = %v, want 0", got)
	}
	if got := f.EstimateWeighted(1); got != 2 {
		t.Errorf("EstimateWeighted(1) = %v, want 2", got)
	}
	if f.EstimateWeighted(2) != 0 {
		t.Errorf("item 2 should have been discarded at zero")
	}
}

func TestRMatchesUnitFrequentOnUnitStreams(t *testing.T) {
	// With all weights 1 FREQUENTR must agree with FREQUENT exactly
	// (float arithmetic on small integers is exact).
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%6 + 1
		r := NewR[uint64](m)
		f := New[uint64](m)
		for _, x := range raw {
			item := uint64(x) % 16
			r.Update(item)
			f.Update(item)
		}
		for i := uint64(0); i < 16; i++ {
			if r.EstimateWeighted(i) != float64(f.Estimate(i)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRUnderestimateProperty(t *testing.T) {
	ups := stream.WeightedZipf(100, 1.1, 10000, 3, 5)
	truth := exact.New()
	f := NewR[uint64](20)
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		f.UpdateWeighted(u.Item, u.Weight)
	}
	for i := uint64(0); i < 100; i++ {
		if f.EstimateWeighted(i) > truth.Freq(i)+1e-6 {
			t.Errorf("item %d: estimate %v exceeds true %v", i, f.EstimateWeighted(i), truth.Freq(i))
		}
	}
}

func TestRHeavyHitterGuarantee(t *testing.T) {
	// Section 6.1: error of any item ≤ F1/m.
	ups := stream.WeightedZipf(200, 1.0, 50000, 4, 9)
	const m = 25
	truth := exact.New()
	f := NewR[uint64](m)
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		f.UpdateWeighted(u.Item, u.Weight)
	}
	bound := truth.F1() / m
	for i := uint64(0); i < 200; i++ {
		if d := math.Abs(truth.Freq(i) - f.EstimateWeighted(i)); d > bound+1e-6 {
			t.Errorf("item %d: error %v exceeds F1/m = %v", i, d, bound)
		}
	}
}

func TestRTailGuaranteeTheorem10(t *testing.T) {
	// Theorem 10: k-tail guarantee with A = B = 1 on weighted streams.
	ups := stream.WeightedZipf(200, 1.3, 50000, 4, 13)
	const m = 30
	truth := exact.New()
	f := NewR[uint64](m)
	for _, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		f.UpdateWeighted(u.Item, u.Weight)
	}
	for _, k := range []int{1, 5, 10, 20} {
		bound := f.Guarantee().Bound(m, k, truth.Res1(k))
		for i := uint64(0); i < 200; i++ {
			if d := math.Abs(truth.Freq(i) - f.EstimateWeighted(i)); d > bound+1e-6 {
				t.Errorf("k=%d item %d: error %v exceeds bound %v", k, i, d, bound)
			}
		}
	}
}

func TestRResetAndEntries(t *testing.T) {
	f := NewR[uint64](3)
	f.UpdateWeighted(1, 5)
	f.UpdateWeighted(2, 2)
	es := f.WeightedEntries()
	if len(es) != 2 || es[0].Item != 1 || es[0].Count != 5 {
		t.Errorf("WeightedEntries = %v", es)
	}
	f.Reset()
	if f.Len() != 0 || f.TotalWeight() != 0 {
		t.Error("Reset did not clear state")
	}
	f.UpdateWeighted(9, 1)
	if f.EstimateWeighted(9) != 1 {
		t.Error("unusable after Reset")
	}
}

func TestRHeapCompaction(t *testing.T) {
	// Force many increments of stored items so the lazy heap exercises
	// its compaction path; correctness is checked via estimates.
	f := NewR[uint64](4)
	for round := 0; round < 1000; round++ {
		for i := uint64(0); i < 4; i++ {
			f.UpdateWeighted(i, 1)
		}
	}
	for i := uint64(0); i < 4; i++ {
		if got := f.EstimateWeighted(i); got != 1000 {
			t.Errorf("item %d estimate %v, want 1000", i, got)
		}
	}
}
