package merge

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/spacesaving"
	"repro/internal/stream"
)

func TestMergedGuarantee(t *testing.T) {
	g := MergedGuarantee(core.TailGuarantee{A: 1, B: 1})
	if g.A != 3 || g.B != 2 {
		t.Errorf("MergedGuarantee(1,1) = %+v, want (3,2)", g)
	}
}

// shards splits a stream into l contiguous shards.
func shards(s []uint64, l int) [][]uint64 {
	out := make([][]uint64, l)
	per := len(s) / l
	for i := 0; i < l; i++ {
		lo, hi := i*per, (i+1)*per
		if i == l-1 {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	return out
}

func TestKSparseMergeTailGuarantee(t *testing.T) {
	// Theorem 11 end-to-end: summarize ℓ shards with SPACESAVING (tail
	// constants (1,1)), merge via k-sparse refeeding, and check the
	// merged summary's error against the (3,2) bound on the union stream.
	const n, total, m, k = 400, 80000, 60, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	for _, l := range []int{2, 4, 8} {
		summaries := make([][]core.Entry[uint64], l)
		for i, shard := range shards(s, l) {
			alg := spacesaving.New[uint64](m)
			for _, x := range shard {
				alg.Update(x)
			}
			summaries[i] = alg.Entries()
		}
		merged := KSparse(m, k, summaries...)
		bound := MergedGuarantee(core.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
		worst := 0.0
		for i := uint64(0); i < n; i++ {
			if d := math.Abs(truth.Freq(i) - merged.EstimateWeighted(i)); d > worst {
				worst = d
			}
		}
		if worst > bound {
			t.Errorf("l=%d: merged error %v exceeds (3,2) bound %v", l, worst, bound)
		}
	}
}

func TestKSparseMergePreservesHeavyHitters(t *testing.T) {
	// The true top items of a strongly skewed union must surface in the
	// merged summary's top entries.
	const n, total, m, k = 200, 40000, 40, 5
	s := stream.Zipf(n, 1.5, total, stream.OrderRandom, 9)
	summaries := make([][]core.Entry[uint64], 4)
	for i, shard := range shards(s, 4) {
		alg := spacesaving.New[uint64](m)
		for _, x := range shard {
			alg.Update(x)
		}
		summaries[i] = alg.Entries()
	}
	merged := KSparse(m, k, summaries...)
	es := merged.WeightedEntries()
	if len(es) == 0 {
		t.Fatal("merged summary is empty")
	}
	top := map[uint64]bool{}
	for _, e := range es[:min(3, len(es))] {
		top[e.Item] = true
	}
	// Items 0, 1, 2 are the true heavy hitters of the Zipf stream.
	for i := uint64(0); i < 3; i++ {
		if !top[i] {
			t.Errorf("true heavy hitter %d missing from merged top-3: %v", i, es[:min(3, len(es))])
		}
	}
}

func TestKSparseWeightedMerge(t *testing.T) {
	const m, k = 30, 5
	ups := stream.WeightedZipf(100, 1.2, 20000, 3, 7)
	truth := exact.New()
	half := len(ups) / 2
	sum1 := spacesaving.NewR[uint64](m)
	sum2 := spacesaving.NewR[uint64](m)
	for i, u := range ups {
		truth.UpdateWeighted(u.Item, u.Weight)
		if i < half {
			sum1.UpdateWeighted(u.Item, u.Weight)
		} else {
			sum2.UpdateWeighted(u.Item, u.Weight)
		}
	}
	merged := KSparseWeighted(m, k, sum1.WeightedEntries(), sum2.WeightedEntries())
	bound := MergedGuarantee(core.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
	for i := uint64(0); i < 100; i++ {
		if d := math.Abs(truth.Freq(i) - merged.EstimateWeighted(i)); d > bound {
			t.Errorf("item %d: error %v exceeds bound %v", i, d, bound)
		}
	}
}

func TestMSparseMergeTailGuarantee(t *testing.T) {
	// The robust all-counters merge must satisfy the (3,2) bound even in
	// the large-m regime where the literal k-sparse construction loses
	// f_{k+1} (see the MSparse doc comment).
	const n, total, m, k = 400, 80000, 200, 10
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	for _, l := range []int{2, 8} {
		summaries := make([][]core.Entry[uint64], l)
		for i, shard := range shards(s, l) {
			alg := spacesaving.New[uint64](m)
			for _, x := range shard {
				alg.Update(x)
			}
			summaries[i] = alg.Entries()
		}
		merged := MSparse(m, summaries...)
		bound := MergedGuarantee(core.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
		for i := uint64(0); i < n; i++ {
			if d := math.Abs(truth.Freq(i) - merged.EstimateWeighted(i)); d > bound {
				t.Errorf("l=%d item %d: error %v exceeds bound %v", l, i, d, bound)
			}
		}
	}
}

func TestMSparseWeightedMerge(t *testing.T) {
	a := spacesaving.NewR[uint64](8)
	b := spacesaving.NewR[uint64](8)
	a.UpdateWeighted(1, 5)
	b.UpdateWeighted(1, 2.5)
	b.UpdateWeighted(2, 1)
	merged := MSparseWeighted(8, a.WeightedEntries(), b.WeightedEntries())
	if got := merged.EstimateWeighted(1); got != 7.5 {
		t.Errorf("merged item 1 = %v, want 7.5", got)
	}
	if got := merged.EstimateWeighted(2); got != 1 {
		t.Errorf("merged item 2 = %v, want 1", got)
	}
}

func TestDirectMergeSidedness(t *testing.T) {
	// Direct merge must preserve SPACESAVING's sidedness on the union:
	// count ≥ true, count − err ≤ true.
	const n, total, m = 200, 40000, 50
	s := stream.Zipf(n, 1.2, total, stream.OrderRandom, 5)
	truth := exact.FromStream(s)
	a := spacesaving.New[uint64](m)
	b := spacesaving.New[uint64](m)
	for i, x := range s {
		if i%2 == 0 {
			a.Update(x)
		} else {
			b.Update(x)
		}
	}
	merged := Direct(m, a.Entries(), b.Entries(), a.MinCount(), b.MinCount())
	if len(merged) > m {
		t.Fatalf("merged has %d entries, capacity %d", len(merged), m)
	}
	for _, e := range merged {
		f := truth.Freq(e.Item)
		if float64(e.Count) < f {
			t.Errorf("item %d: merged count %d under true %v", e.Item, e.Count, f)
		}
		if float64(e.Count)-float64(e.Err) > f {
			t.Errorf("item %d: count−err %d exceeds true %v", e.Item, e.Count-e.Err, f)
		}
	}
}

func TestDirectMergeDisjointSummaries(t *testing.T) {
	a := []core.Entry[uint64]{{Item: 1, Count: 10}}
	b := []core.Entry[uint64]{{Item: 2, Count: 7}}
	merged := Direct(5, a, b, 2, 3)
	got := map[uint64]core.Entry[uint64]{}
	for _, e := range merged {
		got[e.Item] = e
	}
	// Item 1 absent from b (min 3): count 13, err 3. Item 2 absent from a
	// (min 2): count 9, err 2.
	if e := got[1]; e.Count != 13 || e.Err != 3 {
		t.Errorf("item 1 = %+v, want count 13 err 3", e)
	}
	if e := got[2]; e.Count != 9 || e.Err != 2 {
		t.Errorf("item 2 = %+v, want count 9 err 2", e)
	}
}

func TestDirectMergeTruncatesToM(t *testing.T) {
	var a, b []core.Entry[uint64]
	for i := uint64(0); i < 10; i++ {
		a = append(a, core.Entry[uint64]{Item: i, Count: 100 - i})
		b = append(b, core.Entry[uint64]{Item: i + 10, Count: 50 - i})
	}
	merged := Direct(8, a, b, 0, 0)
	if len(merged) != 8 {
		t.Fatalf("len = %d, want 8", len(merged))
	}
	// Top entries come from a (larger counts).
	if merged[0].Item != 0 || merged[0].Count != 100 {
		t.Errorf("top entry = %+v", merged[0])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
