// Package merge implements Section 6.2: combining summaries of separate
// streams into a summary of the union. Theorem 11 proves that feeding the
// k-sparse recoveries of ℓ summaries (each with a (A, B) tail guarantee)
// into a fresh counter algorithm yields a summary of the combined stream
// with a (3A, A+B) tail guarantee.
package merge

import (
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/spacesaving"
)

// MergedGuarantee maps the per-summary tail constants (A, B) to the
// merged summary's constants (3A, A+B) of Theorem 11.
func MergedGuarantee(g core.TailGuarantee) core.TailGuarantee {
	return core.TailGuarantee{A: 3 * g.A, B: g.A + g.B}
}

// KSparse merges unit-weight summaries per the Theorem 11 construction:
// take the k-sparse recovery f′^(j) of each summary, generate the
// corresponding weighted stream, and feed it into a fresh SPACESAVINGR
// with m counters. Entries of each summary must be sorted by decreasing
// count.
func KSparse[K comparable](m, k int, summaries ...[]core.Entry[K]) *spacesaving.R[K] {
	alg := spacesaving.NewR[K](m)
	for _, entries := range summaries {
		for item, count := range recovery.KSparse(entries, k) {
			if count > 0 {
				alg.UpdateWeighted(item, count)
			}
		}
	}
	return alg
}

// KSparseWeighted merges real-valued summaries the same way.
func KSparseWeighted[K comparable](m, k int, summaries ...[]core.WeightedEntry[K]) *spacesaving.R[K] {
	alg := spacesaving.NewR[K](m)
	for _, entries := range summaries {
		for item, count := range recovery.KSparseWeighted(entries, k) {
			if count > 0 {
				alg.UpdateWeighted(item, count)
			}
		}
	}
	return alg
}

// MSparse merges summaries by refeeding *every* stored counter rather
// than only the top k. This is a deliberate strengthening of the
// Theorem 11 construction: with homogeneous shards, the union's (k+1)-th
// item is absent from every k-sparse recovery, so the k-sparse merge's
// error is at least f_{k+1} — which can marginally exceed the stated
// 3A·F1^res(k)/(m−(A+B)k) bound once m ≫ k (observed empirically in E9;
// see EXPERIMENTS.md). Refeeding all m counters closes that gap: an item
// missing from a shard's summary has frequency at most that shard's own
// error bound, so the per-item error chain Δ ≤ Δ_f′ + Σ_j Δ_j goes
// through for every item.
func MSparse[K comparable](m int, summaries ...[]core.Entry[K]) *spacesaving.R[K] {
	alg := spacesaving.NewR[K](m)
	for _, entries := range summaries {
		for _, e := range entries {
			if e.Count > 0 {
				alg.UpdateWeighted(e.Item, float64(e.Count))
			}
		}
	}
	return alg
}

// MSparseWeighted is MSparse for real-valued summaries.
func MSparseWeighted[K comparable](m int, summaries ...[]core.WeightedEntry[K]) *spacesaving.R[K] {
	alg := spacesaving.NewR[K](m)
	for _, entries := range summaries {
		for _, e := range entries {
			if e.Count > 0 {
				alg.UpdateWeighted(e.Item, e.Count)
			}
		}
	}
	return alg
}

// Direct merges two SPACESAVING summaries without the k-sparse truncation
// (an ablation against the Theorem 11 construction): counters of shared
// items add; an item present in only one summary inherits the other
// summary's minimum counter as additional possible error. The top m of
// the union is kept. Entries must be sorted by decreasing count; minA and
// minB are the summaries' minimum counters (0 for summaries that never
// filled).
//
// The result overestimates like SPACESAVING itself: merged count ≥ true
// combined frequency, and count − err ≤ true combined frequency.
func Direct[K comparable](m int, a, b []core.Entry[K], minA, minB uint64) []core.Entry[K] {
	combined := make(map[K]core.Entry[K], len(a)+len(b))
	inB := make(map[K]bool, len(b))
	for _, e := range b {
		inB[e.Item] = true
	}
	for _, e := range a {
		if inB[e.Item] {
			combined[e.Item] = e
		} else {
			// Absent from b: its frequency in b's stream is at most minB.
			combined[e.Item] = core.Entry[K]{Item: e.Item, Count: e.Count + minB, Err: e.Err + minB}
		}
	}
	for _, e := range b {
		if prev, ok := combined[e.Item]; ok {
			combined[e.Item] = core.Entry[K]{
				Item:  e.Item,
				Count: prev.Count + e.Count,
				Err:   prev.Err + e.Err,
			}
		} else {
			// Absent from a: its frequency in a's stream is at most minA.
			combined[e.Item] = core.Entry[K]{Item: e.Item, Count: e.Count + minA, Err: e.Err + minA}
		}
	}
	out := make([]core.Entry[K], 0, len(combined))
	for _, e := range combined {
		out = append(out, e)
	}
	core.SortEntries(out)
	if len(out) > m {
		out = out[:m]
	}
	return out
}
