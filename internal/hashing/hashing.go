// Package hashing implements the hash families required by the sketch
// baselines in Table 1 of the paper: pairwise-independent hashing for
// Count-Min and 4-wise-independent hashing for the Count-Sketch sign and
// bucket functions.
//
// The family is polynomial hashing over the Mersenne prime p = 2^61 − 1:
// a degree-(d−1) polynomial with uniform coefficients is d-wise
// independent. Modular reduction exploits the Mersenne structure so no
// divisions are required.
package hashing

import (
	"math/bits"

	"repro/internal/rng"
)

// MersennePrime61 is 2^61 − 1, the field modulus of the polynomial family.
const MersennePrime61 = (uint64(1) << 61) - 1

// mod61 reduces a 64-bit value modulo 2^61 − 1.
//
//hh:noalloc
func mod61(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// mulMod61 returns a*b mod 2^61−1 for a, b < 2^61.
//
//hh:noalloc
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo. With 2^61 ≡ 1, we have 2^64 ≡ 8, so
	// a*b ≡ 8*hi + lo. Split lo at bit 61 as well.
	res := (lo & MersennePrime61) + (lo >> 61) + hi<<3
	return mod61(res)
}

// Poly is a d-wise independent hash function: a random polynomial of
// degree d−1 over GF(2^61 − 1), evaluated by Horner's rule. The zero value
// is not usable; construct with NewPoly.
type Poly struct {
	coeff []uint64 // coeff[0] is the highest-degree coefficient
}

// NewPoly draws a fresh function from the d-wise independent family using
// randomness from src. It panics if independence < 1.
func NewPoly(src *rng.Source, independence int) Poly {
	if independence < 1 {
		panic("hashing: independence must be >= 1")
	}
	coeff := make([]uint64, independence)
	for i := range coeff {
		coeff[i] = src.Uint64n(MersennePrime61)
	}
	// The leading coefficient must be non-zero for full independence.
	for coeff[0] == 0 {
		coeff[0] = src.Uint64n(MersennePrime61)
	}
	return Poly{coeff: coeff}
}

// Hash evaluates the polynomial at x, returning a value in
// [0, 2^61 − 1).
//
//hh:noalloc
func (p Poly) Hash(x uint64) uint64 {
	x = mod61(x)
	acc := uint64(0)
	for _, c := range p.coeff {
		acc = mod61(mulMod61(acc, x) + c)
	}
	return acc
}

// Bucket maps x into [0, buckets) by reducing the hash value. It panics if
// buckets == 0.
//
//hh:noalloc
func (p Poly) Bucket(x, buckets uint64) uint64 {
	if buckets == 0 {
		panic("hashing: Bucket with zero buckets")
	}
	return p.Hash(x) % buckets
}

// Sign maps x to ±1 using the lowest bit of the hash value; with a 4-wise
// independent polynomial this is the Count-Sketch sign function.
//
//hh:noalloc
func (p Poly) Sign(x uint64) int64 {
	if p.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Independence reports d, the number of coefficients (the independence of
// the family the function was drawn from).
func (p Poly) Independence() int { return len(p.coeff) }
