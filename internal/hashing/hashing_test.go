package hashing

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMod61(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61, 0},
		{MersennePrime61 + 1, 1},
		{2 * MersennePrime61, 0},
		{math.MaxUint64, math.MaxUint64 % MersennePrime61},
	}
	for _, c := range cases {
		if got := mod61(c.in); got != c.want {
			t.Errorf("mod61(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMulMod61MatchesBigIntArithmetic(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime61)
	err := quick.Check(func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return mulMod61(a, b) == want.Uint64()
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashInRange(t *testing.T) {
	src := rng.New(1)
	p := NewPoly(src, 4)
	for i := uint64(0); i < 10000; i++ {
		if h := p.Hash(i); h >= MersennePrime61 {
			t.Fatalf("Hash(%d) = %d out of range", i, h)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	p1 := NewPoly(rng.New(5), 2)
	p2 := NewPoly(rng.New(5), 2)
	for i := uint64(0); i < 100; i++ {
		if p1.Hash(i) != p2.Hash(i) {
			t.Fatalf("same seed produced different hash functions at x=%d", i)
		}
	}
}

func TestBucketUniformity(t *testing.T) {
	src := rng.New(17)
	p := NewPoly(src, 2)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := uint64(0); i < draws; i++ {
		counts[p.Bucket(i, buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d has %d entries, want ~%.0f", b, c, want)
		}
	}
}

func TestSignBalance(t *testing.T) {
	src := rng.New(23)
	p := NewPoly(src, 4)
	pos := 0
	const draws = 100000
	for i := uint64(0); i < draws; i++ {
		s := p.Sign(i)
		if s != 1 && s != -1 {
			t.Fatalf("Sign(%d) = %d", i, s)
		}
		if s == 1 {
			pos++
		}
	}
	if math.Abs(float64(pos)-draws/2) > 4*math.Sqrt(draws/2) {
		t.Errorf("sign imbalance: %d/%d positive", pos, draws)
	}
}

func TestPairwiseIndependenceCollisions(t *testing.T) {
	// For a pairwise family into m buckets, Pr[h(x)=h(y)] ≈ 1/m. Estimate
	// the collision rate over many independently drawn functions.
	src := rng.New(31)
	const m = 64
	const trials = 20000
	collisions := 0
	for i := 0; i < trials; i++ {
		p := NewPoly(src, 2)
		if p.Bucket(1, m) == p.Bucket(2, m) {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	if rate > 2.0/m || rate < 0.25/m {
		t.Errorf("collision rate %v, want ~%v", rate, 1.0/m)
	}
}

func TestNewPolyPanicsOnZeroIndependence(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoly(0) did not panic")
		}
	}()
	NewPoly(rng.New(1), 0)
}

func TestBucketPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bucket(0 buckets) did not panic")
		}
	}()
	NewPoly(rng.New(1), 2).Bucket(1, 0)
}

func TestIndependence(t *testing.T) {
	if got := NewPoly(rng.New(1), 4).Independence(); got != 4 {
		t.Errorf("Independence() = %d, want 4", got)
	}
}

func BenchmarkHash(b *testing.B) {
	p := NewPoly(rng.New(1), 4)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Hash(uint64(i))
	}
	_ = sink
}
