// Package benchjson defines the machine-readable benchmark report
// emitted by `hhbench -json` and consumed by the CI perf gate: a
// schema-stable JSON document recording throughput (items/s), latency
// (ns/op) and allocation rate (allocs/op, B/op) for every measured
// algorithm × workload × sharding combination.
//
// The schema is versioned through the top-level "schema" field; adding
// fields is allowed within a version, renaming or removing them is not,
// so dashboards and the regression gate can consume reports from any PR
// since the field was introduced.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
)

// Schema identifies the current report format. Writers emit it;
// readers accept it and SchemaV1 (v2 only adds the capacity-tier
// memory columns, so a v1 baseline remains comparable).
const (
	Schema   = "hhbench/v2"
	SchemaV1 = "hhbench/v1"
)

// Record is one measured configuration.
type Record struct {
	// Name uniquely identifies the configuration within a report, e.g.
	// "ingest/spacesaving/zipf-1.1/unsharded". Compare matches records
	// across reports by Name.
	Name        string  `json:"name"`
	Algo        string  `json:"algo"`
	Workload    string  `json:"workload"`
	Shards      int     `json:"shards"` // 0 = unsharded
	Batch       int     `json:"batch"`  // UpdateBatch size
	Items       uint64  `json:"items"`  // stream length of the measured pass
	NsPerOp     float64 `json:"ns_per_op"`
	ItemsPerSec float64 `json:"items_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// The v2 capacity-tier columns, reported by the capacity/*
	// benchmarks only (zero elsewhere, and omitted from the JSON).
	//
	// BytesPerTrackedKey is the steady-state heap bytes attributable to
	// key storage, amortized over the tracked keys (HeapAlloc delta
	// after a forced GC, divided by Len).
	BytesPerTrackedKey float64 `json:"bytes_per_tracked_key,omitempty"`
	// HeapObjects is the live-object delta the warm structure holds
	// after a forced GC — the number GC mark cost scales with.
	HeapObjects uint64 `json:"heap_objects,omitempty"`
	// GCPauseP99Ns is the 99th-percentile stop-the-world pause observed
	// while replaying the trace (debug.ReadGCStats quantiles). Recorded
	// for dashboards; Compare reports but does not gate it (pauses are
	// scheduler-noisy).
	GCPauseP99Ns float64 `json:"gc_pause_p99_ns,omitempty"`
}

// Report is the top-level document.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Records   []Record `json:"records"`
}

// New returns an empty report stamped with the running toolchain and
// platform.
func New() *Report {
	return &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// Add appends one record.
func (r *Report) Add(rec Record) { r.Records = append(r.Records, rec) }

// Write emits the report as indented JSON with records sorted by name,
// so regenerating a baseline yields a minimal diff.
func Write(w io.Writer, r *Report) error {
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].Name < r.Records[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if r.Schema != Schema && r.Schema != SchemaV1 {
		return nil, fmt.Errorf("benchjson: schema %q, want %q or %q", r.Schema, Schema, SchemaV1)
	}
	seen := make(map[string]bool, len(r.Records))
	for _, rec := range r.Records {
		if rec.Name == "" {
			return nil, fmt.Errorf("benchjson: record with empty name")
		}
		if seen[rec.Name] {
			return nil, fmt.Errorf("benchjson: duplicate record %q", rec.Name)
		}
		seen[rec.Name] = true
	}
	return &r, nil
}

// Min merges reports element-wise by record name, keeping each record's
// best (lowest) ns_per_op, allocs_per_op and bytes_per_op, with
// items_per_sec recomputed from the winning ns_per_op. Go randomizes
// its map hash seed per process, which makes eviction-heavy (map-bound)
// benchmarks bimodal across processes even when each in-process
// measurement is a stable minimum-of-K; taking the minimum across
// several processes filters the unlucky seeds out, the same way
// minimum-of-K filters scheduler noise within one. Metadata is taken
// from the first report. It panics on an empty argument list.
func Min(reports ...*Report) *Report {
	out := &Report{
		Schema:    reports[0].Schema,
		GoVersion: reports[0].GoVersion,
		GOOS:      reports[0].GOOS,
		GOARCH:    reports[0].GOARCH,
		CPUs:      reports[0].CPUs,
	}
	idx := make(map[string]int)
	for _, r := range reports {
		for _, rec := range r.Records {
			i, ok := idx[rec.Name]
			if !ok {
				idx[rec.Name] = len(out.Records)
				out.Records = append(out.Records, rec)
				continue
			}
			best := &out.Records[i]
			if rec.NsPerOp < best.NsPerOp {
				best.NsPerOp = rec.NsPerOp
				best.ItemsPerSec = rec.ItemsPerSec
			}
			best.AllocsPerOp = math.Min(best.AllocsPerOp, rec.AllocsPerOp)
			best.BytesPerOp = math.Min(best.BytesPerOp, rec.BytesPerOp)
			best.BytesPerTrackedKey = minNonzero(best.BytesPerTrackedKey, rec.BytesPerTrackedKey)
			best.HeapObjects = uint64(minNonzero(float64(best.HeapObjects), float64(rec.HeapObjects)))
			best.GCPauseP99Ns = minNonzero(best.GCPauseP99Ns, rec.GCPauseP99Ns)
		}
	}
	return out
}

// minNonzero is the Min rule for the v2 columns: zero means "not
// measured" (the column is capacity-tier only), so it never wins.
func minNonzero(a, b float64) float64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	default:
		return math.Min(a, b)
	}
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Name   string // record name
	Metric string // "ns_per_op", "allocs_per_op" or "missing"
	// Base is the value the current measurement was gated against: the
	// baseline value, median-normalized for ns_per_op (see Compare).
	Base    float64
	Current float64 // measured value (0 for "missing")
}

func (g Regression) String() string {
	if g.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not measured", g.Name)
	}
	if g.Base == 0 {
		// The common allocs/op case: a zero-alloc baseline regressing to
		// any allocation has no finite percentage.
		return fmt.Sprintf("%s: %s 0 -> %.3g", g.Name, g.Metric, g.Current)
	}
	return fmt.Sprintf("%s: %s %.3g -> %.3g (%+.1f%%)",
		g.Name, g.Metric, g.Base, g.Current, 100*(g.Current-g.Base)/g.Base)
}

// allocSlack absorbs incidental allocations (one-off map growth, GC
// bookkeeping) when comparing allocs/op: a true per-op allocation adds
// at least 1.0.
const allocSlack = 0.05

// Compare gates cur against base and additionally returns the median
// cur/base ns_per_op ratio it normalized by.
//
// The ns/op comparison is hardware-normalized: each record's slowdown
// ratio is measured against the suite-wide median ratio, and a record
// regresses when it exceeds the median by more than threshold
// (fractional, e.g. 0.15 for 15%). A CI runner that is uniformly
// slower (or faster) than the machine that produced the committed
// baseline shifts every ratio — and the median with it — so hardware
// drift does not fail the build, while any individual path regressing
// relative to the rest of the suite still does. The blind spot is a
// change that slows the majority of the suite down by the same factor;
// the nightly numbers and the baseline refresh recipe cover that.
//
// allocs/op is compared absolutely (hardware-independent): growth past
// the baseline by more than a small slack is a regression regardless of
// threshold. Records in base that cur does not measure are reported as
// "missing"; records only in cur are ignored (new benchmarks are not
// regressions).
func Compare(base, cur *Report, threshold float64) ([]Regression, float64) {
	byName := make(map[string]Record, len(cur.Records))
	for _, rec := range cur.Records {
		byName[rec.Name] = rec
	}
	var ratios []float64
	for _, b := range base.Records {
		if c, ok := byName[b.Name]; ok && b.NsPerOp > 0 && c.NsPerOp > 0 {
			ratios = append(ratios, c.NsPerOp/b.NsPerOp)
		}
	}
	med := median(ratios)
	var out []Regression
	for _, b := range base.Records {
		c, ok := byName[b.Name]
		if !ok {
			out = append(out, Regression{Name: b.Name, Metric: "missing", Base: b.NsPerOp})
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*med*(1+threshold) {
			out = append(out, Regression{Name: b.Name, Metric: "ns_per_op", Base: b.NsPerOp * med, Current: c.NsPerOp})
		}
		if c.AllocsPerOp > b.AllocsPerOp+allocSlack {
			out = append(out, Regression{Name: b.Name, Metric: "allocs_per_op", Base: b.AllocsPerOp, Current: c.AllocsPerOp})
		}
		// The v2 memory columns gate like ns/op but without hardware
		// normalization — bytes and object counts are deterministic
		// properties of the structure, not of the machine. A zero base
		// means the baseline predates the column (or the record is not a
		// capacity row); skip rather than divide by it. GCPauseP99Ns is
		// deliberately not gated: pauses are scheduler-noisy, and the
		// object counts gated here are what drives them.
		if b.BytesPerTrackedKey > 0 && c.BytesPerTrackedKey > b.BytesPerTrackedKey*(1+threshold) {
			out = append(out, Regression{Name: b.Name, Metric: "bytes_per_tracked_key", Base: b.BytesPerTrackedKey, Current: c.BytesPerTrackedKey})
		}
		if b.HeapObjects > 0 && float64(c.HeapObjects) > float64(b.HeapObjects)*(1+threshold) {
			out = append(out, Regression{Name: b.Name, Metric: "heap_objects", Base: float64(b.HeapObjects), Current: float64(c.HeapObjects)})
		}
	}
	return out, med
}

// median returns the middle value of xs (mean of the middle pair for
// even lengths), or 1 for an empty slice — the neutral normalization.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
