package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Report {
	r := New()
	r.Add(Record{
		Name: "ingest/spacesaving/zipf-1.1/unsharded", Algo: "spacesaving",
		Workload: "zipf-1.1", Batch: 4096, Items: 1000,
		NsPerOp: 80, ItemsPerSec: 12.5e6, AllocsPerOp: 0, BytesPerOp: 0,
	})
	r.Add(Record{
		Name: "ingest/frequent/zipf-1.1/sharded8", Algo: "frequent",
		Workload: "zipf-1.1", Shards: 8, Batch: 4096, Items: 1000,
		NsPerOp: 100, ItemsPerSec: 10e6, AllocsPerOp: 0.01, BytesPerOp: 3,
	})
	r.Add(Record{
		Name: "ingest/lossycounting/uniform/unsharded", Algo: "lossycounting",
		Workload: "uniform", Batch: 4096, Items: 1000,
		NsPerOp: 60, ItemsPerSec: 16.7e6, AllocsPerOp: 0, BytesPerOp: 0,
	})
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema {
		t.Fatalf("schema %q", got.Schema)
	}
	if len(got.Records) != 3 {
		t.Fatalf("records %d", len(got.Records))
	}
	// Write sorts by name for stable diffs.
	for i := 1; i < len(got.Records); i++ {
		if got.Records[i-1].Name >= got.Records[i].Name {
			t.Fatalf("records not sorted: %q, %q", got.Records[i-1].Name, got.Records[i].Name)
		}
	}
}

func TestReadRejectsBadSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"hhbench/v999"}`)); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("want parse error")
	}
	dup := `{"schema":"` + Schema + `","records":[{"name":"a"},{"name":"a"}]}`
	if _, err := Read(strings.NewReader(dup)); err == nil {
		t.Fatal("want duplicate-name error")
	}
	empty := `{"schema":"` + Schema + `","records":[{"name":""}]}`
	if _, err := Read(strings.NewReader(empty)); err == nil {
		t.Fatal("want empty-name error")
	}
}

func TestCompare(t *testing.T) {
	base := sample()
	cur := sample()
	regs, med := Compare(base, cur, 0.15)
	if len(regs) != 0 || med != 1 {
		t.Fatalf("identical reports: regs %v, median %v", regs, med)
	}

	// One record slower than threshold; the other two unchanged keep the
	// median at 1, so the slowdown is flagged.
	cur = sample()
	cur.Records[0].NsPerOp = 80 * 1.30
	regs, _ = Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "ns_per_op" {
		t.Fatalf("want one ns_per_op regression, got %v", regs)
	}

	// Slower but within threshold.
	cur = sample()
	cur.Records[0].NsPerOp = 80 * 1.10
	if regs, _ := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("within-threshold slowdown flagged: %v", regs)
	}

	// A uniform slowdown — every record 40% slower, as on a slower CI
	// runner — is hardware drift, not a regression: the median
	// normalizes it away.
	cur = sample()
	for i := range cur.Records {
		cur.Records[i].NsPerOp *= 1.4
	}
	regs, med = Compare(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("uniform slowdown flagged: %v", regs)
	}
	if med < 1.39 || med > 1.41 {
		t.Fatalf("median %v, want ~1.4", med)
	}

	// One record regressing on top of uniform drift is still caught.
	cur = sample()
	for i := range cur.Records {
		cur.Records[i].NsPerOp *= 1.4
	}
	cur.Records[0].NsPerOp *= 1.30
	regs, _ = Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "ns_per_op" {
		t.Fatalf("want one ns_per_op regression over drift, got %v", regs)
	}

	// Any real allocation increase is a regression, threshold or not.
	cur = sample()
	cur.Records[0].AllocsPerOp = 1
	regs, _ = Compare(base, cur, 10)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("want one allocs_per_op regression, got %v", regs)
	}

	// A record dropped from the suite is flagged.
	cur = sample()
	cur.Records = cur.Records[:2]
	regs, _ = Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing record, got %v", regs)
	}

	// Extra records in cur are fine.
	cur = sample()
	cur.Add(Record{Name: "new/bench", NsPerOp: 1})
	if regs, _ := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

func TestMin(t *testing.T) {
	a := sample()
	b := sample()
	b.Records[0].NsPerOp = 50 // faster run of the first record
	b.Records[0].ItemsPerSec = 20e6
	b.Records[1].NsPerOp = 200 // slower run of the second
	b.Add(Record{Name: "only/in/b", NsPerOp: 7})

	m := Min(a, b)
	byName := make(map[string]Record)
	for _, rec := range m.Records {
		byName[rec.Name] = rec
	}
	if got := byName[a.Records[0].Name]; got.NsPerOp != 50 || got.ItemsPerSec != 20e6 {
		t.Fatalf("min did not keep the faster first record: %+v", got)
	}
	if got := byName[a.Records[1].Name]; got.NsPerOp != a.Records[1].NsPerOp {
		t.Fatalf("min did not keep the faster second record: %+v", got)
	}
	if _, ok := byName["only/in/b"]; !ok {
		t.Fatal("record present in only one report was dropped")
	}
	if m.Schema != Schema {
		t.Fatalf("schema %q", m.Schema)
	}
}

// TestReadAcceptsV1 pins cross-version compatibility: a v1 baseline
// (no capacity columns) still reads and gates against v2 measurements.
func TestReadAcceptsV1(t *testing.T) {
	v1 := `{"schema":"hhbench/v1","records":[{"name":"a","ns_per_op":10}]}`
	r, err := Read(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 1 || r.Records[0].BytesPerTrackedKey != 0 {
		t.Fatalf("v1 read: %+v", r.Records)
	}
	// Gating a v2 measurement against it only uses the shared columns.
	cur := &Report{Schema: Schema, Records: []Record{
		{Name: "a", NsPerOp: 10, BytesPerTrackedKey: 64, HeapObjects: 100, GCPauseP99Ns: 5e4},
	}}
	if regs, _ := Compare(r, cur, 0.15); len(regs) != 0 {
		t.Fatalf("v1 baseline flagged v2 columns: %v", regs)
	}
}

// TestCompareV2Columns gates the capacity-tier memory columns: bytes
// per tracked key and heap objects regress on relative growth,
// gc_pause_p99_ns never gates.
func TestCompareV2Columns(t *testing.T) {
	capRec := func() Record {
		return Record{Name: "capacity/spacesaving/zipf-1.1/m64k/arena",
			NsPerOp: 100, BytesPerTrackedKey: 40, HeapObjects: 300, GCPauseP99Ns: 1e5}
	}
	base := &Report{Schema: Schema, Records: []Record{capRec()}}

	cur := &Report{Schema: Schema, Records: []Record{capRec()}}
	cur.Records[0].BytesPerTrackedKey = 40 * 1.3
	regs, _ := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "bytes_per_tracked_key" {
		t.Fatalf("want bytes_per_tracked_key regression, got %v", regs)
	}

	cur = &Report{Schema: Schema, Records: []Record{capRec()}}
	cur.Records[0].HeapObjects = 500
	regs, _ = Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "heap_objects" {
		t.Fatalf("want heap_objects regression, got %v", regs)
	}

	// Within threshold: clean.
	cur = &Report{Schema: Schema, Records: []Record{capRec()}}
	cur.Records[0].BytesPerTrackedKey = 40 * 1.1
	cur.Records[0].HeapObjects = 330
	if regs, _ := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("within-threshold growth flagged: %v", regs)
	}

	// Pauses are report-only: a 100x pause blowup alone does not gate.
	cur = &Report{Schema: Schema, Records: []Record{capRec()}}
	cur.Records[0].GCPauseP99Ns = 1e7
	if regs, _ := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("gc pause gated: %v", regs)
	}

	// A zero-column base (v1 or non-capacity row) never gates.
	base.Records[0].BytesPerTrackedKey = 0
	base.Records[0].HeapObjects = 0
	cur.Records[0].BytesPerTrackedKey = 1e9
	cur.Records[0].HeapObjects = 1 << 40
	if regs, _ := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("zero base gated: %v", regs)
	}
}

// TestMinV2Columns: zero means "not measured" for the v2 columns, so
// Min never lets it win over a real measurement.
func TestMinV2Columns(t *testing.T) {
	a := &Report{Schema: Schema, Records: []Record{
		{Name: "c", NsPerOp: 10, BytesPerTrackedKey: 50, HeapObjects: 400, GCPauseP99Ns: 2e5},
	}}
	b := &Report{Schema: Schema, Records: []Record{
		{Name: "c", NsPerOp: 12, BytesPerTrackedKey: 45, HeapObjects: 0, GCPauseP99Ns: 1e5},
	}}
	m := Min(a, b)
	got := m.Records[0]
	if got.BytesPerTrackedKey != 45 || got.HeapObjects != 400 || got.GCPauseP99Ns != 1e5 {
		t.Fatalf("v2 min merge: %+v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := median(nil); got != 1 {
		t.Fatalf("median(nil) = %v, want neutral 1", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("median even = %v, want 2.5", got)
	}
}

func TestRegressionString(t *testing.T) {
	s := Regression{Name: "x", Metric: "ns_per_op", Base: 100, Current: 130}.String()
	if !strings.Contains(s, "ns_per_op") || !strings.Contains(s, "+30.0%") {
		t.Fatalf("unhelpful message %q", s)
	}
	if s := (Regression{Name: "x", Metric: "missing"}).String(); !strings.Contains(s, "not measured") {
		t.Fatalf("unhelpful message %q", s)
	}
	// A zero-alloc baseline regressing to any allocation must not print
	// an infinite percentage.
	s = Regression{Name: "x", Metric: "allocs_per_op", Base: 0, Current: 1}.String()
	if strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("division by zero leaked into message %q", s)
	}
}
