package exact

import (
	"testing"
	"testing/quick"
)

func TestBasicCounting(t *testing.T) {
	c := New()
	for _, x := range []uint64{1, 2, 1, 3, 1, 2} {
		c.Update(x)
	}
	if got := c.Freq(1); got != 3 {
		t.Errorf("Freq(1) = %v, want 3", got)
	}
	if got := c.Freq(2); got != 2 {
		t.Errorf("Freq(2) = %v, want 2", got)
	}
	if got := c.Freq(99); got != 0 {
		t.Errorf("Freq(99) = %v, want 0", got)
	}
	if got := c.F1(); got != 6 {
		t.Errorf("F1 = %v, want 6", got)
	}
	if got := c.Distinct(); got != 3 {
		t.Errorf("Distinct = %v, want 3", got)
	}
}

func TestWeighted(t *testing.T) {
	c := New()
	c.UpdateWeighted(5, 2.5)
	c.UpdateWeighted(5, 0.5)
	c.UpdateWeighted(7, 1.25)
	if got := c.Freq(5); got != 3 {
		t.Errorf("Freq(5) = %v, want 3", got)
	}
	if got := c.F1(); got != 4.25 {
		t.Errorf("F1 = %v, want 4.25", got)
	}
}

func TestNonPositiveWeightPanics(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v did not panic", w)
				}
			}()
			New().UpdateWeighted(1, w)
		}()
	}
}

func TestTopKTieBreak(t *testing.T) {
	c := New()
	for _, x := range []uint64{5, 5, 3, 3, 9} {
		c.Update(x)
	}
	got := c.TopK(2)
	// Items 3 and 5 tie at frequency 2; smaller id (3) first.
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("TopK(2) = %v, want [3 5]", got)
	}
	if all := c.TopK(10); len(all) != 3 {
		t.Errorf("TopK(10) = %v, want 3 items", all)
	}
}

func TestRes1(t *testing.T) {
	c := New()
	// Frequencies: 4, 3, 2, 1.
	for item, f := range map[uint64]int{10: 4, 11: 3, 12: 2, 13: 1} {
		for i := 0; i < f; i++ {
			c.Update(item)
		}
	}
	cases := []struct {
		k    int
		want float64
	}{{0, 10}, {1, 6}, {2, 3}, {3, 1}, {4, 0}, {10, 0}}
	for _, tc := range cases {
		if got := c.Res1(tc.k); got != tc.want {
			t.Errorf("Res1(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestResP(t *testing.T) {
	c := New()
	for item, f := range map[uint64]int{1: 3, 2: 2} {
		for i := 0; i < f; i++ {
			c.Update(item)
		}
	}
	if got := c.ResP(1, 2); got != 4 {
		t.Errorf("ResP(1, 2) = %v, want 4", got)
	}
}

func TestDenseSparseRoundTrip(t *testing.T) {
	c := FromStream([]uint64{0, 1, 1, 4})
	d := c.Dense(5)
	want := []float64{1, 2, 0, 0, 1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("Dense = %v, want %v", d, want)
		}
	}
	s := c.Sparse()
	if len(s) != 3 || s[1] != 2 {
		t.Errorf("Sparse = %v", s)
	}
	// Mutating the sparse copy must not affect the counter.
	s[1] = 99
	if c.Freq(1) != 2 {
		t.Error("Sparse returned a live reference to internal state")
	}
}

func TestF1MatchesStreamLengthProperty(t *testing.T) {
	err := quick.Check(func(items []uint64) bool {
		c := FromStream(items)
		return c.F1() == float64(len(items))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumOfFrequenciesEqualsF1Property(t *testing.T) {
	err := quick.Check(func(items []uint64) bool {
		c := FromStream(items)
		return c.Sparse().F1() == c.F1()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
