// Package exact provides ground-truth frequency counting used to evaluate
// the approximation algorithms: exact per-item frequencies, exact top-k
// sets, and exports to the vector package's representations.
package exact

import (
	"sort"

	"repro/internal/vector"
)

// Counter counts exact (possibly weighted) frequencies of uint64 items.
// The zero value is not usable; construct with New.
type Counter struct {
	counts map[uint64]float64
	mass   float64
}

// New returns an empty exact counter.
func New() *Counter {
	return &Counter{counts: make(map[uint64]float64)}
}

// Update records one unit-weight occurrence of item x.
func (c *Counter) Update(x uint64) { c.UpdateWeighted(x, 1) }

// UpdateWeighted records an occurrence of x with the given positive weight.
// It panics on non-positive weights, matching the paper's stream model
// (b_i ∈ R+).
func (c *Counter) UpdateWeighted(x uint64, w float64) {
	if w <= 0 {
		panic("exact: non-positive weight")
	}
	c.counts[x] += w
	c.mass += w
}

// Freq returns the exact frequency of x (zero if unseen).
func (c *Counter) Freq(x uint64) float64 { return c.counts[x] }

// F1 returns the total stream mass processed.
func (c *Counter) F1() float64 { return c.mass }

// Distinct returns the number of distinct items seen.
func (c *Counter) Distinct() int { return len(c.counts) }

// Sparse returns the frequency vector as a sparse map copy.
func (c *Counter) Sparse() vector.Sparse {
	s := make(vector.Sparse, len(c.counts))
	for k, v := range c.counts {
		s[k] = v
	}
	return s
}

// Dense returns the frequency vector expanded over the universe [0, n).
// It panics if any seen item lies outside the universe.
func (c *Counter) Dense(n int) vector.Dense { return c.Sparse().Dense(n) }

// TopK returns the identifiers of the k most frequent items, ties broken by
// smaller identifier (the paper's indexing convention). Fewer than k are
// returned if fewer distinct items were seen.
func (c *Counter) TopK(k int) []uint64 {
	ids := make([]uint64, 0, len(c.counts))
	for id := range c.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ia, ib := ids[a], ids[b]
		if c.counts[ia] != c.counts[ib] {
			return c.counts[ia] > c.counts[ib]
		}
		return ia < ib
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// Res1 returns F_1^res(k), the stream mass excluding the k most frequent
// items.
func (c *Counter) Res1(k int) float64 {
	vals := make([]float64, 0, len(c.counts))
	for _, v := range c.counts {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vector.ResP(vals, k, 1)
}

// ResP returns F_p^res(k) over the exact frequencies.
func (c *Counter) ResP(k int, p float64) float64 {
	vals := make([]float64, 0, len(c.counts))
	for _, v := range c.counts {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vector.ResP(vals, k, p)
}

// FromStream counts a unit-weight stream in one call.
func FromStream(stream []uint64) *Counter {
	c := New()
	for _, x := range stream {
		c.Update(x)
	}
	return c
}
