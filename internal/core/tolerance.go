package core

// This file implements an operational checker for the paper's
// heavy-tolerance property (Definition 4, proved for FREQUENT and
// SPACESAVING in Theorem 1):
//
//   if element i = u_x is (x−1)-prefix guaranteed, then for every suffix,
//   the counter vectors of the streams with and without that occurrence
//   differ exactly by e_i (the proof's induction invariant), so no other
//   item's error grows.
//
// The checker replays two streams — one containing an extra occurrence of
// a heavy element directly after a prefix that guarantees it — and
// compares final counter vectors. Algorithm implementations use it in
// their test suites; the experiment harness uses it to demonstrate
// Theorem 1 on random streams.

// CounterState captures an algorithm's full visible counter vector.
type CounterState[K comparable] map[K]uint64

// StateOf snapshots the algorithm's counter vector.
func StateOf[K comparable](alg Algorithm[K]) CounterState[K] {
	s := make(CounterState[K])
	for _, e := range alg.Entries() {
		s[e.Item] = e.Count
	}
	return s
}

// DiffersByExactlyOne reports whether state a equals state b plus exactly
// one extra count on item i (the Theorem 1 invariant
// c(u_1…x v) = c(u_1…(x−1) v) + e_i).
func DiffersByExactlyOne[K comparable](a, b CounterState[K], item K) bool {
	if len(a) != len(b) {
		// Same support is part of the invariant (i is guaranteed, so it
		// is present in both).
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		if k == item {
			if va != vb+1 {
				return false
			}
		} else if va != vb {
			return false
		}
	}
	return true
}

// CheckHeavyTolerance runs the Theorem 1 experiment: feed prefix, then an
// extra occurrence of item, then suffix, and compare against the run
// without the extra occurrence. It returns true when the final counter
// vectors differ by exactly e_item.
//
// The caller must choose prefix/item so that item is prefix-guaranteed
// (e.g. item occurs in the prefix more often than any achievable error
// bound); GuaranteePrefix builds such prefixes.
func CheckHeavyTolerance[K comparable](newAlg func() Algorithm[K], prefix []K, item K, suffix []K) bool {
	with := newAlg()
	Feed(with, prefix)
	with.Update(item)
	Feed(with, suffix)

	without := newAlg()
	Feed(without, prefix)
	Feed(without, suffix)

	return DiffersByExactlyOne(StateOf(with), StateOf(without), item)
}

// GuaranteePrefix returns a prefix that makes item x-prefix guaranteed for
// any m-counter algorithm with the heavy-hitter guarantee: item occurs
// suffixLen + 1 more times than the Definition 1 bound on the combined
// stream can erode. Concretely it emits item rep times where
// rep = (prefixNoise + suffixLen + rep)/m + suffixLen + 1 is satisfied;
// solving conservatively, rep = 2·(prefixNoise + suffixLen + m)/ (m-1) + suffixLen
// is more than enough for m ≥ 2. The prefix is item^rep followed by the
// provided noise items.
func GuaranteePrefix[K comparable](item K, noise []K, suffixLen, m int) []K {
	if m < 2 {
		panic("core: GuaranteePrefix requires m >= 2")
	}
	total := len(noise) + suffixLen + m
	rep := 2*total/(m-1) + suffixLen + 2
	out := make([]K, 0, rep+len(noise))
	for i := 0; i < rep; i++ {
		out = append(out, item)
	}
	out = append(out, noise...)
	return out
}
