package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/frequent"
	"repro/internal/spacesaving"
)

func TestTailGuaranteeBound(t *testing.T) {
	g := core.TailGuarantee{A: 1, B: 1}
	if got := g.Bound(10, 2, 80); got != 10 {
		t.Errorf("Bound = %v, want 10", got)
	}
	if got := g.Bound(10, 10, 80); !math.IsInf(got, 1) {
		t.Errorf("vacuous bound = %v, want +Inf", got)
	}
	g2 := core.TailGuarantee{A: 1, B: 2}
	if got := g2.Bound(10, 5, 80); !math.IsInf(got, 1) {
		t.Errorf("vacuous bound (B=2) = %v, want +Inf", got)
	}
	if got := g2.Bound(10, 4, 80); got != 40 {
		t.Errorf("Bound = %v, want 40", got)
	}
}

func TestMaxK(t *testing.T) {
	cases := []struct {
		g    core.TailGuarantee
		m    int
		want int
	}{
		{core.TailGuarantee{A: 1, B: 1}, 10, 9},
		{core.TailGuarantee{A: 1, B: 2}, 10, 4},
		{core.TailGuarantee{A: 1, B: 2}, 11, 5},
		{core.TailGuarantee{A: 1, B: 0}, 7, 7},
	}
	for _, c := range cases {
		if got := c.g.MaxK(c.m); got != c.want {
			t.Errorf("MaxK(%+v, m=%d) = %d, want %d", c.g, c.m, got, c.want)
		}
		if c.g.B > 0 {
			if !math.IsInf(c.g.Bound(c.m, c.want+1, 1), 1) && float64(c.m)-c.g.B*float64(c.want+1) > 0 {
				t.Errorf("MaxK(%+v, m=%d): k+1 still non-vacuous", c.g, c.m)
			}
		}
	}
}

func TestHeavyHitterBound(t *testing.T) {
	if got := core.HeavyHitterBound(1, 10, 100); got != 10 {
		t.Errorf("HeavyHitterBound = %v, want 10", got)
	}
	if got := core.HeavyHitterBound(1, 0, 100); !math.IsInf(got, 1) {
		t.Errorf("HeavyHitterBound(m=0) = %v, want +Inf", got)
	}
}

func TestTheorem2Guarantee(t *testing.T) {
	g := core.Theorem2Guarantee(1)
	if g.A != 1 || g.B != 2 {
		t.Errorf("Theorem2Guarantee(1) = %+v, want (1,2)", g)
	}
}

func TestSortEntries(t *testing.T) {
	es := []core.Entry[uint64]{{Item: 1, Count: 2}, {Item: 2, Count: 9}, {Item: 3, Count: 5}}
	core.SortEntries(es)
	if es[0].Count != 9 || es[1].Count != 5 || es[2].Count != 2 {
		t.Errorf("SortEntries = %v", es)
	}
	ws := []core.WeightedEntry[uint64]{{Item: 1, Count: 1.5}, {Item: 2, Count: 7.5}}
	core.SortWeightedEntries(ws)
	if ws[0].Count != 7.5 {
		t.Errorf("SortWeightedEntries = %v", ws)
	}
}

func TestDiffersByExactlyOne(t *testing.T) {
	a := core.CounterState[uint64]{1: 5, 2: 3}
	b := core.CounterState[uint64]{1: 4, 2: 3}
	if !core.DiffersByExactlyOne(a, b, 1) {
		t.Error("expected difference of exactly e_1")
	}
	if core.DiffersByExactlyOne(a, b, 2) {
		t.Error("difference attributed to wrong item")
	}
	if core.DiffersByExactlyOne(a, core.CounterState[uint64]{1: 4}, 1) {
		t.Error("different supports accepted")
	}
	if core.DiffersByExactlyOne(core.CounterState[uint64]{1: 5, 2: 4}, b, 1) {
		t.Error("two differences accepted")
	}
	if core.DiffersByExactlyOne(a, core.CounterState[uint64]{1: 4, 3: 3}, 1) {
		t.Error("mismatched keys accepted")
	}
}

func TestStateOfAndFeed(t *testing.T) {
	alg := spacesaving.New[uint64](4)
	core.Feed[uint64](alg, []uint64{1, 1, 2, 3})
	st := core.StateOf[uint64](alg)
	if st[1] != 2 || st[2] != 1 || st[3] != 1 {
		t.Errorf("StateOf = %v", st)
	}
}

func TestMaxError(t *testing.T) {
	alg := frequent.New[uint64](8)
	core.Feed[uint64](alg, []uint64{0, 0, 0, 1})
	// freq vector for universe of 3: [3, 1, 0]; estimates exact (under
	// capacity), so MaxError = 0.
	if got := core.MaxError(alg, []float64{3, 1, 0}); got != 0 {
		t.Errorf("MaxError = %v, want 0", got)
	}
	if got := core.MaxError(alg, []float64{3, 1, 4}); got != 4 {
		t.Errorf("MaxError = %v, want 4 (unstored item)", got)
	}
}

func TestGuaranteePrefixMakesItemGuaranteed(t *testing.T) {
	// A prefix built by GuaranteePrefix must leave the item with a large
	// stored count under both algorithms, and the count must survive any
	// suffix of the declared length.
	noise := make([]uint64, 50)
	for i := range noise {
		noise[i] = uint64(100 + i)
	}
	const m, suffixLen = 8, 40
	prefix := core.GuaranteePrefix[uint64](7, noise, suffixLen, m)
	suffix := make([]uint64, suffixLen)
	for i := range suffix {
		suffix[i] = uint64(200 + i%17)
	}
	algs := map[string]core.Algorithm[uint64]{
		"frequent":    frequent.New[uint64](m),
		"spacesaving": spacesaving.New[uint64](m),
	}
	for name, alg := range algs {
		core.Feed(alg, prefix)
		core.Feed(alg, suffix)
		if alg.Estimate(7) == 0 {
			t.Errorf("%s: item 7 evicted despite guarantee prefix", name)
		}
	}
}

func TestGuaranteePrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GuaranteePrefix(m=1) did not panic")
		}
	}()
	core.GuaranteePrefix[uint64](1, nil, 5, 1)
}

func TestHeavyTolerancePropertyRandomStreams(t *testing.T) {
	// Theorem 1 on randomized inputs: for random noise and suffix
	// streams, inserting one extra occurrence of a prefix-guaranteed
	// element changes the final counter vector by exactly e_i, for both
	// algorithms and the deterministic heap variant.
	err := quick.Check(func(noiseRaw, suffixRaw []uint8, mRaw uint8) bool {
		m := int(mRaw)%6 + 2 // m >= 2 for GuaranteePrefix
		noise := make([]uint64, len(noiseRaw))
		for i, b := range noiseRaw {
			noise[i] = 100 + uint64(b)%20
		}
		suffix := make([]uint64, len(suffixRaw))
		for i, b := range suffixRaw {
			suffix[i] = 200 + uint64(b)%20
		}
		const item = 42
		prefix := core.GuaranteePrefix[uint64](item, noise, len(suffix), m)
		factories := []func() core.Algorithm[uint64]{
			func() core.Algorithm[uint64] { return frequent.New[uint64](m) },
			func() core.Algorithm[uint64] { return spacesaving.New[uint64](m) },
			func() core.Algorithm[uint64] { return spacesaving.NewHeap[uint64](m) },
		}
		for _, factory := range factories {
			if !core.CheckHeavyTolerance(factory, prefix, item, suffix) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckHeavyToleranceOnBothAlgorithms(t *testing.T) {
	// Theorem 1: FREQUENT and SPACESAVING are heavy-tolerant. Verify the
	// counter-vector invariant on a concrete prefix-guaranteed element.
	noise := []uint64{3, 4, 5, 3, 4, 6, 7, 8, 9, 10, 11, 3, 3, 4}
	suffix := []uint64{5, 6, 12, 13, 14, 15, 3, 3, 16, 17, 18, 5, 5, 19}
	const m = 5
	prefix := core.GuaranteePrefix[uint64](42, noise, len(suffix), m)

	factories := map[string]func() core.Algorithm[uint64]{
		"frequent":         func() core.Algorithm[uint64] { return frequent.New[uint64](m) },
		"spacesaving-list": func() core.Algorithm[uint64] { return spacesaving.New[uint64](m) },
		"spacesaving-heap": func() core.Algorithm[uint64] { return spacesaving.NewHeap[uint64](m) },
	}
	for name, factory := range factories {
		if !core.CheckHeavyTolerance(factory, prefix, 42, suffix) {
			t.Errorf("%s: heavy-tolerance invariant violated", name)
		}
	}
}
