// Package core defines the counter-algorithm contract shared by every
// algorithm in the repository, together with the error-guarantee
// arithmetic of Section 2 of the paper: the heavy-hitter guarantee
// (Definition 1), the k-tail guarantee (Definition 2) and the bounds they
// imply.
//
// The paper's class of Heavy-Tolerant Counter (HTC) algorithms is captured
// operationally: an Algorithm exposes its full counter state (Entries), so
// the heavy-tolerance property of Definition 4 — extra occurrences of a
// prefix-guaranteed element leave all other errors unchanged — can be
// verified experimentally by the CheckHeavyTolerance helper.
package core

import (
	"cmp"
	"math"
	"slices"
)

// Entry is one stored counter: an item together with its estimated count.
// Err carries per-entry overestimation metadata where the algorithm tracks
// it (SpaceSaving's ε_i, the value of the evicted counter when the item
// entered the frequent set); it is zero for underestimating algorithms.
type Entry[K comparable] struct {
	Item  K
	Count uint64
	Err   uint64
}

// Algorithm is the unit-weight counter-algorithm contract (the paper's
// model of Section 2: a vector of at most m non-zero counters updated per
// arrival).
type Algorithm[K comparable] interface {
	// Update processes one occurrence of item.
	//hh:noalloc
	Update(item K)
	// Estimate returns the current estimate f̂ of item's frequency
	// (zero if the item is not stored).
	//hh:noalloc
	Estimate(item K) uint64
	// Entries returns a snapshot of the stored counters sorted by
	// decreasing count (ties in unspecified order). The caller owns the
	// returned slice.
	Entries() []Entry[K]
	// Capacity returns m, the maximum number of counters.
	Capacity() int
	// Len returns the number of currently stored counters (|T|).
	Len() int
	// N returns the number of stream elements processed.
	N() uint64
	// Reset restores the empty state, retaining capacity.
	//hh:noalloc
	Reset()
}

// WeightedEntry is one stored counter of a real-valued update algorithm
// (Section 6.1).
type WeightedEntry[K comparable] struct {
	Item  K
	Count float64
	Err   float64
}

// WeightedAlgorithm is the real-valued update contract of Section 6.1:
// each arrival carries a positive real weight b_i.
type WeightedAlgorithm[K comparable] interface {
	// UpdateWeighted processes b occurrences' worth of item; b must be
	// positive.
	//hh:noalloc
	UpdateWeighted(item K, b float64)
	// EstimateWeighted returns the current estimate of item's total
	// weight.
	//hh:noalloc
	EstimateWeighted(item K) float64
	// WeightedEntries snapshots the stored counters, sorted by
	// decreasing count.
	WeightedEntries() []WeightedEntry[K]
	// Capacity returns m.
	Capacity() int
	// Len returns |T|.
	Len() int
	// TotalWeight returns Σ b_i processed so far (F1).
	TotalWeight() float64
	// Reset restores the empty state.
	//hh:noalloc
	Reset()
}

// TailGuarantee carries the constants (A, B) of a k-tail guarantee
// (Definition 2): for every item, δ_i ≤ A·F1^res(k) / (m − B·k).
type TailGuarantee struct {
	A, B float64
}

// Bound evaluates the k-tail error bound A·res1/(m − B·k) for a counter
// budget m. It returns +Inf when the denominator is non-positive (the
// guarantee is vacuous for such k).
func (g TailGuarantee) Bound(m, k int, res1 float64) float64 {
	den := float64(m) - g.B*float64(k)
	if den <= 0 {
		return math.Inf(1)
	}
	return g.A * res1 / den
}

// MaxK returns the largest k for which the guarantee is non-vacuous at
// counter budget m (i.e. m − B·k > 0).
func (g TailGuarantee) MaxK(m int) int {
	if g.B <= 0 {
		return m
	}
	k := int(math.Ceil(float64(m)/g.B)) - 1
	if k < 0 {
		return 0
	}
	return k
}

// HeavyHitterBound evaluates the Definition 1 bound A·F1/m — the 0-tail
// guarantee every algorithm in the paper starts from.
func HeavyHitterBound(a float64, m int, f1 float64) float64 {
	if m <= 0 {
		return math.Inf(1)
	}
	return a * f1 / float64(m)
}

// Theorem2Guarantee maps a heavy-hitter guarantee with constant A to the
// k-tail guarantee (A, 2A) that Theorem 2 proves for every heavy-tolerant
// algorithm.
func Theorem2Guarantee(a float64) TailGuarantee {
	return TailGuarantee{A: a, B: 2 * a}
}

// SortEntries sorts entries in place by decreasing count; ties are broken
// by insertion order of the slice (stable). It performs no allocations,
// so hot query paths can sort into reused buffers.
//
//hh:noalloc
func SortEntries[K comparable](entries []Entry[K]) {
	slices.SortStableFunc(entries, func(a, b Entry[K]) int {
		return cmp.Compare(b.Count, a.Count)
	})
}

// SortWeightedEntries sorts weighted entries in place by decreasing count,
// stably and without allocating. (Counts are never NaN: every update
// path rejects non-finite weights.)
//
//hh:noalloc
func SortWeightedEntries[K comparable](entries []WeightedEntry[K]) {
	slices.SortStableFunc(entries, func(a, b WeightedEntry[K]) int {
		return cmp.Compare(b.Count, a.Count)
	})
}

// MaxError returns the largest |f_i − f̂_i| over the universe [0, n),
// given exact frequencies freq (indexed by item) and the algorithm's
// estimates. It covers unstored items, whose estimate is zero.
func MaxError(alg Algorithm[uint64], freq []float64) float64 {
	worst := 0.0
	for i, f := range freq {
		est := float64(alg.Estimate(uint64(i)))
		if d := math.Abs(f - est); d > worst {
			worst = d
		}
	}
	return worst
}

// Feed runs a whole unit-weight stream through the algorithm.
func Feed[K comparable](alg Algorithm[K], items []K) {
	for _, x := range items {
		alg.Update(x)
	}
}
