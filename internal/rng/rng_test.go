package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds produced %d/100 equal outputs", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical splitmix64.c.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	src := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := src.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	src := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 draws = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShuffleZeroAndOne(t *testing.T) {
	src := New(5)
	// Must not call swap at all.
	src.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	src.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestExpFloat64Positive(t *testing.T) {
	src := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := src.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64() = %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean of ExpFloat64 draws = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64n(1000003)
	}
	_ = sink
}
