// Package rng provides a small, fully deterministic pseudo-random number
// generator used by stream generators and hashing seed derivation.
//
// The generator is xoshiro256** seeded via splitmix64, implemented from
// scratch so that experiment outputs are reproducible across Go releases
// (the stdlib math/rand stream is not guaranteed stable between versions).
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances *state by the splitmix64 increment and returns the
// next output. It is used to expand a single seed word into arbitrarily
// many well-distributed words (e.g. to seed xoshiro or hash families).
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single word. Distinct seeds yield
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	// Guard against the (astronomically unlikely via splitmix64, but cheap
	// to exclude) all-zero state, which is a fixed point of xoshiro.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Uint64 returns the next 64 uniformly distributed bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (src *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		// Rejection zone: recompute threshold only on the slow path.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(src.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Shuffle performs a Fisher-Yates shuffle over n elements, calling swap for
// each transposition.
func (src *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		if i != j {
			swap(i, j)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	src.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inversion. Used by weighted stream generators.
func (src *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], avoiding log(0).
	u := 1 - src.Float64()
	return -math.Log(u)
}
