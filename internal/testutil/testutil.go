// Package testutil holds small helpers shared by tests across the
// module, starting with the build-tag-derived RaceEnabled constant
// (race_on.go / race_off.go) that allocation-accounting tests consult
// before trusting testing.AllocsPerRun.
package testutil
