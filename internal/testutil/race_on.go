//go:build race

package testutil

// RaceEnabled reports that the race detector is instrumenting this
// build. Allocation-regression tests skip under it: the instrumentation
// itself allocates (and sync.Pool deliberately degrades), so
// testing.AllocsPerRun measures the detector, not the code.
const RaceEnabled = true
