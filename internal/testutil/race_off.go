//go:build !race

package testutil

// RaceEnabled reports whether the race detector is instrumenting this
// build; see race_on.go.
const RaceEnabled = false
