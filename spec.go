package heavyhitters

import (
	"fmt"
	"time"
)

// Spec is the JSON-portable form of a summary configuration: the
// config-file counterpart of the Option list New takes. It exists for
// deployments that construct summaries from declarative configuration —
// hhserverd's registry config is a map of names to Specs — and for any
// tool that wants to ship a summary recipe over the wire.
//
// The zero Spec resolves exactly like the zero-option New call: an
// unsharded SPACESAVING summary with the default counter budget. Fields
// mirror the options one-to-one; see each option's documentation for
// the semantics.
type Spec struct {
	// Algorithm names the backing algorithm as accepted by ParseAlgo
	// ("spacesaving" | "frequent" | "lossycounting" | "countmin" |
	// "countsketch"); empty means spacesaving.
	Algorithm string `json:"algorithm,omitempty"`
	// Capacity is the counter budget m (WithCapacity). Mutually
	// exclusive with Epsilon/Phi.
	Capacity int `json:"capacity,omitempty"`
	// Epsilon and Phi size the summary from accuracy targets
	// (WithErrorBudget); Phi may be zero to size from Epsilon alone.
	Epsilon float64 `json:"epsilon,omitempty"`
	Phi     float64 `json:"phi,omitempty"`
	// Shards partitions the summary across p locked shards (WithShards).
	Shards int `json:"shards,omitempty"`
	// Window covers the last n items with an epoch ring (WithWindow);
	// TickWindow covers a wall-clock duration instead (WithTickWindow,
	// Go duration syntax, e.g. "5m"); Epochs sets the ring size E
	// (WithEpochs).
	Window     uint64 `json:"window,omitempty"`
	TickWindow string `json:"tick_window,omitempty"`
	Epochs     int    `json:"epochs,omitempty"`
	// Decay applies exponential decay with rate lambda (WithDecay).
	Decay float64 `json:"decay,omitempty"`
	// Weighted selects the real-valued Section 6.1 variants
	// (WithWeighted).
	Weighted bool `json:"weighted,omitempty"`
	// Concurrent wraps the composition in the lock-free read tier
	// (WithConcurrent).
	Concurrent bool `json:"concurrent,omitempty"`
	// Pipeline runs each shard behind a single-writer worker fed by a
	// bounded ring (WithPipeline); requires Shards >= 1.
	Pipeline bool `json:"pipeline,omitempty"`
	// BorrowedKeys makes the summary clone retained keys so ingest
	// paths may alias keys into reused buffers (WithBorrowedKeys).
	BorrowedKeys bool `json:"borrowed_keys,omitempty"`
	// Arena stores string keys in pointer-free byte slabs (WithArena).
	// A no-op for configurations the arena does not apply to — hhserverd
	// sets it on every string-keyed counter summary.
	Arena bool `json:"arena,omitempty"`
	// Seed fixes the hash/sketch seed (WithSeed); 0 means unset.
	Seed uint64 `json:"seed,omitempty"`
	// Ephemeral excludes the summary from durability: on a daemon with
	// a data directory configured, an ephemeral summary is neither
	// WAL-logged nor snapshotted and restarts empty. Construction
	// ignores it (there is no corresponding Option) — it is a serving
	// policy, read by hhserverd's registry.
	Ephemeral bool `json:"ephemeral,omitempty"`
	// Depth sets the sketch row count (WithDepth); 0 means default.
	Depth int `json:"depth,omitempty"`
}

// Options maps the Spec to the Option list New understands. Name and
// syntax errors (an unknown algorithm, an unparseable tick_window) are
// reported here; combination errors (say, WithDecay on LOSSYCOUNTING)
// surface as New's usual validation panic, exactly as they would with
// hand-written options.
func (sp Spec) Options() ([]Option, error) {
	var opts []Option
	if sp.Algorithm != "" {
		a, err := ParseAlgo(sp.Algorithm)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithAlgorithm(a))
	}
	if sp.Capacity != 0 {
		opts = append(opts, WithCapacity(sp.Capacity))
	}
	if sp.Epsilon != 0 || sp.Phi != 0 {
		opts = append(opts, WithErrorBudget(sp.Epsilon, sp.Phi))
	}
	if sp.Shards != 0 {
		opts = append(opts, WithShards(sp.Shards))
	}
	if sp.Window != 0 {
		opts = append(opts, WithWindow(sp.Window))
	}
	if sp.TickWindow != "" {
		d, err := time.ParseDuration(sp.TickWindow)
		if err != nil {
			return nil, fmt.Errorf("heavyhitters: tick_window: %v", err)
		}
		opts = append(opts, WithTickWindow(d, nil))
	}
	if sp.Epochs != 0 {
		opts = append(opts, WithEpochs(sp.Epochs))
	}
	if sp.Decay != 0 {
		opts = append(opts, WithDecay(sp.Decay))
	}
	if sp.Weighted {
		opts = append(opts, WithWeighted())
	}
	if sp.Concurrent {
		opts = append(opts, WithConcurrent())
	}
	if sp.Pipeline {
		opts = append(opts, WithPipeline())
	}
	if sp.BorrowedKeys {
		opts = append(opts, WithBorrowedKeys())
	}
	if sp.Arena {
		opts = append(opts, WithArena())
	}
	if sp.Seed != 0 {
		opts = append(opts, WithSeed(sp.Seed))
	}
	if sp.Depth != 0 {
		opts = append(opts, WithDepth(sp.Depth))
	}
	return opts, nil
}

// NewFromSpec builds a Summary from a Spec, converting New's validation
// panics into errors — the constructor for callers holding untrusted
// declarative configuration (a daemon loading a config file must reject
// a bad stanza, not crash).
func NewFromSpec[K comparable](sp Spec) (s Summary[K], err error) {
	opts, err := sp.Options()
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return New[K](opts...), nil
}
