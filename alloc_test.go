package heavyhitters_test

// Allocation-regression tests: the ingest hot path (Update / AddN via
// UpdateWeighted) of every counter backend and the TopAppend query path
// with a reused buffer must not allocate at steady state. These pin the
// slab-allocated bucket-list layout and the reused-scratch query
// surface; the CI perf gate enforces the same property on the hhbench
// suite, but testing.AllocsPerRun catches it at -short test speed.

import (
	"testing"

	hh "repro"
	"repro/internal/stream"
	"repro/internal/testutil"
)

// counterAlgos (declared in summary_test.go) are also exactly the
// backends whose hot paths are required to be allocation-free.

// allocStream exercises insert, bump and eviction paths: Zipf-skewed
// over a universe much larger than the counter budget.
func allocStream() []uint64 {
	return stream.Zipf(10_000, 1.1, 1<<14, stream.OrderRandom, 42)
}

// assertZeroAllocs warms the summary with one full pass (filling the
// counters and growing the key map to steady state), then asserts the
// hot loop allocates nothing.
func assertZeroAllocs(t *testing.T, name string, warm, loop func()) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; allocation accounting is meaningless under -race")
	}
	warm()
	if avg := testing.AllocsPerRun(10, loop); avg != 0 {
		t.Errorf("%s: %.4f allocs per run at steady state, want 0", name, avg)
	}
}

func TestSummaryUpdateZeroAllocs(t *testing.T) {
	s := allocStream()
	for _, a := range counterAlgos {
		sum := hh.New[uint64](hh.WithAlgorithm(a), hh.WithCapacity(256))
		assertZeroAllocs(t, a.String(),
			func() { sum.UpdateBatch(s) },
			func() {
				for _, x := range s[:4096] {
					sum.Update(x)
				}
			})
	}
}

// TestSummaryAddNZeroAllocs drives the native integral-weight AddN path
// of each backend through UpdateWeighted.
func TestSummaryAddNZeroAllocs(t *testing.T) {
	s := allocStream()
	for _, a := range counterAlgos {
		sum := hh.New[uint64](hh.WithAlgorithm(a), hh.WithCapacity(256))
		assertZeroAllocs(t, a.String(),
			func() { sum.UpdateBatch(s) },
			func() {
				for _, x := range s[:4096] {
					sum.UpdateWeighted(x, 3)
				}
			})
	}
}

// TestCounterAddNZeroAllocs pins the slab structures directly, without
// the Summary wrapper in between.
func TestCounterAddNZeroAllocs(t *testing.T) {
	s := allocStream()
	type counter interface {
		Update(uint64)
		AddN(uint64, uint64)
	}
	for _, tc := range []struct {
		name string
		alg  counter
	}{
		{"spacesaving.StreamSummary", hh.NewSpaceSaving[uint64](256)},
		{"frequent.Frequent", hh.NewFrequent[uint64](256)},
		{"lossycounting.LossyCounting", hh.NewLossyCounting[uint64](256)},
	} {
		assertZeroAllocs(t, tc.name,
			func() {
				for _, x := range s {
					tc.alg.Update(x)
				}
			},
			func() {
				for _, x := range s[:2048] {
					tc.alg.Update(x)
					tc.alg.AddN(x, 5)
				}
			})
	}
}

// TestTopAppendZeroAllocs asserts the query path allocates nothing once
// the caller reuses a buffer — the contract that lets a poller read the
// top-k every few milliseconds without GC pressure.
func TestTopAppendZeroAllocs(t *testing.T) {
	s := allocStream()
	for _, a := range counterAlgos {
		sum := hh.New[uint64](hh.WithAlgorithm(a), hh.WithCapacity(256))
		sum.UpdateBatch(s)
		var buf []hh.WeightedEntry[uint64]
		assertZeroAllocs(t, a.String(),
			func() { buf = sum.TopAppend(buf[:0], 10) },
			func() {
				buf = sum.TopAppend(buf[:0], 10)
				if len(buf) != 10 {
					t.Fatalf("top-10 returned %d entries", len(buf))
				}
			})
	}
}

// TestWindowRotationZeroAllocs pins the window layer's steady-state
// contract: the ingest loop — including every epoch rotation it
// triggers (the loop crosses an epoch boundary every 512 items) — must
// not allocate once the ring is warm. Rotation recycles the evicted
// epoch via the slab-retaining Reset; an allocation here means a reset
// path regressed to rebuilding storage.
func TestWindowRotationZeroAllocs(t *testing.T) {
	s := allocStream()
	for _, tc := range []struct {
		name string
		opts []hh.Option
	}{
		{"spacesaving", []hh.Option{hh.WithAlgorithm(hh.AlgoSpaceSaving)}},
		{"frequent", []hh.Option{hh.WithAlgorithm(hh.AlgoFrequent)}},
		{"lossycounting", []hh.Option{hh.WithAlgorithm(hh.AlgoLossyCounting)}},
		{"weighted-spacesaving", []hh.Option{hh.WithWeighted()}},
		{"weighted-frequent", []hh.Option{hh.WithAlgorithm(hh.AlgoFrequent), hh.WithWeighted()}},
	} {
		opts := append([]hh.Option{hh.WithCapacity(128), hh.WithWindow(2048), hh.WithEpochs(4)}, tc.opts...)
		sum := hh.New[uint64](opts...)
		assertZeroAllocs(t, tc.name,
			func() { sum.UpdateBatch(s) },
			func() {
				for _, x := range s[:4096] { // 8 rotations per run
					sum.Update(x)
				}
			})
	}
}

// TestDecayUpdateZeroAllocs: the decay tier's hot path (including the
// periodic renormalization sweep) stays allocation-free too.
func TestDecayUpdateZeroAllocs(t *testing.T) {
	s := allocStream()
	sum := hh.New[uint64](hh.WithCapacity(128), hh.WithDecay(0.1))
	assertZeroAllocs(t, "decay",
		func() { sum.UpdateBatch(s) },
		func() {
			for _, x := range s[:4096] { // λ·4096 ≈ 410: > one renormalization per run
				sum.Update(x)
			}
		})
}

// TestConcurrentTierIngestZeroAllocs pins the concurrency tier's write
// path: the striped-lock ingest (per-item and batch, unsharded and
// sharded) adds only a mutex handoff and an atomic generation bump on
// top of the wrapped composition — no allocations. Reads are excluded
// deliberately: a snapshot rebuild allocates its immutable view by
// design, amortized across all reads until the generation moves.
func TestConcurrentTierIngestZeroAllocs(t *testing.T) {
	s := allocStream()
	for _, tc := range []struct {
		name string
		opts []hh.Option
	}{
		{"concurrent", []hh.Option{hh.WithConcurrent()}},
		{"concurrent-sharded", []hh.Option{hh.WithConcurrent(), hh.WithShards(8)}},
		{"concurrent-window", []hh.Option{hh.WithConcurrent(), hh.WithWindow(2048), hh.WithEpochs(4)}},
	} {
		sum := hh.New[uint64](append([]hh.Option{hh.WithCapacity(256)}, tc.opts...)...)
		assertZeroAllocs(t, tc.name,
			func() { sum.UpdateBatch(s) },
			func() {
				sum.UpdateBatch(s[:2048])
				for _, x := range s[:2048] {
					sum.Update(x)
				}
			})
	}
}

// TestShardedHotPathZeroAllocs covers the concurrent backend: batch
// ingestion partitions through pooled scratch buffers and TopAppend
// snapshots through per-shard reused scratch, so both stay
// allocation-free at steady state too.
func TestShardedHotPathZeroAllocs(t *testing.T) {
	s := allocStream()
	sum := hh.New[uint64](hh.WithCapacity(256), hh.WithShards(8))
	var buf []hh.WeightedEntry[uint64]
	assertZeroAllocs(t, "sharded UpdateBatch+TopAppend",
		func() {
			sum.UpdateBatch(s)
			buf = sum.TopAppend(buf[:0], 10)
		},
		func() {
			sum.UpdateBatch(s[:4096])
			buf = sum.TopAppend(buf[:0], 10)
		})
}

// TestCoalescedIngestZeroAllocs pins the in-batch coalescing path: the
// open-addressing scratch table, per-shard key/hash/count arrays, and
// the AddNBatch two-pass kernels must all run out of pooled memory at
// steady state — on dup-heavy batches and on the all-distinct worst
// case alike.
func TestCoalescedIngestZeroAllocs(t *testing.T) {
	dup := make([]uint64, 4096)
	for i := range dup {
		dup[i] = uint64(i % 37) // ~110 copies of each key per batch
	}
	distinct := make([]uint64, 4096)
	for i := range distinct {
		distinct[i] = uint64(i) // every key unique: coalescing finds nothing
	}
	for _, tc := range []struct {
		name  string
		batch []uint64
		algos []hh.Algo
	}{
		// Every counter algorithm shares the pooled partition scratch.
		{"dup-heavy", dup, counterAlgos},
		// The all-distinct worst case is a property of the coalescing
		// kernel, which only SPACESAVING and FREQUENT take (LOSSYCOUNTING
		// is excluded from coalescing, and its map-backed core can grow
		// overflow buckets under all-distinct churn depending on the
		// process hash seed — not a kernel regression).
		{"all-distinct", distinct, []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent}},
	} {
		for _, a := range tc.algos {
			sum := hh.New[uint64](hh.WithAlgorithm(a), hh.WithCapacity(256), hh.WithShards(8))
			assertZeroAllocs(t, a.String()+"/"+tc.name,
				func() { sum.UpdateBatch(tc.batch) },
				func() { sum.UpdateBatch(tc.batch) })
		}
	}
}

// TestPipelinedIngestZeroAllocs pins the WithPipeline enqueue path:
// producer-side partition+coalesce scratch, ring-slot key/count/hash
// arrays, and the flush barrier are all reused, so steady-state
// pipelined ingest allocates nothing on either side of the rings (the
// worker's kernel work is counted too — AllocsPerRun reads the global
// allocation counters, and the Flush in the loop drains every job).
func TestPipelinedIngestZeroAllocs(t *testing.T) {
	batch := make([]uint64, 4096)
	for i := range batch {
		batch[i] = uint64(i % 37)
	}
	sum := hh.New[uint64](hh.WithCapacity(256), hh.WithShards(4), hh.WithPipeline())
	assertZeroAllocs(t, "pipelined UpdateBatch+Flush",
		func() {
			// Steady state here means every ring slot's arrays have
			// grown to the sub-batch high-water mark: jobs rotate
			// through the whole ring, so warm one full lap.
			for i := 0; i < 80; i++ {
				sum.UpdateBatch(batch)
			}
			sum.Flush()
		},
		func() {
			sum.UpdateBatch(batch)
			sum.Flush()
		})
}
