package heavyhitters_test

// Tests for the WithConcurrent tier: single-threaded equivalence with
// the unwrapped compositions, write/Reset visibility through the
// generation-tracked snapshot, certain bounds, consistent pinned
// compound queries (HeavyHitters, Merge, Encode), and the -race
// regression suite for mixed reader/writer traffic — including the
// window tick rotation driven from a query goroutine, which before
// this tier had never run under -race with concurrent writers.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

// concurrentVariants pairs each backend composition with its
// WithConcurrent-wrapped twin.
func concurrentVariants() map[string][]hh.Option {
	return map[string][]hh.Option{
		"unsharded":      {hh.WithCapacity(128)},
		"frequent":       {hh.WithAlgorithm(hh.AlgoFrequent), hh.WithCapacity(128)},
		"lossycounting":  {hh.WithAlgorithm(hh.AlgoLossyCounting), hh.WithCapacity(128)},
		"weighted":       {hh.WithWeighted(), hh.WithCapacity(128)},
		"sharded":        {hh.WithCapacity(128), hh.WithShards(4)},
		"window":         {hh.WithCapacity(128), hh.WithWindow(8192), hh.WithEpochs(4)},
		"sharded-window": {hh.WithCapacity(128), hh.WithWindow(8192), hh.WithEpochs(4), hh.WithShards(4)},
		"decay":          {hh.WithCapacity(128), hh.WithDecay(0.0001)},
	}
}

// TestConcurrentTierMatchesPlain drives the same stream through each
// composition with and without the concurrency tier, single-threaded:
// estimates, totals and rankings must be identical (the snapshot is a
// faithful mirror), and the concurrent bounds must contain the plain
// ones (identical for unsharded compositions; a sharded snapshot's
// upper bounds may widen by the other shards' slack, never tighten).
func TestConcurrentTierMatchesPlain(t *testing.T) {
	str := stream.Zipf(2000, 1.1, 60000, stream.OrderRandom, 7)
	for name, opts := range concurrentVariants() {
		t.Run(name, func(t *testing.T) {
			plain := hh.New[uint64](opts...)
			conc := hh.New[uint64](append([]hh.Option{hh.WithConcurrent()}, opts...)...)
			for i, x := range str {
				if i%3 == 0 {
					plain.Update(x)
					conc.Update(x)
				} else if i%3 == 1 {
					plain.UpdateBatch(str[i : i+1])
					conc.UpdateBatch(str[i : i+1])
				} else {
					plain.UpdateWeighted(x, 2)
					conc.UpdateWeighted(x, 2)
				}
			}
			if pn, cn := plain.N(), conc.N(); pn != cn {
				t.Fatalf("N: plain %v, concurrent %v", pn, cn)
			}
			if pl, cl := plain.Len(), conc.Len(); pl != cl {
				t.Fatalf("Len: plain %d, concurrent %d", pl, cl)
			}
			pt, ct := plain.Top(20), conc.Top(20)
			if len(pt) != len(ct) {
				t.Fatalf("Top lengths differ: %d vs %d", len(pt), len(ct))
			}
			for i := range pt {
				// Counts must agree rank by rank; at a tied boundary the two
				// paths may break the tie differently (the snapshot truncates
				// a full sort, the live path a partial top-k), so items are
				// checked through their estimates instead.
				if pt[i].Count != ct[i].Count {
					t.Fatalf("Top[%d]: plain %+v, concurrent %+v", i, pt[i], ct[i])
				}
				if pe, ce := plain.Estimate(ct[i].Item), conc.Estimate(ct[i].Item); pe != ce {
					t.Fatalf("Top[%d] item %d: plain estimate %v, concurrent %v", i, ct[i].Item, pe, ce)
				}
			}
			// Bounds may differ by float rounding only where the snapshot
			// folds scale factors in a different association order (decay).
			const ulp = 1e-9
			for i := uint64(0); i < 2000; i += 17 {
				if pe, ce := plain.Estimate(i), conc.Estimate(i); pe != ce {
					t.Fatalf("Estimate(%d): plain %v, concurrent %v", i, pe, ce)
				}
				plo, phi := plain.EstimateBounds(i)
				clo, chi := conc.EstimateBounds(i)
				if clo > plo+ulp*(1+plo) || chi < phi-ulp*(1+phi) {
					t.Fatalf("bounds of %d narrowed: plain [%v, %v], concurrent [%v, %v]", i, plo, phi, clo, chi)
				}
			}
			pg, pok := plain.Guarantee()
			cg, cok := conc.Guarantee()
			if pok != cok || pg != cg {
				t.Fatalf("Guarantee: plain %v/%v, concurrent %v/%v", pg, pok, cg, cok)
			}
			pw, pwok := plain.Window()
			cw, cwok := conc.Window()
			if pwok != cwok || pw != cw {
				t.Fatalf("Window: plain %+v/%v, concurrent %+v/%v", pw, pwok, cw, cwok)
			}
		})
	}
}

// TestConcurrentBoundsCertain checks the snapshot-derived intervals
// against exact frequencies across the whole universe, for stored and
// absent items alike.
func TestConcurrentBoundsCertain(t *testing.T) {
	const universe = 3000
	str := stream.Zipf(universe, 1.1, 80000, stream.OrderRandom, 11)
	truth := exact.FromStream(str)
	for name, opts := range concurrentVariants() {
		if name == "window" || name == "sharded-window" || name == "decay" {
			continue // bounds there are against the covered suffix, not the whole stream
		}
		t.Run(name, func(t *testing.T) {
			s := hh.New[uint64](append([]hh.Option{hh.WithConcurrent()}, opts...)...)
			s.UpdateBatch(str)
			for i := uint64(0); i < universe; i++ {
				lo, hi := s.EstimateBounds(i)
				if f := truth.Freq(i); lo > f || hi < f {
					t.Fatalf("item %d: [%v, %v] excludes true %v", i, lo, hi, f)
				}
			}
		})
	}
}

// TestConcurrentTierFreshness pins the generation contract: every
// completed write is visible to the next query, through every write
// entry point.
func TestConcurrentTierFreshness(t *testing.T) {
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(16), hh.WithShards(2))
	s.Update(1)
	if got := s.Estimate(1); got != 1 {
		t.Fatalf("after Update: Estimate = %v, want 1", got)
	}
	s.UpdateBatch([]uint64{1, 2})
	if got := s.Estimate(1); got != 2 {
		t.Fatalf("after UpdateBatch: Estimate = %v, want 2", got)
	}
	s.UpdateWeighted(1, 3)
	if got := s.Estimate(1); got != 5 {
		t.Fatalf("after UpdateWeighted: Estimate = %v, want 5", got)
	}
	if got := s.N(); got != 6 {
		t.Fatalf("N = %v, want 6", got)
	}
}

// TestConcurrentTierReset: the snapshot generation must invalidate on
// Reset, so a post-Reset query never reports pre-Reset entries — even
// though a query immediately before the Reset warmed the snapshot.
func TestConcurrentTierReset(t *testing.T) {
	for name, opts := range concurrentVariants() {
		t.Run(name, func(t *testing.T) {
			s := hh.New[uint64](append([]hh.Option{hh.WithConcurrent()}, opts...)...)
			s.UpdateBatch(stream.Zipf(100, 1.2, 5000, stream.OrderRandom, 3))
			if s.N() == 0 || len(s.Top(5)) == 0 {
				t.Fatal("pre-Reset state empty")
			}
			s.Reset()
			if got := s.N(); got != 0 {
				t.Fatalf("post-Reset N = %v, want 0", got)
			}
			if top := s.Top(5); len(top) != 0 {
				t.Fatalf("post-Reset Top = %v, want empty", top)
			}
			if got := s.Estimate(0); got != 0 {
				t.Fatalf("post-Reset Estimate = %v, want 0", got)
			}
			if lo, hi := s.EstimateBounds(0); lo != 0 || hi != 0 {
				t.Fatalf("post-Reset bounds = [%v, %v], want [0, 0]", lo, hi)
			}
			s.Update(42)
			if got := s.Estimate(42); got != 1 {
				t.Fatalf("unusable after Reset: Estimate = %v", got)
			}
		})
	}
}

// TestConcurrentResetNeverServesStale hammers the reset-era contract
// under -race: while phase-2 writers ingest keys >= 1000 after a Reset,
// readers must never observe a phase-1 key (< 1000) — not even from the
// bounded-stale snapshot fallback.
func TestConcurrentResetNeverServesStale(t *testing.T) {
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64), hh.WithShards(4))
	for round := 0; round < 20; round++ {
		// Phase 1: pre-Reset keys, snapshot deliberately warmed.
		for i := uint64(0); i < 500; i++ {
			s.Update(i % 100)
		}
		s.TopAppend(nil, 10)
		s.Reset()

		// Phase 2: concurrent writers on disjoint keys plus readers that
		// must never see phase 1 again.
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				for i := uint64(0); i < 2000; i++ {
					s.Update(1000 + (seed*2000+i)%100)
				}
			}(uint64(g))
		}
		var rwg sync.WaitGroup
		stop := make(chan struct{})
		var violation atomic.Bool
		for r := 0; r < 2; r++ {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				var buf []hh.WeightedEntry[uint64]
				for {
					select {
					case <-stop:
						return
					default:
					}
					buf = s.TopAppend(buf[:0], 20)
					for _, e := range buf {
						if e.Item < 1000 {
							violation.Store(true)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(stop)
		rwg.Wait()
		if violation.Load() {
			t.Fatal("reader observed a pre-Reset entry after Reset returned")
		}
		s.Reset()
	}
}

// atomicClock is a -race-safe injectable clock for tick windows.
type atomicClock struct{ nanos atomic.Int64 }

func (c *atomicClock) now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *atomicClock) advance(d time.Duration) { c.nanos.Add(int64(d)) }
func newAtomicClock(start int64) *atomicClock {
	c := &atomicClock{}
	c.nanos.Store(start)
	return c
}

// TestConcurrentTickRotationRace is the PR 4 satellite regression: the
// PR 3 "rotation on queries" path — a tick window expiring epochs from
// a query — running under -race while writer goroutines ingest through
// the concurrency tier, unsharded and sharded.
func TestConcurrentTickRotationRace(t *testing.T) {
	for _, shards := range []int{0, 4} {
		name := "unsharded"
		opts := []hh.Option{hh.WithConcurrent(), hh.WithCapacity(64)}
		if shards > 0 {
			name = "sharded"
			opts = append(opts, hh.WithShards(shards))
		}
		t.Run(name, func(t *testing.T) {
			clock := newAtomicClock(0)
			s := hh.New[uint64](append(opts, hh.WithTickWindow(80*time.Millisecond, clock.now), hh.WithEpochs(4))...)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					str := stream.Zipf(300, 1.1, 4000, stream.OrderRandom, seed+1)
					for _, x := range str {
						select {
						case <-stop:
							return
						default:
						}
						s.Update(x)
					}
				}(uint64(g))
			}
			// The clock advances one epoch granularity at a time, so
			// queries keep triggering rotations while writers run.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					clock.advance(20 * time.Millisecond)
					time.Sleep(200 * time.Microsecond)
				}
			}()
			// Query goroutines: every read path, including the
			// rotation-triggering Window() and N().
			var rwg sync.WaitGroup
			for r := 0; r < 2; r++ {
				rwg.Add(1)
				go func(seed uint64) {
					defer rwg.Done()
					var buf []hh.WeightedEntry[uint64]
					for i := 0; i < 400; i++ {
						buf = s.TopAppend(buf[:0], 10)
						s.Estimate(seed)
						s.EstimateBounds(seed + 1)
						s.N()
						if ws, ok := s.Window(); ok && ws.Epochs != 4 {
							t.Errorf("Window.Epochs = %d, want 4", ws.Epochs)
							return
						}
						s.HeavyHitters(0.05)
						for range s.All() {
							break
						}
					}
				}(uint64(r))
			}
			rwg.Wait()
			close(stop)
			wg.Wait()
		})
	}
}

// TestConcurrentCountWindowRace: the count-window ring rotating on
// writes while readers poll, sharded, under -race.
func TestConcurrentCountWindowRace(t *testing.T) {
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64),
		hh.WithWindow(4096), hh.WithEpochs(4), hh.WithShards(4))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			str := stream.Zipf(300, 1.1, 8000, stream.OrderRandom, seed+9)
			for lo := 0; lo < len(str); lo += 256 {
				s.UpdateBatch(str[lo:min(lo+256, len(str))])
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf []hh.WeightedEntry[uint64]
		for i := 0; i < 500; i++ {
			buf = s.TopAppend(buf[:0], 10)
			s.Window()
			s.N()
		}
	}()
	wg.Wait()
	<-done
	if ws, ok := s.Window(); !ok || ws.Covered == 0 {
		t.Fatalf("Window after ingest = %+v, %v", ws, ok)
	}
}

// TestConcurrentTickWindowIdleExpiry: with no writes at all, the
// generation never moves — the snapshot must still expire on the tick
// clock so idle epochs age out of reads (served through a rebuild that
// rotates the ring).
func TestConcurrentTickWindowIdleExpiry(t *testing.T) {
	clock := newAtomicClock(0)
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64),
		hh.WithTickWindow(400*time.Millisecond, clock.now), hh.WithEpochs(4))
	for i := uint64(0); i < 1000; i++ {
		s.Update(i % 10)
	}
	if got := s.N(); got != 1000 {
		t.Fatalf("N = %v, want 1000", got)
	}
	// One epoch past: still covered (the ring holds 4 epochs).
	clock.advance(100 * time.Millisecond)
	if got := s.N(); got != 1000 {
		t.Fatalf("N after one epoch = %v, want 1000", got)
	}
	// The whole ring ages out with zero intervening writes.
	clock.advance(time.Second)
	if got := s.N(); got != 0 {
		t.Fatalf("N after ring aged out = %v, want 0", got)
	}
	if top := s.Top(5); len(top) != 0 {
		t.Fatalf("Top after ring aged out = %v, want empty", top)
	}
}

// TestConcurrentEncodeConsistent: Encode on a concurrent summary under
// active writers must always produce a decodable frame whose mass is
// consistent with its entries (one pinned snapshot, not a torn mix of
// generations); after quiescing, the final encode is exact.
func TestConcurrentEncodeConsistent(t *testing.T) {
	const writers, perW = 4, 30000
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(128), hh.WithShards(4))
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			str := stream.Zipf(500, 1.1, perW, stream.OrderRandom, seed+21)
			for lo := 0; lo < len(str); lo += 512 {
				s.UpdateBatch(str[lo:min(lo+512, len(str))])
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			var buf bytes.Buffer
			if err := s.Encode(&buf); err != nil {
				t.Errorf("mid-ingest Encode: %v", err)
				return
			}
			dec, err := hh.Decode[uint64](&buf)
			if err != nil {
				t.Errorf("mid-ingest Decode: %v", err)
				return
			}
			if n := dec.N(); n < 0 || n > writers*perW {
				t.Errorf("decoded N = %v outside [0, %d]", n, writers*perW)
				return
			}
			// The decoded counter mass can never exceed the decoded N —
			// that is what a single pinned snapshot guarantees.
			var stored float64
			for e := range dec.All() {
				stored += e.Count
			}
			if stored > dec.N()+1e-6 {
				t.Errorf("decoded stored mass %v exceeds N %v (torn snapshot)", stored, dec.N())
				return
			}
		}
	}()
	wg.Wait()
	<-done

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.N(), float64(writers*perW); got != want {
		t.Fatalf("quiesced decoded N = %v, want %v", got, want)
	}
}

// TestConcurrentWindowEncodeRoundTrip: the unsharded concurrent window
// keeps the resumable HHWIN2 ring frame (written under the write lock).
func TestConcurrentWindowEncodeRoundTrip(t *testing.T) {
	s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64),
		hh.WithWindow(4096), hh.WithEpochs(4))
	s.UpdateBatch(stream.Zipf(300, 1.1, 10000, stream.OrderRandom, 5))
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	dw, ok := dec.Window()
	if !ok {
		t.Fatal("decoded summary lost its window")
	}
	sw, _ := s.Window()
	if dw.Epochs != sw.Epochs || dw.Covered != sw.Covered {
		t.Fatalf("decoded window %+v, want %+v", dw, sw)
	}
	if dec.N() != s.N() {
		t.Fatalf("decoded N = %v, want %v", dec.N(), s.N())
	}
}

// TestConcurrentMergeUnderWrites: MergeSummaries pins each concurrent
// input to one snapshot; merging while writers race must yield a valid
// summary whose mass is a consistent intermediate value.
func TestConcurrentMergeUnderWrites(t *testing.T) {
	a := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64), hh.WithShards(2))
	b := hh.New[uint64](hh.WithCapacity(64))
	b.UpdateBatch(stream.Zipf(200, 1.1, 5000, stream.OrderRandom, 2))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		str := stream.Zipf(200, 1.1, 20000, stream.OrderRandom, 3)
		for _, x := range str {
			a.Update(x)
		}
	}()
	for i := 0; i < 10; i++ {
		m, err := hh.MergeSummaries(64, a, b)
		if err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
		if n := m.N(); n < 5000 || n > 25000 {
			t.Fatalf("merged N = %v outside [5000, 25000]", n)
		}
	}
	wg.Wait()
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.N(), float64(25000); got != want {
		t.Fatalf("quiesced merged N = %v, want %v", got, want)
	}
}

// TestConcurrentMixedReadersWriters is the general -race hammer across
// compositions: sustained multi-goroutine ingest with readers running
// every query concurrently.
func TestConcurrentMixedReadersWriters(t *testing.T) {
	for name, opts := range concurrentVariants() {
		t.Run(name, func(t *testing.T) {
			s := hh.New[uint64](append([]hh.Option{hh.WithConcurrent()}, opts...)...)
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					str := stream.Zipf(300, 1.1, 6000, stream.OrderRandom, seed+31)
					for lo := 0; lo < len(str); lo += 200 {
						s.UpdateBatch(str[lo:min(lo+200, len(str))])
					}
				}(uint64(g))
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				var buf []hh.WeightedEntry[uint64]
				for i := 0; i < 300; i++ {
					buf = s.TopAppend(buf[:0], 10)
					s.Estimate(uint64(i % 300))
					s.EstimateBounds(uint64(i % 300))
					s.HeavyHitters(0.05)
					s.N()
					s.Len()
					for range s.All() {
						break
					}
				}
			}()
			wg.Wait()
			<-done
			if s.N() == 0 {
				t.Fatal("no mass after concurrent ingest")
			}
		})
	}
}

// TestConcurrentNExactAfterQuiesce: N() must be exact the moment
// writers finish, even when a reader's snapshot rebuild started
// mid-ingest is still in flight — N waits for the single-flight
// rebuild instead of taking the bounded-stale fallback (the regression
// originally surfaced as a flaky legacy TestConcurrentParallelUpdates).
func TestConcurrentNExactAfterQuiesce(t *testing.T) {
	for round := 0; round < 30; round++ {
		s := hh.New[uint64](hh.WithConcurrent(), hh.WithCapacity(64), hh.WithShards(4))
		const writers, perW = 4, 5000
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				for i := uint64(0); i < perW; i++ {
					s.Update(seed*perW + i%200)
				}
			}(uint64(g))
		}
		// A reader keeps triggering rebuilds until the writers are done.
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var buf []hh.WeightedEntry[uint64]
			for {
				select {
				case <-stop:
					return
				default:
					buf = s.TopAppend(buf[:0], 5)
				}
			}
		}()
		wg.Wait()
		// The reader is deliberately NOT stopped first: its in-flight
		// rebuild must not make this N stale.
		if got := s.N(); got != writers*perW {
			close(stop)
			rwg.Wait()
			t.Fatalf("round %d: N after quiesce = %v, want %d", round, got, writers*perW)
		}
		close(stop)
		rwg.Wait()
	}
}

// TestConcurrentRejectsSketches: snapshots cannot reproduce sketch
// estimates for never-tracked items, so the combination is a
// construction error.
func TestConcurrentRejectsSketches(t *testing.T) {
	for _, a := range []hh.Algo{hh.AlgoCountMin, hh.AlgoCountSketch} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithConcurrent + %v did not panic", a)
				}
			}()
			hh.New[uint64](hh.WithConcurrent(), hh.WithAlgorithm(a))
		}()
	}
}
