package heavyhitters_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	hh "repro"
)

// TestSpecOptionsRoundTrip checks the config-file path builds the same
// summary the equivalent hand-written options build.
func TestSpecOptionsRoundTrip(t *testing.T) {
	raw := []byte(`{"algorithm": "frequent", "capacity": 64, "shards": 2, "window": 4096, "epochs": 4, "seed": 9}`)
	var sp hh.Spec
	if err := json.Unmarshal(raw, &sp); err != nil {
		t.Fatal(err)
	}
	fromSpec, err := hh.NewFromSpec[string](sp)
	if err != nil {
		t.Fatal(err)
	}
	ref := hh.New[string](
		hh.WithAlgorithm(hh.AlgoFrequent), hh.WithCapacity(64), hh.WithShards(2),
		hh.WithWindow(4096), hh.WithEpochs(4), hh.WithSeed(9),
	)
	keys := make([]string, 0, 3000)
	for i := 0; i < 3000; i++ {
		keys = append(keys, string(rune('a'+i%7)))
	}
	fromSpec.UpdateBatch(keys)
	ref.UpdateBatch(keys)
	if fromSpec.Algorithm() != ref.Algorithm() || fromSpec.Capacity() != ref.Capacity() {
		t.Fatalf("spec summary (%v, %d) != option summary (%v, %d)",
			fromSpec.Algorithm(), fromSpec.Capacity(), ref.Algorithm(), ref.Capacity())
	}
	if fromSpec.N() != ref.N() {
		t.Errorf("N: %v != %v", fromSpec.N(), ref.N())
	}
	ws, ok := fromSpec.Window()
	if !ok || ws.Epochs != 4 {
		t.Errorf("windowed spec summary reports Window() = %+v, %v", ws, ok)
	}
	for _, e := range ref.Top(7) {
		if got := fromSpec.Estimate(e.Item); got != e.Count {
			t.Errorf("estimate(%q) = %v, want %v", e.Item, got, e.Count)
		}
	}
}

func TestSpecTickWindowAndErrors(t *testing.T) {
	s, err := hh.NewFromSpec[uint64](hh.Spec{TickWindow: "250ms", Epochs: 5, Capacity: 32})
	if err != nil {
		t.Fatalf("tick-window spec: %v", err)
	}
	if ws, ok := s.Window(); !ok || ws.Tick != 250*time.Millisecond || ws.Epochs != 5 {
		t.Errorf("tick window state = %+v, %v", ws, ok)
	}

	for name, sp := range map[string]hh.Spec{
		"unknown algorithm":   {Algorithm: "nope"},
		"bad tick duration":   {TickWindow: "yesterday"},
		"negative capacity":   {Capacity: -1},
		"capacity and budget": {Capacity: 10, Epsilon: 0.1},
		"decay on sketch":     {Algorithm: "countmin", Decay: 0.1},
		"concurrent sketch":   {Algorithm: "countsketch", Concurrent: true},
	} {
		if _, err := hh.NewFromSpec[uint64](sp); err == nil {
			t.Errorf("%s: NewFromSpec accepted %+v", name, sp)
		}
	}
}

// TestSniffBlob covers the header sniffing consumers use to route
// unknown blobs to the right Decode instantiation.
func TestSniffBlob(t *testing.T) {
	var flatU, flatS, winS bytes.Buffer
	u := hh.New[uint64](hh.WithCapacity(16), hh.WithAlgorithm(hh.AlgoFrequent))
	u.Update(1)
	if err := u.Encode(&flatU); err != nil {
		t.Fatal(err)
	}
	s := hh.New[string](hh.WithCapacity(16))
	s.Update("a")
	if err := s.Encode(&flatS); err != nil {
		t.Fatal(err)
	}
	w := hh.New[string](hh.WithCapacity(16), hh.WithWindow(100))
	w.Update("b")
	if err := w.Encode(&winS); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		blob []byte
		want hh.BlobInfo
	}{
		{"flat uint64", flatU.Bytes(), hh.BlobInfo{Algo: hh.AlgoFrequent}},
		{"flat string", flatS.Bytes(), hh.BlobInfo{Algo: hh.AlgoSpaceSaving, StringKeys: true}},
		{"windowed string", winS.Bytes(), hh.BlobInfo{Algo: hh.AlgoSpaceSaving, Windowed: true, StringKeys: true}},
	} {
		info, ok := hh.SniffBlob(tc.blob)
		if !ok || info != tc.want {
			t.Errorf("%s: SniffBlob = %+v, %v; want %+v", tc.name, info, ok, tc.want)
		}
	}
	if _, ok := hh.SniffBlob([]byte("HHSUM")); ok {
		t.Error("SniffBlob accepted a short prefix")
	}
	if _, ok := hh.SniffBlob([]byte("NOTMAGIC1")); ok {
		t.Error("SniffBlob accepted a foreign magic")
	}
	// v2 magic with an unknown key kind byte must be rejected.
	bad := append([]byte{}, flatS.Bytes()[:9]...)
	bad[8] = 0x7f
	if _, ok := hh.SniffBlob(bad); ok {
		t.Error("SniffBlob accepted an unknown key kind")
	}
}
