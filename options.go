package heavyhitters

import (
	"fmt"
	"math"
	"time"
)

// config collects the knobs New understands. It is deliberately
// non-generic so every Option reads naturally at call sites; the only
// K-dependent piece of construction (the shard/sketch key hash) is
// derived from the key type inside New.
type config struct {
	algo        Algo
	m           int     // counters (or sketch width); 0 = derive or default
	eps, phi    float64 // WithErrorBudget auto-sizing; 0 = unset
	shards      int     // 0 = unsharded (single structure, no locking)
	seed        uint64
	depth       int  // sketch depth
	weighted    bool // real-valued counters (SPACESAVINGR / FREQUENTR)
	mSet        bool
	budgetSet   bool
	weightedSet bool

	// Window layer (WithWindow / WithTickWindow / WithEpochs): the
	// summary becomes an epoch ring of counter sub-structures answering
	// queries over a sliding suffix of the stream.
	window    uint64 // count window: items covered; 0 = whole stream
	windowSet bool
	epochs    int           // ring size E; 0 = default
	tick      time.Duration // tick window: time covered; 0 = count-based
	tickSet   bool
	clock     func() time.Time
	epochsSet bool

	// Exponential decay (WithDecay): the smooth alternative to the epoch
	// ring, on the real-valued backends.
	decay    float64 // per-arrival decay rate λ; 0 = no decay
	decaySet bool

	// Concurrency tier (WithConcurrent): striped writer locks plus
	// generation-tracked read snapshots on top of the composition.
	concurrent bool

	// Pipelined ingest (WithPipeline): per-shard single-writer worker
	// goroutines fed by bounded SPSC rings, on top of WithShards.
	pipeline bool

	// Borrowed-key ingest (WithBorrowedKeys): the summary clones any
	// key it retains, so callers may pass keys whose backing memory is
	// reused after the call returns.
	borrowKeys bool

	// Arena-backed key storage (WithArena): string keys live in
	// per-structure byte slabs behind an open-addressing index instead
	// of map[string]int32, making the steady-state heap pointer-free.
	arena bool
}

// windowed reports whether the configuration asks for the epoch-ring
// window layer.
func (c *config) windowed() bool { return c.window > 0 || c.tick > 0 }

// coalescible reports whether the sharded batch path may group a batch's
// duplicate keys and apply each group as one n-fold update. True exactly
// when the composition's n-fold update is bit-identical to n unit
// updates (the Section-6 equivalence): decay is out (its clock advances
// per arrival) and so is LOSSYCOUNTING (AddN deliberately keeps the
// added item's full count across the batched prune, so it can exceed
// the unit-loop state).
func (c *config) coalescible() bool {
	return c.decay == 0 && c.algo != AlgoLossyCounting
}

// Option configures a Summary under construction by New.
type Option func(*config)

// WithAlgorithm selects the backing algorithm. The default is
// AlgoSpaceSaving. See the Algo constants for the trade-offs (Table 1 of
// the paper: space, guarantee direction, deletions).
func WithAlgorithm(a Algo) Option {
	return func(c *config) { c.algo = a }
}

// WithCapacity sets m, the counter budget (for sketches: the width of
// each row). Every estimate of an HTC algorithm with m counters is then
// within F1^res(k)/(m − k) of the truth for every k < m (Theorem 2).
// Mutually exclusive with WithErrorBudget.
func WithCapacity(m int) Option {
	return func(c *config) {
		c.m = m
		c.mSet = true
	}
}

// WithErrorBudget sizes the summary from accuracy targets instead of a
// raw counter count: estimates stay within eps·F1 of the truth
// (classical F1/m sizing — on skewed streams the realized error is far
// smaller, per the paper's residual bounds), and every phi-heavy hitter
// is certain to be stored (m > 1/phi). Pass phi = 0 to size from eps
// alone. Mutually exclusive with WithCapacity.
func WithErrorBudget(eps, phi float64) Option {
	return func(c *config) {
		c.eps = eps
		c.phi = phi
		c.budgetSet = true
	}
}

// WithShards splits the summary into p independently locked shards,
// making every Summary method safe for concurrent use. Items are
// partitioned (not replicated) by a stateless hash, so each item's
// counts live wholly in one shard and per-item estimates and bounds keep
// the single-shard guarantee against the item's full stream; see the
// Summary documentation for the aggregate-query guarantee. p = 1 yields
// a single locked shard (thread safety without partitioning).
func WithShards(p int) Option {
	return func(c *config) { c.shards = p }
}

// WithConcurrent wraps the summary in the concurrency tier, making
// every Summary method safe for concurrent use with reads that never
// block writers. Writers serialize through striped locks — the
// per-shard mutexes when composed with WithShards(p), one structure
// lock otherwise — and bump a generation counter; readers serve from
// an immutable snapshot behind an atomic pointer, rebuilt lazily
// (by one reader at a time) only when the generation moved, so
// Estimate, EstimateBounds, Top, TopAppend, All, HeavyHitters, N and
// Window are lock-free against the write path. Readers may observe a
// bounded-stale snapshot: at most one in-flight rebuild old, and never
// from before the latest Reset. N is the exception that trades the
// staleness allowance for exactness — it waits for an in-flight
// rebuild (still never blocking writers), so the reported mass is
// exact as soon as writers quiesce. The tier composes with every other
// tier (core → window/decay → sharded → concurrent) and keeps the
// batch path's one-hash-per-key contract; it requires a deterministic
// counter algorithm (snapshots cannot reproduce a sketch's estimates
// for never-tracked items — use WithShards alone for thread-safe
// sketches). Compared with WithShards alone, whose aggregate queries
// lock every shard on every call, the concurrency tier trades bounded
// staleness for reads that scale independently of write traffic; a
// snapshot's upper bounds on a sharded composition widen by the other
// shards' slack (zero for SPACESAVING). See the README's
// "Concurrency" section for the full semantics.
func WithConcurrent() Option {
	return func(c *config) { c.concurrent = true }
}

// WithPipeline moves ingest onto per-shard single-writer worker
// goroutines fed by bounded SPSC rings, on top of WithShards(p):
// UpdateBatch partitions (and coalesces) a batch exactly as the locked
// sharded path does, but enqueues each shard's sub-batch onto the
// owning shard's ring and returns — the shard worker is the only
// goroutine applying counter work in the steady state, so shard state
// stays core-local and producers never stall on counter work, only on
// a full ring (bounded memory, honest backpressure). Ingest becomes
// asynchronous: a write is visible to queries once its shard worker
// has applied it, and every query method drains the rings first, so a
// single goroutine that writes then reads still observes its own
// writes (Flush exposes the same barrier directly). Composes with
// every sharded configuration, including WithConcurrent on top, whose
// snapshot capture inherits the drain barrier. Requires WithShards;
// New panics otherwise.
func WithPipeline() Option {
	return func(c *config) { c.pipeline = true }
}

// WithBorrowedKeys lets Update/UpdateBatch callers pass keys whose
// backing memory they reuse or overwrite after the call returns — the
// shape of a zero-copy decoder that aliases string keys straight into a
// network or file buffer (internal/wire parses frames this way). The
// summary copies any key at the moment it is retained (counter
// insertion, sketch candidate tracking); lookups, increments to
// already-tracked items, and rejected candidates never copy, so the
// skewed-stream hot path stays zero-alloc and only the insertion tail
// pays. String-keyed summaries route insertions through a small
// per-structure dedup cache (sized from the counter budget) so a
// recurring tail key is usually copied once, not per insertion.
//
// Valid key types: strings (any string kind) and pointer-free types
// (integers, floats, arrays/structs thereof — which need no copying and
// make the option a no-op). New panics for key types holding other
// references (slices, pointers, maps...), which cannot be cloned
// generically.
//
// Without this option, the library's usual contract applies: the
// summary aliases the keys it is handed and callers must not mutate
// their backing memory afterwards.
func WithBorrowedKeys() Option {
	return func(c *config) { c.borrowKeys = true }
}

// WithArena stores string keys in per-structure byte slabs addressed
// by (offset, len) references behind a flat open-addressing index
// (internal/arena), replacing the map[string]int32 key index. The
// steady-state heap then holds no per-key objects — a handful of slabs
// and one slot array instead of m string allocations plus map buckets —
// which is what GC scan time is made of at large m; the capacity bench
// tier's bytes_per_tracked_key and heap_objects columns measure the
// difference. Eviction recycles slab regions through per-size-class
// free lists, so eviction-heavy streams do not grow the arena.
//
// The option applies to the unit-weight counter structures
// (AlgoSpaceSaving and AlgoFrequent, plain or windowed) with
// string-kind keys; every other composition — other key types, the
// weighted and decayed variants, AlgoLossyCounting, the sketches —
// silently keeps the map path, so it is always safe to set (the
// registry sets it for every string-keyed deterministic summary).
// Combined with WithBorrowedKeys, borrowed keys are copied straight
// into the slabs at insertion — one copy, no intermediate string, no
// clone cache.
//
// The trade: queries materialize their result keys (Top, All, Each,
// snapshot rebuilds allocate one string per returned entry) because
// stored keys alias slab memory that eviction recycles. Ingest stays
// zero-alloc except when the arena grows a slab.
func WithArena() Option {
	return func(c *config) { c.arena = true }
}

// WithSeed fixes the seed of randomized backends (Count-Min,
// Count-Sketch) and of the key hash behind shard placement and sketch
// candidate tracking. For uint64- and string-keyed summaries the key
// hash derives entirely from the seed, so estimates and shard placement
// are reproducible across runs. Every other key type hashes through
// hash/maphash, whose seed is randomized per process: with those keys,
// sketch estimates and shard placement are deterministic within a run
// but vary across runs even under WithSeed (correctness and all bounds
// are unaffected — only which shard owns an item and which candidates a
// sketch tracks). Deterministic counter algorithms ignore the seed.
// Seed 0 is reserved to mean "unset" and is treated as WithSeed(1);
// sweeps over distinct seeds should start at 1.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithDepth sets the number of rows of a sketch backend (default 4).
// Counter algorithms ignore it.
func WithDepth(d int) Option {
	return func(c *config) { c.depth = d }
}

// WithWeighted backs the summary with the real-valued update variant of
// Section 6.1 (SPACESAVINGR or FREQUENTR, Theorem 10 guarantees), so
// UpdateWeighted accepts arbitrary positive weights — byte counts,
// latencies, prices. Without it, counter backends accept only integral
// weights (applied natively). Valid for AlgoSpaceSaving and AlgoFrequent.
func WithWeighted() Option {
	return func(c *config) {
		c.weighted = true
		c.weightedSet = true
	}
}

// WithWindow makes the summary answer every query over (approximately)
// the last n items instead of the whole stream: the backend becomes a
// ring of E epoch sub-structures (E from WithEpochs, default 8) of
// ⌈n/E⌉ items each, rotated as the stream advances — the oldest epoch
// is recycled in place, so steady-state rotation allocates nothing.
// Queries concatenate the live epochs, so the covered suffix stays
// within one epoch of n: between n − ⌈n/E⌉ and E·⌈n/E⌉ items (the
// upper end exceeds n by at most E−1 when E does not divide n; N
// reports the exact covered mass, and Window the rotation state).
// Estimates, bounds and the k-tail guarantee all hold against that
// covered suffix — see Summary.Window for the guarantee arithmetic. Requires a deterministic counter
// algorithm (not the sketches). Combined with WithShards(p) each shard
// windows its own sub-stream over ⌈n/p⌉ items, so the ring covers
// approximately the last n items globally under the partitioner's
// uniform hashing. Mutually exclusive with WithTickWindow and
// WithDecay.
func WithWindow(n uint64) Option {
	return func(c *config) {
		c.window = n
		c.windowSet = true
	}
}

// WithEpochs sets the epoch count E of a windowed summary (default 8).
// More epochs track the window edge more precisely (the covered suffix
// is off by at most one epoch, ⌈n/E⌉ items or d/E time) at the price of
// E× the counter memory and an E× wider advertised tail guarantee; see
// Summary.Window. Valid only together with WithWindow or
// WithTickWindow.
func WithEpochs(e int) Option {
	return func(c *config) {
		c.epochs = e
		c.epochsSet = true
	}
}

// WithTickWindow makes the summary answer every query over the last d
// of wall-clock time: the epoch ring rotates every d/E elapsed (E from
// WithEpochs), with rotation checked on every update and every query,
// so epochs expire even while the stream is idle. clock supplies the
// current time and may be nil for time.Now; tests and replay pipelines
// inject their own. Sharded tick windows share the clock, so every
// shard covers the same time span; an injected clock must be safe for
// concurrent use when combined with WithShards or WithConcurrent (the
// shards — and, under WithConcurrent, the readers checking snapshot
// expiry — call it concurrently). Mutually exclusive with WithWindow
// and WithDecay.
func WithTickWindow(d time.Duration, clock func() time.Time) Option {
	return func(c *config) {
		c.tick = d
		c.tickSet = true
		c.clock = clock
	}
}

// WithDecay applies exponential decay with rate lambda to the summary:
// at query time, an arrival that came t arrivals ago contributes
// e^(−lambda·t) of its weight, so the summary tracks a smoothly fading
// window of roughly the last 1/lambda arrivals — the smooth alternative
// to the WithWindow epoch ring (no rotation cliffs, but no hard
// cutoff). Implemented by scaling arrivals up rather than counters
// down, with periodic renormalization, so updates stay O(1) and
// allocation-free. Implies WithWeighted (decayed counts are real-
// valued); valid for AlgoSpaceSaving and AlgoFrequent, whose Section
// 6.1 guarantees are weight-linear and therefore hold verbatim against
// the decayed frequency vector. Combined with WithShards(p), each
// shard's internal rate is scaled by p so the horizon stays ~1/lambda
// global arrivals under the partitioner's uniform hashing (a shard's
// decay clock ticks only on its own sub-stream). Mutually exclusive
// with WithWindow and WithTickWindow.
func WithDecay(lambda float64) Option {
	return func(c *config) {
		c.decay = lambda
		c.decaySet = true
		c.weighted = true
	}
}

// defaultCapacity is the counter budget used when neither WithCapacity
// nor WithErrorBudget is given: enough for 0.1%-of-stream accuracy.
const defaultCapacity = 1024

// defaultEpochs is the epoch-ring size used when WithWindow or
// WithTickWindow is given without WithEpochs.
const defaultEpochs = 8

// resolve validates the option combination and fills derived fields,
// returning a descriptive error for New to panic with.
func (c *config) resolve() error {
	if c.mSet && c.budgetSet {
		return fmt.Errorf("heavyhitters: WithCapacity and WithErrorBudget are mutually exclusive")
	}
	if c.mSet && c.m < 1 {
		return fmt.Errorf("heavyhitters: capacity must be >= 1, got %d", c.m)
	}
	if c.budgetSet {
		if c.eps <= 0 || c.eps > 1 {
			return fmt.Errorf("heavyhitters: error budget eps must be in (0, 1], got %v", c.eps)
		}
		if c.phi < 0 || c.phi > 1 {
			return fmt.Errorf("heavyhitters: error budget phi must be in [0, 1], got %v", c.phi)
		}
		m := int(math.Ceil(1 / c.eps))
		if c.phi > 0 {
			if hh := CountersForHeavyHitters(c.phi); hh > m {
				m = hh
			}
		}
		if m < 1 {
			m = 1
		}
		c.m = m
	}
	if c.m == 0 {
		c.m = defaultCapacity
	}
	if c.shards < 0 {
		return fmt.Errorf("heavyhitters: shard count must be >= 0, got %d", c.shards)
	}
	if c.depth == 0 {
		c.depth = 4
	}
	if c.depth < 1 {
		return fmt.Errorf("heavyhitters: sketch depth must be >= 1, got %d", c.depth)
	}
	if c.seed == 0 {
		c.seed = 1
	}
	if c.weightedSet {
		switch c.algo {
		case AlgoSpaceSaving, AlgoFrequent:
		default:
			return fmt.Errorf("heavyhitters: WithWeighted requires AlgoSpaceSaving or AlgoFrequent, got %v", c.algo)
		}
	}
	if c.windowSet && c.tickSet {
		return fmt.Errorf("heavyhitters: WithWindow and WithTickWindow are mutually exclusive")
	}
	if c.windowSet && c.window < 1 {
		return fmt.Errorf("heavyhitters: window length must be >= 1, got %d", c.window)
	}
	if c.tickSet && c.tick <= 0 {
		return fmt.Errorf("heavyhitters: tick window duration must be positive, got %v", c.tick)
	}
	if c.epochsSet {
		if !c.windowed() {
			return fmt.Errorf("heavyhitters: WithEpochs requires WithWindow or WithTickWindow")
		}
		if c.epochs < 1 {
			return fmt.Errorf("heavyhitters: epoch count must be >= 1, got %d", c.epochs)
		}
	}
	if c.windowed() {
		if !c.algo.deterministic() {
			return fmt.Errorf("heavyhitters: windowed summaries require a deterministic counter algorithm, got %v", c.algo)
		}
		if c.epochs == 0 {
			c.epochs = defaultEpochs
		}
		if c.window > 0 && uint64(c.epochs) > c.window {
			// More epochs than items would leave most of the ring
			// permanently empty; clamp so every epoch holds >= 1 item.
			c.epochs = int(c.window)
		}
	}
	if c.pipeline && c.shards < 1 {
		return fmt.Errorf("heavyhitters: WithPipeline requires WithShards")
	}
	if c.concurrent && !c.algo.deterministic() {
		return fmt.Errorf("heavyhitters: WithConcurrent requires a deterministic counter algorithm, got %v (use WithShards alone for thread-safe sketches)", c.algo)
	}
	if c.decaySet {
		if math.IsNaN(c.decay) || math.IsInf(c.decay, 0) || c.decay <= 0 {
			return fmt.Errorf("heavyhitters: decay rate must be positive and finite, got %v", c.decay)
		}
		if c.windowed() {
			return fmt.Errorf("heavyhitters: WithDecay and WithWindow/WithTickWindow are mutually exclusive")
		}
		switch c.algo {
		case AlgoSpaceSaving, AlgoFrequent:
		default:
			return fmt.Errorf("heavyhitters: WithDecay requires AlgoSpaceSaving or AlgoFrequent, got %v", c.algo)
		}
	}
	return nil
}

// DurabilitySpec is the JSON-portable durability configuration: the
// config-file stanza that arms crash recovery on a serving deployment
// (hhserverd's registry config embeds one under "durability"). It is
// declarative and host-independent, like Spec: the daemon resolves it
// into concrete intervals and byte budgets with Resolve.
//
// The on-disk formats it governs — the snapshot manifest, the CURRENT
// pointer, and the write-ahead-log segments — are specified normatively
// in docs/DURABILITY.md; internal/persist is the reference
// implementation.
type DurabilitySpec struct {
	// Dir is the data directory holding snapshots and the WAL. It is
	// created if missing. Required: a durability stanza without a
	// directory is a configuration error.
	Dir string `json:"dir"`
	// SnapshotInterval is the cadence of periodic atomic snapshots (Go
	// duration syntax, e.g. "30s"); empty means the 1m default. Shorter
	// intervals shrink WAL replay time after a crash at the cost of
	// more snapshot I/O; see docs/OPERATIONS.md for the tradeoff.
	SnapshotInterval string `json:"snapshot_interval,omitempty"`
	// Fsync selects when appended WAL records are forced to stable
	// storage: "always" (every batch, before it is applied — zero loss
	// window), "interval" (a background ticker, the default — loss
	// window bounded by FsyncInterval), or "rotate" (only on segment
	// rotation and snapshots — largest loss window, least I/O).
	Fsync string `json:"fsync,omitempty"`
	// FsyncInterval is the ticker period for Fsync "interval"; empty
	// means the 100ms default.
	FsyncInterval string `json:"fsync_interval,omitempty"`
	// SegmentBytes rotates the WAL to a fresh segment file once the
	// current one exceeds this size; 0 means the 64 MiB default.
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
}

// Fsync mode names accepted by DurabilitySpec.Fsync.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncRotate   = "rotate"
)

// Durability defaults applied by DurabilitySpec.Resolve.
const (
	DefaultSnapshotInterval = time.Minute
	DefaultFsyncInterval    = 100 * time.Millisecond
	DefaultSegmentBytes     = 64 << 20
)

// ResolvedDurability is a DurabilitySpec with defaults applied and
// durations parsed — the form the registry hands to internal/persist.
type ResolvedDurability struct {
	Dir              string
	SnapshotInterval time.Duration
	Fsync            string
	FsyncInterval    time.Duration
	SegmentBytes     int64
}

// Resolve validates the spec and applies defaults. Errors name the
// offending field so a daemon can reject a bad stanza at boot.
func (d DurabilitySpec) Resolve() (ResolvedDurability, error) {
	r := ResolvedDurability{
		Dir:              d.Dir,
		SnapshotInterval: DefaultSnapshotInterval,
		Fsync:            FsyncInterval,
		FsyncInterval:    DefaultFsyncInterval,
		SegmentBytes:     DefaultSegmentBytes,
	}
	if r.Dir == "" {
		return r, fmt.Errorf("heavyhitters: durability: dir is required")
	}
	if d.SnapshotInterval != "" {
		v, err := time.ParseDuration(d.SnapshotInterval)
		if err != nil {
			return r, fmt.Errorf("heavyhitters: durability: snapshot_interval: %v", err)
		}
		if v <= 0 {
			return r, fmt.Errorf("heavyhitters: durability: snapshot_interval must be positive, got %v", v)
		}
		r.SnapshotInterval = v
	}
	if d.Fsync != "" {
		switch d.Fsync {
		case FsyncAlways, FsyncInterval, FsyncRotate:
			r.Fsync = d.Fsync
		default:
			return r, fmt.Errorf("heavyhitters: durability: fsync must be %q, %q or %q, got %q",
				FsyncAlways, FsyncInterval, FsyncRotate, d.Fsync)
		}
	}
	if d.FsyncInterval != "" {
		v, err := time.ParseDuration(d.FsyncInterval)
		if err != nil {
			return r, fmt.Errorf("heavyhitters: durability: fsync_interval: %v", err)
		}
		if v <= 0 {
			return r, fmt.Errorf("heavyhitters: durability: fsync_interval must be positive, got %v", v)
		}
		r.FsyncInterval = v
	}
	if d.SegmentBytes < 0 {
		return r, fmt.Errorf("heavyhitters: durability: segment_bytes must be >= 0, got %d", d.SegmentBytes)
	}
	if d.SegmentBytes > 0 {
		r.SegmentBytes = d.SegmentBytes
	}
	return r, nil
}
