package heavyhitters

import (
	"fmt"
	"math"
)

// config collects the knobs New understands. It is deliberately
// non-generic so every Option reads naturally at call sites; the only
// K-dependent piece of construction (the shard/sketch key hash) is
// derived from the key type inside New.
type config struct {
	algo        Algo
	m           int     // counters (or sketch width); 0 = derive or default
	eps, phi    float64 // WithErrorBudget auto-sizing; 0 = unset
	shards      int     // 0 = unsharded (single structure, no locking)
	seed        uint64
	depth       int  // sketch depth
	weighted    bool // real-valued counters (SPACESAVINGR / FREQUENTR)
	mSet        bool
	budgetSet   bool
	weightedSet bool
}

// Option configures a Summary under construction by New.
type Option func(*config)

// WithAlgorithm selects the backing algorithm. The default is
// AlgoSpaceSaving. See the Algo constants for the trade-offs (Table 1 of
// the paper: space, guarantee direction, deletions).
func WithAlgorithm(a Algo) Option {
	return func(c *config) { c.algo = a }
}

// WithCapacity sets m, the counter budget (for sketches: the width of
// each row). Every estimate of an HTC algorithm with m counters is then
// within F1^res(k)/(m − k) of the truth for every k < m (Theorem 2).
// Mutually exclusive with WithErrorBudget.
func WithCapacity(m int) Option {
	return func(c *config) {
		c.m = m
		c.mSet = true
	}
}

// WithErrorBudget sizes the summary from accuracy targets instead of a
// raw counter count: estimates stay within eps·F1 of the truth
// (classical F1/m sizing — on skewed streams the realized error is far
// smaller, per the paper's residual bounds), and every phi-heavy hitter
// is certain to be stored (m > 1/phi). Pass phi = 0 to size from eps
// alone. Mutually exclusive with WithCapacity.
func WithErrorBudget(eps, phi float64) Option {
	return func(c *config) {
		c.eps = eps
		c.phi = phi
		c.budgetSet = true
	}
}

// WithShards splits the summary into p independently locked shards,
// making every Summary method safe for concurrent use. Items are
// partitioned (not replicated) by a stateless hash, so each item's
// counts live wholly in one shard and per-item estimates and bounds keep
// the single-shard guarantee against the item's full stream; see the
// Summary documentation for the aggregate-query guarantee. p = 1 yields
// a single locked shard (thread safety without partitioning).
func WithShards(p int) Option {
	return func(c *config) { c.shards = p }
}

// WithSeed fixes the seed of randomized backends (Count-Min,
// Count-Sketch) and of the key hash behind shard placement and sketch
// candidate tracking. For uint64- and string-keyed summaries the key
// hash derives entirely from the seed, so estimates and shard placement
// are reproducible across runs. Every other key type hashes through
// hash/maphash, whose seed is randomized per process: with those keys,
// sketch estimates and shard placement are deterministic within a run
// but vary across runs even under WithSeed (correctness and all bounds
// are unaffected — only which shard owns an item and which candidates a
// sketch tracks). Deterministic counter algorithms ignore the seed.
// Seed 0 is reserved to mean "unset" and is treated as WithSeed(1);
// sweeps over distinct seeds should start at 1.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithDepth sets the number of rows of a sketch backend (default 4).
// Counter algorithms ignore it.
func WithDepth(d int) Option {
	return func(c *config) { c.depth = d }
}

// WithWeighted backs the summary with the real-valued update variant of
// Section 6.1 (SPACESAVINGR or FREQUENTR, Theorem 10 guarantees), so
// UpdateWeighted accepts arbitrary positive weights — byte counts,
// latencies, prices. Without it, counter backends accept only integral
// weights (applied natively). Valid for AlgoSpaceSaving and AlgoFrequent.
func WithWeighted() Option {
	return func(c *config) {
		c.weighted = true
		c.weightedSet = true
	}
}

// defaultCapacity is the counter budget used when neither WithCapacity
// nor WithErrorBudget is given: enough for 0.1%-of-stream accuracy.
const defaultCapacity = 1024

// resolve validates the option combination and fills derived fields,
// returning a descriptive error for New to panic with.
func (c *config) resolve() error {
	if c.mSet && c.budgetSet {
		return fmt.Errorf("heavyhitters: WithCapacity and WithErrorBudget are mutually exclusive")
	}
	if c.mSet && c.m < 1 {
		return fmt.Errorf("heavyhitters: capacity must be >= 1, got %d", c.m)
	}
	if c.budgetSet {
		if c.eps <= 0 || c.eps > 1 {
			return fmt.Errorf("heavyhitters: error budget eps must be in (0, 1], got %v", c.eps)
		}
		if c.phi < 0 || c.phi > 1 {
			return fmt.Errorf("heavyhitters: error budget phi must be in [0, 1], got %v", c.phi)
		}
		m := int(math.Ceil(1 / c.eps))
		if c.phi > 0 {
			if hh := CountersForHeavyHitters(c.phi); hh > m {
				m = hh
			}
		}
		if m < 1 {
			m = 1
		}
		c.m = m
	}
	if c.m == 0 {
		c.m = defaultCapacity
	}
	if c.shards < 0 {
		return fmt.Errorf("heavyhitters: shard count must be >= 0, got %d", c.shards)
	}
	if c.depth == 0 {
		c.depth = 4
	}
	if c.depth < 1 {
		return fmt.Errorf("heavyhitters: sketch depth must be >= 1, got %d", c.depth)
	}
	if c.seed == 0 {
		c.seed = 1
	}
	if c.weightedSet {
		switch c.algo {
		case AlgoSpaceSaving, AlgoFrequent:
		default:
			return fmt.Errorf("heavyhitters: WithWeighted requires AlgoSpaceSaving or AlgoFrequent, got %v", c.algo)
		}
	}
	return nil
}
