package heavyhitters

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/spacesaving"
)

// Windowed v2 wire format: the container Summary.Encode writes for an
// (unsharded) epoch-ring window, so a coordinator can ship a sliding-
// window summary and keep both querying and *rotating* it after decode:
//
//	magic "HHWIN2" | algo | key kind | mode (1 = count, 2 = tick) |
//	epochs uvarint | epochLen uvarint (count) / epoch nanos (tick) |
//	current-epoch items uvarint | live uvarint |
//	live × { frame length uvarint | flat "HHSUM2" frame }
//
// Epochs travel oldest → newest as standard flat v2 frames, each
// prefixed with its byte length — the offsets that let a reader index
// or skip epochs without parsing them. Decoding reconstructs a live
// ring: the decoded epochs fill the first slots (each backed by a
// weighted SPACESAVINGR reconstruction, exactly like a flat decode),
// the remaining slots start empty, and rotation resumes where the
// producer left off. Tick windows restart their epoch clock at decode
// time (wall-clock epochs cannot meaningfully survive the transfer
// latency); count windows resume exactly.

var windowMagicV2 = [6]byte{'H', 'H', 'W', 'I', 'N', '2'}

const (
	windowModeCount byte = 1
	windowModeTick  byte = 2
)

// maxWindowEpochs bounds the decoded ring size: a real deployment uses
// a handful of epochs (8 is the default; hundreds would already be an
// odd trade), so anything larger is a malformed or malicious frame.
const maxWindowEpochs = 4096

// encodeWindow writes the windowed container for wb's current ring.
func encodeWindow[K comparable](w io.Writer, algo Algo, kind byte, wb *windowBackend[K]) error {
	wb.sync()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(windowMagicV2[:]); err != nil {
		return err
	}
	mode := windowModeCount
	granularity := wb.epochLen
	if wb.tick > 0 {
		mode = windowModeTick
		granularity = uint64(wb.tick.Nanoseconds())
	}
	for _, b := range []byte{byte(algo), kind, mode} {
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	for _, v := range []uint64{uint64(len(wb.ring)), granularity, wb.curItems, uint64(wb.live)} {
		if err := writeUvarint(bw, v); err != nil {
			return err
		}
	}
	// Epochs oldest → newest: live slots ending at cur.
	var frame bytes.Buffer
	fw := bufio.NewWriter(&frame)
	for i := 0; i < wb.live; i++ {
		slot := (wb.cur - wb.live + 1 + i + len(wb.ring)) % len(wb.ring)
		frame.Reset()
		fw.Reset(&frame)
		if err := encodeFlatFrame(fw, algo, kind, wb.ring[slot]); err != nil {
			return err
		}
		if err := fw.Flush(); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(frame.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(frame.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeWindowBody reads the windowed container after its magic and
// rebuilds a live epoch ring.
//
//hh:nopanic
func decodeWindowBody[K comparable](br *bufio.Reader, wantKind byte) (Summary[K], error) {
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: window header: %v", ErrBadSummary, err)
	}
	algo, kind, mode := Algo(hdr[0]), hdr[1], hdr[2]
	if !algo.deterministic() {
		return nil, fmt.Errorf("%w: algorithm %v has no portable state", ErrBadSummary, algo)
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: key kind %d, want %d", ErrBadSummary, kind, wantKind)
	}
	if mode != windowModeCount && mode != windowModeTick {
		return nil, fmt.Errorf("%w: unknown window mode %d", ErrBadSummary, mode)
	}
	var fields [4]uint64
	for i, name := range []string{"epoch count", "epoch granularity", "current-epoch items", "live epochs"} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrBadSummary, name, err)
		}
		//hh:checked i ranges over a 4-element name list; fields is a 4-element array
		fields[i] = v
	}
	epochs, granularity, curItems, live := fields[0], fields[1], fields[2], fields[3]
	if epochs < 1 || epochs > maxWindowEpochs {
		return nil, fmt.Errorf("%w: unreasonable epoch count %d", ErrBadSummary, epochs)
	}
	if live < 1 || live > epochs {
		return nil, fmt.Errorf("%w: live epochs %d outside [1, %d]", ErrBadSummary, live, epochs)
	}
	if granularity < 1 {
		return nil, fmt.Errorf("%w: zero epoch granularity", ErrBadSummary)
	}
	if mode == windowModeCount && curItems > granularity {
		return nil, fmt.Errorf("%w: current epoch holds %d items, epoch length is %d", ErrBadSummary, curItems, granularity)
	}
	if mode == windowModeTick && granularity > uint64(1<<62) {
		return nil, fmt.Errorf("%w: unreasonable epoch duration", ErrBadSummary)
	}
	b := &windowBackend[K]{
		ring: make([]backend[K], epochs),
		live: int(live),
		cur:  int(live) - 1,
		agg:  make(map[K]int),
	}
	if mode == windowModeCount {
		b.epochLen = granularity
		b.curItems = curItems
	} else {
		b.tick = time.Duration(granularity)
		b.clock = time.Now
		b.epochStart = b.clock()
	}
	var g TailGuarantee
	hasG := false
	capacity := 1
	for i := 0; i < int(live); i++ {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: epoch %d frame length: %v", ErrBadSummary, i, err)
		}
		if frameLen > 1<<30 {
			return nil, fmt.Errorf("%w: unreasonable epoch frame length %d", ErrBadSummary, frameLen)
		}
		sub := bufio.NewReader(io.LimitReader(br, int64(frameLen)))
		var magic [6]byte
		if _, err := io.ReadFull(sub, magic[:]); err != nil {
			return nil, fmt.Errorf("%w: epoch %d header: %v", ErrBadSummary, i, err)
		}
		if magic != summaryMagicV2 {
			return nil, fmt.Errorf("%w: epoch %d: bad frame magic", ErrBadSummary, i)
		}
		epAlgo, be, err := decodeFlatBody[K](sub, wantKind)
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", i, err)
		}
		if epAlgo != algo {
			return nil, fmt.Errorf("%w: epoch %d algorithm %v, window is %v", ErrBadSummary, i, epAlgo, algo)
		}
		// The sub-frame must be fully consumed: trailing bytes inside the
		// declared length would silently desynchronize the next epoch.
		if _, err := sub.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("%w: epoch %d: trailing bytes in frame", ErrBadSummary, i)
		}
		//hh:checked i < live ≤ epochs == len(b.ring), all validated above
		b.ring[i] = be
		if c := be.capacity(); c > capacity {
			capacity = c
		}
		if eg, ok := be.guarantee(); ok && !hasG {
			g, hasG = eg, true
		}
	}
	// The empty slots the ring will rotate into: same capacity and
	// guarantee as the decoded epochs, so the window keeps advertising
	// one consistent bound as it advances past the transferred state.
	for i := int(live); i < int(epochs); i++ {
		//hh:checked i < epochs == len(b.ring); capacity comes from a decoded epoch, ≥ 1 by decodeFlatBody validation
		b.ring[i] = &weightedBackend[K]{ssr: spacesaving.NewRSized[K](capacity, 0), g: g, hasG: hasG}
	}
	return &summary[K]{algo: algo, be: b}, nil
}
