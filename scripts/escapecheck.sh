#!/usr/bin/env bash
# escapecheck.sh — diff the compiler's escape-analysis diagnostics for
# the //hh:noalloc packages against the committed baseline.
#
# hhlint checks the zero-alloc contract syntactically; this script is
# the compiler-level backstop: any new "escapes to heap" / "moved to
# heap" line in the hot-path packages fails CI until it is either fixed
# or deliberately accepted with ./scripts/escapecheck.sh -update.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=(. ./internal/spacesaving ./internal/frequent ./internal/lossycounting
	./internal/sketch ./internal/hashing ./internal/core ./internal/arena)
BASELINE=scripts/escape_baseline.txt

# A fresh build cache: -gcflags=-m diagnostics are not replayed for
# cached packages, so an incremental build would silently diff nothing.
GOCACHE="$(mktemp -d)"
export GOCACHE
trap 'rm -rf "$GOCACHE"' EXIT

current() {
	go build -gcflags='-m' "${PKGS[@]}" 2>&1 |
		grep -E 'escapes to heap|moved to heap' |
		sed -E 's/:[0-9]+:[0-9]+:/:/' |
		sort -u
}

case "${1:-}" in
-update)
	current >"$BASELINE"
	echo "escapecheck: baseline updated ($(wc -l <"$BASELINE" | tr -d ' ') lines)"
	;;
"")
	if ! diff -u "$BASELINE" <(current); then
		echo "escapecheck: escape-analysis output drifted from $BASELINE" >&2
		echo "escapecheck: fix the new escape, or accept it with: ./scripts/escapecheck.sh -update" >&2
		exit 1
	fi
	echo "escapecheck: OK"
	;;
*)
	echo "usage: $0 [-update]" >&2
	exit 2
	;;
esac
