package heavyhitters_test

import (
	"bytes"
	"errors"
	"testing"

	hh "repro"
)

// failingWriter errors after accepting n bytes, exercising every write
// error path of the encoder.
type failingWriter struct {
	remaining int
}

var errSink = errors.New("sink failed")

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errSink
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestEncodeSummaryPropagatesWriteErrors(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](4)
	for _, x := range []uint64{1, 1, 2, 3} {
		ss.Update(x)
	}
	var full bytes.Buffer
	if err := hh.EncodeSummary(&full, ss); err != nil {
		t.Fatal(err)
	}
	size := full.Len()
	// Any budget below the full size must surface the sink's error; the
	// exact size must succeed.
	for budget := 0; budget < size; budget++ {
		if err := hh.EncodeSummary(&failingWriter{remaining: budget}, ss); err == nil {
			t.Errorf("budget %d/%d: expected write error", budget, size)
		}
	}
	if err := hh.EncodeSummary(&failingWriter{remaining: size}, ss); err != nil {
		t.Errorf("exact budget failed: %v", err)
	}
}

func TestEncodeStringSummaryPropagatesWriteErrors(t *testing.T) {
	ss := hh.NewSpaceSaving[string](4)
	ss.Update("a-reasonably-long-key-to-cross-buffer-boundaries")
	var full bytes.Buffer
	if err := hh.EncodeStringSummary(&full, ss); err != nil {
		t.Fatal(err)
	}
	for budget := 0; budget < full.Len(); budget++ {
		if err := hh.EncodeStringSummary(&failingWriter{remaining: budget}, ss); err == nil {
			t.Errorf("budget %d: expected write error", budget)
		}
	}
}
