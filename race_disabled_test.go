//go:build !race

package heavyhitters_test

// raceEnabled reports whether the race detector is instrumenting this
// build; see race_enabled_test.go.
const raceEnabled = false
