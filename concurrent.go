package heavyhitters

import (
	"fmt"

	"repro/internal/merge"
)

// Concurrent is the legacy thread-safe heavy-hitter summary: P
// SPACESAVING shards of m counters each, items partitioned by hash.
// Since PR 4 it is a thin wrapper over the unified concurrency tier —
// the exact composition New builds for
//
//	New[K](WithConcurrent(), WithShards(p), WithCapacity(m))
//
// so updates take the same striped per-shard locks, and every query is
// served from the tier's generation-tracked read snapshot (lock-free
// against writers, bounded-stale; see WithConcurrent). The duplicated
// shard/merge/snapshot machinery this type used to carry is gone.
//
// The error guarantee follows directly from Theorem 11: each shard
// provides a (1, 1) k-tail guarantee on its sub-stream, so the merged
// Snapshot provides a (3, 2) k-tail guarantee on the full stream.
// Because items are partitioned (not replicated) across shards, each
// item's counts live entirely in one shard — so per-item estimates via
// Estimate keep the shard-level (1, 1) guarantee against the item's own
// sub-stream, which here is its full stream.
//
// Construct with NewConcurrent; the zero value is not usable.
//
// Deprecated: build the summary directly with
// New(WithConcurrent(), WithShards(p), WithCapacity(m)) — the unified
// surface additionally offers batch ingestion (UpdateBatch),
// bound-carrying queries and the versioned codec, and its aggregate
// queries concatenate the disjoint shard counters instead of compacting
// them, avoiding the merge-step guarantee degradation described at
// Snapshot. Concurrent remains for callers that need the concrete
// merged SpaceSavingR snapshot or a custom shard hash; existing
// deployments can move to the unified query surface without
// re-ingesting via the Summary method.
type Concurrent[K comparable] struct {
	s *summary[K]
	// shards is the tier's inner sharded backend: Estimate keeps the
	// legacy O(1) owning-shard read instead of paying a tier snapshot.
	shards *shardedBackend[K]
	p      int
	m      int
}

// NewConcurrent returns a summary with p shards of m counters each, using
// hash to place items (a good stateless hash of the key; see
// NewConcurrentUint64 and NewConcurrentString for ready-made versions).
// It panics unless p ≥ 1, m ≥ 1 and hash ≠ nil.
func NewConcurrent[K comparable](p, m int, hash func(K) uint64) *Concurrent[K] {
	if p < 1 {
		panic("heavyhitters: shard count must be >= 1")
	}
	if m < 1 {
		panic("heavyhitters: m must be >= 1")
	}
	if hash == nil {
		panic("heavyhitters: nil hash function")
	}
	// The same tier stack New assembles for WithConcurrent +
	// WithShards(p) + WithCapacity(m), with the caller's hash in place
	// of the derived keyHasher (placement only — correctness never
	// depends on which shard owns an item).
	cfg := config{algo: AlgoSpaceSaving, m: m, shards: p, concurrent: true, seed: 1}
	mk := func(shard int) backend[K] { return newBackend[K](cfg, shard, hash) }
	sb := newShardedBackend(p, cfg.coalescible(), hash, mk)
	be := newConcurrentTier[K](cfg, sb)
	return &Concurrent[K]{s: &summary[K]{algo: AlgoSpaceSaving, be: be}, shards: sb, p: p, m: m}
}

// NewConcurrentUint64 returns a sharded summary for uint64 items using a
// Fibonacci-multiplicative shard hash.
func NewConcurrentUint64(p, m int) *Concurrent[uint64] {
	return NewConcurrent[uint64](p, m, func(x uint64) uint64 { return mix64(x) })
}

// NewConcurrentString returns a sharded summary for string items using
// FNV-1a.
func NewConcurrentString(p, m int) *Concurrent[string] {
	return NewConcurrent[string](p, m, func(s string) uint64 { return fnv1a(s, 0) })
}

// Update records one occurrence of item. Safe for concurrent use.
func (c *Concurrent[K]) Update(item K) { c.s.Update(item) }

// Estimate returns the owning shard's estimate for item. Safe for
// concurrent use. It keeps the legacy semantics — an O(1) live lookup
// under the owning shard's lock — rather than going through the tier's
// read snapshot, so per-item polling loops written against the old
// implementation keep their cost profile (the unified Summary surface
// is the place to opt into snapshot reads).
func (c *Concurrent[K]) Estimate(item K) uint64 { return uint64(c.shards.estimate(item)) }

// N returns the number of updates processed so far. Safe for concurrent
// use; under concurrent updates the value is a point-in-time snapshot,
// exact as soon as writers quiesce.
func (c *Concurrent[K]) N() uint64 { return uint64(c.s.N()) }

// Shards returns the shard count P.
func (c *Concurrent[K]) Shards() int { return c.p }

// ShardCapacity returns m, the counters per shard.
func (c *Concurrent[K]) ShardCapacity() int { return c.m }

// Snapshot merges all shards into a single weighted summary with the
// configured per-shard capacity m (ShardCapacity), so callers no longer
// re-specify the merge parameters. The shard counters are read from one
// tier snapshot: under concurrent updates it reflects consistent
// per-shard states, not a single global instant.
//
// The compaction degrades the guarantee per Theorem 11: each shard is a
// (1, 1)-guaranteed summary of its sub-stream, and merging ℓ summaries
// with (A, B) k-tail guarantees yields (3A, A+B) — here (3, 2) — over
// the full stream. Per-item queries against the live Concurrent (or a
// summary built by New, which concatenates rather than compacts) keep
// the shard-level (1, 1) guarantee; only the compacted snapshot pays
// the (3A, A+B) price.
func (c *Concurrent[K]) Snapshot() *SpaceSavingR[K] {
	agg := c.s.be.appendEntries(nil, -1)
	entries := make([]Entry[K], len(agg))
	for i, e := range agg {
		entries[i] = Entry[K]{Item: e.Item, Count: uint64(e.Count), Err: uint64(e.Err)}
	}
	return merge.MSparse(c.m, entries)
}

// Top returns the k largest counters of a fresh snapshot merged at the
// per-shard capacity.
func (c *Concurrent[K]) Top(k int) []WeightedEntry[K] {
	return TopWeighted[K](c.Snapshot(), k)
}

// Reset clears every shard. It is not atomic with respect to concurrent
// updates (callers should quiesce writers first), but the tier's reset
// era guarantees a reader that starts after Reset returns never serves
// pre-Reset entries.
func (c *Concurrent[K]) Reset() { c.s.Reset() }

// String describes the configuration.
func (c *Concurrent[K]) String() string {
	return fmt.Sprintf("heavyhitters.Concurrent{shards: %d, m: %d}", c.p, c.m)
}

// Summary returns c on the unified Summary surface — since the PR 4
// refactor Concurrent is that summary, so the result shares all state
// with c: updates through either handle land in the same shards, and
// the Summary's bound-carrying queries (EstimateBounds, HeavyHitters,
// the allocation-conscious TopAppend/All) serve from the same lock-free
// snapshot tier. Unlike Snapshot — which compacts the shards into m
// counters and pays the Theorem 11 (3, 2) degradation — the summary
// concatenates the shards' disjoint counter sets, so per-item answers
// keep the shard-level (1, 1) guarantee and aggregate queries introduce
// no merge error. It also opens the v2 codec (Encode) and
// MergeSummaries to legacy Concurrent deployments. Every method is safe
// for concurrent use.
func (c *Concurrent[K]) Summary() Summary[K] { return c.s }
