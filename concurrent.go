package heavyhitters

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/merge"
)

// Concurrent is a thread-safe heavy-hitter summary built from P
// independent SPACESAVING shards, each guarded by its own mutex. Updates
// hash to a shard (so a given item always lands on the same shard, and
// each shard sees a sub-stream); Snapshot merges the shards with the
// Section 6.2 construction.
//
// The error guarantee follows directly from Theorem 11: each shard
// provides a (1, 1) k-tail guarantee on its sub-stream, so the merged
// snapshot provides a (3, 2) k-tail guarantee on the full stream. Because
// items are partitioned (not replicated) across shards, each item's
// counts live entirely in one shard — so per-item estimates via Estimate
// are exact shard estimates and keep the shard-level (1, 1) guarantee
// against the item's own sub-stream, which here is its full stream.
//
// Construct with NewConcurrent; the zero value is not usable.
//
// Deprecated: new code should build a sharded Summary with
// New(WithShards(p), WithCapacity(m)) — the unified surface additionally
// offers batch ingestion (UpdateBatch), bound-carrying queries and the
// versioned codec, and its aggregate queries concatenate the disjoint
// shard counters instead of compacting them, avoiding the merge-step
// guarantee degradation described at Snapshot. Concurrent remains for
// callers that need the concrete merged SpaceSavingR snapshot.
type Concurrent[K comparable] struct {
	shards []concurrentShard[K]
	hash   func(K) uint64
	m      int
	n      atomic.Uint64
}

type concurrentShard[K comparable] struct {
	mu  sync.Mutex
	alg *SpaceSaving[K]
	// Padding to keep shard locks on distinct cache lines.
	_ [40]byte
}

// NewConcurrent returns a summary with p shards of m counters each, using
// hash to place items (a good stateless hash of the key; see
// NewConcurrentUint64 and NewConcurrentString for ready-made versions).
// It panics unless p ≥ 1, m ≥ 1 and hash ≠ nil.
func NewConcurrent[K comparable](p, m int, hash func(K) uint64) *Concurrent[K] {
	if p < 1 {
		panic("heavyhitters: shard count must be >= 1")
	}
	if m < 1 {
		panic("heavyhitters: m must be >= 1")
	}
	if hash == nil {
		panic("heavyhitters: nil hash function")
	}
	c := &Concurrent[K]{shards: make([]concurrentShard[K], p), hash: hash, m: m}
	for i := range c.shards {
		c.shards[i].alg = NewSpaceSaving[K](m)
	}
	return c
}

// NewConcurrentUint64 returns a sharded summary for uint64 items using a
// Fibonacci-multiplicative shard hash.
func NewConcurrentUint64(p, m int) *Concurrent[uint64] {
	return NewConcurrent[uint64](p, m, func(x uint64) uint64 { return mix64(x) })
}

// NewConcurrentString returns a sharded summary for string items using
// FNV-1a.
func NewConcurrentString(p, m int) *Concurrent[string] {
	return NewConcurrent[string](p, m, func(s string) uint64 { return fnv1a(s, 0) })
}

// Update records one occurrence of item. Safe for concurrent use.
func (c *Concurrent[K]) Update(item K) {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.alg.Update(item)
	sh.mu.Unlock()
	c.n.Add(1)
}

// Estimate returns the owning shard's estimate for item. Safe for
// concurrent use.
func (c *Concurrent[K]) Estimate(item K) uint64 {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.alg.Estimate(item)
}

// N returns the number of updates processed so far. Safe for concurrent
// use; under concurrent updates the value is a point-in-time snapshot.
func (c *Concurrent[K]) N() uint64 { return c.n.Load() }

// Shards returns the shard count P.
func (c *Concurrent[K]) Shards() int { return len(c.shards) }

// ShardCapacity returns m, the counters per shard.
func (c *Concurrent[K]) ShardCapacity() int { return c.m }

// Snapshot merges all shards into a single weighted summary with the
// configured per-shard capacity m (ShardCapacity), so callers no longer
// re-specify the merge parameters. It locks shards one at a time, so a
// snapshot taken during concurrent updates reflects some consistent
// per-shard states, not a single global instant.
//
// The compaction degrades the guarantee per Theorem 11: each shard is a
// (1, 1)-guaranteed summary of its sub-stream, and merging ℓ summaries
// with (A, B) k-tail guarantees yields (3A, A+B) — here (3, 2) — over
// the full stream. Per-item queries against the live Concurrent (or a
// sharded Summary built by New, which concatenates rather than compacts)
// keep the shard-level (1, 1) guarantee; only the compacted snapshot
// pays the (3A, A+B) price.
func (c *Concurrent[K]) Snapshot() *SpaceSavingR[K] {
	entries := make([][]Entry[K], len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries[i] = sh.alg.Entries()
		sh.mu.Unlock()
	}
	return merge.MSparse(c.m, entries...)
}

// Top returns the k largest counters of a fresh snapshot merged at the
// per-shard capacity.
func (c *Concurrent[K]) Top(k int) []WeightedEntry[K] {
	return TopWeighted[K](c.Snapshot(), k)
}

// Reset clears every shard. It is not atomic with respect to concurrent
// updates: callers should quiesce writers first.
func (c *Concurrent[K]) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.alg.Reset()
		sh.mu.Unlock()
	}
	c.n.Store(0)
}

// String describes the configuration.
func (c *Concurrent[K]) String() string {
	return fmt.Sprintf("heavyhitters.Concurrent{shards: %d, m: %d}", len(c.shards), c.m)
}
