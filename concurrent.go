package heavyhitters

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/merge"
)

// Concurrent is a thread-safe heavy-hitter summary built from P
// independent SPACESAVING shards, each guarded by its own mutex. Updates
// hash to a shard (so a given item always lands on the same shard, and
// each shard sees a sub-stream); Snapshot merges the shards with the
// Section 6.2 construction.
//
// The error guarantee follows directly from Theorem 11: each shard
// provides a (1, 1) k-tail guarantee on its sub-stream, so the merged
// snapshot provides a (3, 2) k-tail guarantee on the full stream. Because
// items are partitioned (not replicated) across shards, each item's
// counts live entirely in one shard — so per-item estimates via Estimate
// are exact shard estimates and keep the shard-level (1, 1) guarantee
// against the item's own sub-stream, which here is its full stream.
//
// Construct with NewConcurrent; the zero value is not usable.
type Concurrent[K comparable] struct {
	shards []concurrentShard[K]
	hash   func(K) uint64
	m      int
	n      atomic.Uint64
}

type concurrentShard[K comparable] struct {
	mu  sync.Mutex
	alg *SpaceSaving[K]
	// Padding to keep shard locks on distinct cache lines.
	_ [40]byte
}

// NewConcurrent returns a summary with p shards of m counters each, using
// hash to place items (a good stateless hash of the key; see
// NewConcurrentUint64 and NewConcurrentString for ready-made versions).
// It panics unless p ≥ 1, m ≥ 1 and hash ≠ nil.
func NewConcurrent[K comparable](p, m int, hash func(K) uint64) *Concurrent[K] {
	if p < 1 {
		panic("heavyhitters: shard count must be >= 1")
	}
	if m < 1 {
		panic("heavyhitters: m must be >= 1")
	}
	if hash == nil {
		panic("heavyhitters: nil hash function")
	}
	c := &Concurrent[K]{shards: make([]concurrentShard[K], p), hash: hash, m: m}
	for i := range c.shards {
		c.shards[i].alg = NewSpaceSaving[K](m)
	}
	return c
}

// NewConcurrentUint64 returns a sharded summary for uint64 items using a
// Fibonacci-multiplicative shard hash.
func NewConcurrentUint64(p, m int) *Concurrent[uint64] {
	return NewConcurrent[uint64](p, m, func(x uint64) uint64 {
		x ^= x >> 33
		x *= 0x9e3779b97f4a7c15
		return x ^ x>>29
	})
}

// NewConcurrentString returns a sharded summary for string items using
// FNV-1a.
func NewConcurrentString(p, m int) *Concurrent[string] {
	return NewConcurrent[string](p, m, func(s string) uint64 {
		const (
			offset = 14695981039346656037
			prime  = 1099511628211
		)
		h := uint64(offset)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		return h
	})
}

// Update records one occurrence of item. Safe for concurrent use.
func (c *Concurrent[K]) Update(item K) {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.alg.Update(item)
	sh.mu.Unlock()
	c.n.Add(1)
}

// Estimate returns the owning shard's estimate for item. Safe for
// concurrent use.
func (c *Concurrent[K]) Estimate(item K) uint64 {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.alg.Estimate(item)
}

// N returns the number of updates processed so far. Safe for concurrent
// use; under concurrent updates the value is a point-in-time snapshot.
func (c *Concurrent[K]) N() uint64 { return c.n.Load() }

// Shards returns the shard count P.
func (c *Concurrent[K]) Shards() int { return len(c.shards) }

// ShardCapacity returns m, the counters per shard.
func (c *Concurrent[K]) ShardCapacity() int { return c.m }

// Snapshot merges all shards into a single m-counter weighted summary
// with the Theorem 11 (3, 2) k-tail guarantee over the full stream. It
// locks shards one at a time, so a snapshot taken during concurrent
// updates reflects some consistent per-shard states, not a single global
// instant.
func (c *Concurrent[K]) Snapshot(m int) *SpaceSavingR[K] {
	entries := make([][]Entry[K], len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries[i] = sh.alg.Entries()
		sh.mu.Unlock()
	}
	return merge.MSparse(m, entries...)
}

// Top returns the k largest counters of a fresh snapshot merged at the
// per-shard capacity.
func (c *Concurrent[K]) Top(k int) []WeightedEntry[K] {
	return TopWeighted[K](c.Snapshot(c.m), k)
}

// Reset clears every shard. It is not atomic with respect to concurrent
// updates: callers should quiesce writers first.
func (c *Concurrent[K]) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.alg.Reset()
		sh.mu.Unlock()
	}
	c.n.Store(0)
}

// String describes the configuration.
func (c *Concurrent[K]) String() string {
	return fmt.Sprintf("heavyhitters.Concurrent{shards: %d, m: %d}", len(c.shards), c.m)
}
