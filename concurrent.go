package heavyhitters

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/merge"
)

// Concurrent is a thread-safe heavy-hitter summary built from P
// independent SPACESAVING shards, each guarded by its own mutex. Updates
// hash to a shard (so a given item always lands on the same shard, and
// each shard sees a sub-stream); Snapshot merges the shards with the
// Section 6.2 construction.
//
// The error guarantee follows directly from Theorem 11: each shard
// provides a (1, 1) k-tail guarantee on its sub-stream, so the merged
// snapshot provides a (3, 2) k-tail guarantee on the full stream. Because
// items are partitioned (not replicated) across shards, each item's
// counts live entirely in one shard — so per-item estimates via Estimate
// are exact shard estimates and keep the shard-level (1, 1) guarantee
// against the item's own sub-stream, which here is its full stream.
//
// Construct with NewConcurrent; the zero value is not usable.
//
// Deprecated: new code should build a sharded Summary with
// New(WithShards(p), WithCapacity(m)) — the unified surface additionally
// offers batch ingestion (UpdateBatch), bound-carrying queries and the
// versioned codec, and its aggregate queries concatenate the disjoint
// shard counters instead of compacting them, avoiding the merge-step
// guarantee degradation described at Snapshot. Concurrent remains for
// callers that need the concrete merged SpaceSavingR snapshot; existing
// deployments can bridge onto the unified query surface without
// re-ingesting via the Summary method.
type Concurrent[K comparable] struct {
	shards []concurrentShard[K]
	hash   func(K) uint64
	m      int
	n      atomic.Uint64
}

type concurrentShard[K comparable] struct {
	mu  sync.Mutex
	alg *SpaceSaving[K]
	// Padding to keep shard locks on distinct cache lines.
	_ [40]byte
}

// NewConcurrent returns a summary with p shards of m counters each, using
// hash to place items (a good stateless hash of the key; see
// NewConcurrentUint64 and NewConcurrentString for ready-made versions).
// It panics unless p ≥ 1, m ≥ 1 and hash ≠ nil.
func NewConcurrent[K comparable](p, m int, hash func(K) uint64) *Concurrent[K] {
	if p < 1 {
		panic("heavyhitters: shard count must be >= 1")
	}
	if m < 1 {
		panic("heavyhitters: m must be >= 1")
	}
	if hash == nil {
		panic("heavyhitters: nil hash function")
	}
	c := &Concurrent[K]{shards: make([]concurrentShard[K], p), hash: hash, m: m}
	for i := range c.shards {
		c.shards[i].alg = NewSpaceSaving[K](m)
	}
	return c
}

// NewConcurrentUint64 returns a sharded summary for uint64 items using a
// Fibonacci-multiplicative shard hash.
func NewConcurrentUint64(p, m int) *Concurrent[uint64] {
	return NewConcurrent[uint64](p, m, func(x uint64) uint64 { return mix64(x) })
}

// NewConcurrentString returns a sharded summary for string items using
// FNV-1a.
func NewConcurrentString(p, m int) *Concurrent[string] {
	return NewConcurrent[string](p, m, func(s string) uint64 { return fnv1a(s, 0) })
}

// Update records one occurrence of item. Safe for concurrent use.
func (c *Concurrent[K]) Update(item K) {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.alg.Update(item)
	sh.mu.Unlock()
	c.n.Add(1)
}

// Estimate returns the owning shard's estimate for item. Safe for
// concurrent use.
func (c *Concurrent[K]) Estimate(item K) uint64 {
	sh := &c.shards[c.hash(item)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.alg.Estimate(item)
}

// N returns the number of updates processed so far. Safe for concurrent
// use; under concurrent updates the value is a point-in-time snapshot.
func (c *Concurrent[K]) N() uint64 { return c.n.Load() }

// Shards returns the shard count P.
func (c *Concurrent[K]) Shards() int { return len(c.shards) }

// ShardCapacity returns m, the counters per shard.
func (c *Concurrent[K]) ShardCapacity() int { return c.m }

// Snapshot merges all shards into a single weighted summary with the
// configured per-shard capacity m (ShardCapacity), so callers no longer
// re-specify the merge parameters. It locks shards one at a time, so a
// snapshot taken during concurrent updates reflects some consistent
// per-shard states, not a single global instant.
//
// The compaction degrades the guarantee per Theorem 11: each shard is a
// (1, 1)-guaranteed summary of its sub-stream, and merging ℓ summaries
// with (A, B) k-tail guarantees yields (3A, A+B) — here (3, 2) — over
// the full stream. Per-item queries against the live Concurrent (or a
// sharded Summary built by New, which concatenates rather than compacts)
// keep the shard-level (1, 1) guarantee; only the compacted snapshot
// pays the (3A, A+B) price.
func (c *Concurrent[K]) Snapshot() *SpaceSavingR[K] {
	entries := make([][]Entry[K], len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries[i] = sh.alg.Entries()
		sh.mu.Unlock()
	}
	return merge.MSparse(c.m, entries...)
}

// Top returns the k largest counters of a fresh snapshot merged at the
// per-shard capacity.
func (c *Concurrent[K]) Top(k int) []WeightedEntry[K] {
	return TopWeighted[K](c.Snapshot(), k)
}

// Reset clears every shard. It is not atomic with respect to concurrent
// updates: callers should quiesce writers first.
func (c *Concurrent[K]) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.alg.Reset()
		sh.mu.Unlock()
	}
	c.n.Store(0)
}

// String describes the configuration.
func (c *Concurrent[K]) String() string {
	return fmt.Sprintf("heavyhitters.Concurrent{shards: %d, m: %d}", len(c.shards), c.m)
}

// Summary returns a live view of c on the unified Summary surface:
// updates through either handle land in the same shards, and the
// Summary's bound-carrying queries (EstimateBounds, HeavyHitters, the
// allocation-conscious TopAppend/All) read the live shard counters
// directly. Unlike Snapshot — which compacts the shards into m counters
// and pays the Theorem 11 (3, 2) degradation — the view concatenates
// the shards' disjoint counter sets, so per-item answers keep the
// shard-level (1, 1) guarantee and aggregate queries introduce no merge
// error. It also opens the v2 codec (Encode) and MergeSummaries to
// legacy Concurrent deployments. Every method of the view is safe for
// concurrent use; aggregate queries lock shards one at a time, like
// Snapshot.
func (c *Concurrent[K]) Summary() Summary[K] {
	return &summary[K]{algo: AlgoSpaceSaving, be: &concurrentBackend[K]{c: c}}
}

// concurrentBackend adapts a Concurrent's shard set to the internal
// backend contract. It is stateless (no reused scratch) so the view
// inherits Concurrent's thread safety; queries allocate what they
// return.
type concurrentBackend[K comparable] struct {
	c *Concurrent[K]
}

func (b *concurrentBackend[K]) update(item K) { b.c.Update(item) }

func (b *concurrentBackend[K]) updateN(item K, n uint64) {
	if n == 0 {
		return
	}
	sh := &b.c.shards[b.c.hash(item)%uint64(len(b.c.shards))]
	sh.mu.Lock()
	sh.alg.AddN(item, n)
	sh.mu.Unlock()
	b.c.n.Add(n)
}

func (b *concurrentBackend[K]) updateWeighted(item K, w float64) {
	if w != math.Trunc(w) {
		// No WithWeighted advice here: a Concurrent cannot be
		// reconfigured — real-valued updates need a summary built by New.
		panic("heavyhitters: Concurrent accepts integral weights only; build New(WithWeighted()) for real-valued updates")
	}
	if w >= 1<<64 {
		panic("heavyhitters: integral weight overflows uint64")
	}
	b.updateN(item, uint64(w))
}

func (b *concurrentBackend[K]) updateBatch(items []K, _ []uint64) {
	for _, it := range items {
		b.c.Update(it)
	}
}

func (b *concurrentBackend[K]) estimate(item K) float64 { return float64(b.c.Estimate(item)) }

func (b *concurrentBackend[K]) bounds(item K) (float64, float64) {
	sh := &b.c.shards[b.c.hash(item)%uint64(len(b.c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lo, hi := EstimateBounds[K](sh.alg, item)
	return float64(lo), float64(hi)
}

// appendEntries concatenates the shards' disjoint counter sets, locking
// one shard at a time (consistent per-shard states, not one global
// instant — the same semantics as the sharded Summary backend).
func (b *concurrentBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	for i := range b.c.shards {
		sh := &b.c.shards[i]
		sh.mu.Lock()
		sh.alg.Each(func(e Entry[K]) bool {
			dst = append(dst, WeightedEntry[K]{Item: e.Item, Count: float64(e.Count), Err: float64(e.Err)})
			return true
		})
		sh.mu.Unlock()
	}
	core.SortWeightedEntries(dst[start:])
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

// each snapshots first: yielding under a shard lock could deadlock a
// consumer that queries the view from inside the loop.
func (b *concurrentBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	for _, e := range b.appendEntries(nil, -1) {
		if !yield(e) {
			return
		}
	}
}

func (b *concurrentBackend[K]) capacity() int { return b.c.m }

func (b *concurrentBackend[K]) length() int {
	n := 0
	for i := range b.c.shards {
		sh := &b.c.shards[i]
		sh.mu.Lock()
		n += sh.alg.Len()
		sh.mu.Unlock()
	}
	return n
}

func (b *concurrentBackend[K]) total() float64 { return float64(b.c.n.Load()) }

func (b *concurrentBackend[K]) guarantee() (TailGuarantee, bool) {
	// Per-shard SPACESAVING constants; per-item queries are exact shard
	// queries, so the shard-level guarantee is the right one to report
	// (the compacted Snapshot path is what pays (3, 2)).
	return TailGuarantee{A: 1, B: 1}, true
}

func (b *concurrentBackend[K]) mergeable() bool { return true }
func (b *concurrentBackend[K]) overEst() bool   { return true }
func (b *concurrentBackend[K]) slackOut() float64 {
	return 0 // SPACESAVING shards never undercount
}

func (b *concurrentBackend[K]) absentExtra() float64 {
	// An absent item lives wholly in its owning shard, so the worst
	// single shard bounds it.
	var worst float64
	for i := range b.c.shards {
		sh := &b.c.shards[i]
		sh.mu.Lock()
		if e := float64(sh.alg.MinCount()); e > worst {
			worst = e
		}
		sh.mu.Unlock()
	}
	return worst
}

func (b *concurrentBackend[K]) windowState() (WindowState, bool) { return WindowState{}, false }

func (b *concurrentBackend[K]) reset() { b.c.Reset() }
