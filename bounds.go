package heavyhitters

import (
	"cmp"

	"repro/internal/frequent"
	"repro/internal/lossycounting"
	"repro/internal/spacesaving"
)

// EstimateBounds returns certain lower and upper bounds on item's true
// frequency, derived from the summary's per-item metadata rather than the
// global tail bound:
//
//   - SPACESAVING (either backing structure): stored items satisfy
//     c_i − ε_i ≤ f_i ≤ c_i (Lemma 3 of Metwally et al.); unstored items
//     satisfy 0 ≤ f_i ≤ Δ (the minimum counter).
//   - FREQUENT: stored items satisfy c_i ≤ f_i ≤ c_i + d, where d is the
//     number of decrement-all operations (Appendix B); unstored items
//     satisfy 0 ≤ f_i ≤ d.
//   - LOSSYCOUNTING: stored items satisfy c_i ≤ f_i ≤ c_i + Δ_i; unstored
//     items satisfy 0 ≤ f_i ≤ ⌈N/w⌉.
//
// For summary types without per-item metadata the point estimate is
// returned for both bounds.
//
//hh:noalloc
func EstimateBounds[K comparable](s Counter[K], item K) (lo, hi uint64) {
	switch alg := any(s).(type) {
	case *spacesaving.StreamSummary[K]:
		c := alg.Estimate(item)
		if c == 0 {
			return 0, alg.MinCount()
		}
		return c - alg.ErrorOf(item), c
	case *frequent.Frequent[K]:
		c := alg.Estimate(item)
		if c == 0 {
			return 0, alg.Decrements()
		}
		return c, c + alg.Decrements()
	case *lossycounting.LossyCounting[K]:
		c := alg.Estimate(item)
		if c == 0 {
			window := uint64(alg.Capacity())
			return 0, (alg.N() + window - 1) / window
		}
		return c, c + alg.DeltaOf(item)
	default:
		c := s.Estimate(item)
		return c, c
	}
}

// EstimateBoundsHeap is EstimateBounds for the heap-backed SPACESAVING
// variant (a separate function because its key constraint is cmp.Ordered
// rather than comparable).
//
//hh:noalloc
func EstimateBoundsHeap[K cmp.Ordered](s *SpaceSavingHeap[K], item K) (lo, hi uint64) {
	c := s.Estimate(item)
	if c == 0 {
		return 0, s.MinCount()
	}
	return c - s.ErrorOf(item), c
}
