package heavyhitters_test

import (
	"bytes"
	"math"
	"sync"
	"testing"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

func TestConcurrentSequentialCorrectness(t *testing.T) {
	c := hh.NewConcurrentUint64(4, 32)
	s := stream.Zipf(500, 1.2, 50000, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	for _, x := range s {
		c.Update(x)
	}
	if c.N() != uint64(len(s)) {
		t.Errorf("N = %d, want %d", c.N(), len(s))
	}
	// Items are partitioned across shards, so per-item estimates keep a
	// shard-level overestimate guarantee: estimate >= true for stored.
	for i := uint64(0); i < 10; i++ {
		if float64(c.Estimate(i)) < truth.Freq(i) {
			t.Errorf("item %d: estimate %d under true %v", i, c.Estimate(i), truth.Freq(i))
		}
	}
}

func TestConcurrentSnapshotGuarantee(t *testing.T) {
	const n, total, m, k = 400, 80000, 100, 10
	c := hh.NewConcurrentUint64(8, m)
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 5)
	truth := exact.FromStream(s)
	for _, x := range s {
		c.Update(x)
	}
	snap := c.Snapshot()
	bound := hh.MergedGuarantee(hh.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
	for i := uint64(0); i < n; i++ {
		if d := math.Abs(truth.Freq(i) - snap.EstimateWeighted(i)); d > bound {
			t.Errorf("item %d: snapshot error %v exceeds (3,2) bound %v", i, d, bound)
		}
	}
}

func TestConcurrentParallelUpdates(t *testing.T) {
	// Hammer the structure from many goroutines; run with -race in CI.
	const goroutines, perG = 8, 20000
	c := hh.NewConcurrentUint64(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := stream.Zipf(200, 1.1, perG, stream.OrderRandom, seed)
			for _, x := range s {
				c.Update(x)
			}
		}(uint64(g))
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Estimate(0)
				c.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.N() != goroutines*perG {
		t.Errorf("N = %d, want %d", c.N(), goroutines*perG)
	}
	// Item 0 is the heavy hitter of every goroutine's stream; it must
	// dominate the final snapshot.
	top := c.Top(1)
	if len(top) != 1 || top[0].Item != 0 {
		t.Errorf("Top(1) = %v, want item 0", top)
	}
}

func TestConcurrentStringKeys(t *testing.T) {
	c := hh.NewConcurrentString(4, 16)
	for i := 0; i < 100; i++ {
		c.Update("hot")
		if i%10 == 0 {
			c.Update("warm")
		}
	}
	if got := c.Estimate("hot"); got < 100 {
		t.Errorf("Estimate(hot) = %d, want >= 100", got)
	}
	top := c.Top(1)
	if top[0].Item != "hot" {
		t.Errorf("Top = %v", top)
	}
}

func TestConcurrentReset(t *testing.T) {
	c := hh.NewConcurrentUint64(2, 8)
	c.Update(1)
	c.Reset()
	if c.N() != 0 || c.Estimate(1) != 0 {
		t.Error("Reset did not clear state")
	}
	c.Update(2)
	if c.Estimate(2) != 1 {
		t.Error("unusable after Reset")
	}
}

func TestConcurrentConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"p=0":      func() { hh.NewConcurrentUint64(0, 8) },
		"m=0":      func() { hh.NewConcurrentUint64(2, 0) },
		"nil hash": func() { hh.NewConcurrent[uint64](2, 8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentAccessors(t *testing.T) {
	c := hh.NewConcurrentUint64(3, 16)
	if c.Shards() != 3 || c.ShardCapacity() != 16 {
		t.Errorf("Shards/ShardCapacity = %d/%d", c.Shards(), c.ShardCapacity())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

// TestConcurrentSummaryBridge is the regression test for the Summary()
// adapter: legacy Concurrent callers get the unified surface — live
// bound-carrying queries, TopAppend, HeavyHitters, codec — without the
// merge-degraded Snapshot being their only query route.
func TestConcurrentSummaryBridge(t *testing.T) {
	c := hh.NewConcurrentUint64(4, 64)
	view := c.Summary()
	str := stream.Zipf(200, 1.2, 30000, stream.OrderRandom, 41)
	truth := exact.FromStream(str)
	for _, x := range str {
		c.Update(x)
	}

	if got, want := view.N(), float64(len(str)); got != want {
		t.Fatalf("N() = %v, want %v", got, want)
	}
	if view.Algorithm() != hh.AlgoSpaceSaving {
		t.Errorf("Algorithm = %v", view.Algorithm())
	}
	if view.Capacity() != 64 {
		t.Errorf("Capacity = %d, want the per-shard 64", view.Capacity())
	}
	// Bound-carrying per-item queries: certain intervals, matching the
	// live per-shard estimates (no Snapshot compaction in between).
	for i := uint64(0); i < 200; i++ {
		lo, hi := view.EstimateBounds(i)
		if f := truth.Freq(i); lo > f || hi < f {
			t.Fatalf("bounds [%v, %v] exclude true frequency %v of item %d", lo, hi, f, i)
		}
		if est := view.Estimate(i); est != float64(c.Estimate(i)) {
			t.Fatalf("view Estimate(%d) = %v, Concurrent says %v", i, est, c.Estimate(i))
		}
	}
	// TopAppend into a reused buffer, decreasing and duplicate-free.
	var buf []hh.WeightedEntry[uint64]
	buf = view.TopAppend(buf[:0], 10)
	if len(buf) != 10 || buf[0].Item != 0 {
		t.Fatalf("TopAppend = %v", buf)
	}
	for i := 1; i < len(buf); i++ {
		if buf[i].Count > buf[i-1].Count {
			t.Fatalf("TopAppend out of order at %d", i)
		}
	}
	// HeavyHitters carries certain bounds and finds the heavy items.
	hits := view.HeavyHitters(0.05)
	if len(hits) == 0 {
		t.Fatal("no heavy hitters reported")
	}
	found := false
	for _, h := range hits {
		if h.Item == 0 {
			found = true
			if f := truth.Freq(0); h.Lo > f || h.Hi < f {
				t.Errorf("hit bounds [%v, %v] exclude %v", h.Lo, h.Hi, f)
			}
		}
	}
	if !found {
		t.Error("heaviest item missing from HeavyHitters")
	}
	if g, ok := view.Guarantee(); !ok || g.A != 1 || g.B != 1 {
		t.Errorf("Guarantee = %v, %v; want the live (1, 1), not Snapshot's (3, 2)", g, ok)
	}

	// The view is live in both directions: updates through either handle
	// are visible to the other.
	view.Update(777_777)
	view.UpdateWeighted(777_777, 4)
	if got := c.Estimate(777_777); got != 5 {
		t.Errorf("Concurrent.Estimate after view updates = %v, want 5", got)
	}
	if got := view.N(); got != float64(len(str))+5 {
		t.Errorf("N() = %v after view updates", got)
	}

	// The bridge opens the v2 codec and merging to legacy deployments.
	var blob bytes.Buffer
	if err := view.Encode(&blob); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](&blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != view.N() {
		t.Errorf("decoded N = %v, want %v", dec.N(), view.N())
	}
	if _, err := view.Merge(hh.New[uint64](hh.WithCapacity(64))); err != nil {
		t.Errorf("merging the bridge failed: %v", err)
	}

	// And it stays safe for concurrent use, like the Concurrent it wraps.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				view.Update(base + i%50)
				if i%500 == 0 {
					view.TopAppend(nil, 5)
					view.EstimateBounds(base)
				}
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
}
