package heavyhitters_test

import (
	"math"
	"sync"
	"testing"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

func TestConcurrentSequentialCorrectness(t *testing.T) {
	c := hh.NewConcurrentUint64(4, 32)
	s := stream.Zipf(500, 1.2, 50000, stream.OrderRandom, 3)
	truth := exact.FromStream(s)
	for _, x := range s {
		c.Update(x)
	}
	if c.N() != uint64(len(s)) {
		t.Errorf("N = %d, want %d", c.N(), len(s))
	}
	// Items are partitioned across shards, so per-item estimates keep a
	// shard-level overestimate guarantee: estimate >= true for stored.
	for i := uint64(0); i < 10; i++ {
		if float64(c.Estimate(i)) < truth.Freq(i) {
			t.Errorf("item %d: estimate %d under true %v", i, c.Estimate(i), truth.Freq(i))
		}
	}
}

func TestConcurrentSnapshotGuarantee(t *testing.T) {
	const n, total, m, k = 400, 80000, 100, 10
	c := hh.NewConcurrentUint64(8, m)
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 5)
	truth := exact.FromStream(s)
	for _, x := range s {
		c.Update(x)
	}
	snap := c.Snapshot()
	bound := hh.MergedGuarantee(hh.TailGuarantee{A: 1, B: 1}).Bound(m, k, truth.Res1(k))
	for i := uint64(0); i < n; i++ {
		if d := math.Abs(truth.Freq(i) - snap.EstimateWeighted(i)); d > bound {
			t.Errorf("item %d: snapshot error %v exceeds (3,2) bound %v", i, d, bound)
		}
	}
}

func TestConcurrentParallelUpdates(t *testing.T) {
	// Hammer the structure from many goroutines; run with -race in CI.
	const goroutines, perG = 8, 20000
	c := hh.NewConcurrentUint64(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := stream.Zipf(200, 1.1, perG, stream.OrderRandom, seed)
			for _, x := range s {
				c.Update(x)
			}
		}(uint64(g))
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Estimate(0)
				c.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.N() != goroutines*perG {
		t.Errorf("N = %d, want %d", c.N(), goroutines*perG)
	}
	// Item 0 is the heavy hitter of every goroutine's stream; it must
	// dominate the final snapshot.
	top := c.Top(1)
	if len(top) != 1 || top[0].Item != 0 {
		t.Errorf("Top(1) = %v, want item 0", top)
	}
}

func TestConcurrentStringKeys(t *testing.T) {
	c := hh.NewConcurrentString(4, 16)
	for i := 0; i < 100; i++ {
		c.Update("hot")
		if i%10 == 0 {
			c.Update("warm")
		}
	}
	if got := c.Estimate("hot"); got < 100 {
		t.Errorf("Estimate(hot) = %d, want >= 100", got)
	}
	top := c.Top(1)
	if top[0].Item != "hot" {
		t.Errorf("Top = %v", top)
	}
}

func TestConcurrentReset(t *testing.T) {
	c := hh.NewConcurrentUint64(2, 8)
	c.Update(1)
	c.Reset()
	if c.N() != 0 || c.Estimate(1) != 0 {
		t.Error("Reset did not clear state")
	}
	c.Update(2)
	if c.Estimate(2) != 1 {
		t.Error("unusable after Reset")
	}
}

func TestConcurrentConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"p=0":      func() { hh.NewConcurrentUint64(0, 8) },
		"m=0":      func() { hh.NewConcurrentUint64(2, 0) },
		"nil hash": func() { hh.NewConcurrent[uint64](2, 8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentAccessors(t *testing.T) {
	c := hh.NewConcurrentUint64(3, 16)
	if c.Shards() != 3 || c.ShardCapacity() != 16 {
		t.Errorf("Shards/ShardCapacity = %d/%d", c.Shards(), c.ShardCapacity())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}
