package heavyhitters

// The window layer: sliding-window and exponentially-decayed heavy
// hitters as composable backends over the existing counter structures.
//
// windowBackend keeps a ring of E epoch sub-backends (each a full
// counter structure built by newCoreBackend). The stream is cut into
// epochs of fixed item count (WithWindow) or fixed duration
// (WithTickWindow); rotation recycles the oldest epoch in place via the
// slab-retaining Reset, so steady-state rotation performs no heap
// allocations. Every query concatenates the live epochs:
//
//	estimate(x) = Σ_j c_j(x)      bounds(x) = (Σ_j lo_j(x), Σ_j hi_j(x))
//
// Each epoch's bounds are certain against its own sub-stream, and the
// ring-covered suffix is exactly the concatenation of those
// sub-streams, so the summed bounds are certain against the covered
// suffix — the same Theorem 11 reasoning MergeSummaries uses, minus the
// compaction step (nothing is re-evicted, so no extra slack arises
// beyond each epoch's own).
//
// The k-tail guarantee arithmetic: if each epoch provides a (A, B)
// guarantee with m counters, then for every item the window error is
//
//	Σ_j |c_j − f_j| ≤ A·Σ_j res_j(k)/(m − B·k) ≤ A·res_w(k)/(m − B·k)
//
// using Σ_j F1res_j(k) ≤ F1res_w(k) (for any fixed k-set S,
// Σ_j mass_j(S) = mass_w(S) and each epoch's own top-k dominates its
// mass of S). windowBackend reports Capacity = E·m (the real counter
// budget of the ring) and the rescaled constants (A·E, B·E), which make
// ErrorBound(g, E·m, k, res) equal A·res/(m − B·k) exactly — the honest
// E-fold degradation relative to spending the same E·m counters on one
// whole-stream structure.
//
// decayBackend is the smooth alternative (WithDecay): instead of a hard
// cutoff it scales every arrival's contribution by e^(−λ·age). New
// arrivals are scaled up by e^(λ·t) and queries normalized down by
// e^(−λ·t), so updates never touch old counters; when the running
// exponent grows past a threshold every counter is rescaled once
// (Scale), keeping all values in float64 range. The Section 6.1
// guarantees are weight-linear, so they hold verbatim against the
// decayed frequency vector.
//
// Thread safety is not this layer's concern: like the core backends,
// windowBackend and decayBackend are single-threaded by contract.
// WithShards runs one instance per shard under the shard locks, and
// WithConcurrent adds the snapshot tier on top (concurrency.go) —
// under it, the read-path mutations here (tick rotation in sync, the
// reused agg/scratch buffers) only ever run during a snapshot capture,
// which holds the same locks the write path takes. Tick windows
// additionally expire out of *cached* snapshots: the tier stamps each
// snapshot with its capture time and rebuilds once per epoch
// granularity even when no writes arrive, so sync's query-driven
// rotation still happens on an idle stream.

import (
	"math"
	"time"

	"repro/internal/core"
)

// WindowState reports the rotation state of a windowed summary — see
// Summary.Window.
type WindowState struct {
	// Epochs is the configured ring size E.
	Epochs int
	// Live is the number of ring slots the window currently spans. It
	// grows to Epochs as the stream warms and stays there; on a tick
	// window it includes epochs that closed empty while the stream was
	// idle (Covered is the occupancy signal, Live the span).
	Live int
	// EpochLen is the item count per epoch of a count window (zero for
	// tick windows).
	EpochLen uint64
	// Tick is the covered duration of a tick window — the d of
	// WithTickWindow, with each epoch spanning Tick/Epochs — and zero
	// for count windows.
	Tick time.Duration
	// Covered is the stream mass currently inside the ring: the N() the
	// windowed queries are answered against.
	Covered float64
}

// windowBackend implements backend[K] as a ring of epoch sub-backends.
// Like the other unsharded backends it is single-threaded by contract;
// WithShards wraps one windowBackend per shard under the shard locks.
type windowBackend[K comparable] struct {
	ring []backend[K]
	cur  int // slot receiving updates
	live int // slots holding data (1..len(ring))

	// Count-based rotation (epochLen > 0): the current epoch closes
	// after epochLen items.
	epochLen uint64
	curItems uint64

	// Tick-based rotation (tick > 0): the current epoch closes tick
	// after epochStart. Queries also advance the ring, so epochs expire
	// while the stream is idle.
	tick       time.Duration
	clock      func() time.Time
	epochStart time.Time

	// Aggregation scratch, reused across queries: agg maps an item to
	// its index in scratch while epochs are folded together. A nested
	// query during each's yield rebuilds both from scratch, so only the
	// buffer is detached (see unitBackend.each).
	agg     map[K]int
	scratch []WeightedEntry[K]
}

// newWindowBackend builds the epoch ring for one shard. Count windows
// divide the window across shards (each shard sees ~1/p of arrivals
// under the partitioner's uniform hashing); tick windows share the
// clock, so every shard covers the same time span.
func newWindowBackend[K comparable](cfg config, shard int, hash func(K) uint64, cl func(K) K) *windowBackend[K] {
	b := &windowBackend[K]{
		ring: make([]backend[K], cfg.epochs),
		live: 1,
		agg:  make(map[K]int),
	}
	for i := range b.ring {
		b.ring[i] = newCoreBackend[K](cfg, shard, hash, cl)
	}
	if cfg.tick > 0 {
		b.tick = cfg.tick / time.Duration(cfg.epochs)
		if b.tick <= 0 {
			b.tick = 1
		}
		b.clock = cfg.clock
		if b.clock == nil {
			b.clock = time.Now
		}
		b.epochStart = b.clock()
		return b
	}
	window := cfg.window
	if cfg.shards > 1 {
		p := uint64(cfg.shards)
		window = (window + p - 1) / p
	}
	b.epochLen = (window + uint64(cfg.epochs) - 1) / uint64(cfg.epochs)
	if b.epochLen < 1 {
		b.epochLen = 1
	}
	return b
}

// rotate closes the current epoch and recycles the oldest slot in
// place. Reset retains slabs and map storage, so rotation allocates
// nothing at steady state.
//
//hh:noalloc
func (b *windowBackend[K]) rotate() {
	b.cur = (b.cur + 1) % len(b.ring)
	b.ring[b.cur].reset()
	if b.live < len(b.ring) {
		b.live++
	}
	b.curItems = 0
}

// advance rotates the ring as far as the stream position requires; it
// is called before every write. After advance the current epoch always
// has room for at least one more item.
//
//hh:noalloc
func (b *windowBackend[K]) advance() {
	if b.epochLen > 0 {
		if b.curItems >= b.epochLen {
			b.rotate()
		}
		return
	}
	now := b.clock()
	elapsed := now.Sub(b.epochStart)
	if elapsed < b.tick {
		return
	}
	steps := int(elapsed / b.tick)
	if steps >= len(b.ring) {
		// The whole ring has aged out; start over rather than rotating
		// len(ring) times.
		for i := range b.ring {
			b.ring[i].reset()
		}
		b.cur, b.live, b.curItems = 0, 1, 0
		b.epochStart = now
		return
	}
	for i := 0; i < steps; i++ {
		b.rotate()
	}
	b.epochStart = b.epochStart.Add(b.tick * time.Duration(steps))
}

// sync expires aged epochs before a read. Only tick windows rotate on
// reads: a count window rotates lazily before the next write, so a
// query between item epochLen and item epochLen+1 still sees the full
// ring.
//
//hh:noalloc
func (b *windowBackend[K]) sync() {
	if b.tick > 0 {
		b.advance()
	}
}

//hh:noalloc
func (b *windowBackend[K]) update(item K) {
	b.advance()
	b.ring[b.cur].update(item)
	b.curItems++
}

// updateN spreads n unit occurrences across epoch boundaries, so a
// large AddN cannot stretch one epoch beyond epochLen items.
//
//hh:noalloc
func (b *windowBackend[K]) updateN(item K, n uint64) {
	for n > 0 {
		b.advance()
		take := n
		if b.epochLen > 0 {
			if room := b.epochLen - b.curItems; take > room {
				take = room
			}
		}
		b.ring[b.cur].updateN(item, take)
		b.curItems += take
		n -= take
	}
}

// updateWeighted records one weighted arrival. A count window counts
// arrivals, not weight: the window is "the last n updates", whatever
// mass they carried.
//
//hh:noalloc
func (b *windowBackend[K]) updateWeighted(item K, w float64) {
	b.advance()
	b.ring[b.cur].updateWeighted(item, w)
	b.curItems++
}

// updateBatch splits the batch at rotation boundaries, handing each
// piece (and the matching precomputed hashes) to the owning epoch.
//
//hh:noalloc
func (b *windowBackend[K]) updateBatch(items []K, hashes []uint64) {
	for len(items) > 0 {
		b.advance()
		take := len(items)
		if b.epochLen > 0 {
			if room := b.epochLen - b.curItems; uint64(take) > room {
				take = int(room)
			}
		}
		var hs []uint64
		if hashes != nil {
			hs = hashes[:take]
		}
		b.ring[b.cur].updateBatch(items[:take], hs)
		b.curItems += uint64(take)
		items = items[take:]
		if hashes != nil {
			hashes = hashes[take:]
		}
	}
}

// updateBatchN splits a coalesced batch at rotation boundaries: each
// group's mass counts as counts[i] items toward the epoch length
// (coalescing must not stretch epochs), so the split point falls between
// groups where whole groups fit, and inside a group — splitting it via
// updateN, in place through counts — where one group alone straddles
// the boundary. Group order is preserved, so the result is identical to
// updateN(items[i], counts[i]) applied in order.
//
//hh:noalloc
func (b *windowBackend[K]) updateBatchN(items []K, counts []uint32, hashes []uint64) {
	for len(items) > 0 {
		b.advance()
		if b.epochLen == 0 {
			// Tick windows rotate on time, not item count: after advance
			// the whole remainder belongs to the current epoch.
			b.ring[b.cur].updateBatchN(items, counts, hashes)
			for _, c := range counts {
				b.curItems += uint64(c)
			}
			return
		}
		room := b.epochLen - b.curItems
		take, used := 0, uint64(0)
		for take < len(items) {
			c := uint64(counts[take])
			if used+c > room {
				break
			}
			used += c
			take++
		}
		if take > 0 {
			var hs []uint64
			if hashes != nil {
				hs = hashes[:take]
			}
			b.ring[b.cur].updateBatchN(items[:take], counts[:take], hs)
			b.curItems += used
			items = items[take:]
			counts = counts[take:]
			if hashes != nil {
				hashes = hashes[take:]
			}
			continue
		}
		// The leading group alone overflows the epoch: spend exactly the
		// remaining room on it (room < counts[0] ≤ 2^32−1, so the cast is
		// exact) and leave the rest for the next epoch.
		part := uint32(room)
		b.ring[b.cur].updateN(items[0], uint64(part))
		counts[0] -= part
		b.curItems += uint64(part)
	}
}

//hh:noalloc
func (b *windowBackend[K]) estimate(item K) float64 {
	b.sync()
	var c float64
	for _, ep := range b.ring {
		c += ep.estimate(item)
	}
	return c
}

// bounds sums the per-epoch bounds: each epoch's interval is certain
// against its sub-stream, and the covered suffix is exactly the
// concatenation of the epoch sub-streams, so the sums are certain
// against the covered suffix (an epoch that does not store the item
// contributes its own absent-item interval).
//
//hh:noalloc
func (b *windowBackend[K]) bounds(item K) (float64, float64) {
	b.sync()
	var lo, hi float64
	for _, ep := range b.ring {
		l, h := ep.bounds(item)
		lo += l
		hi += h
	}
	return lo, hi
}

// gather folds every epoch's counters into one aggregate per item,
// summing counts and error metadata, and leaves the result sorted in
// decreasing count order in b.scratch. The map and buffer are reused,
// so steady-state polling settles into allocation-free operation.
//
//hh:noalloc
func (b *windowBackend[K]) gather() {
	b.scratch = b.scratch[:0]
	clear(b.agg)
	for _, ep := range b.ring {
		ep.each(func(e WeightedEntry[K]) bool {
			if i, ok := b.agg[e.Item]; ok {
				b.scratch[i].Count += e.Count
				b.scratch[i].Err += e.Err
			} else {
				b.agg[e.Item] = len(b.scratch)
				b.scratch = append(b.scratch, e)
			}
			return true
		})
	}
	core.SortWeightedEntries(b.scratch)
}

//hh:noalloc
func (b *windowBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	b.sync()
	b.gather()
	take := len(b.scratch)
	if max > 0 && take > max {
		take = max
	}
	return append(dst, b.scratch[:take]...)
}

//hh:noalloc
func (b *windowBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	b.sync()
	b.gather()
	// Detach the buffer while user code runs so a nested query cannot
	// clobber the iteration (the nested gather rebuilds agg anyway).
	buf := b.scratch
	b.scratch = nil
	for _, e := range buf {
		if !yield(e) {
			break
		}
	}
	b.scratch = buf
}

// capacity is the ring's real counter budget: E× the per-epoch m. The
// guarantee constants are rescaled to match (see guarantee), so
// ErrorBound(g, Capacity, k, res) reproduces the per-epoch bound
// exactly.
func (b *windowBackend[K]) capacity() int {
	var c int
	for _, ep := range b.ring {
		c += ep.capacity()
	}
	return c
}

// length counts the distinct items across the ring with a map-only
// fold — no entry materialization or sorting, unlike the full gather.
func (b *windowBackend[K]) length() int {
	b.sync()
	clear(b.agg)
	n := 0
	for _, ep := range b.ring {
		ep.each(func(e WeightedEntry[K]) bool {
			if _, ok := b.agg[e.Item]; !ok {
				b.agg[e.Item] = n
				n++
			}
			return true
		})
	}
	return n
}

func (b *windowBackend[K]) total() float64 {
	b.sync()
	var t float64
	for _, ep := range b.ring {
		t += ep.total()
	}
	return t
}

// guarantee reports the window guarantee: per-epoch constants (A, B)
// become (A·E, B·E) against Capacity = E·m — sound per the Σ res_j ≤
// res_w inequality in the package comment, and an honest statement of
// the E-fold price of windowing.
func (b *windowBackend[K]) guarantee() (TailGuarantee, bool) {
	g, ok := b.ring[0].guarantee()
	if !ok {
		return TailGuarantee{}, false
	}
	e := float64(len(b.ring))
	return TailGuarantee{A: g.A * e, B: g.B * e}, true
}

func (b *windowBackend[K]) mergeable() bool { return b.ring[0].mergeable() }
func (b *windowBackend[K]) overEst() bool   { return b.ring[0].overEst() }

// slackOut is the upper slack a flat consumer (Merge, the flattened
// encode) must attach to every *stored* aggregate entry: the entry's
// Count sums only the epochs that store the item, but an epoch that
// evicted it can hide up to its own slack plus its absent floor (Δ for
// SPACESAVING state), so the certain global slack is Σ_j (slack_j +
// floor_j). The live bounds() path stays tighter because it knows
// which epochs actually store the item.
func (b *windowBackend[K]) slackOut() float64 {
	b.sync()
	var s float64
	for _, ep := range b.ring {
		s += ep.slackOut() + ep.absentExtra()
	}
	return s
}

// absentExtra is zero: slackOut already covers the worst case of an
// item absent from every epoch (the sum of the epochs' absent-item
// upper bounds), so absent items owe nothing beyond it.
func (b *windowBackend[K]) absentExtra() float64 { return 0 }

//hh:noalloc
func (b *windowBackend[K]) reset() {
	for _, ep := range b.ring {
		ep.reset()
	}
	b.cur, b.live, b.curItems = 0, 1, 0
	if b.tick > 0 {
		b.epochStart = b.clock()
	}
}

func (b *windowBackend[K]) windowState() (WindowState, bool) {
	b.sync()
	return WindowState{
		Epochs:   len(b.ring),
		Live:     b.live,
		EpochLen: b.epochLen,
		Tick:     b.tick * time.Duration(len(b.ring)),
		Covered:  b.total(),
	}, true
}

// --- exponential decay (WithDecay) ---

// decayMaxExp is the running exponent λ·t − base at which decayBackend
// renormalizes. e^256 ≈ 1.5e111 leaves ~2e196 of headroom below
// math.MaxFloat64 for the weights themselves, and renormalization cost
// is amortized over 256/λ arrivals.
const decayMaxExp = 256

// decayBackend wraps a weighted (SPACESAVINGR / FREQUENTR) backend with
// exponential decay: arrival t carries weight w·e^(λ·t − base), queries
// normalize by e^(base − λ·t), and when λ·t − base exceeds decayMaxExp
// every stored value is rescaled once so nothing overflows. All stored
// state is linear in the weights, so the rescale is exact up to float
// rounding and the Section 6.1 guarantees carry over to the decayed
// frequency vector.
type decayBackend[K comparable] struct {
	inner  *weightedBackend[K]
	lambda float64
	t      float64 // arrivals processed (the decay clock)
	base   float64 // log-scale origin: stored mass is e^(base) units
}

func newDecayBackend[K comparable](cfg config, shard int, hash func(K) uint64, cl func(K) K) *decayBackend[K] {
	lambda := cfg.decay
	if cfg.shards > 1 {
		// Each shard's decay clock ticks only on its own ~1/p of the
		// arrivals; scaling λ by p keeps the decay horizon in *global*
		// arrivals as documented — the same per-shard adjustment the
		// count window applies to n.
		lambda *= float64(cfg.shards)
	}
	return &decayBackend[K]{
		inner:  newCoreBackend[K](cfg, shard, hash, cl).(*weightedBackend[K]),
		lambda: lambda,
	}
}

// norm is the factor that converts stored (inflated) mass into decayed
// mass as of the current tick.
//
//hh:noalloc
func (b *decayBackend[K]) norm() float64 { return math.Exp(b.base - b.lambda*b.t) }

// tickWeight advances the decay clock by one arrival and returns the
// stored-scale weight for it, renormalizing the inner structure first
// when the running exponent would grow too large.
//
//hh:noalloc
func (b *decayBackend[K]) tickWeight(w float64) float64 {
	b.t++
	exp := b.lambda*b.t - b.base
	if exp > decayMaxExp {
		b.inner.scale(math.Exp(-exp))
		b.base += exp
		exp = 0
	}
	return w * math.Exp(exp)
}

//hh:noalloc
func (b *decayBackend[K]) update(item K) { b.updateWeighted(item, 1) }

//hh:noalloc
func (b *decayBackend[K]) updateN(item K, n uint64) {
	if n > 0 {
		// n simultaneous occurrences: one arrival of weight n, matching
		// the weighted backends' updateN.
		b.updateWeighted(item, float64(n))
	}
}

//hh:noalloc
func (b *decayBackend[K]) updateWeighted(item K, w float64) {
	b.inner.updateWeighted(item, b.tickWeight(w))
}

//hh:noalloc
func (b *decayBackend[K]) updateBatch(items []K, _ []uint64) {
	for _, it := range items {
		b.updateWeighted(it, 1)
	}
}

// updateBatchN exists for the backend contract but must never see
// coalesced input from the sharded fast path: the decay clock advances
// once per arrival, so a coalesced group is n separate arrivals, not one
// weighted one — newShardedBackend gates coalescing off for decayed
// compositions. This fallback replays the occurrences faithfully.
//
//hh:noalloc
func (b *decayBackend[K]) updateBatchN(items []K, counts []uint32, _ []uint64) {
	for i, it := range items {
		for j := uint32(0); j < counts[i]; j++ {
			b.updateWeighted(it, 1)
		}
	}
}

//hh:noalloc
func (b *decayBackend[K]) estimate(item K) float64 { return b.inner.estimate(item) * b.norm() }

//hh:noalloc
func (b *decayBackend[K]) bounds(item K) (float64, float64) {
	lo, hi := b.inner.bounds(item)
	n := b.norm()
	return lo * n, hi * n
}

//hh:noalloc
func (b *decayBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	start := len(dst)
	dst = b.inner.appendEntries(dst, max)
	n := b.norm()
	for i := start; i < len(dst); i++ {
		dst[i].Count *= n
		dst[i].Err *= n
	}
	return dst
}

//hh:noalloc
func (b *decayBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	n := b.norm()
	b.inner.each(func(e WeightedEntry[K]) bool {
		e.Count *= n
		e.Err *= n
		return yield(e)
	})
}

func (b *decayBackend[K]) capacity() int { return b.inner.capacity() }
func (b *decayBackend[K]) length() int   { return b.inner.length() }

// total is the decayed stream mass Σ w_i·e^(−λ·(t−t_i)) — the N the
// phi·N HeavyHitters thresholds are taken against, so "heavy" means
// heavy recently.
func (b *decayBackend[K]) total() float64 { return b.inner.total() * b.norm() }

func (b *decayBackend[K]) guarantee() (TailGuarantee, bool) { return b.inner.guarantee() }
func (b *decayBackend[K]) mergeable() bool                  { return b.inner.mergeable() }
func (b *decayBackend[K]) overEst() bool                    { return b.inner.overEst() }
func (b *decayBackend[K]) slackOut() float64                { return b.inner.slackOut() * b.norm() }
func (b *decayBackend[K]) absentExtra() float64             { return b.inner.absentExtra() * b.norm() }

//hh:noalloc
func (b *decayBackend[K]) reset() {
	b.inner.reset()
	b.t, b.base = 0, 0
}

func (b *decayBackend[K]) windowState() (WindowState, bool) { return WindowState{}, false }

// scale rescales the weighted backend's stored state by f — counters,
// error metadata, slack and carried mass alike (all weight-linear).
//
//hh:noalloc
func (b *weightedBackend[K]) scale(f float64) {
	if b.ssr != nil {
		b.ssr.Scale(f)
	} else {
		b.fqr.Scale(f)
	}
	b.slack *= f
	b.absentSlack *= f
	b.extraMass *= f
	b.defCache, b.defCacheAt = 0, 0
}
