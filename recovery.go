package heavyhitters

import (
	"repro/internal/core"
	"repro/internal/recovery"
)

// This file exposes the Section 4 sparse-recovery machinery on the public
// API: building approximate frequency vectors from summaries, with the
// paper's closed-form error bounds.

// KSparseRecovery returns the k-sparse approximation f′ of the frequency
// vector built from a summary's k largest counters (Theorem 5). With a
// summary of m = k(2/ε + 1) SPACESAVING or FREQUENT counters,
// ‖f − f′‖p ≤ ε·F1^res(k)/k^{1−1/p} + (F_p^res(k))^{1/p} for every p ≥ 1.
func KSparseRecovery[K comparable](s Counter[K], k int) map[K]float64 {
	return recovery.KSparse(s.Entries(), k)
}

// KSparseRecoveryWeighted is KSparseRecovery for real-valued summaries.
func KSparseRecoveryWeighted[K comparable](s WeightedCounter[K], k int) map[K]float64 {
	return recovery.KSparseWeighted(s.WeightedEntries(), k)
}

// minCounter is implemented by the overestimating SPACESAVING variants;
// MinCount returns the smallest stored counter Δ, the global
// overestimation bound of Section 4.2.
type minCounter interface {
	MinCount() uint64
}

// MSparseRecovery returns the m-sparse approximation built from *all*
// counters of an underestimating summary (Theorem 7). FREQUENT and
// LOSSYCOUNTING summaries are used as-is; both SPACESAVING variants are
// first passed through the Section 4.2 global underestimate transform
// c′_i = max(0, c_i − Δ). With m = k(1/ε + 1) counters,
// ‖f − f′‖p ≤ (1+ε)(ε/k)^{1−1/p}·F1^res(k).
func MSparseRecovery[K comparable](s Counter[K]) map[K]float64 {
	entries := s.Entries()
	if mc, ok := s.(minCounter); ok {
		entries = recovery.UnderestimateGlobal(entries, mc.MinCount())
	}
	return recovery.MSparse(entries)
}

// EstimateResidual estimates F1^res(k) — the stream mass outside the top
// k items — from a summary, as F1 − ‖f′‖1 (Theorem 6). With
// m = k(1/ε + 1) counters the estimate is within (1 ± ε)·F1^res(k).
// totalMass is the stream length (Summary.N() for unit streams).
func EstimateResidual[K comparable](s Counter[K], k int, totalMass float64) float64 {
	return recovery.ResidualEstimate(s.Entries(), k, totalMass)
}

// SummaryResidual is EstimateResidual over the unified Summary surface:
// it estimates F1^res(k) as N() minus the k largest stored counts,
// clamped at zero (overestimating backends can push the difference
// slightly negative).
func SummaryResidual[K comparable](s Summary[K], k int) float64 {
	res := s.N()
	for _, e := range s.Top(k) {
		res -= e.Count
	}
	if res < 0 {
		res = 0
	}
	return res
}

// RecoveryBound evaluates the Theorem 5 Lp error bound
// ε·res1/k^{1−1/p} + resP^{1/p} for reporting alongside measured errors.
func RecoveryBound(eps float64, k int, res1, resP, p float64) float64 {
	return recovery.Theorem5Bound(eps, k, res1, resP, p)
}

// recoveryCounters is the internal hook behind CountersForRecovery.
func recoveryCounters(k int, eps float64, g core.TailGuarantee) int {
	return recovery.CountersForTheorem5(k, eps, g, true)
}
