package heavyhitters_test

// Tests of the unified New/Option/Summary surface: every algorithm
// choice crossed with unit, weighted and batch updates; merge round
// trips; the v2 codec; and an invariants pass asserting the k-tail
// bound on Zipf input.

import (
	"bytes"
	"math"
	"strconv"
	"sync"
	"testing"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

var allAlgos = []hh.Algo{
	hh.AlgoSpaceSaving, hh.AlgoFrequent, hh.AlgoLossyCounting,
	hh.AlgoCountMin, hh.AlgoCountSketch,
}

// counterAlgos are the deterministic counter algorithms (mergeable,
// encodable).
var counterAlgos = []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent, hh.AlgoLossyCounting}

func TestNewEveryAlgorithmUnitUpdates(t *testing.T) {
	for _, algo := range allAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(64))
			if s.Algorithm() != algo {
				t.Fatalf("Algorithm() = %v", s.Algorithm())
			}
			for i := 0; i < 30; i++ {
				s.Update(7)
			}
			s.Update(9)
			if got := s.Estimate(7); got < 30 && algo != hh.AlgoFrequent {
				t.Errorf("Estimate(7) = %v, want >= 30", got)
			}
			if s.N() != 31 {
				t.Errorf("N = %v, want 31", s.N())
			}
			top := s.Top(1)
			if len(top) != 1 || top[0].Item != 7 {
				t.Errorf("Top(1) = %v, want item 7", top)
			}
			lo, hi := s.EstimateBounds(7)
			if lo > 30 || hi < 30 {
				t.Errorf("bounds [%v, %v] exclude the true count 30", lo, hi)
			}
			s.Reset()
			if s.N() != 0 || s.Len() != 0 {
				t.Error("Reset did not clear state")
			}
			s.Update(1)
			if s.Estimate(1) != 1 {
				t.Error("unusable after Reset")
			}
		})
	}
}

func TestNewEveryAlgorithmIntegralWeights(t *testing.T) {
	// UpdateWeighted with integral weights must land the full mass on
	// every backend, including the native SPACESAVING AddN path.
	for _, algo := range allAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(64))
			s.UpdateWeighted(3, 1000)
			s.UpdateWeighted(3, 24)
			s.UpdateWeighted(5, 1)
			if got := s.Estimate(3); algo != hh.AlgoFrequent && got < 1024 {
				t.Errorf("Estimate(3) = %v, want >= 1024", got)
			}
			if got := s.N(); got != 1025 {
				t.Errorf("N = %v, want 1025", got)
			}
		})
	}
}

func TestNewEveryAlgorithmBatchUpdates(t *testing.T) {
	items := stream.Zipf(100, 1.2, 5000, stream.OrderRandom, 17)
	for _, algo := range allAlgos {
		for _, shards := range []int{0, 4} {
			name := algo.String()
			if shards > 0 {
				name += "-sharded"
			}
			t.Run(name, func(t *testing.T) {
				opts := []hh.Option{hh.WithAlgorithm(algo), hh.WithCapacity(64)}
				if shards > 0 {
					opts = append(opts, hh.WithShards(shards))
				}
				s := hh.New[uint64](opts...)
				s.UpdateBatch(items)
				if got := s.N(); got != float64(len(items)) {
					t.Fatalf("N = %v, want %d", got, len(items))
				}
				if len(s.Top(5)) == 0 {
					t.Fatal("empty Top after batch")
				}
			})
		}
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	// The deterministic backends must reach the identical counter state
	// whether a stream arrives item-by-item or in batches — sharded
	// included (same seed => same partition). The sharded batch path of
	// the coalescing algorithms (SPACESAVING, FREQUENT) groups duplicates
	// inside each batch, so its per-item reference is the batch's
	// first-occurrence-grouped order (see coalesceBatch); LOSSYCOUNTING
	// and the unsharded batch paths preserve arrival order exactly.
	items := stream.Zipf(200, 1.1, 20000, stream.OrderRandom, 5)
	for _, algo := range counterAlgos {
		for _, shards := range []int{0, 4} {
			opts := []hh.Option{hh.WithAlgorithm(algo), hh.WithCapacity(32), hh.WithSeed(9)}
			if shards > 0 {
				opts = append(opts, hh.WithShards(shards))
			}
			seq := hh.New[uint64](opts...)
			bat := hh.New[uint64](opts...)
			for lo := 0; lo < len(items); lo += 1000 {
				hi := min(lo+1000, len(items))
				ref := items[lo:hi]
				if shards > 0 && algo != hh.AlgoLossyCounting {
					ref = coalesceBatch(items[lo:hi])
				}
				for _, x := range ref {
					seq.Update(x)
				}
				bat.UpdateBatch(items[lo:hi])
			}
			se, be := seq.Top(seq.Len()), bat.Top(bat.Len())
			if len(se) != len(be) {
				t.Fatalf("%v shards=%d: %d vs %d entries", algo, shards, len(se), len(be))
			}
			sm := map[uint64]float64{}
			for _, e := range se {
				sm[e.Item] = e.Count
			}
			for _, e := range be {
				if sm[e.Item] != e.Count {
					t.Errorf("%v shards=%d: item %d: batch %v vs sequential %v",
						algo, shards, e.Item, e.Count, sm[e.Item])
				}
			}
		}
	}
}

// coalesceBatch replays one batch in its first-occurrence-grouped order:
// all occurrences of a key contiguous at the position of the key's first
// appearance. This is the per-item reference stream of coalesced batch
// ingest — UpdateBatch on a sharded summary groups each batch's
// duplicates and applies every group as one AddN, which by the
// Section-6 equivalence matches unit updates in exactly this order.
func coalesceBatch[K comparable](batch []K) []K {
	idx := map[K]int{}
	keys := make([]K, 0, len(batch))
	counts := make([]int, 0, len(batch))
	for _, it := range batch {
		if i, ok := idx[it]; ok {
			counts[i]++
			continue
		}
		idx[it] = len(keys)
		keys = append(keys, it)
		counts = append(counts, 1)
	}
	out := make([]K, 0, len(batch))
	for i, k := range keys {
		for j := 0; j < counts[i]; j++ {
			out = append(out, k)
		}
	}
	return out
}

func TestFrequentAddNMatchesUnitLoop(t *testing.T) {
	// Integer-weighted FREQUENT updates must reach the exact state unit
	// repetition reaches, across stored/insert/decrement paths.
	type op struct {
		item uint64
		n    uint64
	}
	ops := []op{{1, 3}, {2, 1}, {3, 7}, {4, 2}, {5, 1}, {1, 4}, {6, 9}, {7, 1},
		{2, 5}, {8, 3}, {1, 1}, {9, 6}, {3, 2}, {10, 4}, {11, 1}, {6, 1}}
	for _, m := range []int{1, 2, 4, 8} {
		batch := hh.NewFrequent[uint64](m)
		unit := hh.NewFrequent[uint64](m)
		for _, o := range ops {
			batch.AddN(o.item, o.n)
			for i := uint64(0); i < o.n; i++ {
				unit.Update(o.item)
			}
		}
		if batch.N() != unit.N() || batch.Decrements() != unit.Decrements() {
			t.Fatalf("m=%d: N/d %d/%d vs %d/%d", m, batch.N(), batch.Decrements(), unit.N(), unit.Decrements())
		}
		for i := uint64(0); i <= 11; i++ {
			if batch.Estimate(i) != unit.Estimate(i) {
				t.Errorf("m=%d item %d: AddN state %d, unit state %d", m, i, batch.Estimate(i), unit.Estimate(i))
			}
		}
	}
}

func TestSpaceSavingAddNMassConservation(t *testing.T) {
	ss := hh.NewSpaceSaving[uint64](4)
	for i := uint64(0); i < 20; i++ {
		ss.AddN(i%6, i+1)
	}
	var sum uint64
	for _, e := range ss.Entries() {
		sum += e.Count
	}
	if sum != ss.N() {
		t.Errorf("counters sum to %d, N = %d", sum, ss.N())
	}
}

func TestWeightedBackendRealValues(t *testing.T) {
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent} {
		s := hh.New[string](hh.WithAlgorithm(algo), hh.WithWeighted(), hh.WithCapacity(8))
		s.UpdateWeighted("a", 2.5)
		s.UpdateWeighted("b", 1.25)
		s.UpdateWeighted("a", 0.25)
		if got := s.Estimate("a"); got != 2.75 {
			t.Errorf("%v: Estimate(a) = %v, want 2.75", algo, got)
		}
		if got := s.N(); got != 4.0 {
			t.Errorf("%v: N = %v, want 4", algo, got)
		}
		// Unit updates flow through the weighted path too.
		s.Update("c")
		if got := s.Estimate("c"); got != 1 {
			t.Errorf("%v: Estimate(c) = %v, want 1", algo, got)
		}
	}
}

func TestUnitBackendRejectsFractionalWeights(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(8))
	defer func() {
		if recover() == nil {
			t.Fatal("fractional weight on a unit backend did not panic")
		}
	}()
	s.UpdateWeighted(1, 1.5)
}

func TestOptionValidation(t *testing.T) {
	cases := map[string]func(){
		"capacity<1":          func() { hh.New[uint64](hh.WithCapacity(0)) },
		"capacity+budget":     func() { hh.New[uint64](hh.WithCapacity(5), hh.WithErrorBudget(0.1, 0)) },
		"bad eps":             func() { hh.New[uint64](hh.WithErrorBudget(0, 0.5)) },
		"bad phi":             func() { hh.New[uint64](hh.WithErrorBudget(0.1, 2)) },
		"negative shards":     func() { hh.New[uint64](hh.WithShards(-1)) },
		"weighted lossy":      func() { hh.New[uint64](hh.WithAlgorithm(hh.AlgoLossyCounting), hh.WithWeighted()) },
		"weighted countmin":   func() { hh.New[uint64](hh.WithAlgorithm(hh.AlgoCountMin), hh.WithWeighted()) },
		"nonpositive weight":  func() { hh.New[uint64]().UpdateWeighted(1, 0) },
		"bad phi heavyhitter": func() { hh.New[uint64]().HeavyHitters(0) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestErrorBudgetSizing(t *testing.T) {
	s := hh.New[uint64](hh.WithErrorBudget(0.01, 0))
	if got := s.Capacity(); got != 100 {
		t.Errorf("eps=0.01 sized m=%d, want 100", got)
	}
	// phi dominates when tighter: 1/phi + 1 = 201 > 1/eps = 100.
	s = hh.New[uint64](hh.WithErrorBudget(0.01, 0.005))
	if got := s.Capacity(); got != 201 {
		t.Errorf("eps=0.01, phi=0.005 sized m=%d, want 201", got)
	}
}

func TestParseAlgoRoundTrip(t *testing.T) {
	for _, a := range allAlgos {
		got, err := hh.ParseAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := hh.ParseAlgo("nope"); err == nil {
		t.Error("ParseAlgo accepted an unknown name")
	}
}

func TestMergeRoundTripEveryCounterAlgo(t *testing.T) {
	// Split a Zipf stream in two, summarize the halves, merge, and
	// verify every item's merged estimate against the Theorem 11 bound
	// (when a guarantee exists) and every interval against the truth.
	const n, total, m, k = 300, 60000, 150, 8
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 13)
	truth := exact.FromStream(s)
	for _, algo := range counterAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			a := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(m))
			b := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(m))
			for i, x := range s {
				if i%2 == 0 {
					a.Update(x)
				} else {
					b.Update(x)
				}
			}
			merged, err := a.Merge(b)
			if err != nil {
				t.Fatal(err)
			}
			if g, ok := merged.Guarantee(); ok {
				bound := g.Bound(m, k, truth.Res1(k))
				for i := uint64(0); i < n; i++ {
					if d := math.Abs(truth.Freq(i) - merged.Estimate(i)); d > bound {
						t.Errorf("item %d: merged error %v exceeds bound %v", i, d, bound)
					}
				}
			}
			for i := uint64(0); i < n; i++ {
				lo, hi := merged.EstimateBounds(i)
				if f := truth.Freq(i); f < lo-1e-9 || f > hi+1e-9 {
					t.Errorf("item %d: true %v outside merged interval [%v, %v]", i, f, lo, hi)
				}
			}
		})
	}
}

func TestMergeRejectsSketches(t *testing.T) {
	a := hh.New[uint64](hh.WithAlgorithm(hh.AlgoCountMin), hh.WithCapacity(64))
	b := hh.New[uint64](hh.WithCapacity(64))
	if _, err := a.Merge(b); err == nil {
		t.Error("merging a sketch-backed summary did not fail")
	}
	if _, err := b.Merge(a); err == nil {
		t.Error("merging with a sketch-backed summary did not fail")
	}
	if _, err := hh.MergeSummaries[uint64](10); err == nil {
		t.Error("empty merge did not fail")
	}
}

func TestMergeWeightedAndSharded(t *testing.T) {
	a := hh.New[string](hh.WithWeighted(), hh.WithCapacity(16))
	a.UpdateWeighted("x", 5.5)
	b := hh.New[string](hh.WithShards(3), hh.WithCapacity(16))
	b.Update("x")
	b.Update("y")
	merged, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Estimate("x"); got != 6.5 {
		t.Errorf("merged x = %v, want 6.5", got)
	}
	if got := merged.N(); got != 7.5 {
		t.Errorf("merged N = %v, want 7.5", got)
	}
}

func TestShardedConcurrentUse(t *testing.T) {
	// Hammer a sharded summary from many goroutines (run with -race in
	// CI); the aggregate mass and the dominant item must come out right.
	const goroutines, perG = 8, 20000
	c := hh.New[uint64](hh.WithShards(4), hh.WithCapacity(64))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := stream.Zipf(200, 1.1, perG, stream.OrderRandom, seed)
			c.UpdateBatch(s[:perG/2])
			for _, x := range s[perG/2:] {
				c.Update(x)
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Estimate(0)
				c.Top(5)
				c.HeavyHitters(0.05)
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := c.N(); got != goroutines*perG {
		t.Errorf("N = %v, want %d", got, goroutines*perG)
	}
	top := c.Top(1)
	if len(top) != 1 || top[0].Item != 0 {
		t.Errorf("Top(1) = %v, want item 0", top)
	}
}

// TestShardedSketchBatchMaphashKeys pins the one-hash batch path for
// key types that fall back to maphash (neither uint64 nor string): the
// partitioner's precomputed hashes are reused as the sketch key hashes,
// which is only sound because the partitioner and every shard's sketch
// backend share one hash closure — separately built maphash closures
// draw different random seeds and would record counts under hashes that
// Estimate never queries.
func TestShardedSketchBatchMaphashKeys(t *testing.T) {
	for _, algo := range []hh.Algo{hh.AlgoCountMin, hh.AlgoCountSketch} {
		sum := hh.New[int](hh.WithAlgorithm(algo), hh.WithShards(4), hh.WithCapacity(256))
		batch := make([]int, 0, 1000)
		for i := 0; i < 1000; i++ {
			batch = append(batch, 7)
		}
		sum.UpdateBatch(batch)
		if got := sum.Estimate(7); got != 1000 {
			t.Errorf("%v: Estimate(7) = %v after batched ingest, want 1000", algo, got)
		}
		if top := sum.Top(1); len(top) != 1 || top[0].Item != 7 {
			t.Errorf("%v: Top(1) = %v, want item 7", algo, top)
		}
	}
}

func TestShardedHeavyHittersNoFalseNegatives(t *testing.T) {
	const phi = 0.01
	s := stream.Zipf(1000, 1.2, 100000, stream.OrderRandom, 7)
	truth := exact.FromStream(s)
	c := hh.New[uint64](hh.WithShards(8), hh.WithErrorBudget(phi, phi))
	c.UpdateBatch(s)
	reported := map[uint64]bool{}
	for _, h := range c.HeavyHitters(phi) {
		reported[h.Item] = true
		if h.Guaranteed && truth.Freq(h.Item) < phi*truth.F1() {
			t.Errorf("item %d guaranteed but true %v below threshold", h.Item, truth.Freq(h.Item))
		}
		if f := truth.Freq(h.Item); f < h.Lo || f > h.Hi {
			t.Errorf("item %d: true %v outside [%v, %v]", h.Item, f, h.Lo, h.Hi)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		if truth.Freq(i) >= phi*truth.F1() && !reported[i] {
			t.Errorf("phi-heavy item %d not reported", i)
		}
	}
}

func TestInvariantKTailBoundOnZipf(t *testing.T) {
	// The headline inequality through the unified surface: for HTC
	// algorithms built by New, every item's error on Zipf input respects
	// A·F1^res(k)/(m − B·k) for a range of k (bounds.go arithmetic).
	const n, total, m = 500, 50000, 64
	s := stream.Zipf(n, 1.1, total, stream.OrderRandom, 21)
	truth := exact.FromStream(s)
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoFrequent} {
		sum := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(m))
		sum.UpdateBatch(s)
		g, ok := sum.Guarantee()
		if !ok {
			t.Fatalf("%v: no guarantee", algo)
		}
		for _, k := range []int{0, 4, 16, 48} {
			bound := g.Bound(m, k, truth.Res1(k))
			for i := uint64(0); i < n; i++ {
				if d := math.Abs(truth.Freq(i) - sum.Estimate(i)); d > bound {
					t.Errorf("%v k=%d item %d: error %v exceeds bound %v", algo, k, i, d, bound)
				}
			}
		}
	}
}

func TestRecoverMatchesLegacyRecovery(t *testing.T) {
	s := stream.Zipf(200, 1.2, 20000, stream.OrderRandom, 3)
	sum := hh.New[uint64](hh.WithCapacity(50))
	legacy := hh.NewSpaceSaving[uint64](50)
	for _, x := range s {
		sum.Update(x)
		legacy.Update(x)
	}
	got := sum.Recover(8)
	want := hh.KSparseRecovery[uint64](legacy, 8)
	if len(got) != len(want) {
		t.Fatalf("Recover has %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Recover[%d] = %v, want %v", k, got[k], v)
		}
	}
}

func TestCodecV2RoundTripUint64(t *testing.T) {
	s := stream.Zipf(300, 1.2, 30000, stream.OrderRandom, 11)
	for _, algo := range counterAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			src := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(60))
			src.UpdateBatch(s)
			var buf bytes.Buffer
			if err := src.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if dec.Algorithm() != algo {
				t.Errorf("decoded algo %v, want %v", dec.Algorithm(), algo)
			}
			// Point estimates of stored items survive the round trip.
			for _, e := range src.Top(src.Len()) {
				if got := dec.Estimate(e.Item); got != e.Count {
					t.Errorf("item %v: decoded %v, want %v", e.Item, got, e.Count)
				}
				// Decoded intervals must contain the producer's.
				slo, shi := src.EstimateBounds(e.Item)
				dlo, dhi := dec.EstimateBounds(e.Item)
				if dlo > slo+1e-9 || dhi < shi-1e-9 {
					t.Errorf("item %v: decoded interval [%v, %v] narrower than source [%v, %v]",
						e.Item, dlo, dhi, slo, shi)
				}
			}
			g1, ok1 := src.Guarantee()
			g2, ok2 := dec.Guarantee()
			if ok1 != ok2 || g1 != g2 {
				t.Errorf("guarantee %v,%v -> %v,%v", g1, ok1, g2, ok2)
			}
		})
	}
}

func TestCodecV2RoundTripString(t *testing.T) {
	src := hh.New[string](hh.WithCapacity(16))
	for i := 0; i < 100; i++ {
		src.Update("w" + strconv.Itoa(i%7))
	}
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[string](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Estimate("w0"); got != src.Estimate("w0") {
		t.Errorf("decoded w0 = %v, want %v", got, src.Estimate("w0"))
	}
	// Key-kind mismatch must be rejected, not misread.
	if _, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("decoding string-keyed bytes as uint64 succeeded")
	}
}

func TestCodecV2RejectsSketchAndStruct(t *testing.T) {
	var buf bytes.Buffer
	sk := hh.New[uint64](hh.WithAlgorithm(hh.AlgoCountSketch), hh.WithCapacity(32))
	if err := sk.Encode(&buf); err == nil {
		t.Error("encoding a sketch summary succeeded")
	}
	type pair struct{ A, B int }
	ps := hh.New[pair](hh.WithCapacity(8))
	ps.Update(pair{1, 2})
	if err := ps.Encode(&buf); err == nil {
		t.Error("encoding a struct-keyed summary succeeded")
	}
}

func TestFromBlobPreservesErrs(t *testing.T) {
	legacy := hh.NewSpaceSaving[uint64](4)
	for _, x := range []uint64{1, 1, 1, 2, 3, 4, 5, 6} {
		legacy.Update(x)
	}
	var buf bytes.Buffer
	if err := hh.EncodeSummary(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.DecodeSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := hh.FromBlob(0, blob)
	for _, e := range legacy.Entries() {
		if got := s.Estimate(e.Item); got != float64(e.Count) {
			t.Errorf("item %d: %v, want %d", e.Item, got, e.Count)
		}
		lo, _ := s.EstimateBounds(e.Item)
		if want := float64(e.Count - e.Err); lo != want {
			t.Errorf("item %d: lo = %v, want %v", e.Item, lo, want)
		}
	}
}

func TestMergedBoundsCoverEvictedItems(t *testing.T) {
	// An item a full input evicted may carry up to that input's minimum
	// counter; the merged upper bound must cover it (code-review repro).
	a := hh.New[uint64](hh.WithCapacity(2))
	b := hh.New[uint64](hh.WithCapacity(2))
	for _, x := range []uint64{1, 1, 1, 2, 2, 3, 3, 3, 3} {
		a.Update(x)
	}
	for _, x := range []uint64{4, 4, 5} {
		b.Update(x)
	}
	merged, err := hh.MergeSummaries(100, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Item 2 (true count 2) was evicted by a; item absent everywhere.
	if _, hi := merged.EstimateBounds(2); hi < 2 {
		t.Errorf("merged hi for evicted item = %v, want >= 2", hi)
	}
	// A stored item may also hide mass in the input that evicted it.
	for _, item := range []uint64{1, 3} {
		truth := map[uint64]float64{1: 3, 3: 4}[item]
		lo, hi := merged.EstimateBounds(item)
		if truth < lo || truth > hi {
			t.Errorf("item %d: true %v outside merged [%v, %v]", item, truth, lo, hi)
		}
	}
}

func TestShardedDecodeBoundsAndGuarantee(t *testing.T) {
	// A full sharded producer encodes an inflated capacity; the decoded
	// summary must keep sound per-item intervals and a guarantee whose
	// bound matches the per-shard one (constants rescaled with the
	// capacity).
	s := stream.Zipf(2000, 1.1, 100000, stream.OrderRandom, 31)
	truth := exact.FromStream(s)
	src := hh.New[uint64](hh.WithShards(4), hh.WithCapacity(100))
	src.UpdateBatch(s)
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		lo, hi := dec.EstimateBounds(i)
		if f := truth.Freq(i); f < lo-1e-9 || f > hi+1e-9 {
			t.Errorf("item %d: true %v outside decoded [%v, %v]", i, f, lo, hi)
		}
	}
	g, ok := dec.Guarantee()
	if !ok {
		t.Fatal("decoded sharded summary lost its guarantee")
	}
	// The advertised bound at the decoded capacity must be no tighter
	// than the per-shard bound the producer actually provides.
	const k = 10
	res := truth.Res1(k)
	perShard := hh.TailGuarantee{A: 1, B: 1}.Bound(100, k, res)
	if got := g.Bound(dec.Capacity(), k, res); got < perShard-1e-9 {
		t.Errorf("decoded bound %v tighter than per-shard bound %v", got, perShard)
	}
}

func TestDecodeRejectsHostileHeaders(t *testing.T) {
	// A well-formed prefix claiming absurd sizes must be rejected before
	// any large allocation, not absorbed.
	src := hh.New[uint64](hh.WithCapacity(4))
	src.Update(1)
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Bytes 0-5 magic, 6 algo, 7 flags, 8 kind, 9.. capacity uvarint.
	huge := append([]byte{}, good[:9]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // capacity ≈ 2^34
	if _, err := hh.Decode[uint64](bytes.NewReader(huge)); err == nil {
		t.Error("huge capacity accepted")
	}
	// count > capacity must be rejected too: claim 200 entries against
	// capacity 4 by corrupting the count byte, which sits just before
	// the single 17-byte entry (1-byte key uvarint + two 8-byte floats).
	bad := append([]byte{}, good...)
	bad[len(bad)-18] = 200
	if _, err := hh.Decode[uint64](bytes.NewReader(bad)); err == nil {
		t.Error("entry count exceeding capacity accepted")
	}
}

func TestSketchBackendsTrackHeavyHitters(t *testing.T) {
	s := stream.Zipf(2000, 1.3, 100000, stream.OrderRandom, 9)
	truth := exact.FromStream(s)
	for _, algo := range []hh.Algo{hh.AlgoCountMin, hh.AlgoCountSketch} {
		t.Run(algo.String(), func(t *testing.T) {
			sk := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(512), hh.WithSeed(42))
			sk.UpdateBatch(s)
			top := sk.Top(5)
			if len(top) != 5 {
				t.Fatalf("Top(5) returned %d entries", len(top))
			}
			// The undisputed #1 of a 1.3-Zipf must surface.
			if top[0].Item != 0 {
				t.Errorf("top item = %d, want 0", top[0].Item)
			}
			if est := sk.Estimate(0); math.Abs(est-truth.Freq(0)) > 0.1*truth.Freq(0) {
				t.Errorf("Estimate(0) = %v, true %v", est, truth.Freq(0))
			}
			// Count-Min upper bounds are certain.
			if algo == hh.AlgoCountMin {
				for i := uint64(0); i < 100; i++ {
					if _, hi := sk.EstimateBounds(i); truth.Freq(i) > hi {
						t.Errorf("item %d: true %v above certain hi %v", i, truth.Freq(i), hi)
					}
				}
			}
		})
	}
}

func TestStructKeysWorkOnCounterBackends(t *testing.T) {
	type flow struct{ Src, Dst uint32 }
	s := hh.New[flow](hh.WithShards(4), hh.WithCapacity(16))
	hot := flow{1, 2}
	for i := 0; i < 50; i++ {
		s.Update(hot)
		if i%10 == 0 {
			s.Update(flow{uint32(i), 9})
		}
	}
	if got := s.Estimate(hot); got < 50 {
		t.Errorf("Estimate(hot) = %v, want >= 50", got)
	}
	if top := s.Top(1); top[0].Item != hot {
		t.Errorf("Top(1) = %v", top)
	}
}

func TestDecodePreservesMass(t *testing.T) {
	// The decoded N() must equal the producer's for every counter algo —
	// in particular the undercounting ones (FREQUENT/LOSSYCOUNTING),
	// whose stored counts sum to far less than the stream mass: the
	// review repro was FREQUENT m=4 over a 100-item uniform stream
	// decoding to N()=0. A wrong N() skews every phi·N HeavyHitters
	// threshold on the consumer.
	uniform := make([]uint64, 0, 100)
	for i := 0; i < 100; i++ {
		uniform = append(uniform, uint64(i))
	}
	for _, algo := range counterAlgos {
		for _, shards := range []int{0, 3} {
			name := algo.String()
			if shards > 0 {
				name += "-sharded"
			}
			t.Run(name, func(t *testing.T) {
				opts := []hh.Option{hh.WithAlgorithm(algo), hh.WithCapacity(4)}
				if shards > 0 {
					opts = append(opts, hh.WithShards(shards))
				}
				src := hh.New[uint64](opts...)
				src.UpdateBatch(uniform)
				var buf bytes.Buffer
				if err := src.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				dec, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dec.N(), src.N(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("decoded N = %v, want %v", got, want)
				}
				// The carried mass must survive a second round trip.
				buf.Reset()
				if err := dec.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				dec2, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dec2.N(), src.N(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("twice-decoded N = %v, want %v", got, want)
				}
			})
		}
	}
}

func TestDecodedHeavyHittersUseProducerMass(t *testing.T) {
	// With the true N carried through, a decoded FREQUENT summary must
	// not promote items to Guaranteed against a shrunken threshold: on a
	// uniform stream nothing reaches phi = 0.5 of the mass.
	src := hh.New[uint64](hh.WithAlgorithm(hh.AlgoFrequent), hh.WithCapacity(4))
	for i := 0; i < 100; i++ {
		src.Update(uint64(i))
	}
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range dec.HeavyHitters(0.5) {
		if r.Guaranteed {
			t.Errorf("item %d marked Guaranteed at phi=0.5 of a uniform stream", r.Item)
		}
	}
}

func TestMergePreservesMass(t *testing.T) {
	// The merged N() must be the union stream's mass, not the sum of the
	// inputs' stored counts — the same defect class as the decode one,
	// reachable whenever an input undercounts (FREQUENT/LOSSYCOUNTING or
	// a decoded summary carrying slack).
	for _, algo := range counterAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			a := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(4))
			b := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(4))
			for i := 0; i < 100; i++ {
				a.Update(uint64(i))
				b.Update(uint64(i % 10))
			}
			want := a.N() + b.N()
			merged, err := a.Merge(b)
			if err != nil {
				t.Fatal(err)
			}
			if got := merged.N(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("merged N = %v, want %v", got, want)
			}
			// Chained merge → encode → decode stays consistent.
			var buf bytes.Buffer
			if err := merged.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := hh.Decode[uint64](bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got := dec.N(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("decoded merged N = %v, want %v", got, want)
			}
			// And a merge of decoded inputs still sums the true masses.
			remerged, err := dec.Merge(a)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := remerged.N(), want+a.N(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("re-merged N = %v, want %v", got, want)
			}
		})
	}
}

func TestTopNonPositiveK(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(8))
	s.Update(1)
	s.Update(2)
	if got := s.Top(0); got != nil {
		t.Errorf("Top(0) = %v, want nil", got)
	}
	if got := s.Top(-1); got != nil {
		t.Errorf("Top(-1) = %v, want nil", got)
	}
	legacy := hh.NewSpaceSaving[uint64](8)
	legacy.Update(1)
	if got := hh.Top[uint64](legacy, -1); got != nil {
		t.Errorf("legacy Top(-1) = %v, want nil", got)
	}
	weighted := hh.NewSpaceSavingR[uint64](8)
	weighted.UpdateWeighted(1, 2.5)
	if got := hh.TopWeighted[uint64](weighted, -1); got != nil {
		t.Errorf("legacy TopWeighted(-1) = %v, want nil", got)
	}
}

func TestIntegralWeightOverflowPanics(t *testing.T) {
	// A huge integral float64 passes the Trunc test but overflows the
	// uint64 conversion; it must be rejected, not silently corrupt the
	// counts.
	for _, algo := range []hh.Algo{hh.AlgoSpaceSaving, hh.AlgoCountMin} {
		s := hh.New[uint64](hh.WithAlgorithm(algo), hh.WithCapacity(8))
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: UpdateWeighted(1e20) did not panic", algo)
				}
			}()
			s.UpdateWeighted(1, 1e20)
		}()
	}
}

func TestNonFiniteWeightPanics(t *testing.T) {
	// NaN slips past a plain w <= 0 test and +Inf past the integrality
	// test; either would silently poison N() and every phi·N threshold.
	s := hh.New[string](hh.WithWeighted(), hh.WithCapacity(8))
	for _, w := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UpdateWeighted(%v) did not panic", w)
				}
			}()
			s.UpdateWeighted("a", w)
		}()
	}
	if s.N() != 0 {
		t.Errorf("N = %v after rejected updates, want 0", s.N())
	}
	// The legacy weighted counters guard the same way.
	r := hh.NewSpaceSavingR[string](8)
	fr := hh.NewFrequentR[string](8)
	for _, w := range []float64{math.NaN(), math.Inf(1)} {
		for name, fn := range map[string]func(){
			"SpaceSavingR": func() { r.UpdateWeighted("a", w) },
			"FrequentR":    func() { fr.UpdateWeighted("a", w) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s.UpdateWeighted(%v) did not panic", name, w)
					}
				}()
				fn()
			}()
		}
	}
}

func TestSummaryResidual(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(16))
	for i := 0; i < 60; i++ {
		s.Update(uint64(i % 4)) // 4 items x 15
	}
	if got := hh.SummaryResidual(s, 2); got != 30 {
		t.Errorf("SummaryResidual(k=2) = %v, want 30", got)
	}
	if got := hh.SummaryResidual(s, 100); got != 0 {
		t.Errorf("SummaryResidual(k=100) = %v, want 0", got)
	}
}
