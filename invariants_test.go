package heavyhitters_test

// Black-box property tests over the public API: the paper's inequalities
// checked on randomized streams via testing/quick, complementing the
// white-box properties in the internal packages.

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	hh "repro"
	"repro/internal/exact"
	"repro/internal/stream"
)

// smallStream derives a bounded-universe stream from raw fuzz bytes.
func smallStream(raw []uint8, universe uint64) []uint64 {
	s := make([]uint64, len(raw))
	for i, b := range raw {
		s[i] = uint64(b) % universe
	}
	return s
}

func TestPropertySpaceSavingDominatesTruth(t *testing.T) {
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%12 + 1
		s := smallStream(raw, 24)
		ss := hh.NewSpaceSaving[uint64](m)
		truth := exact.New()
		for _, x := range s {
			ss.Update(x)
			truth.Update(x)
		}
		for _, e := range ss.Entries() {
			if float64(e.Count) < truth.Freq(e.Item) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFrequentNeverOvercounts(t *testing.T) {
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%12 + 1
		s := smallStream(raw, 24)
		f := hh.NewFrequent[uint64](m)
		truth := exact.New()
		for _, x := range s {
			f.Update(x)
			truth.Update(x)
		}
		for i := uint64(0); i < 24; i++ {
			if float64(f.Estimate(i)) > truth.Freq(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTailGuaranteeOnRandomStreams(t *testing.T) {
	// The headline inequality on arbitrary (not just Zipfian) streams.
	err := quick.Check(func(raw []uint8, mRaw, kRaw uint8) bool {
		m := int(mRaw)%10 + 2
		k := int(kRaw) % m // k < m
		s := smallStream(raw, 32)
		truth := exact.New()
		for _, x := range s {
			truth.Update(x)
		}
		bound := hh.TailGuarantee{A: 1, B: 1}.Bound(m, k, truth.Res1(k))
		for _, mk := range []hh.Counter[uint64]{
			hh.NewFrequent[uint64](m),
			hh.NewSpaceSaving[uint64](m),
			hh.NewSpaceSavingHeap[uint64](m),
		} {
			for _, x := range s {
				mk.Update(x)
			}
			for i := uint64(0); i < 32; i++ {
				if math.Abs(truth.Freq(i)-float64(mk.Estimate(i))) > bound {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResidualEstimateSandwich(t *testing.T) {
	// F1 − ||f'||_1 is always within [res(k) − kΔ, res(k) + kΔ]
	// (the inequality inside the Theorem 6 proof), for any stream.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%12 + 4
		k := m / 4
		if k < 1 {
			k = 1
		}
		s := smallStream(raw, 24)
		ss := hh.NewSpaceSaving[uint64](m)
		truth := exact.New()
		for _, x := range s {
			ss.Update(x)
			truth.Update(x)
		}
		res := truth.Res1(k)
		delta := hh.TailGuarantee{A: 1, B: 1}.Bound(m, k, res)
		if math.IsInf(delta, 1) {
			return true
		}
		got := hh.EstimateResidual[uint64](ss, k, truth.F1())
		return got >= res-float64(k)*delta-1e-9 && got <= res+float64(k)*delta+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeCountConservation(t *testing.T) {
	// Merging all counters of SPACESAVING summaries conserves the total
	// stream mass when the merged structure does not evict (m large
	// enough): Σ merged counters = N1 + N2.
	err := quick.Check(func(rawA, rawB []uint8) bool {
		sA := smallStream(rawA, 16)
		sB := smallStream(rawB, 16)
		a := hh.NewSpaceSaving[uint64](32)
		b := hh.NewSpaceSaving[uint64](32)
		for _, x := range sA {
			a.Update(x)
		}
		for _, x := range sB {
			b.Update(x)
		}
		merged := hh.MergeAll[uint64](64, a, b)
		var sum float64
		for _, e := range merged.WeightedEntries() {
			sum += e.Count
		}
		return sum == float64(len(sA)+len(sB))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%12 + 1
		s := smallStream(raw, 24)
		ss := hh.NewSpaceSaving[uint64](m)
		for _, x := range s {
			ss.Update(x)
		}
		var buf bytes.Buffer
		if err := hh.EncodeSummary(&buf, ss); err != nil {
			return false
		}
		blob, err := hh.DecodeSummary(&buf)
		if err != nil {
			return false
		}
		want := ss.Entries()
		if len(blob.Entries) != len(want) || blob.N != ss.N() {
			return false
		}
		for i := range want {
			if blob.Entries[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeightedMatchesUnit(t *testing.T) {
	// Feeding unit weights through the weighted algorithms must keep the
	// mass identity Σ counters = N (SPACESAVINGR inherits SPACESAVING's
	// invariant when every b_i = 1).
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		s := smallStream(raw, 16)
		r := hh.NewSpaceSavingR[uint64](m)
		for _, x := range s {
			r.UpdateWeighted(x, 1)
		}
		var sum float64
		for _, e := range r.WeightedEntries() {
			sum += e.Count
		}
		return sum == float64(len(s))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHeapAndListSameErrorBound(t *testing.T) {
	// The two SPACESAVING backing structures may store different items,
	// but both must satisfy the same per-item bound via the min counter.
	err := quick.Check(func(raw []uint8, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		s := smallStream(raw, 16)
		list := hh.NewSpaceSaving[uint64](m)
		heap := hh.NewSpaceSavingHeap[uint64](m)
		truth := exact.New()
		for _, x := range s {
			list.Update(x)
			heap.Update(x)
			truth.Update(x)
		}
		for i := uint64(0); i < 16; i++ {
			f := truth.Freq(i)
			if d := math.Abs(f - float64(list.Estimate(i))); d > float64(list.MinCount()) {
				return false
			}
			if d := math.Abs(f - float64(heap.Estimate(i))); d > float64(heap.MinCount()) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Quick sanity that stream generators and the concurrent wrapper compose
// under the public API (integration smoke, distinct from unit paths).
func TestIntegrationConcurrentOnGeneratedStream(t *testing.T) {
	s := stream.Zipf(1000, 1.2, 50000, stream.OrderRandom, 21)
	c := hh.NewConcurrentUint64(4, 64)
	truth := exact.FromStream(s)
	for _, x := range s {
		c.Update(x)
	}
	top := c.Top(5)
	if len(top) != 5 {
		t.Fatalf("Top(5) returned %d entries", len(top))
	}
	for _, e := range top[:3] {
		if truth.Freq(e.Item) == 0 {
			t.Errorf("top item %d never occurred", e.Item)
		}
	}
	if top[0].Item != 0 {
		t.Errorf("heaviest item = %d, want 0", top[0].Item)
	}
}
