package heavyhitters

import (
	"fmt"
	"hash/maphash"
	"reflect"
	"strings"
	"unsafe"
)

// Borrowed-key support (WithBorrowedKeys): the core structures retain
// keys indefinitely — in counter slabs, map keys, heap entries — so a
// caller that reuses the backing memory of its keys (a zero-copy frame
// decoder aliasing strings into a connection buffer) would corrupt the
// summary. The fix is a clone hook threaded into every structure at
// construction: each retention site routes the key through the hook
// the moment it decides to store it. Hits, increments and rejected
// candidates never clone, so for skewed streams only the insertion
// tail (a small fraction of arrivals) pays.
//
// Arena interplay (WithArena): on an arena-backed summary no clone
// hook is installed at all. The arena's Put interns the key bytes
// straight into its slabs and the structure stores the slab-aliased
// view, so a borrowed key is copied exactly once — from the caller's
// buffer into the slab — with no intermediate heap string and no
// clone cache. summary.go wires this: the hook is built only when
// EnableArena declined (non-string keys) or arena is off.

// newKeyCloner builds the per-structure clone hook for key type K, or
// nil when K needs no cloning (pointer-free types own their bytes).
// m is the structure's counter budget; it sizes the string dedup
// cache. It panics for key types that cannot be cloned generically —
// WithBorrowedKeys documents the supported set.
func newKeyCloner[K comparable](m int) func(K) K {
	var zero K
	t := reflect.TypeOf(zero)
	if t.Kind() == reflect.String {
		// Any string-kind K has the representation of a string, so the
		// pointer reinterpretation below is a no-op view change — it
		// avoids boxing K into an interface on every clone.
		c := newStringCloneCache(m)
		return func(k K) K {
			s := c.clone(*(*string)(unsafe.Pointer(&k)))
			return *(*K)(unsafe.Pointer(&s))
		}
	}
	if pointerFree(t) {
		return nil // value types carry no external memory; nothing to clone
	}
	panic(fmt.Sprintf("heavyhitters: WithBorrowedKeys cannot clone key type %v (supported: strings and pointer-free types)", t))
}

// pointerFree reports whether values of t embed no references to
// memory outside the value itself.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// stringCloneCache deduplicates clones of recurring keys. Insertions
// under a skewed stream concentrate on a working set of tail keys that
// cycle in and out of the summary; without a cache every re-insertion
// would allocate a fresh copy of a key that was cloned before. A
// direct-mapped table keyed by the string's hash remembers the last
// clone per slot, so a recurring key is usually copied once across its
// whole tenure in the stream.
//
// The cache is an optimization only: a collision or an overlong key
// falls back to a plain copy and stays correct. It is written solely
// from clone, which runs under the owning structure's write path (the
// structures themselves are single-writer; the sharded and concurrent
// tiers already serialize writers per structure), so it needs no
// locking of its own.
type stringCloneCache struct {
	seed  maphash.Seed
	mask  uint64
	slots []string
}

// Cache geometry: slots scale with the counter budget (the insertion
// working set tracks the tail beyond the m tracked keys), bounded so a
// tiny summary still dedups usefully and a huge one doesn't pin
// unbounded memory. Keys longer than maxCachedKeyLen are cloned
// directly — caching them would let a few giant keys pin cache memory
// for no dedup benefit.
const (
	minCloneCacheSlots = 1 << 12
	maxCloneCacheSlots = 1 << 18
	maxCachedKeyLen    = 256
)

func newStringCloneCache(m int) *stringCloneCache {
	slots := minCloneCacheSlots
	for slots < 128*m && slots < maxCloneCacheSlots {
		slots <<= 1
	}
	return &stringCloneCache{seed: maphash.MakeSeed(), mask: uint64(slots - 1)}
}

// clone returns a copy of s that does not share backing memory with it
// (possibly a previously made copy of an equal string).
func (c *stringCloneCache) clone(s string) string {
	if len(s) > maxCachedKeyLen {
		return strings.Clone(s)
	}
	if c.slots == nil {
		// Allocated on first use so summaries that never see borrowed
		// inserts (or are built and discarded) pay nothing.
		c.slots = make([]string, c.mask+1)
	}
	i := maphash.String(c.seed, s) & c.mask
	if c.slots[i] == s {
		return c.slots[i]
	}
	cs := strings.Clone(s)
	c.slots[i] = cs
	return cs
}
