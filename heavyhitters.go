package heavyhitters

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/frequent"
	"repro/internal/lossycounting"
	"repro/internal/sketch"
	"repro/internal/spacesaving"
)

// Entry is one stored counter of a summary: the item, its estimated
// count, and — for overestimating algorithms — the recorded bound on the
// overestimate (SPACESAVING's ε_i; FREQUENT leaves it zero).
type Entry[K comparable] = core.Entry[K]

// WeightedEntry is an Entry of a real-valued summary.
type WeightedEntry[K comparable] = core.WeightedEntry[K]

// Counter is a deterministic counter algorithm processing unit-weight
// streams: FREQUENT, SPACESAVING (either backing structure), or
// LOSSYCOUNTING. (It was named Summary before that name moved to the
// unified interface returned by New.)
type Counter[K comparable] = core.Algorithm[K]

// WeightedCounter is a counter algorithm processing positive real-valued
// updates (Section 6.1 of the paper): FREQUENTR or SPACESAVINGR.
type WeightedCounter[K comparable] = core.WeightedAlgorithm[K]

// WeightedSummary is the former name of WeightedCounter.
//
// Deprecated: use WeightedCounter, or build a weighted Summary with
// New(WithWeighted()).
type WeightedSummary[K comparable] = core.WeightedAlgorithm[K]

// TailGuarantee carries the constants (A, B) of a summary's k-tail
// guarantee: every error is at most A·F1^res(k)/(m − B·k). Both
// SPACESAVING and FREQUENT provide (1, 1).
type TailGuarantee = core.TailGuarantee

// Frequent is the FREQUENT (Misra–Gries) algorithm: m counters, O(1)
// amortised per update, never overestimates.
type Frequent[K comparable] = frequent.Frequent[K]

// FrequentR is the real-valued update extension of FREQUENT.
type FrequentR[K comparable] = frequent.FrequentR[K]

// SpaceSaving is the SPACESAVING algorithm backed by the Stream-Summary
// bucket list: m counters, O(1) per update, never underestimates, and the
// per-item overestimate is tracked in Entry.Err.
type SpaceSaving[K comparable] = spacesaving.StreamSummary[K]

// SpaceSavingHeap is SPACESAVING backed by a (count, identifier) min-heap:
// O(log m) per update with the deterministic smallest-identifier eviction
// rule used in the paper's proofs.
type SpaceSavingHeap[K cmp.Ordered] = spacesaving.Heap[K]

// SpaceSavingR is the real-valued update extension of SPACESAVING.
type SpaceSavingR[K comparable] = spacesaving.R[K]

// LossyCounting is the Manku–Motwani baseline. Unlike the algorithms
// above it has no hard counter cap and no residual guarantee; it is
// exported for comparison studies.
type LossyCounting[K comparable] = lossycounting.LossyCounting[K]

// CountMin is the Count-Min sketch baseline over uint64 items.
type CountMin = sketch.CountMin

// CountSketch is the Count-Sketch baseline over uint64 items.
type CountSketch = sketch.CountSketch

// NewFrequent returns a FREQUENT summary with m counters. With m counters
// every estimate satisfies f_i − F1^res(k)/(m+1−k) ≤ f̂_i ≤ f_i for all
// k < m. It panics if m < 1.
func NewFrequent[K comparable](m int) *Frequent[K] { return frequent.New[K](m) }

// NewFrequentR returns a weighted FREQUENT summary with m counters
// (Theorem 10 guarantees). It panics if m < 1.
func NewFrequentR[K comparable](m int) *FrequentR[K] { return frequent.NewR[K](m) }

// NewSpaceSaving returns a SPACESAVING summary with m counters backed by
// a Stream-Summary. With m counters every estimate satisfies
// f_i ≤ f̂_i ≤ f_i + F1^res(k)/(m−k) for all k < m. It panics if m < 1.
func NewSpaceSaving[K comparable](m int) *SpaceSaving[K] { return spacesaving.New[K](m) }

// NewSpaceSavingHeap returns the heap-backed SPACESAVING variant with
// deterministic smallest-identifier eviction. It panics if m < 1.
func NewSpaceSavingHeap[K cmp.Ordered](m int) *SpaceSavingHeap[K] {
	return spacesaving.NewHeap[K](m)
}

// NewSpaceSavingR returns a weighted SPACESAVING summary with m counters
// (Theorem 10 guarantees). It panics if m < 1.
func NewSpaceSavingR[K comparable](m int) *SpaceSavingR[K] { return spacesaving.NewR[K](m) }

// NewLossyCounting returns a LOSSYCOUNTING baseline with window width w
// (error parameter ε = 1/w). It panics if w < 1.
func NewLossyCounting[K comparable](w int) *LossyCounting[K] { return lossycounting.New[K](w) }

// NewCountMin returns a depth×width Count-Min sketch seeded
// deterministically. It panics if either dimension is < 1.
func NewCountMin(depth, width int, seed uint64) *CountMin {
	return sketch.NewCountMin(depth, width, seed)
}

// NewCountSketch returns a depth×width Count-Sketch seeded
// deterministically. It panics if either dimension is < 1.
func NewCountSketch(depth, width int, seed uint64) *CountSketch {
	return sketch.NewCountSketch(depth, width, seed)
}

// Top returns the k largest counters of a summary in decreasing order.
// Fewer than k entries are returned when the summary stores fewer.
//
// Deprecated: prefer Summary.Top on a summary built by New; Top remains
// for code holding a concrete Counter.
func Top[K comparable](s Counter[K], k int) []Entry[K] {
	if k <= 0 {
		return nil
	}
	es := s.Entries()
	if k < len(es) {
		es = es[:k]
	}
	return es
}

// TopWeighted is Top for real-valued summaries.
//
// Deprecated: prefer Summary.Top on a summary built with WithWeighted().
func TopWeighted[K comparable](s WeightedCounter[K], k int) []WeightedEntry[K] {
	if k <= 0 {
		return nil
	}
	es := s.WeightedEntries()
	if k < len(es) {
		es = es[:k]
	}
	return es
}

// ErrorBound returns the k-tail error bound A·res/(m−Bk) a summary with
// the given guarantee and m counters provides, given (an upper bound on)
// the residual F1^res(k). Use EstimateResidual to obtain the residual from
// the summary itself.
func ErrorBound(g TailGuarantee, m, k int, residual float64) float64 {
	return g.Bound(m, k, residual)
}

// CountersForRecovery returns the number of counters m = k(2A/ε + B)
// (one-sided algorithms; FREQUENT and SPACESAVING qualify) sufficient for
// the Theorem 5 k-sparse recovery bound at accuracy ε.
func CountersForRecovery(k int, eps float64, g TailGuarantee) int {
	return recoveryCounters(k, eps, g)
}
