package heavyhitters

// The concurrency tier: thread safety as a composable backend layer
// (WithConcurrent), sitting above every other tier — core →
// window/decay → sharded → concurrent — instead of living in a
// parallel code path.
//
// Writers go through striped locks: on a sharded composition the
// shard mutexes stripe the ingest path exactly as WithShards alone
// does (the batch path keeps the one-hash-per-key contract), and an
// unsharded composition serializes through one write mutex. Every
// completed write bumps an atomic generation counter.
//
// Readers never take the write locks. Every query is served from an
// RCU-style snapshot behind an atomic pointer: an immutable view of
// the counter state, labeled with the generation it reflects. A read
// that finds the label equal to the current generation serves the
// snapshot as-is — the common case for read-mostly and quiescent
// summaries, with zero locking. When the generation moved, one reader
// rebuilds the snapshot (single-flight behind rebuildMu) by walking
// the live structure through the same per-shard locking the write
// path uses; concurrent readers that lose the rebuild race serve the
// previous snapshot rather than wait, so a query's staleness is
// bounded by the duration of the one in-flight rebuild. N() alone
// opts out of that fallback: it waits for the in-flight rebuild
// (currentFresh), so the reported mass is exact the moment writers
// quiesce. A Reset draws
// a hard line through that allowance: snapshots are also labeled with
// a reset era, and a reader never serves a snapshot from an earlier
// era — post-Reset queries wait for a post-Reset rebuild instead of
// reporting pre-Reset counters.
//
// Bounds served from a snapshot are certain. For an unsharded
// composition the snapshot is collected under the write mutex, so it
// is a point-in-time view and reproduces the live bounds exactly. For
// a sharded composition the collection locks shards one at a time
// (consistent per-shard states, the same semantics sharded queries
// have always had), and the snapshot carries the aggregated upper
// slack Σ_shards slackOut — at least the owning shard's slack for
// every item — so [count − err, count + slack] still brackets the
// truth; the price is bounds up to the other shards' slack wider than
// a live per-shard query (zero for SPACESAVING, whose slack is 0).
//
// Tick windows add a second staleness trigger: with an idle stream
// the generation never moves, but epochs still age out. Snapshots of
// tick-windowed compositions record their capture time and expire
// after one epoch granularity, so a read on an idle stream rebuilds —
// the rebuild walks the ring under the write locks, rotating expired
// epochs exactly as a PR 3 query would, which is what makes
// query-driven rotation safe against concurrent writers.

import (
	"sync"
	"sync/atomic"
	"time"
)

// concurrentTier implements backend[K] as the thread-safety layer over
// any inner composition. Built by New when WithConcurrent is given.
type concurrentTier[K comparable] struct {
	inner backend[K]
	// selfLocked: the inner backend serializes its own mutations (the
	// sharded tier's per-shard mutexes stripe the write path). Otherwise
	// wmu guards every write and every snapshot collection.
	selfLocked bool
	wmu        sync.Mutex

	// gen counts completed writes; a snapshot labeled with the current
	// generation is exact. resetGen counts Resets: snapshots from an
	// earlier era are never served, even as bounded-stale fallbacks.
	gen      atomic.Uint64
	resetGen atomic.Uint64
	snap     atomic.Pointer[concurrentSnapshot[K]]
	// rebuildMu single-flights snapshot rebuilds. Writers never touch
	// it; readers TryLock and fall back to the previous snapshot when a
	// rebuild is already in flight.
	rebuildMu sync.Mutex
	// lastLen sizes the next snapshot's buffers.
	lastLen int //hh:guardedby rebuildMu

	// Tick-window staleness: snapshots expire after one epoch
	// granularity even without writes, so idle epochs age out of reads.
	tick  time.Duration
	clock func() time.Time
}

// newConcurrentTier wraps inner in the concurrency tier.
func newConcurrentTier[K comparable](cfg config, inner backend[K]) *concurrentTier[K] {
	t := &concurrentTier[K]{inner: inner}
	switch inner.(type) {
	case *shardedBackend[K], *pipelineTier[K]:
		// Both serialize their own mutations: the sharded tier through
		// its per-shard mutexes, the pipeline tier through single-writer
		// shard workers (whose reads barrier on ring drain).
		t.selfLocked = true
	}
	if cfg.tickSet {
		t.tick = cfg.tick / time.Duration(cfg.epochs)
		if t.tick <= 0 {
			t.tick = 1
		}
		t.clock = cfg.clock
		if t.clock == nil {
			t.clock = time.Now
		}
	}
	return t
}

// concurrentSnapshot is one immutable view of the wrapped composition:
// everything a read needs, so serving it touches no locks. It
// implements backend[K] so pinned compound queries (HeavyHitters,
// Merge, Encode) run against one consistent view.
//
//hh:immutable
type concurrentSnapshot[K comparable] struct {
	gen      uint64
	resetGen uint64
	takenAt  time.Time // tick windows only

	entries []WeightedEntry[K] // decreasing count order
	index   map[K]int32
	mass    float64
	upSlack float64 // inner slackOut at capture
	absFlr  float64 // inner absentExtra at capture
	win     WindowState
	hasWin  bool

	// Static configuration mirrored so the snapshot alone answers
	// every backend method.
	cap      int
	tailG    TailGuarantee
	hasTailG bool
	canMerge bool
	over     bool
}

// --- write path (striped locks + generation bump) ---

//hh:noalloc
func (t *concurrentTier[K]) update(item K) {
	if t.selfLocked {
		t.inner.update(item)
	} else {
		t.wmu.Lock()
		t.inner.update(item)
		t.wmu.Unlock()
	}
	t.gen.Add(1)
}

//hh:noalloc
func (t *concurrentTier[K]) updateN(item K, n uint64) {
	if t.selfLocked {
		t.inner.updateN(item, n)
	} else {
		t.wmu.Lock()
		t.inner.updateN(item, n)
		t.wmu.Unlock()
	}
	t.gen.Add(1)
}

//hh:noalloc
func (t *concurrentTier[K]) updateWeighted(item K, w float64) {
	if t.selfLocked {
		t.inner.updateWeighted(item, w)
	} else {
		t.wmu.Lock()
		t.inner.updateWeighted(item, w)
		t.wmu.Unlock()
	}
	t.gen.Add(1)
}

//hh:noalloc
func (t *concurrentTier[K]) updateBatch(items []K, hashes []uint64) {
	if t.selfLocked {
		t.inner.updateBatch(items, hashes)
	} else {
		t.wmu.Lock()
		t.inner.updateBatch(items, hashes)
		t.wmu.Unlock()
	}
	t.gen.Add(1)
}

//hh:noalloc
func (t *concurrentTier[K]) updateBatchN(items []K, counts []uint32, hashes []uint64) {
	if t.selfLocked {
		t.inner.updateBatchN(items, counts, hashes)
	} else {
		t.wmu.Lock()
		t.inner.updateBatchN(items, counts, hashes)
		t.wmu.Unlock()
	}
	t.gen.Add(1)
}

//hh:noalloc
func (t *concurrentTier[K]) reset() {
	if t.selfLocked {
		// Per-shard locking: not atomic against concurrent writers (the
		// documented sharded semantics), but every pre-Reset entry lives
		// in some shard and is cleared when that shard resets.
		t.inner.reset()
	} else {
		t.wmu.Lock()
		t.inner.reset()
		t.wmu.Unlock()
	}
	// Era bump after the state is cleared: a snapshot collected from any
	// pre-Reset (or mid-Reset) state carries the old era label and is
	// rejected, so a post-Reset reader never serves pre-Reset entries.
	t.gen.Add(1)
	t.resetGen.Add(1)
}

// --- read path (lock-free serve, single-flight rebuild) ---

// fresh reports whether s can be served as the exact current state.
//
//hh:noalloc
func (t *concurrentTier[K]) fresh(s *concurrentSnapshot[K]) bool {
	if s == nil || s.gen != t.gen.Load() || s.resetGen != t.resetGen.Load() {
		return false
	}
	if t.tick > 0 && t.clock().Sub(s.takenAt) >= t.tick {
		// An idle tick window still ages: force a rebuild (which rotates
		// expired epochs) once per epoch granularity.
		return false
	}
	return true
}

// current returns the snapshot to serve this read from: the stored one
// when fresh, a rebuilt one when the generation moved, or — when
// another reader's rebuild is already in flight — the previous
// snapshot of the same reset era (bounded-stale by one rebuild).
func (t *concurrentTier[K]) current() *concurrentSnapshot[K] {
	s := t.snap.Load()
	if t.fresh(s) {
		return s
	}
	if t.rebuildMu.TryLock() {
		defer t.rebuildMu.Unlock()
		if s = t.snap.Load(); t.fresh(s) {
			return s // raced with a rebuild that just finished
		}
		s = t.capture()
		t.snap.Store(s)
		return s
	}
	// A rebuild is in flight. Serving its predecessor keeps readers from
	// ever waiting on each other — unless a Reset intervened, which must
	// not leak pre-Reset state.
	if s != nil && s.resetGen == t.resetGen.Load() {
		return s
	}
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	if s = t.snap.Load(); t.fresh(s) || (s != nil && s.resetGen == t.resetGen.Load()) {
		return s
	}
	s = t.capture()
	t.snap.Store(s)
	return s
}

// currentFresh returns a snapshot reflecting every write completed
// before the call: when the stored snapshot is stale it waits for (or
// performs) the single-flight rebuild instead of taking the
// bounded-stale fallback. total() uses it so N() is exact the moment
// writers quiesce, even if a reader's rebuild from mid-ingest is still
// in flight — the wait is on other readers' rebuilds only; writers are
// never blocked.
func (t *concurrentTier[K]) currentFresh() *concurrentSnapshot[K] {
	s := t.snap.Load()
	if t.fresh(s) {
		return s
	}
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	if s = t.snap.Load(); t.fresh(s) {
		return s
	}
	s = t.capture()
	t.snap.Store(s)
	return s
}

// capture collects one snapshot, locking the structure the same way
// the write path does (the whole composition for unsharded, one shard
// at a time for sharded). The generation and era labels are read
// before collection, so they can only understate the snapshot's
// freshness — a write racing with the collection is either included
// and re-collected on the next read, or not included and invisible;
// never reported as covered when it is not.
//
//hh:locked rebuildMu
func (t *concurrentTier[K]) capture() *concurrentSnapshot[K] {
	s := &concurrentSnapshot[K]{
		gen:      t.gen.Load(),
		resetGen: t.resetGen.Load(),
		cap:      t.inner.capacity(),
		canMerge: t.inner.mergeable(),
		over:     t.inner.overEst(),
	}
	s.tailG, s.hasTailG = t.inner.guarantee()
	if t.tick > 0 {
		s.takenAt = t.clock()
	}
	if !t.selfLocked {
		t.wmu.Lock()
	}
	s.entries = t.inner.appendEntries(make([]WeightedEntry[K], 0, t.lastLen), -1)
	s.mass = t.inner.total()
	s.upSlack = t.inner.slackOut()
	s.absFlr = t.inner.absentExtra()
	s.win, s.hasWin = t.inner.windowState()
	if !t.selfLocked {
		t.wmu.Unlock()
	}
	t.lastLen = len(s.entries)
	s.index = make(map[K]int32, len(s.entries))
	for i, e := range s.entries {
		s.index[e.Item] = int32(i)
	}
	return s
}

func (t *concurrentTier[K]) estimate(item K) float64          { return t.current().estimate(item) }
func (t *concurrentTier[K]) bounds(item K) (float64, float64) { return t.current().bounds(item) }

func (t *concurrentTier[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	return t.current().appendEntries(dst, max)
}

func (t *concurrentTier[K]) each(yield func(WeightedEntry[K]) bool) {
	// The snapshot is immutable and privately pinned by this iteration:
	// nested queries and concurrent writers cannot clobber it, and no
	// scratch detaching is needed.
	t.current().each(yield)
}

func (t *concurrentTier[K]) length() int          { return len(t.current().entries) }
func (t *concurrentTier[K]) total() float64       { return t.currentFresh().mass }
func (t *concurrentTier[K]) slackOut() float64    { return t.current().upSlack }
func (t *concurrentTier[K]) absentExtra() float64 { return t.current().absFlr }
func (t *concurrentTier[K]) windowState() (WindowState, bool) {
	s := t.current()
	return s.win, s.hasWin
}

// Static configuration: safe to read off the inner composition without
// locks (none of these touch counter state).
func (t *concurrentTier[K]) capacity() int                    { return t.inner.capacity() }
func (t *concurrentTier[K]) guarantee() (TailGuarantee, bool) { return t.inner.guarantee() }
func (t *concurrentTier[K]) mergeable() bool                  { return t.inner.mergeable() }
func (t *concurrentTier[K]) overEst() bool                    { return t.inner.overEst() }

// --- the snapshot as a backend (pinned compound queries) ---

//hh:noalloc
func (s *concurrentSnapshot[K]) estimate(item K) float64 {
	if i, ok := s.index[item]; ok {
		return s.entries[i].Count
	}
	return 0
}

// bounds reproduces the live backends' certain intervals from the
// snapshot's aggregate metadata: overestimating state (the SPACESAVING
// convention) keeps lo = count − err; undercounting state
// (FREQUENT/LOSSYCOUNTING, whose deficit travels in the slack) keeps
// lo = count; every upper bound owes the captured global slack, and an
// absent item owes the absent floor on top.
//
//hh:noalloc
func (s *concurrentSnapshot[K]) bounds(item K) (lo, hi float64) {
	if i, ok := s.index[item]; ok {
		e := s.entries[i]
		lo = e.Count
		if s.over {
			lo = e.Count - e.Err
			if lo < 0 {
				lo = 0
			}
		}
		return lo, e.Count + s.upSlack
	}
	return 0, s.upSlack + s.absFlr
}

//hh:noalloc
func (s *concurrentSnapshot[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	take := len(s.entries)
	if max >= 0 && take > max {
		take = max
	}
	return append(dst, s.entries[:take]...)
}

//hh:noalloc
func (s *concurrentSnapshot[K]) each(yield func(WeightedEntry[K]) bool) {
	for _, e := range s.entries {
		if !yield(e) {
			return
		}
	}
}

func (s *concurrentSnapshot[K]) length() int                      { return len(s.entries) }
func (s *concurrentSnapshot[K]) total() float64                   { return s.mass }
func (s *concurrentSnapshot[K]) slackOut() float64                { return s.upSlack }
func (s *concurrentSnapshot[K]) absentExtra() float64             { return s.absFlr }
func (s *concurrentSnapshot[K]) windowState() (WindowState, bool) { return s.win, s.hasWin }
func (s *concurrentSnapshot[K]) capacity() int                    { return s.cap }
func (s *concurrentSnapshot[K]) guarantee() (TailGuarantee, bool) { return s.tailG, s.hasTailG }
func (s *concurrentSnapshot[K]) mergeable() bool                  { return s.canMerge }
func (s *concurrentSnapshot[K]) overEst() bool                    { return s.over }

// Snapshots are read-only views; the summary wrapper never routes
// writes to one.
//
//hh:noalloc
func (s *concurrentSnapshot[K]) update(K) { panic("heavyhitters: write through snapshot") }

//hh:noalloc
func (s *concurrentSnapshot[K]) updateN(K, uint64) { panic("heavyhitters: write through snapshot") }

//hh:noalloc
func (s *concurrentSnapshot[K]) updateWeighted(K, float64) {
	panic("heavyhitters: write through snapshot")
}

//hh:noalloc
func (s *concurrentSnapshot[K]) updateBatch([]K, []uint64) {
	panic("heavyhitters: write through snapshot")
}

//hh:noalloc
func (s *concurrentSnapshot[K]) updateBatchN([]K, []uint32, []uint64) {
	panic("heavyhitters: write through snapshot")
}

//hh:noalloc
func (s *concurrentSnapshot[K]) reset() { panic("heavyhitters: write through snapshot") }

// pinned returns the consistent read view a compound query should run
// against: the concurrency tier pins one snapshot for the whole query,
// every other backend is its own consistent view already.
func pinned[K comparable](be backend[K]) backend[K] {
	if t, ok := be.(*concurrentTier[K]); ok {
		return t.current()
	}
	return be
}
