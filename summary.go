package heavyhitters

import (
	"cmp"
	"fmt"
	"hash/maphash"
	"io"
	"iter"
	"math"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/frequent"
	"repro/internal/lossycounting"
	"repro/internal/recovery"
	"repro/internal/sketch"
	"repro/internal/spacesaving"
)

// Summary is the unified front door of the package: one interface over
// the whole family of algorithms the paper studies — the deterministic
// counter algorithms FREQUENT, SPACESAVING and LOSSYCOUNTING, their
// real-valued Section 6.1 variants, the randomized sketch baselines of
// Table 1, and the sharded concurrent construction. Build one with New:
//
//	s := heavyhitters.New[string](
//		heavyhitters.WithAlgorithm(heavyhitters.AlgoSpaceSaving),
//		heavyhitters.WithErrorBudget(0.001, 0.01),
//	)
//
// Counts are reported as float64 throughout so that unit, integral-
// weighted and real-valued summaries share one query surface; unit
// backends count exactly (float64 is exact below 2^53).
//
// Unless constructed with WithShards or WithConcurrent, a Summary is
// not safe for concurrent use. With WithShards(p) every method is safe
// for concurrent use: items are partitioned across p independently
// locked shards, so per-item estimates and bounds retain the full
// single-shard guarantee against the item's own stream, and aggregate
// queries (Top, HeavyHitters) concatenate the shards' disjoint counter
// sets — no cross-shard merge error is introduced. WithConcurrent adds
// the lock-free read tier on top of any composition: writers keep the
// striped shard locks, while queries serve from a generation-tracked
// snapshot and never block the ingest path (see WithConcurrent for the
// bounded-staleness contract).
//
// WithWindow / WithTickWindow / WithDecay add the windowed tier: every
// query is answered over a sliding suffix of the stream (an epoch ring)
// or an exponentially fading one (decay) instead of the whole stream.
// The tiers compose — WithShards(p) with WithWindow(n) runs one epoch
// ring per shard ("shard of windows"), batch ingestion still hashing
// each key exactly once, and WithConcurrent on top of either makes the
// whole composition concurrent.
type Summary[K comparable] interface {
	// Update records one occurrence of item.
	Update(item K)
	// UpdateBatch records one occurrence of every item in items. On a
	// sharded summary the batch is partitioned first and each shard is
	// locked once, amortizing the per-update locking of the hot path.
	UpdateBatch(items []K)
	// UpdateWeighted records w occurrences' worth of item; w must be
	// positive. Summaries built with WithWeighted accept any positive
	// w (Section 6.1); all other backends accept integral w only and
	// panic otherwise.
	UpdateWeighted(item K, w float64)
	// Estimate returns the current point estimate of item's total
	// weight (zero if the item is not tracked).
	Estimate(item K) float64
	// EstimateBounds returns certain bounds lo ≤ f ≤ hi on item's true
	// total weight, derived from the backend's per-item error metadata.
	// For randomized sketches the bounds are the trivial determinis-
	// tically-valid ones (Count-Min: [0, estimate]; Count-Sketch:
	// [0, N]).
	EstimateBounds(item K) (lo, hi float64)
	// Top returns the k largest counters in decreasing order (fewer
	// when fewer are stored). Each call allocates a fresh slice; hot
	// paths that poll repeatedly should prefer TopAppend with a reused
	// buffer.
	Top(k int) []WeightedEntry[K]
	// TopAppend appends the k largest counters in decreasing order to
	// dst and returns the extended slice — the allocation-free variant
	// of Top: with a reused buffer (TopAppend(buf[:0], k)) of
	// sufficient capacity, unsharded counter summaries append without
	// allocating at all.
	TopAppend(dst []WeightedEntry[K], k int) []WeightedEntry[K]
	// All returns an iterator over every tracked counter in decreasing
	// count order. Unsharded counter summaries stream directly off the
	// live structure (the summary must not be updated during the
	// iteration); sharded summaries iterate over a point-in-time
	// snapshot and remain safe for concurrent use.
	All() iter.Seq[WeightedEntry[K]]
	// HeavyHitters returns every tracked item whose true weight may
	// reach phi·N, in decreasing order of upper bound, each carrying
	// its certain bounds and a Guaranteed label (lower bound already
	// clears the threshold). phi must lie in (0, 1]. Deterministic
	// counter backends sized with m > 1/phi report no false negatives.
	HeavyHitters(phi float64) []Result[K]
	// Merge combines this summary with another into a fresh summary of
	// the union of their streams (Theorem 11), with capacity
	// max(Capacity(), other.Capacity()). If both inputs carry an (A, B)
	// k-tail guarantee the result carries (3A', A'+B') for the element-
	// wise max (A', B'). Sketch-backed summaries are not mergeable.
	Merge(other Summary[K]) (Summary[K], error)
	// Recover returns the k-sparse approximation of the frequency
	// vector built from the k largest counters (Theorem 5).
	Recover(k int) map[K]float64
	// Encode writes the summary's portable state (the versioned wire
	// codec) for Decode to reconstruct. Only uint64- and string-keyed
	// counter summaries are encodable.
	Encode(w io.Writer) error
	// Algorithm reports the backing algorithm.
	Algorithm() Algo
	// Capacity returns the counter budget m (per shard when sharded;
	// the sketch row width for sketch backends).
	Capacity() int
	// Len returns the number of currently tracked items.
	Len() int
	// N returns the total processed mass Σ w_i (the stream length for
	// unit streams).
	N() float64
	// Guarantee reports the k-tail guarantee constants (A, B) of
	// Definition 2, when the backend provides one: every error is at
	// most A·F1^res(k)/(m − B·k) with m = Capacity(). The second result
	// is false for LOSSYCOUNTING and the sketches. Windowed summaries
	// report the degraded window constants (A·E, B·E) against the ring's
	// full E·m counter budget — equal to the per-epoch bound
	// A·res/(m − B·k), the honest price of rotating E epochs.
	Guarantee() (TailGuarantee, bool)
	// Memory reports the summary's arena footprint — slab and index
	// bytes attributed to tracked-key storage, summed over shards and
	// window epochs — when the summary is arena-backed (WithArena with
	// string-kind keys). The second result is false for map-backed
	// summaries, whose key storage belongs to the runtime heap and has
	// no exact per-summary attribution.
	Memory() (MemoryStats, bool)
	// Window reports the epoch-ring rotation state of a summary built
	// with WithWindow or WithTickWindow: ring size, live epochs, the
	// window granularity (items per epoch, or the covered duration)
	// and the covered stream mass (the N windowed queries are answered
	// against). The second result is false for unwindowed summaries,
	// including WithDecay ones (decay has no ring).
	Window() (WindowState, bool)
	// Flush blocks until every previously issued update has been applied
	// to the counter state. Synchronous summaries apply updates inline,
	// so Flush is a no-op everywhere except under WithPipeline, whose
	// ingest is asynchronous: there it drains the shard rings — the
	// barrier every query method already takes implicitly. Call it to
	// bound ingest latency explicitly (e.g. before tearing down a
	// producer) without issuing a query.
	Flush()
	// Reset restores the empty state, retaining configuration.
	Reset()
}

// Result is one bound-carrying answer of Summary.HeavyHitters: the item,
// its point estimate, certain bounds Lo ≤ f ≤ Hi on its true weight, and
// whether even the lower bound clears the query threshold.
type Result[K comparable] struct {
	Item       K
	Count      float64
	Lo, Hi     float64
	Guaranteed bool
}

// New constructs a Summary from options; see Option and Algo for the
// knobs. The zero-option call yields an unsharded SPACESAVING summary
// with 1024 counters. New panics on invalid option combinations (exactly
// as the legacy constructors panic on invalid m), so a Summary in hand
// is always usable.
func New[K comparable](opts ...Option) Summary[K] {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.resolve(); err != nil {
		panic(err)
	}
	// One hash closure serves shard placement and sketch key mapping:
	// beyond saving a hash per key on the sharded batch path, sharing
	// the closure is what makes that reuse sound for every key type —
	// the maphash fallback of keyHasher draws a random seed per
	// closure, so two separately built hashers disagree.
	hash := keyHasher[K](cfg.seed)
	mk := func(shard int) backend[K] { return newBackend[K](cfg, shard, hash) }
	var be backend[K]
	if cfg.shards > 0 {
		sb := newShardedBackend(cfg.shards, cfg.coalescible(), hash, mk)
		if cfg.pipeline {
			be = newPipelineTier(cfg, sb)
		} else {
			be = sb
		}
	} else {
		be = mk(0)
	}
	if cfg.concurrent {
		be = newConcurrentTier(cfg, be)
	}
	return &summary[K]{algo: cfg.algo, be: be}
}

// newBackend builds the backend for one shard, layering the window or
// decay tier on top of the core structure when configured.
func newBackend[K comparable](cfg config, shard int, hash func(K) uint64) backend[K] {
	// One cloner (and one dedup cache) per shard, shared by every
	// structure the shard's composition builds — window epochs rotate
	// under the same writer, so sharing is safe and keeps a tail key's
	// clone warm across epoch boundaries.
	var cl func(K) K
	if cfg.borrowKeys {
		cl = newKeyCloner[K](cfg.m)
	}
	switch {
	case cfg.windowed():
		return newWindowBackend[K](cfg, shard, hash, cl)
	case cfg.decay > 0:
		return newDecayBackend[K](cfg, shard, hash, cl)
	default:
		return newCoreBackend[K](cfg, shard, hash, cl)
	}
}

// newCoreBackend builds the single-structure backend for one shard
// (shard indices decorrelate sketch seeds; counter algorithms ignore
// them). hash must be the same closure the sharded partitioner uses, so
// precomputed hashes handed to updateBatch match this backend's own.
// cl, when non-nil, is installed as the borrowed-key clone hook on the
// structure's retention paths (WithBorrowedKeys).
func newCoreBackend[K comparable](cfg config, shard int, hash func(K) uint64, cl func(K) K) backend[K] {
	switch {
	case cfg.algo == AlgoCountMin:
		b := &sketchBackend[K]{
			cm:    sketch.NewCountMin(cfg.depth, cfg.m, cfg.seed+uint64(shard)),
			hash:  hash, //hh:allocok hash is a keyHasher closure; its branches call only mix64/fnv1a/maphash.Comparable
			width: cfg.m,
			track: newTracker[K](cfg.m),
		}
		b.track.clone = cl
		return b
	case cfg.algo == AlgoCountSketch:
		b := &sketchBackend[K]{
			cs:    sketch.NewCountSketch(cfg.depth, cfg.m, cfg.seed+uint64(shard)),
			hash:  hash, //hh:allocok hash is a keyHasher closure; its branches call only mix64/fnv1a/maphash.Comparable
			width: cfg.m,
			track: newTracker[K](cfg.m),
		}
		b.track.clone = cl
		return b
	case cfg.weighted && cfg.algo == AlgoSpaceSaving:
		ssr := spacesaving.NewR[K](cfg.m)
		ssr.SetKeyClone(cl)
		return &weightedBackend[K]{ssr: ssr, g: TailGuarantee{A: 1, B: 1}, hasG: true}
	case cfg.weighted && cfg.algo == AlgoFrequent:
		fqr := frequent.NewR[K](cfg.m)
		fqr.SetKeyClone(cl)
		return &weightedBackend[K]{fqr: fqr, g: TailGuarantee{A: 1, B: 1}, hasG: true}
	case cfg.algo == AlgoSpaceSaving:
		ss := spacesaving.New[K](cfg.m)
		// The arena interns retained keys itself; the clone hook is only
		// for the map path (EnableArena declines non-string keys).
		if !cfg.arena || !ss.EnableArena(cfg.seed) {
			ss.SetKeyClone(cl)
		}
		return &unitBackend[K]{
			alg: ss, addN: ss.AddN, addNBatch: ss.AddNBatch,
			appendRaw: ss.AppendEntries, eachRaw: ss.Each,
			g: TailGuarantee{A: 1, B: 1}, hasG: true, over: true,
		}
	case cfg.algo == AlgoFrequent:
		fq := frequent.New[K](cfg.m)
		if !cfg.arena || !fq.EnableArena(cfg.seed) {
			fq.SetKeyClone(cl)
		}
		return &unitBackend[K]{
			alg: fq, addN: fq.AddN, addNBatch: fq.AddNBatch,
			appendRaw: fq.AppendEntries, eachRaw: fq.Each,
			g: TailGuarantee{A: 1, B: 1}, hasG: true,
		}
	case cfg.algo == AlgoLossyCounting:
		lc := lossycounting.New[K](cfg.m)
		lc.SetKeyClone(cl)
		return &unitBackend[K]{alg: lc, addN: lc.AddN, appendRaw: lc.AppendEntries}
	default:
		panic(fmt.Sprintf("heavyhitters: unhandled algorithm %v", cfg.algo))
	}
}

// backend is the internal contract the summary wrapper drives. Counts
// are float64 across the board; unit backends convert exactly.
type backend[K comparable] interface {
	//hh:noalloc
	update(item K)
	//hh:noalloc
	updateN(item K, n uint64)
	//hh:noalloc
	updateWeighted(item K, w float64)
	// updateBatch records one occurrence of every item. hashes, when
	// non-nil, carries the precomputed key hash of every item (the
	// sharded backend partitions with the same hash family the sketch
	// key mapping uses, so one hash per key serves both); backends that
	// do not hash ignore it.
	//hh:noalloc
	updateBatch(items []K, hashes []uint64)
	// updateBatchN records counts[i] occurrences of items[i] — the
	// coalesced batch: the sharded partitioner groups a batch's
	// duplicate keys and hands each shard one entry per distinct key.
	// Keys must be pairwise distinct and counts non-nil with
	// len(counts) == len(items); counts is caller scratch and may be
	// mutated (the window tier splits groups at rotation boundaries in
	// place). hashes follows the updateBatch contract. Equivalent to
	// calling updateN(items[i], counts[i]) in order.
	//hh:noalloc
	updateBatchN(items []K, counts []uint32, hashes []uint64)
	//hh:noalloc
	estimate(item K) float64
	//hh:noalloc
	bounds(item K) (lo, hi float64)
	// appendEntries appends the stored counters in decreasing count
	// order to dst — all of them, or the top max when max >= 0 — and
	// returns the extended slice; Err is meaningful per overEst. It is
	// the single snapshot primitive behind Top, TopAppend, All, Merge,
	// Recover and the codec: with a reused buffer, unsharded counter
	// backends append without allocating.
	//hh:noalloc
	appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K]
	// each yields the stored counters in decreasing count order,
	// streaming off the live structure where the backend maintains one
	// (the bucket-list counters) and snapshotting first where it does
	// not (sharded, heap- or map-backed state).
	//hh:noalloc
	each(yield func(WeightedEntry[K]) bool)
	capacity() int
	length() int
	total() float64
	guarantee() (TailGuarantee, bool)
	// mergeable reports whether the counter state is a faithful,
	// refeedable summary (counter algorithms yes, sketches no).
	mergeable() bool
	// overEst reports whether entry Err fields are certain per-item
	// overestimation bounds (the SPACESAVING convention c − ε ≤ f ≤ c).
	overEst() bool
	// slackOut is the global upper slack to carry into merges and
	// encodes: every tracked item's true weight is at most its count
	// plus this (zero for overestimating backends).
	slackOut() float64
	// absentExtra is the additional upper bound on an item this backend
	// does not track, beyond slackOut — for SPACESAVING-family state
	// this is the minimum counter Δ (an evicted or never-stored item's
	// weight cannot exceed it). Merges and encodes must carry it: an
	// item absent here may be present in the merged result, whose upper
	// bound then owes this backend's possible unseen mass.
	absentExtra() float64
	// windowState is the rotation/epoch contract of the window tier:
	// the epoch-ring state when this backend answers over a sliding
	// window, false for whole-stream (and decayed) backends. Tick
	// windows expire aged epochs before reporting.
	windowState() (WindowState, bool)
	//hh:noalloc
	reset()
}

// summary adapts a backend to the public Summary interface.
type summary[K comparable] struct {
	algo Algo
	be   backend[K]
}

//hh:noalloc
func (s *summary[K]) Update(item K) { s.be.update(item) }

//hh:noalloc
func (s *summary[K]) UpdateBatch(items []K) { s.be.updateBatch(items, nil) }

//hh:noalloc
func (s *summary[K]) UpdateWeighted(item K, w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		// A NaN or infinite weight would silently poison the total mass
		// and every threshold derived from it.
		panic("heavyhitters: non-finite weight")
	}
	if w <= 0 {
		panic("heavyhitters: non-positive weight")
	}
	s.be.updateWeighted(item, w)
}

//hh:noalloc
func (s *summary[K]) Estimate(item K) float64 { return s.be.estimate(item) }

//hh:noalloc
func (s *summary[K]) EstimateBounds(item K) (lo, hi float64) { return s.be.bounds(item) }
func (s *summary[K]) Algorithm() Algo                        { return s.algo }
func (s *summary[K]) Capacity() int                          { return s.be.capacity() }
func (s *summary[K]) Len() int                               { return s.be.length() }
func (s *summary[K]) N() float64                             { return s.be.total() }
func (s *summary[K]) Guarantee() (TailGuarantee, bool)       { return s.be.guarantee() }
func (s *summary[K]) Window() (WindowState, bool)            { return s.be.windowState() }

//hh:noalloc
func (s *summary[K]) Reset() { s.be.reset() }

// Flush drains the pipeline rings when the composition has them; every
// other composition applies updates synchronously and returns at once.
func (s *summary[K]) Flush() {
	be := s.be
	if ct, ok := be.(*concurrentTier[K]); ok {
		be = ct.inner
	}
	if pt, ok := be.(*pipelineTier[K]); ok {
		pt.flush()
	}
}

func (s *summary[K]) Top(k int) []WeightedEntry[K] {
	if k <= 0 {
		return nil
	}
	return s.be.appendEntries(nil, k)
}

//hh:noalloc
func (s *summary[K]) TopAppend(dst []WeightedEntry[K], k int) []WeightedEntry[K] {
	if k <= 0 {
		return dst
	}
	return s.be.appendEntries(dst, k)
}

func (s *summary[K]) All() iter.Seq[WeightedEntry[K]] {
	return func(yield func(WeightedEntry[K]) bool) { s.be.each(yield) }
}

func (s *summary[K]) HeavyHitters(phi float64) []Result[K] {
	if phi <= 0 || phi > 1 {
		panic("heavyhitters: phi must be in (0, 1]")
	}
	// Pin one consistent view for the whole query: on a concurrent
	// summary the threshold, the enumeration and every bound then come
	// from the same snapshot even while writers race.
	be := pinned(s.be)
	threshold := phi * be.total()
	var out []Result[K]
	be.each(func(e WeightedEntry[K]) bool {
		lo, hi := be.bounds(e.Item)
		if hi >= threshold {
			out = append(out, Result[K]{
				Item:       e.Item,
				Count:      e.Count,
				Lo:         lo,
				Hi:         hi,
				Guaranteed: lo >= threshold,
			})
		}
		return true
	})
	slices.SortStableFunc(out, func(a, b Result[K]) int {
		return cmp.Compare(b.Hi, a.Hi)
	})
	return out
}

func (s *summary[K]) Recover(k int) map[K]float64 {
	return recovery.KSparseWeighted(s.be.appendEntries(nil, max(k, 0)), k)
}

func (s *summary[K]) Merge(other Summary[K]) (Summary[K], error) {
	m := s.Capacity()
	if oc := other.Capacity(); oc > m {
		m = oc
	}
	return MergeSummaries(m, s, other)
}

func (s *summary[K]) String() string {
	return fmt.Sprintf("heavyhitters.Summary{algo: %v, m: %d, n: %.0f}", s.algo, s.be.capacity(), s.be.total())
}

// MergeSummaries combines any number of counter-backed summaries into a
// fresh m-counter summary of the union of their streams — the Section
// 6.2 construction, refeeding every stored counter (the robust MergeAll
// variant; see that function's note on why it is preferred over the
// literal k-sparse merge). Per-item error metadata and upper slack are
// carried through, so EstimateBounds on the result remain certain
// bounds; because any item may have gone unseen by an input that was
// full (a SPACESAVING input's unseen mass per item is at most its
// minimum counter Δ), every upper bound widens by the sum of the
// inputs' Δ-floors — the honest price of certainty after a merge. The
// point estimates and the Theorem 11 tail guarantee are unaffected: if
// every input carries a k-tail guarantee the result carries the (3A,
// A+B) constants of the elementwise max. Sketch-backed summaries are
// rejected.
func MergeSummaries[K comparable](m int, summaries ...Summary[K]) (Summary[K], error) {
	if m < 1 {
		return nil, fmt.Errorf("heavyhitters: merge capacity must be >= 1, got %d", m)
	}
	if len(summaries) == 0 {
		return nil, fmt.Errorf("heavyhitters: nothing to merge")
	}
	dst := spacesaving.NewR[K](m)
	slack := 0.0
	sumN := 0.0
	hasG := true
	var g TailGuarantee
	for i, in := range summaries {
		ws, ok := in.(*summary[K])
		if !ok {
			return nil, fmt.Errorf("heavyhitters: input %d is not a summary built by this package", i)
		}
		// Pin one consistent view per input: a concurrent input's
		// entries, slack and mass must all come from the same snapshot or
		// racing writers could break the carried bounds.
		be := pinned(ws.be)
		if !be.mergeable() {
			return nil, fmt.Errorf("heavyhitters: input %d (%v) is sketch-backed and cannot be merged", i, ws.algo)
		}
		carryErr := be.overEst()
		be.each(func(e WeightedEntry[K]) bool {
			if carryErr {
				dst.Absorb(e.Item, e.Count, e.Err)
			} else {
				dst.Absorb(e.Item, e.Count, 0)
			}
			return true
		})
		// slackOut widens every bound (underestimated mass); absentExtra
		// widens them too, because an item stored in the merge may have
		// been evicted by this input, hiding up to its Δ.
		slack += be.slackOut() + be.absentExtra()
		sumN += be.total()
		ig, ok := be.guarantee()
		if !ok {
			hasG = false
		} else {
			g.A = math.Max(g.A, ig.A)
			g.B = math.Max(g.B, ig.B)
		}
	}
	be := &weightedBackend[K]{ssr: dst, slack: slack}
	be.carryExtraMass(sumN)
	if hasG {
		be.g, be.hasG = MergedGuarantee(g), true
	}
	return &summary[K]{algo: AlgoSpaceSaving, be: be}, nil
}

// --- unit counter backend (SPACESAVING / FREQUENT / LOSSYCOUNTING) ---

type unitBackend[K comparable] struct {
	alg  Counter[K]
	addN func(K, uint64) //hh:noalloc -- native integral-weight path; nil = repeat Update
	// addNBatch is the structure's two-pass coalesced-batch kernel
	// (AddNBatch on SPACESAVING/FREQUENT): hash/probe all keys into
	// scratch first, then apply — restoring the memory-level parallelism
	// the one-at-a-time probe loop serializes away. nil = repeat updateN.
	//hh:noalloc
	addNBatch func(items []K, counts []uint32, hashes []uint64)
	// appendRaw is the backend's allocation-free snapshot primitive
	//hh:noalloc
	// (AppendEntries on the concrete structure): counters appended in
	// decreasing order, truncated to max when max >= 0.
	appendRaw func([]Entry[K], int) []Entry[K]
	//hh:noalloc
	// eachRaw streams counters in decreasing order straight off the live
	// structure; nil when the structure has no sorted iteration order
	// (LOSSYCOUNTING's hash map), in which case each buffers through
	// scratch.
	eachRaw func(func(Entry[K]) bool)
	// scratch is reused across appendEntries/each calls so steady-state
	// queries into a caller-reused buffer allocate nothing. Unsharded
	// summaries are single-threaded by contract, so a single buffer is
	// safe.
	scratch []Entry[K]
	g       TailGuarantee
	hasG    bool
	over    bool // SPACESAVING convention: Err fields are overestimate bounds
}

//hh:noalloc
func (b *unitBackend[K]) update(item K) { b.alg.Update(item) }

//hh:noalloc
func (b *unitBackend[K]) updateN(item K, n uint64) {
	if b.addN != nil {
		b.addN(item, n)
		return
	}
	for i := uint64(0); i < n; i++ {
		b.alg.Update(item)
	}
}

//hh:noalloc
func (b *unitBackend[K]) updateWeighted(item K, w float64) {
	if w != math.Trunc(w) {
		panic("heavyhitters: this backend accepts integral weights only; construct with WithWeighted() for real-valued updates")
	}
	if w >= 1<<64 {
		// uint64(w) would be implementation-defined, silently corrupting
		// the counts.
		panic("heavyhitters: integral weight overflows uint64")
	}
	b.updateN(item, uint64(w))
}

//hh:noalloc
func (b *unitBackend[K]) updateBatch(items []K, _ []uint64) {
	for _, it := range items {
		b.alg.Update(it)
	}
}

//hh:noalloc
func (b *unitBackend[K]) updateBatchN(items []K, counts []uint32, hashes []uint64) {
	if b.addNBatch != nil {
		b.addNBatch(items, counts, hashes)
		return
	}
	for i, it := range items {
		b.updateN(it, uint64(counts[i]))
	}
}

//hh:noalloc
func (b *unitBackend[K]) estimate(item K) float64 { return float64(b.alg.Estimate(item)) }

//hh:noalloc
func (b *unitBackend[K]) bounds(item K) (float64, float64) {
	lo, hi := EstimateBounds(b.alg, item)
	return float64(lo), float64(hi)
}

//hh:noalloc
func (b *unitBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	b.scratch = b.appendRaw(b.scratch[:0], max)
	for _, e := range b.scratch {
		dst = append(dst, WeightedEntry[K]{Item: e.Item, Count: float64(e.Count), Err: float64(e.Err)})
	}
	return dst
}

//hh:noalloc
func (b *unitBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	if b.eachRaw != nil {
		b.eachRaw(func(e Entry[K]) bool {
			return yield(WeightedEntry[K]{Item: e.Item, Count: float64(e.Count), Err: float64(e.Err)})
		})
		return
	}
	// No sorted live order: snapshot, then yield. The buffer is detached
	// from the backend while user code runs so a nested query cannot
	// clobber the iteration.
	buf := b.appendRaw(b.scratch[:0], -1)
	b.scratch = nil
	for _, e := range buf {
		if !yield(WeightedEntry[K]{Item: e.Item, Count: float64(e.Count), Err: float64(e.Err)}) {
			break
		}
	}
	b.scratch = buf
}

func (b *unitBackend[K]) capacity() int                    { return b.alg.Capacity() }
func (b *unitBackend[K]) length() int                      { return b.alg.Len() }
func (b *unitBackend[K]) total() float64                   { return float64(b.alg.N()) }
func (b *unitBackend[K]) guarantee() (TailGuarantee, bool) { return b.g, b.hasG }
func (b *unitBackend[K]) mergeable() bool                  { return true }
func (b *unitBackend[K]) overEst() bool                    { return b.over }
func (b *unitBackend[K]) windowState() (WindowState, bool) { return WindowState{}, false }

//hh:noalloc
func (b *unitBackend[K]) reset() { b.alg.Reset() }

func (b *unitBackend[K]) slackOut() float64 {
	switch alg := any(b.alg).(type) {
	case *spacesaving.StreamSummary[K]:
		return 0
	case *frequent.Frequent[K]:
		return float64(alg.Decrements())
	case *lossycounting.LossyCounting[K]:
		w := uint64(alg.Capacity())
		return float64((alg.N() + w - 1) / w)
	default:
		return 0
	}
}

func (b *unitBackend[K]) absentExtra() float64 {
	// FREQUENT's d and LOSSYCOUNTING's ⌈N/w⌉ already bound absent items
	// and travel via slackOut; SPACESAVING's absent bound is Δ.
	if mc, ok := any(b.alg).(interface{ MinCount() uint64 }); ok {
		return float64(mc.MinCount())
	}
	return 0
}

// --- weighted counter backend (SPACESAVINGR / FREQUENTR, Section 6.1) ---

// weightedBackend also backs merged and decoded summaries: slack is the
// global upper-slack inherited from underestimating or multiply-sourced
// inputs, so bounds remain certain after Merge/Encode/Decode.
type weightedBackend[K comparable] struct {
	ssr   *spacesaving.R[K]
	fqr   *frequent.FrequentR[K]
	slack float64
	g     TailGuarantee
	hasG  bool
	// absentSlack widens the upper bound of absent items only: a decoded
	// summary owes its producer's minimum counter Δ — an item the
	// producer evicted can weigh up to Δ even though the reconstruction
	// never saw it.
	absentSlack float64
	// extraMass is processed stream mass not present in any stored
	// counter: a FREQUENT or LOSSYCOUNTING producer's stored counts
	// undercount its stream, so a decoded or merged reconstruction must
	// carry the difference separately for N() — and hence the phi·N
	// thresholds of HeavyHitters — to match the producers'.
	extraMass float64
	// deficit cache for the FREQUENTR flavor, keyed by the monotone
	// total weight (bounds are queried once per stored entry by
	// HeavyHitters; recomputing the O(m) deficit each time would make
	// the query O(m²)).
	defCache, defCacheAt float64
	// scratch is reused across each calls; see unitBackend.scratch.
	scratch []WeightedEntry[K]
}

//hh:noalloc
func (b *weightedBackend[K]) alg() WeightedCounter[K] {
	if b.ssr != nil {
		return b.ssr
	}
	return b.fqr
}

//hh:noalloc
func (b *weightedBackend[K]) update(item K) { b.alg().UpdateWeighted(item, 1) }

//hh:noalloc
func (b *weightedBackend[K]) updateN(item K, n uint64) {
	if n > 0 {
		b.alg().UpdateWeighted(item, float64(n))
	}
}

//hh:noalloc
func (b *weightedBackend[K]) updateWeighted(item K, w float64) { b.alg().UpdateWeighted(item, w) }

//hh:noalloc
func (b *weightedBackend[K]) updateBatch(items []K, _ []uint64) {
	a := b.alg()
	for _, it := range items {
		a.UpdateWeighted(it, 1)
	}
}

// updateBatchN applies each coalesced group as one weighted arrival —
// sound because UpdateWeighted(k, n) ≡ n unit arrivals for integral n
// (Section 6.1 reduces to the integral semantics on whole weights).
//
//hh:noalloc
func (b *weightedBackend[K]) updateBatchN(items []K, counts []uint32, _ []uint64) {
	a := b.alg()
	for i, it := range items {
		if counts[i] > 0 {
			a.UpdateWeighted(it, float64(counts[i]))
		}
	}
}

//hh:noalloc
func (b *weightedBackend[K]) estimate(item K) float64 { return b.alg().EstimateWeighted(item) }

// deficit is the total undercounted mass of a FREQUENTR structure: the
// processed weight not present in any stored counter. Every item's
// undercount is at most this. The O(m) scan is cached against the
// monotone total weight, so repeated bounds queries between updates
// (HeavyHitters) pay it once.
//
//hh:noalloc
func (b *weightedBackend[K]) deficit() float64 {
	total := b.fqr.TotalWeight()
	if total == b.defCacheAt && total != 0 {
		return b.defCache
	}
	d := total - b.fqr.StoredWeight()
	if d < 0 {
		d = 0
	}
	b.defCache, b.defCacheAt = d, total
	return d
}

//hh:noalloc
func (b *weightedBackend[K]) bounds(item K) (float64, float64) {
	if b.ssr != nil {
		c := b.ssr.EstimateWeighted(item)
		if c == 0 {
			return 0, b.ssr.MinCount() + b.slack + b.absentSlack
		}
		lo := c - b.ssr.ErrorOf(item)
		if lo < 0 {
			lo = 0
		}
		return lo, c + b.slack
	}
	c := b.fqr.EstimateWeighted(item)
	d := b.deficit()
	if c == 0 {
		return 0, d + b.slack
	}
	return c, c + d + b.slack
}

//hh:noalloc
func (b *weightedBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	if b.ssr != nil {
		return b.ssr.AppendWeightedEntries(dst, max)
	}
	return b.fqr.AppendWeightedEntries(dst, max)
}

//hh:noalloc
func (b *weightedBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	// Heap- and map-backed storage has no sorted live order: snapshot,
	// then yield. The buffer is detached from the backend while user
	// code runs so a nested query cannot clobber the iteration.
	buf := b.appendEntries(b.scratch[:0], -1)
	b.scratch = nil
	for _, e := range buf {
		if !yield(e) {
			break
		}
	}
	b.scratch = buf
}

func (b *weightedBackend[K]) capacity() int                    { return b.alg().Capacity() }
func (b *weightedBackend[K]) length() int                      { return b.alg().Len() }
func (b *weightedBackend[K]) total() float64                   { return b.alg().TotalWeight() + b.extraMass }
func (b *weightedBackend[K]) guarantee() (TailGuarantee, bool) { return b.g, b.hasG }
func (b *weightedBackend[K]) mergeable() bool                  { return true }
func (b *weightedBackend[K]) overEst() bool                    { return b.ssr != nil }
func (b *weightedBackend[K]) windowState() (WindowState, bool) { return WindowState{}, false }

func (b *weightedBackend[K]) slackOut() float64 {
	if b.ssr != nil {
		return b.slack
	}
	return b.slack + b.deficit()
}

func (b *weightedBackend[K]) absentExtra() float64 {
	if b.ssr != nil {
		return b.ssr.MinCount() + b.absentSlack
	}
	return 0 // the FREQUENTR deficit travels via slackOut
}

// carryExtraMass records the stream mass the refed counters undercount:
// produced is the producers' true total N, of which only the absorbed
// counter sum (ssr.TotalWeight()) landed in storage — the shortfall of
// an undercounting (FREQUENT/LOSSYCOUNTING) producer. Negative
// differences are float noise from re-summing overestimating counters
// in a different order and carry nothing.
func (b *weightedBackend[K]) carryExtraMass(produced float64) {
	if extra := produced - b.ssr.TotalWeight(); extra > 0 {
		b.extraMass = extra
	}
}

//hh:noalloc
func (b *weightedBackend[K]) reset() {
	b.alg().Reset()
	b.slack, b.absentSlack, b.extraMass = 0, 0, 0
	b.defCache, b.defCacheAt = 0, 0
}

// --- sharded backend (items partitioned across locked shards) ---

type shardSlot[K comparable] struct {
	mu sync.Mutex
	be backend[K] //hh:guardedby mu
	// Padding to keep shard locks on distinct cache lines.
	_ [40]byte
}

type shardedBackend[K comparable] struct {
	slots []shardSlot[K]
	hash  func(K) uint64 //hh:noalloc
	// coalesce gates in-batch duplicate grouping: updateBatch merges a
	// batch's repeated keys into one (key, count) group per shard and
	// applies each group as one AddN — lossless by the Section-6
	// integer-weight equivalence (AddN(k, n) ≡ n unit updates), and
	// O(distinct) probes instead of O(batch) on skewed streams. Off for
	// compositions whose n-fold update is not bit-identical to n unit
	// updates: decay (the clock advances once per *arrival*, so a
	// coalesced group would tick time by 1 instead of n) and
	// LOSSYCOUNTING (AddN deliberately skips mid-batch prune/re-insert
	// of the added item, so it can exceed the unit-loop state). See
	// config.coalescible.
	coalesce bool
	// pool recycles batch-partition scratch buffers (one per concurrent
	// UpdateBatch in flight), so steady-state batch ingestion performs
	// no per-batch bucket allocations.
	pool sync.Pool
	// mergePool recycles the run-merge workspace of aggregate queries
	// (one per concurrent appendEntries in flight).
	mergePool sync.Pool
}

// shardMergeScratch is the reusable workspace of one sharded
// appendEntries call: the ping-pong buffer and run boundaries of the
// sorted-run merge.
type shardMergeScratch[K comparable] struct {
	buf     []WeightedEntry[K]
	bounds  []int
	bounds2 []int
}

// batchScratch is the reusable partition workspace of one UpdateBatch
// call: per-shard key buckets plus each key's hash, computed once and
// reused by hashing backends for their row hashes, and — when the
// composition coalesces — per-group occurrence counts plus the
// open-addressing dedup table that builds them.
type batchScratch[K comparable] struct {
	keys   [][]K
	hashes [][]uint64
	counts [][]uint32
	// tab is the coalescing hash table: generation-stamped entries, so
	// clearing between batches is a single counter bump rather than an
	// O(len(tab)) wipe. Probe positions come from the hash's high bits
	// (shard placement uses h mod p, i.e. the low bits — distinct bits
	// keep table occupancy decorrelated from shard assignment). Sized to
	// the next power of two ≥ 2× the largest batch seen, then reused.
	tab   []coalEntry
	gen   uint32
	shift uint // 64 − log2(len(tab)): h >> shift is the home position
}

// coalEntry is one coalescing-table slot: the key's full hash for cheap
// rejection, the stamping generation, and the group's index inside its
// shard bucket. The shard itself is not stored — it re-derives as
// h % p on the (rare relative to misses) duplicate hit — keeping the
// entry at 16 bytes, which matters because every probe is a random
// access into a table sized 2× the batch.
type coalEntry struct {
	h   uint64
	gen uint32
	idx int32
}

func newShardedBackend[K comparable](p int, coalesce bool, hash func(K) uint64, mk func(int) backend[K]) *shardedBackend[K] {
	//hh:allocok hash is a keyHasher closure; its branches call only mix64/fnv1a/maphash.Comparable
	b := &shardedBackend[K]{slots: make([]shardSlot[K], p), hash: hash, coalesce: coalesce}
	for i := range b.slots {
		b.slots[i].be = mk(i)
	}
	b.pool.New = func() any {
		return &batchScratch[K]{
			keys:   make([][]K, p),
			hashes: make([][]uint64, p),
			counts: make([][]uint32, p),
		}
	}
	b.mergePool.New = func() any { return &shardMergeScratch[K]{} }
	return b
}

//hh:noalloc
func (b *shardedBackend[K]) slot(item K) *shardSlot[K] {
	return &b.slots[b.hash(item)%uint64(len(b.slots))]
}

//hh:noalloc
func (b *shardedBackend[K]) update(item K) {
	sl := b.slot(item)
	sl.mu.Lock()
	sl.be.update(item)
	sl.mu.Unlock()
}

//hh:noalloc
func (b *shardedBackend[K]) updateN(item K, n uint64) {
	sl := b.slot(item)
	sl.mu.Lock()
	sl.be.updateN(item, n)
	sl.mu.Unlock()
}

//hh:noalloc
func (b *shardedBackend[K]) updateWeighted(item K, w float64) {
	sl := b.slot(item)
	sl.mu.Lock()
	sl.be.updateWeighted(item, w)
	sl.mu.Unlock()
}

// updateBatch partitions the batch once, then visits each shard exactly
// once under its lock — the amortization that makes batch ingestion the
// fast path on sharded summaries. Each key is hashed exactly once: the
// partition hash doubles as the key hash of sketch backends (both are
// keyHasher(seed)), and the buckets live in pooled scratch buffers.
// Coalescing compositions additionally group the batch's duplicate keys
// during partitioning and apply each group as one AddN — see coalesceInto
// for the transform and the coalesce field for its soundness argument.
//
//hh:noalloc
func (b *shardedBackend[K]) updateBatch(items []K, _ []uint64) {
	if len(items) == 0 {
		return
	}
	p := uint64(len(b.slots))
	if !b.coalesce {
		if p == 1 {
			sl := &b.slots[0]
			sl.mu.Lock()
			sl.be.updateBatch(items, nil)
			sl.mu.Unlock()
			return
		}
		sc := b.pool.Get().(*batchScratch[K])
		for i := range sc.keys {
			sc.keys[i] = sc.keys[i][:0]
			sc.hashes[i] = sc.hashes[i][:0]
		}
		for _, it := range items {
			h := b.hash(it)
			i := h % p
			sc.keys[i] = append(sc.keys[i], it)
			sc.hashes[i] = append(sc.hashes[i], h)
		}
		for i := range sc.keys {
			if len(sc.keys[i]) == 0 {
				continue
			}
			sl := &b.slots[i]
			sl.mu.Lock()
			sl.be.updateBatch(sc.keys[i], sc.hashes[i])
			sl.mu.Unlock()
		}
		for i := range sc.keys {
			// Drop key references before pooling so a parked scratch buffer
			// cannot pin the previous batch's keys in memory.
			clear(sc.keys[i])
		}
		b.pool.Put(sc)
		return
	}
	sc := b.pool.Get().(*batchScratch[K])
	for i := range sc.keys {
		sc.keys[i] = sc.keys[i][:0]
		sc.hashes[i] = sc.hashes[i][:0]
		sc.counts[i] = sc.counts[i][:0]
	}
	b.coalesceInto(sc, items)
	for i := range sc.keys {
		if len(sc.keys[i]) == 0 {
			continue
		}
		sl := &b.slots[i]
		sl.mu.Lock()
		sl.be.updateBatchN(sc.keys[i], sc.counts[i], sc.hashes[i])
		sl.mu.Unlock()
	}
	for i := range sc.keys {
		// Drop key references before pooling so a parked scratch buffer
		// cannot pin the previous batch's keys in memory.
		clear(sc.keys[i])
	}
	b.pool.Put(sc)
}

// coalesceInto partitions items across the shard buckets of sc while
// grouping duplicate keys: each distinct key lands in its shard's bucket
// once, in first-occurrence order, with counts carrying the number of
// occurrences. The dedup table probes on the hash's high bits, confirms
// candidate identity by comparing the full hash and then the key itself
// (a colliding hash never merges distinct keys), and is cleared between
// batches by a generation bump. The table grows to the high-water batch
// size and is pooled with the buckets, so the steady state allocates
// nothing.
//
//hh:noalloc
func (b *shardedBackend[K]) coalesceInto(sc *batchScratch[K], items []K) {
	if need := 2 * len(items); need > len(sc.tab) {
		n := 64
		for n < need {
			n <<= 1
		}
		sc.tab = make([]coalEntry, n) //hh:allocok pooled table grows to the high-water batch size, then is reused
		sc.shift = 64 - uint(bits.TrailingZeros(uint(n)))
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 {
		// Generation counter wrapped: stale entries from 2^32 batches ago
		// could alias the new generation, so take the one-off O(len) wipe.
		clear(sc.tab)
		sc.gen = 1
	}
	gen := sc.gen
	p := uint64(len(b.slots))
	mask := uint64(len(sc.tab) - 1)
	for _, it := range items {
		h := b.hash(it)
		pos := h >> sc.shift
		for {
			e := &sc.tab[pos]
			if e.gen != gen {
				si := h % p
				*e = coalEntry{h: h, gen: gen, idx: int32(len(sc.keys[si]))}
				sc.keys[si] = append(sc.keys[si], it)
				sc.hashes[si] = append(sc.hashes[si], h)
				sc.counts[si] = append(sc.counts[si], 1)
				break
			}
			if e.h == h {
				si := h % p
				if sc.keys[si][e.idx] == it {
					sc.counts[si][e.idx]++
					break
				}
			}
			pos = (pos + 1) & mask
		}
	}
}

// updateBatchN routes pre-coalesced groups (the pipeline tier re-submits
// partitioned sub-batches through this) item by item; it is not on the
// direct UpdateBatch hot path, which coalesces and locks per shard above.
//
//hh:noalloc
func (b *shardedBackend[K]) updateBatchN(items []K, counts []uint32, _ []uint64) {
	for i, it := range items {
		if counts[i] > 0 {
			b.updateN(it, uint64(counts[i]))
		}
	}
}

//hh:noalloc
func (b *shardedBackend[K]) estimate(item K) float64 {
	sl := b.slot(item)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.be.estimate(item)
}

//hh:noalloc
func (b *shardedBackend[K]) bounds(item K) (float64, float64) {
	sl := b.slot(item)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.be.bounds(item)
}

// appendEntries concatenates the shards' disjoint counter sets. Shards
// are locked one at a time, so under concurrent updates the snapshot
// reflects consistent per-shard states, not one global instant. The
// global top-max needs every shard's counters, so all of them are
// appended before truncation — but each shard's run is already in
// decreasing order, so the global order comes from a stable merge of
// the runs (n·log p moves through pooled scratch) rather than
// re-sorting the concatenation, which profiled as the dominant cost of
// aggregate queries and concurrency-tier snapshot rebuilds.
//
//hh:noalloc
func (b *shardedBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	sc := b.mergePool.Get().(*shardMergeScratch[K])
	bounds := append(sc.bounds[:0], 0)
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		dst = sl.be.appendEntries(dst, -1)
		sl.mu.Unlock()
		bounds = append(bounds, len(dst)-start)
	}
	var buf []WeightedEntry[K]
	buf, sc.bounds, sc.bounds2 = mergeSortedRuns(dst[start:], sc.buf, bounds, sc.bounds2)
	// Drop entry references (string keys) before pooling, so a parked
	// scratch buffer cannot pin the previous query's keys in memory.
	buf = buf[:cap(buf)]
	clear(buf)
	sc.buf = buf[:0]
	b.mergePool.Put(sc)
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

// mergeSortedRuns sorts data — the concatenation of runs that are each
// already in decreasing count order, with run i spanning
// data[bounds[i]:bounds[i+1]] — by merging the runs pairwise,
// ping-ponging between data's storage and buf. Ties keep the earlier
// run's entries first, so the result is identical to a stable sort of
// the concatenation. Returns the (possibly grown) scratch buffer and
// boundary slices for pooling; data holds the sorted result.
//
//hh:noalloc
func mergeSortedRuns[K comparable](data, buf []WeightedEntry[K], bounds, bounds2 []int) ([]WeightedEntry[K], []int, []int) {
	src, out := data, buf
	bs, bo := bounds, bounds2
	inData := true
	for len(bs) > 2 {
		out = out[:0]
		bo = append(bo[:0], 0)
		i := 0
		for ; i+2 < len(bs); i += 2 {
			out = mergeTwoRuns(out, src[bs[i]:bs[i+1]], src[bs[i+1]:bs[i+2]])
			bo = append(bo, len(out))
		}
		if i+1 < len(bs) {
			// Odd run count: carry the last run into this round's output.
			out = append(out, src[bs[i]:bs[i+1]]...)
			bo = append(bo, len(out))
		}
		src, out = out, src[:0]
		bs, bo = bo, bs
		inData = !inData
	}
	if !inData {
		copy(data, src)
		return src, bs, bo
	}
	return out, bs, bo
}

// mergeTwoRuns merges two decreasing-order runs into dst, preferring a
// on ties (stability: a is the earlier run).
//
//hh:noalloc
func mergeTwoRuns[K comparable](dst []WeightedEntry[K], a, b []WeightedEntry[K]) []WeightedEntry[K] {
	for len(a) > 0 && len(b) > 0 {
		if b[0].Count > a[0].Count {
			dst = append(dst, b[0])
			b = b[1:]
		} else {
			dst = append(dst, a[0])
			a = a[1:]
		}
	}
	dst = append(dst, a...)
	return append(dst, b...)
}

// each snapshots first (a sharded summary is concurrent: yielding under
// a shard lock could deadlock a consumer that queries the summary), then
// yields from the private snapshot.
//
//hh:noalloc
func (b *shardedBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	for _, e := range b.appendEntries(nil, -1) {
		if !yield(e) {
			return
		}
	}
}

// The four config accessors below read shard 0's backend without its
// lock: backend wiring and configuration are set once at construction
// and never reassigned, so the reads race with nothing.

//hh:unguarded backend wiring is construction-time constant
func (b *shardedBackend[K]) capacity() int { return b.slots[0].be.capacity() }

func (b *shardedBackend[K]) length() int {
	n := 0
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		n += sl.be.length()
		sl.mu.Unlock()
	}
	return n
}

func (b *shardedBackend[K]) total() float64 {
	var t float64
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		t += sl.be.total()
		sl.mu.Unlock()
	}
	return t
}

//hh:unguarded backend wiring is construction-time constant
func (b *shardedBackend[K]) guarantee() (TailGuarantee, bool) { return b.slots[0].be.guarantee() }

//hh:unguarded backend wiring is construction-time constant
func (b *shardedBackend[K]) mergeable() bool { return b.slots[0].be.mergeable() }

//hh:unguarded backend wiring is construction-time constant
func (b *shardedBackend[K]) overEst() bool { return b.slots[0].be.overEst() }

func (b *shardedBackend[K]) slackOut() float64 {
	var s float64
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		s += sl.be.slackOut()
		sl.mu.Unlock()
	}
	return s
}

func (b *shardedBackend[K]) absentExtra() float64 {
	// An absent item lives wholly in its owning shard, so the worst
	// single shard bounds it.
	var worst float64
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		if e := sl.be.absentExtra(); e > worst {
			worst = e
		}
		sl.mu.Unlock()
	}
	return worst
}

// windowState aggregates the shards' ring states: granularity from the
// first shard (every shard is configured identically), covered mass
// summed across shards — the N windowed aggregate queries see.
func (b *shardedBackend[K]) windowState() (WindowState, bool) {
	var agg WindowState
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		ws, ok := sl.be.windowState()
		sl.mu.Unlock()
		if !ok {
			return WindowState{}, false
		}
		if i == 0 {
			agg = ws
			agg.Covered = 0
		}
		agg.Covered += ws.Covered
		if ws.Live > agg.Live {
			agg.Live = ws.Live
		}
	}
	return agg, true
}

//hh:noalloc
func (b *shardedBackend[K]) reset() {
	for i := range b.slots {
		sl := &b.slots[i]
		sl.mu.Lock()
		sl.be.reset()
		sl.mu.Unlock()
	}
}

// --- sketch backend (Count-Min / Count-Sketch over hashed keys) ---

// sketchBackend pairs a randomized sketch with a top-m candidate tracker
// (the standard sketch + heap construction the paper contrasts against
// in Table 1): the sketch estimates any item, the tracker remembers the
// keys whose estimates have been largest so Top and HeavyHitters can
// enumerate candidates. Keys hash to uint64 before entering the sketch;
// for uint64 keys the mapping is a fixed-point mix, for strings FNV-1a.
type sketchBackend[K comparable] struct {
	cm    *sketch.CountMin
	cs    *sketch.CountSketch
	hash  func(K) uint64 //hh:noalloc
	width int
	track *tracker[K]
	// scratch is reused across each calls; see unitBackend.scratch.
	// Unsharded sketch summaries are single-threaded by contract, and
	// sharded ones serialize backend access per shard lock.
	scratch []WeightedEntry[K]
}

//hh:noalloc
func (b *sketchBackend[K]) add(h uint64, n uint64) {
	if b.cm != nil {
		b.cm.Add(h, n)
		return
	}
	b.cs.Add(h, int64(n))
}

//hh:noalloc
func (b *sketchBackend[K]) estimateHash(h uint64) float64 {
	if b.cm != nil {
		return float64(b.cm.Estimate(h))
	}
	return float64(b.cs.EstimateNonNegative(h))
}

//hh:noalloc
func (b *sketchBackend[K]) update(item K) { b.updateN(item, 1) }

//hh:noalloc
func (b *sketchBackend[K]) updateN(item K, n uint64) {
	if n == 0 {
		return
	}
	h := b.hash(item)
	b.add(h, n)
	b.track.offer(item, b.estimateHash(h))
}

//hh:noalloc
func (b *sketchBackend[K]) updateWeighted(item K, w float64) {
	if w != math.Trunc(w) {
		panic("heavyhitters: sketch backends accept integral weights only")
	}
	if w >= 1<<64 {
		panic("heavyhitters: integral weight overflows uint64")
	}
	b.updateN(item, uint64(w))
}

// updateBatch ingests a batch; when the sharded partitioner supplies the
// keys' hashes (the same keyHasher family this backend uses), each key's
// hash is reused instead of recomputed — one hash per key end to end.
//
//hh:noalloc
func (b *sketchBackend[K]) updateBatch(items []K, hashes []uint64) {
	if hashes == nil {
		for _, it := range items {
			b.updateN(it, 1)
		}
		return
	}
	for i, it := range items {
		h := hashes[i]
		b.add(h, 1)
		b.track.offer(it, b.estimateHash(h))
	}
}

// updateBatchN adds each coalesced group in one sketch update (Add is
// linear in the added mass) and offers the key to the candidate tracker
// once at its post-group estimate — the same estimate the last of n
// consecutive per-item offers would have seen, so the tracker reaches
// the same final decision for the group.
//
//hh:noalloc
func (b *sketchBackend[K]) updateBatchN(items []K, counts []uint32, hashes []uint64) {
	for i, it := range items {
		n := uint64(counts[i])
		if n == 0 {
			continue
		}
		h := b.hash(it)
		if hashes != nil {
			h = hashes[i]
		}
		b.add(h, n)
		b.track.offer(it, b.estimateHash(h))
	}
}

//hh:noalloc
func (b *sketchBackend[K]) estimate(item K) float64 { return b.estimateHash(b.hash(item)) }

//hh:noalloc
func (b *sketchBackend[K]) bounds(item K) (float64, float64) {
	if b.cm != nil {
		// Count-Min deterministically overestimates: f ≤ estimate.
		return 0, float64(b.cm.Estimate(b.hash(item)))
	}
	// Count-Sketch estimates carry no certain per-item bound.
	return 0, b.total()
}

//hh:noalloc
func (b *sketchBackend[K]) appendEntries(dst []WeightedEntry[K], max int) []WeightedEntry[K] {
	if max == 0 {
		return dst
	}
	start := len(dst)
	for _, te := range b.track.heap {
		dst = append(dst, WeightedEntry[K]{Item: te.item, Count: b.estimate(te.item)})
	}
	core.SortWeightedEntries(dst[start:])
	if max > 0 && len(dst)-start > max {
		dst = dst[:start+max]
	}
	return dst
}

//hh:noalloc
func (b *sketchBackend[K]) each(yield func(WeightedEntry[K]) bool) {
	// The candidate heap has no sorted live order: snapshot, then yield;
	// the buffer is detached while user code runs (see unitBackend.each).
	buf := b.appendEntries(b.scratch[:0], -1)
	b.scratch = nil
	for _, e := range buf {
		if !yield(e) {
			break
		}
	}
	b.scratch = buf
}

func (b *sketchBackend[K]) capacity() int { return b.width }
func (b *sketchBackend[K]) length() int   { return b.track.len() }

//hh:noalloc
func (b *sketchBackend[K]) total() float64 {
	if b.cm != nil {
		return float64(b.cm.N())
	}
	return float64(b.cs.N())
}

func (b *sketchBackend[K]) guarantee() (TailGuarantee, bool) { return TailGuarantee{}, false }
func (b *sketchBackend[K]) mergeable() bool                  { return false }
func (b *sketchBackend[K]) overEst() bool                    { return false }
func (b *sketchBackend[K]) slackOut() float64                { return 0 }
func (b *sketchBackend[K]) absentExtra() float64             { return 0 }
func (b *sketchBackend[K]) windowState() (WindowState, bool) { return WindowState{}, false }

//hh:noalloc
func (b *sketchBackend[K]) reset() {
	if b.cm != nil {
		b.cm.Reset()
	} else {
		b.cs.Reset()
	}
	b.track.reset()
}

// tracker is a capacity-bounded candidate set ordered by last observed
// estimate: a min-heap plus position index, so the smallest candidate is
// replaced in O(log k) when a larger newcomer appears.
type tracker[K comparable] struct {
	k    int
	pos  map[K]int
	heap []trackedEntry[K]
	// clone, when set, copies a key at the moment it enters the
	// candidate set, so offered keys may alias reused memory
	// (WithBorrowedKeys). Rejected and already-tracked candidates are
	// never cloned.
	clone func(K) K
}

type trackedEntry[K comparable] struct {
	item K
	est  float64
}

func newTracker[K comparable](k int) *tracker[K] {
	return &tracker[K]{k: k, pos: make(map[K]int, k)}
}

//hh:noalloc
func (t *tracker[K]) len() int { return len(t.heap) }

//hh:noalloc
func (t *tracker[K]) reset() {
	clear(t.pos)
	t.heap = t.heap[:0]
}

//hh:noalloc
func (t *tracker[K]) offer(item K, est float64) {
	if i, ok := t.pos[item]; ok {
		// Estimates can fall as well as rise (Count-Sketch medians), so
		// restore the heap invariant in whichever direction is needed.
		old := t.heap[i].est
		t.heap[i].est = est
		if est < old {
			t.siftUp(i)
		} else {
			t.siftDown(i)
		}
		return
	}
	if len(t.heap) < t.k {
		if t.clone != nil {
			item = t.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
		}
		t.heap = append(t.heap, trackedEntry[K]{item, est})
		t.pos[item] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	if est <= t.heap[0].est {
		return
	}
	if t.clone != nil {
		item = t.clone(item) //hh:allocok borrowed-key inserts copy the key by contract
	}
	delete(t.pos, t.heap[0].item)
	t.heap[0] = trackedEntry[K]{item, est}
	t.pos[item] = 0
	t.siftDown(0)
}

//hh:noalloc
func (t *tracker[K]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.heap[p].est <= t.heap[i].est {
			break
		}
		t.swap(p, i)
		i = p
	}
}

//hh:noalloc
func (t *tracker[K]) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(t.heap) && t.heap[l].est < t.heap[min].est {
			min = l
		}
		if r < len(t.heap) && t.heap[r].est < t.heap[min].est {
			min = r
		}
		if min == i {
			return
		}
		t.swap(min, i)
		i = min
	}
}

//hh:noalloc
func (t *tracker[K]) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].item] = i
	t.pos[t.heap[j].item] = j
}

// --- key hashing ---

// keyHasher returns the stateless key hash used for shard placement and
// sketch key mapping: a seeded Fibonacci mix for uint64 keys, seeded
// FNV-1a for strings, and hash/maphash for every other comparable type
// (deterministic within a process, randomized across processes — shard
// placement never affects correctness, only which shard owns an item).
func keyHasher[K comparable](seed uint64) func(K) uint64 {
	var zero K
	switch any(zero).(type) {
	case uint64:
		return func(k K) uint64 { return mix64(any(k).(uint64) ^ seed) }
	case string:
		return func(k K) uint64 { return fnv1a(any(k).(string), seed) }
	default:
		mseed := maphash.MakeSeed()
		return func(k K) uint64 { return maphash.Comparable(mseed, k) }
	}
}

//hh:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0x9e3779b97f4a7c15
	return x ^ x>>29
}

//hh:noalloc
func fnv1a(s string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ mix64(seed)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
