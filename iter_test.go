package heavyhitters_test

// All() early-termination coverage: breaking out of the iter.Seq after
// the first yield — on every backend flavor — must not leak detached
// scratch or corrupt a subsequent TopAppend. The buffered backends
// detach their scratch while user code runs (so a nested query cannot
// clobber the iteration) and must re-attach it on early exit; these
// tests pin that contract, including under concurrent updates on the
// sharded backend.

import (
	"sync"
	"testing"

	hh "repro"
	"repro/internal/stream"
)

// iterBackends enumerates one summary per backend flavor: unit
// (streaming and buffered), weighted, sketch, sharded, windowed,
// decayed, and the Concurrent bridge.
func iterBackends() map[string]hh.Summary[uint64] {
	c := hh.NewConcurrentUint64(4, 64)
	return map[string]hh.Summary[uint64]{
		"unit-spacesaving":   hh.New[uint64](hh.WithCapacity(64)),
		"unit-frequent":      hh.New[uint64](hh.WithAlgorithm(hh.AlgoFrequent), hh.WithCapacity(64)),
		"unit-lossycounting": hh.New[uint64](hh.WithAlgorithm(hh.AlgoLossyCounting), hh.WithCapacity(64)),
		"weighted":           hh.New[uint64](hh.WithWeighted(), hh.WithCapacity(64)),
		"sketch":             hh.New[uint64](hh.WithAlgorithm(hh.AlgoCountMin), hh.WithCapacity(64)),
		"sharded":            hh.New[uint64](hh.WithCapacity(64), hh.WithShards(4)),
		"window":             hh.New[uint64](hh.WithCapacity(64), hh.WithWindow(2048), hh.WithEpochs(4)),
		"decay":              hh.New[uint64](hh.WithCapacity(64), hh.WithDecay(0.0001)),
		"concurrent-bridge":  c.Summary(),
		"concurrent":         hh.New[uint64](hh.WithCapacity(64), hh.WithConcurrent()),
		"concurrent-sharded": hh.New[uint64](hh.WithCapacity(64), hh.WithConcurrent(), hh.WithShards(4)),
		"concurrent-window": hh.New[uint64](hh.WithCapacity(64), hh.WithConcurrent(),
			hh.WithWindow(2048), hh.WithEpochs(4)),
	}
}

// TestAllEarlyTermination breaks after the first yield, then asserts
// the summary still answers full, ordered, duplicate-free queries.
func TestAllEarlyTermination(t *testing.T) {
	str := stream.Zipf(500, 1.1, 20000, stream.OrderRandom, 31)
	for name, s := range iterBackends() {
		t.Run(name, func(t *testing.T) {
			s.UpdateBatch(str)
			want := s.TopAppend(nil, 10)
			if len(want) != 10 {
				t.Fatalf("top-10 before iteration returned %d entries", len(want))
			}
			for range 3 {
				seen := 0
				for e := range s.All() {
					if e.Count < 0 {
						t.Fatal("negative count yielded")
					}
					seen++
					break // early termination: the contract under test
				}
				if seen != 1 {
					t.Fatalf("broke after first yield but saw %d", seen)
				}
				// A reused-buffer TopAppend right after the abandoned
				// iteration must reproduce the pre-iteration answer.
				got := s.TopAppend(want[:0:cap(want)], 10)
				if len(got) != 10 {
					t.Fatalf("top-10 after early break returned %d entries", len(got))
				}
				for i := 1; i < len(got); i++ {
					if got[i].Count > got[i-1].Count {
						t.Fatalf("top order corrupted at %d: %v", i, got)
					}
				}
				dup := make(map[uint64]bool, len(got))
				for _, e := range got {
					if dup[e.Item] {
						t.Fatalf("duplicate item %d after early break", e.Item)
					}
					dup[e.Item] = true
				}
			}
			// A nested query inside the abandoned iteration must not
			// clobber it either.
			for e := range s.All() {
				if s.Estimate(e.Item) < 0 {
					t.Fatal("nested estimate negative")
				}
				s.TopAppend(nil, 5)
				break
			}
			if got := s.TopAppend(nil, 10); len(got) != 10 {
				t.Fatalf("top-10 after nested-query break returned %d entries", len(got))
			}
		})
	}
}

// TestAllEarlyTerminationShardedRace is the -race variant: concurrent
// Update traffic on the sharded backend while the iterator is abandoned
// mid-flight, repeatedly.
func TestAllEarlyTerminationShardedRace(t *testing.T) {
	s := hh.New[uint64](hh.WithCapacity(64), hh.WithShards(8))
	str := stream.Zipf(500, 1.1, 20000, stream.OrderRandom, 37)
	s.UpdateBatch(str)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
					s.Update(i % 997)
					i++
				}
			}
		}(uint64(g) * 1_000_003)
	}
	var buf []hh.WeightedEntry[uint64]
	for i := 0; i < 200; i++ {
		for range s.All() {
			break
		}
		buf = s.TopAppend(buf[:0], 10)
		if len(buf) != 10 {
			t.Fatalf("top-10 under concurrent updates returned %d entries", len(buf))
		}
	}
	close(stop)
	wg.Wait()
}
