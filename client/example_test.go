package client_test

import (
	"fmt"
	"net"

	hh "repro"
	"repro/client"
	"repro/internal/registry"
	"repro/internal/wire"
)

// ExampleWireConn_PushBatch drives the hhwire binary ingest protocol
// (docs/WIRE.md) end to end against an in-process server: a registry
// with one summary, a wire listener on an ephemeral loopback port, and
// a WireConn pushing a batch through it. Against a real deployment the
// address comes from hhserverd's -wire-addr instead.
func ExampleWireConn_PushBatch() {
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"words": {Capacity: 64}},
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	l := wire.NewListener(reg, registry.DefaultMaxBodyBytes)
	go l.ServeTCP(ln)

	c, err := client.DialWire(ln.Addr().String(), "words")
	if err != nil {
		panic(err)
	}
	if err := c.PushBatch([]string{"alpha", "beta", "alpha"}); err != nil {
		panic(err)
	}
	// Flush is the acknowledged sync barrier: once it returns, every
	// frame pushed above has been ingested by the server.
	if err := c.Flush(); err != nil {
		panic(err)
	}
	c.Close()

	e, _ := reg.Get("words")
	fmt.Println(e.Live().N(), e.Live().Estimate("alpha"))
	// Output: 3 2
}
