// Package client is the typed Go client for hhserverd, covering both
// of the daemon's planes.
//
// # HTTP control plane
//
// Client wraps the HTTP/JSON API: agents use it to push raw batches
// (Push/PushBinary) or locally summarized blobs (MergeBlob/MergeSummary
// — the Theorem 11 wire-level merge), and consumers to run
// bound-carrying queries (Top, HeavyHitters, Estimate) or pull portable
// snapshots (Snapshot, Encode). One Client addresses one named summary
// on one server; it is safe for concurrent use.
//
// # hhwire ingest plane
//
// WireConn speaks hhwire, the persistent binary ingest protocol
// specified in docs/WIRE.md: length-prefixed frames on one long-lived
// raw TCP connection (DialWire), or one self-contained frame per UDP
// datagram (DialWireUDP) where losing batches beats backpressure.
// Push buffers and auto-frames keys, PushBatch sends a batch as one
// frame, and Flush — TCP only — is an acknowledged sync barrier:
// when it returns, everything pushed before it is ingested. Writes
// that fail redial once, so a server restart costs at most the
// unacknowledged window, never a surfaced error for a transient blip.
//
// Use hhwire for sustained high-volume ingest (no per-request headers,
// ~1.5x loopback HTTP throughput) and the HTTP plane for everything
// else — creating summaries, queries, merges, metrics.
package client
