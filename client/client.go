package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	hh "repro"
	"repro/internal/registry"
)

// Client talks to one named summary of one hhserverd instance.
type Client struct {
	base string
	name string
	hc   *http.Client
	// pool recycles request-body buffers so steady-state pushing
	// allocates no per-batch body storage.
	pool sync.Pool
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client (timeouts, transport
// tuning, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the summary named name on the server at
// base (e.g. "http://127.0.0.1:8070").
func New(base, name string, opts ...Option) *Client {
	c := &Client{
		base: base,
		name: name,
		hc:   http.DefaultClient,
	}
	c.pool.New = func() any { return new(bytes.Buffer) }
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the summary name this client addresses.
func (c *Client) Name() string { return c.name }

func (c *Client) url(endpoint string) string {
	return c.base + "/v1/" + url.PathEscape(c.name) + endpoint
}

// apiError surfaces the server's {"error": ...} body with its status.
func apiError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := ""
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		msg = body.Error
	}
	if msg == "" {
		msg = "no error detail"
	}
	return fmt.Errorf("client: %s: %s", resp.Status, msg)
}

func (c *Client) do(ctx context.Context, method, url, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create registers the summary under this client's name with the given
// spec (PUT /v1/{name}); the server errors if the name is taken.
func (c *Client) Create(ctx context.Context, spec hh.Spec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPut, c.base+"/v1/"+url.PathEscape(c.name),
		"application/json", bytes.NewReader(body), nil)
}

// Push ingests one unit-weight occurrence of every key, in the
// newline-delimited text format. Keys the text format cannot carry
// faithfully — empty keys, keys containing a newline, keys ending in
// '\r' (the server's CRLF tolerance would strip it) — make Push fall
// back to the binary format transparently, so any batch round-trips
// byte-exact. Returns the server-acknowledged key count.
func (c *Client) Push(ctx context.Context, keys []string) (int, error) {
	for _, k := range keys {
		if k == "" || strings.ContainsRune(k, '\n') || k[len(k)-1] == '\r' {
			return c.PushBinary(ctx, keys)
		}
	}
	buf := c.pool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); c.pool.Put(buf) }()
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return c.push(ctx, registry.ContentTypeText, buf)
}

// PushBinary ingests one unit-weight occurrence of every key in the
// length-prefixed binary format, which round-trips arbitrary key
// bytes.
func (c *Client) PushBinary(ctx context.Context, keys []string) (int, error) {
	buf := c.pool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); c.pool.Put(buf) }()
	rec := make([]byte, 0, 64)
	for _, k := range keys {
		rec = registry.AppendBinaryRecord(rec[:0], k)
		buf.Write(rec)
	}
	return c.push(ctx, registry.ContentTypeBinary, buf)
}

func (c *Client) push(ctx context.Context, contentType string, body *bytes.Buffer) (int, error) {
	var resp struct {
		Ingested int `json:"ingested"`
	}
	if err := c.do(ctx, http.MethodPost, c.url("/update"), contentType, body, &resp); err != nil {
		return 0, err
	}
	return resp.Ingested, nil
}

// MergeBlob pushes one encoded summary blob (the bytes Summary.Encode
// writes — flat or windowed) for the server to merge into the named
// summary with full Theorem 11 error metadata. Returns the blob's
// stream mass as acknowledged by the server.
func (c *Client) MergeBlob(ctx context.Context, blob io.Reader) (float64, error) {
	var resp struct {
		MergedMass float64 `json:"merged_mass"`
	}
	if err := c.do(ctx, http.MethodPost, c.url("/merge"), "application/octet-stream", blob, &resp); err != nil {
		return 0, err
	}
	return resp.MergedMass, nil
}

// MergeSummary encodes s and pushes it via MergeBlob — the one-call
// path for an agent holding a live local summary.
func (c *Client) MergeSummary(ctx context.Context, s hh.Summary[string]) (float64, error) {
	buf := c.pool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); c.pool.Put(buf) }()
	if err := s.Encode(buf); err != nil {
		return 0, err
	}
	return c.MergeBlob(ctx, buf)
}

// Result is one bound-carrying answer: the server's certain interval
// Lo <= f <= Hi on the item's true weight in the served union, and for
// heavy-hitter queries whether even the lower bound clears the
// threshold. It aliases the server's own response type, so the two
// ends of the wire agree by construction.
type Result = registry.Result

// QueryResponse carries a ranked query's results together with the
// mass N they were answered against.
type QueryResponse = registry.QueryResponse

// Top returns the server's k largest counters with certain bounds.
func (c *Client) Top(ctx context.Context, k int) (QueryResponse, error) {
	var resp QueryResponse
	err := c.do(ctx, http.MethodGet, c.url("/top?k="+strconv.Itoa(k)), "", nil, &resp)
	return resp, err
}

// HeavyHitters returns every item whose true weight may reach phi*N,
// with certain bounds and Guaranteed labels.
func (c *Client) HeavyHitters(ctx context.Context, phi float64) (QueryResponse, error) {
	var resp QueryResponse
	err := c.do(ctx, http.MethodGet,
		c.url("/heavyhitters?phi="+strconv.FormatFloat(phi, 'g', -1, 64)), "", nil, &resp)
	return resp, err
}

// Estimate is the /estimate response: a point estimate with its
// certain interval; Guaranteed reports a zero-width (exact) interval.
// It aliases the server's own response type.
type Estimate = registry.EstimateResponse

// Estimate queries one item's estimate and certain bounds.
func (c *Client) Estimate(ctx context.Context, key string) (Estimate, error) {
	var resp Estimate
	err := c.do(ctx, http.MethodGet, c.url("/estimate?key="+url.QueryEscape(key)), "", nil, &resp)
	return resp, err
}

// Encode streams the server's portable v2 snapshot of the summary
// into w — the bytes hh.Decode reconstructs, and the payload of an
// agent-to-agent relay (curl .../encode | hhmerge -).
func (c *Client) Encode(ctx context.Context, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/encode"), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Snapshot fetches and decodes the server's current snapshot into a
// local Summary, ready for offline queries or further merging.
func (c *Client) Snapshot(ctx context.Context) (hh.Summary[string], error) {
	var buf bytes.Buffer
	if err := c.Encode(ctx, &buf); err != nil {
		return nil, err
	}
	return hh.Decode[string](&buf)
}

// Health checks the server's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, c.base+"/healthz", "", nil, nil)
}
