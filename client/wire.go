package client

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/wire"
)

// WireConn is the hhwire ingest client: one persistent connection to
// an hhserverd wire listener, addressing one named summary, pushing
// length-prefixed binary frames (docs/WIRE.md) instead of HTTP
// requests. It is the path for agents that push at wire speed — no
// per-batch headers, no response parsing, a single reused frame
// buffer.
//
// Reliability model: TCP frames are not individually acknowledged, so
// a connection that dies mid-stream may lose frames already handed to
// the kernel; Flush sends an acknowledged frame and waits for it,
// giving the caller a sync barrier ("everything pushed before this
// Flush is ingested"). Writes that fail redial once and retry the
// current frame, so a server restart costs at most the unacknowledged
// window, never an error surfaced for a transient blip. UDP mode
// (DialWireUDP) drops all of this: frames are fire-and-forget
// datagrams, Flush only drains the pending batch, and loss is the
// accepted price.
//
// A WireConn is safe for concurrent use; pushes serialize on an
// internal lock (use one WireConn per goroutine for parallel ingest —
// they are cheap).
type WireConn struct {
	addr string
	name string
	udp  bool

	// flushAt bounds how many pending body bytes Push accumulates
	// before auto-sending.
	flushAt int

	mu      sync.Mutex
	conn    net.Conn
	frame   []byte // frame build scratch, reused
	pending []byte // body bytes accumulated by Push
	ackBuf  [wire.AckLen]byte
}

// WireOption customizes a WireConn.
type WireOption func(*WireConn)

// WithFlushBytes sets the pending-body threshold at which Push
// auto-sends a frame. The default is 32 KiB over TCP and 1400 bytes —
// a conservative single-MTU payload — over UDP; UDP callers on
// loopback or jumbo-frame networks can raise it toward the 64 KiB
// datagram ceiling.
func WithFlushBytes(n int) WireOption {
	return func(w *WireConn) {
		if n > 0 {
			w.flushAt = n
		}
	}
}

// DialWire connects to an hhserverd wire listener at addr
// (host:port) and addresses the summary named name over TCP.
func DialWire(addr, name string, opts ...WireOption) (*WireConn, error) {
	return dialWire(addr, name, false, opts)
}

// DialWireUDP is DialWire over UDP: every frame becomes one
// fire-and-forget datagram. Use it for telemetry where losing a batch
// is cheaper than backpressure; counts become lower bounds under loss.
func DialWireUDP(addr, name string, opts ...WireOption) (*WireConn, error) {
	return dialWire(addr, name, true, opts)
}

func dialWire(addr, name string, udp bool, opts []WireOption) (*WireConn, error) {
	if len(name) < 1 || len(name) > wire.MaxNameLen {
		return nil, fmt.Errorf("client: summary name length %d outside [1, %d]", len(name), wire.MaxNameLen)
	}
	w := &WireConn{addr: addr, name: name, udp: udp, flushAt: 32 << 10}
	if udp {
		w.flushAt = 1400
	}
	for _, o := range opts {
		o(w)
	}
	if err := w.redial(); err != nil {
		return nil, err
	}
	return w, nil
}

// redial (re)establishes the connection. Caller holds w.mu or is the
// constructor.
func (w *WireConn) redial() error {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	network := "tcp"
	if w.udp {
		network = "udp"
	}
	c, err := net.DialTimeout(network, w.addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("client: dial %s %s: %w", network, w.addr, err)
	}
	w.conn = c
	return nil
}

// Push appends one key to the pending batch, sending a frame when the
// batch reaches the flush threshold. Keys are copied immediately — the
// caller may reuse the backing memory as soon as Push returns.
func (w *WireConn) Push(key string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending = registry.AppendBinaryRecord(w.pending, key)
	if len(w.pending) >= w.flushAt {
		return w.sendPendingLocked(0)
	}
	return nil
}

// PushBatch sends keys as one frame immediately (flushing any pending
// Push keys first, preserving order). Over UDP the frame must fit one
// datagram; prefer batches of at most a few hundred short keys.
func (w *WireConn) PushBatch(keys []string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) > 0 {
		if err := w.sendPendingLocked(0); err != nil {
			return err
		}
	}
	if len(keys) == 0 {
		return nil
	}
	w.pending = w.pending[:0]
	for _, k := range keys {
		w.pending = registry.AppendBinaryRecord(w.pending, k)
	}
	return w.sendPendingLocked(0)
}

// Flush sends any pending keys and, over TCP, performs an acknowledged
// round-trip: when Flush returns nil, every key pushed before it has
// been ingested by the server. Over UDP it only drains the pending
// batch (datagrams cannot be acknowledged).
func (w *WireConn) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.udp {
		if len(w.pending) == 0 {
			return nil
		}
		return w.sendPendingLocked(0)
	}
	// The barrier frame carries the ack flag; an empty body is a valid
	// frame, so Flush works even with nothing pending.
	if err := w.sendPendingLocked(wire.FlagAck); err != nil {
		return err
	}
	if _, err := io.ReadFull(w.conn, w.ackBuf[:]); err != nil {
		return fmt.Errorf("client: reading ack: %w", err)
	}
	status, err := wire.ParseAck(w.ackBuf[:])
	if err != nil {
		return err
	}
	if status != wire.AckStatusOK {
		return fmt.Errorf("client: server ack status %d", status)
	}
	return nil
}

// Close flushes pending keys (without an ack round-trip) and closes
// the connection.
func (w *WireConn) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if len(w.pending) > 0 {
		err = w.sendPendingLocked(0)
	}
	if w.conn != nil {
		if cerr := w.conn.Close(); err == nil {
			err = cerr
		}
		w.conn = nil
	}
	return err
}

// sendPendingLocked frames and writes the pending body, then resets
// it. A write error redials once and retries the same frame — the
// automatic-reconnect contract: a restarted server costs at most the
// frames the kernel never delivered, and the caller sees an error only
// when the redial itself fails.
func (w *WireConn) sendPendingLocked(flags byte) error {
	w.frame = wire.AppendFrame(w.frame[:0], w.name, flags, w.pending)
	w.pending = w.pending[:0]
	if w.conn == nil {
		if err := w.redial(); err != nil {
			return err
		}
	}
	if _, err := w.conn.Write(w.frame); err != nil {
		if rerr := w.redial(); rerr != nil {
			return rerr
		}
		if _, err := w.conn.Write(w.frame); err != nil {
			return fmt.Errorf("client: write after reconnect: %w", err)
		}
	}
	return nil
}
