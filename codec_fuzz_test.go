package heavyhitters_test

import (
	"bytes"
	"testing"

	hh "repro"
)

// Decoders must never panic on arbitrary input; successful decodes of
// well-formed blobs must preserve the entries.

func FuzzDecodeSummary(f *testing.F) {
	ss := hh.NewSpaceSaving[uint64](4)
	for _, x := range []uint64{1, 1, 2, 3, 4, 5} {
		ss.Update(x)
	}
	var seed bytes.Buffer
	if err := hh.EncodeSummary(&seed, ss); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHSUM1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		blob, err := hh.DecodeSummary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Entry counts must be internally consistent.
		if blob.Capacity < 0 {
			t.Fatal("negative capacity decoded")
		}
		// Refeeding a decoded blob must not panic.
		dst := hh.NewSpaceSavingR[uint64](4)
		blob.FeedInto(dst)
	})
}

func FuzzDecodeStringSummary(f *testing.F) {
	ss := hh.NewSpaceSaving[string](4)
	for _, w := range []string{"a", "bb", "a", ""} {
		ss.Update(w)
	}
	var seed bytes.Buffer
	if err := hh.EncodeStringSummary(&seed, ss); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("HHSUM1\x02"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		blob, err := hh.DecodeStringSummary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		dst := hh.NewSpaceSavingR[string](4)
		blob.FeedInto(dst)
	})
}
