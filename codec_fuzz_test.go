package heavyhitters_test

import (
	"bytes"
	"io"
	"testing"

	hh "repro"
)

// Decoders must never panic on arbitrary input; successful decodes of
// well-formed blobs must preserve the entries.

func FuzzDecodeSummary(f *testing.F) {
	ss := hh.NewSpaceSaving[uint64](4)
	for _, x := range []uint64{1, 1, 2, 3, 4, 5} {
		ss.Update(x)
	}
	var seed bytes.Buffer
	if err := hh.EncodeSummary(&seed, ss); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHSUM1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		blob, err := hh.DecodeSummary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Entry counts must be internally consistent.
		if blob.Capacity < 0 {
			t.Fatal("negative capacity decoded")
		}
		// Refeeding a decoded blob must not panic.
		dst := hh.NewSpaceSavingR[uint64](4)
		blob.FeedInto(dst)
	})
}

func FuzzDecodeV2(f *testing.F) {
	src := hh.New[uint64](hh.WithCapacity(4))
	for _, x := range []uint64{1, 1, 2, 3, 4, 5} {
		src.Update(x)
	}
	var seed bytes.Buffer
	if err := src.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHSUM2"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := hh.Decode[uint64](bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A successfully decoded summary must be queryable and
		// re-encodable without panicking, with sane invariants.
		if s.Capacity() < 1 {
			t.Fatal("non-positive capacity decoded")
		}
		for _, e := range s.Top(8) {
			lo, hi := s.EstimateBounds(e.Item)
			if lo > hi {
				t.Fatalf("inverted bounds [%v, %v]", lo, hi)
			}
		}
		s.HeavyHitters(0.5)
		if err := s.Encode(io.Discard); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

func FuzzDecodeWindow(f *testing.F) {
	src := hh.New[uint64](hh.WithCapacity(4), hh.WithWindow(16), hh.WithEpochs(4))
	for i := 0; i < 40; i++ {
		src.Update(uint64(i % 7))
	}
	var seed bytes.Buffer
	if err := src.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HHWIN2"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := hh.Decode[uint64](bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A successfully decoded summary (flat or windowed — the fuzzer
		// mutates the magic freely) must survive queries, further
		// updates (rotation included) and a re-encode.
		if s.Capacity() < 1 {
			t.Fatal("non-positive capacity decoded")
		}
		if ws, ok := s.Window(); ok && (ws.Epochs < 1 || ws.Live < 1 || ws.Live > ws.Epochs) {
			t.Fatalf("inconsistent window state %+v", ws)
		}
		for _, e := range s.Top(8) {
			lo, hi := s.EstimateBounds(e.Item)
			if lo > hi {
				t.Fatalf("inverted bounds [%v, %v]", lo, hi)
			}
		}
		s.HeavyHitters(0.5)
		for i := 0; i < 50; i++ {
			s.Update(uint64(i))
		}
		if err := s.Encode(io.Discard); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

func FuzzDecodeStringSummary(f *testing.F) {
	ss := hh.NewSpaceSaving[string](4)
	for _, w := range []string{"a", "bb", "a", ""} {
		ss.Update(w)
	}
	var seed bytes.Buffer
	if err := hh.EncodeStringSummary(&seed, ss); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("HHSUM1\x02"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		blob, err := hh.DecodeStringSummary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		dst := hh.NewSpaceSavingR[string](4)
		blob.FeedInto(dst)
	})
}
