package heavyhitters

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/spacesaving"
)

// Version-2 wire format: the codec behind Summary.Encode and Decode. It
// supersedes the v1 blob formats (EncodeSummary / EncodeWeightedSummary,
// still supported for existing files) by carrying everything a
// coordinator needs to keep querying with certain bounds after a
// decode:
//
//	magic "HHSUM2" | algo | flags | key kind | capacity uvarint |
//	mass f64 | slack f64 | absent slack f64 | [guarantee A f64, B f64] |
//	entry count uvarint | entries { key, count f64, err f64 }
//
// flags bit 0 records whether entry errs are certain overestimation
// bounds (the SPACESAVING convention); bit 1 whether the (A, B) k-tail
// guarantee fields are present. slack widens every decoded upper bound
// (a FREQUENT producer's undercounted mass); absent slack widens only
// the bounds of items the blob does not carry (a full SPACESAVING
// producer's minimum counter Δ — an evicted item can weigh up to Δ).
// Counts travel as IEEE-754 doubles so unit, integral-weighted and
// real-valued summaries share the format (unit counts are exact below
// 2^53). uint64 and string keys are supported — the two key types the
// tools and examples use.

var summaryMagicV2 = [6]byte{'H', 'H', 'S', 'U', 'M', '2'}

const (
	v2FlagOverEst      byte = 1 << 0
	v2FlagHasGuarantee byte = 1 << 1
)

// ErrUnsupportedSummary reports an Encode of a summary whose state is
// not portable (sketch backends) or whose key type has no wire form.
var ErrUnsupportedSummary = errors.New("heavyhitters: summary not encodable")

// keyKindFor maps the key type parameter to its wire tag (0 = no wire
// form).
func keyKindFor[K comparable]() byte {
	var zero K
	switch any(zero).(type) {
	case uint64:
		return keyKindUint64
	case string:
		return keyKindString
	default:
		return 0
	}
}

func writeKeyAny[K comparable](bw *bufio.Writer, k K) error {
	switch v := any(k).(type) {
	case uint64:
		return writeUvarint(bw, v)
	case string:
		if err := writeUvarint(bw, uint64(len(v))); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	default:
		return ErrUnsupportedSummary
	}
}

//hh:nopanic
func readKeyAny[K comparable](br *bufio.Reader) (K, error) {
	var zero K
	switch any(zero).(type) {
	case uint64:
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return zero, err
		}
		//hh:checked K is uint64 in this branch of the zero-value type switch
		return any(v).(K), nil
	case string:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return zero, err
		}
		if n > 1<<20 {
			return zero, fmt.Errorf("%w: unreasonable key length %d", ErrBadSummary, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return zero, err
		}
		//hh:checked K is string in this branch of the zero-value type switch
		return any(string(buf)).(K), nil
	default:
		return zero, ErrUnsupportedSummary
	}
}

// Encode implements Summary.Encode: it writes the v2 wire form of the
// summary's counter state — a windowed frame (epoch ring, see
// codec_window.go) when the summary is an unsharded epoch-ring window,
// a flat frame otherwise. Sharded windows and decayed summaries flatten
// to a snapshot of their current aggregate. On a concurrent summary
// (WithConcurrent) Encode writes one consistent snapshot: an unsharded
// ring is framed under the write lock (writers wait for the duration —
// Encode is not on the lock-free read list), every other composition
// encodes the pinned read snapshot. Sketch-backed summaries and key
// types other than uint64 and string return ErrUnsupportedSummary.
func (s *summary[K]) Encode(w io.Writer) error {
	if !s.be.mergeable() {
		return fmt.Errorf("%w: %v is sketch-backed", ErrUnsupportedSummary, s.algo)
	}
	kind := keyKindFor[K]()
	if kind == 0 {
		return fmt.Errorf("%w: key type has no wire form (want uint64 or string)", ErrUnsupportedSummary)
	}
	be := s.be
	if ct, ok := be.(*concurrentTier[K]); ok {
		if wb, ok := ct.inner.(*windowBackend[K]); ok {
			// Keep the resumable ring frame: exclude writers while the
			// epochs are walked (encodeWindow's sync may also rotate, so
			// invalidate read snapshots afterwards).
			ct.wmu.Lock()
			err := encodeWindow(w, s.algo, kind, wb)
			ct.wmu.Unlock()
			ct.gen.Add(1)
			return err
		}
		be = ct.current()
	}
	if wb, ok := be.(*windowBackend[K]); ok {
		return encodeWindow(w, s.algo, kind, wb)
	}
	bw := bufio.NewWriter(w)
	if err := encodeFlatFrame(bw, s.algo, kind, be); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeFlatFrame writes one flat v2 frame (magic through entries) for
// the backend's current counter state. It is the unit the windowed
// container reuses per epoch.
func encodeFlatFrame[K comparable](bw *bufio.Writer, algo Algo, kind byte, be backend[K]) error {
	var flags byte
	if be.overEst() {
		flags |= v2FlagOverEst
	}
	g, hasG := be.guarantee()
	if hasG {
		flags |= v2FlagHasGuarantee
	}
	entries := be.appendEntries(nil, -1)
	// A sharded summary stores up to shards×m counters; the encoded
	// capacity must hold them all so Decode reconstructs losslessly.
	// Raising the capacity would silently tighten the advertised k-tail
	// bound A·res/(C − B·k), so the constants are rescaled by the same
	// factor r = C/m: A·r·res/(r·m − B·r·k) equals the per-structure
	// bound exactly (each shard's sub-stream residual is at most the
	// full stream's, so the per-shard bound remains valid globally).
	capacity := be.capacity()
	if len(entries) > capacity {
		r := float64(len(entries)) / float64(capacity)
		capacity = len(entries)
		g.A *= r
		g.B *= r
	}
	if _, err := bw.Write(summaryMagicV2[:]); err != nil {
		return err
	}
	for _, b := range []byte{byte(algo), flags, kind} {
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(capacity)); err != nil {
		return err
	}
	if err := writeFloat(bw, be.total()); err != nil {
		return err
	}
	if err := writeFloat(bw, be.slackOut()); err != nil {
		return err
	}
	if err := writeFloat(bw, be.absentExtra()); err != nil {
		return err
	}
	if hasG {
		if err := writeFloat(bw, g.A); err != nil {
			return err
		}
		if err := writeFloat(bw, g.B); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := writeKeyAny(bw, e.Item); err != nil {
			return err
		}
		if err := writeFloat(bw, e.Count); err != nil {
			return err
		}
		if err := writeFloat(bw, e.Err); err != nil {
			return err
		}
	}
	return nil
}

// BlobInfo is the header metadata SniffBlob reads off a v2 blob
// without decoding it: enough for a consumer holding bytes of unknown
// provenance — a tool reading stdin, a server accepting an upload — to
// route the blob to the right Decode instantiation.
type BlobInfo struct {
	// Algo is the producing algorithm recorded in the frame.
	Algo Algo
	// Windowed reports an epoch-ring container ("HHWIN2") rather than a
	// flat frame ("HHSUM2").
	Windowed bool
	// StringKeys reports string-keyed entries (Decode[string]); false
	// means uint64 keys (Decode[uint64]).
	StringKeys bool
}

// sniffHeaderLen is the prefix SniffBlob needs: magic, algo and the
// kind byte (offset 8 in flat frames, 7 in windowed containers).
const sniffHeaderLen = 9

// SniffBlob inspects the first bytes of a v2 summary blob (at least 9)
// and reports its header metadata. The second result is false when the
// prefix is too short, carries no v2 magic, or names an unknown key
// kind — the caller should fall back to other formats or reject the
// input. Sniffing validates only the header: Decode still performs the
// full validation.
//
//hh:nopanic
func SniffBlob(prefix []byte) (BlobInfo, bool) {
	if len(prefix) < sniffHeaderLen {
		return BlobInfo{}, false
	}
	var info BlobInfo
	var kind byte
	switch {
	case [6]byte(prefix[:6]) == summaryMagicV2:
		// magic | algo | flags | kind
		info.Algo, kind = Algo(prefix[6]), prefix[8]
	case [6]byte(prefix[:6]) == windowMagicV2:
		// magic | algo | kind | mode
		info.Algo, info.Windowed, kind = Algo(prefix[6]), true, prefix[7]
	default:
		return BlobInfo{}, false
	}
	switch kind {
	case keyKindUint64:
	case keyKindString:
		info.StringKeys = true
	default:
		return BlobInfo{}, false
	}
	return info, true
}

// Decode reconstructs a Summary from its v2 wire form, flat or
// windowed (the magic distinguishes them). A flat frame decodes to a
// summary backed by a weighted SPACESAVINGR structure holding the
// encoded counters with their error metadata and upper slack, so
// Estimate, EstimateBounds, Top, HeavyHitters, Recover and further
// Merge calls behave as on the producer (point estimates and bounds are
// preserved exactly; the reported Algorithm is the producer's). A
// windowed frame decodes to a live epoch ring (see codec_window.go).
// Mutating a decoded summary is supported through the weighted update
// path.
//
//hh:nopanic
func Decode[K comparable](r io.Reader) (Summary[K], error) {
	wantKind := keyKindFor[K]()
	if wantKind == 0 {
		return nil, fmt.Errorf("%w: key type has no wire form (want uint64 or string)", ErrUnsupportedSummary)
	}
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSummary, err)
	}
	switch magic {
	case summaryMagicV2:
		algo, be, err := decodeFlatBody[K](br, wantKind)
		if err != nil {
			return nil, err
		}
		return &summary[K]{algo: algo, be: be}, nil
	case windowMagicV2:
		return decodeWindowBody[K](br, wantKind)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSummary)
	}
}

// decodeFlatBody reads one flat v2 frame after its magic and rebuilds
// the backend; the windowed container calls it once per epoch.
//
//hh:nopanic
func decodeFlatBody[K comparable](br *bufio.Reader, wantKind byte) (Algo, *weightedBackend[K], error) {
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrBadSummary, err)
	}
	algo, flags, kind := Algo(hdr[0]), hdr[1], hdr[2]
	if !algo.deterministic() {
		return 0, nil, fmt.Errorf("%w: algorithm %v has no portable state", ErrBadSummary, algo)
	}
	if kind != wantKind {
		return 0, nil, fmt.Errorf("%w: key kind %d, want %d", ErrBadSummary, kind, wantKind)
	}
	capacity, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: capacity: %v", ErrBadSummary, err)
	}
	// Encode raises the capacity to the entry count, so the entry bound
	// below makes this also the counter budget a well-formed producer
	// could have used; 2^24 counters is far beyond any real deployment.
	if capacity < 1 || capacity > 1<<24 {
		return 0, nil, fmt.Errorf("%w: unreasonable capacity %d", ErrBadSummary, capacity)
	}
	mass, err := readFiniteFloat(br, "mass")
	if err != nil {
		return 0, nil, err
	}
	slack, err := readFiniteFloat(br, "slack")
	if err != nil {
		return 0, nil, err
	}
	absent, err := readFiniteFloat(br, "absent slack")
	if err != nil {
		return 0, nil, err
	}
	if mass < 0 || slack < 0 || absent < 0 {
		return 0, nil, fmt.Errorf("%w: negative mass or slack", ErrBadSummary)
	}
	var g TailGuarantee
	hasG := flags&v2FlagHasGuarantee != 0
	if hasG {
		if g.A, err = readFiniteFloat(br, "guarantee A"); err != nil {
			return 0, nil, err
		}
		if g.B, err = readFiniteFloat(br, "guarantee B"); err != nil {
			return 0, nil, err
		}
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: entry count: %v", ErrBadSummary, err)
	}
	// No well-formed encoder emits more entries than counters (Encode
	// raises the written capacity to the entry count).
	if count > capacity {
		return 0, nil, fmt.Errorf("%w: entry count %d exceeds capacity %d", ErrBadSummary, count, capacity)
	}
	// Initial storage is sized by the bytes actually present, not the
	// declared counts: a tiny malicious blob cannot force a large
	// allocation, and honest blobs grow to their real size as entries
	// stream in.
	hint := int(count)
	if hint > 4096 {
		hint = 4096
	}
	//hh:checked capacity is validated to [1, 2^24] above and hint clamped to 4096, inside NewRSized's domain
	dst := spacesaving.NewRSized[K](int(capacity), hint)
	carryErr := flags&v2FlagOverEst != 0
	for i := uint64(0); i < count; i++ {
		item, err := readKeyAny[K](br)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: entry %d key: %v", ErrBadSummary, i, err)
		}
		c, err := readFiniteFloat(br, "entry count")
		if err != nil {
			return 0, nil, err
		}
		e, err := readFiniteFloat(br, "entry err")
		if err != nil {
			return 0, nil, err
		}
		if c < 0 || e < 0 {
			return 0, nil, fmt.Errorf("%w: negative entry values", ErrBadSummary)
		}
		if !carryErr {
			e = 0
		}
		dst.Absorb(item, c, e)
	}
	be := &weightedBackend[K]{ssr: dst, slack: slack, absentSlack: absent, g: g, hasG: hasG}
	// Carry the mass the stored counts undercount, so the decoded N() —
	// and the phi·N thresholds HeavyHitters derives from it — matches
	// the producer's.
	be.carryExtraMass(mass)
	return algo, be, nil
}

// FromBlob lifts a legacy v1 summary blob (DecodeSummary) onto the
// unified Summary surface with m counters, carrying the per-entry error
// metadata through. The v1 format does not record the producing
// algorithm, so entries are treated in the SPACESAVING convention
// (Err is a certain overestimation bound) — the convention of every v1
// producer in this repository. m < 1 sizes from the blob's capacity.
func FromBlob[K comparable](m int, blob *SummaryBlob[K]) Summary[K] {
	if m < 1 {
		m = blob.Capacity
	}
	if m < len(blob.Entries) {
		m = len(blob.Entries)
	}
	if m < 1 {
		m = 1
	}
	dst := NewSpaceSavingR[K](m)
	for _, e := range blob.Entries {
		dst.Absorb(e.Item, float64(e.Count), float64(e.Err))
	}
	be := &weightedBackend[K]{ssr: dst, g: TailGuarantee{A: 1, B: 1}, hasG: true}
	// Carry any stream mass the stored counts undercount, so N() matches
	// the producer's recorded stream length.
	be.carryExtraMass(float64(blob.N))
	return &summary[K]{algo: AlgoSpaceSaving, be: be}
}

//hh:nopanic
func readFiniteFloat(br *bufio.Reader, field string) (float64, error) {
	v, err := readFloat(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrBadSummary, field, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: non-finite %s", ErrBadSummary, field)
	}
	return v, nil
}
