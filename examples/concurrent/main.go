// Concurrent: the concurrency tier under sustained mixed traffic.
// Eight producers batch-feed one Summary built with WithConcurrent +
// WithShards while two consumers query it at full rate the whole time:
// writers serialize through the striped shard locks, and every query —
// Top, Estimate, HeavyHitters, N — serves from the tier's
// generation-tracked snapshot without ever blocking the ingest path
// (readers see a bounded-stale view: at most one in-flight snapshot
// rebuild behind the writers).
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	hh "repro"
	"repro/internal/stream"
)

func main() {
	const (
		producers = 8
		consumers = 2
		perStream = 250_000
		universe  = 20_000
		shardM    = 256
		batch     = 4096
	)
	c := hh.New[uint64](hh.WithConcurrent(), hh.WithShards(producers), hh.WithCapacity(shardM))

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// Each producer sees its own Zipfian sub-stream (same heavy
			// hitters, independent arrival order) and ingests it in
			// batches: UpdateBatch partitions each batch once and locks
			// every shard once, instead of once per item.
			s := stream.Zipf(universe, 1.1, perStream, stream.OrderRandom, seed)
			for lo := 0; lo < len(s); lo += batch {
				hi := min(lo+batch, len(s))
				c.UpdateBatch(s[lo:hi])
			}
		}(uint64(p + 1))
	}

	// Consumers query at full rate for the whole ingest: none of these
	// calls takes a write lock, so the producers never wait on them.
	var stop atomic.Bool
	var queries atomic.Uint64
	var cwg sync.WaitGroup
	for r := 0; r < consumers; r++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			var buf []hh.WeightedEntry[uint64]
			for !stop.Load() {
				buf = c.TopAppend(buf[:0], 5)
				c.Estimate(0)
				c.N()
				queries.Add(3)
				_ = buf
			}
		}()
	}

	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	cwg.Wait()

	total := float64(producers * perStream)
	fmt.Printf("ingested %.0f updates in %v (%.1f M items/s) across %d writer goroutines\n",
		c.N(), elapsed.Round(time.Millisecond), total/elapsed.Seconds()/1e6, producers)
	fmt.Printf("%d consumer goroutines completed %d lock-free queries during the ingest\n\n",
		consumers, queries.Load())

	fmt.Println("top 5 items (certain bounds carried along):")
	for i, e := range c.Top(5) {
		lo, hi := c.EstimateBounds(e.Item)
		fmt.Printf("  %d. item %-6d ~%0.f occurrences  f in [%.0f, %.0f]\n",
			i+1, e.Item, e.Count, lo, hi)
	}

	// Per-item point queries serve from the same snapshot; with writers
	// quiesced the snapshot is exact. Item 0 is stored in its shard with
	// zero recorded error, so the estimate is exact.
	fmt.Printf("\npoint query: item 0 ≈ %.0f occurrences\n", c.Estimate(0))
}
