// Concurrent: multi-goroutine ingestion with the sharded unified
// summary. Eight producers feed batches into one Summary built with
// WithShards; because items are partitioned across shards, per-item
// estimates and bounds keep the full single-shard (1, 1) guarantee
// against each item's own stream, and Top concatenates the shards'
// disjoint counters without a lossy merge step.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"sync"

	hh "repro"
	"repro/internal/stream"
)

func main() {
	const (
		producers = 8
		perStream = 250_000
		universe  = 20_000
		shardM    = 256
		batch     = 4096
	)
	c := hh.New[uint64](hh.WithShards(producers), hh.WithCapacity(shardM))

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// Each producer sees its own Zipfian sub-stream (same heavy
			// hitters, independent arrival order) and ingests it in
			// batches: UpdateBatch partitions each batch once and locks
			// every shard once, instead of once per item.
			s := stream.Zipf(universe, 1.1, perStream, stream.OrderRandom, seed)
			for lo := 0; lo < len(s); lo += batch {
				hi := lo + batch
				if hi > len(s) {
					hi = len(s)
				}
				c.UpdateBatch(s[lo:hi])
			}
		}(uint64(p + 1))
	}
	wg.Wait()

	fmt.Printf("ingested %.0f updates across %d goroutines (%d shards × %d counters)\n\n",
		c.N(), producers, producers, c.Capacity())

	fmt.Println("top 5 items (certain bounds carried along):")
	for i, e := range c.Top(5) {
		lo, hi := c.EstimateBounds(e.Item)
		fmt.Printf("  %d. item %-6d ~%0.f occurrences  f in [%.0f, %.0f]\n",
			i+1, e.Item, e.Count, lo, hi)
	}

	// Per-item point queries hit only the owning shard. Item 0 is stored
	// in its shard with zero recorded error, so the estimate is exact.
	fmt.Printf("\npoint query: item 0 ≈ %.0f occurrences\n", c.Estimate(0))
}
