// Concurrent: multi-goroutine ingestion with the sharded summary. Eight
// producers feed a shared Concurrent summary; the main goroutine takes
// periodic snapshots whose accuracy is guaranteed by Theorem 11 (each
// shard is a (1,1)-guaranteed summary of its sub-stream; the merged
// snapshot is (3,2)-guaranteed on the union).
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"sync"

	hh "repro"
	"repro/internal/stream"
)

func main() {
	const (
		producers = 8
		perStream = 250_000
		universe  = 20_000
		shardM    = 256
	)
	c := hh.NewConcurrentUint64(producers, shardM)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// Each producer sees its own Zipfian sub-stream (same heavy
			// hitters, independent arrival order).
			s := stream.Zipf(universe, 1.1, perStream, stream.OrderRandom, seed)
			for _, x := range s {
				c.Update(x)
			}
		}(uint64(p + 1))
	}
	wg.Wait()

	fmt.Printf("ingested %d updates across %d goroutines (%d shards × %d counters)\n\n",
		c.N(), producers, c.Shards(), c.ShardCapacity())

	snap := c.Snapshot(shardM)
	fmt.Println("top 5 items of the merged snapshot:")
	for i, e := range hh.TopWeighted[uint64](snap, 5) {
		fmt.Printf("  %d. item %-6d ~%0.f occurrences\n", i+1, e.Item, e.Count)
	}

	// Per-item point queries hit only the owning shard. Item 0 is stored
	// in its shard with zero recorded error, so the estimate is exact.
	fmt.Printf("\npoint query: item 0 ≈ %d occurrences\n", c.Estimate(0))
}
