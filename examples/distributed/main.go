// Distributed: Theorem 11 in practice — eight independent workers each
// summarize their own shard of a stream and ship the compact wire form
// (Summary.Encode) to a coordinator, which reconstructs them with Decode
// and merges them into one summary of the union without touching the raw
// data. The merged error stays within the paper's (3A, A+B) bound.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"
	"math"

	hh "repro"
	"repro/internal/stream"
)

func main() {
	const (
		universe = 20_000
		total    = 800_000
		shardCnt = 8
		m        = 200
		k        = 10
	)
	s := stream.Zipf(universe, 1.1, total, stream.OrderRandom, 99)

	// Exact union frequencies, for validation only.
	truth := make([]float64, universe)
	for _, x := range s {
		truth[x]++
	}

	// Each worker summarizes its contiguous shard independently and
	// encodes its state — the only bytes that travel to the coordinator.
	var wire [][]byte
	per := len(s) / shardCnt
	for w := 0; w < shardCnt; w++ {
		lo, hi := w*per, (w+1)*per
		if w == shardCnt-1 {
			hi = len(s)
		}
		worker := hh.New[uint64](hh.WithCapacity(m))
		worker.UpdateBatch(s[lo:hi])
		var buf bytes.Buffer
		if err := worker.Encode(&buf); err != nil {
			panic(err)
		}
		wire = append(wire, buf.Bytes())
	}
	var wireBytes int
	for _, b := range wire {
		wireBytes += len(b)
	}
	fmt.Printf("%d workers shipped %d bytes of summaries for %d stream elements\n\n",
		shardCnt, wireBytes, total)

	// The coordinator reconstructs and merges — per-item error metadata
	// travels with the summaries, so the merged bounds remain certain.
	summaries := make([]hh.Summary[uint64], len(wire))
	for i, b := range wire {
		var err error
		if summaries[i], err = hh.Decode[uint64](bytes.NewReader(b)); err != nil {
			panic(err)
		}
	}
	merged, err := hh.MergeSummaries(m, summaries...)
	if err != nil {
		panic(err)
	}

	fmt.Println("top 5 items of the union (merged estimate vs exact, with bounds):")
	for i, e := range merged.Top(5) {
		lo, hi := merged.EstimateBounds(e.Item)
		fmt.Printf("  %d. item %-6d est %8.0f  true %8.0f  f in [%.0f, %.0f]\n",
			i+1, e.Item, e.Count, truth[e.Item], lo, hi)
	}

	// Validate the (3, 2) merged tail guarantee over the whole universe.
	res := residual(truth, k)
	g, _ := merged.Guarantee()
	bound := g.Bound(m, k, res)
	worst := 0.0
	for i, f := range truth {
		if d := math.Abs(f - merged.Estimate(uint64(i))); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nworst merged error %.0f vs Theorem 11 bound %.0f (ratio %.2f)\n",
		worst, bound, worst/bound)

	// The per-item intervals must also cover the truth everywhere.
	violations := 0
	for i, f := range truth {
		lo, hi := merged.EstimateBounds(uint64(i))
		if f < lo || f > hi {
			violations++
		}
	}
	fmt.Printf("items whose true count escapes [Lo, Hi]: %d of %d\n", violations, universe)
}

// residual returns F1^res(k) of an exact frequency vector.
func residual(freq []float64, k int) float64 {
	sorted := make([]float64, len(freq))
	copy(sorted, freq)
	sum := 0.0
	for _, f := range sorted {
		sum += f
	}
	// Simple selection of the k largest by repeated max extraction — k is
	// tiny here.
	for i := 0; i < k; i++ {
		best := 0
		for j, f := range sorted {
			if f > sorted[best] {
				_ = j
				best = j
			}
		}
		sum -= sorted[best]
		sorted[best] = -1
	}
	return sum
}
