// Distributed: Theorem 11 over the wire — eight independent agents
// each summarize their own shard of a stream and push the compact
// encoded form (Summary.Encode) over real loopback HTTP to a live
// hhserverd instance, which merges the blobs at the registry tier
// (MergeSummaries, so per-item error metadata survives the transfer)
// and serves bound-carrying queries over the union without ever seeing
// the raw data.
//
// The example boots the same registry server the hhserverd binary
// mounts, on an ephemeral port, so it is self-contained:
//
//	go run ./examples/distributed
//
// One agent pushes mid-ingest too: a summary encoded while its writer
// keeps going is a consistent snapshot of a prefix (the concurrency
// tier pins it), so agents can ship partial state on a timer and push
// the remainder at shutdown.
package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	hh "repro"
	"repro/client"
	"repro/internal/registry"
	"repro/internal/stream"
)

func main() {
	const (
		universe = 20_000
		total    = 800_000
		agents   = 8
		m        = 200
		k        = 10
		phi      = 0.005
	)
	s := stream.Zipf(universe, 1.1, total, stream.OrderRandom, 99)

	// Exact union frequencies, for validation only — neither the agents
	// nor the server ever hold the whole stream.
	truth := make(map[string]float64, universe)
	key := func(x uint64) string { return fmt.Sprintf("item-%d", x) }
	for _, x := range s {
		truth[key(x)]++
	}

	// A live hhserverd: the registry + HTTP server the daemon binary
	// mounts, booted in-process on an ephemeral loopback port.
	reg, err := registry.New(registry.Config{
		Summaries: map[string]hh.Spec{"union": {Capacity: m}},
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: registry.NewServer(reg, 0)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("hhserverd registry listening on %s\n", ln.Addr())

	// Each agent summarizes its contiguous shard locally and ships only
	// the encoded summary — the bytes on the wire are counters plus
	// error metadata, not the shard's items. Agent 0 additionally pushes
	// a consistent mid-ingest snapshot, so the server's view covers a
	// prefix of its stream long before the agent finishes.
	ctx := context.Background()
	var wireBytes atomic.Uint64
	per := len(s) / agents
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		lo, hi := a*per, (a+1)*per
		if a == agents-1 {
			hi = len(s)
		}
		wg.Add(1)
		go func(id int, part []uint64) {
			defer wg.Done()
			c := client.New(base, "union")
			local := hh.New[string](hh.WithConcurrent(), hh.WithCapacity(m))
			keys := make([]string, 0, 4096)
			pushedEarly := false
			for off := 0; off < len(part); off += 4096 {
				keys = keys[:0]
				for _, x := range part[off:min(off+4096, len(part))] {
					keys = append(keys, key(x))
				}
				local.UpdateBatch(keys)
				if id == 0 && !pushedEarly && off >= len(part)/2 {
					pushedEarly = true
					var buf bytes.Buffer
					if err := local.Encode(&buf); err != nil {
						panic(err)
					}
					mass, err := c.MergeBlob(ctx, bytes.NewReader(buf.Bytes()))
					if err != nil {
						panic(err)
					}
					wireBytes.Add(uint64(buf.Len()))
					fmt.Printf("agent 0 pushed a mid-ingest snapshot: %d bytes covering mass %.0f\n",
						buf.Len(), mass)
					// Start a fresh local summary: the pushed prefix now lives
					// on the server, and only the remainder ships at the end.
					local = hh.New[string](hh.WithConcurrent(), hh.WithCapacity(m))
				}
			}
			var buf bytes.Buffer
			if err := local.Encode(&buf); err != nil {
				panic(err)
			}
			if _, err := c.MergeBlob(ctx, bytes.NewReader(buf.Bytes())); err != nil {
				panic(err)
			}
			wireBytes.Add(uint64(buf.Len()))
		}(a, s[lo:hi])
	}
	wg.Wait()
	fmt.Printf("%d agents shipped %d bytes of summaries for %d stream elements\n\n",
		agents, wireBytes.Load(), total)

	// The coordinator is any HTTP client: bound-carrying queries over
	// the merged union, no raw data involved.
	c := client.New(base, "union")
	top, err := c.Top(ctx, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("server's union covers mass %.0f\n", top.N)
	fmt.Println("top 5 items of the union (served estimate vs exact, with bounds):")
	for i, r := range top.Results {
		fmt.Printf("  %d. %-12s est %8.0f  true %8.0f  f in [%.0f, %.0f]\n",
			i+1, r.Item, r.Count, truth[r.Item], r.Lo, r.Hi)
	}

	hits, err := c.HeavyHitters(ctx, phi)
	if err != nil {
		panic(err)
	}
	guaranteed := 0
	for _, h := range hits.Results {
		if h.Guaranteed {
			guaranteed++
		}
	}
	fmt.Printf("\n%.2f%%-heavy hitters served: %d candidates, %d guaranteed\n",
		phi*100, len(hits.Results), guaranteed)

	// Pull the portable snapshot for offline validation: the decoded
	// summary answers exactly like the server's view.
	snap, err := c.Snapshot(ctx)
	if err != nil {
		panic(err)
	}
	res := residual(truth, k)
	g, _ := snap.Guarantee()
	bound := g.Bound(m, k, res)
	worst, violations := 0.0, 0
	for item, f := range truth {
		if d := math.Abs(f - snap.Estimate(item)); d > worst {
			worst = d
		}
		lo, hi := snap.EstimateBounds(item)
		if f < lo || f > hi {
			violations++
		}
	}
	fmt.Printf("\nworst merged error %.0f vs Theorem 11 bound %.0f (ratio %.2f)\n",
		worst, bound, worst/bound)
	fmt.Printf("items whose true count escapes [Lo, Hi]: %d of %d\n", violations, len(truth))
}

// residual returns F1^res(k) of an exact frequency map.
func residual(freq map[string]float64, k int) float64 {
	sum := 0.0
	heavy := make([]float64, 0, len(freq))
	for _, f := range freq {
		sum += f
		heavy = append(heavy, f)
	}
	for i := 0; i < k && len(heavy) > 0; i++ {
		best := 0
		for j, f := range heavy {
			if f > heavy[best] {
				best = j
			}
		}
		sum -= heavy[best]
		heavy[best] = -1
	}
	return sum
}
